// Noisy simulation via quantum trajectories: NISQ-era noise without
// density matrices. Random Pauli errors are inserted into circuit
// instances and observables are averaged over the ensemble — so every
// backend, including the SQL one, simulates noise unchanged.
//
// The experiment: watch the GHZ parity correlation ⟨Z₀Z₁⟩ (ideally +1)
// decay as the two-qubit gate error rate grows.
package main

import (
	"fmt"
	"log"

	"qymera"
)

func main() {
	c := qymera.GHZ(4)
	fmt.Println("GHZ-4 under depolarizing noise — trajectory average of <Z0·Z1>")
	fmt.Printf("\n%-14s  %-18s  %-18s\n", "2q error rate", "<ZZ> statevector", "<ZZ> sql backend")

	observable := func(b qymera.Backend) func(*qymera.Circuit) (float64, error) {
		return func(circ *qymera.Circuit) (float64, error) {
			res, err := b.Run(circ)
			if err != nil {
				return 0, err
			}
			return res.State.ExpectationZProduct([]int{0, 1}), nil
		}
	}

	for _, p := range []float64{0, 0.02, 0.05, 0.1, 0.2} {
		runner := qymera.TrajectoryRunner{
			Model: qymera.PauliNoiseModel{
				OneQubitError: p / 10,
				TwoQubitError: p,
			},
			Trials: 100,
			Seed:   2025,
		}
		sv, err := runner.AverageObservable(c, observable(qymera.NewStateVectorBackend()))
		if err != nil {
			log.Fatal(err)
		}
		sql, err := runner.AverageObservable(c, observable(qymera.NewSQLBackend()))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14.3f  %-18.4f  %-18.4f\n", p, sv, sql)
	}

	fmt.Println("\nthe correlation decays from +1 toward 0 as errors accumulate;")
	fmt.Println("both backends see the same ensemble (same seed), so they agree exactly")
}
