// Out-of-core simulation: the Simulation Layer feature the in-memory
// backends cannot offer. Runs a dense circuit under a shrinking memory
// cap: the in-memory methods fail once the state outgrows the cap, while
// the RDBMS backend spills intermediate state tables to disk and
// completes at any cap.
package main

import (
	"errors"
	"fmt"
	"log"

	"qymera"
)

func main() {
	const n = 12 // 4096 amplitudes in the final state
	c := qymera.EqualSuperposition(n)

	fmt.Printf("dense workload: %s (%d final amplitudes)\n\n", c.Name(), 1<<n)
	fmt.Printf("%-12s  %-12s  %-10s  %-12s  %s\n", "cap", "backend", "time", "spilled rows", "outcome")

	caps := []int64{0, 1 << 20, 256 << 10, 64 << 10, 16 << 10}
	for _, cap := range caps {
		capStr := "unlimited"
		if cap > 0 {
			capStr = fmt.Sprintf("%dKB", cap>>10)
		}

		// In-memory reference: fails below the state size.
		sv := qymera.NewStateVectorBackend(cap)
		if _, err := sv.Run(c); err != nil {
			if errors.Is(err, qymera.ErrMemoryBudget) {
				fmt.Printf("%-12s  %-12s  %-10s  %-12s  %s\n", capStr, "statevector", "-", "-", "budget exceeded")
			} else {
				log.Fatal(err)
			}
		} else {
			fmt.Printf("%-12s  %-12s  %-10s  %-12s  %s\n", capStr, "statevector", "ok", "0", "completed in memory")
		}

		// RDBMS backend: spills and completes.
		sql := qymera.NewSQLBackend(qymera.SQLBackendOptions{MemoryBudget: cap})
		res, err := sql.Run(c)
		if err != nil {
			log.Fatal(err)
		}
		outcome := "completed in memory"
		if res.Stats.SpilledRows > 0 {
			outcome = "completed out-of-core"
		}
		fmt.Printf("%-12s  %-12s  %-10v  %-12d  %s\n",
			capStr, "sql", res.Stats.WallTime.Round(100_000), res.Stats.SpilledRows, outcome)

		if res.State.Len() != 1<<n {
			log.Fatalf("wrong result: %d rows", res.State.Len())
		}
	}

	fmt.Println("\nthe SQL backend completes at every cap; spilled rows grow as the cap shrinks")
}
