// GHZ benchmarking: the paper's "Simulation Method Benchmarking" demo
// scenario. Runs GHZ preparation and equal superposition across every
// simulation backend and compares time, memory, and state sizes —
// showing where the RDBMS method wins (sparse states) and where it
// doesn't (dense states).
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"qymera"
)

func main() {
	n := 12
	if len(os.Args) > 1 {
		v, err := strconv.Atoi(os.Args[1])
		if err != nil || v < 2 {
			log.Fatalf("usage: %s [qubits>=2]", os.Args[0])
		}
		n = v
	}

	workloads := []*qymera.Circuit{
		qymera.GHZ(n),                    // sparse: 2 nonzero amplitudes
		qymera.EqualSuperposition(n - 2), // dense: 2^(n-2) amplitudes
	}

	for _, c := range workloads {
		fmt.Printf("\n=== %s: %d qubits, %d gates ===\n", c.Name(), c.NumQubits(), c.Len())
		fmt.Printf("%-12s  %-10s  %-10s  %-16s  %s\n",
			"backend", "time", "peak mem", "max intermediate", "final rows")
		for _, name := range qymera.BackendNames() {
			if name == "sql-chain" {
				continue
			}
			b, err := qymera.BackendByName(name)
			if err != nil {
				log.Fatal(err)
			}
			res, err := b.Run(c)
			if err != nil {
				fmt.Printf("%-12s  error: %v\n", name, err)
				continue
			}
			st := res.Stats
			fmt.Printf("%-12s  %-10v  %-10d  %-16d  %d\n",
				name, st.WallTime.Round(10_000), st.PeakBytes, st.MaxIntermediateSize, st.FinalNonzeros)
		}
	}

	// Educational part (the paper's third demo scenario): watch the
	// state evolve gate by gate through the materialized SQL tables.
	fmt.Printf("\n=== state evolution of ghz-3, via SQL intermediate tables ===\n")
	small := qymera.GHZ(3)
	backend := qymera.NewSQLBackend(qymera.SQLBackendOptions{Mode: qymera.MaterializedChain})
	res, err := backend.Run(small)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("final:", res.State.FormatKet())
	fmt.Println("\n(run `qymera translate -circuit ghz:3 -mode chain` to see every table)")
}
