// Parameter sweep: the Simulation Layer's "Parameterized Simulations"
// feature. Defines a parameterized circuit family (a hardware-efficient
// ansatz), sweeps its rotation angle, and runs the whole family on
// multiple backends, comparing an observable across methods.
//
// The backends are built ONCE and reused across every sweep point —
// never rebuilt per point — and the SQL backend carries a plan cache:
// all sweep points share one SQL text (the circuits are structurally
// identical, only the rotation angles differ), so after the first
// point the translator only rebinds numeric gate tables. The cache
// counters printed at the end show it.
package main

import (
	"fmt"
	"log"
	"math"

	"qymera"
)

func main() {
	const (
		qubits = 6
		layers = 2
		steps  = 10
	)

	family := func(theta float64) *qymera.Circuit {
		params := make([]float64, qubits*layers*2)
		for i := range params {
			params[i] = theta * (1 + 0.1*float64(i%5))
		}
		return qymera.HardwareEfficientAnsatz(qubits, layers, params)
	}

	// One backend per method for the whole sweep. The plan cache makes
	// repeat translation work vanish: every point after the first is a
	// structural hit (same SQL, different angles).
	cache := qymera.NewPlanCache(16)
	backends := map[string]qymera.Backend{
		"sql":         qymera.NewSQLBackend(qymera.SQLBackendOptions{PlanCache: cache}),
		"statevector": qymera.NewStateVectorBackend(),
		"mps":         qymera.NewMPSBackend(),
	}

	fmt.Printf("sweeping θ over %d steps for a %d-qubit, %d-layer ansatz\n\n", steps, qubits, layers)
	fmt.Printf("%-8s  %-14s  %-14s  %-14s  %s\n", "θ", "P(q0=1) sql", "statevector", "mps", "max |Δ|")

	for s := 0; s < steps; s++ {
		theta := (float64(s) + 0.5) * math.Pi / steps
		c := family(theta)

		probs := map[string]float64{}
		for name, b := range backends {
			res, err := b.Run(c)
			if err != nil {
				log.Fatalf("%s at θ=%.3f: %v", name, theta, err)
			}
			probs[name] = res.State.QubitProbability(0)
		}
		maxDelta := math.Max(
			math.Abs(probs["sql"]-probs["statevector"]),
			math.Abs(probs["mps"]-probs["statevector"]))
		fmt.Printf("%-8.3f  %-14.6f  %-14.6f  %-14.6f  %.2e\n",
			theta, probs["sql"], probs["statevector"], probs["mps"], maxDelta)
	}

	st := cache.Stats()
	fmt.Printf("\nplan cache: %d misses, %d structural hits, %d exact hits over %d points\n",
		st.Misses, st.StructuralHits, st.Hits, steps)
	kc := qymera.KernelCounters()
	fmt.Printf("gate kernels: %d compiles, %d cache hits, %d fused executions (%d fallbacks)\n",
		kc["compiles"], kc["cache_hits"], kc["executions"], kc["fallbacks"])
	fmt.Println("all three methods agree on the observable across the whole family")
}
