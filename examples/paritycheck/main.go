// Parity check: the paper's "Quantum Algorithm Design and Testing"
// demo scenario. Builds the quantum parity-check circuit for a given
// bitstring, verifies the ancilla qubit reads the classical parity, and
// shows how the relational representation exposes every intermediate
// quantum state as an inspectable SQL table.
package main

import (
	"fmt"
	"log"
	"os"

	"qymera"
)

func main() {
	bitstring := "1011"
	if len(os.Args) > 1 {
		bitstring = os.Args[1]
	}
	bits := make([]bool, len(bitstring))
	ones := 0
	for i, ch := range bitstring {
		switch ch {
		case '0':
		case '1':
			bits[i] = true
			ones++
		default:
			log.Fatalf("bitstring may contain only 0 and 1, got %q", bitstring)
		}
	}
	k := len(bits)

	c := qymera.ParityCheck(bits)
	fmt.Printf("parity check for input %s (%d ones):\n\n", bitstring, ones)
	fmt.Println(qymera.Draw(c))

	// Translate with materialized intermediate tables so each step of
	// the algorithm is a queryable relation.
	tr, err := qymera.Translate(c, nil, qymera.TranslateOptions{Mode: qymera.MaterializedChain})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the circuit becomes %d SQL stages; the final state lives in table %s\n\n",
		tr.StageCount, tr.FinalTable)

	// Simulate on the RDBMS backend and read the ancilla.
	res, err := qymera.NewSQLBackend().Run(c)
	if err != nil {
		log.Fatal(err)
	}
	pAncilla := res.State.QubitProbability(k)
	fmt.Printf("final state: %s\n", res.State.FormatKet())
	fmt.Printf("P(ancilla = 1) = %.3f  →  parity is %d\n", pAncilla, int(pAncilla+0.5))
	fmt.Printf("classical parity of %s = %d\n", bitstring, ones%2)
	if int(pAncilla+0.5) == ones%2 {
		fmt.Println("quantum result matches the classical computation ✓")
	} else {
		fmt.Println("MISMATCH — this should never happen")
		os.Exit(1)
	}

	// Cross-check on a second simulation method (the paper's point:
	// compare methods to pick the right one for the workload).
	sv, err := qymera.NewStateVectorBackend().Run(c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncross-check: statevector backend fidelity = %.9f (time %v vs sql %v)\n",
		sv.State.Fidelity(res.State), sv.Stats.WallTime, res.Stats.WallTime)
}
