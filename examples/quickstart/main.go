// Quickstart: build a 3-qubit GHZ circuit, look at the SQL Qymera
// generates for it, and simulate it on the relational backend.
package main

import (
	"fmt"
	"log"

	"qymera"
)

func main() {
	// Build the running example of the paper (Fig. 2a): H on qubit 0,
	// then a CX chain entangling all three qubits.
	c := qymera.NewCircuit(3).H(0).CX(0, 1).CX(1, 2)
	c.SetName("ghz-3")

	fmt.Println("Circuit:")
	fmt.Println(qymera.Draw(c))

	// Translate to SQL (one WITH-chained query, Fig. 2c).
	tr, err := qymera.Translate(c, nil, qymera.TranslateOptions{Mode: qymera.SingleQuery})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Generated SQL:")
	fmt.Println(tr.Script())

	// Execute on the embedded relational engine.
	res, err := qymera.NewSQLBackend().Run(c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Final state:", res.State.FormatKet())
	fmt.Printf("Measurement probabilities: |000⟩ → %.3f, |111⟩ → %.3f\n",
		res.State.Probability(0), res.State.Probability(7))
	fmt.Printf("Simulated in %v using %d intermediate rows at peak.\n",
		res.Stats.WallTime, res.Stats.MaxIntermediateSize)
}
