// Simulation as a service: starts the qymerad service in-process on a
// loopback port, then drives it with the qymera.Client exactly as a
// remote caller would — a synchronous streamed run, an asynchronous
// job with polling, a cancelled job, and a /metrics snapshot showing
// the plan cache earning its keep on repeated circuits.
//
// Against an already-running server, point the client at it instead:
//
//	client := qymera.NewClient("http://localhost:8087")
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"qymera"
)

func main() {
	// Start the service on a free loopback port (in production this is
	// `qymerad -addr :8087`).
	svc := qymera.NewService(qymera.ServiceConfig{Workers: 2})
	defer svc.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(l, svc)
	client := qymera.NewClient("http://" + l.Addr().String())
	ctx := context.Background()

	h, err := client.Health(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server up: %s, backends %v\n\n", h.Status, h.Backends)

	// 1. Synchronous run, amplitudes streamed back as NDJSON.
	ghz := qymera.GHZ(10)
	res, err := client.Simulate(ctx, ghz, "sql")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sync GHZ-10 on %s: %d nonzeros in %.1fms\n",
		res.Stats.Backend, res.State.Len(), res.Stats.WallSeconds*1e3)
	fmt.Printf("  %s\n\n", res.State.FormatKet())

	// Run it twice more: the repeated circuit hits the plan cache.
	for i := 0; i < 2; i++ {
		if _, err := client.Simulate(ctx, ghz, "sql"); err != nil {
			log.Fatal(err)
		}
	}

	// 2. Asynchronous job: submit, poll, fetch the result.
	id, err := client.SubmitJob(ctx, qymera.QFT(8), "sql")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted async QFT-8 as %s\n", id)
	jres, err := client.WaitJob(ctx, id, 20*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job %s done: %d amplitudes, wall %.1fms\n", id, jres.State.Len(), jres.Stats.WallSeconds*1e3)

	// Every job carries a span trace: queue wait, dispatch, translation
	// (with the plan-cache tier), per-stage execution, amplitude emit.
	// GET /v1/jobs/{id}/trace?format=chrome gives the same tree as
	// Chrome trace_event JSON for chrome://tracing / Perfetto.
	tr, err := client.JobTrace(ctx, id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace for %s:\n", tr.JobID)
	printSpan(tr.Trace, 1)
	fmt.Println()

	// 3. Cancellation: a big job, cancelled mid-flight. The server
	// aborts the engine's gate-stage query at the next batch boundary.
	id, err = client.SubmitJob(ctx, qymera.ParitySuperposition(16), "sql")
	if err != nil {
		log.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if err := client.CancelJob(ctx, id); err != nil {
		log.Fatal(err)
	}
	if _, err := client.WaitJob(ctx, id, 10*time.Millisecond); err != nil {
		fmt.Printf("cancelled job %s: %v\n\n", id, err)
	} else {
		fmt.Printf("job %s finished before the cancel landed\n\n", id)
	}

	// 4. Metrics: queue, plan cache, per-backend latency percentiles.
	m, err := client.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("metrics: %d jobs done, plan cache %d exact + %d structural hits / %d misses\n",
		m.Jobs["done"], m.PlanCache.Hits, m.PlanCache.StructuralHits, m.PlanCache.Misses)
	for name, lat := range m.Backends {
		fmt.Printf("  %-12s %d runs, p50 %.1fms, p99 %.1fms, max %.1fms\n",
			name, lat.Count, lat.P50Seconds*1e3, lat.P99Seconds*1e3, lat.MaxSeconds*1e3)
	}
	if q, ok := m.Phases["queue"]; ok {
		fmt.Printf("  queue phase: p50 %.2fms, p99 %.2fms over %d jobs\n", q.P50Seconds*1e3, q.P99Seconds*1e3, q.Count)
	}
}

// printSpan pretty-prints a span tree, one span per line.
func printSpan(sp qymera.TraceSpan, depth int) {
	fmt.Printf("%*s%-12s %8.2fms", depth*2, "", sp.Name, float64(sp.DurationUs)/1e3)
	for _, k := range sp.CounterKeys() {
		fmt.Printf("  %s=%d", k, sp.Counters[k])
	}
	fmt.Println()
	for _, c := range sp.Children {
		printSpan(c, depth+1)
	}
}
