// Package qymera is a Go implementation of Qymera (SIGMOD-Companion
// '25): simulating quantum circuits by translating them to SQL and
// executing the queries on a relational engine.
//
// The package is a facade over the implementation packages:
//
//   - circuits are built with NewCircuit's fluent API, loaded from JSON
//     or an OpenQASM 2.0 subset, or taken from the built-in families
//     (GHZ, QFT, parity check, …);
//   - Translate turns a circuit into a SQL program (Fig. 2 of the
//     paper): state tables T(s, r, i), gate tables G(in_s, out_s, r, i),
//     and one join+group-by query per gate;
//   - Backends execute circuits: the RDBMS backend (NewSQLBackend) runs
//     the translation on an embedded relational engine — a vectorized,
//     morsel-parallel batch executor (column-major batches of ~1024 rows
//     with selection vectors, streaming hash join and hash aggregation,
//     out-of-core spilling; SQLBackendOptions.Parallelism workers claim
//     fixed row-range morsels, so gate stages use every core while
//     amplitudes stay bit-identical across worker counts) — alongside
//     state-vector, sparse, matrix-product-state, and decision-diagram
//     simulators for comparison;
//   - the benchmarking harness (cmd/qybench) regenerates the paper's
//     experiments.
//
// docs/ARCHITECTURE.md walks through the translation scheme, the
// executor, and the package map; docs/BENCHMARKS.md documents the
// benchmark harness and its machine-readable reports.
//
// Quick start:
//
//	c := qymera.NewCircuit(3).H(0).CX(0, 1).CX(1, 2)
//	res, err := qymera.NewSQLBackend().Run(c)
//	fmt.Println(res.State.FormatKet()) // 0.7071|000⟩ + 0.7071|111⟩
package qymera

import (
	"fmt"
	"io"
	"strings"

	"qymera/internal/circuitio"
	"qymera/internal/circuits"
	"qymera/internal/core"
	"qymera/internal/obs"
	"qymera/internal/quantum"
	"qymera/internal/service"
	"qymera/internal/sim"
	"qymera/internal/sqlengine"
)

// Core circuit model types.
type (
	// Circuit is an ordered gate sequence over a qubit register.
	Circuit = quantum.Circuit
	// Gate is one operation of a circuit.
	Gate = quantum.Gate
	// State is a sparse quantum state (basis index → amplitude).
	State = quantum.State
	// Result is a completed simulation: final state plus metrics.
	Result = sim.Result
	// Stats carries per-run metrics (time, memory, intermediate sizes).
	Stats = sim.Stats
	// Backend is one simulation method.
	Backend = sim.Backend
	// Translation is the SQL program produced for a circuit.
	Translation = core.Translation
	// TranslateOptions configure circuit→SQL translation.
	TranslateOptions = core.Options
)

// Translation option values, re-exported from internal/core.
const (
	// SingleQuery emits one WITH-chained query for the whole circuit.
	SingleQuery = core.SingleQuery
	// MaterializedChain emits one CREATE TABLE AS SELECT per gate so
	// intermediate states are inspectable.
	MaterializedChain = core.MaterializedChain

	// FusionOff disables gate fusion; every gate is one SQL stage.
	FusionOff = core.FusionOff
	// FusionSameQubits fuses runs of gates on identical qubit tuples.
	FusionSameQubits = core.FusionSameQubits
	// FusionSubset additionally absorbs gates into adjacent gates on a
	// superset of their qubits.
	FusionSubset = core.FusionSubset

	// EncodingBitwise uses the paper's bitwise index expressions.
	EncodingBitwise = core.EncodingBitwise
	// EncodingArithmetic uses division/modulo index math (ablation).
	EncodingArithmetic = core.EncodingArithmetic
)

// ErrMemoryBudget is returned by backends whose memory requirement
// exceeds their configured budget.
var ErrMemoryBudget = sim.ErrMemoryBudget

// NewCircuit returns an empty circuit over n qubits.
func NewCircuit(n int) *Circuit { return quantum.NewCircuit(n) }

// ZeroState returns |0…0⟩ over n qubits.
func ZeroState(n int) *State { return quantum.ZeroState(n) }

// BasisState returns |index⟩ over n qubits.
func BasisState(n int, index uint64) *State { return quantum.BasisState(n, index) }

// Translate converts a circuit (and optional initial state; nil means
// |0…0⟩) into a SQL program.
func Translate(c *Circuit, initial *State, opts TranslateOptions) (*Translation, error) {
	return core.Translate(c, initial, opts)
}

// SQLBackendOptions configure the RDBMS simulation backend.
type SQLBackendOptions struct {
	// Mode: SingleQuery (default) or MaterializedChain.
	Mode core.Mode
	// Fusion is the gate-fusion optimization level.
	Fusion core.FusionLevel
	// Encoding selects bitwise (default) or arithmetic index math.
	Encoding core.Encoding
	// MemoryBudget caps the engine's in-memory bytes (0 = unlimited).
	MemoryBudget int64
	// SpillDir hosts out-of-core temp files ("" = OS temp dir).
	SpillDir string
	// DisableSpill makes budget overruns fail instead of spilling.
	DisableSpill bool
	// Parallelism is the engine's morsel-parallel worker count (0 =
	// GOMAXPROCS, 1 = single worker). Amplitudes are bit-identical
	// across settings; only throughput changes.
	Parallelism int
	// StorageLayout selects the engine's table storage format: "" or
	// "columnar" for the typed column-vector store (the default), "row"
	// for the legacy row-major store. Amplitudes are bit-identical
	// across layouts; only throughput and memory density change.
	StorageLayout string
	// Optimizer controls the engine's cost-based query optimizer: "" or
	// "on" (default) enables the rewrite rules and cost-based physical
	// planning, "off" uses the legacy direct planner. Amplitudes are
	// bit-identical across settings; only plan quality changes.
	Optimizer string
	// Kernels controls the engine's compiled gate-stage kernel tier: ""
	// or "on" (default) lowers matching gate-stage plans to a single
	// fused typed loop, "off" always runs the interpreted batch
	// executor. Amplitudes are bit-identical across settings; only
	// throughput changes.
	Kernels string
	// ChainFusion controls whole-circuit chain fusion: "" or "on"
	// (default) collapses runs of consecutive gate stages into fused
	// CTAS statements and executes them as multi-stage chain kernels
	// without materializing the intermediate amplitude tables, "off"
	// keeps stage-at-a-time execution. Distinct from Fusion, the
	// translation's gate-matrix fusion level. Amplitudes are
	// bit-identical across settings; only throughput changes.
	ChainFusion string
	// Encodings controls the engine's sparsity-first storage tier: ""
	// or "on" (default) enables compressed column encodings (RLE /
	// dictionary / sparse) and zone-map skip-scan, "off" keeps plain
	// typed vectors. Amplitudes are bit-identical across settings;
	// only throughput and memory density change.
	Encodings string
	// PlanCache, when non-nil, caches circuit→SQL translations across
	// Run calls: exact repeats skip translation entirely, parameter
	// sweeps reuse the SQL text and rebind only the numeric gate data.
	// One cache may be shared by many backends and used concurrently.
	PlanCache *PlanCache
	// Initial overrides the |0…0⟩ initial state.
	Initial *State
}

// NewSQLBackend returns the RDBMS-based simulator — the paper's
// contribution. Options may be omitted for defaults.
func NewSQLBackend(opts ...SQLBackendOptions) Backend {
	var o SQLBackendOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	return &sim.SQL{
		Mode:         o.Mode,
		Fusion:       o.Fusion,
		Encoding:     o.Encoding,
		MemoryBudget: o.MemoryBudget,
		SpillDir:     o.SpillDir,
		DisableSpill: o.DisableSpill,
		Parallelism:  o.Parallelism,
		Layout:       o.StorageLayout,
		Optimizer:    o.Optimizer,
		Kernels:      o.Kernels,
		ChainFusion:  o.ChainFusion,
		Encodings:    o.Encodings,
		Cache:        o.PlanCache,
		Initial:      o.Initial,
	}
}

// PlanCache is an LRU cache of circuit→SQL translations with exact and
// structural (parameter-sweep) hit tiers; see SQLBackendOptions.
type PlanCache = sim.PlanCache

// PlanCacheStats snapshot a cache's hit/miss counters.
type PlanCacheStats = sim.PlanCacheStats

// NewPlanCache returns a plan cache holding at most capacity
// translations (<= 0 uses the default capacity). Safe for concurrent
// use and shareable across backends.
func NewPlanCache(capacity int) *PlanCache { return sim.NewPlanCache(capacity) }

// KernelCounters snapshots the engine's cumulative gate-stage
// kernel-tier counters (process-wide, across every engine instance):
// compiles, cache_hits, executions, fallbacks, and per-reason
// fallback_<reason> counts. See SQLBackendOptions.Kernels.
func KernelCounters() map[string]int64 { return sqlengine.KernelCounters() }

// Simulation service (the system tier served by cmd/qymerad).

type (
	// Service is the concurrent simulation server: a bounded worker
	// pool with a FIFO job queue, admission control against a shared
	// engine memory budget, a shared plan cache, engine-level
	// cancellation, and an HTTP API (docs/SERVICE.md). It implements
	// http.Handler.
	Service = service.Server
	// ServiceConfig tunes a Service.
	ServiceConfig = service.Config
	// TraceSpan is one span of a job's trace (GET /v1/jobs/{id}/trace):
	// name, start offset and duration in microseconds, counters, and
	// child spans.
	TraceSpan = obs.SpanJSON
)

// NewService builds a ready-to-serve simulation service; serve it with
// net/http and stop it with Close. cmd/qymerad wraps it in a binary,
// and Client speaks its API.
func NewService(cfg ServiceConfig) *Service { return service.New(cfg) }

// NewStateVectorBackend returns the dense 2^n state-vector simulator.
// budget (optional) caps amplitude memory in bytes.
func NewStateVectorBackend(budget ...int64) Backend {
	sv := &sim.StateVector{}
	if len(budget) > 0 {
		sv.MemoryBudget = budget[0]
	}
	return sv
}

// NewSparseBackend returns the hash-map sparse simulator.
func NewSparseBackend(budget ...int64) Backend {
	sp := &sim.Sparse{}
	if len(budget) > 0 {
		sp.MemoryBudget = budget[0]
	}
	return sp
}

// NewMPSBackend returns the matrix-product-state simulator. maxBond
// (optional) caps the bond dimension; 0 is exact.
func NewMPSBackend(maxBond ...int) Backend {
	m := &sim.MPS{}
	if len(maxBond) > 0 {
		m.MaxBond = maxBond[0]
	}
	return m
}

// NewDDBackend returns the decision-diagram simulator.
func NewDDBackend() Backend { return &sim.DD{} }

// BackendByName is the Method Selector: it returns a default-configured
// backend for "sql", "sql-chain", "statevector", "sparse", "mps", or
// "dd".
func BackendByName(name string) (Backend, error) {
	switch strings.ToLower(name) {
	case "sql":
		return NewSQLBackend(), nil
	case "sql-chain":
		return NewSQLBackend(SQLBackendOptions{Mode: MaterializedChain}), nil
	case "statevector", "sv":
		return NewStateVectorBackend(), nil
	case "sparse":
		return NewSparseBackend(), nil
	case "mps":
		return NewMPSBackend(), nil
	case "dd":
		return NewDDBackend(), nil
	}
	return nil, fmt.Errorf("qymera: unknown backend %q (have sql, sql-chain, statevector, sparse, mps, dd)", name)
}

// BackendNames lists the selectable simulation methods.
func BackendNames() []string {
	return []string{"sql", "sql-chain", "statevector", "sparse", "mps", "dd"}
}

// Built-in circuit families (the paper's demo workloads).

// GHZ prepares the n-qubit GHZ state (Fig. 2's running example).
func GHZ(n int) *Circuit { return circuits.GHZ(n) }

// EqualSuperposition applies H to every qubit (the dense workload).
func EqualSuperposition(n int) *Circuit { return circuits.EqualSuperposition(n) }

// ParityCheck builds the parity-check algorithm over the given input
// bits with one ancilla qubit.
func ParityCheck(bits []bool) *Circuit { return circuits.ParityCheck(bits) }

// ParitySuperposition entangles the ancilla with the parity of every
// input simultaneously.
func ParitySuperposition(k int) *Circuit { return circuits.ParitySuperposition(k) }

// QFT is the quantum Fourier transform.
func QFT(n int) *Circuit { return circuits.QFT(n) }

// WState prepares the n-qubit W state.
func WState(n int) *Circuit { return circuits.WState(n) }

// BernsteinVazirani builds the hidden-bitstring recovery circuit.
func BernsteinVazirani(secret []bool) *Circuit { return circuits.BernsteinVazirani(secret) }

// Grover builds the textbook Grover search (2–5 qubits).
func Grover(n int, marked uint64) *Circuit { return circuits.Grover(n, marked) }

// HardwareEfficientAnsatz builds the layered variational circuit.
func HardwareEfficientAnsatz(n, layers int, params []float64) *Circuit {
	return circuits.HardwareEfficientAnsatz(n, layers, params)
}

// NISQ noise via quantum trajectories: noisy circuits are sampled as
// pure-state circuit instances with random Pauli errors, so every
// backend (including SQL) simulates noise unchanged.
type (
	// PauliNoiseModel sets per-gate depolarizing error rates.
	PauliNoiseModel = circuits.PauliNoiseModel
	// TrajectoryRunner averages observables over noise trajectories.
	TrajectoryRunner = circuits.TrajectoryRunner
)

// Output Layer: analysis queries computed inside the RDBMS over a state
// table T(s, r, i) (as produced by a MaterializedChain translation).

// ProbabilityQuery returns SQL computing the measurement distribution
// of a state table, highest probability first.
func ProbabilityQuery(table string) string { return core.ProbabilityQuery(table) }

// NormQuery returns SQL computing Σ|a|² (1.0 for a valid state).
func NormQuery(table string) string { return core.NormQuery(table) }

// QubitProbabilityQuery returns SQL computing P(qubit q = 1).
func QubitProbabilityQuery(table string, q int) string {
	return core.QubitProbabilityQuery(table, q)
}

// MarginalQuery returns SQL computing the joint distribution over the
// given qubits.
func MarginalQuery(table string, qubits []int) (string, error) {
	return core.MarginalQuery(table, qubits)
}

// ExpectationZQuery returns SQL computing ⟨Z⊗…⊗Z⟩ over the qubits.
func ExpectationZQuery(table string, qubits []int) (string, error) {
	return core.ExpectationZQuery(table, qubits)
}

// Circuit I/O.

// ReadJSON parses the JSON circuit format.
func ReadJSON(r io.Reader) (*Circuit, error) { return circuitio.ReadJSON(r) }

// WriteJSON serializes a circuit as JSON.
func WriteJSON(w io.Writer, c *Circuit) error { return circuitio.WriteJSON(w, c) }

// ReadQASM parses an OpenQASM 2.0 subset.
func ReadQASM(src string) (*Circuit, error) { return circuitio.ReadQASM(src) }

// Draw renders a circuit as ASCII art.
func Draw(c *Circuit) string { return circuitio.Draw(c) }
