package qymera

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"qymera/internal/circuitio"
	"qymera/internal/quantum"
	"qymera/internal/service"
)

// Client speaks the qymerad HTTP API (docs/SERVICE.md) from Go: the
// remote counterpart of the in-process backends. Synchronous runs use
// NDJSON amplitude streaming, so large states never require one giant
// response buffer on either side.
type Client struct {
	// BaseURL locates the server, e.g. "http://localhost:8087".
	BaseURL string
	// HTTPClient overrides http.DefaultClient.
	HTTPClient *http.Client
	// Tenant attributes this client's jobs to a tenant for the server's
	// quota accounting and fair scheduling (sent as the X-Qymera-Tenant
	// header; empty = the server's "default" tenant).
	Tenant string
}

// Wire types re-exported from the service package.
type (
	// RemoteOptions are the per-request backend knobs of the HTTP API.
	RemoteOptions = service.RequestOptions
	// RemoteStats mirror sim.Stats on the wire.
	RemoteStats = service.StatsJSON
	// RemoteJob is one job's status on the wire.
	RemoteJob = service.JobJSON
	// RemoteMetrics is the /metrics document.
	RemoteMetrics = service.MetricsJSON
	// RemoteHealth is the /healthz document.
	RemoteHealth = service.HealthJSON
	// RemoteTrace is one job's span trace from GET /v1/jobs/{id}/trace.
	RemoteTrace = service.TraceJSON
)

// RemoteResult is a completed remote simulation.
type RemoteResult struct {
	State *State
	Stats RemoteStats
}

// NewClient returns a client for the given base URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (cl *Client) httpClient() *http.Client {
	if cl.HTTPClient != nil {
		return cl.HTTPClient
	}
	return http.DefaultClient
}

// request builds the wire body for a circuit run.
func requestBody(c *Circuit, backend string, opts []RemoteOptions) ([]byte, error) {
	doc, err := circuitio.MarshalJSON(c)
	if err != nil {
		return nil, err
	}
	req := service.Request{Circuit: doc, Backend: backend}
	if len(opts) > 0 {
		req.Options = opts[0]
	}
	return json.Marshal(req)
}

func (cl *Client) do(ctx context.Context, method, path string, body []byte, accept string) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, cl.BaseURL+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	if cl.Tenant != "" {
		req.Header.Set(service.TenantHeader, cl.Tenant)
	}
	resp, err := cl.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 300 {
		defer resp.Body.Close()
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return nil, fmt.Errorf("qymera: server: %s (HTTP %d)", e.Error, resp.StatusCode)
		}
		return nil, fmt.Errorf("qymera: server returned HTTP %d for %s %s", resp.StatusCode, method, path)
	}
	return resp, nil
}

func (cl *Client) getJSON(ctx context.Context, path string, out any) error {
	resp, err := cl.do(ctx, http.MethodGet, path, nil, "")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// Simulate runs a circuit synchronously on the server, streaming the
// amplitudes back as NDJSON. Cancelling ctx mid-run cancels the job on
// the server too — down to the engine's batch boundaries.
func (cl *Client) Simulate(ctx context.Context, c *Circuit, backend string, opts ...RemoteOptions) (*RemoteResult, error) {
	body, err := requestBody(c, backend, opts)
	if err != nil {
		return nil, err
	}
	resp, err := cl.do(ctx, http.MethodPost, "/v1/simulate?stream=ndjson", body, "application/x-ndjson")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("qymera: empty stream from server")
	}
	var hdr struct {
		NumQubits int `json:"num_qubits"`
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("qymera: bad stream header: %w", err)
	}
	state := quantum.NewState(hdr.NumQubits)
	out := &RemoteResult{State: state}
	sawStats := false
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.Contains(line, []byte(`"stats"`)) {
			var tr struct {
				Stats RemoteStats `json:"stats"`
			}
			if err := json.Unmarshal(line, &tr); err != nil {
				return nil, fmt.Errorf("qymera: bad stream trailer: %w", err)
			}
			out.Stats = tr.Stats
			sawStats = true
			continue
		}
		var a service.Amplitude
		if err := json.Unmarshal(line, &a); err != nil {
			return nil, fmt.Errorf("qymera: bad amplitude line: %w", err)
		}
		state.Set(a.S, complex(a.R, a.I))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawStats {
		return nil, fmt.Errorf("qymera: truncated stream (no stats trailer)")
	}
	return out, nil
}

// SubmitJob enqueues an asynchronous job and returns its id.
func (cl *Client) SubmitJob(ctx context.Context, c *Circuit, backend string, opts ...RemoteOptions) (string, error) {
	body, err := requestBody(c, backend, opts)
	if err != nil {
		return "", err
	}
	resp, err := cl.do(ctx, http.MethodPost, "/v1/jobs", body, "")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var j RemoteJob
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		return "", err
	}
	return j.ID, nil
}

// Job fetches one job's status (with its result once done).
func (cl *Client) Job(ctx context.Context, id string) (RemoteJob, error) {
	var j RemoteJob
	err := cl.getJSON(ctx, "/v1/jobs/"+id, &j)
	return j, err
}

// CancelJob cancels a queued or running job; the server aborts running
// engine work at the next batch boundary.
func (cl *Client) CancelJob(ctx context.Context, id string) error {
	resp, err := cl.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, "")
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// WaitJob polls until the job reaches a terminal state (poll <= 0 uses
// 50ms) and converts a done job's result. Failed and cancelled jobs
// return an error carrying the job's error text.
func (cl *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (*RemoteResult, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	for {
		j, err := cl.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		switch service.JobStatus(j.Status) {
		case service.JobDone:
			if j.Result == nil {
				return nil, fmt.Errorf("qymera: job %s done without result", id)
			}
			state := quantum.NewState(j.Result.NumQubits)
			for _, a := range j.Result.Amplitudes {
				state.Set(a.S, complex(a.R, a.I))
			}
			return &RemoteResult{State: state, Stats: j.Result.Stats}, nil
		case service.JobFailed:
			return nil, fmt.Errorf("qymera: job %s failed: %s", id, j.Error)
		case service.JobCancelled:
			return nil, fmt.Errorf("qymera: job %s was cancelled", id)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// JobTrace fetches a job's span trace. Works while the job is still
// running (open spans report duration-so-far); the server returns 404
// when the job is unknown or was not traced (tracing off).
func (cl *Client) JobTrace(ctx context.Context, id string) (RemoteTrace, error) {
	var tr RemoteTrace
	err := cl.getJSON(ctx, "/v1/jobs/"+id+"/trace", &tr)
	return tr, err
}

// Health fetches /healthz.
func (cl *Client) Health(ctx context.Context) (RemoteHealth, error) {
	var h RemoteHealth
	err := cl.getJSON(ctx, "/healthz", &h)
	return h, err
}

// Metrics fetches /metrics.
func (cl *Client) Metrics(ctx context.Context) (RemoteMetrics, error) {
	var m RemoteMetrics
	err := cl.getJSON(ctx, "/metrics", &m)
	return m, err
}
