module qymera

go 1.24
