package qymera_test

import (
	"context"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"qymera"
)

func startService(t *testing.T) (*qymera.Client, *qymera.Service) {
	t.Helper()
	svc := qymera.NewService(qymera.ServiceConfig{Workers: 2})
	ts := httptest.NewServer(svc)
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return qymera.NewClient(ts.URL), svc
}

func remoteStatesMatch(t *testing.T, want, got *qymera.State) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("nonzero counts differ: want %d, got %d", want.Len(), got.Len())
	}
	for _, idx := range want.Indices() {
		w, g := want.Amplitude(idx), got.Amplitude(idx)
		if math.Float64bits(real(w)) != math.Float64bits(real(g)) ||
			math.Float64bits(imag(w)) != math.Float64bits(imag(g)) {
			t.Fatalf("amplitude at |%d⟩ differs: %v vs %v", idx, w, g)
		}
	}
}

// TestClientSimulateMatchesLocal round-trips a circuit through the
// HTTP service: remote amplitudes must be bit-identical to the local
// backend for every method.
func TestClientSimulateMatchesLocal(t *testing.T) {
	client, _ := startService(t)
	c := qymera.GHZ(8)
	for _, backend := range qymera.BackendNames() {
		local, err := mustBackend(backend).Run(c)
		if err != nil {
			t.Fatalf("%s local: %v", backend, err)
		}
		remote, err := client.Simulate(context.Background(), c, backend)
		if err != nil {
			t.Fatalf("%s remote: %v", backend, err)
		}
		remoteStatesMatch(t, local.State, remote.State)
		if remote.Stats.GateCount != c.Len() {
			t.Fatalf("%s stats: %+v", backend, remote.Stats)
		}
	}
}

func mustBackend(name string) qymera.Backend {
	b, err := qymera.BackendByName(name)
	if err != nil {
		panic(err)
	}
	return b
}

func TestClientJobLifecycle(t *testing.T) {
	client, _ := startService(t)
	c := qymera.QFT(6)
	local, err := qymera.NewSQLBackend().Run(c)
	if err != nil {
		t.Fatal(err)
	}

	id, err := client.SubmitJob(context.Background(), c, "sql")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := client.WaitJob(ctx, id, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	remoteStatesMatch(t, local.State, res.State)

	h, err := client.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("health %+v", h)
	}
	m, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Jobs["done"] < 1 {
		t.Fatalf("metrics %+v", m)
	}
}

func TestClientCancelJob(t *testing.T) {
	client, _ := startService(t)
	id, err := client.SubmitJob(context.Background(), qymera.ParitySuperposition(16), "sql")
	if err != nil {
		t.Fatal(err)
	}
	if err := client.CancelJob(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	_, err = client.WaitJob(ctx, id, 10*time.Millisecond)
	if err == nil {
		t.Skip("job finished before cancellation landed")
	}
}
