package qymera_test

import (
	"fmt"
	"math/rand"

	"qymera"
)

// The paper's running example: translate the 3-qubit GHZ circuit and
// print the final SELECT of the generated WITH-chain.
func ExampleTranslate() {
	c := qymera.NewCircuit(3).H(0).CX(0, 1).CX(1, 2)
	tr, err := qymera.Translate(c, nil, qymera.TranslateOptions{Mode: qymera.SingleQuery})
	if err != nil {
		panic(err)
	}
	fmt.Println(tr.StageCount, "stages, final table", tr.FinalTable)
	// Output:
	// 3 stages, final table T3
}

// Simulating on the RDBMS backend.
func ExampleNewSQLBackend() {
	c := qymera.NewCircuit(2).H(0).CX(0, 1) // Bell pair
	res, err := qymera.NewSQLBackend().Run(c)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.State.FormatKet())
	// Output:
	// 0.7071|00⟩ + 0.7071|11⟩
}

// The Method Selector chooses a backend by name.
func ExampleBackendByName() {
	b, err := qymera.BackendByName("dd")
	if err != nil {
		panic(err)
	}
	res, err := b.Run(qymera.GHZ(20))
	if err != nil {
		panic(err)
	}
	fmt.Println(res.State.Len(), "nonzero amplitudes at 20 qubits")
	// Output:
	// 2 nonzero amplitudes at 20 qubits
}

// Measurement sampling from a final state.
func ExampleState_sample() {
	res, err := qymera.NewSQLBackend().Run(qymera.GHZ(3))
	if err != nil {
		panic(err)
	}
	counts := res.State.Sample(rand.New(rand.NewSource(1)), 1000)
	fmt.Println(counts[0]+counts[7] == 1000)
	// Output:
	// true
}

// Analysis inside the database: the measurement distribution of a state
// table as SQL.
func ExampleProbabilityQuery() {
	fmt.Println(qymera.ProbabilityQuery("T3"))
	// Output:
	// SELECT s, ((r * r) + (i * i)) AS p FROM T3 ORDER BY p DESC, s
}

// Loading a circuit from OpenQASM 2.0.
func ExampleReadQASM() {
	c, err := qymera.ReadQASM(`
		OPENQASM 2.0;
		qreg q[2];
		h q[0];
		cx q[0], q[1];
	`)
	if err != nil {
		panic(err)
	}
	fmt.Println(c.NumQubits(), "qubits,", c.Len(), "gates")
	// Output:
	// 2 qubits, 2 gates
}

// Out-of-core simulation: the run completes under a cap far below the
// state size by spilling to disk.
func ExampleSQLBackendOptions() {
	b := qymera.NewSQLBackend(qymera.SQLBackendOptions{MemoryBudget: 16 << 10})
	res, err := b.Run(qymera.EqualSuperposition(10))
	if err != nil {
		panic(err)
	}
	fmt.Println(res.State.Len() == 1024, res.Stats.SpilledRows > 0)
	// Output:
	// true true
}
