// Command qymera translates quantum circuits to SQL and simulates them
// on the embedded relational engine or the comparison backends.
//
// Usage:
//
//	qymera translate -circuit ghz:3 [-mode single|chain] [-fusion off|same|subset] [-prune eps]
//	qymera simulate  -circuit qft:5 [-backend sql|statevector|sparse|mps|dd] [-budget bytes]
//	qymera draw      -circuit parity:1011
//	qymera gates
//
// Circuits come from built-in families (-circuit name:arg) or files
// (-in circuit.json | circuit.qasm).
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"qymera"
	"qymera/internal/bench"
	"qymera/internal/quantum"
	"qymera/internal/sqlengine"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "translate":
		err = cmdTranslate(os.Args[2:])
	case "simulate":
		err = cmdSimulate(os.Args[2:])
	case "draw":
		err = cmdDraw(os.Args[2:])
	case "explain":
		err = cmdExplain(os.Args[2:])
	case "gates":
		err = cmdGates()
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "qymera: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "qymera:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `qymera - quantum circuit simulation via SQL

commands:
  translate   print the SQL program for a circuit
  simulate    run a circuit on a backend and print the final state
  draw        render a circuit as ASCII art
  explain     show the relational query plans for a circuit's SQL
  gates       list the supported gate set

circuit sources (for translate/simulate/draw):
  -circuit ghz:N | superpos:N | qft:N | w:N | parity:BITS | bv:BITS | grover:N,M
  -in FILE.json | FILE.qasm
`)
}

// circuitFlags adds the shared circuit-source flags.
func circuitFlags(fs *flag.FlagSet) (*string, *string) {
	spec := fs.String("circuit", "", "built-in circuit spec, e.g. ghz:3, qft:5, parity:1011")
	in := fs.String("in", "", "circuit file (.json or .qasm)")
	return spec, in
}

func loadCircuit(spec, in string) (*qymera.Circuit, error) {
	if (spec == "") == (in == "") {
		return nil, fmt.Errorf("exactly one of -circuit or -in is required")
	}
	if in != "" {
		data, err := os.ReadFile(in)
		if err != nil {
			return nil, err
		}
		switch strings.ToLower(filepath.Ext(in)) {
		case ".json":
			return qymera.ReadJSON(strings.NewReader(string(data)))
		case ".qasm":
			return qymera.ReadQASM(string(data))
		}
		return nil, fmt.Errorf("unknown circuit file extension %q (want .json or .qasm)", filepath.Ext(in))
	}
	return buildSpec(spec)
}

// buildSpec parses "family:arg" built-in circuit specs.
func buildSpec(spec string) (*qymera.Circuit, error) {
	name, arg, _ := strings.Cut(spec, ":")
	atoi := func() (int, error) {
		n, err := strconv.Atoi(arg)
		if err != nil || n <= 0 {
			return 0, fmt.Errorf("spec %q needs a positive integer argument", spec)
		}
		return n, nil
	}
	bits := func() ([]bool, error) {
		if arg == "" {
			return nil, fmt.Errorf("spec %q needs a bitstring argument", spec)
		}
		out := make([]bool, len(arg))
		for i, ch := range arg {
			switch ch {
			case '0':
			case '1':
				out[i] = true
			default:
				return nil, fmt.Errorf("spec %q: bitstring may contain only 0 and 1", spec)
			}
		}
		return out, nil
	}
	switch strings.ToLower(name) {
	case "ghz":
		n, err := atoi()
		if err != nil {
			return nil, err
		}
		return qymera.GHZ(n), nil
	case "superpos", "superposition":
		n, err := atoi()
		if err != nil {
			return nil, err
		}
		return qymera.EqualSuperposition(n), nil
	case "qft":
		n, err := atoi()
		if err != nil {
			return nil, err
		}
		return qymera.QFT(n), nil
	case "w":
		n, err := atoi()
		if err != nil {
			return nil, err
		}
		return qymera.WState(n), nil
	case "parity":
		b, err := bits()
		if err != nil {
			return nil, err
		}
		return qymera.ParityCheck(b), nil
	case "bv":
		b, err := bits()
		if err != nil {
			return nil, err
		}
		return qymera.BernsteinVazirani(b), nil
	case "grover":
		parts := strings.Split(arg, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("spec grover needs N,MARKED")
		}
		n, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, err
		}
		m, err := strconv.ParseUint(parts[1], 10, 64)
		if err != nil {
			return nil, err
		}
		return qymera.Grover(n, m), nil
	}
	return nil, fmt.Errorf("unknown circuit family %q", name)
}

func cmdTranslate(args []string) error {
	fs := flag.NewFlagSet("translate", flag.ExitOnError)
	spec, in := circuitFlags(fs)
	mode := fs.String("mode", "single", "single (one WITH query) or chain (materialized tables)")
	fusion := fs.String("fusion", "off", "gate fusion: off, same, subset")
	prune := fs.Float64("prune", 0, "amplitude pruning epsilon (0 = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := loadCircuit(*spec, *in)
	if err != nil {
		return err
	}
	opts := qymera.TranslateOptions{PruneEps: *prune}
	switch *mode {
	case "single":
		opts.Mode = qymera.SingleQuery
	case "chain":
		opts.Mode = qymera.MaterializedChain
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	switch *fusion {
	case "off":
		opts.Fusion = qymera.FusionOff
	case "same":
		opts.Fusion = qymera.FusionSameQubits
	case "subset":
		opts.Fusion = qymera.FusionSubset
	default:
		return fmt.Errorf("unknown fusion level %q", *fusion)
	}
	tr, err := qymera.Translate(c, nil, opts)
	if err != nil {
		return err
	}
	fmt.Printf("-- circuit: %s (%d qubits, %d gates, %d SQL stages)\n",
		c.Name(), c.NumQubits(), c.Len(), tr.StageCount)
	fmt.Print(tr.Script())
	return nil
}

func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	spec, in := circuitFlags(fs)
	backend := fs.String("backend", "sql", "sql, sql-chain, statevector, sparse, mps, dd")
	budget := fs.Int64("budget", 0, "memory budget in bytes (0 = unlimited)")
	top := fs.Int("top", 16, "print at most this many basis states")
	sample := fs.Int("sample", 0, "draw this many measurement shots")
	seed := fs.Int64("seed", 1, "RNG seed for sampling")
	bloch := fs.Bool("bloch", false, "print per-qubit Bloch vectors")
	marginal := fs.String("marginal", "", "comma-separated qubits for a marginal distribution, e.g. 0,2")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := loadCircuit(*spec, *in)
	if err != nil {
		return err
	}
	var b qymera.Backend
	if *backend == "sql" && *budget > 0 {
		b = qymera.NewSQLBackend(qymera.SQLBackendOptions{MemoryBudget: *budget})
	} else {
		b, err = qymera.BackendByName(*backend)
		if err != nil {
			return err
		}
		if *budget > 0 && *backend == "statevector" {
			b = qymera.NewStateVectorBackend(*budget)
		}
	}
	res, err := b.Run(c)
	if err != nil {
		return err
	}
	printState(res.State, *top)
	st := res.Stats
	fmt.Printf("\nbackend=%s time=%s peak=%s maxIntermediate=%d finalRows=%d spilled=%d %s\n",
		st.Backend, bench.FormatDuration(st.WallTime), bench.FormatBytes(st.PeakBytes),
		st.MaxIntermediateSize, st.FinalNonzeros, st.SpilledRows, st.Extra)

	if *sample > 0 {
		rng := rand.New(rand.NewSource(*seed))
		counts := res.State.Sample(rng, *sample)
		fmt.Printf("\n%d measurement shots (seed %d):\n", *sample, *seed)
		for _, o := range res.State.TopOutcomes(*top) {
			fmt.Printf("  |%0*b⟩  %5d shots (exact p=%.4f)\n",
				c.NumQubits(), o.Index, counts[o.Index], o.Probability)
		}
	}
	if *bloch {
		fmt.Println("\nper-qubit Bloch vectors (|r|<1 ⇒ entangled/mixed):")
		for q := 0; q < c.NumQubits(); q++ {
			x, y, z, err := res.State.BlochVector(q)
			if err != nil {
				return err
			}
			r := math.Sqrt(x*x + y*y + z*z)
			fmt.Printf("  q%-2d  x=%+.4f y=%+.4f z=%+.4f  |r|=%.4f\n", q, x, y, z, r)
		}
	}
	if *marginal != "" {
		var qubits []int
		for _, part := range strings.Split(*marginal, ",") {
			q, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad marginal qubit %q", part)
			}
			qubits = append(qubits, q)
		}
		m, err := res.State.MarginalProbabilities(qubits)
		if err != nil {
			return err
		}
		fmt.Printf("\nmarginal distribution over qubits %v:\n", qubits)
		for pattern := uint64(0); pattern < uint64(1)<<uint(len(qubits)); pattern++ {
			if p, ok := m[pattern]; ok {
				fmt.Printf("  |%0*b⟩  p=%.6f\n", len(qubits), pattern, p)
			}
		}
	}
	return nil
}

func printState(st *quantum.State, top int) {
	idx := st.Indices()
	fmt.Printf("final state: %d nonzero basis states\n", len(idx))
	for i, k := range idx {
		if i >= top {
			fmt.Printf("  ... %d more\n", len(idx)-top)
			break
		}
		a := st.Amplitude(k)
		fmt.Printf("  |%0*b⟩  amp=(%.6g%+.6gi)  p=%.6g\n",
			st.NumQubits(), k, real(a), imag(a), st.Probability(k))
	}
}

func cmdDraw(args []string) error {
	fs := flag.NewFlagSet("draw", flag.ExitOnError)
	spec, in := circuitFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := loadCircuit(*spec, *in)
	if err != nil {
		return err
	}
	fmt.Print(qymera.Draw(c))
	return nil
}

// cmdExplain prints the engine's physical plan for each gate stage,
// demonstrating what the RDBMS optimizer sees.
func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	spec, in := circuitFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := loadCircuit(*spec, *in)
	if err != nil {
		return err
	}
	tr, err := qymera.Translate(c, nil, qymera.TranslateOptions{Mode: qymera.MaterializedChain})
	if err != nil {
		return err
	}
	db, err := sqlengine.Open(sqlengine.Config{})
	if err != nil {
		return err
	}
	defer db.Close()
	// Execute setup and stages so per-stage plans carry row counts.
	for _, stmt := range tr.Setup {
		if _, err := db.Exec(stmt); err != nil {
			return err
		}
	}
	for i, step := range tr.Steps {
		fmt.Printf("-- stage %d: gate %s on qubits %v\n", i+1, step.GateTable, step.Qubits)
		plan, err := db.Explain(step.Body)
		if err != nil {
			return err
		}
		fmt.Println(plan)
		if step.SQL != "" {
			if _, err := db.Exec(step.SQL); err != nil {
				return err
			}
		}
	}
	fmt.Println("-- final query")
	plan, err := db.Explain(tr.Query)
	if err != nil {
		return err
	}
	fmt.Println(plan)
	return nil
}

func cmdGates() error {
	fmt.Println("supported gates (name: qubits, params):")
	for _, name := range quantum.KnownGates() {
		arity, _ := quantum.GateArity(name)
		params, _ := quantum.GateParamCount(name)
		fmt.Printf("  %-6s %d qubit(s), %d param(s)\n", name, arity, params)
	}
	return nil
}
