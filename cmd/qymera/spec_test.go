package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBuildSpecFamilies(t *testing.T) {
	cases := []struct {
		spec   string
		qubits int
		gates  int // -1 means "just check it builds"
	}{
		{"ghz:4", 4, 4},
		{"superpos:3", 3, 3},
		{"superposition:3", 3, 3},
		{"qft:3", 3, -1},
		{"w:5", 5, -1},
		{"parity:101", 4, -1},
		{"bv:11", 3, -1},
		{"grover:3,5", 3, -1},
	}
	for _, tc := range cases {
		c, err := buildSpec(tc.spec)
		if err != nil {
			t.Fatalf("%s: %v", tc.spec, err)
		}
		if c.NumQubits() != tc.qubits {
			t.Fatalf("%s: qubits = %d, want %d", tc.spec, c.NumQubits(), tc.qubits)
		}
		if tc.gates >= 0 && c.Len() != tc.gates {
			t.Fatalf("%s: gates = %d, want %d", tc.spec, c.Len(), tc.gates)
		}
	}
}

func TestBuildSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"ghz", "ghz:0", "ghz:x", "parity:", "parity:102",
		"grover:3", "grover:a,b", "unknown:3",
	} {
		if _, err := buildSpec(spec); err == nil {
			t.Fatalf("%s: expected error", spec)
		}
	}
}

func TestLoadCircuitFromFiles(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "c.json")
	if err := os.WriteFile(jsonPath, []byte(`{"num_qubits":2,"gates":[{"name":"H","qubits":[0]}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := loadCircuit("", jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits() != 2 || c.Len() != 1 {
		t.Fatalf("c = %s", c.String())
	}

	qasmPath := filepath.Join(dir, "c.qasm")
	if err := os.WriteFile(qasmPath, []byte("qreg q[2]; h q[0]; cx q[0], q[1];"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err = loadCircuit("", qasmPath)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("c = %s", c.String())
	}

	// Exactly one source is required.
	if _, err := loadCircuit("", ""); err == nil {
		t.Fatal("expected error for no source")
	}
	if _, err := loadCircuit("ghz:2", jsonPath); err == nil {
		t.Fatal("expected error for two sources")
	}
	// Unknown extension.
	badPath := filepath.Join(dir, "c.txt")
	os.WriteFile(badPath, []byte("x"), 0o644)
	if _, err := loadCircuit("", badPath); err == nil || !strings.Contains(err.Error(), "extension") {
		t.Fatalf("err = %v", err)
	}
}
