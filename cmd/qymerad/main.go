// Command qymerad serves Qymera's simulation service over HTTP: a
// bounded worker pool with a FIFO job queue, admission control against
// a shared engine memory budget, a plan cache reused across requests,
// and engine-level cancellation (DELETE /v1/jobs/{id} aborts an
// in-flight gate-stage query at the next batch boundary).
//
// Usage:
//
//	qymerad                         # serve on :8087 with defaults
//	qymerad -addr :9000 -workers 8  # bigger pool
//	qymerad -mem-budget 2147483648  # 2 GiB shared engine budget
//	qymerad -data-dir /var/lib/qymera
//	                                # durable: append every job
//	                                # transition to a persistent log and
//	                                # replay it on restart (completed
//	                                # jobs stay queryable, interrupted
//	                                # ones re-run)
//	qymerad -tenant-max-running 2 -tenant-max-queued 32
//	                                # per-tenant quotas in front of the
//	                                # fair scheduler
//	qymerad -data-dir d -slow-query-ms 500 -debug-addr :6060
//	                                # observability: traces of jobs
//	                                # slower than 500ms land in
//	                                # d/slow_queries.ndjson, pprof serves
//	                                # on :6060 (GET /v1/jobs/{id}/trace
//	                                # has per-job span trees either way)
//
// The HTTP API is documented in docs/SERVICE.md; a quick check:
//
//	curl localhost:8087/healthz
//	curl -X POST localhost:8087/v1/simulate -d '{
//	  "circuit": {"num_qubits": 2,
//	              "gates": [{"name":"H","qubits":[0]},
//	                        {"name":"CX","qubits":[0,1]}]}}'
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof" // profiling endpoints, served only on -debug-addr
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"qymera/internal/service"
)

func main() {
	addr := flag.String("addr", ":8087", "listen address")
	workers := flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "job queue depth; submissions beyond it get HTTP 429")
	memBudget := flag.Int64("mem-budget", 0, "shared engine memory budget in bytes across all jobs (0 = unlimited)")
	planCache := flag.Int("plan-cache", 0, "plan cache capacity in translations (0 = default, negative disables)")
	parallelism := flag.Int("parallelism", 0, "per-query morsel-parallel workers (0 = GOMAXPROCS)")
	spillDir := flag.String("spill-dir", "", "directory for out-of-core spill files (empty = OS temp)")
	retain := flag.Int("retain-jobs", 256, "finished jobs kept queryable")
	dataDir := flag.String("data-dir", "", "directory for the persistent job log; replayed on restart (empty = no durability)")
	tenantMaxRunning := flag.Int("tenant-max-running", 0, "per-tenant cap on concurrently running jobs (0 = none)")
	tenantMaxQueued := flag.Int("tenant-max-queued", 0, "per-tenant cap on queued jobs; beyond it submissions get HTTP 429 (0 = none)")
	tenantMaxBytes := flag.Int64("tenant-max-bytes", 0, "per-tenant cap on the sum of running jobs' estimated_bytes; estimates beyond it get HTTP 422 (0 = none)")
	tracing := flag.String("tracing", "", "span-tracing default: sampled (default), full, or off; per-request options.trace overrides")
	slowQueryMs := flag.Int("slow-query-ms", 0, "with -data-dir, append full traces of jobs at least this slow to slow_queries.ndjson (0 = off)")
	debugAddr := flag.String("debug-addr", "", "separate listen address for net/http/pprof profiling endpoints (empty = off)")
	flag.Parse()

	srv, err := service.Open(service.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		MemoryBudget:     *memBudget,
		PlanCacheSize:    *planCache,
		Parallelism:      *parallelism,
		SpillDir:         *spillDir,
		RetainJobs:       *retain,
		DataDir:          *dataDir,
		TenantMaxRunning: *tenantMaxRunning,
		TenantMaxQueued:  *tenantMaxQueued,
		TenantMaxBytes:   *tenantMaxBytes,
		Tracing:          *tracing,
		SlowQueryMillis:  *slowQueryMs,
	})
	if err != nil {
		log.Fatalf("qymerad: %v", err)
	}
	if *dataDir != "" {
		rs := srv.Manager().Replay()
		log.Printf("qymerad: job log replayed %d records: %d completed jobs kept, %d re-enqueued, %d corrupt tail records skipped",
			rs.Records, rs.CompletedKept, rs.Requeued, rs.CorruptRecords)
	}

	if *debugAddr != "" {
		// pprof stays off the public mux: the profiling endpoints bind
		// their own address so exposing the API never exposes the
		// profiler. http.DefaultServeMux carries the net/http/pprof
		// handlers registered by the import's init.
		go func() {
			log.Printf("qymerad: pprof on %s/debug/pprof/", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Printf("qymerad: debug listener: %v", err)
			}
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	effectiveWorkers := *workers
	if effectiveWorkers <= 0 {
		effectiveWorkers = runtime.GOMAXPROCS(0)
	}
	errc := make(chan error, 1)
	go func() {
		log.Printf("qymerad: serving on %s (workers=%d, queue=%d, mem-budget=%d)",
			*addr, effectiveWorkers, *queue, *memBudget)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("qymerad: %v", err)
		}
	case <-ctx.Done():
		log.Print("qymerad: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("qymerad: shutdown: %v", err)
		}
		srv.Close() // cancels queued + running jobs engine-level
	}
}
