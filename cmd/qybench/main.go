// Command qybench regenerates the paper's experiments: every table and
// figure artifact has a corresponding experiment in internal/bench (see
// docs/BENCHMARKS.md for the experiment index, the JSON report schemas,
// and how to compare runs against the committed BENCH_*.json baselines).
//
// Usage:
//
//	qybench                  # run everything, text output
//	qybench -exp fig2,ghz    # run selected experiments
//	qybench -quick           # smaller sizes (seconds, for CI)
//	qybench -format md       # markdown tables
//	qybench -out results/    # additionally write one CSV per table
//	qybench -benchjson BENCH_sqlengine.json
//	                         # write the machine-readable engine
//	                         # throughput report (GHZ/QFT/parity via
//	                         # the SQL backend)
//	qybench -benchjson BENCH_sqlengine_parallel.json
//	                         # paths containing "parallel" write the
//	                         # morsel-parallel scaling report instead
//	                         # (1/2/4/8 workers + amplitude bit-identity
//	                         # across worker counts and storage layouts)
//	qybench -benchjson BENCH_service.json
//	                         # paths containing "service" write the
//	                         # qymerad service-tier report (sync request
//	                         # throughput, plan-cache hit speedups,
//	                         # served-vs-direct amplitude bit-identity)
//	qybench -benchjson BENCH_sqlengine_optimizer.json
//	                         # paths containing "optimizer" write the
//	                         # cost-based-optimizer report (gate-stage
//	                         # query, misordered join, GHZ/QFT sims with
//	                         # the optimizer on vs off + bit-identity)
//	qybench -benchjson BENCH_sqlengine_kernel.json
//	                         # paths containing "kernel" write the
//	                         # compiled gate-stage kernel report (cached
//	                         # sweep-path query and sims with the kernel
//	                         # tier on vs off + bit-identity)
//	qybench -benchjson BENCH_service_storm.json
//	                         # paths containing "storm" write the
//	                         # multi-tenant service-storm report
//	                         # (p50/p99 latency, queue saturation,
//	                         # inter-tenant fairness spread, durable job
//	                         # log on, served-vs-direct bit-identity)
//	qybench -benchjson BENCH_sqlengine_storage.json
//	                         # paths containing "storage" write the
//	                         # sparsity-first storage report (norm-pruned
//	                         # and gate-stage queries over a nearly
//	                         # sparse amplitude table with encodings on
//	                         # vs off + zone-map skip counts +
//	                         # bit-identity)
//	qybench -benchjson BENCH_sqlengine_obs.json
//	                         # paths containing "obs" write the span-
//	                         # tracing overhead report (gate-stage query
//	                         # with tracing off / enabled-but-untraced /
//	                         # sampled / full + bit-identity + traced
//	                         # simulation span coverage)
//	qybench -benchjson BENCH_sqlengine_fusion.json
//	                         # paths containing "fusion" write the
//	                         # whole-circuit kernel-fusion report (deep
//	                         # gate-stage chains per depth, interpreted
//	                         # vs single-stage kernels vs fused chain +
//	                         # bit-identity + chain counters)
//	qybench -compareallocs BENCH_sqlengine.json NEW.json
//	                         # allocation regression gate: fail when
//	                         # NEW.json's fixed-size gate-stage query
//	                         # allocs/op exceed the committed baseline
//	                         # by more than 20%
//	qybench -stormgate BENCH_service_storm.json
//	                         # service-storm regression gate: fail when
//	                         # the report is not bit-identical, has no
//	                         # latency tail, or its fairness spread
//	                         # exceeds 1.5x
//	qybench -storagegate BENCH_sqlengine_storage.json
//	                         # sparsity-storage regression gate: fail
//	                         # when the report is not bit-identical, no
//	                         # morsel was zone-skipped, or the sparse
//	                         # scan did not win with encodings on
//	qybench -obsgate BENCH_sqlengine_obs.json
//	                         # observability regression gate: fail when
//	                         # tracing changed result bits, the enabled-
//	                         # but-untraced overhead exceeds 2%, traced
//	                         # modes collected no spans, or the traced
//	                         # simulation is missing a pipeline phase
//	qybench -fusiongate BENCH_sqlengine_fusion.json
//	                         # whole-circuit fusion regression gate:
//	                         # fail when any variant is not
//	                         # bit-identical, the headline chain is
//	                         # shallower than 16 stages, the fused
//	                         # chain is not faster than stage-at-a-time
//	                         # kernels, or no intermediate stage was
//	                         # elided
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"qymera/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
	quick := flag.Bool("quick", false, "reduced problem sizes")
	format := flag.String("format", "text", "text, md, or csv")
	out := flag.String("out", "", "directory for per-table CSV files")
	list := flag.Bool("list", false, "list experiments and exit")
	benchJSON := flag.String("benchjson", "", "write a machine-readable SQL-engine report to this path and exit: paths containing \"parallel\" get the morsel-parallel scaling report (BENCH_sqlengine_parallel.json), anything else the throughput report (BENCH_sqlengine.json)")
	compareAllocs := flag.String("compareallocs", "", "allocation regression gate: compare the gate-stage allocs/op of a fresh BENCH_sqlengine.json (first positional argument) against this committed baseline and exit nonzero on a >20% regression")
	stormGate := flag.String("stormgate", "", "service-storm regression gate: validate this BENCH_service_storm.json (amplitudes bit-identical, p99 > 0, fairness spread <= 1.5) and exit nonzero on breach")
	storageGate := flag.String("storagegate", "", "sparsity-storage regression gate: validate this BENCH_sqlengine_storage.json (results bit-identical, morsels actually zone-skipped, sparse scan faster with encodings) and exit nonzero on breach")
	obsGate := flag.String("obsgate", "", "observability regression gate: validate this BENCH_sqlengine_obs.json (tracing bit-identical, enabled-but-untraced overhead <= 2%, traced modes collect spans covering translate/stages/query/emit) and exit nonzero on breach")
	fusionGate := flag.String("fusiongate", "", "whole-circuit fusion regression gate: validate this BENCH_sqlengine_fusion.json (all variants bit-identical, headline chain >= 16 stages, fused faster than stage-at-a-time kernels, intermediates elided) and exit nonzero on breach")
	flag.Parse()

	if *stormGate != "" {
		if err := bench.StormGate(*stormGate); err != nil {
			fmt.Fprintln(os.Stderr, "qybench:", err)
			os.Exit(1)
		}
		fmt.Printf("storm gate ok: %s\n", *stormGate)
		return
	}

	if *storageGate != "" {
		if err := bench.StorageGate(*storageGate); err != nil {
			fmt.Fprintln(os.Stderr, "qybench:", err)
			os.Exit(1)
		}
		fmt.Printf("storage gate ok: %s\n", *storageGate)
		return
	}

	if *obsGate != "" {
		if err := bench.ObsGate(*obsGate); err != nil {
			fmt.Fprintln(os.Stderr, "qybench:", err)
			os.Exit(1)
		}
		fmt.Printf("obs gate ok: %s\n", *obsGate)
		return
	}

	if *fusionGate != "" {
		if err := bench.FusionGate(*fusionGate); err != nil {
			fmt.Fprintln(os.Stderr, "qybench:", err)
			os.Exit(1)
		}
		fmt.Printf("fusion gate ok: %s\n", *fusionGate)
		return
	}

	if *compareAllocs != "" {
		newPath := flag.Arg(0)
		if newPath == "" {
			fmt.Fprintln(os.Stderr, "qybench: -compareallocs needs the new report path as an argument")
			os.Exit(2)
		}
		if err := bench.CompareAllocGate(*compareAllocs, newPath); err != nil {
			fmt.Fprintln(os.Stderr, "qybench:", err)
			os.Exit(1)
		}
		return
	}

	if *benchJSON != "" {
		var data []byte
		var err error
		switch base := filepath.Base(*benchJSON); {
		case strings.Contains(base, "parallel"):
			data, err = bench.ParallelBenchJSON(bench.Options{Quick: *quick})
		// "storm" before "service": BENCH_service_storm.json contains both.
		case strings.Contains(base, "storm"):
			data, err = bench.StormBenchJSON(bench.Options{Quick: *quick})
		case strings.Contains(base, "service"):
			data, err = bench.ServiceBenchJSON(bench.Options{Quick: *quick})
		case strings.Contains(base, "optimizer"):
			data, err = bench.OptimizerBenchJSON(bench.Options{Quick: *quick})
		case strings.Contains(base, "kernel"):
			data, err = bench.KernelBenchJSON(bench.Options{Quick: *quick})
		case strings.Contains(base, "storage"):
			data, err = bench.StorageBenchJSON(bench.Options{Quick: *quick})
		case strings.Contains(base, "obs"):
			data, err = bench.ObsBenchJSON(bench.Options{Quick: *quick})
		case strings.Contains(base, "fusion"):
			data, err = bench.ChainFusionBenchJSON(bench.Options{Quick: *quick})
		default:
			data, err = bench.EngineBenchJSON(bench.Options{Quick: *quick})
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "qybench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*benchJSON, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "qybench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *benchJSON)
		return
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-10s %s\n           %s\n", e.ID, e.Paper, e.Desc)
		}
		return
	}

	var selected []bench.Experiment
	if *exp == "all" {
		selected = bench.Experiments()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, err := bench.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, "qybench:", err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	opts := bench.Options{Quick: *quick}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "qybench:", err)
			os.Exit(1)
		}
	}

	failed := false
	for _, e := range selected {
		fmt.Printf("### experiment %s — %s\n", e.ID, e.Paper)
		start := time.Now()
		tables, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qybench: experiment %s: %v\n", e.ID, err)
			failed = true
			continue
		}
		fmt.Printf("(completed in %s)\n\n", bench.FormatDuration(time.Since(start)))
		for ti, t := range tables {
			switch *format {
			case "md":
				fmt.Println(t.Markdown())
			case "csv":
				fmt.Println(t.CSV())
			default:
				fmt.Println(t.Text())
			}
			if *out != "" {
				name := fmt.Sprintf("%s_%d.csv", e.ID, ti+1)
				if err := os.WriteFile(filepath.Join(*out, name), []byte(t.CSV()), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, "qybench:", err)
					failed = true
				}
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
