// Benchmarks: one per paper artifact, mirroring the experiment index in
// DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// These measure steady-state per-run cost; the qybench command produces
// the full result tables (max-qubits searches, fidelity columns, spill
// counters) recorded in EXPERIMENTS.md.
package qymera_test

import (
	"fmt"
	"testing"

	"qymera"
	"qymera/internal/circuits"
	"qymera/internal/core"
	"qymera/internal/sim"
	"qymera/internal/sqlengine"
)

// runBackend executes the circuit b.N times, failing the benchmark on
// error.
func runBackend(b *testing.B, backend qymera.Backend, c *qymera.Circuit) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := backend.Run(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2GHZ3 measures the paper's running example end to end:
// translate the 3-qubit GHZ circuit and execute the generated SQL.
func BenchmarkFig2GHZ3(b *testing.B) {
	runBackend(b, qymera.NewSQLBackend(), qymera.GHZ(3))
}

// BenchmarkTable1Bitwise measures evaluation of the bitwise operators of
// Table 1 inside the SQL engine.
func BenchmarkTable1Bitwise(b *testing.B) {
	db, err := sqlengine.Open(sqlengine.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if err := db.ExecScript(`CREATE TABLE t (s INTEGER);
		INSERT INTO t VALUES (0),(1),(2),(3),(4),(5),(6),(7)`); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rs, err := db.Query("SELECT (s & ~6) | ((s >> 1) & 3) << 1 FROM t")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rs.All(); err != nil {
			b.Fatal(err)
		}
		rs.Close()
	}
}

// BenchmarkPrelim mirrors the preliminary experiment's two workload
// kinds at fixed sizes: a sparse circuit far beyond dense reach and a
// dense circuit where the relational overhead shows.
func BenchmarkPrelim(b *testing.B) {
	b.Run("sparse-ghz40-sql", func(b *testing.B) {
		runBackend(b, qymera.NewSQLBackend(), qymera.GHZ(40))
	})
	b.Run("sparse-ghz16-statevector", func(b *testing.B) {
		runBackend(b, qymera.NewStateVectorBackend(), qymera.GHZ(16))
	})
	b.Run("dense-superpos10-sql", func(b *testing.B) {
		runBackend(b, qymera.NewSQLBackend(), qymera.EqualSuperposition(10))
	})
	b.Run("dense-superpos10-statevector", func(b *testing.B) {
		runBackend(b, qymera.NewStateVectorBackend(), qymera.EqualSuperposition(10))
	})
}

// BenchmarkGHZBackends is the §4 benchmarking scenario on the sparse
// GHZ workload across all five methods.
func BenchmarkGHZBackends(b *testing.B) {
	c := qymera.GHZ(12)
	for _, name := range []string{"sql", "statevector", "sparse", "mps", "dd"} {
		backend, err := qymera.BackendByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) { runBackend(b, backend, c) })
	}
}

// BenchmarkSuperpositionBackends is the same scenario on the dense
// equal-superposition workload.
func BenchmarkSuperpositionBackends(b *testing.B) {
	c := qymera.EqualSuperposition(10)
	for _, name := range []string{"sql", "statevector", "sparse", "mps", "dd"} {
		backend, err := qymera.BackendByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) { runBackend(b, backend, c) })
	}
}

// BenchmarkParityCheck is the §4 algorithm-design scenario.
func BenchmarkParityCheck(b *testing.B) {
	c := qymera.ParitySuperposition(8)
	b.Run("sql", func(b *testing.B) { runBackend(b, qymera.NewSQLBackend(), c) })
	b.Run("statevector", func(b *testing.B) { runBackend(b, qymera.NewStateVectorBackend(), c) })
}

// BenchmarkFusionAblation measures the §3.2 query optimization: the
// same circuit at the three fusion levels.
func BenchmarkFusionAblation(b *testing.B) {
	c := circuits.QFT(7)
	for _, lvl := range []core.FusionLevel{core.FusionOff, core.FusionSameQubits, core.FusionSubset} {
		b.Run(lvl.String(), func(b *testing.B) {
			runBackend(b, &sim.SQL{Fusion: lvl}, c)
		})
	}
}

// BenchmarkEncodingAblation compares the paper's bitwise index
// expressions against arithmetic division/modulo equivalents.
func BenchmarkEncodingAblation(b *testing.B) {
	c := circuits.RandomDense(9, 3, 17)
	for _, enc := range []core.Encoding{core.EncodingBitwise, core.EncodingArithmetic} {
		b.Run(enc.String(), func(b *testing.B) {
			runBackend(b, &sim.SQL{Encoding: enc}, c)
		})
	}
}

// BenchmarkOutOfCore measures §3.3: the dense workload under shrinking
// memory caps, spilling to disk.
func BenchmarkOutOfCore(b *testing.B) {
	c := qymera.EqualSuperposition(10)
	for _, capBytes := range []int64{0, 256 << 10, 64 << 10} {
		name := "unlimited"
		if capBytes > 0 {
			name = fmt.Sprintf("%dKB", capBytes>>10)
		}
		b.Run(name, func(b *testing.B) {
			runBackend(b, &sim.SQL{MemoryBudget: capBytes, SpillDir: b.TempDir()}, c)
		})
	}
}

// BenchmarkParamSweep measures §3.3 parameterized simulation: one
// ansatz instance per backend.
func BenchmarkParamSweep(b *testing.B) {
	params := make([]float64, 6*2*2)
	for i := range params {
		params[i] = 0.3 + 0.05*float64(i)
	}
	c := qymera.HardwareEfficientAnsatz(6, 2, params)
	b.Run("sql", func(b *testing.B) { runBackend(b, qymera.NewSQLBackend(), c) })
	b.Run("statevector", func(b *testing.B) { runBackend(b, qymera.NewStateVectorBackend(), c) })
	b.Run("mps", func(b *testing.B) { runBackend(b, qymera.NewMPSBackend(), c) })
	b.Run("dd", func(b *testing.B) { runBackend(b, qymera.NewDDBackend(), c) })
}

// BenchmarkTranslationOnly isolates the circuit→SQL translation cost
// from execution.
func BenchmarkTranslationOnly(b *testing.B) {
	c := circuits.QFT(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := qymera.Translate(c, nil, qymera.TranslateOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
