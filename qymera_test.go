package qymera_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"qymera"
)

func TestQuickstartFlow(t *testing.T) {
	c := qymera.NewCircuit(3).H(0).CX(0, 1).CX(1, 2)
	res, err := qymera.NewSQLBackend().Run(c)
	if err != nil {
		t.Fatal(err)
	}
	ket := res.State.FormatKet()
	if !strings.Contains(ket, "|000⟩") || !strings.Contains(ket, "|111⟩") {
		t.Fatalf("ket = %s", ket)
	}
}

func TestTranslateFacade(t *testing.T) {
	tr, err := qymera.Translate(qymera.GHZ(3), nil, qymera.TranslateOptions{Mode: qymera.SingleQuery})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tr.Query, "WITH T1 AS") {
		t.Fatalf("query = %s", tr.Query)
	}
}

func TestBackendByName(t *testing.T) {
	for _, name := range qymera.BackendNames() {
		b, err := qymera.BackendByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := b.Run(qymera.GHZ(3))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.State.Len() != 2 {
			t.Fatalf("%s: support = %d", name, res.State.Len())
		}
	}
	if _, err := qymera.BackendByName("quantum-annealer"); err == nil {
		t.Fatal("expected error")
	}
}

func TestBackendsAgreeOnQFTFacade(t *testing.T) {
	c := qymera.QFT(5)
	ref, err := qymera.NewStateVectorBackend().Run(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"sql", "sparse", "mps", "dd"} {
		b, _ := qymera.BackendByName(name)
		res, err := b.Run(c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if f := res.State.Fidelity(ref.State); math.Abs(f-1) > 1e-8 {
			t.Fatalf("%s fidelity = %v", name, f)
		}
	}
}

func TestIOFacade(t *testing.T) {
	var buf bytes.Buffer
	if err := qymera.WriteJSON(&buf, qymera.WState(3)); err != nil {
		t.Fatal(err)
	}
	c, err := qymera.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits() != 3 {
		t.Fatalf("n = %d", c.NumQubits())
	}
	q, err := qymera.ReadQASM("qreg q[2]; h q[0]; cx q[0], q[1];")
	if err != nil {
		t.Fatal(err)
	}
	if out := qymera.Draw(q); !strings.Contains(out, "[H]") {
		t.Fatalf("draw:\n%s", out)
	}
}

func TestMemoryBudgetFacade(t *testing.T) {
	b := qymera.NewStateVectorBackend(1 << 10)
	if _, err := b.Run(qymera.EqualSuperposition(12)); err == nil {
		t.Fatal("expected budget error")
	}
	sql := qymera.NewSQLBackend(qymera.SQLBackendOptions{MemoryBudget: 1 << 14, SpillDir: t.TempDir()})
	res, err := sql.Run(qymera.EqualSuperposition(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SpilledRows == 0 {
		t.Fatal("expected out-of-core spilling")
	}
}

func TestParityCheckFacade(t *testing.T) {
	res, err := qymera.NewSQLBackend().Run(qymera.ParityCheck([]bool{true, true, true}))
	if err != nil {
		t.Fatal(err)
	}
	// Odd number of ones: ancilla (qubit 3) must read 1.
	if p := res.State.QubitProbability(3); math.Abs(p-1) > 1e-9 {
		t.Fatalf("ancilla prob = %v", p)
	}
}
