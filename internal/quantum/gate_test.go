package quantum

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"qymera/internal/linalg"
)

func TestAllGatesUnitary(t *testing.T) {
	params := []float64{0.7, 1.3, -0.4}
	for _, name := range KnownGates() {
		arity, _ := GateArity(name)
		np, _ := GateParamCount(name)
		qs := make([]int, arity)
		for i := range qs {
			qs[i] = i
		}
		g := Gate{Name: name, Qubits: qs, Params: params[:np]}
		m, err := g.Matrix()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Rows != 1<<arity {
			t.Fatalf("%s: dim %d, want %d", name, m.Rows, 1<<arity)
		}
		if !m.IsUnitary(1e-10) {
			t.Fatalf("%s is not unitary:\n%v", name, m)
		}
	}
}

// TestCXMatchesPaperTable checks the CX relational encoding of Fig. 2b:
// in_s→out_s pairs (0,0), (1,3), (2,2), (3,1) all with amplitude 1.
func TestCXMatchesPaperTable(t *testing.T) {
	m := Gate{Name: "CX", Qubits: []int{0, 1}}.MustMatrix()
	want := map[[2]int]complex128{
		{0, 0}: 1, {3, 1}: 1, {2, 2}: 1, {1, 3}: 1,
	}
	for out := 0; out < 4; out++ {
		for in := 0; in < 4; in++ {
			w := want[[2]int{out, in}]
			if m.At(out, in) != w {
				t.Fatalf("CX[%d][%d] = %v, want %v", out, in, m.At(out, in), w)
			}
		}
	}
}

func TestHMatchesPaperTable(t *testing.T) {
	m := Gate{Name: "H", Qubits: []int{0}}.MustMatrix()
	s := complex(1/math.Sqrt2, 0)
	for out := 0; out < 2; out++ {
		for in := 0; in < 2; in++ {
			want := s
			if out == 1 && in == 1 {
				want = -s
			}
			if cmplx.Abs(m.At(out, in)-want) > 1e-12 {
				t.Fatalf("H[%d][%d] = %v, want %v", out, in, m.At(out, in), want)
			}
		}
	}
}

func TestPauliAlgebra(t *testing.T) {
	x := Gate{Name: "X", Qubits: []int{0}}.MustMatrix()
	y := Gate{Name: "Y", Qubits: []int{0}}.MustMatrix()
	z := Gate{Name: "Z", Qubits: []int{0}}.MustMatrix()
	// XY = iZ
	if !x.Mul(y).EqualApprox(z.Scale(1i), 1e-12) {
		t.Fatal("XY != iZ")
	}
	// X² = I
	if !x.Mul(x).EqualApprox(linalg.Identity(2), 1e-12) {
		t.Fatal("X² != I")
	}
	// HZH = X
	h := Gate{Name: "H", Qubits: []int{0}}.MustMatrix()
	if !h.Mul(z).Mul(h).EqualApprox(x, 1e-12) {
		t.Fatal("HZH != X")
	}
}

func TestSTInverses(t *testing.T) {
	s := Gate{Name: "S", Qubits: []int{0}}.MustMatrix()
	sdg := Gate{Name: "SDG", Qubits: []int{0}}.MustMatrix()
	if !s.Mul(sdg).EqualApprox(linalg.Identity(2), 1e-12) {
		t.Fatal("S·S† != I")
	}
	tm := Gate{Name: "T", Qubits: []int{0}}.MustMatrix()
	tdg := Gate{Name: "TDG", Qubits: []int{0}}.MustMatrix()
	if !tm.Mul(tdg).EqualApprox(linalg.Identity(2), 1e-12) {
		t.Fatal("T·T† != I")
	}
	// T² = S
	if !tm.Mul(tm).EqualApprox(s, 1e-12) {
		t.Fatal("T² != S")
	}
	// SX² = X
	sx := Gate{Name: "SX", Qubits: []int{0}}.MustMatrix()
	x := Gate{Name: "X", Qubits: []int{0}}.MustMatrix()
	if !sx.Mul(sx).EqualApprox(x, 1e-12) {
		t.Fatal("SX² != X")
	}
}

func TestRotationComposition(t *testing.T) {
	// RZ(a)·RZ(b) == RZ(a+b)
	f := func(a, b float64) bool {
		a = math.Mod(a, math.Pi)
		b = math.Mod(b, math.Pi)
		ra := Gate{Name: "RZ", Qubits: []int{0}, Params: []float64{a}}.MustMatrix()
		rb := Gate{Name: "RZ", Qubits: []int{0}, Params: []float64{b}}.MustMatrix()
		rab := Gate{Name: "RZ", Qubits: []int{0}, Params: []float64{a + b}}.MustMatrix()
		return ra.Mul(rb).EqualApprox(rab, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestUGeneralizesNamedGates(t *testing.T) {
	// U(π/2, 0, π) == H up to rounding.
	u := Gate{Name: "U", Qubits: []int{0}, Params: []float64{math.Pi / 2, 0, math.Pi}}.MustMatrix()
	h := Gate{Name: "H", Qubits: []int{0}}.MustMatrix()
	if !u.EqualApprox(h, 1e-12) {
		t.Fatalf("U(π/2,0,π) != H:\n%v", u)
	}
	// U(0,0,λ) == P(λ)
	u2 := Gate{Name: "U", Qubits: []int{0}, Params: []float64{0, 0, 0.9}}.MustMatrix()
	p := Gate{Name: "P", Qubits: []int{0}, Params: []float64{0.9}}.MustMatrix()
	if !u2.EqualApprox(p, 1e-12) {
		t.Fatal("U(0,0,λ) != P(λ)")
	}
}

func TestCCXPermutation(t *testing.T) {
	// CCX with controls bits 0,1 and target bit 2: flips bit 2 iff bits
	// 0 and 1 are both set.
	m := Gate{Name: "CCX", Qubits: []int{0, 1, 2}}.MustMatrix()
	for in := 0; in < 8; in++ {
		wantOut := in
		if in&3 == 3 {
			wantOut = in ^ 4
		}
		for out := 0; out < 8; out++ {
			want := complex128(0)
			if out == wantOut {
				want = 1
			}
			if m.At(out, in) != want {
				t.Fatalf("CCX[%d][%d] = %v, want %v", out, in, m.At(out, in), want)
			}
		}
	}
}

func TestSWAPPermutation(t *testing.T) {
	m := Gate{Name: "SWAP", Qubits: []int{0, 1}}.MustMatrix()
	wants := map[int]int{0: 0, 1: 2, 2: 1, 3: 3}
	for in, out := range wants {
		if m.At(out, in) != 1 {
			t.Fatalf("SWAP should map %d→%d", in, out)
		}
	}
}

func TestGateLabel(t *testing.T) {
	g := Gate{Name: "RZ", Qubits: []int{0}, Params: []float64{0.25}}
	if g.Label() != "RZ(0.25)" {
		t.Fatalf("label = %q", g.Label())
	}
	g2 := Gate{Name: "CX", Qubits: []int{0, 1}}
	if g2.Label() != "CX" {
		t.Fatalf("label = %q", g2.Label())
	}
}

func TestUnknownGateErrors(t *testing.T) {
	if _, err := (Gate{Name: "BOGUS", Qubits: []int{0}}).Matrix(); err == nil {
		t.Fatal("expected error for unknown gate")
	}
	if _, err := (Gate{Name: "CX", Qubits: []int{0}}).Matrix(); err == nil {
		t.Fatal("expected arity error")
	}
	if _, err := (Gate{Name: "RZ", Qubits: []int{0}}).Matrix(); err == nil {
		t.Fatal("expected param-count error")
	}
}
