package quantum

import (
	"strings"
	"testing"
)

func TestCircuitBuilder(t *testing.T) {
	c := NewCircuit(3).H(0).CX(0, 1).CX(1, 2)
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
	if got := c.Gates()[1].Name; got != "CX" {
		t.Fatalf("gate[1] = %s", got)
	}
	if got := c.Gates()[2].Qubits[0]; got != 1 {
		t.Fatalf("gate[2] control = %d", got)
	}
}

func TestAppendValidation(t *testing.T) {
	c := NewCircuit(2)
	cases := []struct {
		g    Gate
		want string
	}{
		{Gate{Name: "NOPE", Qubits: []int{0}}, "unknown gate"},
		{Gate{Name: "H", Qubits: []int{0, 1}}, "expects 1 qubits"},
		{Gate{Name: "CX", Qubits: []int{0, 2}}, "outside register"},
		{Gate{Name: "CX", Qubits: []int{1, 1}}, "twice"},
		{Gate{Name: "RZ", Qubits: []int{0}}, "expects 1 params"},
	}
	for _, tc := range cases {
		err := c.Append(tc.g)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("Append(%v) err = %v, want contains %q", tc.g, err, tc.want)
		}
	}
	if c.Len() != 0 {
		t.Fatal("failed appends must not modify the circuit")
	}
}

func TestDepth(t *testing.T) {
	// H on each of 3 qubits: all parallel, depth 1.
	c := NewCircuit(3).H(0).H(1).H(2)
	if d := c.Depth(); d != 1 {
		t.Fatalf("depth = %d, want 1", d)
	}
	// GHZ chain: H, CX(0,1), CX(1,2) — depth 3.
	g := NewCircuit(3).H(0).CX(0, 1).CX(1, 2)
	if d := g.Depth(); d != 3 {
		t.Fatalf("depth = %d, want 3", d)
	}
	if d := NewCircuit(2).Depth(); d != 0 {
		t.Fatalf("empty depth = %d", d)
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := NewCircuit(2).RZ(0, 0.5)
	cl := c.Clone()
	cl.Gates()[0].Params[0] = 99
	cl.Gates()[0].Qubits[0] = 1
	if c.Gates()[0].Params[0] != 0.5 || c.Gates()[0].Qubits[0] != 0 {
		t.Fatal("Clone shares backing arrays with original")
	}
}

func TestCompose(t *testing.T) {
	a := NewCircuit(2).H(0)
	b := NewCircuit(2).CX(0, 1)
	if err := a.Compose(b); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 2 {
		t.Fatalf("len = %d", a.Len())
	}
	wrong := NewCircuit(3)
	if err := a.Compose(wrong); err == nil {
		t.Fatal("expected width mismatch error")
	}
}

func TestCountByName(t *testing.T) {
	c := NewCircuit(3).H(0).H(1).CX(0, 1).CX(1, 2).T(2)
	counts := c.CountByName()
	if counts["H"] != 2 || counts["CX"] != 2 || counts["T"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if c.TwoQubitGateCount() != 2 {
		t.Fatalf("two-qubit count = %d", c.TwoQubitGateCount())
	}
}

func TestCircuitString(t *testing.T) {
	c := NewCircuit(2).SetName("bell").H(0).CX(0, 1)
	s := c.String()
	if !strings.Contains(s, "bell") || !strings.Contains(s, "CX q0,q1") {
		t.Fatalf("render:\n%s", s)
	}
}
