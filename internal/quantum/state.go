package quantum

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"
	"strings"
)

// State is a sparse quantum state over n qubits: a map from basis index
// (integer encoding, qubit 0 = least significant bit) to complex
// amplitude. Only nonzero amplitudes are stored, mirroring the relational
// representation T(s, r, i) of the paper.
type State struct {
	numQubits int
	amp       map[uint64]complex128
}

// NewState returns an empty (all-zero amplitude) state over n qubits.
func NewState(n int) *State {
	if n <= 0 || n > 63 {
		panic(fmt.Sprintf("quantum: state width %d out of range [1,63]", n))
	}
	return &State{numQubits: n, amp: make(map[uint64]complex128)}
}

// ZeroState returns |0...0⟩ over n qubits.
func ZeroState(n int) *State {
	s := NewState(n)
	s.amp[0] = 1
	return s
}

// BasisState returns |index⟩ over n qubits.
func BasisState(n int, index uint64) *State {
	s := NewState(n)
	if index >= uint64(1)<<uint(n) {
		panic(fmt.Sprintf("quantum: basis index %d out of range for %d qubits", index, n))
	}
	s.amp[index] = 1
	return s
}

// NumQubits returns the register width.
func (s *State) NumQubits() int { return s.numQubits }

// Amplitude returns the amplitude of basis state index (zero if absent).
func (s *State) Amplitude(index uint64) complex128 { return s.amp[index] }

// Set assigns the amplitude of a basis state, deleting zero entries.
func (s *State) Set(index uint64, a complex128) {
	if a == 0 {
		delete(s.amp, index)
		return
	}
	s.amp[index] = a
}

// Add accumulates into the amplitude of a basis state.
func (s *State) Add(index uint64, a complex128) {
	v := s.amp[index] + a
	if v == 0 {
		delete(s.amp, index)
		return
	}
	s.amp[index] = v
}

// Len returns the number of stored (nonzero) amplitudes.
func (s *State) Len() int { return len(s.amp) }

// Indices returns the stored basis indices in ascending order.
func (s *State) Indices() []uint64 {
	idx := make([]uint64, 0, len(s.amp))
	for k := range s.amp {
		idx = append(idx, k)
	}
	sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
	return idx
}

// Norm returns the L2 norm sqrt(Σ|a|²); 1 for a valid quantum state.
func (s *State) Norm() float64 {
	var t float64
	for _, a := range s.amp {
		t += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(t)
}

// Normalize rescales amplitudes to unit norm. It is a no-op on the zero
// state.
func (s *State) Normalize() {
	n := s.Norm()
	if n == 0 || n == 1 {
		return
	}
	inv := complex(1/n, 0)
	for k, a := range s.amp {
		s.amp[k] = a * inv
	}
}

// Prune removes amplitudes with |a| <= eps, the relational analogue of
// dropping all-but-nonzero rows from the state table.
func (s *State) Prune(eps float64) {
	for k, a := range s.amp {
		if cmplx.Abs(a) <= eps {
			delete(s.amp, k)
		}
	}
}

// Probability returns |amplitude|² of a basis state.
func (s *State) Probability(index uint64) float64 {
	a := s.amp[index]
	return real(a)*real(a) + imag(a)*imag(a)
}

// Probabilities returns the measurement distribution over stored basis
// states.
func (s *State) Probabilities() map[uint64]float64 {
	out := make(map[uint64]float64, len(s.amp))
	for k, a := range s.amp {
		out[k] = real(a)*real(a) + imag(a)*imag(a)
	}
	return out
}

// QubitProbability returns the probability that measuring qubit q yields 1.
func (s *State) QubitProbability(q int) float64 {
	var p float64
	mask := uint64(1) << uint(q)
	for k, a := range s.amp {
		if k&mask != 0 {
			p += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	return p
}

// Fidelity returns |⟨s|other⟩|², the squared overlap of two pure states.
func (s *State) Fidelity(other *State) float64 {
	if s.numQubits != other.numQubits {
		return 0
	}
	// Iterate over the smaller support.
	a, b := s, other
	if len(b.amp) < len(a.amp) {
		a, b = b, a
	}
	var dot complex128
	for k, av := range a.amp {
		if bv, ok := b.amp[k]; ok {
			dot += cmplx.Conj(av) * bv
		}
	}
	m := cmplx.Abs(dot)
	return m * m
}

// EqualApprox reports whether the two states have the same amplitudes
// within tol (elementwise, exact global phase).
func (s *State) EqualApprox(other *State, tol float64) bool {
	if s.numQubits != other.numQubits {
		return false
	}
	for k, a := range s.amp {
		if cmplx.Abs(a-other.amp[k]) > tol {
			return false
		}
	}
	for k, b := range other.amp {
		if _, ok := s.amp[k]; !ok && cmplx.Abs(b) > tol {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (s *State) Clone() *State {
	out := NewState(s.numQubits)
	for k, v := range s.amp {
		out.amp[k] = v
	}
	return out
}

// Dense expands the state into a full 2^n vector. It panics for n > 30 to
// guard against accidental huge allocations.
func (s *State) Dense() []complex128 {
	if s.numQubits > 30 {
		panic("quantum: refusing to densify state with more than 30 qubits")
	}
	v := make([]complex128, uint64(1)<<uint(s.numQubits))
	for k, a := range s.amp {
		v[k] = a
	}
	return v
}

// FromDense builds a sparse state from a dense amplitude vector, dropping
// entries with |a| <= eps.
func FromDense(n int, v []complex128, eps float64) *State {
	s := NewState(n)
	for i, a := range v {
		if cmplx.Abs(a) > eps {
			s.amp[uint64(i)] = a
		}
	}
	return s
}

// FormatKet renders the state in ket notation, e.g.
// "0.7071|000⟩ + 0.7071|111⟩", with basis bitstrings printed most
// significant qubit first.
func (s *State) FormatKet() string {
	if len(s.amp) == 0 {
		return "0"
	}
	idx := s.Indices()
	var b strings.Builder
	for i, k := range idx {
		if i > 0 {
			b.WriteString(" + ")
		}
		a := s.amp[k]
		if imag(a) == 0 {
			fmt.Fprintf(&b, "%.4g", real(a))
		} else {
			fmt.Fprintf(&b, "(%.4g%+.4gi)", real(a), imag(a))
		}
		fmt.Fprintf(&b, "|%0*b⟩", s.numQubits, k)
	}
	return b.String()
}
