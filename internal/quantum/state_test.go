package quantum

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZeroAndBasisState(t *testing.T) {
	s := ZeroState(3)
	if s.Amplitude(0) != 1 || s.Len() != 1 {
		t.Fatalf("zero state wrong: %v", s.FormatKet())
	}
	b := BasisState(3, 5)
	if b.Amplitude(5) != 1 {
		t.Fatal("basis state wrong")
	}
	if math.Abs(b.Norm()-1) > 1e-12 {
		t.Fatal("basis state not normalized")
	}
}

func TestSetAddDeleteZeros(t *testing.T) {
	s := NewState(2)
	s.Set(1, 0.5)
	s.Add(1, -0.5)
	if s.Len() != 0 {
		t.Fatal("zero amplitudes must be deleted")
	}
	s.Set(2, 1)
	s.Set(2, 0)
	if s.Len() != 0 {
		t.Fatal("Set(0) must delete")
	}
}

func TestNormalizeAndPrune(t *testing.T) {
	s := NewState(2)
	s.Set(0, 3)
	s.Set(3, 4)
	s.Normalize()
	if math.Abs(s.Norm()-1) > 1e-12 {
		t.Fatalf("norm = %v", s.Norm())
	}
	s.Set(1, 1e-15)
	s.Prune(1e-12)
	if s.Len() != 2 {
		t.Fatalf("prune failed, len = %d", s.Len())
	}
}

func TestProbabilities(t *testing.T) {
	s := NewState(2)
	inv := complex(1/math.Sqrt2, 0)
	s.Set(0, inv)
	s.Set(3, inv)
	p := s.Probabilities()
	if math.Abs(p[0]-0.5) > 1e-12 || math.Abs(p[3]-0.5) > 1e-12 {
		t.Fatalf("probs = %v", p)
	}
	// Qubit 0 is 1 only in |11⟩.
	if q := s.QubitProbability(0); math.Abs(q-0.5) > 1e-12 {
		t.Fatalf("qubit prob = %v", q)
	}
}

func TestFidelity(t *testing.T) {
	a := ZeroState(2)
	if f := a.Fidelity(a); math.Abs(f-1) > 1e-12 {
		t.Fatalf("self fidelity = %v", f)
	}
	b := BasisState(2, 3)
	if f := a.Fidelity(b); f != 0 {
		t.Fatalf("orthogonal fidelity = %v", f)
	}
	// Superposition overlap: |⟨0|+⟩|² = 1/2.
	plus := NewState(1)
	plus.Set(0, complex(1/math.Sqrt2, 0))
	plus.Set(1, complex(1/math.Sqrt2, 0))
	zero := ZeroState(1)
	if f := plus.Fidelity(zero); math.Abs(f-0.5) > 1e-12 {
		t.Fatalf("overlap fidelity = %v", f)
	}
}

func TestDenseRoundTrip(t *testing.T) {
	s := NewState(3)
	s.Set(0, 0.6)
	s.Set(7, 0.8i)
	d := s.Dense()
	if len(d) != 8 || d[0] != 0.6 || d[7] != 0.8i {
		t.Fatalf("dense = %v", d)
	}
	back := FromDense(3, d, 0)
	if !back.EqualApprox(s, 1e-12) {
		t.Fatal("round trip mismatch")
	}
}

func TestEqualApprox(t *testing.T) {
	a := ZeroState(1)
	b := ZeroState(1)
	b.Set(0, complex(1+1e-13, 0))
	if !a.EqualApprox(b, 1e-9) {
		t.Fatal("nearly equal states reported different")
	}
	b.Set(1, 0.1)
	if a.EqualApprox(b, 1e-9) {
		t.Fatal("different states reported equal")
	}
}

func TestIndicesSorted(t *testing.T) {
	s := NewState(4)
	for _, k := range []uint64{9, 2, 15, 0} {
		s.Set(k, 1)
	}
	idx := s.Indices()
	for i := 1; i < len(idx); i++ {
		if idx[i] < idx[i-1] {
			t.Fatalf("unsorted: %v", idx)
		}
	}
}

func TestFormatKet(t *testing.T) {
	s := NewState(3)
	s.Set(0, complex(1/math.Sqrt2, 0))
	s.Set(7, complex(1/math.Sqrt2, 0))
	ket := s.FormatKet()
	if ket != "0.7071|000⟩ + 0.7071|111⟩" {
		t.Fatalf("ket = %q", ket)
	}
}

func TestNormPropertyPreservedUnderPermutation(t *testing.T) {
	// Property: permuting basis labels preserves the norm.
	clamp := func(x float64) float64 {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0
		}
		return math.Remainder(x, 8)
	}
	f := func(re, im [4]float64, shift uint8) bool {
		s := NewState(4)
		p := NewState(4)
		k := uint64(shift % 12)
		for i := 0; i < 4; i++ {
			a := complex(clamp(re[i]), clamp(im[i]))
			s.Set(uint64(i), a)
			p.Set(uint64(i)+k, a)
		}
		return math.Abs(s.Norm()-p.Norm()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
