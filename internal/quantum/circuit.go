package quantum

import (
	"fmt"
	"strings"
)

// Circuit is an ordered sequence of gates over a fixed qubit register.
// The zero value is unusable; construct circuits with NewCircuit.
type Circuit struct {
	numQubits int
	gates     []Gate
	name      string
}

// NewCircuit returns an empty circuit over n qubits.
func NewCircuit(n int) *Circuit {
	if n <= 0 {
		panic(fmt.Sprintf("quantum: circuit needs at least 1 qubit, got %d", n))
	}
	return &Circuit{numQubits: n}
}

// NumQubits returns the register width.
func (c *Circuit) NumQubits() int { return c.numQubits }

// Gates returns the gate sequence. Callers must not mutate the result.
func (c *Circuit) Gates() []Gate { return c.gates }

// Len returns the number of gates.
func (c *Circuit) Len() int { return len(c.gates) }

// Name returns the optional descriptive name set with SetName.
func (c *Circuit) Name() string { return c.name }

// SetName attaches a descriptive name (used in reports and benchmarks).
func (c *Circuit) SetName(name string) *Circuit {
	c.name = name
	return c
}

// Append validates the gate and adds it to the circuit.
func (c *Circuit) Append(g Gate) error {
	def, ok := gateDefs[g.Name]
	if !ok {
		return fmt.Errorf("quantum: unknown gate %q", g.Name)
	}
	if len(g.Qubits) != def.arity {
		return fmt.Errorf("quantum: gate %s expects %d qubits, got %d", g.Name, def.arity, len(g.Qubits))
	}
	if len(g.Params) != def.params {
		return fmt.Errorf("quantum: gate %s expects %d params, got %d", g.Name, def.params, len(g.Params))
	}
	seen := make(map[int]bool, len(g.Qubits))
	for _, q := range g.Qubits {
		if q < 0 || q >= c.numQubits {
			return fmt.Errorf("quantum: gate %s targets qubit %d outside register [0,%d)", g.Name, q, c.numQubits)
		}
		if seen[q] {
			return fmt.Errorf("quantum: gate %s lists qubit %d twice", g.Name, q)
		}
		seen[q] = true
	}
	c.gates = append(c.gates, g)
	return nil
}

// mustAppend backs the fluent builder methods; any invalid call is a
// programming error in the caller, so it panics.
func (c *Circuit) mustAppend(name string, qubits []int, params ...float64) *Circuit {
	if err := c.Append(Gate{Name: name, Qubits: qubits, Params: params}); err != nil {
		panic(err)
	}
	return c
}

// Fluent builder methods, one per registered gate. They panic on invalid
// qubit indices, mirroring how Qiskit-style circuit APIs raise.

func (c *Circuit) H(q int) *Circuit     { return c.mustAppend("H", []int{q}) }
func (c *Circuit) X(q int) *Circuit     { return c.mustAppend("X", []int{q}) }
func (c *Circuit) Y(q int) *Circuit     { return c.mustAppend("Y", []int{q}) }
func (c *Circuit) Z(q int) *Circuit     { return c.mustAppend("Z", []int{q}) }
func (c *Circuit) S(q int) *Circuit     { return c.mustAppend("S", []int{q}) }
func (c *Circuit) Sdg(q int) *Circuit   { return c.mustAppend("SDG", []int{q}) }
func (c *Circuit) T(q int) *Circuit     { return c.mustAppend("T", []int{q}) }
func (c *Circuit) Tdg(q int) *Circuit   { return c.mustAppend("TDG", []int{q}) }
func (c *Circuit) SX(q int) *Circuit    { return c.mustAppend("SX", []int{q}) }
func (c *Circuit) Ident(q int) *Circuit { return c.mustAppend("I", []int{q}) }

func (c *Circuit) RX(q int, theta float64) *Circuit { return c.mustAppend("RX", []int{q}, theta) }
func (c *Circuit) RY(q int, theta float64) *Circuit { return c.mustAppend("RY", []int{q}, theta) }
func (c *Circuit) RZ(q int, theta float64) *Circuit { return c.mustAppend("RZ", []int{q}, theta) }
func (c *Circuit) P(q int, lambda float64) *Circuit { return c.mustAppend("P", []int{q}, lambda) }
func (c *Circuit) U(q int, theta, phi, lambda float64) *Circuit {
	return c.mustAppend("U", []int{q}, theta, phi, lambda)
}

func (c *Circuit) CX(control, target int) *Circuit { return c.mustAppend("CX", []int{control, target}) }
func (c *Circuit) CY(control, target int) *Circuit { return c.mustAppend("CY", []int{control, target}) }
func (c *Circuit) CZ(control, target int) *Circuit { return c.mustAppend("CZ", []int{control, target}) }
func (c *Circuit) CH(control, target int) *Circuit { return c.mustAppend("CH", []int{control, target}) }
func (c *Circuit) CP(control, target int, lambda float64) *Circuit {
	return c.mustAppend("CP", []int{control, target}, lambda)
}
func (c *Circuit) CRX(control, target int, theta float64) *Circuit {
	return c.mustAppend("CRX", []int{control, target}, theta)
}
func (c *Circuit) CRY(control, target int, theta float64) *Circuit {
	return c.mustAppend("CRY", []int{control, target}, theta)
}
func (c *Circuit) CRZ(control, target int, theta float64) *Circuit {
	return c.mustAppend("CRZ", []int{control, target}, theta)
}
func (c *Circuit) SWAP(a, b int) *Circuit  { return c.mustAppend("SWAP", []int{a, b}) }
func (c *Circuit) ISWAP(a, b int) *Circuit { return c.mustAppend("ISWAP", []int{a, b}) }

func (c *Circuit) CCX(c1, c2, target int) *Circuit { return c.mustAppend("CCX", []int{c1, c2, target}) }
func (c *Circuit) CCZ(c1, c2, target int) *Circuit { return c.mustAppend("CCZ", []int{c1, c2, target}) }
func (c *Circuit) CSWAP(control, a, b int) *Circuit {
	return c.mustAppend("CSWAP", []int{control, a, b})
}

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	out := NewCircuit(c.numQubits)
	out.name = c.name
	out.gates = make([]Gate, len(c.gates))
	for i, g := range c.gates {
		qs := make([]int, len(g.Qubits))
		copy(qs, g.Qubits)
		var ps []float64
		if len(g.Params) > 0 {
			ps = make([]float64, len(g.Params))
			copy(ps, g.Params)
		}
		out.gates[i] = Gate{Name: g.Name, Qubits: qs, Params: ps}
	}
	return out
}

// Compose appends all gates of other to c. Register widths must match.
func (c *Circuit) Compose(other *Circuit) error {
	if other.numQubits != c.numQubits {
		return fmt.Errorf("quantum: compose width mismatch %d vs %d", c.numQubits, other.numQubits)
	}
	for _, g := range other.gates {
		if err := c.Append(g); err != nil {
			return err
		}
	}
	return nil
}

// Inverse returns the adjoint circuit: gates reversed and each replaced
// by its inverse, so c followed by c.Inverse() is the identity.
func (c *Circuit) Inverse() (*Circuit, error) {
	out := NewCircuit(c.numQubits)
	if c.name != "" {
		out.name = c.name + "-dg"
	}
	for i := len(c.gates) - 1; i >= 0; i-- {
		inv, err := c.gates[i].Inverse()
		if err != nil {
			return nil, err
		}
		if err := out.Append(inv); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Depth returns the circuit depth: the number of layers when gates that
// touch disjoint qubits are packed greedily into parallel layers.
func (c *Circuit) Depth() int {
	if len(c.gates) == 0 {
		return 0
	}
	level := make([]int, c.numQubits)
	depth := 0
	for _, g := range c.gates {
		max := 0
		for _, q := range g.Qubits {
			if level[q] > max {
				max = level[q]
			}
		}
		max++
		for _, q := range g.Qubits {
			level[q] = max
		}
		if max > depth {
			depth = max
		}
	}
	return depth
}

// CountByName returns gate counts keyed by gate name.
func (c *Circuit) CountByName() map[string]int {
	m := make(map[string]int)
	for _, g := range c.gates {
		m[g.Name]++
	}
	return m
}

// TwoQubitGateCount returns the number of gates with arity >= 2, a common
// hardness proxy for simulators.
func (c *Circuit) TwoQubitGateCount() int {
	n := 0
	for _, g := range c.gates {
		if len(g.Qubits) >= 2 {
			n++
		}
	}
	return n
}

// String renders one gate per line, preceded by a header.
func (c *Circuit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "circuit %q: %d qubits, %d gates\n", c.name, c.numQubits, len(c.gates))
	for i, g := range c.gates {
		fmt.Fprintf(&b, "  %3d: %s\n", i, g.String())
	}
	return b.String()
}
