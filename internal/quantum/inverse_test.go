package quantum

import (
	"math/cmplx"
	"testing"

	"qymera/internal/linalg"
)

// TestEveryGateHasExactInverse multiplies each gate's matrix by its
// inverse's matrix and demands the identity.
func TestEveryGateHasExactInverse(t *testing.T) {
	params := []float64{0.7, -1.3, 0.4}
	for _, name := range KnownGates() {
		arity, _ := GateArity(name)
		np, _ := GateParamCount(name)
		qs := make([]int, arity)
		for i := range qs {
			qs[i] = i
		}
		g := Gate{Name: name, Qubits: qs, Params: params[:np]}
		inv, err := g.Inverse()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		prod := inv.MustMatrix().Mul(g.MustMatrix())
		if !prod.EqualApprox(linalg.Identity(1<<arity), 1e-10) {
			t.Fatalf("%s · %s != I:\n%v", inv.Label(), g.Label(), prod)
		}
	}
}

func TestInverseKeepsQubits(t *testing.T) {
	g := Gate{Name: "CX", Qubits: []int{3, 1}}
	inv, err := g.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	if inv.Qubits[0] != 3 || inv.Qubits[1] != 1 {
		t.Fatalf("qubits = %v", inv.Qubits)
	}
	// Mutating the inverse must not touch the original.
	inv.Qubits[0] = 9
	if g.Qubits[0] != 3 {
		t.Fatal("Inverse shares qubit slice")
	}
}

// TestCircuitEcho applies c then c.Inverse() and demands the state
// returns to |0…0⟩ exactly.
func TestCircuitEcho(t *testing.T) {
	c := NewCircuit(3).
		H(0).T(1).SX(2).
		CX(0, 1).CP(1, 2, 0.9).
		RY(0, 1.1).RZ(2, -0.4).
		CCX(0, 1, 2).ISWAP(0, 2).
		U(1, 0.3, 0.5, 0.7)
	inv, err := c.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	echo := c.Clone()
	if err := echo.Compose(inv); err != nil {
		t.Fatal(err)
	}

	// Direct dense application.
	amp := make([]complex128, 8)
	amp[0] = 1
	for _, g := range echo.Gates() {
		applyTestGate(amp, g)
	}
	for i, a := range amp {
		want := complex128(0)
		if i == 0 {
			want = 1
		}
		if cmplx.Abs(a-want) > 1e-10 {
			t.Fatalf("amp[%d] = %v, want %v", i, a, want)
		}
	}
}

// applyTestGate is an independent reference implementation.
func applyTestGate(amp []complex128, g Gate) {
	m := g.MustMatrix()
	n := len(amp)
	k := len(g.Qubits)
	kdim := 1 << uint(k)
	out := make([]complex128, n)
	for s := 0; s < n; s++ {
		if amp[s] == 0 {
			continue
		}
		in := 0
		for j, q := range g.Qubits {
			in |= (s >> uint(q) & 1) << uint(j)
		}
		base := s
		for _, q := range g.Qubits {
			base &^= 1 << uint(q)
		}
		for o := 0; o < kdim; o++ {
			coef := m.At(o, in)
			if coef == 0 {
				continue
			}
			ns := base
			for j, q := range g.Qubits {
				if o>>uint(j)&1 == 1 {
					ns |= 1 << uint(q)
				}
			}
			out[ns] += coef * amp[s]
		}
	}
	copy(amp, out)
}

func TestInverseNaming(t *testing.T) {
	c := NewCircuit(1).SetName("fwd").S(0)
	inv, err := c.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	if inv.Name() != "fwd-dg" {
		t.Fatalf("name = %s", inv.Name())
	}
	if inv.Gates()[0].Name != "SDG" {
		t.Fatalf("gate = %s", inv.Gates()[0].Name)
	}
}
