package quantum

import (
	"math"
	"math/rand"
	"testing"
)

// ghzState builds (|0…0⟩ + |1…1⟩)/√2 directly.
func ghzState(n int) *State {
	s := NewState(n)
	inv := complex(1/math.Sqrt2, 0)
	s.Set(0, inv)
	s.Set(uint64(1)<<uint(n)-1, inv)
	return s
}

func TestSampleDistribution(t *testing.T) {
	s := ghzState(3)
	rng := rand.New(rand.NewSource(42))
	counts := s.Sample(rng, 10000)
	if len(counts) != 2 {
		t.Fatalf("outcomes = %v", counts)
	}
	dist := CountsToDistribution(counts)
	exact := s.Probabilities()
	if tv := TotalVariationDistance(dist, exact); tv > 0.03 {
		t.Fatalf("TV distance = %v", tv)
	}
}

func TestSampleDeterministicSeed(t *testing.T) {
	s := ghzState(2)
	a := s.Sample(rand.New(rand.NewSource(7)), 100)
	b := s.Sample(rand.New(rand.NewSource(7)), 100)
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("same seed, different counts: %v vs %v", a, b)
		}
	}
}

func TestSampleEdgeCases(t *testing.T) {
	empty := NewState(2)
	if counts := empty.Sample(rand.New(rand.NewSource(1)), 10); len(counts) != 0 {
		t.Fatalf("empty state sampled %v", counts)
	}
	basis := BasisState(2, 3)
	counts := basis.Sample(rand.New(rand.NewSource(1)), 50)
	if counts[3] != 50 {
		t.Fatalf("basis state counts = %v", counts)
	}
}

func TestMarginalProbabilities(t *testing.T) {
	s := ghzState(3)
	// Marginal over qubit 1 alone: P(0) = P(1) = 1/2.
	m, err := s.MarginalProbabilities([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m[0]-0.5) > 1e-12 || math.Abs(m[1]-0.5) > 1e-12 {
		t.Fatalf("marginal = %v", m)
	}
	// Marginal over (q2, q0): GHZ collapses to keys 00 and 11.
	m2, err := s.MarginalProbabilities([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m2[0]-0.5) > 1e-12 || math.Abs(m2[3]-0.5) > 1e-12 || len(m2) != 2 {
		t.Fatalf("marginal2 = %v", m2)
	}
	if _, err := s.MarginalProbabilities([]int{9}); err == nil {
		t.Fatal("expected range error")
	}
}

func TestExpectationZ(t *testing.T) {
	zero := ZeroState(1)
	if e := zero.ExpectationZ(0); math.Abs(e-1) > 1e-12 {
		t.Fatalf("<Z> on |0> = %v", e)
	}
	one := BasisState(1, 1)
	if e := one.ExpectationZ(0); math.Abs(e+1) > 1e-12 {
		t.Fatalf("<Z> on |1> = %v", e)
	}
	plus := NewState(1)
	plus.Set(0, complex(1/math.Sqrt2, 0))
	plus.Set(1, complex(1/math.Sqrt2, 0))
	if e := plus.ExpectationZ(0); math.Abs(e) > 1e-12 {
		t.Fatalf("<Z> on |+> = %v", e)
	}
}

func TestExpectationZProduct(t *testing.T) {
	s := ghzState(3)
	// GHZ: <Z⊗Z> = +1 for any pair, <Z> = 0 for any single qubit.
	if e := s.ExpectationZProduct([]int{0, 1}); math.Abs(e-1) > 1e-12 {
		t.Fatalf("<ZZ> = %v", e)
	}
	if e := s.ExpectationZProduct([]int{2}); math.Abs(e) > 1e-12 {
		t.Fatalf("<Z2> = %v", e)
	}
	if e := s.ExpectationZProduct([]int{0, 1, 2}); math.Abs(e) > 1e-12 {
		t.Fatalf("<ZZZ> = %v", e)
	}
}

func TestBlochVector(t *testing.T) {
	// |0⟩ → (0, 0, 1).
	z0 := ZeroState(1)
	x, y, z, err := z0.BlochVector(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x) > 1e-12 || math.Abs(y) > 1e-12 || math.Abs(z-1) > 1e-12 {
		t.Fatalf("Bloch(|0>) = (%v, %v, %v)", x, y, z)
	}
	// |+⟩ → (1, 0, 0).
	plus := NewState(1)
	plus.Set(0, complex(1/math.Sqrt2, 0))
	plus.Set(1, complex(1/math.Sqrt2, 0))
	x, y, z, _ = plus.BlochVector(0)
	if math.Abs(x-1) > 1e-12 || math.Abs(y) > 1e-12 || math.Abs(z) > 1e-12 {
		t.Fatalf("Bloch(|+>) = (%v, %v, %v)", x, y, z)
	}
	// |+i⟩ = (|0⟩ + i|1⟩)/√2 → (0, 1, 0).
	pi := NewState(1)
	pi.Set(0, complex(1/math.Sqrt2, 0))
	pi.Set(1, complex(0, 1/math.Sqrt2))
	x, y, z, _ = pi.BlochVector(0)
	if math.Abs(x) > 1e-12 || math.Abs(y-1) > 1e-12 || math.Abs(z) > 1e-12 {
		t.Fatalf("Bloch(|+i>) = (%v, %v, %v)", x, y, z)
	}
	if _, _, _, err := z0.BlochVector(5); err == nil {
		t.Fatal("expected range error")
	}
}

func TestBlochVectorEntangledQubitIsMixed(t *testing.T) {
	s := ghzState(2)
	x, y, z, err := s.BlochVector(0)
	if err != nil {
		t.Fatal(err)
	}
	// A GHZ qubit is maximally mixed: Bloch vector ~ 0.
	if r := math.Sqrt(x*x + y*y + z*z); r > 1e-12 {
		t.Fatalf("|Bloch| = %v, want 0", r)
	}
	p, err := s.PurityOfQubit(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.5) > 1e-12 {
		t.Fatalf("purity = %v, want 0.5", p)
	}
	// A separable qubit has purity 1.
	sep := ZeroState(2)
	p, _ = sep.PurityOfQubit(1)
	if math.Abs(p-1) > 1e-12 {
		t.Fatalf("separable purity = %v", p)
	}
}

func TestTopOutcomes(t *testing.T) {
	s := NewState(3)
	s.Set(1, complex(math.Sqrt(0.5), 0))
	s.Set(4, complex(math.Sqrt(0.3), 0))
	s.Set(6, complex(math.Sqrt(0.2), 0))
	top := s.TopOutcomes(2)
	if len(top) != 2 || top[0].Index != 1 || top[1].Index != 4 {
		t.Fatalf("top = %+v", top)
	}
	all := s.TopOutcomes(100)
	if len(all) != 3 {
		t.Fatalf("all = %+v", all)
	}
}

func TestTotalVariationDistance(t *testing.T) {
	p := map[uint64]float64{0: 0.5, 1: 0.5}
	q := map[uint64]float64{0: 1.0}
	if d := TotalVariationDistance(p, q); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("TV = %v", d)
	}
	if d := TotalVariationDistance(p, p); d != 0 {
		t.Fatalf("TV self = %v", d)
	}
}
