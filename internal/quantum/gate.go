// Package quantum defines the circuit model shared by every simulation
// backend: quantum gates (with their unitary matrices), circuits as gate
// sequences, and sparse quantum states.
//
// Bit convention. Basis states are encoded as unsigned integers where
// qubit q corresponds to bit q (qubit 0 is the least significant bit),
// matching the relational encoding of the Qymera paper: a gate acting on
// qubits (q_0, …, q_{k-1}) sees a local index whose bit j is the value of
// global qubit q_j.
package quantum

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"
	"strings"

	"qymera/internal/linalg"
)

// Gate is one operation in a circuit: a named unitary applied to an
// ordered tuple of qubits. For controlled gates the control qubit(s) come
// first in Qubits. Params holds rotation angles for parameterized gates.
type Gate struct {
	Name   string
	Qubits []int
	Params []float64
}

// Arity returns the number of qubits the gate acts on.
func (g Gate) Arity() int { return len(g.Qubits) }

// Label returns a stable identifier that distinguishes parameterized
// instances, e.g. "RZ(0.7854)". Gates with equal labels have equal
// matrices, which the SQL translator uses to share gate tables.
func (g Gate) Label() string {
	if len(g.Params) == 0 {
		return g.Name
	}
	parts := make([]string, len(g.Params))
	for i, p := range g.Params {
		parts[i] = fmt.Sprintf("%.12g", p)
	}
	return g.Name + "(" + strings.Join(parts, ",") + ")"
}

// String renders the gate as e.g. "CX q0,q1" or "RZ(1.57) q2".
func (g Gate) String() string {
	qs := make([]string, len(g.Qubits))
	for i, q := range g.Qubits {
		qs[i] = fmt.Sprintf("q%d", q)
	}
	return g.Label() + " " + strings.Join(qs, ",")
}

// Matrix returns the 2^k × 2^k unitary for the gate, with element
// (out, in) being the transition amplitude in → out under the bit
// convention described in the package comment.
func (g Gate) Matrix() (*linalg.Matrix, error) {
	def, ok := gateDefs[g.Name]
	if !ok {
		return nil, fmt.Errorf("quantum: unknown gate %q", g.Name)
	}
	if len(g.Qubits) != def.arity {
		return nil, fmt.Errorf("quantum: gate %s expects %d qubits, got %d", g.Name, def.arity, len(g.Qubits))
	}
	if len(g.Params) != def.params {
		return nil, fmt.Errorf("quantum: gate %s expects %d params, got %d", g.Name, def.params, len(g.Params))
	}
	return def.matrix(g.Params), nil
}

// MustMatrix is Matrix for known-valid gates; it panics on error and is
// intended for gates that already passed circuit validation.
func (g Gate) MustMatrix() *linalg.Matrix {
	m, err := g.Matrix()
	if err != nil {
		panic(err)
	}
	return m
}

// gateDef describes one entry of the gate registry.
type gateDef struct {
	arity  int
	params int
	matrix func(p []float64) *linalg.Matrix
}

// IsKnownGate reports whether name is in the gate registry.
func IsKnownGate(name string) bool {
	_, ok := gateDefs[name]
	return ok
}

// GateArity returns the qubit count for a registered gate name.
func GateArity(name string) (int, bool) {
	d, ok := gateDefs[name]
	if !ok {
		return 0, false
	}
	return d.arity, true
}

// GateParamCount returns the parameter count for a registered gate name.
func GateParamCount(name string) (int, bool) {
	d, ok := gateDefs[name]
	if !ok {
		return 0, false
	}
	return d.params, true
}

// KnownGates returns all registered gate names, sorted.
func KnownGates() []string {
	names := make([]string, 0, len(gateDefs))
	for n := range gateDefs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

const invSqrt2 = 1 / math.Sqrt2

func m2(a, b, c, d complex128) *linalg.Matrix {
	return linalg.FromRows([][]complex128{{a, b}, {c, d}})
}

func constMat(m *linalg.Matrix) func([]float64) *linalg.Matrix {
	return func([]float64) *linalg.Matrix { return m.Clone() }
}

// controlled lifts a k-qubit matrix to a (k+1)-qubit controlled version
// where local bit 0 is the control and bits 1..k address the base gate.
func controlled(base *linalg.Matrix) *linalg.Matrix {
	dim := base.Rows * 2
	out := linalg.NewMatrix(dim, dim)
	for in := 0; in < dim; in++ {
		if in&1 == 0 { // control clear: identity
			out.Set(in, in, 1)
			continue
		}
		for outRow := 0; outRow < base.Rows; outRow++ {
			v := base.At(outRow, in>>1)
			if v != 0 {
				out.Set(outRow<<1|1, in, v)
			}
		}
	}
	return out
}

// permutation builds a unitary from a basis permutation out[in].
func permutation(perm []int) *linalg.Matrix {
	m := linalg.NewMatrix(len(perm), len(perm))
	for in, out := range perm {
		m.Set(out, in, 1)
	}
	return m
}

var (
	matI    = m2(1, 0, 0, 1)
	matH    = m2(complex(invSqrt2, 0), complex(invSqrt2, 0), complex(invSqrt2, 0), complex(-invSqrt2, 0))
	matX    = m2(0, 1, 1, 0)
	matY    = m2(0, -1i, 1i, 0)
	matZ    = m2(1, 0, 0, -1)
	matS    = m2(1, 0, 0, 1i)
	matSdg  = m2(1, 0, 0, -1i)
	matT    = m2(1, 0, 0, cmplx.Exp(complex(0, math.Pi/4)))
	matTdg  = m2(1, 0, 0, cmplx.Exp(complex(0, -math.Pi/4)))
	matSX   = m2(0.5+0.5i, 0.5-0.5i, 0.5-0.5i, 0.5+0.5i)
	matSXdg = m2(0.5-0.5i, 0.5+0.5i, 0.5+0.5i, 0.5-0.5i)
	// SWAP exchanges local bits 0 and 1: 01 <-> 10.
	matSWAP = permutation([]int{0, 2, 1, 3})
	// ISWAP additionally multiplies the swapped states by i.
	matISWAP = linalg.FromRows([][]complex128{
		{1, 0, 0, 0},
		{0, 0, 1i, 0},
		{0, 1i, 0, 0},
		{0, 0, 0, 1},
	})
)

func rx(p []float64) *linalg.Matrix {
	c, s := math.Cos(p[0]/2), math.Sin(p[0]/2)
	return m2(complex(c, 0), complex(0, -s), complex(0, -s), complex(c, 0))
}

func ry(p []float64) *linalg.Matrix {
	c, s := math.Cos(p[0]/2), math.Sin(p[0]/2)
	return m2(complex(c, 0), complex(-s, 0), complex(s, 0), complex(c, 0))
}

func rz(p []float64) *linalg.Matrix {
	return m2(cmplx.Exp(complex(0, -p[0]/2)), 0, 0, cmplx.Exp(complex(0, p[0]/2)))
}

func phase(p []float64) *linalg.Matrix {
	return m2(1, 0, 0, cmplx.Exp(complex(0, p[0])))
}

// u3 is the generic single-qubit unitary U(θ, φ, λ).
func u3(p []float64) *linalg.Matrix {
	theta, phi, lam := p[0], p[1], p[2]
	c, s := math.Cos(theta/2), math.Sin(theta/2)
	return m2(
		complex(c, 0),
		-cmplx.Exp(complex(0, lam))*complex(s, 0),
		cmplx.Exp(complex(0, phi))*complex(s, 0),
		cmplx.Exp(complex(0, phi+lam))*complex(c, 0),
	)
}

var gateDefs = map[string]gateDef{
	"I":     {1, 0, constMat(matI)},
	"H":     {1, 0, constMat(matH)},
	"X":     {1, 0, constMat(matX)},
	"Y":     {1, 0, constMat(matY)},
	"Z":     {1, 0, constMat(matZ)},
	"S":     {1, 0, constMat(matS)},
	"SDG":   {1, 0, constMat(matSdg)},
	"T":     {1, 0, constMat(matT)},
	"TDG":   {1, 0, constMat(matTdg)},
	"SX":    {1, 0, constMat(matSX)},
	"SXDG":  {1, 0, constMat(matSXdg)},
	"RX":    {1, 1, rx},
	"RY":    {1, 1, ry},
	"RZ":    {1, 1, rz},
	"P":     {1, 1, phase},
	"U":     {1, 3, u3},
	"CX":    {2, 0, constMat(controlled(matX))},
	"CY":    {2, 0, constMat(controlled(matY))},
	"CZ":    {2, 0, constMat(controlled(matZ))},
	"CH":    {2, 0, constMat(controlled(matH))},
	"CS":    {2, 0, constMat(controlled(matS))},
	"CP":    {2, 1, func(p []float64) *linalg.Matrix { return controlled(phase(p)) }},
	"CRX":   {2, 1, func(p []float64) *linalg.Matrix { return controlled(rx(p)) }},
	"CRY":   {2, 1, func(p []float64) *linalg.Matrix { return controlled(ry(p)) }},
	"CRZ":   {2, 1, func(p []float64) *linalg.Matrix { return controlled(rz(p)) }},
	"SWAP":  {2, 0, constMat(matSWAP)},
	"ISWAP": {2, 0, constMat(matISWAP)},
	"CCX":   {3, 0, constMat(controlled(controlled(matX)))},
	"CCZ":   {3, 0, constMat(controlled(controlled(matZ)))},
	// CSWAP: control is local bit 0, swap is between bits 1 and 2.
	"CSWAP": {3, 0, constMat(controlled(matSWAP))},
	// Higher-order controlled gates (controls first, target last);
	// used by Grover's diffusion operator on 4-5 qubits.
	"C3X": {4, 0, constMat(controlled(controlled(controlled(matX))))},
	"C3Z": {4, 0, constMat(controlled(controlled(controlled(matZ))))},
	"C4X": {5, 0, constMat(controlled(controlled(controlled(controlled(matX)))))},
	"C4Z": {5, 0, constMat(controlled(controlled(controlled(controlled(matZ)))))},
	// Daggered forms needed for circuit inversion.
	"CSDG":    {2, 0, constMat(controlled(matSdg))},
	"ISWAPDG": {2, 0, constMat(matISWAP.ConjTranspose())},
}

// Inverse returns a gate implementing the adjoint U†. Every registry
// gate has a registry inverse: self-inverse gates map to themselves,
// daggered pairs swap, and parameterized gates negate their angles.
func (g Gate) Inverse() (Gate, error) {
	qs := make([]int, len(g.Qubits))
	copy(qs, g.Qubits)
	inv := Gate{Qubits: qs}
	switch g.Name {
	case "I", "H", "X", "Y", "Z", "CX", "CY", "CZ", "CH", "SWAP",
		"CCX", "CCZ", "CSWAP", "C3X", "C3Z", "C4X", "C4Z":
		inv.Name = g.Name
	case "S":
		inv.Name = "SDG"
	case "SDG":
		inv.Name = "S"
	case "T":
		inv.Name = "TDG"
	case "TDG":
		inv.Name = "T"
	case "SX":
		inv.Name = "SXDG"
	case "SXDG":
		inv.Name = "SX"
	case "CS":
		inv.Name = "CSDG"
	case "CSDG":
		inv.Name = "CS"
	case "ISWAP":
		inv.Name = "ISWAPDG"
	case "ISWAPDG":
		inv.Name = "ISWAP"
	case "RX", "RY", "RZ", "P", "CP", "CRX", "CRY", "CRZ":
		inv.Name = g.Name
		inv.Params = []float64{-g.Params[0]}
	case "U":
		// U(θ, φ, λ)† = U(−θ, −λ, −φ).
		inv.Name = "U"
		inv.Params = []float64{-g.Params[0], -g.Params[2], -g.Params[1]}
	default:
		return Gate{}, fmt.Errorf("quantum: no inverse registered for gate %s", g.Name)
	}
	return inv, nil
}
