package quantum

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// This file implements the analysis side of the Output Layer:
// measurement sampling, marginal distributions, expectation values, and
// Bloch-sphere coordinates for single qubits.

// Sample draws shots measurement outcomes in the computational basis
// using the provided RNG (pass a seeded rand.Rand for reproducibility).
// It returns outcome counts. The state need not be normalized; sampling
// uses renormalized probabilities.
func (s *State) Sample(rng *rand.Rand, shots int) map[uint64]int {
	idx := s.Indices()
	probs := make([]float64, len(idx))
	total := 0.0
	for i, k := range idx {
		probs[i] = s.Probability(k)
		total += probs[i]
	}
	counts := make(map[uint64]int)
	if total == 0 || len(idx) == 0 {
		return counts
	}
	// Cumulative distribution + binary search per shot.
	cum := make([]float64, len(probs))
	acc := 0.0
	for i, p := range probs {
		acc += p / total
		cum[i] = acc
	}
	for i := 0; i < shots; i++ {
		r := rng.Float64()
		j := sort.SearchFloat64s(cum, r)
		if j >= len(idx) {
			j = len(idx) - 1
		}
		counts[idx[j]]++
	}
	return counts
}

// MarginalProbabilities returns the distribution over the given qubits,
// tracing out the rest. Keys are packed with qubits[0] at bit 0.
func (s *State) MarginalProbabilities(qubits []int) (map[uint64]float64, error) {
	for _, q := range qubits {
		if q < 0 || q >= s.numQubits {
			return nil, fmt.Errorf("quantum: marginal qubit %d outside register [0,%d)", q, s.numQubits)
		}
	}
	out := make(map[uint64]float64)
	for k, a := range s.amp {
		var key uint64
		for j, q := range qubits {
			key |= (k >> uint(q) & 1) << uint(j)
		}
		out[key] += real(a)*real(a) + imag(a)*imag(a)
	}
	return out, nil
}

// ExpectationZ returns ⟨Z_q⟩ = P(q=0) − P(q=1) for one qubit.
func (s *State) ExpectationZ(q int) float64 {
	p1 := s.QubitProbability(q)
	norm := s.Norm()
	total := norm * norm
	return (total - p1) - p1
}

// ExpectationZProduct returns ⟨Z_{q1} ⊗ Z_{q2} ⊗ …⟩: the expectation of
// the parity observable over the listed qubits.
func (s *State) ExpectationZProduct(qubits []int) float64 {
	var e float64
	for k, a := range s.amp {
		p := real(a)*real(a) + imag(a)*imag(a)
		ones := 0
		for _, q := range qubits {
			if k>>uint(q)&1 == 1 {
				ones++
			}
		}
		if ones%2 == 0 {
			e += p
		} else {
			e -= p
		}
	}
	return e
}

// BlochVector returns the Bloch-sphere coordinates (x, y, z) of one
// qubit's reduced density matrix: x = 2·Re(ρ01), y = 2·Im(ρ10),
// z = ρ00 − ρ11. For a qubit entangled with the rest of the register
// the vector length is < 1 (the educational visualization the paper's
// third demo scenario calls for).
func (s *State) BlochVector(q int) (x, y, z float64, err error) {
	if q < 0 || q >= s.numQubits {
		return 0, 0, 0, fmt.Errorf("quantum: Bloch qubit %d outside register [0,%d)", q, s.numQubits)
	}
	mask := uint64(1) << uint(q)
	// Reduced density matrix entries: ρ00, ρ11 real; ρ01 complex.
	var rho00, rho11 float64
	var rho01 complex128
	for k, a := range s.amp {
		p := real(a)*real(a) + imag(a)*imag(a)
		if k&mask == 0 {
			rho00 += p
			// Pair with the partner state where qubit q is 1.
			if b, ok := s.amp[k|mask]; ok {
				// ρ01 = Σ a_{...0...} · conj(a_{...1...})
				rho01 += a * complexConj(b)
			}
		} else {
			rho11 += p
		}
	}
	x = 2 * real(rho01)
	y = -2 * imag(rho01) // y = 2·Im(ρ10) = −2·Im(ρ01)
	z = rho00 - rho11
	return x, y, z, nil
}

func complexConj(c complex128) complex128 { return complex(real(c), -imag(c)) }

// PurityOfQubit returns Tr(ρ_q²) ∈ [0.5, 1]: 1 for a separable qubit,
// 0.5 for one maximally entangled with the rest.
func (s *State) PurityOfQubit(q int) (float64, error) {
	x, y, z, err := s.BlochVector(q)
	if err != nil {
		return 0, err
	}
	r2 := x*x + y*y + z*z
	return 0.5 * (1 + r2), nil
}

// TopOutcomes returns the most probable basis states in descending
// probability order (ties broken by index), at most n entries.
type Outcome struct {
	Index       uint64
	Probability float64
}

// TopOutcomes lists the n highest-probability outcomes.
func (s *State) TopOutcomes(n int) []Outcome {
	out := make([]Outcome, 0, len(s.amp))
	for k := range s.amp {
		out = append(out, Outcome{Index: k, Probability: s.Probability(k)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Probability != out[j].Probability {
			return out[i].Probability > out[j].Probability
		}
		return out[i].Index < out[j].Index
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// TotalVariationDistance compares two outcome distributions (e.g.
// sampled counts vs exact probabilities): ½·Σ|p_i − q_i|.
func TotalVariationDistance(p, q map[uint64]float64) float64 {
	seen := make(map[uint64]bool)
	var d float64
	for k, v := range p {
		d += math.Abs(v - q[k])
		seen[k] = true
	}
	for k, v := range q {
		if !seen[k] {
			d += v
		}
	}
	return d / 2
}

// CountsToDistribution normalizes sampled counts into probabilities.
func CountsToDistribution(counts map[uint64]int) map[uint64]float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	out := make(map[uint64]float64, len(counts))
	if total == 0 {
		return out
	}
	for k, c := range counts {
		out[k] = float64(c) / float64(total)
	}
	return out
}
