// Package circuitio implements the Circuit Layer's file interfaces: a
// JSON circuit format (the paper's "File Upload" path), a reader for an
// OpenQASM 2.0 subset, and ASCII circuit rendering for inspection.
package circuitio

import (
	"encoding/json"
	"fmt"
	"io"

	"qymera/internal/quantum"
)

// circuitJSON is the serialized circuit document.
type circuitJSON struct {
	Name      string     `json:"name,omitempty"`
	NumQubits int        `json:"num_qubits"`
	Gates     []gateJSON `json:"gates"`
}

type gateJSON struct {
	Name   string    `json:"name"`
	Qubits []int     `json:"qubits"`
	Params []float64 `json:"params,omitempty"`
}

// WriteJSON serializes a circuit.
func WriteJSON(w io.Writer, c *quantum.Circuit) error {
	doc := circuitJSON{Name: c.Name(), NumQubits: c.NumQubits()}
	for _, g := range c.Gates() {
		doc.Gates = append(doc.Gates, gateJSON{Name: g.Name, Qubits: g.Qubits, Params: g.Params})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// MarshalJSON renders a circuit to JSON bytes.
func MarshalJSON(c *quantum.Circuit) ([]byte, error) {
	doc := circuitJSON{Name: c.Name(), NumQubits: c.NumQubits()}
	for _, g := range c.Gates() {
		doc.Gates = append(doc.Gates, gateJSON{Name: g.Name, Qubits: g.Qubits, Params: g.Params})
	}
	return json.MarshalIndent(doc, "", "  ")
}

// ReadJSON parses a circuit document, validating every gate against the
// registry.
func ReadJSON(r io.Reader) (*quantum.Circuit, error) {
	var doc circuitJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("circuitio: invalid circuit JSON: %w", err)
	}
	return buildFromDoc(doc)
}

// UnmarshalJSON parses JSON bytes into a circuit.
func UnmarshalJSON(data []byte) (*quantum.Circuit, error) {
	var doc circuitJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("circuitio: invalid circuit JSON: %w", err)
	}
	return buildFromDoc(doc)
}

func buildFromDoc(doc circuitJSON) (*quantum.Circuit, error) {
	if doc.NumQubits <= 0 {
		return nil, fmt.Errorf("circuitio: num_qubits must be positive, got %d", doc.NumQubits)
	}
	c := quantum.NewCircuit(doc.NumQubits)
	if doc.Name != "" {
		c.SetName(doc.Name)
	}
	for i, g := range doc.Gates {
		if err := c.Append(quantum.Gate{Name: g.Name, Qubits: g.Qubits, Params: g.Params}); err != nil {
			return nil, fmt.Errorf("circuitio: gate %d: %w", i, err)
		}
	}
	return c, nil
}
