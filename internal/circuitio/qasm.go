package circuitio

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"qymera/internal/quantum"
)

// ReadQASM parses a practical subset of OpenQASM 2.0: one quantum
// register, the qelib1 standard gates that map onto the registry,
// parenthesized angle expressions with pi-arithmetic, and ignored
// creg/measure/barrier/include statements.
func ReadQASM(src string) (*quantum.Circuit, error) {
	var c *quantum.Circuit
	regName := ""

	lineNo := 0
	for _, rawLine := range strings.Split(src, "\n") {
		lineNo++
		line := rawLine
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		for _, stmt := range strings.Split(line, ";") {
			stmt = strings.TrimSpace(stmt)
			if stmt == "" {
				continue
			}
			if err := parseQASMStatement(stmt, &c, &regName); err != nil {
				return nil, fmt.Errorf("qasm line %d: %w", lineNo, err)
			}
		}
	}
	if c == nil {
		return nil, fmt.Errorf("circuitio: QASM input declares no qreg")
	}
	return c, nil
}

// WriteQASM renders a circuit as OpenQASM 2.0. Gates without a qelib1
// spelling (ISWAP and the C3/C4 families) are rejected; decompose them
// before export.
func WriteQASM(c *quantum.Circuit) (string, error) {
	var b strings.Builder
	b.WriteString("OPENQASM 2.0;\n")
	b.WriteString("include \"qelib1.inc\";\n")
	fmt.Fprintf(&b, "qreg q[%d];\n", c.NumQubits())
	for _, g := range c.Gates() {
		name, ok := qasmExportMap[g.Name]
		if !ok {
			return "", fmt.Errorf("circuitio: gate %s has no OpenQASM 2.0 spelling", g.Name)
		}
		b.WriteString(name)
		if len(g.Params) > 0 {
			parts := make([]string, len(g.Params))
			for i, p := range g.Params {
				parts[i] = strconv.FormatFloat(p, 'g', -1, 64)
			}
			b.WriteString("(" + strings.Join(parts, ", ") + ")")
		}
		b.WriteString(" ")
		qs := make([]string, len(g.Qubits))
		for i, q := range g.Qubits {
			qs[i] = fmt.Sprintf("q[%d]", q)
		}
		b.WriteString(strings.Join(qs, ", "))
		b.WriteString(";\n")
	}
	return b.String(), nil
}

// qasmExportMap maps registry names to qelib1 spellings.
var qasmExportMap = map[string]string{
	"I": "id", "H": "h", "X": "x", "Y": "y", "Z": "z",
	"S": "s", "SDG": "sdg", "T": "t", "TDG": "tdg", "SX": "sx",
	"RX": "rx", "RY": "ry", "RZ": "rz", "P": "p", "U": "u",
	"CX": "cx", "CY": "cy", "CZ": "cz", "CH": "ch", "CP": "cp",
	"CRX": "crx", "CRY": "cry", "CRZ": "crz",
	"SWAP": "swap", "CCX": "ccx", "CCZ": "ccz", "CSWAP": "cswap",
}

// qasmGateMap maps qelib1 names to registry names.
var qasmGateMap = map[string]string{
	"id": "I", "h": "H", "x": "X", "y": "Y", "z": "Z",
	"s": "S", "sdg": "SDG", "t": "T", "tdg": "TDG", "sx": "SX", "sxdg": "SXDG",
	"rx": "RX", "ry": "RY", "rz": "RZ", "p": "P", "u1": "P", "u": "U", "u3": "U",
	"cx": "CX", "cy": "CY", "cz": "CZ", "ch": "CH", "cp": "CP", "cu1": "CP",
	"crx": "CRX", "cry": "CRY", "crz": "CRZ",
	"swap": "SWAP", "iswap": "ISWAP",
	"ccx": "CCX", "ccz": "CCZ", "cswap": "CSWAP",
}

func parseQASMStatement(stmt string, c **quantum.Circuit, regName *string) error {
	lower := strings.ToLower(stmt)
	switch {
	case strings.HasPrefix(lower, "openqasm"),
		strings.HasPrefix(lower, "include"),
		strings.HasPrefix(lower, "creg"),
		strings.HasPrefix(lower, "barrier"),
		strings.HasPrefix(lower, "measure"):
		return nil
	case strings.HasPrefix(lower, "qreg"):
		if *c != nil {
			return fmt.Errorf("multiple qreg declarations are not supported")
		}
		rest := strings.TrimSpace(stmt[4:])
		open := strings.IndexByte(rest, '[')
		close := strings.IndexByte(rest, ']')
		if open < 0 || close < open {
			return fmt.Errorf("malformed qreg %q", stmt)
		}
		n, err := strconv.Atoi(strings.TrimSpace(rest[open+1 : close]))
		if err != nil || n <= 0 {
			return fmt.Errorf("malformed qreg size in %q", stmt)
		}
		*regName = strings.TrimSpace(rest[:open])
		*c = quantum.NewCircuit(n)
		return nil
	}

	// Gate application: name[(params)] q[i](, q[j])*
	if *c == nil {
		return fmt.Errorf("gate before qreg declaration")
	}
	name := lower
	params := ""
	if i := strings.IndexByte(lower, '('); i >= 0 {
		j := strings.LastIndexByte(lower, ')')
		if j < i {
			return fmt.Errorf("unbalanced parentheses in %q", stmt)
		}
		name = strings.TrimSpace(lower[:i])
		params = lower[i+1 : j]
		lower = name + " " + strings.TrimSpace(lower[j+1:])
		stmt = lower
	} else {
		fields := strings.Fields(lower)
		if len(fields) < 2 {
			return fmt.Errorf("malformed gate statement %q", stmt)
		}
		name = fields[0]
	}

	gateName, ok := qasmGateMap[name]
	if !ok {
		return fmt.Errorf("unsupported gate %q", name)
	}

	// Parameters.
	var ps []float64
	if params != "" {
		for _, p := range strings.Split(params, ",") {
			v, err := evalAngle(strings.TrimSpace(p))
			if err != nil {
				return err
			}
			ps = append(ps, v)
		}
	}

	// Operands.
	args := strings.TrimSpace(stmt[len(name):])
	var qubits []int
	for _, op := range strings.Split(args, ",") {
		op = strings.TrimSpace(op)
		open := strings.IndexByte(op, '[')
		close := strings.IndexByte(op, ']')
		if open < 0 || close < open {
			return fmt.Errorf("whole-register application %q is not supported; index qubits explicitly", op)
		}
		reg := strings.TrimSpace(op[:open])
		if *regName != "" && reg != *regName {
			return fmt.Errorf("unknown register %q", reg)
		}
		q, err := strconv.Atoi(op[open+1 : close])
		if err != nil {
			return fmt.Errorf("bad qubit index in %q", op)
		}
		qubits = append(qubits, q)
	}
	return (*c).Append(quantum.Gate{Name: gateName, Qubits: qubits, Params: ps})
}

// evalAngle evaluates QASM angle expressions: numbers, pi, + - * /,
// unary minus, and parentheses.
func evalAngle(expr string) (float64, error) {
	p := &angleParser{src: expr}
	v, err := p.parseExpr()
	if err != nil {
		return 0, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return 0, fmt.Errorf("trailing input in angle %q", expr)
	}
	return v, nil
}

type angleParser struct {
	src string
	pos int
}

func (p *angleParser) skipSpace() {
	for p.pos < len(p.src) && p.src[p.pos] == ' ' {
		p.pos++
	}
}

func (p *angleParser) parseExpr() (float64, error) {
	v, err := p.parseTerm()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return v, nil
		}
		switch p.src[p.pos] {
		case '+':
			p.pos++
			t, err := p.parseTerm()
			if err != nil {
				return 0, err
			}
			v += t
		case '-':
			p.pos++
			t, err := p.parseTerm()
			if err != nil {
				return 0, err
			}
			v -= t
		default:
			return v, nil
		}
	}
}

func (p *angleParser) parseTerm() (float64, error) {
	v, err := p.parseUnary()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return v, nil
		}
		switch p.src[p.pos] {
		case '*':
			p.pos++
			t, err := p.parseUnary()
			if err != nil {
				return 0, err
			}
			v *= t
		case '/':
			p.pos++
			t, err := p.parseUnary()
			if err != nil {
				return 0, err
			}
			if t == 0 {
				return 0, fmt.Errorf("division by zero in angle")
			}
			v /= t
		default:
			return v, nil
		}
	}
}

func (p *angleParser) parseUnary() (float64, error) {
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == '-' {
		p.pos++
		v, err := p.parseUnary()
		return -v, err
	}
	return p.parsePrimary()
}

func (p *angleParser) parsePrimary() (float64, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0, fmt.Errorf("unexpected end of angle expression")
	}
	if p.src[p.pos] == '(' {
		p.pos++
		v, err := p.parseExpr()
		if err != nil {
			return 0, err
		}
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return 0, fmt.Errorf("missing ')' in angle expression")
		}
		p.pos++
		return v, nil
	}
	if strings.HasPrefix(p.src[p.pos:], "pi") {
		p.pos += 2
		return math.Pi, nil
	}
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if (c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' {
			p.pos++
			continue
		}
		if (c == '+' || c == '-') && p.pos > start && (p.src[p.pos-1] == 'e' || p.src[p.pos-1] == 'E') {
			p.pos++
			continue
		}
		break
	}
	if start == p.pos {
		return 0, fmt.Errorf("unexpected character %q in angle expression", string(p.src[p.pos]))
	}
	v, err := strconv.ParseFloat(p.src[start:p.pos], 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q in angle expression", p.src[start:p.pos])
	}
	return v, nil
}
