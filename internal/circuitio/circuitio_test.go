package circuitio

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"qymera/internal/circuits"
	"qymera/internal/quantum"
	"qymera/internal/sim"
)

func TestJSONRoundTrip(t *testing.T) {
	orig := quantum.NewCircuit(3).SetName("rt").H(0).CX(0, 1).RZ(2, 0.75)
	data, err := MarshalJSON(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != "rt" || back.NumQubits() != 3 || back.Len() != 3 {
		t.Fatalf("round trip lost data: %s", back.String())
	}
	if back.Gates()[2].Params[0] != 0.75 {
		t.Fatalf("params lost: %+v", back.Gates()[2])
	}
}

func TestJSONWriterReader(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, circuits.GHZ(4)); err != nil {
		t.Fatal(err)
	}
	c, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits() != 4 || c.Len() != 4 {
		t.Fatalf("c = %s", c.String())
	}
}

func TestJSONValidation(t *testing.T) {
	cases := []string{
		`{"num_qubits": 0, "gates": []}`,
		`{"num_qubits": 2, "gates": [{"name": "NOPE", "qubits": [0]}]}`,
		`{"num_qubits": 2, "gates": [{"name": "H", "qubits": [5]}]}`,
		`{"num_qubits": 2, "gates": [{"name": "RZ", "qubits": [0]}]}`,
		`not json`,
	}
	for _, src := range cases {
		if _, err := UnmarshalJSON([]byte(src)); err == nil {
			t.Fatalf("%s: expected error", src)
		}
	}
}

func TestReadQASMBasic(t *testing.T) {
	src := `
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0], q[1];
cx q[1], q[2];
measure q -> c;
`
	c, err := ReadQASM(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits() != 3 || c.Len() != 3 {
		t.Fatalf("c = %s", c.String())
	}
	// It should produce a GHZ state.
	res, err := (&sim.StateVector{}).Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.State.Len() != 2 {
		t.Fatalf("state = %s", res.State.FormatKet())
	}
}

func TestReadQASMParameterized(t *testing.T) {
	src := `qreg q[2]; rz(pi/2) q[0]; cp(2*pi/4) q[0], q[1]; u(pi/2, 0, pi) q[1];`
	c, err := ReadQASM(src)
	if err != nil {
		t.Fatal(err)
	}
	gs := c.Gates()
	if math.Abs(gs[0].Params[0]-math.Pi/2) > 1e-12 {
		t.Fatalf("rz param = %v", gs[0].Params)
	}
	if math.Abs(gs[1].Params[0]-math.Pi/2) > 1e-12 {
		t.Fatalf("cp param = %v", gs[1].Params)
	}
	if len(gs[2].Params) != 3 {
		t.Fatalf("u params = %v", gs[2].Params)
	}
}

func TestReadQASMAngleExpressions(t *testing.T) {
	cases := map[string]float64{
		"pi":           math.Pi,
		"-pi/4":        -math.Pi / 4,
		"3*pi/2":       3 * math.Pi / 2,
		"(pi+pi)/4":    math.Pi / 2,
		"0.5":          0.5,
		"1e-2":         0.01,
		"2 - 3":        -1,
		"pi - pi/2":    math.Pi / 2,
		"-(pi)/2 + pi": math.Pi / 2,
	}
	for expr, want := range cases {
		got, err := evalAngle(expr)
		if err != nil {
			t.Fatalf("%q: %v", expr, err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("%q = %v, want %v", expr, got, want)
		}
	}
	for _, bad := range []string{"", "pi pi", "1/0", "(pi", "foo"} {
		if _, err := evalAngle(bad); err == nil {
			t.Fatalf("%q: expected error", bad)
		}
	}
}

func TestReadQASMErrors(t *testing.T) {
	cases := []string{
		"h q[0];",                     // gate before qreg
		"qreg q[2]; frobnicate q[0];", // unknown gate
		"qreg q[2]; h q;",             // whole-register application
		"qreg q[2]; qreg r[2];",       // second register
		"qreg q[2]; cx q[0], r[1];",   // unknown register
		"qreg q[0];",                  // empty register
		"qreg q[2]; rz(pi q[0];",      // unbalanced parens
	}
	for _, src := range cases {
		if _, err := ReadQASM(src); err == nil {
			t.Fatalf("%q: expected error", src)
		}
	}
}

func TestDrawGHZ(t *testing.T) {
	out := Draw(circuits.GHZ(3))
	if !strings.Contains(out, "[H]") {
		t.Fatalf("missing H box:\n%s", out)
	}
	if strings.Count(out, "●") != 2 || strings.Count(out, "⊕") != 2 {
		t.Fatalf("controls/targets wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + 3 wires.
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
}

func TestDrawParameterizedAndSwap(t *testing.T) {
	c := quantum.NewCircuit(3).RZ(0, 0.5).SWAP(0, 2).CP(1, 2, 0.25)
	out := Draw(c)
	if !strings.Contains(out, "RZ(0.5)") {
		t.Fatalf("missing RZ label:\n%s", out)
	}
	if strings.Count(out, "x") < 2 {
		t.Fatalf("missing swap markers:\n%s", out)
	}
	if !strings.Contains(out, "P(0.25)") {
		t.Fatalf("missing CP label:\n%s", out)
	}
}

func TestDrawVerticalSpan(t *testing.T) {
	c := quantum.NewCircuit(3).CX(0, 2)
	out := Draw(c)
	if !strings.Contains(out, "│") {
		t.Fatalf("missing vertical bar on pass-through qubit:\n%s", out)
	}
}

func TestQASMJSONEquivalence(t *testing.T) {
	qasm := `qreg q[2]; h q[0]; cx q[0], q[1];`
	fromQASM, err := ReadQASM(qasm)
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := UnmarshalJSON([]byte(`{"num_qubits":2,"gates":[{"name":"H","qubits":[0]},{"name":"CX","qubits":[0,1]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := (&sim.StateVector{}).Run(fromQASM)
	b, _ := (&sim.StateVector{}).Run(fromJSON)
	if f := a.State.Fidelity(b.State); math.Abs(f-1) > 1e-12 {
		t.Fatalf("fidelity = %v", f)
	}
}

func TestWriteQASMRoundTrip(t *testing.T) {
	orig := quantum.NewCircuit(3).H(0).CX(0, 1).RZ(2, 0.5).CCX(0, 1, 2).SWAP(0, 2)
	src, err := WriteQASM(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadQASM(src)
	if err != nil {
		t.Fatalf("%v\nqasm:\n%s", err, src)
	}
	a, err := (&sim.StateVector{}).Run(orig)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&sim.StateVector{}).Run(back)
	if err != nil {
		t.Fatal(err)
	}
	if f := a.State.Fidelity(b.State); math.Abs(f-1) > 1e-12 {
		t.Fatalf("fidelity = %v\nqasm:\n%s", f, src)
	}
}

func TestWriteQASMRejectsNonStandardGates(t *testing.T) {
	c := quantum.NewCircuit(2).ISWAP(0, 1)
	if _, err := WriteQASM(c); err == nil {
		t.Fatal("expected error for ISWAP export")
	}
}
