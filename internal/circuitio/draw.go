package circuitio

import (
	"fmt"
	"strings"

	"qymera/internal/quantum"
)

// Draw renders a circuit as ASCII art, one horizontal wire per qubit and
// one column per gate:
//
//	q0: ─[H]──●───────
//	q1: ──────⊕───●───
//	q2: ───────────⊕──
//
// Controls render as ●, X-targets as ⊕, other targets as bracketed
// labels. Vertical bars mark multi-qubit extents.
func Draw(c *quantum.Circuit) string {
	n := c.NumQubits()
	cols := make([][]string, 0, c.Len())

	for _, g := range c.Gates() {
		col := make([]string, n)
		label := gateDrawLabel(g)
		switch {
		case len(g.Qubits) == 1:
			col[g.Qubits[0]] = "[" + label + "]"
		case isControlledDraw(g.Name):
			// Controls are all but the last qubit (SWAP-likes excluded).
			for _, q := range g.Qubits[:len(g.Qubits)-1] {
				col[q] = "●"
			}
			t := g.Qubits[len(g.Qubits)-1]
			if strings.HasSuffix(g.Name, "X") {
				col[t] = "⊕"
			} else {
				col[t] = "[" + label + "]"
			}
		case g.Name == "SWAP" || g.Name == "ISWAP":
			col[g.Qubits[0]] = "x"
			col[g.Qubits[1]] = "x"
			if g.Name == "ISWAP" {
				col[g.Qubits[0]] = "ix"
				col[g.Qubits[1]] = "ix"
			}
		case g.Name == "CSWAP":
			col[g.Qubits[0]] = "●"
			col[g.Qubits[1]] = "x"
			col[g.Qubits[2]] = "x"
		default:
			for i, q := range g.Qubits {
				col[q] = fmt.Sprintf("[%s:%d]", label, i)
			}
		}
		// Mark the vertical span for multi-qubit gates.
		if len(g.Qubits) > 1 {
			min, max := g.Qubits[0], g.Qubits[0]
			for _, q := range g.Qubits {
				if q < min {
					min = q
				}
				if q > max {
					max = q
				}
			}
			for q := min + 1; q < max; q++ {
				if col[q] == "" {
					col[q] = "│"
				}
			}
		}
		cols = append(cols, col)
	}

	// Column widths.
	widths := make([]int, len(cols))
	for i, col := range cols {
		w := 1
		for _, cell := range col {
			if l := runeLen(cell); l > w {
				w = l
			}
		}
		widths[i] = w + 2 // padding dashes
	}

	var b strings.Builder
	if c.Name() != "" {
		fmt.Fprintf(&b, "%s (%d qubits, %d gates)\n", c.Name(), n, c.Len())
	}
	for q := 0; q < n; q++ {
		fmt.Fprintf(&b, "q%-2d: ", q)
		for i, col := range cols {
			cell := col[q]
			if cell == "" {
				b.WriteString(strings.Repeat("─", widths[i]))
				continue
			}
			pad := widths[i] - runeLen(cell)
			left := pad / 2
			right := pad - left
			filler := "─"
			if cell == "│" {
				filler = " "
				b.WriteString(strings.Repeat(" ", left) + cell + strings.Repeat(" ", right))
				continue
			}
			b.WriteString(strings.Repeat(filler, left) + cell + strings.Repeat(filler, right))
		}
		b.WriteString("\n")
	}
	return b.String()
}

func runeLen(s string) int { return len([]rune(s)) }

// gateDrawLabel shortens gate labels for drawing.
func gateDrawLabel(g quantum.Gate) string {
	name := strings.TrimPrefix(g.Name, "C")
	switch g.Name {
	case "CX", "CCX", "C3X", "C4X":
		return "X"
	case "CZ", "CCZ", "C3Z", "C4Z":
		return "Z"
	}
	if len(g.Params) == 1 {
		return fmt.Sprintf("%s(%.3g)", name, g.Params[0])
	}
	if len(g.Params) > 1 {
		parts := make([]string, len(g.Params))
		for i, p := range g.Params {
			parts[i] = fmt.Sprintf("%.3g", p)
		}
		return name + "(" + strings.Join(parts, ",") + ")"
	}
	return name
}

// isControlledDraw reports whether the gate renders as controls plus one
// target.
func isControlledDraw(name string) bool {
	switch name {
	case "CX", "CY", "CZ", "CH", "CS", "CP", "CRX", "CRY", "CRZ",
		"CCX", "CCZ", "C3X", "C3Z", "C4X", "C4Z":
		return true
	}
	return false
}
