// Package circuits provides the named circuit families used throughout
// the paper's demonstration scenarios and benchmarks: GHZ preparation,
// equal superposition, the parity-check algorithm, QFT, W state,
// Bernstein–Vazirani, Deutsch–Jozsa, Grover search, hardware-efficient
// ansätze, and random sparse/dense circuits.
package circuits

import (
	"fmt"
	"math"
	"math/rand"

	"qymera/internal/quantum"
)

// GHZ prepares the n-qubit GHZ state (|0…0⟩ + |1…1⟩)/√2 with an H on
// qubit 0 followed by a CX chain — the running example of Fig. 2 and the
// paper's canonical sparse circuit (2 nonzero amplitudes at any width).
func GHZ(n int) *quantum.Circuit {
	c := quantum.NewCircuit(n).SetName(fmt.Sprintf("ghz-%d", n))
	c.H(0)
	for q := 0; q < n-1; q++ {
		c.CX(q, q+1)
	}
	return c
}

// EqualSuperposition applies H to every qubit, producing the uniform
// superposition over all 2^n basis states — the paper's canonical dense
// circuit (the nonzero-row table is the full 2^n).
func EqualSuperposition(n int) *quantum.Circuit {
	c := quantum.NewCircuit(n).SetName(fmt.Sprintf("superposition-%d", n))
	for q := 0; q < n; q++ {
		c.H(q)
	}
	return c
}

// ParityCheck builds the quantum parity-check circuit of the paper's
// algorithm-design scenario: data qubits 0..k-1 are prepared in the
// basis state |bits⟩, and qubit k (the ancilla) accumulates their parity
// via CX gates. Measuring the ancilla yields 1 iff the number of ones in
// bits is odd.
func ParityCheck(bits []bool) *quantum.Circuit {
	k := len(bits)
	if k == 0 {
		panic("circuits: parity check needs at least one data qubit")
	}
	c := quantum.NewCircuit(k + 1).SetName(fmt.Sprintf("parity-%d", k))
	for q, b := range bits {
		if b {
			c.X(q)
		}
	}
	for q := 0; q < k; q++ {
		c.CX(q, k)
	}
	return c
}

// ParitySuperposition is the parity check applied to an equal
// superposition of all inputs: entangles the ancilla with the parity of
// every basis state at once.
func ParitySuperposition(k int) *quantum.Circuit {
	c := quantum.NewCircuit(k + 1).SetName(fmt.Sprintf("parity-super-%d", k))
	for q := 0; q < k; q++ {
		c.H(q)
	}
	for q := 0; q < k; q++ {
		c.CX(q, k)
	}
	return c
}

// QFT is the quantum Fourier transform on n qubits: H plus controlled
// phase rotations, with final SWAPs reversing qubit order. A dense
// structured circuit exercising parameterized multi-qubit gates.
func QFT(n int) *quantum.Circuit {
	c := quantum.NewCircuit(n).SetName(fmt.Sprintf("qft-%d", n))
	for i := n - 1; i >= 0; i-- {
		c.H(i)
		for j := i - 1; j >= 0; j-- {
			c.CP(j, i, math.Pi/math.Pow(2, float64(i-j)))
		}
	}
	for i := 0; i < n/2; i++ {
		c.SWAP(i, n-1-i)
	}
	return c
}

// WState prepares the n-qubit W state (equal superposition of all
// one-hot basis states) using RY rotations and CX cascades. A sparse
// circuit with n nonzero amplitudes.
func WState(n int) *quantum.Circuit {
	c := quantum.NewCircuit(n).SetName(fmt.Sprintf("w-%d", n))
	// Standard cascade: rotate amplitude out of qubit i, controlled on
	// the previous one.
	c.X(0)
	for i := 1; i < n; i++ {
		// Keep amplitude sqrt(1/(n-i+1)) on qubit i-1 and pass the rest
		// down the cascade, so every one-hot state ends at 1/sqrt(n).
		theta := 2 * math.Acos(math.Sqrt(1/float64(n-i+1)))
		c.CRY(i-1, i, theta)
		c.CX(i, i-1)
	}
	return c
}

// BernsteinVazirani recovers a hidden bitstring s: |s| data qubits plus
// one ancilla. After H on all, oracle CXs from data qubit i to the
// ancilla where s_i=1, then H again; measuring the data register yields
// s with probability 1. Sparse throughout.
func BernsteinVazirani(secret []bool) *quantum.Circuit {
	k := len(secret)
	if k == 0 {
		panic("circuits: Bernstein-Vazirani needs a nonempty secret")
	}
	c := quantum.NewCircuit(k + 1).SetName(fmt.Sprintf("bv-%d", k))
	anc := k
	c.X(anc)
	for q := 0; q <= k; q++ {
		c.H(q)
	}
	for q, b := range secret {
		if b {
			c.CX(q, anc)
		}
	}
	for q := 0; q < k; q++ {
		c.H(q)
	}
	return c
}

// DeutschJozsa distinguishes a constant from a balanced oracle on k
// input qubits. balanced=false uses the constant-0 oracle (no gates);
// balanced=true uses the parity oracle (CX from every input to the
// ancilla).
func DeutschJozsa(k int, balanced bool) *quantum.Circuit {
	c := quantum.NewCircuit(k + 1).SetName(fmt.Sprintf("dj-%d-%v", k, balanced))
	anc := k
	c.X(anc)
	for q := 0; q <= k; q++ {
		c.H(q)
	}
	if balanced {
		for q := 0; q < k; q++ {
			c.CX(q, anc)
		}
	}
	for q := 0; q < k; q++ {
		c.H(q)
	}
	return c
}

// Grover runs the textbook Grover search for a single marked basis state
// on n qubits with the standard ⌊π/4·√(2^n)⌋ iterations, built from H,
// X, and multi-controlled Z (decomposed via CCZ/CZ for small n). Only
// n in [2, 5] is supported — enough for correctness tests and benches.
func Grover(n int, marked uint64) *quantum.Circuit {
	if n < 2 || n > 5 {
		panic("circuits: Grover supported for 2..5 qubits")
	}
	if marked >= uint64(1)<<uint(n) {
		panic("circuits: marked state out of range")
	}
	c := quantum.NewCircuit(n).SetName(fmt.Sprintf("grover-%d-%d", n, marked))
	for q := 0; q < n; q++ {
		c.H(q)
	}
	iters := int(math.Floor(math.Pi / 4 * math.Sqrt(math.Pow(2, float64(n)))))
	if iters < 1 {
		iters = 1
	}
	for it := 0; it < iters; it++ {
		// Oracle: flip the phase of |marked⟩.
		phaseFlip(c, n, marked)
		// Diffusion (inversion about the mean): H^n, phase-flip of
		// |0…0⟩, H^n — equal to 2|ψ⟩⟨ψ|−I up to global phase.
		for q := 0; q < n; q++ {
			c.H(q)
		}
		phaseFlip(c, n, 0)
		for q := 0; q < n; q++ {
			c.H(q)
		}
	}
	return c
}

// phaseFlip multiplies the amplitude of |target⟩ by -1 using X
// conjugation and a multi-controlled Z.
func phaseFlip(c *quantum.Circuit, n int, target uint64) {
	for q := 0; q < n; q++ {
		if target>>uint(q)&1 == 0 {
			c.X(q)
		}
	}
	switch n {
	case 2:
		c.CZ(0, 1)
	case 3:
		c.CCZ(0, 1, 2)
	case 4:
		mustAppendGate(c, "C3Z", 0, 1, 2, 3)
	case 5:
		mustAppendGate(c, "C4Z", 0, 1, 2, 3, 4)
	}
	for q := 0; q < n; q++ {
		if target>>uint(q)&1 == 0 {
			c.X(q)
		}
	}
}

// mustAppendGate appends a registry gate by name; the circuit builders
// only call it with validated inputs.
func mustAppendGate(c *quantum.Circuit, name string, qubits ...int) {
	if err := c.Append(quantum.Gate{Name: name, Qubits: qubits}); err != nil {
		panic(err)
	}
}

// HardwareEfficientAnsatz builds the layered parameterized circuit used
// by variational algorithms: per layer, RY(θ)+RZ(φ) on every qubit, then
// a CX entangling chain. Parameters are consumed from params in order;
// it panics if too few are supplied. Needed: layers * n * 2.
func HardwareEfficientAnsatz(n, layers int, params []float64) *quantum.Circuit {
	need := layers * n * 2
	if len(params) < need {
		panic(fmt.Sprintf("circuits: ansatz needs %d params, got %d", need, len(params)))
	}
	c := quantum.NewCircuit(n).SetName(fmt.Sprintf("ansatz-%d-%d", n, layers))
	p := 0
	for l := 0; l < layers; l++ {
		for q := 0; q < n; q++ {
			c.RY(q, params[p])
			c.RZ(q, params[p+1])
			p += 2
		}
		for q := 0; q < n-1; q++ {
			c.CX(q, q+1)
		}
	}
	return c
}

// RandomSparse generates a circuit that keeps the state sparse: X, Z, S,
// CX and CCX gates only (classical-permutation plus phases), so the
// support never exceeds the initial support size. Deterministic for a
// given seed.
func RandomSparse(n, gates int, seed int64) *quantum.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := quantum.NewCircuit(n).SetName(fmt.Sprintf("rand-sparse-%d-%d", n, gates))
	for i := 0; i < gates; i++ {
		switch rng.Intn(4) {
		case 0:
			c.X(rng.Intn(n))
		case 1:
			c.Z(rng.Intn(n))
		case 2:
			c.S(rng.Intn(n))
		default:
			if n >= 2 {
				a, b := rng.Intn(n), rng.Intn(n)
				for b == a {
					b = rng.Intn(n)
				}
				c.CX(a, b)
			} else {
				c.X(0)
			}
		}
	}
	return c
}

// RandomAnyGate draws gates uniformly from the whole registry (every
// 1-, 2-, and 3+-qubit gate, with random angles where parameterized),
// exercising the full gate set for differential testing. Deterministic
// for a given seed. Requires n at least 5 so the widest gates fit.
func RandomAnyGate(n, gates int, seed int64) *quantum.Circuit {
	if n < 5 {
		panic("circuits: RandomAnyGate needs at least 5 qubits")
	}
	rng := rand.New(rand.NewSource(seed))
	names := quantum.KnownGates()
	c := quantum.NewCircuit(n).SetName(fmt.Sprintf("rand-any-%d-%d", n, gates))
	for len(c.Gates()) < gates {
		name := names[rng.Intn(len(names))]
		arity, _ := quantum.GateArity(name)
		nparams, _ := quantum.GateParamCount(name)
		qs := rng.Perm(n)[:arity]
		params := make([]float64, nparams)
		for i := range params {
			params[i] = rng.Float64()*2*math.Pi - math.Pi
		}
		if err := c.Append(quantum.Gate{Name: name, Qubits: qs, Params: params}); err != nil {
			panic(err)
		}
	}
	return c
}

// RandomDense generates a circuit that rapidly densifies the state:
// layers of H and rotations interleaved with entangling CX chains.
// Deterministic for a given seed.
func RandomDense(n, layers int, seed int64) *quantum.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := quantum.NewCircuit(n).SetName(fmt.Sprintf("rand-dense-%d-%d", n, layers))
	for l := 0; l < layers; l++ {
		for q := 0; q < n; q++ {
			switch rng.Intn(3) {
			case 0:
				c.H(q)
			case 1:
				c.RY(q, rng.Float64()*math.Pi)
			default:
				c.RZ(q, rng.Float64()*2*math.Pi)
			}
		}
		for q := 0; q < n-1; q++ {
			c.CX(q, q+1)
		}
	}
	return c
}
