package circuits

import (
	"math"
	"math/rand"
	"testing"

	"qymera/internal/quantum"
	"qymera/internal/sim"
)

func TestSampleTrajectoryZeroNoiseIsIdentity(t *testing.T) {
	c := GHZ(4)
	noisy, err := SampleTrajectory(c, PauliNoiseModel{}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if noisy != c {
		t.Fatal("zero noise should return the original circuit")
	}
}

func TestSampleTrajectoryInsertsPaulis(t *testing.T) {
	c := GHZ(6)
	model := PauliNoiseModel{OneQubitError: 1, TwoQubitError: 1} // always error
	noisy, err := SampleTrajectory(c, model, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	// Every gate qubit gets exactly one extra Pauli: H contributes 1,
	// each CX contributes 2.
	wantExtra := 1 + 2*(c.Len()-1)
	if noisy.Len() != c.Len()+wantExtra {
		t.Fatalf("len = %d, want %d", noisy.Len(), c.Len()+wantExtra)
	}
	counts := noisy.CountByName()
	if counts["X"]+counts["Y"]+counts["Z"] != wantExtra {
		t.Fatalf("counts = %v", counts)
	}
}

func TestSampleTrajectoryValidation(t *testing.T) {
	if _, err := SampleTrajectory(GHZ(2), PauliNoiseModel{OneQubitError: 1.5}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected validation error")
	}
}

// TestTrajectoryDepolarizesGHZ: the GHZ parity correlation ⟨Z⊗…⊗Z⟩...
// For GHZ, <ZZ> between any pair is +1 noiselessly and decays toward 0
// under depolarizing noise.
func TestTrajectoryDepolarizesGHZ(t *testing.T) {
	c := GHZ(4)
	zz := func(circuit *quantum.Circuit) (float64, error) {
		res, err := (&sim.StateVector{}).Run(circuit)
		if err != nil {
			return 0, err
		}
		return res.State.ExpectationZProduct([]int{0, 1}), nil
	}

	ideal, err := TrajectoryRunner{Trials: 1}.AverageObservable(c, zz)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ideal-1) > 1e-9 {
		t.Fatalf("ideal <ZZ> = %v", ideal)
	}

	noisy, err := TrajectoryRunner{
		Model:  PauliNoiseModel{OneQubitError: 0.05, TwoQubitError: 0.15},
		Trials: 200,
		Seed:   7,
	}.AverageObservable(c, zz)
	if err != nil {
		t.Fatal(err)
	}
	if noisy >= 0.95 {
		t.Fatalf("noise did not degrade <ZZ>: %v", noisy)
	}
	if noisy <= -0.5 {
		t.Fatalf("<ZZ> overshot: %v", noisy)
	}
}

// TestTrajectoriesWorkOnSQLBackend demonstrates the point of the
// trajectory method: noisy simulation needs no density matrices, so the
// RDBMS backend runs it unchanged.
func TestTrajectoriesWorkOnSQLBackend(t *testing.T) {
	c := GHZ(3)
	zz := func(circuit *quantum.Circuit) (float64, error) {
		res, err := (&sim.SQL{}).Run(circuit)
		if err != nil {
			return 0, err
		}
		return res.State.ExpectationZProduct([]int{0, 2}), nil
	}
	v, err := TrajectoryRunner{
		Model:  PauliNoiseModel{OneQubitError: 0.1, TwoQubitError: 0.2},
		Trials: 20,
		Seed:   3,
	}.AverageObservable(c, zz)
	if err != nil {
		t.Fatal(err)
	}
	if v < -1 || v > 1 {
		t.Fatalf("<ZZ> = %v out of range", v)
	}
}

func TestTrajectoryReproducibleSeed(t *testing.T) {
	c := GHZ(3)
	obs := func(circuit *quantum.Circuit) (float64, error) {
		res, err := (&sim.StateVector{}).Run(circuit)
		if err != nil {
			return 0, err
		}
		return res.State.Probability(0), nil
	}
	run := func() float64 {
		v, err := TrajectoryRunner{
			Model:  PauliNoiseModel{OneQubitError: 0.2, TwoQubitError: 0.2},
			Trials: 10,
			Seed:   42,
		}.AverageObservable(c, obs)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if run() != run() {
		t.Fatal("same seed must give the same ensemble")
	}
}
