package circuits

import (
	"fmt"
	"math/rand"

	"qymera/internal/quantum"
)

// This file adds NISQ-style noise via the quantum-trajectory method:
// a noisy circuit is sampled as an ensemble of pure-state circuits, each
// with random Pauli errors inserted after gates. Averaging observables
// over trajectories reproduces the depolarizing channel without density
// matrices, so every backend — including the SQL one — can simulate
// noisy circuits unchanged.

// PauliNoiseModel configures per-gate depolarizing noise.
type PauliNoiseModel struct {
	// OneQubitError is the probability that a qubit suffers a random
	// Pauli (X, Y, or Z, equally likely) after a 1-qubit gate.
	OneQubitError float64
	// TwoQubitError is the per-qubit error probability after a gate
	// touching 2+ qubits (typically ~10x the 1-qubit rate on hardware).
	TwoQubitError float64
}

// Validate checks probabilities are in range.
func (m PauliNoiseModel) Validate() error {
	for _, p := range []float64{m.OneQubitError, m.TwoQubitError} {
		if p < 0 || p > 1 {
			return fmt.Errorf("circuits: noise probability %v outside [0,1]", p)
		}
	}
	return nil
}

// SampleTrajectory returns one noisy instance of the circuit: the
// original gates with Pauli errors inserted according to the model,
// using rng for reproducible sampling. The ideal circuit is returned
// unchanged (same pointer) when both error rates are zero.
func SampleTrajectory(c *quantum.Circuit, model PauliNoiseModel, rng *rand.Rand) (*quantum.Circuit, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if model.OneQubitError == 0 && model.TwoQubitError == 0 {
		return c, nil
	}
	out := quantum.NewCircuit(c.NumQubits())
	out.SetName(c.Name() + "-noisy")
	paulis := []string{"X", "Y", "Z"}
	for _, g := range c.Gates() {
		if err := out.Append(g); err != nil {
			return nil, err
		}
		p := model.OneQubitError
		if len(g.Qubits) >= 2 {
			p = model.TwoQubitError
		}
		for _, q := range g.Qubits {
			if rng.Float64() < p {
				name := paulis[rng.Intn(3)]
				if err := out.Append(quantum.Gate{Name: name, Qubits: []int{q}}); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// TrajectoryRunner averages an observable over noise trajectories.
type TrajectoryRunner struct {
	Model PauliNoiseModel
	// Trials is the number of trajectories to average (default 64).
	Trials int
	// Seed makes the ensemble reproducible.
	Seed int64
}

// AverageObservable runs the noisy ensemble through run (any backend's
// Run wrapped to return the observable of the final state) and returns
// the trajectory mean.
func (tr TrajectoryRunner) AverageObservable(
	c *quantum.Circuit,
	run func(*quantum.Circuit) (float64, error),
) (float64, error) {
	trials := tr.Trials
	if trials <= 0 {
		trials = 64
	}
	rng := rand.New(rand.NewSource(tr.Seed))
	var sum float64
	for i := 0; i < trials; i++ {
		noisy, err := SampleTrajectory(c, tr.Model, rng)
		if err != nil {
			return 0, err
		}
		v, err := run(noisy)
		if err != nil {
			return 0, fmt.Errorf("circuits: trajectory %d: %w", i, err)
		}
		sum += v
	}
	return sum / float64(trials), nil
}
