package circuits

import (
	"math"
	"testing"

	"qymera/internal/quantum"
	"qymera/internal/sim"
)

// basisPrep builds a circuit preparing |index⟩ from |0…0⟩ via X gates.
func basisPrep(n int, index uint64) *quantum.Circuit {
	c := quantum.NewCircuit(n)
	for q := 0; q < n; q++ {
		if index>>uint(q)&1 == 1 {
			c.X(q)
		}
	}
	return c
}

func TestGHZState(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		res, err := (&sim.StateVector{}).Run(GHZ(n))
		if err != nil {
			t.Fatal(err)
		}
		st := res.State
		if st.Len() != 2 {
			t.Fatalf("n=%d: support = %d, want 2", n, st.Len())
		}
		all1 := uint64(1)<<uint(n) - 1
		inv := 1 / math.Sqrt2
		if math.Abs(real(st.Amplitude(0))-inv) > 1e-12 || math.Abs(real(st.Amplitude(all1))-inv) > 1e-12 {
			t.Fatalf("n=%d: amplitudes = %v, %v", n, st.Amplitude(0), st.Amplitude(all1))
		}
	}
}

func TestEqualSuperposition(t *testing.T) {
	n := 4
	res, err := (&sim.StateVector{}).Run(EqualSuperposition(n))
	if err != nil {
		t.Fatal(err)
	}
	st := res.State
	if st.Len() != 1<<n {
		t.Fatalf("support = %d, want %d", st.Len(), 1<<n)
	}
	want := 1 / math.Sqrt(float64(int(1)<<n))
	for _, idx := range st.Indices() {
		if math.Abs(real(st.Amplitude(idx))-want) > 1e-12 {
			t.Fatalf("amp[%d] = %v, want %v", idx, st.Amplitude(idx), want)
		}
	}
}

func TestParityCheckAllInputs(t *testing.T) {
	for k := 1; k <= 4; k++ {
		for x := 0; x < 1<<k; x++ {
			bits := make([]bool, k)
			ones := 0
			for q := 0; q < k; q++ {
				bits[q] = x>>q&1 == 1
				if bits[q] {
					ones++
				}
			}
			res, err := (&sim.StateVector{}).Run(ParityCheck(bits))
			if err != nil {
				t.Fatal(err)
			}
			p := res.State.QubitProbability(k)
			want := float64(ones % 2)
			if math.Abs(p-want) > 1e-12 {
				t.Fatalf("k=%d x=%b: ancilla prob = %v, want %v", k, x, p, want)
			}
		}
	}
}

func TestParitySuperpositionEntanglement(t *testing.T) {
	k := 3
	res, err := (&sim.StateVector{}).Run(ParitySuperposition(k))
	if err != nil {
		t.Fatal(err)
	}
	st := res.State
	// Every data basis state appears once, with ancilla = its parity.
	if st.Len() != 1<<k {
		t.Fatalf("support = %d, want %d", st.Len(), 1<<k)
	}
	for _, idx := range st.Indices() {
		data := idx & ((1 << k) - 1)
		anc := idx >> uint(k) & 1
		parity := uint64(0)
		for q := 0; q < k; q++ {
			parity ^= data >> uint(q) & 1
		}
		if anc != parity {
			t.Fatalf("state %b: ancilla %d != parity %d", idx, anc, parity)
		}
	}
}

func TestQFTOfZeroIsUniform(t *testing.T) {
	n := 4
	res, err := (&sim.StateVector{}).Run(QFT(n))
	if err != nil {
		t.Fatal(err)
	}
	st := res.State
	want := 1 / math.Sqrt(float64(int(1)<<n))
	if st.Len() != 1<<n {
		t.Fatalf("support = %d", st.Len())
	}
	for _, idx := range st.Indices() {
		a := st.Amplitude(idx)
		if math.Abs(real(a)-want) > 1e-9 || math.Abs(imag(a)) > 1e-9 {
			t.Fatalf("amp[%d] = %v", idx, a)
		}
	}
}

func TestQFTOfBasisStateHasUniformMagnitudes(t *testing.T) {
	n := 3
	// Build |101⟩ then QFT: all output magnitudes must be 2^{-n/2}.
	prep := basisPrep(n, 5)
	if err := prep.Compose(QFT(n)); err != nil {
		t.Fatal(err)
	}
	res, err := (&sim.StateVector{}).Run(prep)
	if err != nil {
		t.Fatal(err)
	}
	st := res.State
	want := 1 / math.Sqrt(float64(int(1)<<n))
	for idx := uint64(0); idx < 1<<uint(n); idx++ {
		a := st.Amplitude(idx)
		mag := math.Hypot(real(a), imag(a))
		if math.Abs(mag-want) > 1e-9 {
			t.Fatalf("|amp[%d]| = %v, want %v", idx, mag, want)
		}
	}
}

func TestWState(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		res, err := (&sim.StateVector{}).Run(WState(n))
		if err != nil {
			t.Fatal(err)
		}
		st := res.State
		if st.Len() != n {
			t.Fatalf("n=%d: support = %d, want %d (one-hot states)", n, st.Len(), n)
		}
		want := 1 / math.Sqrt(float64(n))
		for _, idx := range st.Indices() {
			if idx&(idx-1) != 0 || idx == 0 {
				t.Fatalf("n=%d: non-one-hot basis state %b", n, idx)
			}
			a := st.Amplitude(idx)
			if math.Abs(math.Hypot(real(a), imag(a))-want) > 1e-9 {
				t.Fatalf("n=%d: |amp[%b]| = %v, want %v", n, idx, a, want)
			}
		}
	}
}

func TestBernsteinVaziraniRecoversSecret(t *testing.T) {
	secret := []bool{true, false, true, true}
	res, err := (&sim.StateVector{}).Run(BernsteinVazirani(secret))
	if err != nil {
		t.Fatal(err)
	}
	st := res.State
	var want uint64
	for q, b := range secret {
		if b {
			want |= uint64(1) << uint(q)
		}
	}
	// The data register must be |secret⟩ with probability 1 (ancilla in
	// |-⟩, so two basis states share the data pattern).
	total := 0.0
	for _, idx := range st.Indices() {
		data := idx & ((1 << uint(len(secret))) - 1)
		if data != want {
			t.Fatalf("unexpected data register %b (want %b)", data, want)
		}
		total += st.Probability(idx)
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("total probability = %v", total)
	}
}

func TestDeutschJozsa(t *testing.T) {
	k := 3
	// Constant oracle: data register returns to |0...0⟩.
	res, err := (&sim.StateVector{}).Run(DeutschJozsa(k, false))
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range res.State.Indices() {
		if idx&((1<<uint(k))-1) != 0 {
			t.Fatalf("constant oracle: data register nonzero in %b", idx)
		}
	}
	// Balanced oracle: data register never |0...0⟩.
	res, err = (&sim.StateVector{}).Run(DeutschJozsa(k, true))
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range res.State.Indices() {
		if idx&((1<<uint(k))-1) == 0 && res.State.Probability(idx) > 1e-9 {
			t.Fatalf("balanced oracle: data register zero has probability %v", res.State.Probability(idx))
		}
	}
}

func TestGroverAmplifiesMarked(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5} {
		marked := uint64(1)<<uint(n) - 2
		res, err := (&sim.StateVector{}).Run(Grover(n, marked))
		if err != nil {
			t.Fatal(err)
		}
		p := res.State.Probability(marked)
		// Textbook success probabilities: 1.0 (n=2), ≥0.94 otherwise.
		if p < 0.8 {
			t.Fatalf("n=%d: P(marked) = %v, want > 0.8", n, p)
		}
	}
}

func TestAnsatzShapeAndNormalization(t *testing.T) {
	params := make([]float64, 2*4*3)
	for i := range params {
		params[i] = 0.1 * float64(i+1)
	}
	c := HardwareEfficientAnsatz(4, 3, params)
	res, err := (&sim.StateVector{}).Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.State.Norm()-1) > 1e-9 {
		t.Fatalf("norm = %v", res.State.Norm())
	}
	if c.Depth() < 6 {
		t.Fatalf("depth = %d", c.Depth())
	}
}

func TestRandomSparseStaysSparse(t *testing.T) {
	c := RandomSparse(10, 200, 42)
	res, err := (&sim.Sparse{}).Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MaxIntermediateSize > 1 {
		t.Fatalf("sparse circuit grew support to %d", res.Stats.MaxIntermediateSize)
	}
}

func TestRandomDenseDensifies(t *testing.T) {
	c := RandomDense(6, 3, 42)
	res, err := (&sim.Sparse{}).Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MaxIntermediateSize < 32 {
		t.Fatalf("dense circuit support only reached %d", res.Stats.MaxIntermediateSize)
	}
}

func TestDeterministicSeeds(t *testing.T) {
	a := RandomDense(5, 4, 7)
	b := RandomDense(5, 4, 7)
	if a.String() != b.String() {
		t.Fatal("same seed must give the same circuit")
	}
	c := RandomDense(5, 4, 8)
	if a.String() == c.String() {
		t.Fatal("different seeds should give different circuits")
	}
}
