package service

import (
	"sync"
	"sync/atomic"
	"time"
)

// metrics aggregates service counters for the /metrics endpoint.
type metrics struct {
	admissionWaits atomic.Int64

	mu       sync.Mutex
	statuses map[JobStatus]int64
	backends map[string]*latencyRec
	// tenants counts terminal job statuses per tenant.
	tenants map[string]map[string]int64
}

// latencyRec accumulates per-backend run latency.
type latencyRec struct {
	count int64
	total time.Duration
	max   time.Duration
}

func newMetrics() *metrics {
	return &metrics{
		statuses: map[JobStatus]int64{},
		backends: map[string]*latencyRec{},
		tenants:  map[string]map[string]int64{},
	}
}

// observe records one finished job's backend, tenant, terminal status,
// and run duration (zero for jobs that never ran).
func (m *metrics) observe(backend, tenant string, status JobStatus, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.statuses[status]++
	tc := m.tenants[tenant]
	if tc == nil {
		tc = map[string]int64{}
		m.tenants[tenant] = tc
	}
	tc[string(status)]++
	if status != JobDone {
		return
	}
	rec := m.backends[backend]
	if rec == nil {
		rec = &latencyRec{}
		m.backends[backend] = rec
	}
	rec.count++
	rec.total += d
	if d > rec.max {
		rec.max = d
	}
}

// BackendLatency is one backend's latency summary on the wire.
type BackendLatency struct {
	Count      int64   `json:"count"`
	AvgSeconds float64 `json:"avg_seconds"`
	MaxSeconds float64 `json:"max_seconds"`
}

// snapshot copies the aggregates: terminal-status counts, per-backend
// latency, and per-tenant terminal-status counts.
func (m *metrics) snapshot() (map[string]int64, map[string]BackendLatency, map[string]map[string]int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	statuses := make(map[string]int64, len(m.statuses))
	for s, n := range m.statuses {
		statuses[string(s)] = n
	}
	backends := make(map[string]BackendLatency, len(m.backends))
	for b, rec := range m.backends {
		lat := BackendLatency{Count: rec.count, MaxSeconds: rec.max.Seconds()}
		if rec.count > 0 {
			lat.AvgSeconds = (rec.total / time.Duration(rec.count)).Seconds()
		}
		backends[b] = lat
	}
	tenants := make(map[string]map[string]int64, len(m.tenants))
	for t, counts := range m.tenants {
		cp := make(map[string]int64, len(counts))
		for s, n := range counts {
			cp[s] = n
		}
		tenants[t] = cp
	}
	return statuses, backends, tenants
}
