package service

import (
	"sync"
	"sync/atomic"
	"time"
)

// metrics aggregates service counters for the /metrics endpoint.
type metrics struct {
	admissionWaits atomic.Int64

	mu       sync.Mutex
	statuses map[JobStatus]int64
	backends map[string]*latencyRec
}

// latencyRec accumulates per-backend run latency.
type latencyRec struct {
	count int64
	total time.Duration
	max   time.Duration
}

func newMetrics() *metrics {
	return &metrics{
		statuses: map[JobStatus]int64{},
		backends: map[string]*latencyRec{},
	}
}

// observe records one finished job's backend, terminal status, and run
// duration (zero for jobs that never ran).
func (m *metrics) observe(backend string, status JobStatus, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.statuses[status]++
	if status != JobDone {
		return
	}
	rec := m.backends[backend]
	if rec == nil {
		rec = &latencyRec{}
		m.backends[backend] = rec
	}
	rec.count++
	rec.total += d
	if d > rec.max {
		rec.max = d
	}
}

// BackendLatency is one backend's latency summary on the wire.
type BackendLatency struct {
	Count      int64   `json:"count"`
	AvgSeconds float64 `json:"avg_seconds"`
	MaxSeconds float64 `json:"max_seconds"`
}

// statusCounts and latencies snapshot the aggregates.
func (m *metrics) snapshot() (map[string]int64, map[string]BackendLatency) {
	m.mu.Lock()
	defer m.mu.Unlock()
	statuses := make(map[string]int64, len(m.statuses))
	for s, n := range m.statuses {
		statuses[string(s)] = n
	}
	backends := make(map[string]BackendLatency, len(m.backends))
	for b, rec := range m.backends {
		lat := BackendLatency{Count: rec.count, MaxSeconds: rec.max.Seconds()}
		if rec.count > 0 {
			lat.AvgSeconds = (rec.total / time.Duration(rec.count)).Seconds()
		}
		backends[b] = lat
	}
	return statuses, backends
}
