package service

import (
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qymera/internal/obs"
)

// metrics aggregates service-level observability: terminal-status
// counts (global and per tenant) plus the unified obs.Registry of
// named counters and log-bucketed latency histograms behind /metrics.
// Histogram names follow a stable schema: "backend.<name>" and
// "tenant.<name>" hold terminal job run latencies, "phase.<name>"
// holds per-phase durations (queue, run, total, translate, stages,
// query, emit, joblog_fsync).
type metrics struct {
	admissionWaits atomic.Int64
	reg            *obs.Registry

	mu       sync.Mutex
	statuses map[JobStatus]int64
	// tenants counts terminal job statuses per tenant.
	tenants map[string]map[string]int64
}

func newMetrics() *metrics {
	return &metrics{
		reg:      obs.NewRegistry(),
		statuses: map[JobStatus]int64{},
		tenants:  map[string]map[string]int64{},
	}
}

// observe records one finished job's backend, tenant, terminal status,
// and run duration. EVERY terminal status records its duration — done,
// failed, and canceled alike — so tenant and backend p99s include the
// failures (a job that burned 30s before failing is latency the tenant
// experienced).
func (m *metrics) observe(backend, tenant string, status JobStatus, d time.Duration) {
	m.mu.Lock()
	m.statuses[status]++
	tc := m.tenants[tenant]
	if tc == nil {
		tc = map[string]int64{}
		m.tenants[tenant] = tc
	}
	tc[string(status)]++
	m.mu.Unlock()
	m.reg.Observe("backend."+backend, d)
	m.reg.Observe("tenant."+tenant, d)
}

// observePhase records one phase duration ("queue", "run", "total",
// "translate", ...) in the per-phase histograms.
func (m *metrics) observePhase(phase string, d time.Duration) {
	m.reg.Observe("phase."+phase, d)
}

// BackendLatency is one latency histogram's summary on the wire
// (per backend, per tenant, and per phase).
type BackendLatency struct {
	Count      int64   `json:"count"`
	AvgSeconds float64 `json:"avg_seconds"`
	MaxSeconds float64 `json:"max_seconds"`
	P50Seconds float64 `json:"p50_seconds"`
	P95Seconds float64 `json:"p95_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
}

func latencyJSON(s obs.HistogramSnapshot) BackendLatency {
	return BackendLatency{
		Count:      s.Count,
		AvgSeconds: s.AvgSeconds,
		MaxSeconds: s.MaxSeconds,
		P50Seconds: s.P50Seconds,
		P95Seconds: s.P95Seconds,
		P99Seconds: s.P99Seconds,
	}
}

// snapshot copies the aggregates: terminal-status counts, per-backend
// latency, per-tenant terminal-status counts, per-tenant latency, and
// per-phase latency — the latter three straight from the registry's
// histograms.
func (m *metrics) snapshot() (statuses map[string]int64, backends map[string]BackendLatency, tenantJobs map[string]map[string]int64, tenantLat, phases map[string]BackendLatency) {
	m.mu.Lock()
	statuses = make(map[string]int64, len(m.statuses))
	for s, n := range m.statuses {
		statuses[string(s)] = n
	}
	tenantJobs = make(map[string]map[string]int64, len(m.tenants))
	for t, counts := range m.tenants {
		cp := make(map[string]int64, len(counts))
		for s, n := range counts {
			cp[s] = n
		}
		tenantJobs[t] = cp
	}
	m.mu.Unlock()
	backends = map[string]BackendLatency{}
	tenantLat = map[string]BackendLatency{}
	phases = map[string]BackendLatency{}
	for name, hs := range m.reg.Histograms() {
		switch {
		case strings.HasPrefix(name, "backend."):
			backends[strings.TrimPrefix(name, "backend.")] = latencyJSON(hs)
		case strings.HasPrefix(name, "tenant."):
			tenantLat[strings.TrimPrefix(name, "tenant.")] = latencyJSON(hs)
		case strings.HasPrefix(name, "phase."):
			phases[strings.TrimPrefix(name, "phase.")] = latencyJSON(hs)
		}
	}
	return statuses, backends, tenantJobs, tenantLat, phases
}
