package service

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"qymera/internal/circuitio"
	"qymera/internal/core"
	"qymera/internal/quantum"
	"qymera/internal/sim"
)

// Request is the JSON body of POST /v1/simulate and POST /v1/jobs.
type Request struct {
	// Circuit is the circuit document in the circuitio JSON format:
	// {"num_qubits": n, "gates": [{"name": "H", "qubits": [0]}, ...]}.
	Circuit json.RawMessage `json:"circuit"`
	// Backend selects the simulation method: sql (default), sql-chain,
	// statevec/statevector/sv, sparse, mps, or dd.
	Backend string `json:"backend,omitempty"`
	// Tenant attributes the job to a tenant for quota accounting and
	// fair scheduling. The X-Qymera-Tenant request header takes
	// precedence over this field; empty means the "default" tenant.
	Tenant string `json:"tenant,omitempty"`
	// Options tune the selected backend.
	Options RequestOptions `json:"options,omitempty"`

	// decodeDur is how long the HTTP layer spent reading and decoding
	// this request's body (set by decodeRequest; zero for in-process
	// submissions). Unexported so it never reaches the durable job log.
	decodeDur time.Duration
}

// RequestOptions are the per-request backend knobs.
type RequestOptions struct {
	// Mode (sql backends): "single-query" (default) or
	// "materialized-chain".
	Mode string `json:"mode,omitempty"`
	// Fusion (sql backends): "off" (default), "same-qubits", "subset".
	Fusion string `json:"fusion,omitempty"`
	// Encoding (sql backends): "bitwise" (default) or "arithmetic".
	Encoding string `json:"encoding,omitempty"`
	// PruneEps: amplitude pruning threshold (0 = backend default,
	// negative disables pruning).
	PruneEps float64 `json:"prune_eps,omitempty"`
	// Parallelism (sql backends): per-query morsel workers; overrides
	// the server default when positive.
	Parallelism int `json:"parallelism,omitempty"`
	// Layout (sql backends): "columnar" (default) or "row".
	Layout string `json:"layout,omitempty"`
	// Optimizer (sql backends): "on" (default) or "off" — toggles the
	// engine's cost-based query optimizer. Amplitudes are bit-identical
	// either way; only plan quality changes.
	Optimizer string `json:"optimizer,omitempty"`
	// Kernels (sql backends): "on" (default) or "off" — toggles the
	// engine's compiled gate-stage kernel tier. Amplitudes are
	// bit-identical either way; only throughput changes.
	Kernels string `json:"kernels,omitempty"`
	// ChainFusion (sql backends): "on" (default) or "off" — toggles
	// whole-circuit chain fusion (fused CTAS statements + multi-stage
	// chain kernels). Distinct from Fusion, which selects the
	// translation's gate-matrix fusion level. Amplitudes are
	// bit-identical either way; only throughput changes.
	ChainFusion string `json:"chain_fusion,omitempty"`
	// Encodings (sql backends): "on" (default) or "off" — toggles the
	// engine's sparsity-first storage tier (compressed column encodings
	// + zone-map skip-scan). Distinct from Encoding, which selects the
	// circuit translation's amplitude-index encoding. Amplitudes are
	// bit-identical either way; only throughput and memory change.
	Encodings string `json:"encodings,omitempty"`
	// MaxBond (mps): bond-dimension cap, 0 = exact.
	MaxBond int `json:"max_bond,omitempty"`
	// Trace overrides the server's tracing default for this job: "off"
	// disables the span trace, "sampled" (or "on") times one operator
	// batch in obs.SampleDefault, "full" times every batch. Amplitudes
	// are bit-identical regardless.
	Trace string `json:"trace,omitempty"`
	// EstimatedBytes declares the job's expected peak engine memory for
	// admission control: the job is held in the queue while the sum of
	// running jobs' estimates plus this one would exceed the server's
	// shared memory budget, and rejected outright when it could never
	// fit. Zero admits immediately.
	EstimatedBytes int64 `json:"estimated_bytes,omitempty"`
}

// parsedRequest is a validated Request.
type parsedRequest struct {
	circuit  *quantum.Circuit
	backend  string // canonical backend name
	tenant   string // canonical tenant name ("default" when unset)
	options  RequestOptions
	estimate int64
}

// defaultTenant is the tenant jobs belong to when none is named.
const defaultTenant = "default"

// maxTenantLen bounds tenant names on the wire.
const maxTenantLen = 64

// canonicalTenant validates and canonicalizes a tenant name: empty
// means defaultTenant; otherwise [A-Za-z0-9._-]{1,64}.
func canonicalTenant(name string) (string, error) {
	name = strings.TrimSpace(name)
	if name == "" {
		return defaultTenant, nil
	}
	if len(name) > maxTenantLen {
		return "", fmt.Errorf("tenant name longer than %d bytes", maxTenantLen)
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return "", fmt.Errorf("tenant name %q has invalid character %q (want [A-Za-z0-9._-])", name, r)
		}
	}
	return name, nil
}

// canonicalBackends maps accepted backend spellings to canonical names.
var canonicalBackends = map[string]string{
	"":            "sql",
	"sql":         "sql",
	"sql-chain":   "sql-chain",
	"statevec":    "statevector",
	"statevector": "statevector",
	"sv":          "statevector",
	"sparse":      "sparse",
	"mps":         "mps",
	"dd":          "dd",
}

// BackendNames lists the canonical backend names the service accepts.
func BackendNames() []string {
	return []string{"sql", "sql-chain", "statevector", "sparse", "mps", "dd"}
}

func parseRequest(req Request) (*parsedRequest, error) {
	if len(req.Circuit) == 0 {
		return nil, fmt.Errorf("request has no circuit")
	}
	c, err := circuitio.UnmarshalJSON(req.Circuit)
	if err != nil {
		return nil, err
	}
	backend, ok := canonicalBackends[strings.ToLower(req.Backend)]
	if !ok {
		return nil, fmt.Errorf("unknown backend %q (have %s)", req.Backend, strings.Join(BackendNames(), ", "))
	}
	if _, err := sqlOptions(req.Options); err != nil {
		return nil, err
	}
	if req.Options.EstimatedBytes < 0 {
		return nil, fmt.Errorf("estimated_bytes must be >= 0")
	}
	tenant, err := canonicalTenant(req.Tenant)
	if err != nil {
		return nil, err
	}
	return &parsedRequest{
		circuit:  c,
		backend:  backend,
		tenant:   tenant,
		options:  req.Options,
		estimate: req.Options.EstimatedBytes,
	}, nil
}

// sqlPlanOptions are the parsed SQL-backend translation options.
type sqlPlanOptions struct {
	mode     core.Mode
	fusion   core.FusionLevel
	encoding core.Encoding
}

// sqlOptions lowers the string-typed request options onto core's enums.
func sqlOptions(o RequestOptions) (so sqlPlanOptions, err error) {
	switch strings.ToLower(o.Mode) {
	case "", "single-query":
	case "materialized-chain":
		so.mode = core.MaterializedChain
	default:
		return so, fmt.Errorf("unknown mode %q (have single-query, materialized-chain)", o.Mode)
	}
	switch strings.ToLower(o.Fusion) {
	case "", "off":
	case "same-qubits":
		so.fusion = core.FusionSameQubits
	case "subset":
		so.fusion = core.FusionSubset
	default:
		return so, fmt.Errorf("unknown fusion %q (have off, same-qubits, subset)", o.Fusion)
	}
	switch strings.ToLower(o.Encoding) {
	case "", "bitwise":
	case "arithmetic":
		so.encoding = core.EncodingArithmetic
	default:
		return so, fmt.Errorf("unknown encoding %q (have bitwise, arithmetic)", o.Encoding)
	}
	switch strings.ToLower(o.Layout) {
	case "", "columnar", "row":
	default:
		return so, fmt.Errorf("unknown layout %q (have columnar, row)", o.Layout)
	}
	switch strings.ToLower(o.Optimizer) {
	case "", "on", "off":
	default:
		return so, fmt.Errorf("unknown optimizer %q (have on, off)", o.Optimizer)
	}
	switch strings.ToLower(o.Kernels) {
	case "", "on", "off":
	default:
		return so, fmt.Errorf("unknown kernels %q (have on, off)", o.Kernels)
	}
	switch strings.ToLower(o.ChainFusion) {
	case "", "on", "off":
	default:
		return so, fmt.Errorf("unknown chain_fusion %q (have on, off)", o.ChainFusion)
	}
	switch strings.ToLower(o.Encodings) {
	case "", "on", "off":
	default:
		return so, fmt.Errorf("unknown encodings %q (have on, off)", o.Encodings)
	}
	switch strings.ToLower(o.Trace) {
	case "", "on", "off", "sampled", "full":
	default:
		return so, fmt.Errorf("unknown trace %q (have on, off, sampled, full)", o.Trace)
	}
	return so, nil
}

// newBackend constructs the simulation backend for one job. SQL
// backends share the manager's budget and plan cache.
func (m *Manager) newBackend(p *parsedRequest) (sim.Backend, error) {
	switch p.backend {
	case "sql", "sql-chain":
		so, err := sqlOptions(p.options)
		if err != nil {
			return nil, err
		}
		if p.backend == "sql-chain" {
			so.mode = core.MaterializedChain
		}
		parallelism := m.cfg.Parallelism
		if p.options.Parallelism > 0 {
			parallelism = p.options.Parallelism
		}
		return &sim.SQL{
			Mode:        so.mode,
			Fusion:      so.fusion,
			Encoding:    so.encoding,
			PruneEps:    p.options.PruneEps,
			SpillDir:    m.cfg.SpillDir,
			Parallelism: parallelism,
			Layout:      strings.ToLower(p.options.Layout),
			Optimizer:   strings.ToLower(p.options.Optimizer),
			Kernels:     strings.ToLower(p.options.Kernels),
			ChainFusion: strings.ToLower(p.options.ChainFusion),
			Encodings:   strings.ToLower(p.options.Encodings),
			Budget:      m.budget,
			Cache:       m.cache,
		}, nil
	case "statevector":
		return &sim.StateVector{}, nil
	case "sparse":
		return &sim.Sparse{PruneEps: p.options.PruneEps}, nil
	case "mps":
		return &sim.MPS{MaxBond: p.options.MaxBond}, nil
	case "dd":
		return &sim.DD{}, nil
	}
	return nil, fmt.Errorf("unknown backend %q", p.backend)
}

// Amplitude is one nonzero basis-state amplitude of a result, the unit
// of the NDJSON stream.
type Amplitude struct {
	S uint64  `json:"s"`
	R float64 `json:"r"`
	I float64 `json:"i"`
}

// StatsJSON mirrors sim.Stats for the wire.
type StatsJSON struct {
	Backend     string  `json:"backend"`
	WallSeconds float64 `json:"wall_seconds"`
	GateCount   int     `json:"gate_count"`
	// PeakBytes: for SQL backends served by qymerad this is the
	// SHARED budget pool's high-water mark (all jobs), not the
	// individual run's peak — see sim.SQL.Budget.
	PeakBytes           int64  `json:"peak_bytes"`
	FinalNonzeros       int    `json:"final_nonzeros"`
	MaxIntermediateSize int64  `json:"max_intermediate_size"`
	SpilledRows         int64  `json:"spilled_rows,omitempty"`
	Extra               string `json:"extra,omitempty"`
}

// ResultJSON is a completed simulation on the wire. Amplitudes are
// sorted by basis index; floats round-trip exactly through JSON
// (encoding/json emits shortest-form float64).
type ResultJSON struct {
	NumQubits  int         `json:"num_qubits"`
	Amplitudes []Amplitude `json:"amplitudes"`
	Stats      StatsJSON   `json:"stats"`
}

func statsJSON(st sim.Stats) StatsJSON {
	return StatsJSON{
		Backend:             st.Backend,
		WallSeconds:         st.WallTime.Seconds(),
		GateCount:           st.GateCount,
		PeakBytes:           st.PeakBytes,
		FinalNonzeros:       st.FinalNonzeros,
		MaxIntermediateSize: st.MaxIntermediateSize,
		SpilledRows:         st.SpilledRows,
		Extra:               st.Extra,
	}
}

func resultJSON(res *sim.Result) *ResultJSON {
	out := &ResultJSON{
		NumQubits:  res.State.NumQubits(),
		Amplitudes: stateAmplitudes(res.State),
		Stats:      statsJSON(res.Stats),
	}
	return out
}

// stateAmplitudes lists a state's nonzero amplitudes sorted by index
// (State.Indices returns ascending order).
func stateAmplitudes(st *quantum.State) []Amplitude {
	idx := st.Indices()
	out := make([]Amplitude, len(idx))
	for i, s := range idx {
		a := st.Amplitude(s)
		out[i] = Amplitude{S: s, R: real(a), I: imag(a)}
	}
	return out
}

// JobJSON is one job's status on the wire.
type JobJSON struct {
	ID        string `json:"id"`
	Status    string `json:"status"`
	Tenant    string `json:"tenant,omitempty"`
	Backend   string `json:"backend"`
	NumQubits int    `json:"num_qubits"`
	Gates     int    `json:"gates"`
	Error     string `json:"error,omitempty"`

	SubmittedAt  time.Time `json:"submitted_at"`
	QueueSeconds float64   `json:"queue_seconds"`
	RunSeconds   float64   `json:"run_seconds,omitempty"`

	Result *ResultJSON `json:"result,omitempty"`
}
