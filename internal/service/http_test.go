package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"qymera/internal/circuits"
	"qymera/internal/sim"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestHTTPSimulateSync(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	c := circuits.GHZ(8)
	want, err := (&sim.SQL{}).Run(c)
	if err != nil {
		t.Fatal(err)
	}

	resp := postJSON(t, ts.URL+"/v1/simulate", Request{Circuit: circuitDoc(t, c)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	res := decodeBody[ResultJSON](t, resp)
	if res.NumQubits != 8 {
		t.Fatalf("num_qubits %d", res.NumQubits)
	}
	statesEqualBits(t, want.State, res.Amplitudes)
	if res.Stats.Backend != "sql" {
		t.Fatalf("backend %q", res.Stats.Backend)
	}
}

// TestHTTPSimulateNDJSON checks the streaming framing: header line,
// amplitude lines sorted by s, stats trailer — and that the streamed
// amplitudes are bit-identical to the direct run.
func TestHTTPSimulateNDJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	c := circuits.QFT(7) // dense: 128 amplitude lines
	want, err := (&sim.SQL{}).Run(c)
	if err != nil {
		t.Fatal(err)
	}

	resp := postJSON(t, ts.URL+"/v1/simulate?stream=ndjson", Request{Circuit: circuitDoc(t, c)})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	if !sc.Scan() {
		t.Fatal("no header line")
	}
	var hdr struct {
		NumQubits  int    `json:"num_qubits"`
		Backend    string `json:"backend"`
		Amplitudes int    `json:"amplitudes"`
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatal(err)
	}
	if hdr.NumQubits != 7 || hdr.Amplitudes != want.State.Len() {
		t.Fatalf("header %+v", hdr)
	}

	var amps []Amplitude
	var sawStats bool
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.Contains(line, []byte(`"stats"`)) {
			var tr struct {
				Stats StatsJSON `json:"stats"`
			}
			if err := json.Unmarshal(line, &tr); err != nil {
				t.Fatal(err)
			}
			if tr.Stats.Backend != "sql" {
				t.Fatalf("trailer stats %+v", tr.Stats)
			}
			sawStats = true
			continue
		}
		var a Amplitude
		if err := json.Unmarshal(line, &a); err != nil {
			t.Fatal(err)
		}
		if n := len(amps); n > 0 && amps[n-1].S >= a.S {
			t.Fatalf("amplitudes not sorted: %d then %d", amps[n-1].S, a.S)
		}
		amps = append(amps, a)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawStats {
		t.Fatal("no stats trailer")
	}
	statesEqualBits(t, want.State, amps)
}

func TestHTTPJobLifecycleAndMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	// Submit async.
	resp := postJSON(t, ts.URL+"/v1/jobs", Request{Circuit: circuitDoc(t, circuits.GHZ(6)), Backend: "sparse"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	job := decodeBody[JobJSON](t, resp)
	if job.ID == "" || job.Backend != "sparse" {
		t.Fatalf("job %+v", job)
	}

	// Poll until done.
	var final JobJSON
	for i := 0; i < 1000; i++ {
		r, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s", ts.URL, job.ID))
		if err != nil {
			t.Fatal(err)
		}
		final = decodeBody[JobJSON](t, r)
		if JobStatus(final.Status).terminal() {
			break
		}
	}
	if final.Status != "done" || final.Result == nil {
		t.Fatalf("final %+v", final)
	}

	// List.
	r, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	list := decodeBody[struct {
		Jobs []JobJSON `json:"jobs"`
	}](t, r)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != job.ID {
		t.Fatalf("list %+v", list)
	}

	// A second identical circuit should hit the plan cache only for sql
	// backends; run one to move cache counters.
	postJSON(t, ts.URL+"/v1/simulate", Request{Circuit: circuitDoc(t, circuits.GHZ(6))}).Body.Close()
	postJSON(t, ts.URL+"/v1/simulate", Request{Circuit: circuitDoc(t, circuits.GHZ(6))}).Body.Close()

	// Metrics.
	r, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := decodeBody[MetricsJSON](t, r)
	if metrics.Workers != 1 || metrics.QueueCapacity != 64 {
		t.Fatalf("metrics %+v", metrics)
	}
	if metrics.Jobs["done"] < 3 {
		t.Fatalf("done count %d", metrics.Jobs["done"])
	}
	if metrics.PlanCache.Hits < 1 {
		t.Fatalf("plan cache hits %+v", metrics.PlanCache)
	}
	if lat, ok := metrics.Backends["sparse"]; !ok || lat.Count != 1 {
		t.Fatalf("sparse latency %+v", metrics.Backends)
	}
	if lat, ok := metrics.Backends["sql"]; !ok || lat.Count != 2 {
		t.Fatalf("sql latency %+v", metrics.Backends)
	}
	// The SQL runs above went through the cost-based optimizer; its
	// counters must be visible on /metrics.
	if metrics.Optimizer["plans_optimized"] < 1 {
		t.Fatalf("optimizer counters missing: %+v", metrics.Optimizer)
	}

	// Healthz.
	r, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health := decodeBody[HealthJSON](t, r)
	if health.Status != "ok" || len(health.Backends) != 6 {
		t.Fatalf("health %+v", health)
	}
	_ = s
}

func TestHTTPCancelJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp := postJSON(t, ts.URL+"/v1/jobs", Request{Circuit: circuitDoc(t, circuits.ParitySuperposition(16))})
	job := decodeBody[JobJSON](t, resp)

	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/jobs/%s", ts.URL, job.ID), nil)
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", r.StatusCode)
	}
	r.Body.Close()

	var final JobJSON
	for i := 0; i < 1000; i++ {
		rr, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s", ts.URL, job.ID))
		if err != nil {
			t.Fatal(err)
		}
		final = decodeBody[JobJSON](t, rr)
		if JobStatus(final.Status).terminal() {
			break
		}
	}
	if final.Status != "cancelled" && final.Status != "done" {
		t.Fatalf("final status %q", final.Status)
	}
}

func TestHTTPErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp := postJSON(t, ts.URL+"/v1/simulate", Request{Circuit: json.RawMessage(`{}`)})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad circuit: status %d", resp.StatusCode)
	}
	body := decodeBody[errorJSON](t, resp)
	if !strings.Contains(body.Error, "num_qubits") {
		t.Fatalf("error %q", body.Error)
	}

	r, err := http.Get(ts.URL + "/v1/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d", r.StatusCode)
	}
	r.Body.Close()
}
