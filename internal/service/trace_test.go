package service

import (
	"context"
	"encoding/json"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"qymera/internal/circuits"
	"qymera/internal/obs"
)

// waitDone blocks until the job is terminal.
func waitDone(t *testing.T, m *Manager, id string) *Job {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	j, err := m.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// spanNames flattens a snapshot into its depth-first span names.
func spanNames(sp obs.SpanJSON) []string {
	var out []string
	sp.Walk(func(s obs.SpanJSON) { out = append(out, s.Name) })
	return out
}

// TestJobTraceCoversLifecycle runs one traced job and asserts the span
// tree covers the whole pipeline: queue wait, dispatch-to-finish run,
// translation, per-stage execution, the final query, and the amplitude
// emit — with the plan-cache tier and row counters attached.
func TestJobTraceCoversLifecycle(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close()
	j, err := m.Submit(Request{Circuit: circuitDoc(t, circuits.GHZ(6))})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, j.ID)

	snap, status, ok := m.JobTrace(j.ID)
	if !ok {
		t.Fatal("JobTrace reported no trace for a traced job")
	}
	if status != JobDone {
		t.Fatalf("status = %s, want done", status)
	}
	names := map[string]bool{}
	for _, n := range spanNames(snap) {
		names[n] = true
	}
	for _, want := range []string{"queue", "run", "translate", "stages", "query", "emit"} {
		if !names[want] {
			t.Errorf("trace is missing a %q span (have %v)", want, spanNames(snap))
		}
	}
	var unfinished []string
	snap.Walk(func(s obs.SpanJSON) {
		if s.Unfinished {
			unfinished = append(unfinished, s.Name)
		}
	})
	if len(unfinished) > 0 {
		t.Errorf("finished job left spans open: %v", unfinished)
	}
	// The translate span carries the plan-cache tier (a cold cache
	// misses) and the stage count.
	var translate *obs.SpanJSON
	snap.Walk(func(s obs.SpanJSON) {
		if s.Name == "translate" {
			c := s
			translate = &c
		}
	})
	if translate.Counters["plan_miss"] != 1 {
		t.Errorf("translate counters = %v, want plan_miss=1", translate.Counters)
	}
	if translate.Counters["stages"] == 0 {
		t.Errorf("translate span reports no stages: %v", translate.Counters)
	}
}

// TestJobTraceEndpoint exercises GET /v1/jobs/{id}/trace in both
// formats: the JSON span tree and Chrome trace_event JSON (which must
// carry the fields chrome://tracing requires on every event).
func TestJobTraceEndpoint(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	m := s.Manager()
	j, err := m.Submit(Request{Circuit: circuitDoc(t, circuits.GHZ(5))})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, j.ID)

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/jobs/"+j.ID+"/trace", nil))
	if rec.Code != 200 {
		t.Fatalf("GET trace: HTTP %d: %s", rec.Code, rec.Body)
	}
	var tr TraceJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.JobID != j.ID || tr.Status != "done" || tr.Trace.Name != j.ID {
		t.Fatalf("trace envelope = %+v", tr)
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/jobs/"+j.ID+"/trace?format=chrome", nil))
	if rec.Code != 200 {
		t.Fatalf("GET chrome trace: HTTP %d", rec.Code)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
	for _, ev := range doc.TraceEvents {
		for _, field := range []string{"name", "ph", "ts", "dur", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("chrome event %v is missing required field %q", ev, field)
			}
		}
		if ev["ph"] != "X" {
			t.Fatalf("chrome event %v: ph = %v, want X", ev, ev["ph"])
		}
	}

	// Unknown jobs and untraced jobs 404.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/jobs/nope/trace", nil))
	if rec.Code != 404 {
		t.Fatalf("GET trace for unknown job: HTTP %d, want 404", rec.Code)
	}
	off, err := m.Submit(Request{Circuit: circuitDoc(t, circuits.GHZ(3)), Options: RequestOptions{Trace: "off"}})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, off.ID)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/jobs/"+off.ID+"/trace", nil))
	if rec.Code != 404 {
		t.Fatalf("GET trace for untraced job: HTTP %d, want 404", rec.Code)
	}
}

// TestTraceShapeDeterministic asserts the span-tree SHAPE (names and
// nesting, ignoring timings) is identical across worker counts and
// engine parallelism — the structural-tracing contract: operator spans
// derive from the plan, never from morsel scheduling.
func TestTraceShapeDeterministic(t *testing.T) {
	shape := func(workers, parallelism int) string {
		m := NewManager(Config{Workers: workers, Parallelism: parallelism})
		defer m.Close()
		j, err := m.Submit(Request{Circuit: circuitDoc(t, circuits.QFT(6))})
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, m, j.ID)
		snap, _, ok := m.JobTrace(j.ID)
		if !ok {
			t.Fatal("no trace")
		}
		// The root is named after the job id; normalize it so shapes from
		// different managers compare equal.
		snap.Name = "job"
		return snap.Shape()
	}
	base := shape(1, 1)
	for _, cfg := range [][2]int{{1, 4}, {4, 1}, {4, 4}} {
		if got := shape(cfg[0], cfg[1]); got != base {
			t.Errorf("workers=%d parallelism=%d shape differs:\n got %s\nwant %s", cfg[0], cfg[1], got, base)
		}
	}
}

// TestTraceBitIdenticalAmplitudes asserts tracing never perturbs
// results: amplitudes are bitwise identical with tracing off, sampled,
// and full.
func TestTraceBitIdenticalAmplitudes(t *testing.T) {
	doc := circuitDoc(t, circuits.QFT(7))
	amps := func(trace string) []Amplitude {
		m := NewManager(Config{Workers: 1, Tracing: trace})
		defer m.Close()
		res, err := m.RunSync(context.Background(), Request{Circuit: doc})
		if err != nil {
			t.Fatal(err)
		}
		return stateAmplitudes(res.State)
	}
	want := amps("off")
	for _, mode := range []string{"sampled", "full"} {
		got := amps(mode)
		if len(got) != len(want) {
			t.Fatalf("tracing %s: %d amplitudes, want %d", mode, len(got), len(want))
		}
		for i := range want {
			if want[i].S != got[i].S ||
				math.Float64bits(want[i].R) != math.Float64bits(got[i].R) ||
				math.Float64bits(want[i].I) != math.Float64bits(got[i].I) {
				t.Fatalf("tracing %s: amplitude %d differs: %+v vs %+v", mode, i, want[i], got[i])
			}
		}
	}
}

// TestTraceConcurrentCollection hammers JobTrace while jobs run — the
// race detector guards the snapshot path against the span-mutating
// scheduler, engine, and finishJob.
func TestTraceConcurrentCollection(t *testing.T) {
	m := NewManager(Config{Workers: 2})
	defer m.Close()
	const jobs = 4
	ids := make([]string, jobs)
	for i := range ids {
		j, err := m.Submit(Request{Circuit: circuitDoc(t, circuits.QFT(6))})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = j.ID
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, id := range ids {
					if snap, _, ok := m.JobTrace(id); ok {
						_ = snap.Shape() // touch the whole tree
					}
				}
			}
		}()
	}
	for _, id := range ids {
		waitDone(t, m, id)
	}
	close(stop)
	wg.Wait()
	for _, id := range ids {
		snap, _, ok := m.JobTrace(id)
		if !ok || len(snap.Children) == 0 {
			t.Fatalf("job %s: trace missing or empty after concurrent collection", id)
		}
	}
}

// TestMetricsRecordFailedAndCancelledJobs is the regression test for
// latency silently dropped on non-done jobs: every terminal status —
// cancelled included — must land in the backend, tenant, and phase
// histograms.
func TestMetricsRecordFailedAndCancelledJobs(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	m := s.Manager()

	// One done job, then one job cancelled while queued behind it... the
	// single worker guarantees ordering.
	blocker, err := m.Submit(Request{Circuit: circuitDoc(t, circuits.QFT(7)), Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	victim, err := m.Submit(Request{Circuit: circuitDoc(t, circuits.QFT(7)), Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(victim.ID); err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, blocker.ID)
	waitDone(t, m, victim.ID)

	mt := s.Metrics()
	if got := mt.Backends["sql"].Count; got != 2 {
		t.Errorf("backend sql histogram count = %d, want 2 (done + cancelled)", got)
	}
	if got := mt.Tenants["acme"].Latency.Count; got != 2 {
		t.Errorf("tenant acme latency count = %d, want 2", got)
	}
	if got := mt.Phases["total"].Count; got != 2 {
		t.Errorf("phase total count = %d, want 2", got)
	}
	if mt.Phases["queue"].Count != 2 {
		t.Errorf("phase queue count = %d, want 2", mt.Phases["queue"].Count)
	}
	// Only the job that actually ran lands in the run phase.
	if mt.Phases["run"].Count != 1 {
		t.Errorf("phase run count = %d, want 1", mt.Phases["run"].Count)
	}
	if mt.Backends["sql"].P50Seconds < 0 || mt.Backends["sql"].P99Seconds < mt.Backends["sql"].P50Seconds {
		t.Errorf("backend percentiles inconsistent: %+v", mt.Backends["sql"])
	}
}

// TestSlowQueryLog asserts jobs over the threshold land in
// DataDir/slow_queries.ndjson with their full trace.
func TestSlowQueryLog(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(Config{Workers: 1, DataDir: dir, SlowQueryMillis: 1})
	j, err := m.Submit(Request{Circuit: circuitDoc(t, circuits.QFT(7))})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, j.ID)
	m.Close()

	raw, err := os.ReadFile(filepath.Join(dir, slowLogName))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 1 {
		t.Fatalf("slow log has %d lines, want 1", len(lines))
	}
	var rec slowQueryRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.JobID != j.ID || rec.Status != "done" || rec.TotalSeconds <= 0 {
		t.Fatalf("slow record = %+v", rec)
	}
	if rec.Trace == nil || len(rec.Trace.Children) == 0 {
		t.Fatal("slow record carries no trace")
	}
}
