package service

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"qymera/internal/circuits"
	"qymera/internal/sim"
)

// TestQymeradBinarySmoke is the end-to-end smoke CI runs: build the
// real qymerad binary, start it, POST a GHZ-8 circuit over HTTP, and
// assert the amplitudes are bit-identical to a direct in-process
// NewSQLBackend-style run of the same circuit.
func TestQymeradBinarySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping binary smoke")
	}
	bin := filepath.Join(t.TempDir(), "qymerad")
	build := exec.Command("go", "build", "-o", bin, "qymera/cmd/qymerad")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building qymerad: %v\n%s", err, out)
	}

	// Pick a free port, then hand it to the server.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	srv := exec.Command(bin, "-addr", addr, "-workers", "2")
	var logs bytes.Buffer
	srv.Stdout, srv.Stderr = &logs, &logs
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()

	base := "http://" + addr
	waitHealthy(t, base, &logs)

	// POST the GHZ-8 circuit.
	c := circuits.GHZ(8)
	body, err := json.Marshal(Request{Circuit: circuitDoc(t, c)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/simulate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate status %d\nserver logs:\n%s", resp.StatusCode, logs.String())
	}
	res := decodeBody[ResultJSON](t, resp)

	// Direct in-process run of the same circuit on the SQL backend.
	want, err := (&sim.SQL{}).Run(c)
	if err != nil {
		t.Fatal(err)
	}
	statesEqualBits(t, want.State, res.Amplitudes)

	// The server's metrics must be live too.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := decodeBody[MetricsJSON](t, mresp)
	if metrics.Jobs["done"] != 1 {
		t.Fatalf("metrics after one request: %+v", metrics)
	}
}

func waitHealthy(t *testing.T, base string, logs *bytes.Buffer) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never became healthy: %v\nserver logs:\n%s", err, logs.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
}
