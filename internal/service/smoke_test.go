package service

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"qymera/internal/circuits"
	"qymera/internal/quantum"
	"qymera/internal/sim"
)

// TestQymeradBinarySmoke is the end-to-end smoke CI runs: build the
// real qymerad binary, start it, POST a GHZ-8 circuit over HTTP, and
// assert the amplitudes are bit-identical to a direct in-process
// NewSQLBackend-style run of the same circuit.
func TestQymeradBinarySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping binary smoke")
	}
	bin := filepath.Join(t.TempDir(), "qymerad")
	build := exec.Command("go", "build", "-o", bin, "qymera/cmd/qymerad")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building qymerad: %v\n%s", err, out)
	}

	// Pick a free port, then hand it to the server.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	srv := exec.Command(bin, "-addr", addr, "-workers", "2")
	var logs bytes.Buffer
	srv.Stdout, srv.Stderr = &logs, &logs
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()

	base := "http://" + addr
	waitHealthy(t, base, &logs)

	// POST the GHZ-8 circuit.
	c := circuits.GHZ(8)
	body, err := json.Marshal(Request{Circuit: circuitDoc(t, c)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/simulate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate status %d\nserver logs:\n%s", resp.StatusCode, logs.String())
	}
	res := decodeBody[ResultJSON](t, resp)

	// Direct in-process run of the same circuit on the SQL backend.
	want, err := (&sim.SQL{}).Run(c)
	if err != nil {
		t.Fatal(err)
	}
	statesEqualBits(t, want.State, res.Amplitudes)

	// The server's metrics must be live too.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := decodeBody[MetricsJSON](t, mresp)
	if metrics.Jobs["done"] != 1 {
		t.Fatalf("metrics after one request: %+v", metrics)
	}
}

// TestQymeradRestartReplay is the crash-recovery smoke: a real qymerad
// with -data-dir is SIGKILLed with one job done, one running, and two
// queued; a second process on the same data dir (with a torn partial
// frame appended to the log, as a crash mid-append would leave) must
// keep the done job queryable, re-run the interrupted ones, count the
// torn tail — and serve amplitudes bit-identical to uninterrupted
// in-process runs for every job.
func TestQymeradRestartReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping binary restart replay")
	}
	bin := filepath.Join(t.TempDir(), "qymerad")
	build := exec.Command("go", "build", "-o", bin, "qymera/cmd/qymerad")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building qymerad: %v\n%s", err, out)
	}
	dataDir := t.TempDir()

	freePort := func() string {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		return l.Addr().String()
	}
	startServer := func(addr string) (*exec.Cmd, *bytes.Buffer) {
		srv := exec.Command(bin, "-addr", addr, "-workers", "1", "-data-dir", dataDir)
		var logs bytes.Buffer
		srv.Stdout, srv.Stderr = &logs, &logs
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			srv.Process.Kill()
			srv.Wait()
		})
		waitHealthy(t, "http://"+addr, &logs)
		return srv, &logs
	}
	submit := func(base string, c *quantum.Circuit) string {
		body, err := json.Marshal(Request{Circuit: circuitDoc(t, c)})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit status %d", resp.StatusCode)
		}
		return decodeBody[JobJSON](t, resp).ID
	}
	getJob := func(base, id string) JobJSON {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("get job %s: status %d", id, resp.StatusCode)
		}
		return decodeBody[JobJSON](t, resp)
	}
	waitStatus := func(base, id string, want JobStatus) JobJSON {
		deadline := time.Now().Add(120 * time.Second)
		for {
			j := getJob(base, id)
			if JobStatus(j.Status) == want {
				return j
			}
			if JobStatus(j.Status).terminal() || time.Now().After(deadline) {
				t.Fatalf("job %s: status %s (error %q), want %s", id, j.Status, j.Error, want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	workloads := []*quantum.Circuit{
		circuits.GHZ(8),                  // finishes before the crash
		circuits.ParitySuperposition(16), // killed mid-run
		circuits.QFT(6),                  // killed mid-queue
		circuits.GHZ(5),                  // killed mid-queue
	}
	var want []*sim.Result
	for _, c := range workloads {
		res, err := (&sim.SQL{}).Run(c)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
	}

	// First life: one worker, so the parity blocker pins the pool and
	// the last two jobs are still queued when the process dies.
	addr1 := freePort()
	srv1, _ := startServer(addr1)
	base1 := "http://" + addr1
	ids := []string{submit(base1, workloads[0])}
	waitStatus(base1, ids[0], JobDone)
	for _, c := range workloads[1:] {
		ids = append(ids, submit(base1, c))
	}
	waitStatus(base1, ids[1], JobRunning) // the blocker is mid-run...
	srv1.Process.Kill()                   // ...SIGKILL: no shutdown path runs
	srv1.Wait()

	// Simulate the torn final append a crash can leave behind: a
	// partial frame that replay must count and skip, never fail on.
	logPath := jobLogPath(dataDir)
	f, err := os.OpenFile(logPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x10, 0, 0, 0, 0xAB}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Second life: same data dir, fresh port.
	addr2 := freePort()
	_, logs2 := startServer(addr2)
	base2 := "http://" + addr2

	mresp, err := http.Get(base2 + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := decodeBody[MetricsJSON](t, mresp)
	rs := metrics.JobLog.Replay
	if !metrics.JobLog.Enabled {
		t.Fatalf("restarted server reports job log disabled: %+v", metrics.JobLog)
	}
	if rs.CorruptRecords != 1 {
		t.Fatalf("torn tail not counted: %+v\nserver logs:\n%s", rs, logs2.String())
	}
	if rs.CompletedKept < 1 || rs.Requeued < 2 {
		t.Fatalf("replay stats %+v, want >=1 kept and >=2 requeued\nserver logs:\n%s", rs, logs2.String())
	}

	// Every job — the replayed-done one and the re-executed ones — must
	// converge to done with amplitudes bit-identical to the references.
	for i, id := range ids {
		j := waitStatus(base2, id, JobDone)
		if j.Result == nil {
			t.Fatalf("job %s done without result", id)
		}
		statesEqualBits(t, want[i].State, j.Result.Amplitudes)
	}
}

func waitHealthy(t *testing.T, base string, logs *bytes.Buffer) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never became healthy: %v\nserver logs:\n%s", err, logs.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
}
