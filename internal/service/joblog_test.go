package service

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"os"
	"testing"
	"time"

	"qymera/internal/circuits"
	"qymera/internal/quantum"
	"qymera/internal/sim"
)

func TestJobLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := openJobLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []logRecord{
		{Type: "submit", JobID: "job-1", Tenant: "a", Request: json.RawMessage(`{"circuit":{}}`)},
		{Type: "start", JobID: "job-1", Tenant: "a"},
		{Type: "done", JobID: "job-1", Tenant: "a", Result: &ResultJSON{NumQubits: 2, Amplitudes: []Amplitude{{S: 3, R: 0.125, I: -0.5}}}},
		{Type: "cancel", JobID: "job-2"},
	}
	for _, rec := range want {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Appended(); got != int64(len(want)) {
		t.Fatalf("appended %d, want %d", got, len(want))
	}
	l.Close()

	recs, corrupt, err := replayJobLog(jobLogPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if corrupt != 0 {
		t.Fatalf("clean log replayed %d corrupt records", corrupt)
	}
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, rec := range recs {
		if rec.Type != want[i].Type || rec.JobID != want[i].JobID || rec.Tenant != want[i].Tenant {
			t.Fatalf("record %d: got %+v, want %+v", i, rec, want[i])
		}
	}
	// Result floats round-trip exactly.
	if a := recs[2].Result.Amplitudes[0]; a.S != 3 || a.R != 0.125 || a.I != -0.5 {
		t.Fatalf("done record result mangled: %+v", a)
	}
}

// TestJobLogCorruptTail: a torn or checksum-corrupt tail is skipped
// with a count — never an error — and the file is truncated back to
// its valid prefix so the log stays appendable.
func TestJobLogCorruptTail(t *testing.T) {
	writeLog := func(t *testing.T, dir string, n int) string {
		l, err := openJobLog(dir)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := l.Append(logRecord{Type: "submit", JobID: "job-1"}); err != nil {
				t.Fatal(err)
			}
		}
		l.Close()
		return jobLogPath(dir)
	}

	t.Run("truncated-payload", func(t *testing.T) {
		path := writeLog(t, t.TempDir(), 3)
		st, _ := os.Stat(path)
		if err := os.Truncate(path, st.Size()-5); err != nil {
			t.Fatal(err)
		}
		recs, corrupt, err := replayJobLog(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 2 || corrupt != 1 {
			t.Fatalf("got %d records, %d corrupt; want 2, 1", len(recs), corrupt)
		}
	})

	t.Run("checksum-mismatch", func(t *testing.T) {
		path := writeLog(t, t.TempDir(), 3)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Flip a byte inside the LAST record's payload.
		recLen := int64(binary.LittleEndian.Uint32(data[:4])) + 8
		lastStart := int64(len(data)) - recLen
		data[lastStart+8] ^= 0xFF
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		recs, corrupt, err := replayJobLog(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 2 || corrupt != 1 {
			t.Fatalf("got %d records, %d corrupt; want 2, 1", len(recs), corrupt)
		}
		// The file was truncated to the valid prefix: appends after a
		// corrupt tail replay cleanly.
		if st, _ := os.Stat(path); st.Size() != 2*recLen {
			t.Fatalf("file not truncated: %d bytes, want %d", st.Size(), 2*recLen)
		}
	})

	t.Run("garbage-length", func(t *testing.T) {
		path := writeLog(t, t.TempDir(), 1)
		f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		var frame [8]byte
		binary.LittleEndian.PutUint32(frame[:4], 1<<31) // over maxLogRecord
		f.Write(frame[:])
		f.Close()
		recs, corrupt, err := replayJobLog(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 || corrupt != 1 {
			t.Fatalf("got %d records, %d corrupt; want 1, 1", len(recs), corrupt)
		}
	})

	t.Run("missing-file", func(t *testing.T) {
		recs, corrupt, err := replayJobLog(jobLogPath(t.TempDir()))
		if err != nil || len(recs) != 0 || corrupt != 0 {
			t.Fatalf("missing file: recs=%d corrupt=%d err=%v", len(recs), corrupt, err)
		}
	})

	// A manager must boot on a corrupt-tailed log and count the skips.
	t.Run("manager-boots", func(t *testing.T) {
		dir := t.TempDir()
		path := writeLog(t, dir, 2)
		st, _ := os.Stat(path)
		if err := os.Truncate(path, st.Size()-3); err != nil {
			t.Fatal(err)
		}
		m, err := OpenManager(Config{Workers: 1, DataDir: dir})
		if err != nil {
			t.Fatalf("corrupt tail must not fail boot: %v", err)
		}
		defer m.Close()
		if rs := m.Replay(); rs.CorruptRecords != 1 || rs.Records != 1 {
			t.Fatalf("replay stats %+v", rs)
		}
	})
}

// replayAmplitudes fetches a done job's amplitudes through Snapshot.
func replayAmplitudes(t *testing.T, m *Manager, id string) []Amplitude {
	t.Helper()
	j, err := m.Job(id)
	if err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot(j, true)
	if snap.Status != string(JobDone) {
		t.Fatalf("job %s: status %s (err %q)", id, snap.Status, snap.Error)
	}
	if snap.Result == nil {
		t.Fatalf("job %s: done without result", id)
	}
	return snap.Result.Amplitudes
}

// TestManagerReplayDifferential is the tentpole's differential test: a
// manager with a job log runs some jobs to completion and "crashes"
// with others still queued; a second manager on the same data dir must
// (a) keep the completed jobs' results queryable and (b) re-enqueue and
// re-execute the interrupted ones — and every amplitude, replayed or
// re-run, must be bit-identical to an uninterrupted run of the same
// circuit.
func TestManagerReplayDifferential(t *testing.T) {
	dir := t.TempDir()
	workloads := []*quantum.Circuit{
		circuits.GHZ(8),
		circuits.QFT(6),
		circuits.GHZ(5),
		circuits.QFT(5),
	}
	// Uninterrupted reference runs.
	var want []*quantum.State
	for _, c := range workloads {
		res, err := (&sim.SQL{}).Run(c)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res.State)
	}

	// First life: complete the first two jobs, leave the rest queued
	// (workers=1 and a slow blocker keeps them in the queue), then shut
	// down without draining — Close does not log cancels, so the queued
	// jobs keep their "submitted" durable state, exactly as a crash
	// would leave them.
	m1, err := OpenManager(Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	var ids []string
	for i, c := range workloads[:2] {
		j, err := m1.Submit(Request{Circuit: circuitDoc(t, c)})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if _, err := m1.Wait(ctx, j.ID); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	// Blocker occupies the single worker so the last two stay queued.
	blocker, err := m1.Submit(Request{Circuit: circuitDoc(t, circuits.ParitySuperposition(16))})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range workloads[2:] {
		j, err := m1.Submit(Request{Circuit: circuitDoc(t, c)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	m1.Close() // crash-like: queued/running jobs keep durable state

	// Second life: replay.
	m2, err := OpenManager(Config{Workers: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	rs := m2.Replay()
	if rs.CompletedKept != 2 {
		t.Fatalf("replay kept %d completed jobs, want 2 (%+v)", rs.CompletedKept, rs)
	}
	// The blocker plus the two queued jobs were interrupted.
	if rs.Requeued != 3 {
		t.Fatalf("replay requeued %d jobs, want 3 (%+v)", rs.Requeued, rs)
	}
	if rs.CorruptRecords != 0 {
		t.Fatalf("clean log replayed %d corrupt records", rs.CorruptRecords)
	}

	// Interrupted jobs re-execute to completion.
	for _, id := range append(ids[2:], blocker.ID) {
		if _, err := m2.Wait(ctx, id); err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
	}
	// Every job — replayed-from-log or re-executed — is bit-identical
	// to its uninterrupted reference.
	for i, id := range ids {
		statesEqualBits(t, want[i], replayAmplitudes(t, m2, id))
	}

	// New submissions must not collide with replayed ids.
	j, err := m2.Submit(Request{Circuit: circuitDoc(t, circuits.GHZ(3))})
	if err != nil {
		t.Fatal(err)
	}
	for _, old := range append(ids, blocker.ID) {
		if j.ID == old {
			t.Fatalf("new job reused replayed id %s", j.ID)
		}
	}
}

// TestManagerReplayThirdLife: a second restart still serves the full
// history (all jobs now terminal), proving replay is idempotent.
func TestManagerReplayThirdLife(t *testing.T) {
	dir := t.TempDir()
	c := circuits.GHZ(6)
	ref, err := (&sim.SQL{}).Run(c)
	if err != nil {
		t.Fatal(err)
	}

	m1, err := OpenManager(Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	j, err := m1.Submit(Request{Circuit: circuitDoc(t, c)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Wait(ctx, j.ID); err != nil {
		t.Fatal(err)
	}
	m1.Close()

	for life := 0; life < 2; life++ {
		m, err := OpenManager(Config{Workers: 1, DataDir: dir})
		if err != nil {
			t.Fatalf("life %d: %v", life, err)
		}
		if rs := m.Replay(); rs.CompletedKept != 1 || rs.Requeued != 0 {
			m.Close()
			t.Fatalf("life %d: replay stats %+v", life, rs)
		}
		statesEqualBits(t, ref.State, replayAmplitudes(t, m, j.ID))
		m.Close()
	}
}
