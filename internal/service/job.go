package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"qymera/internal/sim"
	"qymera/internal/sqlengine"
)

// JobStatus is one job's lifecycle state.
type JobStatus string

const (
	JobQueued    JobStatus = "queued"
	JobRunning   JobStatus = "running"
	JobDone      JobStatus = "done"
	JobFailed    JobStatus = "failed"
	JobCancelled JobStatus = "cancelled"
)

// terminal reports whether the status is final.
func (s JobStatus) terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

var (
	// ErrQueueFull rejects submissions beyond Config.QueueDepth.
	ErrQueueFull = errors.New("service: job queue is full")
	// ErrClosed rejects work after Close.
	ErrClosed = errors.New("service: manager is closed")
	// ErrNotFound marks unknown (or evicted) job ids.
	ErrNotFound = errors.New("service: no such job")
	// ErrOverBudget rejects jobs whose declared estimate can never fit
	// the configured memory budget.
	ErrOverBudget = errors.New("service: estimated_bytes exceeds the server memory budget")
)

// Job is one queued or running simulation. All mutable fields are
// guarded by the owning Manager's mutex.
type Job struct {
	ID  string
	req *parsedRequest

	status JobStatus
	err    error
	result *sim.Result

	submitted time.Time
	started   time.Time
	finished  time.Time

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	// admittedBytes is the admission-ledger reservation this job holds
	// while running (0 until admitted; released by finish).
	admittedBytes int64
}

// Manager owns the worker pool, the FIFO queue, the shared engine
// budget, and the shared plan cache.
type Manager struct {
	cfg     Config
	budget  *sqlengine.MemBudget
	cache   *sim.PlanCache
	metrics *metrics

	mu     sync.Mutex
	cond   *sync.Cond // admission + Close wakeups
	jobs   map[string]*Job
	order  []string // submission order, for finished-job eviction
	nextID int
	closed bool
	// admitted is the admission ledger: the sum of running jobs'
	// declared estimates. A job is admitted only while
	// admitted + estimate <= budget limit, so declared peak memory
	// never oversubscribes the shared engine budget regardless of how
	// actual usage fluctuates mid-query.
	admitted int64

	queue chan *Job
	wg    sync.WaitGroup
}

// NewManager starts the worker pool.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:     cfg,
		budget:  sqlengine.NewMemBudget(cfg.MemoryBudget),
		metrics: newMetrics(),
		jobs:    map[string]*Job{},
		queue:   make(chan *Job, cfg.QueueDepth),
	}
	if cfg.PlanCacheSize >= 0 {
		m.cache = sim.NewPlanCache(cfg.PlanCacheSize)
	}
	m.cond = sync.NewCond(&m.mu)
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Budget exposes the shared engine memory budget.
func (m *Manager) Budget() *sqlengine.MemBudget { return m.budget }

// PlanCacheStats snapshots the shared plan cache (zero value when
// caching is disabled).
func (m *Manager) PlanCacheStats() sim.PlanCacheStats {
	if m.cache == nil {
		return sim.PlanCacheStats{}
	}
	return m.cache.Stats()
}

// QueueDepth reports how many submitted jobs have not started running.
func (m *Manager) QueueDepth() int { return len(m.queue) }

// Submit validates and enqueues a request, returning the queued job.
func (m *Manager) Submit(req Request) (*Job, error) {
	p, err := parseRequest(req)
	if err != nil {
		return nil, err
	}
	if lim := m.budget.Limit(); lim > 0 && p.estimate > lim {
		return nil, fmt.Errorf("%w: %d > %d", ErrOverBudget, p.estimate, lim)
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	m.nextID++
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		ID:        fmt.Sprintf("job-%d", m.nextID),
		req:       p,
		status:    JobQueued,
		submitted: time.Now(),
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
	}
	select {
	case m.queue <- j:
	default:
		m.mu.Unlock()
		cancel()
		return nil, ErrQueueFull
	}
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	m.evictFinishedLocked()
	m.mu.Unlock()
	return j, nil
}

// evictFinishedLocked drops the oldest finished jobs beyond RetainJobs.
func (m *Manager) evictFinishedLocked() {
	finished := 0
	for _, id := range m.order {
		if j, ok := m.jobs[id]; ok && j.status.terminal() {
			finished++
		}
	}
	if finished <= m.cfg.RetainJobs {
		return
	}
	keep := m.order[:0]
	for _, id := range m.order {
		j, ok := m.jobs[id]
		if !ok {
			continue
		}
		if finished > m.cfg.RetainJobs && j.status.terminal() {
			delete(m.jobs, id)
			finished--
			continue
		}
		keep = append(keep, id)
	}
	m.order = keep
}

// worker drains the queue. Each job passes admission control before it
// runs: its declared memory estimate must fit the shared budget's
// current headroom, otherwise the worker blocks until running jobs
// release memory (or the job is cancelled).
func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.runJob(j)
	}
}

// admit blocks until the job's declared estimate fits the admission
// ledger: the sum of running jobs' estimates may never exceed the
// shared budget's limit. (Actual engine usage is separately capped by
// the budget itself, which spills; the ledger keeps declared peaks
// from oversubscribing it.) Admission order is whatever order workers
// wake in; fairness across the (few) workers is not needed. Returns
// false when the job was cancelled or the manager closed while
// waiting.
func (m *Manager) admit(j *Job) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if j.ctx.Err() != nil || m.closed {
			return false
		}
		limit := m.budget.Limit()
		if j.req.estimate == 0 || limit <= 0 || m.admitted+j.req.estimate <= limit {
			j.admittedBytes = j.req.estimate
			m.admitted += j.admittedBytes
			return true
		}
		m.metrics.admissionWaits.Add(1)
		m.cond.Wait()
	}
}

func (m *Manager) runJob(j *Job) {
	if !m.admit(j) {
		m.finish(j, nil, context.Canceled)
		return
	}

	m.mu.Lock()
	if j.ctx.Err() != nil {
		m.mu.Unlock()
		m.finish(j, nil, context.Canceled)
		return
	}
	j.status = JobRunning
	j.started = time.Now()
	backend, err := m.newBackend(j.req)
	m.mu.Unlock()
	if err != nil {
		m.finish(j, nil, err)
		return
	}

	res, err := backend.RunContext(j.ctx, j.req.circuit)
	m.finish(j, res, err)
}

// finish records a job's outcome, releases its admission reservation,
// updates metrics, and wakes admission waiters.
func (m *Manager) finish(j *Job, res *sim.Result, err error) {
	m.mu.Lock()
	m.admitted -= j.admittedBytes
	j.admittedBytes = 0
	j.finished = time.Now()
	switch {
	case err == nil:
		j.status = JobDone
		j.result = res
	case errors.Is(err, context.Canceled):
		j.status = JobCancelled
		j.err = err
	default:
		j.status = JobFailed
		j.err = err
	}
	j.cancel() // release the context's resources
	m.mu.Unlock()

	// Record metrics before unblocking waiters: a synchronous client must
	// see its own job in /metrics as soon as its response arrives.
	if !j.started.IsZero() {
		m.metrics.observe(j.req.backend, j.status, j.finished.Sub(j.started))
	} else {
		m.metrics.observe(j.req.backend, j.status, 0)
	}
	close(j.done)
	m.cond.Broadcast()
}

// Job looks a job up by id.
func (m *Manager) Job(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// Cancel requests cancellation: a queued job finishes as cancelled
// without running; a running job's engine work stops at the next
// batch/morsel boundary. Cancelling a finished job is a no-op.
func (m *Manager) Cancel(id string) error {
	j, err := m.Job(id)
	if err != nil {
		return err
	}
	j.cancel()
	m.cond.Broadcast() // unblock admission waits on this job
	return nil
}

// Wait blocks until the job finishes or ctx is done.
func (m *Manager) Wait(ctx context.Context, id string) (*Job, error) {
	j, err := m.Job(id)
	if err != nil {
		return nil, err
	}
	select {
	case <-j.done:
		return j, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// RunSync submits and waits. When ctx is cancelled mid-run (an HTTP
// client hanging up), the job is cancelled too — engine-level, so the
// in-flight query aborts and releases its memory.
func (m *Manager) RunSync(ctx context.Context, req Request) (*sim.Result, error) {
	j, err := m.Submit(req)
	if err != nil {
		return nil, err
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		j.cancel()
		m.cond.Broadcast()
		<-j.done
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if j.err != nil {
		return nil, j.err
	}
	return j.result, nil
}

// Snapshot renders a job for the API. Results are attached only to
// done jobs and only when includeResult is set (they can be large; the
// amplitude gather happens outside the manager lock so a slow poller
// never stalls scheduling).
func (m *Manager) Snapshot(j *Job, includeResult bool) JobJSON {
	m.mu.Lock()
	out := JobJSON{
		ID:          j.ID,
		Status:      string(j.status),
		Backend:     j.req.backend,
		NumQubits:   j.req.circuit.NumQubits(),
		Gates:       j.req.circuit.Len(),
		SubmittedAt: j.submitted,
	}
	if j.err != nil {
		out.Error = j.err.Error()
	}
	switch {
	case j.started.IsZero() && j.finished.IsZero():
		out.QueueSeconds = time.Since(j.submitted).Seconds()
	case j.started.IsZero():
		out.QueueSeconds = j.finished.Sub(j.submitted).Seconds()
	default:
		out.QueueSeconds = j.started.Sub(j.submitted).Seconds()
		if j.finished.IsZero() {
			out.RunSeconds = time.Since(j.started).Seconds()
		} else {
			out.RunSeconds = j.finished.Sub(j.started).Seconds()
		}
	}
	var res *sim.Result
	if includeResult && j.status == JobDone {
		res = j.result // immutable once done
	}
	m.mu.Unlock()
	if res != nil {
		out.Result = resultJSON(res)
	}
	return out
}

// Jobs snapshots every retained job, newest first.
func (m *Manager) Jobs() []JobJSON {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	out := make([]JobJSON, 0, len(ids))
	for i := len(ids) - 1; i >= 0; i-- {
		if j, err := m.Job(ids[i]); err == nil {
			out = append(out, m.Snapshot(j, false))
		}
	}
	return out
}

// Close cancels all queued and running jobs and joins the workers.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	close(m.queue)
	for _, j := range m.jobs {
		j.cancel()
	}
	m.mu.Unlock()
	m.cond.Broadcast()

	// Drain jobs the workers never picked up.
	for j := range m.queue {
		m.finish(j, nil, context.Canceled)
	}
	m.wg.Wait()
}
