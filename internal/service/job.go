package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"qymera/internal/obs"
	"qymera/internal/sim"
	"qymera/internal/sqlengine"
)

// timeNow is stubbed in tests.
var timeNow = time.Now

// JobStatus is one job's lifecycle state.
type JobStatus string

const (
	JobQueued    JobStatus = "queued"
	JobRunning   JobStatus = "running"
	JobDone      JobStatus = "done"
	JobFailed    JobStatus = "failed"
	JobCancelled JobStatus = "cancelled"
)

// terminal reports whether the status is final.
func (s JobStatus) terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

var (
	// ErrQueueFull rejects submissions beyond Config.QueueDepth.
	ErrQueueFull = errors.New("service: job queue is full")
	// ErrTenantQueueFull rejects submissions beyond the per-tenant
	// queued-jobs quota (Config.TenantMaxQueued).
	ErrTenantQueueFull = errors.New("service: tenant job queue is full")
	// ErrClosed rejects work after Close.
	ErrClosed = errors.New("service: manager is closed")
	// ErrNotFound marks unknown (or evicted) job ids.
	ErrNotFound = errors.New("service: no such job")
	// ErrOverBudget rejects jobs whose declared estimate can never fit
	// the configured memory budget.
	ErrOverBudget = errors.New("service: estimated_bytes exceeds the server memory budget")
	// ErrTenantOverBudget rejects jobs whose declared estimate can never
	// fit the per-tenant admitted-bytes quota (Config.TenantMaxBytes).
	ErrTenantOverBudget = errors.New("service: estimated_bytes exceeds the tenant memory quota")
)

// Job is one queued or running simulation. All mutable fields are
// guarded by the owning Manager's mutex.
type Job struct {
	ID     string
	req    *parsedRequest // nil only for unparseable replayed jobs
	tenant string

	status JobStatus
	err    error
	result *sim.Result
	// replayed carries a done job's result recovered from the job log
	// (result stays nil for such jobs).
	replayed *ResultJSON

	submitted time.Time
	started   time.Time
	finished  time.Time

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	// admittedBytes is the admission-ledger reservation this job holds
	// while running (0 until dispatched; released exactly once, by
	// finishJob).
	admittedBytes int64

	// trace is the job's span tree (nil when tracing is off; replayed
	// jobs are never traced). spanQueue covers submit→dispatch and
	// spanRun dispatch→finish; both are ended by the scheduler and
	// finishJob, and the engine hangs its statement spans under
	// spanRun via the job context.
	trace     *obs.Trace
	spanQueue *obs.Span
	spanRun   *obs.Span
}

// Manager owns the worker pool, the per-tenant queues, the shared
// engine budget, the shared plan cache, and (when Config.DataDir is
// set) the persistent job log.
type Manager struct {
	cfg     Config
	budget  *sqlengine.MemBudget
	cache   *sim.PlanCache
	metrics *metrics
	replay  ReplayStats
	// slow is the slow-query log (nil unless Config.DataDir and
	// Config.SlowQueryMillis are both set).
	slow *slowLog

	mu     sync.Mutex
	cond   *sync.Cond // dispatch + Close wakeups
	log    *jobLog    // nil when durability is disabled (and after Close)
	jobs   map[string]*Job
	order  []string // submission order, for finished-job eviction
	nextID int
	closed bool
	// admitted is the shared admission ledger: the sum of running jobs'
	// declared estimates. A job is dispatched only while
	// admitted + estimate <= budget limit, so declared peak memory
	// never oversubscribes the shared engine budget regardless of how
	// actual usage fluctuates mid-query.
	admitted    int64
	queuedTotal int

	// tenants/ring/rrPos are the fair scheduler's per-tenant queues and
	// round-robin cursor (see scheduler.go).
	tenants map[string]*tenantState
	ring    []*tenantState
	rrPos   int

	wg sync.WaitGroup
}

// NewManager starts the worker pool. It panics when Config.DataDir is
// set but unusable; durable deployments should use OpenManager.
func NewManager(cfg Config) *Manager {
	m, err := OpenManager(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// OpenManager starts the worker pool, replaying the persistent job log
// first when Config.DataDir is set: completed jobs stay queryable
// (done jobs keep their results) and jobs that were queued or running
// when the previous process died are re-enqueued for re-execution.
func OpenManager(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:     cfg,
		budget:  sqlengine.NewMemBudget(cfg.MemoryBudget),
		metrics: newMetrics(),
		jobs:    map[string]*Job{},
		tenants: map[string]*tenantState{},
	}
	if cfg.PlanCacheSize >= 0 {
		m.cache = sim.NewPlanCache(cfg.PlanCacheSize)
	}
	m.cond = sync.NewCond(&m.mu)
	if cfg.DataDir != "" {
		if err := m.recover(cfg.DataDir); err != nil {
			return nil, err
		}
		if cfg.SlowQueryMillis > 0 {
			slow, err := openSlowLog(cfg.DataDir, time.Duration(cfg.SlowQueryMillis)*time.Millisecond)
			if err != nil {
				m.log.Close()
				return nil, err
			}
			m.slow = slow
		}
	}
	if m.log != nil {
		// Surface job-log fsync latency in /metrics: every durable append
		// is one phase.joblog_fsync observation.
		m.log.observe = func(d time.Duration) { m.metrics.observePhase("joblog_fsync", d) }
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// recover replays the job log and reopens it for appending.
func (m *Manager) recover(dir string) error {
	recs, corrupt, err := replayJobLog(jobLogPath(dir))
	if err != nil {
		return err
	}
	m.replay.Records = len(recs)
	m.replay.CorruptRecords = corrupt

	// Fold the record stream into one final state per job id.
	type folded struct {
		id        string
		tenant    string
		status    JobStatus
		request   json.RawMessage
		result    *ResultJSON
		errText   string
		submitted time.Time
		started   time.Time
		finished  time.Time
	}
	byID := map[string]*folded{}
	var idOrder []string
	for _, rec := range recs {
		f := byID[rec.JobID]
		if f == nil {
			f = &folded{id: rec.JobID, status: JobQueued}
			byID[rec.JobID] = f
			idOrder = append(idOrder, rec.JobID)
		}
		switch rec.Type {
		case "submit":
			f.tenant = rec.Tenant
			f.request = rec.Request
			f.submitted = rec.Time
		case "start":
			f.status = JobRunning
			f.started = rec.Time
		case "done":
			f.status = JobDone
			f.result = rec.Result
			f.finished = rec.Time
		case "fail":
			f.status = JobFailed
			f.errText = rec.Error
			f.finished = rec.Time
		case "cancel":
			f.status = JobCancelled
			f.finished = rec.Time
		}
	}

	for _, id := range idOrder {
		f := byID[id]
		if num, ok := strings.CutPrefix(id, "job-"); ok {
			if v, err := strconv.Atoi(num); err == nil && v > m.nextID {
				m.nextID = v
			}
		}
		var req Request
		var p *parsedRequest
		if json.Unmarshal(f.request, &req) == nil {
			p, _ = parseRequest(req)
		}
		tenant := f.tenant
		if p != nil {
			tenant = p.tenant
		} else if tenant == "" {
			tenant = defaultTenant
		}
		ctx, cancel := context.WithCancel(context.Background())
		j := &Job{
			ID:        id,
			req:       p,
			tenant:    tenant,
			status:    f.status,
			submitted: f.submitted,
			started:   f.started,
			finished:  f.finished,
			ctx:       ctx,
			cancel:    cancel,
			done:      make(chan struct{}),
		}
		switch {
		case f.status.terminal():
			j.replayed = f.result
			if f.errText != "" {
				j.err = errors.New(f.errText)
			} else if f.status == JobCancelled {
				j.err = context.Canceled
			}
			cancel()
			close(j.done)
			m.replay.CompletedKept++
		case p == nil:
			// The logged request no longer parses: surface it as failed
			// rather than dropping the job silently.
			j.status = JobFailed
			j.err = fmt.Errorf("service: replayed job %s has an unreadable request", id)
			j.finished = timeNow()
			cancel()
			close(j.done)
			m.replay.CompletedKept++
		default:
			// Queued or running at the crash: re-enqueue from scratch.
			j.status = JobQueued
			j.started = time.Time{}
			j.finished = time.Time{}
			ts := m.tenantLocked(tenant)
			ts.queue = append(ts.queue, j)
			m.queuedTotal++
			m.replay.Requeued++
		}
		m.jobs[id] = j
		m.order = append(m.order, id)
	}

	log, err := openJobLog(dir)
	if err != nil {
		return err
	}
	m.log = log
	return nil
}

// Budget exposes the shared engine memory budget.
func (m *Manager) Budget() *sqlengine.MemBudget { return m.budget }

// Replay reports what the persistent job log recovered at startup
// (zero value when durability is disabled).
func (m *Manager) Replay() ReplayStats { return m.replay }

// PlanCacheStats snapshots the shared plan cache (zero value when
// caching is disabled).
func (m *Manager) PlanCacheStats() sim.PlanCacheStats {
	if m.cache == nil {
		return sim.PlanCacheStats{}
	}
	return m.cache.Stats()
}

// PlanCacheShardStats snapshots the plan cache per lock shard (nil
// when caching is disabled).
func (m *Manager) PlanCacheShardStats() []sim.PlanCacheStats {
	if m.cache == nil {
		return nil
	}
	return m.cache.ShardStats()
}

// QueueDepth reports how many submitted jobs have not started running.
func (m *Manager) QueueDepth() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.queuedTotal
}

// newJobTrace builds a job's trace per the server default
// (Config.Tracing) and the request's per-job override
// (options.trace): "off" disables tracing, "full" times every
// operator batch, anything else samples (obs.SampleDefault).
func (m *Manager) newJobTrace(id string, p *parsedRequest) *obs.Trace {
	mode := m.cfg.Tracing
	if p != nil && p.options.Trace != "" {
		mode = p.options.Trace
	}
	switch strings.ToLower(mode) {
	case "off":
		return nil
	case "full":
		return obs.NewTrace(id, obs.SampleFull)
	default:
		return obs.NewTrace(id, obs.SampleDefault)
	}
}

// Submit validates and enqueues a request, returning the queued job.
// Quota breaches fail fast: ErrQueueFull/ErrTenantQueueFull when the
// global or per-tenant queue is full, ErrOverBudget/ErrTenantOverBudget
// when the declared estimate could never fit the shared budget or the
// tenant quota.
func (m *Manager) Submit(req Request) (*Job, error) {
	p, err := parseRequest(req)
	if err != nil {
		return nil, err
	}
	if lim := m.budget.Limit(); lim > 0 && p.estimate > lim {
		return nil, fmt.Errorf("%w: %d > %d", ErrOverBudget, p.estimate, lim)
	}
	if q := m.cfg.TenantMaxBytes; q > 0 && p.estimate > q {
		return nil, fmt.Errorf("%w: %d > %d", ErrTenantOverBudget, p.estimate, q)
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	if m.queuedTotal >= m.cfg.QueueDepth {
		m.mu.Unlock()
		return nil, ErrQueueFull
	}
	ts := m.tenantLocked(p.tenant)
	if q := m.cfg.TenantMaxQueued; q > 0 && len(ts.queue) >= q {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: tenant %q has %d jobs queued", ErrTenantQueueFull, p.tenant, len(ts.queue))
	}
	m.nextID++
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		ID:        fmt.Sprintf("job-%d", m.nextID),
		req:       p,
		tenant:    p.tenant,
		status:    JobQueued,
		submitted: timeNow(),
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
	}
	j.trace = m.newJobTrace(j.ID, p)
	if j.trace != nil {
		// The HTTP layer measured request decoding before Submit; back-date
		// a completed span so the trace covers the whole request.
		if d := req.decodeDur; d > 0 {
			j.trace.Root().CompleteChild("decode", j.submitted.Add(-d), d)
		}
		j.spanQueue = j.trace.Root().Child("queue")
	}
	// Durability first: the job becomes visible (and runnable) only
	// after its submit record is on disk, so a crash can never run a
	// job the log does not know about.
	if m.log != nil {
		raw, err := json.Marshal(req)
		if err == nil {
			err = m.log.Append(logRecord{Type: "submit", JobID: j.ID, Tenant: j.tenant, Time: j.submitted, Request: raw})
		}
		if err != nil {
			m.mu.Unlock()
			cancel()
			return nil, err
		}
	}
	ts.queue = append(ts.queue, j)
	m.queuedTotal++
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	m.evictFinishedLocked()
	m.mu.Unlock()
	m.cond.Signal()
	return j, nil
}

// evictFinishedLocked drops the oldest finished jobs beyond RetainJobs.
func (m *Manager) evictFinishedLocked() {
	finished := 0
	for _, id := range m.order {
		if j, ok := m.jobs[id]; ok && j.status.terminal() {
			finished++
		}
	}
	if finished <= m.cfg.RetainJobs {
		return
	}
	keep := m.order[:0]
	for _, id := range m.order {
		j, ok := m.jobs[id]
		if !ok {
			continue
		}
		if finished > m.cfg.RetainJobs && j.status.terminal() {
			delete(m.jobs, id)
			finished--
			continue
		}
		keep = append(keep, id)
	}
	m.order = keep
}

// worker repeatedly asks the fair scheduler for the next dispatchable
// job and runs it. Dispatch (scheduler.go) already performed admission:
// the queued→running transition and the ledger reservation happen
// atomically under the manager lock, so there is no window in which a
// cancelled job could hold (or leak) a reservation.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		var j *Job
		for {
			if m.closed {
				m.mu.Unlock()
				return
			}
			if j = m.dispatchLocked(); j != nil {
				break
			}
			m.cond.Wait()
		}
		log := m.log
		rec := logRecord{Type: "start", JobID: j.ID, Tenant: j.tenant, Time: j.started}
		m.mu.Unlock()
		if log != nil {
			log.Append(rec)
		}
		m.runJob(j)
	}
}

func (m *Manager) runJob(j *Job) {
	if j.ctx.Err() != nil {
		m.finishJob(j, nil, context.Canceled)
		return
	}
	backend, err := m.newBackend(j.req)
	if err != nil {
		m.finishJob(j, nil, err)
		return
	}
	// The run span rides the job context into the backend and engine:
	// translate/stages/query/emit spans (sim) and per-operator spans
	// (sqlengine) all hang beneath it. spanRun was created by
	// dispatchLocked under the manager lock, which this goroutine
	// acquired since (in worker), so the read is ordered.
	res, err := backend.RunContext(obs.WithSpan(j.ctx, j.spanRun), j.req.circuit)
	m.finishJob(j, res, err)
}

// finishJob records a job's outcome, releases its admission reservation
// exactly once, appends the terminal log record, updates metrics, and
// wakes dispatch waiters. Safe to call from multiple paths: only the
// first caller past the terminal-status guard does any of it.
func (m *Manager) finishJob(j *Job, res *sim.Result, err error) {
	m.mu.Lock()
	if j.status.terminal() {
		m.mu.Unlock()
		return
	}
	ts := m.tenantLocked(j.tenant)
	if j.status == JobRunning {
		ts.running--
	}
	m.admitted -= j.admittedBytes
	ts.admitted -= j.admittedBytes
	j.admittedBytes = 0
	j.finished = timeNow()
	switch {
	case err == nil:
		j.status = JobDone
		j.result = res
	case errors.Is(err, context.Canceled):
		j.status = JobCancelled
		j.err = err
	default:
		j.status = JobFailed
		j.err = err
	}
	j.cancel() // release the context's resources
	// Close out the trace under the lock: spanQueue/spanRun are written
	// by Submit and dispatchLocked under the same mutex, and nothing
	// else touches them once the status is terminal.
	j.spanRun.End()
	j.spanQueue.End()
	if j.trace != nil {
		j.trace.Root().End()
	}
	log := m.log
	m.mu.Unlock()

	if log != nil {
		rec := logRecord{JobID: j.ID, Tenant: j.tenant, Time: j.finished}
		switch j.status {
		case JobDone:
			rec.Type = "done"
			rec.Result = resultJSON(res)
		case JobCancelled:
			rec.Type = "cancel"
		default:
			rec.Type = "fail"
			rec.Error = j.err.Error()
		}
		log.Append(rec)
	}

	// Record metrics before unblocking waiters: a synchronous client must
	// see its own job in /metrics as soon as its response arrives.
	backend := ""
	if j.req != nil {
		backend = j.req.backend
	}
	var run time.Duration
	if !j.started.IsZero() {
		run = j.finished.Sub(j.started)
	}
	m.metrics.observe(backend, j.tenant, j.status, run)
	total := j.finished.Sub(j.submitted)
	queued := total
	if !j.started.IsZero() {
		queued = j.started.Sub(j.submitted)
		m.metrics.observePhase("run", run)
	}
	m.metrics.observePhase("queue", queued)
	m.metrics.observePhase("total", total)
	if j.trace != nil {
		snap := j.trace.Snapshot()
		// Fold the engine-side spans into the per-phase histograms so
		// /metrics carries translate/stages/query/emit percentiles even
		// though those spans live inside individual traces.
		snap.Walk(func(sp obs.SpanJSON) {
			switch sp.Name {
			case "translate", "stages", "query", "emit":
				m.metrics.observePhase(sp.Name, time.Duration(sp.DurationUs)*time.Microsecond)
			}
		})
		if m.slow != nil {
			m.slow.maybeRecord(j.ID, j.tenant, backend, string(j.status), j.finished, total, &snap)
		}
	}
	close(j.done)
	m.cond.Broadcast()
}

// Job looks a job up by id.
func (m *Manager) Job(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// JobTrace snapshots a job's span tree. ok is false when the job is
// unknown or was not traced (tracing off, or a replayed job). The
// snapshot is safe while the job is still running: unfinished spans
// report Unfinished with their duration so far.
func (m *Manager) JobTrace(id string) (obs.SpanJSON, JobStatus, bool) {
	m.mu.Lock()
	j, jok := m.jobs[id]
	var tr *obs.Trace
	var status JobStatus
	if jok {
		tr = j.trace
		status = j.status
	}
	m.mu.Unlock()
	if tr == nil {
		return obs.SpanJSON{}, status, false
	}
	return tr.Snapshot(), status, true
}

// Cancel requests cancellation: a queued job is removed from its
// tenant's queue and finishes as cancelled without ever occupying a
// worker or an admission reservation; a running job's engine work stops
// at the next batch/morsel boundary. Cancelling a finished job is a
// no-op.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return ErrNotFound
	}
	if j.status == JobQueued {
		ts := m.tenantLocked(j.tenant)
		for i, q := range ts.queue {
			if q == j {
				ts.queue = append(ts.queue[:i], ts.queue[i+1:]...)
				m.queuedTotal--
				break
			}
		}
		m.mu.Unlock()
		j.cancel()
		m.finishJob(j, nil, context.Canceled)
		return nil
	}
	m.mu.Unlock()
	j.cancel()
	m.cond.Broadcast()
	return nil
}

// Wait blocks until the job finishes or ctx is done.
func (m *Manager) Wait(ctx context.Context, id string) (*Job, error) {
	j, err := m.Job(id)
	if err != nil {
		return nil, err
	}
	select {
	case <-j.done:
		return j, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// RunSync submits and waits. When ctx is cancelled mid-run (an HTTP
// client hanging up), the job is cancelled too — engine-level, so the
// in-flight query aborts and releases its memory.
func (m *Manager) RunSync(ctx context.Context, req Request) (*sim.Result, error) {
	j, err := m.Submit(req)
	if err != nil {
		return nil, err
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		m.Cancel(j.ID)
		<-j.done
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if j.err != nil {
		return nil, j.err
	}
	return j.result, nil
}

// Snapshot renders a job for the API. Results are attached only to
// done jobs and only when includeResult is set (they can be large; the
// amplitude gather happens outside the manager lock so a slow poller
// never stalls scheduling).
func (m *Manager) Snapshot(j *Job, includeResult bool) JobJSON {
	m.mu.Lock()
	out := JobJSON{
		ID:          j.ID,
		Status:      string(j.status),
		Tenant:      j.tenant,
		SubmittedAt: j.submitted,
	}
	if j.req != nil {
		out.Backend = j.req.backend
		out.NumQubits = j.req.circuit.NumQubits()
		out.Gates = j.req.circuit.Len()
	}
	if j.err != nil {
		out.Error = j.err.Error()
	}
	switch {
	case j.started.IsZero() && j.finished.IsZero():
		out.QueueSeconds = time.Since(j.submitted).Seconds()
	case j.started.IsZero():
		out.QueueSeconds = j.finished.Sub(j.submitted).Seconds()
	default:
		out.QueueSeconds = j.started.Sub(j.submitted).Seconds()
		if j.finished.IsZero() {
			out.RunSeconds = time.Since(j.started).Seconds()
		} else {
			out.RunSeconds = j.finished.Sub(j.started).Seconds()
		}
	}
	var res *sim.Result
	var replayed *ResultJSON
	if includeResult && j.status == JobDone {
		res = j.result // immutable once done
		replayed = j.replayed
	}
	m.mu.Unlock()
	if res != nil {
		out.Result = resultJSON(res)
	} else if replayed != nil {
		out.Result = replayed
	}
	return out
}

// Jobs snapshots every retained job, newest first.
func (m *Manager) Jobs() []JobJSON {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	out := make([]JobJSON, 0, len(ids))
	for i := len(ids) - 1; i >= 0; i-- {
		if j, err := m.Job(ids[i]); err == nil {
			out = append(out, m.Snapshot(j, false))
		}
	}
	return out
}

// Close cancels all queued and running jobs and joins the workers.
// Shutdown-time cancellations are NOT appended to the job log: jobs
// that were queued or running keep their last durable state, so a
// restart on the same data dir re-enqueues and re-executes them.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	log := m.log
	m.log = nil
	var queued []*Job
	for _, ts := range m.ring {
		queued = append(queued, ts.queue...)
		ts.queue = nil
	}
	m.queuedTotal = 0
	for _, j := range m.jobs {
		j.cancel()
	}
	m.mu.Unlock()
	m.cond.Broadcast()

	for _, j := range queued {
		m.finishJob(j, nil, context.Canceled)
	}
	m.wg.Wait()
	if log != nil {
		log.Close()
	}
	if m.slow != nil {
		m.slow.Close()
	}
}
