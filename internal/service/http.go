package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"qymera/internal/obs"
	"qymera/internal/sim"
	"qymera/internal/sqlengine"
)

// routes wires the HTTP API (documented in docs/SERVICE.md).
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// errorJSON is every non-2xx body.
type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrTenantQueueFull):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrOverBudget), errors.Is(err, ErrTenantOverBudget):
		status = http.StatusUnprocessableEntity
	case errors.Is(err, sim.ErrMemoryBudget):
		status = http.StatusInsufficientStorage
	}
	writeJSON(w, status, errorJSON{Error: err.Error()})
}

// TenantHeader names the request header that attributes a job to a
// tenant for quota accounting and fair scheduling; it overrides the
// body's "tenant" field.
const TenantHeader = "X-Qymera-Tenant"

func decodeRequest(r *http.Request) (Request, error) {
	start := time.Now()
	var req Request
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("invalid request body: %w", err)
	}
	if h := r.Header.Get(TenantHeader); h != "" {
		req.Tenant = h
	}
	// Traced jobs get a back-dated "decode" span covering the body read.
	req.decodeDur = time.Since(start)
	return req, nil
}

// wantsNDJSON reports whether the client asked for amplitude streaming.
func wantsNDJSON(r *http.Request) bool {
	if q := r.URL.Query().Get("stream"); q != "" {
		return strings.EqualFold(q, "ndjson")
	}
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

// handleSimulate is the synchronous path: the request occupies a worker
// slot until it finishes (or the client hangs up, which cancels the
// engine work). Responses are one JSON document, or — with
// ?stream=ndjson or Accept: application/x-ndjson — an NDJSON stream:
// a header line {"num_qubits":…}, one line per nonzero amplitude
// ({"s":…,"r":…,"i":…}, sorted by s), and a final {"stats":{…}} line.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(r)
	if err != nil {
		writeError(w, err)
		return
	}
	res, err := s.manager.RunSync(r.Context(), req)
	if err != nil {
		writeError(w, err)
		return
	}
	if !wantsNDJSON(r) {
		writeJSON(w, http.StatusOK, resultJSON(res))
		return
	}

	// NDJSON streaming: amplitudes are written (and flushed in chunks)
	// as they are gathered, so a large state never needs a single giant
	// response buffer.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	type header struct {
		NumQubits  int    `json:"num_qubits"`
		Backend    string `json:"backend"`
		Amplitudes int    `json:"amplitudes"`
	}
	enc.Encode(header{NumQubits: res.State.NumQubits(), Backend: res.Stats.Backend, Amplitudes: res.State.Len()})
	for i, a := range stateAmplitudes(res.State) {
		enc.Encode(a)
		if flusher != nil && i%4096 == 4095 {
			flusher.Flush()
		}
	}
	type trailer struct {
		Stats StatsJSON `json:"stats"`
	}
	enc.Encode(trailer{Stats: statsJSON(res.Stats)})
}

// handleSubmit enqueues an asynchronous job.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(r)
	if err != nil {
		writeError(w, err)
		return
	}
	j, err := s.manager.Submit(req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, s.manager.Snapshot(j, false))
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.manager.Jobs()})
}

// handleGetJob reports one job; done jobs embed the result unless
// ?result=0.
func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, err := s.manager.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	includeResult := r.URL.Query().Get("result") != "0"
	writeJSON(w, http.StatusOK, s.manager.Snapshot(j, includeResult))
}

// TraceJSON is the GET /v1/jobs/{id}/trace body (default JSON form;
// ?format=chrome returns Chrome trace_event JSON instead).
type TraceJSON struct {
	JobID  string       `json:"job_id"`
	Status string       `json:"status"`
	Trace  obs.SpanJSON `json:"trace"`
}

// handleJobTrace serves a job's span tree. Works on running jobs too
// (open spans report duration-so-far); 404s when the job is unknown or
// was not traced.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, status, ok := s.manager.JobTrace(id)
	if !ok {
		writeError(w, fmt.Errorf("%w: no trace for job %q (tracing off?)", ErrNotFound, id))
		return
	}
	if strings.EqualFold(r.URL.Query().Get("format"), "chrome") {
		doc, err := obs.ChromeTrace(snap)
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(doc)
		return
	}
	writeJSON(w, http.StatusOK, TraceJSON{JobID: id, Status: string(status), Trace: snap})
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.manager.Cancel(id); err != nil {
		writeError(w, err)
		return
	}
	j, err := s.manager.Job(id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.manager.Snapshot(j, false))
}

// HealthJSON is the /healthz body.
type HealthJSON struct {
	Status        string   `json:"status"`
	Backends      []string `json:"backends"`
	Workers       int      `json:"workers"`
	UptimeSeconds float64  `json:"uptime_seconds"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthJSON{
		Status:        "ok",
		Backends:      BackendNames(),
		Workers:       s.manager.cfg.Workers,
		UptimeSeconds: time.Since(s.started).Seconds(),
	})
}

// MetricsJSON is the expvar-style /metrics body.
type MetricsJSON struct {
	QueueDepth     int              `json:"queue_depth"`
	QueueCapacity  int              `json:"queue_capacity"`
	Workers        int              `json:"workers"`
	Jobs           map[string]int64 `json:"jobs"` // by terminal status
	AdmissionWaits int64            `json:"admission_waits"`

	PlanCache sim.PlanCacheStats `json:"plan_cache"`
	// PlanCacheShards breaks the plan-cache counters down per lock
	// shard (empty when caching is disabled) — skew here means one
	// structural family is hammering a single shard's mutex.
	PlanCacheShards []sim.PlanCacheStats `json:"plan_cache_shards,omitempty"`

	Budget struct {
		LimitBytes int64 `json:"limit_bytes"`
		UsedBytes  int64 `json:"used_bytes"`
		PeakBytes  int64 `json:"peak_bytes"`
		// AdmittedBytes is the admission ledger: the sum of running
		// jobs' declared estimates.
		AdmittedBytes int64 `json:"admitted_bytes"`
	} `json:"memory_budget"`

	// Optimizer exposes the engine's cumulative query-optimizer rule
	// counters (process-wide, across every engine instance the service
	// created): plans_optimized, plans_with_stats, and per-rule firing
	// counts (pushdowns, cte_inlined, build_flips, ...).
	Optimizer map[string]int64 `json:"optimizer"`

	// Kernels exposes the engine's cumulative gate-stage kernel-tier
	// counters (process-wide): compiles, cache_hits, executions,
	// fallbacks, and per-reason fallback_<reason> counts.
	Kernels map[string]int64 `json:"kernels"`

	// Storage exposes the engine's cumulative sparsity-first storage
	// counters (process-wide): morsels_skipped, chunks_skipped,
	// encoded_rle, encoded_dict, encoded_sparse, encoded_chunk_cols,
	// decode_fallbacks, and kernel_encoded_binds.
	Storage map[string]int64 `json:"storage"`

	Backends map[string]BackendLatency `json:"backends"`

	// Phases holds latency histograms per job phase: queue, run, total
	// (every job), translate/stages/query/emit (traced SQL-backend
	// jobs), and joblog_fsync (one observation per durable log append).
	Phases map[string]BackendLatency `json:"phases"`

	// Tenants breaks queue/run/quota state down per tenant.
	Tenants map[string]TenantMetrics `json:"tenants"`

	// JobLog reports persistent-job-log state: whether durability is
	// on, how many records this process appended, and what the last
	// restart replayed (including corrupt tail records skipped).
	JobLog JobLogMetrics `json:"job_log"`
}

// TenantMetrics is one tenant's scheduling and quota state on the wire.
type TenantMetrics struct {
	Queued  int `json:"queued"`
	Running int `json:"running"`
	// AdmittedBytes is the sum of this tenant's running jobs' declared
	// estimates (bounded by Config.TenantMaxBytes when set).
	AdmittedBytes int64 `json:"admitted_bytes"`
	// Jobs counts this tenant's finished jobs by terminal status.
	Jobs map[string]int64 `json:"jobs,omitempty"`
	// Latency summarizes this tenant's terminal-job run latencies
	// (all terminal statuses, failures included).
	Latency BackendLatency `json:"latency"`
}

// JobLogMetrics is the persistent job log's state on the wire.
type JobLogMetrics struct {
	Enabled bool `json:"enabled"`
	// AppendedRecords counts records written by this process.
	AppendedRecords int64 `json:"appended_records"`
	// Replay summarizes what the last restart recovered.
	Replay ReplayStats `json:"replay"`
}

// Metrics snapshots the service counters (also used by the bench
// harness in-process).
func (s *Server) Metrics() MetricsJSON {
	m := s.manager
	statuses, backends, tenantJobs, tenantLat, phases := m.metrics.snapshot()
	out := MetricsJSON{
		QueueCapacity:   m.cfg.QueueDepth,
		Workers:         m.cfg.Workers,
		Jobs:            statuses,
		AdmissionWaits:  m.metrics.admissionWaits.Load(),
		PlanCache:       m.PlanCacheStats(),
		PlanCacheShards: m.PlanCacheShardStats(),
		Optimizer:       sqlengine.OptimizerCounters(),
		Kernels:         sqlengine.KernelCounters(),
		Storage:         sqlengine.StorageCounters(),
		Backends:        backends,
		Phases:          phases,
		Tenants:         map[string]TenantMetrics{},
	}
	out.Budget.LimitBytes = m.budget.Limit()
	out.Budget.UsedBytes = m.budget.Used()
	out.Budget.PeakBytes = m.budget.Peak()
	out.JobLog.Replay = m.replay

	m.mu.Lock()
	out.QueueDepth = m.queuedTotal
	out.Budget.AdmittedBytes = m.admitted
	for name, ts := range m.tenants {
		out.Tenants[name] = TenantMetrics{
			Queued:        len(ts.queue),
			Running:       ts.running,
			AdmittedBytes: ts.admitted,
			Jobs:          tenantJobs[name],
			Latency:       tenantLat[name],
		}
	}
	if m.log != nil {
		out.JobLog.Enabled = true
		out.JobLog.AppendedRecords = m.log.Appended()
	}
	m.mu.Unlock()
	// Tenants only seen in finished-job counters (e.g. evicted queues).
	for name, jobs := range tenantJobs {
		if _, ok := out.Tenants[name]; !ok {
			out.Tenants[name] = TenantMetrics{Jobs: jobs, Latency: tenantLat[name]}
		}
	}
	return out
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}
