package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"qymera/internal/obs"
)

// The slow-query log captures full traces of outlier jobs. /metrics
// tells you *that* p99 moved; the slow log keeps the evidence — every
// job whose submit→finish latency reaches Config.SlowQueryMillis is
// appended to DataDir/slow_queries.ndjson as one JSON object per line,
// complete span tree included, so the phase that blew the budget can
// be read off after the fact without reproducing the workload.

const slowLogName = "slow_queries.ndjson"

// slowQueryRecord is one slow job on disk.
type slowQueryRecord struct {
	JobID        string        `json:"job_id"`
	Tenant       string        `json:"tenant"`
	Backend      string        `json:"backend,omitempty"`
	Status       string        `json:"status"`
	TotalSeconds float64       `json:"total_seconds"`
	FinishedAt   time.Time     `json:"finished_at"`
	Trace        *obs.SpanJSON `json:"trace,omitempty"`
}

// slowLog appends slow-job traces as NDJSON. Unlike the job log it is
// diagnostic, not durable: appends are not fsynced and an append error
// is swallowed (a slow trace is never worth failing a job over).
type slowLog struct {
	mu     sync.Mutex
	f      *os.File
	thresh time.Duration
	// recorded counts slow jobs written by this process (for /metrics).
	recorded int64
}

// openSlowLog opens (creating if needed) the slow-query log.
func openSlowLog(dir string, thresh time.Duration) (*slowLog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: slow-query log dir: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, slowLogName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: slow-query log: %w", err)
	}
	return &slowLog{f: f, thresh: thresh}, nil
}

// maybeRecord appends the job when its total latency reaches the
// threshold.
func (l *slowLog) maybeRecord(id, tenant, backend, status string, finished time.Time, total time.Duration, trace *obs.SpanJSON) {
	if total < l.thresh {
		return
	}
	line, err := json.Marshal(slowQueryRecord{
		JobID:        id,
		Tenant:       tenant,
		Backend:      backend,
		Status:       status,
		TotalSeconds: total.Seconds(),
		FinishedAt:   finished,
		Trace:        trace,
	})
	if err != nil {
		return
	}
	line = append(line, '\n')
	l.mu.Lock()
	if _, err := l.f.Write(line); err == nil {
		l.recorded++
	}
	l.mu.Unlock()
}

// Recorded reports how many slow jobs this process has logged.
func (l *slowLog) Recorded() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recorded
}

// Close closes the underlying file.
func (l *slowLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}
