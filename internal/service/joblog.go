package service

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// The persistent job log makes qymerad durable: every job lifecycle
// transition is appended to one file (DataDir/jobs.qlog) and fsynced
// before the transition becomes externally visible, so a crashed server
// can replay the log on restart — completed jobs keep their results
// queryable, and jobs that were queued or running when the process died
// are re-enqueued and re-executed (the engine is deterministic, so the
// re-run's amplitudes are bit-identical to what the uninterrupted run
// would have produced).
//
// On-disk format: a sequence of framed records,
//
//	[uint32 LE payload length][uint32 LE CRC-32 (IEEE) of payload][payload]
//
// where the payload is one JSON-encoded logRecord. The frame makes the
// log self-describing and crash-tolerant: a torn final write (short
// frame, short payload, or checksum mismatch) is detected on replay,
// counted, and the file is truncated back to its last valid record —
// a corrupt tail is a warning, never a boot failure.

// logRecord is one job lifecycle transition on disk.
type logRecord struct {
	// Type is the transition: "submit", "start", "done", "fail",
	// "cancel".
	Type   string    `json:"type"`
	JobID  string    `json:"job_id"`
	Tenant string    `json:"tenant,omitempty"`
	Time   time.Time `json:"time"`
	// Request is the original wire request (submit records), replayed
	// through the normal validation path on restart.
	Request json.RawMessage `json:"request,omitempty"`
	// Result is the completed simulation (done records); JSON float64s
	// round-trip exactly, so replayed amplitudes stay bit-identical.
	Result *ResultJSON `json:"result,omitempty"`
	// Error carries the failure text (fail records).
	Error string `json:"error,omitempty"`
}

const (
	jobLogName = "jobs.qlog"
	// maxLogRecord bounds a single record frame; larger length prefixes
	// mark a corrupt log, not a real record.
	maxLogRecord = 1 << 30
)

// jobLog appends framed records to the log file. Append is
// goroutine-safe and durable: each record is written and fsynced before
// Append returns.
type jobLog struct {
	mu   sync.Mutex
	f    *os.File
	path string
	// appended counts records written by this process (for /metrics).
	appended int64
	// observe, when set, receives each Append's fsync duration (the
	// manager wires it to the phase.joblog_fsync histogram). Set before
	// the first Append, never changed after.
	observe func(time.Duration)
}

// jobLogPath locates the log inside a data directory.
func jobLogPath(dir string) string { return filepath.Join(dir, jobLogName) }

// openJobLog opens (creating if needed) the log for appending.
func openJobLog(dir string) (*jobLog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: job log dir: %w", err)
	}
	path := jobLogPath(dir)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: job log: %w", err)
	}
	return &jobLog{f: f, path: path}, nil
}

// Append frames, writes, and fsyncs one record.
func (l *jobLog) Append(rec logRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("service: job log encode: %w", err)
	}
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))

	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.Write(frame[:]); err != nil {
		return fmt.Errorf("service: job log write: %w", err)
	}
	if _, err := l.f.Write(payload); err != nil {
		return fmt.Errorf("service: job log write: %w", err)
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("service: job log sync: %w", err)
	}
	if l.observe != nil {
		l.observe(time.Since(start))
	}
	l.appended++
	return nil
}

// Appended reports how many records this process has written.
func (l *jobLog) Appended() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

// Close closes the underlying file.
func (l *jobLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// replayJobLog reads every valid record from the log at path. A
// truncated or checksum-corrupt tail stops the scan: the bad suffix is
// counted in corrupt and the file is truncated back to the last valid
// record so subsequent appends extend a clean log. A missing file
// replays as empty.
func replayJobLog(path string) (recs []logRecord, corrupt int, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("service: job log open: %w", err)
	}
	defer f.Close()

	r := bufio.NewReader(f)
	var validEnd int64
	for {
		var frame [8]byte
		if _, err := io.ReadFull(r, frame[:]); err != nil {
			if err != io.EOF {
				corrupt++ // torn frame header
			}
			break
		}
		n := binary.LittleEndian.Uint32(frame[0:4])
		sum := binary.LittleEndian.Uint32(frame[4:8])
		if n > maxLogRecord {
			corrupt++
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			corrupt++ // torn payload
			break
		}
		if crc32.ChecksumIEEE(payload) != sum {
			corrupt++
			break
		}
		var rec logRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			corrupt++
			break
		}
		recs = append(recs, rec)
		validEnd += 8 + int64(n)
	}

	if corrupt > 0 {
		if err := os.Truncate(path, validEnd); err != nil {
			return recs, corrupt, fmt.Errorf("service: job log truncate after corrupt tail: %w", err)
		}
	}
	return recs, corrupt, nil
}

// ReplayStats summarizes what a restart recovered from the job log.
type ReplayStats struct {
	// Records is how many valid records the log held at boot.
	Records int `json:"records"`
	// CompletedKept counts terminal jobs (done/failed/cancelled) whose
	// state — including done jobs' results — stayed queryable.
	CompletedKept int `json:"completed_kept"`
	// Requeued counts jobs that were queued or running at the crash and
	// were re-enqueued for re-execution.
	Requeued int `json:"requeued"`
	// CorruptRecords counts torn or checksum-corrupt tail records that
	// were skipped (and truncated away) with a warning.
	CorruptRecords int `json:"corrupt_records"`
}
