package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"qymera/internal/circuits"
)

// checkLedgerInvariants recomputes every scheduler ledger from first
// principles and compares: the shared admission ledger must equal the
// sum of running jobs' reservations, per-tenant ledgers must match
// per-tenant sums, and no ledger may exceed its configured cap.
func checkLedgerInvariants(t *testing.T, m *Manager) {
	t.Helper()
	m.mu.Lock()
	defer m.mu.Unlock()
	var sum int64
	perTenantBytes := map[string]int64{}
	perTenantRunning := map[string]int{}
	queued := 0
	for _, j := range m.jobs {
		switch j.status {
		case JobRunning:
			sum += j.admittedBytes
			perTenantBytes[j.tenant] += j.admittedBytes
			perTenantRunning[j.tenant]++
		case JobQueued:
			queued++
		default:
			if j.admittedBytes != 0 {
				t.Errorf("terminal job %s still holds %d admitted bytes", j.ID, j.admittedBytes)
			}
		}
	}
	if sum != m.admitted {
		t.Errorf("admission ledger %d != sum of running reservations %d", m.admitted, sum)
	}
	if lim := m.budget.Limit(); lim > 0 && m.admitted > lim {
		t.Errorf("admission ledger %d exceeds budget limit %d", m.admitted, lim)
	}
	if queued != m.queuedTotal {
		t.Errorf("queuedTotal %d != %d queued jobs", m.queuedTotal, queued)
	}
	for name, ts := range m.tenants {
		if ts.admitted != perTenantBytes[name] {
			t.Errorf("tenant %s ledger %d != running sum %d", name, ts.admitted, perTenantBytes[name])
		}
		if ts.running != perTenantRunning[name] {
			t.Errorf("tenant %s running %d != %d running jobs", name, ts.running, perTenantRunning[name])
		}
		if q := m.cfg.TenantMaxBytes; q > 0 && ts.admitted > q {
			t.Errorf("tenant %s ledger %d exceeds quota %d", name, ts.admitted, q)
		}
		if q := m.cfg.TenantMaxRunning; q > 0 && ts.running > q {
			t.Errorf("tenant %s has %d running, cap %d", name, ts.running, q)
		}
	}
}

func TestTenantQuotaRejections(t *testing.T) {
	m := NewManager(Config{
		Workers:         1,
		QueueDepth:      64,
		TenantMaxQueued: 2,
		TenantMaxBytes:  1 << 20,
	})
	defer m.Close()

	// An estimate that can never fit the tenant byte quota: 422-class.
	doc := circuitDoc(t, circuits.GHZ(3))
	_, err := m.Submit(Request{Circuit: doc, Tenant: "a", Options: RequestOptions{EstimatedBytes: 1<<20 + 1}})
	if !errors.Is(err, ErrTenantOverBudget) {
		t.Fatalf("want ErrTenantOverBudget, got %v", err)
	}

	// Fill tenant a's queue: the worker is busy with the blocker, so
	// subsequent jobs stay queued until the per-tenant cap rejects.
	blocker, err := m.Submit(Request{Circuit: circuitDoc(t, circuits.ParitySuperposition(16)), Tenant: "a"})
	if err != nil {
		t.Fatal(err)
	}
	sawTenantFull := false
	for i := 0; i < 8; i++ {
		_, err := m.Submit(Request{Circuit: doc, Tenant: "a"})
		if err != nil {
			if !errors.Is(err, ErrTenantQueueFull) {
				t.Fatalf("want ErrTenantQueueFull, got %v", err)
			}
			sawTenantFull = true
			break
		}
	}
	if !sawTenantFull {
		t.Fatal("tenant queue never filled")
	}
	// Another tenant is unaffected by a's full queue.
	if _, err := m.Submit(Request{Circuit: doc, Tenant: "b"}); err != nil {
		t.Fatalf("tenant b rejected by a's quota: %v", err)
	}
	checkLedgerInvariants(t, m)
	m.Cancel(blocker.ID)
}

// TestTenantMaxRunning: with a per-tenant running cap of 1 and two
// workers, one tenant's second job must wait even though a worker is
// free — and another tenant's job takes that worker instead.
func TestTenantMaxRunning(t *testing.T) {
	m := NewManager(Config{Workers: 2, TenantMaxRunning: 1})
	defer m.Close()
	slow := circuitDoc(t, circuits.ParitySuperposition(16))
	fast := circuitDoc(t, circuits.GHZ(3))

	a1, err := m.Submit(Request{Circuit: slow, Tenant: "a"})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := m.Submit(Request{Circuit: fast, Tenant: "a"})
	if err != nil {
		t.Fatal(err)
	}
	b1, err := m.Submit(Request{Circuit: fast, Tenant: "b"})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	// b's job finishes on the second worker while a's first still runs.
	if _, err := m.Wait(ctx, b1.ID); err != nil {
		t.Fatal(err)
	}
	m.mu.Lock()
	a1Running, a2Status := a1.status == JobRunning, a2.status
	m.mu.Unlock()
	if a1Running && a2Status != JobQueued {
		t.Fatalf("tenant a over its running cap: a1 running and a2 %s", a2Status)
	}
	checkLedgerInvariants(t, m)
	for _, j := range []*Job{a1, a2} {
		if _, err := m.Wait(ctx, j.ID); err != nil {
			t.Fatal(err)
		}
	}
	checkLedgerInvariants(t, m)
}

// TestDRRFairInterleaving: with one worker and a backlog from a heavy
// tenant, a light tenant's few jobs must not wait behind the whole
// heavy backlog — deficit round robin interleaves them, so the light
// tenant's last job finishes well before the heavy tenant's.
func TestDRRFairInterleaving(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close()
	doc := circuitDoc(t, circuits.GHZ(4))

	// Blocker pins the worker while both backlogs queue up.
	blocker, err := m.Submit(Request{Circuit: circuitDoc(t, circuits.ParitySuperposition(16)), Tenant: "heavy"})
	if err != nil {
		t.Fatal(err)
	}
	var heavy, light []*Job
	for i := 0; i < 8; i++ {
		j, err := m.Submit(Request{Circuit: doc, Tenant: "heavy"})
		if err != nil {
			t.Fatal(err)
		}
		heavy = append(heavy, j)
	}
	for i := 0; i < 2; i++ {
		j, err := m.Submit(Request{Circuit: doc, Tenant: "light"})
		if err != nil {
			t.Fatal(err)
		}
		light = append(light, j)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for _, j := range append(append([]*Job{blocker}, heavy...), light...) {
		if _, err := m.Wait(ctx, j.ID); err != nil {
			t.Fatal(err)
		}
	}
	m.mu.Lock()
	lightLast := light[len(light)-1].finished
	heavyLast := heavy[len(heavy)-1].finished
	heavyBefore := 0
	for _, j := range heavy {
		if j.finished.Before(lightLast) {
			heavyBefore++
		}
	}
	m.mu.Unlock()
	if !lightLast.Before(heavyLast) {
		t.Fatalf("light tenant starved: its last job finished at %v, after heavy's last at %v", lightLast, heavyLast)
	}
	// Interleaving, not mere completion: at most a handful of the 8
	// heavy jobs may precede light's last (round robin ⇒ about 2).
	if heavyBefore > 4 {
		t.Fatalf("light tenant waited behind %d of 8 heavy jobs; DRR should interleave", heavyBefore)
	}
	checkLedgerInvariants(t, m)
}

// TestSchedulerPropertyRandom drives a randomized submit/cancel storm
// against the scheduler at 1 and 4 workers, checking the ledger
// invariants throughout (admitted == sum of running estimates, caps
// never exceeded) and that every admitted job eventually terminates —
// with no tenant starved. Run under -race in CI.
func TestSchedulerPropertyRandom(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const limit = 1 << 20
			rng := rand.New(rand.NewSource(int64(0xD0FA + workers)))
			m := NewManager(Config{
				Workers:          workers,
				QueueDepth:       256,
				MemoryBudget:     limit,
				TenantMaxRunning: 3,
				TenantMaxBytes:   limit / 2,
			})
			defer m.Close()

			tenants := []string{"alpha", "beta", "gamma"}
			circuitsPool := [][]byte{
				circuitDoc(t, circuits.GHZ(3)),
				circuitDoc(t, circuits.GHZ(4)),
				circuitDoc(t, circuits.QFT(3)),
			}
			estimates := []int64{0, limit / 16, limit / 8, limit / 4, limit / 2}

			var jobs []*Job
			submittedPerTenant := map[string]int{}
			const ops = 120
			for op := 0; op < ops; op++ {
				tenant := tenants[rng.Intn(len(tenants))]
				req := Request{
					Circuit: circuitsPool[rng.Intn(len(circuitsPool))],
					Tenant:  tenant,
					Options: RequestOptions{EstimatedBytes: estimates[rng.Intn(len(estimates))]},
				}
				j, err := m.Submit(req)
				switch {
				case err == nil:
					jobs = append(jobs, j)
					submittedPerTenant[tenant]++
				case errors.Is(err, ErrQueueFull), errors.Is(err, ErrTenantQueueFull):
					// Legitimate backpressure under the storm.
				default:
					t.Fatalf("op %d: %v", op, err)
				}
				// Random cancellations: sometimes the job just
				// submitted (the queued-cancel window), sometimes an
				// older one (likely running or terminal).
				if len(jobs) > 0 && rng.Intn(4) == 0 {
					victim := jobs[len(jobs)-1]
					if rng.Intn(2) == 0 {
						victim = jobs[rng.Intn(len(jobs))]
					}
					if err := m.Cancel(victim.ID); err != nil && !errors.Is(err, ErrNotFound) {
						t.Fatalf("cancel %s: %v", victim.ID, err)
					}
				}
				if op%10 == 9 {
					checkLedgerInvariants(t, m)
				}
			}

			// Every admitted job must terminate.
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			defer cancel()
			for _, j := range jobs {
				if _, err := m.Wait(ctx, j.ID); err != nil {
					t.Fatalf("job %s never terminated: %v", j.ID, err)
				}
			}
			checkLedgerInvariants(t, m)
			m.mu.Lock()
			if m.admitted != 0 {
				t.Errorf("drained scheduler still holds %d admitted bytes", m.admitted)
			}
			if m.queuedTotal != 0 {
				t.Errorf("drained scheduler still has %d queued jobs", m.queuedTotal)
			}
			m.mu.Unlock()
			// No tenant starved: every tenant that submitted saw
			// terminal jobs.
			_, _, tenantJobs, _, _ := m.metrics.snapshot()
			for tenant, n := range submittedPerTenant {
				if n == 0 {
					continue
				}
				var finished int64
				for _, c := range tenantJobs[tenant] {
					finished += c
				}
				if finished == 0 {
					t.Errorf("tenant %s submitted %d jobs but finished none", tenant, n)
				}
			}
		})
	}
}

// TestAdmittedBytesReleasedOnImmediateCancel is the regression test for
// the admission-ledger leak window: hammering submit + immediate
// DELETE (some jobs cancelled while queued, some after dispatch) must
// leave /metrics admitted_bytes at exactly 0 once everything settles —
// every reservation released exactly once.
func TestAdmittedBytesReleasedOnImmediateCancel(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, MemoryBudget: 1 << 30, QueueDepth: 256})
	doc := circuitDoc(t, circuits.ParitySuperposition(15))

	const clients, perClient = 4, 12
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp := postJSON(t, ts.URL+"/v1/jobs", Request{
					Circuit: doc,
					Options: RequestOptions{EstimatedBytes: 1 << 20},
				})
				if resp.StatusCode != http.StatusAccepted {
					resp.Body.Close()
					t.Errorf("submit status %d", resp.StatusCode)
					return
				}
				job := decodeBody[JobJSON](t, resp)
				req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+job.ID, nil)
				r, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				r.Body.Close()
			}
		}()
	}
	wg.Wait()

	// Wait for the storm to settle: no queued or running jobs left.
	deadline := time.Now().Add(60 * time.Second)
	for {
		metrics := s.Metrics()
		busy := metrics.QueueDepth
		for _, tm := range metrics.Tenants {
			busy += tm.Running
		}
		if busy == 0 {
			if got := metrics.Budget.AdmittedBytes; got != 0 {
				t.Fatalf("admitted_bytes leaked: %d, want 0", got)
			}
			for name, tm := range metrics.Tenants {
				if tm.AdmittedBytes != 0 {
					t.Fatalf("tenant %s leaked %d admitted bytes", name, tm.AdmittedBytes)
				}
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("storm never settled: %+v", metrics)
		}
		time.Sleep(10 * time.Millisecond)
	}
	checkLedgerInvariants(t, s.Manager())
}
