package service

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"testing"
	"time"

	"qymera/internal/circuits"
	"qymera/internal/quantum"
	"qymera/internal/sim"
)

// circuitDoc renders a circuit as the request JSON document.
func circuitDoc(t *testing.T, c *quantum.Circuit) json.RawMessage {
	t.Helper()
	doc := struct {
		NumQubits int `json:"num_qubits"`
		Gates     []struct {
			Name   string    `json:"name"`
			Qubits []int     `json:"qubits"`
			Params []float64 `json:"params,omitempty"`
		} `json:"gates"`
	}{NumQubits: c.NumQubits()}
	for _, g := range c.Gates() {
		doc.Gates = append(doc.Gates, struct {
			Name   string    `json:"name"`
			Qubits []int     `json:"qubits"`
			Params []float64 `json:"params,omitempty"`
		}{g.Name, g.Qubits, g.Params})
	}
	out, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func statesEqualBits(t *testing.T, want *quantum.State, got []Amplitude) {
	t.Helper()
	if want.Len() != len(got) {
		t.Fatalf("nonzero counts differ: want %d, got %d", want.Len(), len(got))
	}
	for _, a := range got {
		w := want.Amplitude(a.S)
		if math.Float64bits(real(w)) != math.Float64bits(a.R) ||
			math.Float64bits(imag(w)) != math.Float64bits(a.I) {
			t.Fatalf("amplitude at |%d⟩ differs: want %v, got (%v,%v)", a.S, w, a.R, a.I)
		}
	}
}

// TestRunSyncAllBackendsBitIdentical is the end-to-end acceptance
// check: every backend served through the manager produces amplitudes
// bit-identical to a direct in-process run.
func TestRunSyncAllBackendsBitIdentical(t *testing.T) {
	m := NewManager(Config{Workers: 2})
	defer m.Close()
	c := circuits.GHZ(8)
	doc := circuitDoc(t, c)

	direct := map[string]sim.Backend{
		"sql":         &sim.SQL{},
		"sql-chain":   &sim.SQL{Mode: 1},
		"statevector": &sim.StateVector{},
		"sparse":      &sim.Sparse{},
		"mps":         &sim.MPS{},
		"dd":          &sim.DD{},
	}
	for name, b := range direct {
		want, err := b.Run(c)
		if err != nil {
			t.Fatalf("%s direct: %v", name, err)
		}
		res, err := m.RunSync(context.Background(), Request{Circuit: doc, Backend: name})
		if err != nil {
			t.Fatalf("%s via service: %v", name, err)
		}
		statesEqualBits(t, want.State, stateAmplitudes(res.State))
	}
}

func TestAsyncJobLifecycle(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close()
	j, err := m.Submit(Request{Circuit: circuitDoc(t, circuits.QFT(5))})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := m.Wait(ctx, j.ID); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot(j, true)
	if snap.Status != string(JobDone) {
		t.Fatalf("status %s (err %q)", snap.Status, snap.Error)
	}
	if snap.Result == nil || len(snap.Result.Amplitudes) == 0 {
		t.Fatal("done job has no result")
	}
	if snap.Result.Stats.Backend != "sql" {
		t.Fatalf("stats backend %q", snap.Result.Stats.Backend)
	}
}

func TestCancelRunningJob(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close()
	// Big enough that cancellation lands mid-run.
	j, err := m.Submit(Request{Circuit: circuitDoc(t, circuits.ParitySuperposition(16))})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until it is actually running, then cancel.
	deadline := time.Now().Add(10 * time.Second)
	for {
		m.mu.Lock()
		st := j.status
		m.mu.Unlock()
		if st == JobRunning || st.terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if err := m.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	ctx, cancelCtx := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelCtx()
	if _, err := m.Wait(ctx, j.ID); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot(j, false)
	if snap.Status != string(JobCancelled) && snap.Status != string(JobDone) {
		t.Fatalf("status %s", snap.Status)
	}
	if snap.Status == string(JobDone) {
		t.Skip("job finished before cancellation landed")
	}
	// The cancelled job's engine reservations must all be released.
	if used := m.Budget().Used(); used != 0 {
		t.Fatalf("cancelled job leaked %d budget bytes", used)
	}
}

func TestQueueFullRejects(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueDepth: 1})
	defer m.Close()
	doc := circuitDoc(t, circuits.ParitySuperposition(15))
	// Fill the single worker + the single queue slot, then overflow.
	var jobs []*Job
	sawFull := false
	for i := 0; i < 8; i++ {
		j, err := m.Submit(Request{Circuit: doc})
		if err != nil {
			if !errors.Is(err, ErrQueueFull) {
				t.Fatal(err)
			}
			sawFull = true
			break
		}
		jobs = append(jobs, j)
	}
	if !sawFull {
		t.Fatal("queue never filled")
	}
	for _, j := range jobs {
		m.Cancel(j.ID)
	}
}

// TestAdmissionControl: a job whose declared estimate does not fit the
// admission ledger (sum of running estimates vs the budget limit)
// stays queued until the blocking job finishes.
func TestAdmissionControl(t *testing.T) {
	// Generous limit: the ledger, not actual engine memory, is the
	// constraint — the blocker's estimate fills 3/4 of it.
	const limit = 256 << 20
	m := NewManager(Config{Workers: 2, MemoryBudget: limit})
	defer m.Close()

	// A job whose estimate can never fit is rejected outright.
	doc := circuitDoc(t, circuits.GHZ(4))
	if _, err := m.Submit(Request{Circuit: doc, Options: RequestOptions{EstimatedBytes: limit + 1}}); !errors.Is(err, ErrOverBudget) {
		t.Fatalf("want ErrOverBudget, got %v", err)
	}

	// The blocker runs long enough to observe the waiter being held.
	blocker, err := m.Submit(Request{Circuit: circuitDoc(t, circuits.ParitySuperposition(16)), Options: RequestOptions{EstimatedBytes: limit * 3 / 4}})
	if err != nil {
		t.Fatal(err)
	}
	waiter, err := m.Submit(Request{Circuit: doc, Options: RequestOptions{EstimatedBytes: limit / 2}})
	if err != nil {
		t.Fatal(err)
	}

	// While the blocker runs, the waiter must be held in admission
	// (3/4 + 1/2 > 1) even though a worker is free.
	deadline := time.Now().Add(10 * time.Second)
	for {
		m.mu.Lock()
		blockerRunning := blocker.status == JobRunning
		m.mu.Unlock()
		if blockerRunning || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	m.mu.Lock()
	if blocker.status == JobRunning {
		if waiter.status != JobQueued {
			m.mu.Unlock()
			t.Fatalf("waiter not held back: status %s", waiter.status)
		}
	}
	m.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if _, err := m.Wait(ctx, blocker.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(ctx, waiter.ID); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{blocker.ID, waiter.ID} {
		j, _ := m.Job(id)
		if snap := m.Snapshot(j, false); snap.Status != string(JobDone) {
			t.Fatalf("job %s: status %s (err %q)", id, snap.Status, snap.Error)
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.admitted != 0 {
		t.Fatalf("admission ledger leaked: %d bytes", m.admitted)
	}
}

// TestPlanCacheSharedAcrossRequests: repeated circuits served by
// different requests hit the shared cache.
func TestPlanCacheSharedAcrossRequests(t *testing.T) {
	m := NewManager(Config{Workers: 2})
	defer m.Close()
	doc := circuitDoc(t, circuits.GHZ(6))
	for i := 0; i < 3; i++ {
		if _, err := m.RunSync(context.Background(), Request{Circuit: doc}); err != nil {
			t.Fatal(err)
		}
	}
	st := m.PlanCacheStats()
	if st.Hits < 2 {
		t.Fatalf("expected >= 2 exact cache hits, got %+v", st)
	}
}

func TestBadRequests(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close()
	cases := []Request{
		{},                                 // no circuit
		{Circuit: json.RawMessage(`{"x"`)}, // invalid JSON
		{Circuit: circuitDoc(t, circuits.GHZ(3)), Backend: "quantum-annealer"},
		{Circuit: circuitDoc(t, circuits.GHZ(3)), Options: RequestOptions{Fusion: "maximal"}},
		{Circuit: circuitDoc(t, circuits.GHZ(3)), Options: RequestOptions{Layout: "paged"}},
	}
	for i, req := range cases {
		if _, err := m.Submit(req); err == nil {
			t.Errorf("case %d: bad request accepted", i)
		}
	}
}

func TestManagerCloseCancelsQueued(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueDepth: 8})
	doc := circuitDoc(t, circuits.ParitySuperposition(15))
	var jobs []*Job
	for i := 0; i < 4; i++ {
		j, err := m.Submit(Request{Circuit: doc})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	m.Close()
	for _, j := range jobs {
		select {
		case <-j.done:
		default:
			t.Fatalf("job %s not finished after Close", j.ID)
		}
	}
	if used := m.Budget().Used(); used != 0 {
		t.Fatalf("Close leaked %d budget bytes", used)
	}
	if _, err := m.Submit(Request{Circuit: doc}); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestJobEviction(t *testing.T) {
	m := NewManager(Config{Workers: 1, RetainJobs: 2})
	defer m.Close()
	doc := circuitDoc(t, circuits.GHZ(3))
	var last *Job
	for i := 0; i < 5; i++ {
		j, err := m.Submit(Request{Circuit: doc})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if _, err := m.Wait(ctx, j.ID); err != nil {
			t.Fatal(err)
		}
		cancel()
		last = j
	}
	// One more submission triggers eviction down to RetainJobs.
	if _, err := m.Submit(Request{Circuit: doc}); err != nil {
		t.Fatal(err)
	}
	if n := len(m.Jobs()); n > 4 { // 2 retained finished + up to 2 live
		t.Fatalf("retained %d jobs, want <= 4", n)
	}
	if _, err := m.Job(last.ID); err != nil && !errors.Is(err, ErrNotFound) {
		t.Fatal(err)
	}
}
