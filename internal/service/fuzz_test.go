package service

import (
	"bytes"
	"net/http/httptest"
	"testing"
)

// FuzzSimulateRequest pushes arbitrary bytes through the same path an
// HTTP body takes — decodeRequest (JSON decode + tenant header
// override) then parseRequest (circuit document, backend, options, and
// tenant validation). The contract under fuzz: errors are fine, panics
// are bugs. Simulations are never run; this fuzzes parsing only.
func FuzzSimulateRequest(f *testing.F) {
	f.Add([]byte(`{"circuit":{"num_qubits":2,"gates":[{"name":"H","qubits":[0]},{"name":"CX","qubits":[0,1]}]}}`), "")
	f.Add([]byte(`{"circuit":{"num_qubits":1,"gates":[]},"backend":"mps","tenant":"a-b.c_d"}`), "team-9")
	f.Add([]byte(`{"circuit":{"num_qubits":3,"gates":[{"name":"RZ","qubits":[2],"params":[0.5]}]},"options":{"mode":"materialized-chain","fusion":"subset","encoding":"arithmetic","estimated_bytes":1024}}`), "")
	f.Add([]byte(`{"circuit":{"num_qubits":0,"gates":null}}`), "")
	f.Add([]byte(`{"circuit":"not an object"}`), "")
	f.Add([]byte(`{"circuit":{"num_qubits":2,"gates":[{"name":"CX","qubits":[0,0]}]}}`), "")
	f.Add([]byte(`{"circuit":{"num_qubits":-5}}`), "\x00")
	f.Add([]byte(`{`), "")
	f.Add([]byte(`[]`), "")
	f.Add([]byte(``), "tenant/with/slashes")

	f.Fuzz(func(t *testing.T, body []byte, tenant string) {
		if len(body) > 1<<16 {
			return // bound fuzz cost; the interesting shapes are small
		}
		r := httptest.NewRequest("POST", "/v1/jobs", bytes.NewReader(body))
		if tenant != "" {
			// Header.Set panics on invalid header values in some Go
			// versions only at write time, not set time, so this is safe
			// — and the override path must canonicalize whatever arrives.
			r.Header["X-Qymera-Tenant"] = []string{tenant}
		}
		req, err := decodeRequest(r)
		if err != nil {
			return
		}
		parsed, err := parseRequest(req)
		if err != nil {
			return
		}
		// Accepted requests must have passed canonicalization.
		if parsed.circuit == nil {
			t.Fatal("parseRequest returned nil circuit without error")
		}
		if parsed.tenant == "" {
			t.Fatal("parseRequest returned empty tenant without error")
		}
		if _, err := canonicalTenant(parsed.tenant); err != nil {
			t.Fatalf("accepted tenant %q fails its own validation: %v", parsed.tenant, err)
		}
		if parsed.estimate < 0 {
			t.Fatalf("accepted negative estimate %d", parsed.estimate)
		}
	})
}
