// Package service is Qymera's system tier: a production-shaped
// concurrent simulation server over the simulation backends.
//
// The paper's pitch is that an RDBMS makes quantum simulation
// *serviceable* infrastructure; this package supplies the service. It
// stacks three mechanisms on the engine:
//
//   - a job Manager — a bounded worker pool draining per-tenant FIFO
//     queues by deficit round robin (scheduler.go), with per-tenant
//     quotas (max running, max queued, admitted-bytes), per-job status
//     and timing, admission control against the engine's shared memory
//     budget (every per-request engine instance reserves from one
//     *sqlengine.MemBudget), a persistent job log replayed on restart
//     (joblog.go), and engine-level cancellation: cancelling a job
//     aborts its in-flight gate-stage query at the next batch/morsel
//     boundary, releasing all reservations and worker goroutines;
//
//   - a plan cache — an LRU over translated SQL programs keyed by
//     circuit fingerprints (sim.PlanCache), shared by every request, so
//     repeated circuits skip translation entirely and parameter sweeps
//     reuse the SQL text, rebinding only the numeric gate tables;
//
//   - an HTTP API (see docs/SERVICE.md) — POST /v1/simulate for
//     synchronous runs (JSON or NDJSON amplitude streaming), POST
//     /v1/jobs + GET /v1/jobs/{id} + DELETE /v1/jobs/{id} for the
//     asynchronous lifecycle, /healthz, and an expvar-style /metrics
//     with queue depth, plan-cache hit counters, memory-budget usage,
//     and per-backend latency.
//
// cmd/qymerad wraps the package in a binary; the qymera facade's
// Client speaks the API from Go.
package service

import (
	"net/http"
	"runtime"
	"time"
)

// Config tunes a Server (zero values give sensible defaults).
type Config struct {
	// Workers is the simulation worker-pool size (default GOMAXPROCS).
	// At most this many simulations run concurrently; further requests
	// queue.
	Workers int
	// QueueDepth bounds the FIFO job queue (default 64). Submissions
	// beyond it fail fast with ErrQueueFull (HTTP 429).
	QueueDepth int
	// MemoryBudget caps the bytes the SQL engine may hold in memory
	// across ALL concurrent jobs (0 = unlimited): every per-request
	// engine instance shares one budget (overflow spills to disk), and
	// admission control holds back jobs while the sum of running jobs'
	// declared estimates would exceed it.
	MemoryBudget int64
	// PlanCacheSize is the LRU capacity of the shared plan cache
	// (default sim.DefaultPlanCacheSize; negative disables caching).
	PlanCacheSize int
	// Parallelism is the per-query morsel-parallel worker count handed
	// to the SQL engine (0 = GOMAXPROCS).
	Parallelism int
	// SpillDir hosts the engine's out-of-core temp files ("" = OS temp
	// dir).
	SpillDir string
	// RetainJobs caps how many finished jobs stay queryable (default
	// 256; the oldest finished jobs are evicted first).
	RetainJobs int
	// DataDir enables the persistent job log: every job lifecycle
	// transition is appended (and fsynced) to DataDir/jobs.qlog, and a
	// restart on the same directory replays it — completed jobs stay
	// queryable with their results, queued/running jobs are re-enqueued
	// and re-executed. Empty disables durability.
	DataDir string
	// TenantMaxRunning caps one tenant's concurrently running jobs; the
	// fair scheduler skips a tenant at its cap (0 = no per-tenant cap).
	TenantMaxRunning int
	// TenantMaxQueued caps one tenant's queued jobs; submissions beyond
	// it fail fast with ErrTenantQueueFull (HTTP 429). 0 = no cap
	// beyond the global QueueDepth.
	TenantMaxQueued int
	// TenantMaxBytes caps the sum of one tenant's running jobs'
	// declared estimates: larger single estimates are rejected with
	// ErrTenantOverBudget (HTTP 422), and jobs that fit the quota but
	// not its current headroom wait in the tenant's queue (0 = no cap).
	TenantMaxBytes int64
	// Tracing sets the server-wide span-tracing default: "" or
	// "sampled" time one operator batch in obs.SampleDefault, "full"
	// times every batch, "off" disables tracing. Each request may
	// override it with options.trace. Amplitudes are bitwise
	// independent of the setting.
	Tracing string
	// SlowQueryMillis, with DataDir set, appends the complete trace of
	// every job whose submit→finish latency reaches the threshold to
	// DataDir/slow_queries.ndjson (0 disables the slow-query log).
	SlowQueryMillis int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 256
	}
	return c
}

// Server bundles the job manager with its HTTP handler.
type Server struct {
	manager *Manager
	mux     *http.ServeMux
	started time.Time
}

// New builds a ready-to-serve simulation service. It panics when
// Config.DataDir is set but unusable; durable deployments should use
// Open. Without a DataDir, New never fails.
func New(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Open builds a ready-to-serve simulation service, replaying the
// persistent job log first when Config.DataDir is set.
func Open(cfg Config) (*Server, error) {
	m, err := OpenManager(cfg)
	if err != nil {
		return nil, err
	}
	s := &Server{
		manager: m,
		started: time.Now(),
	}
	s.mux = s.routes()
	return s, nil
}

// Manager exposes the job manager (for in-process embedding and tests).
func (s *Server) Manager() *Manager { return s.manager }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close drains the worker pool: queued jobs are cancelled, running
// jobs' contexts are cancelled (stopping engine work at the next batch
// boundary), and all workers are joined.
func (s *Server) Close() { s.manager.Close() }
