package service

// Multi-tenant fair scheduling: the manager keeps one FIFO queue per
// tenant and drains them with deficit round robin (DRR). Each
// backlogged tenant earns drrQuantum gate-cost credits per scheduler
// round and spends a job's gate count when it dispatches, so over time
// every backlogged tenant receives an equal share of dispatched *work*
// (gates), not merely an equal share of jobs — a tenant submitting
// deep circuits cannot crowd out one submitting shallow ones, and a
// burst from one tenant only ever delays that tenant's own backlog.
//
// Quotas bound each tenant independently of fairness:
//
//   - TenantMaxQueued caps a tenant's queued jobs (HTTP 429 on breach),
//   - TenantMaxRunning caps a tenant's concurrently running jobs (the
//     scheduler skips the tenant while at the cap),
//   - TenantMaxBytes caps the sum of a tenant's running jobs' declared
//     estimates (jobs that could never fit are rejected with HTTP 422;
//     jobs that fit the quota but not its current headroom wait).
//
// The shared admission ledger (sum of ALL running jobs' declared
// estimates vs the engine memory budget) is enforced at dispatch time,
// atomically with the queued→running transition, so a reservation can
// never leak: a job releases its estimate exactly once, in finishJob.

// drrQuantum is the gate-cost credit a backlogged tenant earns per
// scheduler round.
const drrQuantum = 64

// tenantState is one tenant's scheduling state; all fields are guarded
// by the Manager's mutex.
type tenantState struct {
	name string
	// queue holds the tenant's queued jobs in submission order.
	queue []*Job
	// deficit is the tenant's unspent DRR credit in gate-cost units.
	deficit int64
	// running counts the tenant's currently running jobs.
	running int
	// admitted is the sum of the tenant's running jobs' declared
	// estimates.
	admitted int64
}

// jobCost is a job's DRR cost: its gate count (minimum 1).
func jobCost(j *Job) int64 {
	if j.req == nil || j.req.circuit == nil {
		return 1
	}
	if n := int64(j.req.circuit.Len()); n > 1 {
		return n
	}
	return 1
}

// tenantLocked returns (creating if needed) a tenant's state.
func (m *Manager) tenantLocked(name string) *tenantState {
	ts := m.tenants[name]
	if ts == nil {
		ts = &tenantState{name: name}
		m.tenants[name] = ts
		m.ring = append(m.ring, ts)
	}
	return ts
}

// fitsBudgetLocked reports whether dispatching a job with the given
// estimate would keep both the shared admission ledger and the tenant's
// byte quota within bounds.
func (m *Manager) fitsBudgetLocked(ts *tenantState, est int64) bool {
	if est == 0 {
		return true
	}
	if lim := m.budget.Limit(); lim > 0 && m.admitted+est > lim {
		return false
	}
	if q := m.cfg.TenantMaxBytes; q > 0 && ts.admitted+est > q {
		return false
	}
	return true
}

// dispatchLocked picks the next job by deficit round robin and
// transitions it queued→running, reserving its admission estimate
// atomically. Returns nil when no job is currently dispatchable (all
// queues empty, every backlogged tenant at its running cap, or every
// head job blocked on budget headroom).
func (m *Manager) dispatchLocked() *Job {
	n := len(m.ring)
	budgetBlocked := false
	for {
		eligible := false
		for i := 0; i < n; i++ {
			ts := m.ring[(m.rrPos+i)%n]
			if len(ts.queue) == 0 {
				continue
			}
			if m.cfg.TenantMaxRunning > 0 && ts.running >= m.cfg.TenantMaxRunning {
				continue
			}
			j := ts.queue[0]
			if !m.fitsBudgetLocked(ts, j.req.estimate) {
				budgetBlocked = true
				continue
			}
			eligible = true
			cost := jobCost(j)
			if ts.deficit < cost {
				continue
			}
			ts.queue = ts.queue[1:]
			m.queuedTotal--
			ts.deficit -= cost
			if len(ts.queue) == 0 {
				// An idle tenant keeps no credit: deficits only ever
				// balance *backlogged* tenants against each other.
				ts.deficit = 0
			}
			m.rrPos = (m.rrPos + i + 1) % n
			j.admittedBytes = j.req.estimate
			m.admitted += j.admittedBytes
			ts.admitted += j.admittedBytes
			ts.running++
			j.status = JobRunning
			j.started = timeNow()
			// Trace the dispatch under the same lock that made it atomic:
			// the queue wait ends here and the run span (which the worker
			// threads into the engine) begins.
			j.spanQueue.End()
			if j.trace != nil {
				j.spanRun = j.trace.Root().Child("run")
				j.spanRun.Add("admitted_bytes", j.admittedBytes)
			}
			return j
		}
		if !eligible {
			if budgetBlocked {
				m.metrics.admissionWaits.Add(1)
			}
			return nil
		}
		// Some tenant could dispatch but lacks credit: top every
		// backlogged tenant up by one quantum and rescan. The credit cap
		// keeps a long-blocked tenant from banking an unbounded burst.
		for _, ts := range m.ring {
			if len(ts.queue) == 0 {
				continue
			}
			ts.deficit += drrQuantum
			if max := jobCost(ts.queue[0]) + drrQuantum; ts.deficit > max {
				ts.deficit = max
			}
		}
	}
}
