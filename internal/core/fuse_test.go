package core

import (
	"math"
	"testing"

	"qymera/internal/linalg"
	"qymera/internal/quantum"
)

func TestFuseSameQubitRun(t *testing.T) {
	// H·H = I on the same qubit: one fused stage.
	c := quantum.NewCircuit(1).H(0).H(0)
	gates, err := resolveGates(c)
	if err != nil {
		t.Fatal(err)
	}
	fused, err := fuseGates(gates, FusionSameQubits)
	if err != nil {
		t.Fatal(err)
	}
	if len(fused) != 1 {
		t.Fatalf("stages = %d", len(fused))
	}
	if !fused[0].matrix.EqualApprox(linalg.Identity(2), 1e-12) {
		t.Fatalf("H·H != I:\n%v", fused[0].matrix)
	}
}

func TestFuseOrderMatters(t *testing.T) {
	// S then T on one qubit: fused = T·S (application order).
	c := quantum.NewCircuit(1).S(0).T(0)
	gates, _ := resolveGates(c)
	fused, err := fuseGates(gates, FusionSameQubits)
	if err != nil {
		t.Fatal(err)
	}
	s := quantum.Gate{Name: "S", Qubits: []int{0}}.MustMatrix()
	tm := quantum.Gate{Name: "T", Qubits: []int{0}}.MustMatrix()
	want := tm.Mul(s)
	if !fused[0].matrix.EqualApprox(want, 1e-12) {
		t.Fatalf("fusion order wrong:\n%v\nwant\n%v", fused[0].matrix, want)
	}
}

func TestFuseDisjointNotFused(t *testing.T) {
	c := quantum.NewCircuit(2).H(0).H(1)
	gates, _ := resolveGates(c)
	fused, err := fuseGates(gates, FusionSubset)
	if err != nil {
		t.Fatal(err)
	}
	if len(fused) != 2 {
		t.Fatalf("disjoint gates must not fuse, got %d stages", len(fused))
	}
}

func TestFuseSubsetAbsorbsSingleQubit(t *testing.T) {
	// H(0) then CX(0,1): at subset level one 2-qubit stage remains.
	c := quantum.NewCircuit(2).H(0).CX(0, 1)
	gates, _ := resolveGates(c)
	fused, err := fuseGates(gates, FusionSubset)
	if err != nil {
		t.Fatal(err)
	}
	if len(fused) != 1 {
		t.Fatalf("stages = %d", len(fused))
	}
	// Fused matrix must equal CX · (I⊗H) with local bit 0 = qubit 0.
	h := quantum.Gate{Name: "H", Qubits: []int{0}}.MustMatrix()
	cx := quantum.Gate{Name: "CX", Qubits: []int{0, 1}}.MustMatrix()
	lifted, err := liftMatrix(h, []int{0}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := cx.Mul(lifted)
	if !fused[0].matrix.EqualApprox(want, 1e-12) {
		t.Fatalf("fused:\n%v\nwant:\n%v", fused[0].matrix, want)
	}
	if !fused[0].matrix.IsUnitary(1e-12) {
		t.Fatal("fused matrix must stay unitary")
	}
}

func TestLiftMatrixIdentityOutside(t *testing.T) {
	// Lift X on qubit 2 into tuple (0,2): acts on local bit 1.
	x := quantum.Gate{Name: "X", Qubits: []int{0}}.MustMatrix()
	lifted, err := liftMatrix(x, []int{2}, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Expect mapping: local 00->10, 01->11, 10->00, 11->01 (bit 1 flips).
	for in := 0; in < 4; in++ {
		want := in ^ 2
		for out := 0; out < 4; out++ {
			w := complex128(0)
			if out == want {
				w = 1
			}
			if lifted.At(out, in) != w {
				t.Fatalf("lifted[%d][%d] = %v, want %v", out, in, lifted.At(out, in), w)
			}
		}
	}
	// Unknown qubit errors.
	if _, err := liftMatrix(x, []int{5}, []int{0, 2}); err == nil {
		t.Fatal("expected error for qubit not in target tuple")
	}
}

func TestLiftPreservesUnitarity(t *testing.T) {
	ry := quantum.Gate{Name: "RY", Qubits: []int{0}, Params: []float64{0.8}}.MustMatrix()
	lifted, err := liftMatrix(ry, []int{1}, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !lifted.IsUnitary(1e-12) {
		t.Fatal("lifted RY must be unitary")
	}
}

func TestFusionLevelsProgressivelyReduceGHZ(t *testing.T) {
	c := ghz3()
	gates, _ := resolveGates(c)
	off, _ := fuseGates(gates, FusionOff)
	same, err := fuseGates(gates, FusionSameQubits)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := fuseGates(gates, FusionSubset)
	if err != nil {
		t.Fatal(err)
	}
	if len(off) != 3 {
		t.Fatalf("off = %d", len(off))
	}
	if len(same) != 3 { // H(0), CX(0,1), CX(1,2) share no tuple
		t.Fatalf("same = %d", len(same))
	}
	if len(sub) != 2 { // H absorbed into CX(0,1)
		t.Fatalf("subset = %d", len(sub))
	}
}

func TestFusedGHZStillCorrect(t *testing.T) {
	// Verify via direct matrix application that the fused pipeline
	// produces the GHZ state.
	gates, _ := resolveGates(ghz3())
	fused, err := fuseGates(gates, FusionSubset)
	if err != nil {
		t.Fatal(err)
	}
	amp := make([]complex128, 8)
	amp[0] = 1
	for _, g := range fused {
		applyRef(amp, g.qubits, g.matrix)
	}
	inv := 1 / math.Sqrt2
	for i, a := range amp {
		want := complex(0, 0)
		if i == 0 || i == 7 {
			want = complex(inv, 0)
		}
		if d := a - want; math.Hypot(real(d), imag(d)) > 1e-12 {
			t.Fatalf("amp[%d] = %v, want %v", i, a, want)
		}
	}
}

// applyRef is an independent dense gate application used only by tests.
func applyRef(amp []complex128, qubits []int, m *linalg.Matrix) {
	n := len(amp)
	k := len(qubits)
	kdim := 1 << uint(k)
	out := make([]complex128, n)
	for s := 0; s < n; s++ {
		in := 0
		for j, q := range qubits {
			in |= (s >> uint(q) & 1) << uint(j)
		}
		base := s
		for _, q := range qubits {
			base &^= 1 << uint(q)
		}
		for o := 0; o < kdim; o++ {
			coef := m.At(o, in)
			if coef == 0 {
				continue
			}
			ns := base
			for j, q := range qubits {
				if o>>uint(j)&1 == 1 {
					ns |= 1 << uint(q)
				}
			}
			out[ns] += coef * amp[s]
		}
	}
	copy(amp, out)
}
