package core

import (
	"fmt"
	"strings"
)

// Encoding selects how the translator locates qubits inside the integer
// state index.
type Encoding int

const (
	// EncodingBitwise uses the paper's bitwise operators (Table 1):
	// masks, shifts, AND/OR/NOT. This is the Qymera contribution.
	EncodingBitwise Encoding = iota
	// EncodingArithmetic expresses the same index manipulation with
	// division, modulo, multiplication, and addition only. It exists as
	// the ablation baseline for the claim that CPU-native bitwise
	// instructions beat arithmetic index math (DESIGN.md §4).
	EncodingArithmetic
)

func (e Encoding) String() string {
	if e == EncodingArithmetic {
		return "arithmetic"
	}
	return "bitwise"
}

// contiguousAscending reports whether qubits form q0, q0+1, ..., q0+k-1.
func contiguousAscending(qubits []int) bool {
	for i := 1; i < len(qubits); i++ {
		if qubits[i] != qubits[0]+i {
			return false
		}
	}
	return true
}

// placeMask returns the OR of 1<<q for each target qubit.
func placeMask(qubits []int) uint64 {
	var m uint64
	for _, q := range qubits {
		m |= uint64(1) << uint(q)
	}
	return m
}

// inputIndexExpr renders the SQL expression extracting the gate-local
// input index from column ref (e.g. "T0.s") for a gate on the given
// qubits. For the paper's contiguous cases it produces exactly the forms
// of Fig. 2c:
//
//	qubit 0 tuple (0):      (T0.s & 1)
//	qubit tuple (0,1):      (T1.s & 3)
//	qubit tuple (1,2):      ((T2.s >> 1) & 3)
func inputIndexExpr(ref string, qubits []int, enc Encoding) string {
	k := len(qubits)
	if enc == EncodingArithmetic {
		return arithGather(ref, qubits)
	}
	if contiguousAscending(qubits) {
		mask := (uint64(1) << uint(k)) - 1
		if qubits[0] == 0 {
			return fmt.Sprintf("(%s & %d)", ref, mask)
		}
		return fmt.Sprintf("((%s >> %d) & %d)", ref, qubits[0], mask)
	}
	// General gather: local bit j comes from global qubit qubits[j].
	parts := make([]string, k)
	for j, q := range qubits {
		bit := fmt.Sprintf("((%s >> %d) & 1)", ref, q)
		if q == 0 {
			bit = fmt.Sprintf("(%s & 1)", ref)
		}
		if j == 0 {
			parts[j] = bit
		} else {
			parts[j] = fmt.Sprintf("(%s << %d)", bit, j)
		}
	}
	return "(" + strings.Join(parts, " | ") + ")"
}

// outputIndexExpr renders the SQL expression computing the successor
// state index: the old index with the gate's qubits replaced by the gate
// table's out_s. stateRef is e.g. "T0.s", gateRef e.g. "H.out_s". The
// contiguous forms match Fig. 2c:
//
//	tuple (0):   ((T0.s & ~1) | H.out_s)
//	tuple (0,1): ((T1.s & ~3) | CX.out_s)
//	tuple (1,2): ((T2.s & ~6) | (CX.out_s << 1))
func outputIndexExpr(stateRef, gateRef string, qubits []int, enc Encoding) string {
	if enc == EncodingArithmetic {
		return arithScatter(stateRef, gateRef, qubits)
	}
	pm := placeMask(qubits)
	cleared := fmt.Sprintf("(%s & ~%d)", stateRef, pm)
	var scatter string
	if contiguousAscending(qubits) {
		if qubits[0] == 0 {
			scatter = gateRef
		} else {
			scatter = fmt.Sprintf("(%s << %d)", gateRef, qubits[0])
		}
	} else {
		parts := make([]string, len(qubits))
		for j, q := range qubits {
			bit := fmt.Sprintf("((%s >> %d) & 1)", gateRef, j)
			if j == 0 {
				bit = fmt.Sprintf("(%s & 1)", gateRef)
			}
			if q == 0 {
				parts[j] = bit
			} else {
				parts[j] = fmt.Sprintf("(%s << %d)", bit, q)
			}
		}
		scatter = "(" + strings.Join(parts, " | ") + ")"
	}
	return fmt.Sprintf("(%s | %s)", cleared, scatter)
}

// arithGather is the arithmetic-only equivalent of inputIndexExpr:
// bit j of the local index is ((s / 2^q) % 2) * 2^j.
func arithGather(ref string, qubits []int) string {
	if contiguousAscending(qubits) {
		k := len(qubits)
		div := uint64(1) << uint(qubits[0])
		mod := uint64(1) << uint(k)
		if div == 1 {
			return fmt.Sprintf("(%s %% %d)", ref, mod)
		}
		return fmt.Sprintf("((%s / %d) %% %d)", ref, div, mod)
	}
	parts := make([]string, len(qubits))
	for j, q := range qubits {
		div := uint64(1) << uint(q)
		bit := fmt.Sprintf("((%s / %d) %% 2)", ref, div)
		if div == 1 {
			bit = fmt.Sprintf("(%s %% 2)", ref)
		}
		if j == 0 {
			parts[j] = bit
		} else {
			parts[j] = fmt.Sprintf("(%s * %d)", bit, uint64(1)<<uint(j))
		}
	}
	return "(" + strings.Join(parts, " + ") + ")"
}

// arithScatter is the arithmetic-only equivalent of outputIndexExpr:
// subtract each of the gate's bits from the state, then add the scattered
// out_s bits.
func arithScatter(stateRef, gateRef string, qubits []int) string {
	// cleared = s - Σ_q ((s / 2^q) % 2) * 2^q
	subs := make([]string, len(qubits))
	for j, q := range qubits {
		div := uint64(1) << uint(q)
		bit := fmt.Sprintf("((%s / %d) %% 2)", stateRef, div)
		if div == 1 {
			bit = fmt.Sprintf("(%s %% 2)", stateRef)
		}
		subs[j] = fmt.Sprintf("(%s * %d)", bit, div)
	}
	cleared := fmt.Sprintf("(%s - %s)", stateRef, strings.Join(subs, " - "))

	adds := make([]string, len(qubits))
	for j, q := range qubits {
		divJ := uint64(1) << uint(j)
		bit := fmt.Sprintf("((%s / %d) %% 2)", gateRef, divJ)
		if divJ == 1 {
			bit = fmt.Sprintf("(%s %% 2)", gateRef)
		}
		adds[j] = fmt.Sprintf("(%s * %d)", bit, uint64(1)<<uint(q))
	}
	return fmt.Sprintf("(%s + %s)", cleared, strings.Join(adds, " + "))
}
