package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"qymera/internal/sqlengine"
)

// TestFig2MaskExpressions pins the generated bit expressions to the
// exact forms of the paper's Fig. 2c.
func TestFig2MaskExpressions(t *testing.T) {
	// q1: H on qubit 0 of T0.
	if got := inputIndexExpr("T0.s", []int{0}, EncodingBitwise); got != "(T0.s & 1)" {
		t.Errorf("H in = %q", got)
	}
	if got := outputIndexExpr("T0.s", "H.out_s", []int{0}, EncodingBitwise); got != "((T0.s & ~1) | H.out_s)" {
		t.Errorf("H out = %q", got)
	}
	// q2: CX on qubits (0,1) of T1.
	if got := inputIndexExpr("T1.s", []int{0, 1}, EncodingBitwise); got != "(T1.s & 3)" {
		t.Errorf("CX01 in = %q", got)
	}
	if got := outputIndexExpr("T1.s", "CX.out_s", []int{0, 1}, EncodingBitwise); got != "((T1.s & ~3) | CX.out_s)" {
		t.Errorf("CX01 out = %q", got)
	}
	// q3: CX on qubits (1,2) of T2.
	if got := inputIndexExpr("T2.s", []int{1, 2}, EncodingBitwise); got != "((T2.s >> 1) & 3)" {
		t.Errorf("CX12 in = %q", got)
	}
	if got := outputIndexExpr("T2.s", "CX.out_s", []int{1, 2}, EncodingBitwise); got != "((T2.s & ~6) | (CX.out_s << 1))" {
		t.Errorf("CX12 out = %q", got)
	}
}

// evalIntExpr runs one scalar SQL expression through the engine.
func evalIntExpr(t *testing.T, db *sqlengine.DB, expr string, bind map[string]int64) int64 {
	t.Helper()
	// Bindings become a one-row CTE so qualified refs resolve.
	sql := expr
	for name, v := range bind {
		sql = replaceAll(sql, name, fmt.Sprintf("%d", v))
	}
	rs, err := db.Query("SELECT " + sql)
	if err != nil {
		t.Fatalf("eval %q: %v", sql, err)
	}
	defer rs.Close()
	rows, err := rs.All()
	if err != nil {
		t.Fatal(err)
	}
	iv, err := rows[0][0].AsInt()
	if err != nil {
		t.Fatal(err)
	}
	return iv
}

func replaceAll(s, old, new string) string {
	for {
		i := indexOf(s, old)
		if i < 0 {
			return s
		}
		s = s[:i] + new + s[i+len(old):]
	}
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestGatherScatterAgainstGo property-checks the generated expressions
// (both encodings) against direct Go bit manipulation, including
// non-contiguous and reversed qubit tuples.
func TestGatherScatterAgainstGo(t *testing.T) {
	db, err := sqlengine.Open(sqlengine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	tuples := [][]int{
		{0}, {2}, {0, 1}, {1, 2}, {2, 0}, {0, 3}, {3, 1}, {0, 1, 2}, {4, 2, 0},
	}
	goGather := func(s uint64, qs []int) uint64 {
		var x uint64
		for j, q := range qs {
			x |= (s >> uint(q) & 1) << uint(j)
		}
		return x
	}
	goScatter := func(s, out uint64, qs []int) uint64 {
		var mask uint64
		for _, q := range qs {
			mask |= 1 << uint(q)
		}
		ns := s &^ mask
		for j, q := range qs {
			ns |= (out >> uint(j) & 1) << uint(q)
		}
		return ns
	}

	f := func(sRaw uint16, outRaw uint8, ti uint8, useArith bool) bool {
		qs := tuples[int(ti)%len(tuples)]
		enc := EncodingBitwise
		if useArith {
			enc = EncodingArithmetic
		}
		s := uint64(sRaw) % 1024
		out := uint64(outRaw) % (1 << uint(len(qs)))

		inExpr := inputIndexExpr("S", qs, enc)
		outExpr := outputIndexExpr("S", "O", qs, enc)
		gotIn := evalIntExpr(t, db, inExpr, map[string]int64{"S": int64(s)})
		gotOut := evalIntExpr(t, db, outExpr, map[string]int64{"S": int64(s), "O": int64(out)})
		return gotIn == int64(goGather(s, qs)) && gotOut == int64(goScatter(s, out, qs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestArithmeticEncodingForms(t *testing.T) {
	if got := arithGather("T.s", []int{0}); got != "(T.s % 2)" {
		t.Errorf("gather q0 = %q", got)
	}
	if got := arithGather("T.s", []int{1, 2}); got != "((T.s / 2) % 4)" {
		t.Errorf("gather q12 = %q", got)
	}
}

func TestContiguousDetection(t *testing.T) {
	cases := []struct {
		qs   []int
		want bool
	}{
		{[]int{0}, true},
		{[]int{3}, true},
		{[]int{0, 1}, true},
		{[]int{1, 2, 3}, true},
		{[]int{1, 0}, false},
		{[]int{0, 2}, false},
	}
	for _, tc := range cases {
		if got := contiguousAscending(tc.qs); got != tc.want {
			t.Errorf("contiguous(%v) = %v", tc.qs, got)
		}
	}
}
