// Package core implements the Qymera paper's contribution: translating
// quantum circuits into SQL so that a relational engine simulates them.
//
// States are relations T(s, r, i) — basis index, real, imaginary — and a
// k-qubit gate is a relation G(in_s, out_s, r, i) of transition
// amplitudes between local k-bit indices. One gate application is a
// join + group-by:
//
//	SELECT ((T0.s & ~1) | H.out_s)            AS s,
//	       SUM((T0.r * H.r) - (T0.i * H.i))   AS r,
//	       SUM((T0.r * H.i) + (T0.i * H.r))   AS i
//	FROM T0 JOIN H ON H.in_s = (T0.s & 1)
//	GROUP BY ((T0.s & ~1) | H.out_s)
//
// (Fig. 2c of the paper). The bitwise mask locates the gate's qubits
// inside the integer state index; the SUM accumulates interfering
// amplitude contributions; only nonzero basis states are ever stored.
package core

import (
	"fmt"
	"math/cmplx"
	"strconv"
	"strings"

	"qymera/internal/linalg"
	"qymera/internal/quantum"
)

// Mode selects the shape of the generated SQL.
type Mode int

const (
	// SingleQuery emits one WITH-chained query (Fig. 2c): the RDBMS
	// sees the whole circuit at once and can optimize across stages.
	SingleQuery Mode = iota
	// MaterializedChain emits one CREATE TABLE ... AS SELECT per stage,
	// so intermediate quantum states are inspectable tables — the
	// workflow of the paper's algorithm-design demo scenario.
	MaterializedChain
)

func (m Mode) String() string {
	if m == MaterializedChain {
		return "materialized-chain"
	}
	return "single-query"
}

// Options configure translation.
type Options struct {
	Mode     Mode
	Fusion   FusionLevel
	Encoding Encoding
	// PruneEps, when positive, adds a HAVING clause dropping result
	// amplitudes with |a|² <= PruneEps², the relational analogue of
	// sparse-state pruning. Zero disables pruning.
	PruneEps float64
	// StatePrefix names the state tables: <prefix>0 is the initial
	// state, <prefix>k the state after stage k. Defaults to "T".
	StatePrefix string
}

// GateRow is one transition-amplitude tuple of a gate table.
type GateRow struct {
	InS, OutS uint64
	R, I      float64
}

// GateTable is the relational form of one distinct gate.
type GateTable struct {
	Name  string // SQL table name
	Label string // gate label, e.g. "CX" or "RZ(0.25)"
	Arity int
	Rows  []GateRow
}

// Step is one gate-application stage of the translation.
type Step struct {
	Table     string // state table/CTE produced by this stage
	Source    string // state table/CTE this stage reads
	GateTable string // gate table joined in this stage
	Qubits    []int
	Body      string // the stage's SELECT text
	SQL       string // full statement in MaterializedChain mode ("" otherwise)
}

// Translation is the complete SQL program for simulating one circuit.
type Translation struct {
	NumQubits         int
	Setup             []string // DDL+DML: initial state and gate tables
	Steps             []Step
	FinalTable        string
	Query             string // the query returning the final state (s, r, i)
	GateTables        []GateTable
	StageCount        int // gates after fusion == len(Steps)
	OriginalGateCount int
	Options           Options
}

// zeroTol drops gate-matrix entries with |a| below this when building
// gate tables; exact zeros dominate (permutation-like gates).
const zeroTol = 1e-15

// Translate converts a circuit and an initial state into a SQL program.
// A nil initial state means |0...0⟩.
func Translate(c *quantum.Circuit, initial *quantum.State, opts Options) (*Translation, error) {
	if opts.StatePrefix == "" {
		opts.StatePrefix = "T"
	}
	if initial == nil {
		initial = quantum.ZeroState(c.NumQubits())
	}
	if initial.NumQubits() != c.NumQubits() {
		return nil, fmt.Errorf("core: initial state has %d qubits, circuit has %d", initial.NumQubits(), c.NumQubits())
	}

	gates, err := resolveGates(c)
	if err != nil {
		return nil, err
	}
	fused, err := fuseGates(gates, opts.Fusion)
	if err != nil {
		return nil, err
	}

	tr := &Translation{
		NumQubits:         c.NumQubits(),
		StageCount:        len(fused),
		OriginalGateCount: c.Len(),
		Options:           opts,
	}

	// Build gate tables, shared across stages with equal labels.
	names := map[string]string{}
	used := map[string]bool{}
	for _, g := range fused {
		if _, ok := names[g.label]; ok {
			continue
		}
		name := sanitizeTableName(g.label, used)
		names[g.label] = name
		tr.GateTables = append(tr.GateTables, GateTable{
			Name: name, Label: g.label, Arity: len(g.qubits),
			Rows: gateTableRows(g.matrix),
		})
	}

	tr.Setup = buildSetup(opts.StatePrefix, initial, tr.GateTables)

	// Per-stage queries.
	prev := opts.StatePrefix + "0"
	for k, g := range fused {
		table := fmt.Sprintf("%s%d", opts.StatePrefix, k+1)
		gate := names[g.label]
		body := stageSelect(prev, gate, g.qubits, opts)
		step := Step{Table: table, Source: prev, GateTable: gate, Qubits: g.qubits, Body: body}
		if opts.Mode == MaterializedChain {
			step.SQL = fmt.Sprintf("CREATE TABLE %s AS %s", table, body)
		}
		tr.Steps = append(tr.Steps, step)
		prev = table
	}
	tr.FinalTable = prev

	final := fmt.Sprintf("SELECT s, r, i FROM %s ORDER BY s", tr.FinalTable)
	switch opts.Mode {
	case MaterializedChain:
		tr.Query = final
	default:
		if len(tr.Steps) == 0 {
			tr.Query = final
			break
		}
		var b strings.Builder
		b.WriteString("WITH ")
		for i, st := range tr.Steps {
			if i > 0 {
				b.WriteString(",\n")
			}
			fmt.Fprintf(&b, "%s AS (\n%s)", st.Table, indent(st.Body, "  "))
		}
		b.WriteString("\n")
		b.WriteString(final)
		tr.Query = b.String()
	}
	return tr, nil
}

// gateTableRows extracts the transition-amplitude tuples of a gate
// matrix, dropping exact (and numerically negligible) zeros.
func gateTableRows(m *linalg.Matrix) []GateRow {
	var rows []GateRow
	dim := m.Rows
	for in := 0; in < dim; in++ {
		for out := 0; out < dim; out++ {
			a := m.At(out, in)
			if cmplx.Abs(a) <= zeroTol {
				continue
			}
			rows = append(rows, GateRow{
				InS: uint64(in), OutS: uint64(out),
				R: real(a), I: imag(a),
			})
		}
	}
	return rows
}

// buildSetup renders the DDL+DML prologue: the initial state table plus
// one table per distinct gate, each followed by an ANALYZE statement.
// The ANALYZE statements are the translation's sparsity hints: they
// guarantee the engine has row counts, in_s/out_s distinct estimates
// (the gate's fan-out, which drives the join cardinality of every
// stage), and zero counts on the amplitude columns (the signal behind
// planned zero-amplitude pruning) even on engines whose stores did not
// collect statistics at insert. Shared by Translate and Rebind (the
// rebinding path regenerates only this data section of a cached plan).
func buildSetup(prefix string, initial *quantum.State, tables []GateTable) []string {
	var setup []string
	t0 := prefix + "0"
	setup = append(setup,
		fmt.Sprintf("CREATE TABLE %s (s INTEGER, r REAL, i REAL)", t0))
	var vals []string
	for _, idx := range initial.Indices() {
		a := initial.Amplitude(idx)
		vals = append(vals, fmt.Sprintf("(%d, %s, %s)", idx, formatFloat(real(a)), formatFloat(imag(a))))
	}
	if len(vals) > 0 {
		setup = append(setup, fmt.Sprintf("INSERT INTO %s VALUES %s", t0, strings.Join(vals, ", ")))
	}
	setup = append(setup, "ANALYZE "+t0)
	for _, tbl := range tables {
		setup = append(setup,
			fmt.Sprintf("CREATE TABLE %s (in_s INTEGER, out_s INTEGER, r REAL, i REAL)", tbl.Name))
		rows := make([]string, len(tbl.Rows))
		for i, r := range tbl.Rows {
			rows[i] = fmt.Sprintf("(%d, %d, %s, %s)", r.InS, r.OutS, formatFloat(r.R), formatFloat(r.I))
		}
		if len(rows) > 0 {
			setup = append(setup,
				fmt.Sprintf("INSERT INTO %s VALUES %s", tbl.Name, strings.Join(rows, ", ")))
		}
		setup = append(setup, "ANALYZE "+tbl.Name)
	}
	return setup
}

// stageSelect renders one gate application (Fig. 2c query body).
func stageSelect(prev, gate string, qubits []int, opts Options) string {
	sRef := prev + ".s"
	inExpr := inputIndexExpr(sRef, qubits, opts.Encoding)
	outExpr := outputIndexExpr(sRef, gate+".out_s", qubits, opts.Encoding)
	sumR := fmt.Sprintf("SUM((%s.r * %s.r) - (%s.i * %s.i))", prev, gate, prev, gate)
	sumI := fmt.Sprintf("SUM((%s.r * %s.i) + (%s.i * %s.r))", prev, gate, prev, gate)

	var b strings.Builder
	fmt.Fprintf(&b, "SELECT %s AS s,\n", outExpr)
	fmt.Fprintf(&b, "       %s AS r,\n", sumR)
	fmt.Fprintf(&b, "       %s AS i\n", sumI)
	fmt.Fprintf(&b, "FROM %s JOIN %s ON %s.in_s = %s\n", prev, gate, gate, inExpr)
	fmt.Fprintf(&b, "GROUP BY %s", outExpr)
	if opts.PruneEps > 0 {
		eps2 := opts.PruneEps * opts.PruneEps
		fmt.Fprintf(&b, "\nHAVING ((%s * %s) + (%s * %s)) > %s", sumR, sumR, sumI, sumI, formatFloat(eps2))
	}
	b.WriteString("\n")
	return b.String()
}

// SetupScript joins the setup statements into one executable script.
func (tr *Translation) SetupScript() string {
	return strings.Join(tr.Setup, ";\n") + ";\n"
}

// Statements returns every statement to execute in order, excluding the
// final Query: setup plus, in MaterializedChain mode, the per-stage CTAS
// statements.
func (tr *Translation) Statements() []string {
	out := append([]string{}, tr.Setup...)
	for _, st := range tr.Steps {
		if st.SQL != "" {
			out = append(out, st.SQL)
		}
	}
	return out
}

// Script renders the full SQL program including the final query, for
// display and export.
func (tr *Translation) Script() string {
	var b strings.Builder
	for _, s := range tr.Statements() {
		b.WriteString(s)
		b.WriteString(";\n")
	}
	b.WriteString(tr.Query)
	b.WriteString(";\n")
	return b.String()
}

// formatFloat renders a float with round-trip precision, keeping the SQL
// text exact.
func formatFloat(f float64) string {
	s := strconv.FormatFloat(f, 'g', -1, 64)
	// Ensure REAL affinity survives: "1" stays an integer literal in
	// SQL, which is fine for the engine's dynamic typing, but keep the
	// paper's style of writing amplitudes with a decimal point.
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

// sanitizeTableName maps a gate label to a unique SQL identifier: plain
// names pass through (H, CX); parameterized labels like "RZ(0.25)" become
// RZ_1, RZ_2, ... per distinct parameterization.
func sanitizeTableName(label string, used map[string]bool) string {
	base := label
	if i := strings.IndexByte(label, '('); i >= 0 {
		base = label[:i]
	}
	var b strings.Builder
	for _, r := range base {
		if r == '_' || (r >= 'A' && r <= 'Z') || (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	name := b.String()
	if name == "" {
		name = "G"
	}
	if base != label || used[name] {
		i := 1
		for used[fmt.Sprintf("%s_%d", name, i)] {
			i++
		}
		name = fmt.Sprintf("%s_%d", name, i)
	}
	used[name] = true
	return name
}

func indent(s, pad string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = pad + l
	}
	return strings.Join(lines, "\n") + "\n"
}
