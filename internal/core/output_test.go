package core

import (
	"math"
	"testing"

	"qymera/internal/quantum"
	"qymera/internal/sqlengine"
)

// loadStateTable materializes a circuit's final state into table TN of a
// fresh database and returns the db plus the final table name.
func loadStateTable(t *testing.T, c *quantum.Circuit) (*sqlengine.DB, string) {
	t.Helper()
	tr, err := Translate(c, nil, Options{Mode: MaterializedChain})
	if err != nil {
		t.Fatal(err)
	}
	db, err := sqlengine.Open(sqlengine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	for _, stmt := range tr.Statements() {
		if _, err := db.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	return db, tr.FinalTable
}

func queryFloat(t *testing.T, db *sqlengine.DB, sql string) float64 {
	t.Helper()
	rs, err := db.Query(sql)
	if err != nil {
		t.Fatalf("%v\nquery: %s", err, sql)
	}
	defer rs.Close()
	rows, err := rs.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	f, err := rows[0][0].AsFloat()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestProbabilityQueryGHZ(t *testing.T) {
	db, table := loadStateTable(t, quantum.NewCircuit(3).H(0).CX(0, 1).CX(1, 2))
	rs, err := db.Query(ProbabilityQuery(table))
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	rows, err := rs.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	for _, r := range rows {
		p, _ := r[1].AsFloat()
		if math.Abs(p-0.5) > 1e-12 {
			t.Fatalf("p = %v", p)
		}
	}
}

func TestNormQueryIsOne(t *testing.T) {
	db, table := loadStateTable(t, quantum.NewCircuit(4).H(0).H(1).CX(1, 2).T(3))
	if norm2 := queryFloat(t, db, NormQuery(table)); math.Abs(norm2-1) > 1e-12 {
		t.Fatalf("norm² = %v", norm2)
	}
}

func TestQubitProbabilityQueryMatchesState(t *testing.T) {
	c := quantum.NewCircuit(3).H(0).CX(0, 1).RY(2, 0.9)
	db, table := loadStateTable(t, c)

	// Reference via the quantum package.
	tr, _ := Translate(c, nil, Options{})
	_ = tr
	st := stateFromTable(t, db, table, 3)
	for q := 0; q < 3; q++ {
		got := queryFloat(t, db, QubitProbabilityQuery(table, q))
		want := st.QubitProbability(q)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("q%d: sql=%v state=%v", q, got, want)
		}
	}
}

// stateFromTable reads a state table back into a quantum.State.
func stateFromTable(t *testing.T, db *sqlengine.DB, table string, n int) *quantum.State {
	t.Helper()
	rs, err := db.Query("SELECT s, r, i FROM " + table)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	st := quantum.NewState(n)
	rows, err := rs.All()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		s, _ := row[0].AsInt()
		r, _ := row[1].AsFloat()
		im, _ := row[2].AsFloat()
		st.Set(uint64(s), complex(r, im))
	}
	return st
}

func TestMarginalQueryMatchesState(t *testing.T) {
	c := quantum.NewCircuit(4).H(0).CX(0, 2).RY(1, 0.7).CX(1, 3)
	db, table := loadStateTable(t, c)
	st := stateFromTable(t, db, table, 4)

	for _, qubits := range [][]int{{0}, {2}, {0, 2}, {3, 1}, {0, 1, 2, 3}} {
		sql, err := MarginalQuery(table, qubits)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := db.Query(sql)
		if err != nil {
			t.Fatalf("%v\n%s", err, sql)
		}
		rows, err := rs.All()
		rs.Close()
		if err != nil {
			t.Fatal(err)
		}
		want, err := st.MarginalProbabilities(qubits)
		if err != nil {
			t.Fatal(err)
		}
		got := map[uint64]float64{}
		for _, row := range rows {
			m, _ := row[0].AsInt()
			p, _ := row[1].AsFloat()
			got[uint64(m)] = p
		}
		if len(got) != len(want) {
			t.Fatalf("qubits %v: got %v want %v", qubits, got, want)
		}
		for k, w := range want {
			if math.Abs(got[k]-w) > 1e-12 {
				t.Fatalf("qubits %v key %d: got %v want %v", qubits, k, got[k], w)
			}
		}
	}
	if _, err := MarginalQuery(table, nil); err == nil {
		t.Fatal("expected error for empty qubit list")
	}
	if _, err := MarginalQuery(table, []int{1, 1}); err == nil {
		t.Fatal("expected error for duplicate qubits")
	}
}

func TestExpectationZQueryMatchesState(t *testing.T) {
	c := quantum.NewCircuit(3).H(0).CX(0, 1).RX(2, 1.1)
	db, table := loadStateTable(t, c)
	st := stateFromTable(t, db, table, 3)

	for _, qubits := range [][]int{{0}, {1}, {0, 1}, {0, 1, 2}} {
		sql, err := ExpectationZQuery(table, qubits)
		if err != nil {
			t.Fatal(err)
		}
		got := queryFloat(t, db, sql)
		want := st.ExpectationZProduct(qubits)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("qubits %v: sql=%v state=%v", qubits, got, want)
		}
	}
}

func TestSampleableDistributionQuery(t *testing.T) {
	db, table := loadStateTable(t, quantum.NewCircuit(2).H(0).H(1))
	rs, err := db.Query(SampleableDistributionQuery(table))
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	rows, err := rs.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %v", rows)
	}
	// Cumulative column must be nondecreasing and end at 1.
	prev := 0.0
	for _, row := range rows {
		c, _ := row[2].AsFloat()
		if c < prev-1e-12 {
			t.Fatalf("cumulative decreased: %v after %v", c, prev)
		}
		prev = c
	}
	if math.Abs(prev-1) > 1e-12 {
		t.Fatalf("final cumulative = %v", prev)
	}
}
