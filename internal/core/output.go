package core

import (
	"fmt"
	"strings"
)

// This file generates the Output Layer's analysis queries: measurement
// probabilities, per-qubit and multi-qubit marginals, and Z-observable
// expectations, all computed inside the RDBMS over a state table
// T(s, r, i). They reuse the same bitwise index machinery as the gate
// translation, demonstrating that post-processing also stays
// declarative.

// ProbabilityQuery returns SQL computing the measurement distribution
// of a state table, highest probability first.
func ProbabilityQuery(table string) string {
	return fmt.Sprintf(
		"SELECT s, ((r * r) + (i * i)) AS p FROM %s ORDER BY p DESC, s", table)
}

// NormQuery returns SQL computing Σ|a|²; 1.0 for a valid state — the
// Output Layer's sanity check.
func NormQuery(table string) string {
	return fmt.Sprintf("SELECT SUM((r * r) + (i * i)) AS norm2 FROM %s", table)
}

// QubitProbabilityQuery returns SQL computing P(qubit q = 1) using the
// bitwise qubit locator of Table 1.
func QubitProbabilityQuery(table string, q int) string {
	bit := fmt.Sprintf("((s >> %d) & 1)", q)
	if q == 0 {
		bit = "(s & 1)"
	}
	return fmt.Sprintf(
		"SELECT COALESCE(SUM((r * r) + (i * i)), 0.0) AS p FROM %s WHERE %s = 1", table, bit)
}

// MarginalQuery returns SQL computing the joint distribution over the
// given qubits (traced over the rest): one row per observed pattern,
// with qubits[0] at bit 0 of the m column. It reuses the gate
// translation's bit-gather expression.
func MarginalQuery(table string, qubits []int) (string, error) {
	if len(qubits) == 0 {
		return "", fmt.Errorf("core: marginal needs at least one qubit")
	}
	seen := map[int]bool{}
	for _, q := range qubits {
		if q < 0 {
			return "", fmt.Errorf("core: negative qubit %d", q)
		}
		if seen[q] {
			return "", fmt.Errorf("core: duplicate qubit %d in marginal", q)
		}
		seen[q] = true
	}
	gather := inputIndexExpr(table+".s", qubits, EncodingBitwise)
	return fmt.Sprintf(
		"SELECT %s AS m, SUM((%s.r * %s.r) + (%s.i * %s.i)) AS p FROM %s GROUP BY %s ORDER BY m",
		gather, table, table, table, table, table, gather), nil
}

// ExpectationZQuery returns SQL computing ⟨Z_{q1}⊗Z_{q2}⊗…⟩: each row
// contributes +|a|² when the parity of the selected bits is even and
// −|a|² when odd. The parity is computed with shifts and AND, then the
// sign via CASE.
func ExpectationZQuery(table string, qubits []int) (string, error) {
	if len(qubits) == 0 {
		return "", fmt.Errorf("core: expectation needs at least one qubit")
	}
	parts := make([]string, len(qubits))
	for i, q := range qubits {
		if q < 0 {
			return "", fmt.Errorf("core: negative qubit %d", q)
		}
		if q == 0 {
			parts[i] = "(s & 1)"
		} else {
			parts[i] = fmt.Sprintf("((s >> %d) & 1)", q)
		}
	}
	parity := "(" + strings.Join(parts, " + ") + ") % 2"
	return fmt.Sprintf(
		"SELECT SUM(CASE WHEN (%s) = 0 THEN ((r * r) + (i * i)) ELSE -((r * r) + (i * i)) END) AS ez FROM %s",
		parity, table), nil
}

// SampleableDistributionQuery returns SQL producing (s, p, cumulative)
// rows: the cumulative column lets a client draw samples with one
// uniform random number per shot via a range lookup. Window functions
// are out of scope for the engine, so the cumulative sum is computed
// with a self-join — quadratic but fine for inspection-scale supports.
func SampleableDistributionQuery(table string) string {
	return fmt.Sprintf(`SELECT a.s AS s, ((a.r * a.r) + (a.i * a.i)) AS p,
       SUM((b.r * b.r) + (b.i * b.i)) AS cumulative
FROM %s a JOIN %s b ON b.s <= a.s
GROUP BY a.s, a.r, a.i
ORDER BY a.s`, table, table)
}
