package core

import (
	"testing"

	"qymera/internal/quantum"
)

func ansatz(theta float64) *quantum.Circuit {
	c := quantum.NewCircuit(3)
	c.H(0).RZ(0, theta).CX(0, 1).RZ(1, 2*theta).CX(1, 2).RZ(2, theta)
	return c
}

func TestExactFingerprintStability(t *testing.T) {
	a := ExactFingerprint(ansatz(0.5), nil, Options{})
	b := ExactFingerprint(ansatz(0.5), nil, Options{})
	if a != b {
		t.Fatal("equal inputs produced different exact fingerprints")
	}
	if ExactFingerprint(ansatz(0.6), nil, Options{}) == a {
		t.Fatal("different parameters produced the same exact fingerprint")
	}
	if ExactFingerprint(ansatz(0.5), nil, Options{Fusion: FusionSameQubits}) == a {
		t.Fatal("different options produced the same exact fingerprint")
	}
	if ExactFingerprint(ansatz(0.5), quantum.BasisState(3, 5), Options{}) == a {
		t.Fatal("different initial state produced the same exact fingerprint")
	}
}

func TestStructuralKeySweepInvariance(t *testing.T) {
	a := StructuralKey(ansatz(0.5), Options{})
	if b := StructuralKey(ansatz(1.25), Options{}); b != a {
		t.Fatal("sweep points of one circuit family have different structural keys")
	}
	// A circuit where the two RZ(θ) gates share parameters has a
	// different label-class partition (they share one gate table).
	shared := quantum.NewCircuit(3)
	shared.H(0).RZ(0, 0.5).CX(0, 1).RZ(1, 0.5).CX(1, 2).RZ(2, 0.5)
	if StructuralKey(shared, Options{}) == a {
		t.Fatal("different parameter-sharing patterns produced the same structural key")
	}
	// Different gate names must never collide.
	other := quantum.NewCircuit(3)
	other.H(0).RX(0, 0.5).CX(0, 1).RX(1, 1.0).CX(1, 2).RX(2, 0.5)
	if StructuralKey(other, Options{}) == a {
		t.Fatal("different gate names produced the same structural key")
	}
}

// TestRebindMatchesTranslate verifies the core cache guarantee: a plan
// rebound onto a different sweep point is byte-identical to translating
// that point from scratch.
func TestRebindMatchesTranslate(t *testing.T) {
	for _, opts := range []Options{
		{},
		{Fusion: FusionSameQubits},
		{Fusion: FusionSubset, PruneEps: 1e-12},
		{Mode: MaterializedChain},
	} {
		cached, err := Translate(ansatz(0.5), nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Translate(ansatz(1.75), nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cached.Rebind(ansatz(1.75), nil, opts)
		if err != nil {
			t.Fatalf("opts %+v: rebind: %v", opts, err)
		}
		if got.Script() != want.Script() {
			t.Fatalf("opts %+v: rebound script differs from fresh translation:\n--- rebound ---\n%s\n--- fresh ---\n%s",
				opts, got.Script(), want.Script())
		}
	}
}

func TestRebindRejectsMismatch(t *testing.T) {
	cached, err := Translate(ansatz(0.5), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	other := quantum.NewCircuit(3)
	other.H(0).CX(0, 1)
	if _, err := cached.Rebind(other, nil, Options{}); err != ErrPlanStructureMismatch {
		t.Fatalf("want ErrPlanStructureMismatch, got %v", err)
	}
	if _, err := cached.Rebind(ansatz(0.5), nil, Options{Fusion: FusionSubset}); err != ErrPlanStructureMismatch {
		t.Fatalf("want ErrPlanStructureMismatch for option change, got %v", err)
	}
}
