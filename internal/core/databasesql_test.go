package core

import (
	"database/sql"
	"fmt"
	"math"
	"testing"

	"qymera/internal/quantum"
	_ "qymera/internal/sqlengine" // register the "qymera" driver
)

// TestFullWorkflowThroughDatabaseSQL runs the complete paper workflow
// through Go's standard database/sql interface: translate a circuit,
// execute the setup and per-gate statements as ordinary SQL, and read
// the final state back with Query — exactly what an application
// embedding Qymera in a classical data pipeline would do.
func TestFullWorkflowThroughDatabaseSQL(t *testing.T) {
	db, err := sql.Open("qymera", fmt.Sprintf("mem://workflow-%s", t.Name()))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Bell pair plus a phase: H(0), CX(0,1), S(1).
	c := quantum.NewCircuit(2).H(0).CX(0, 1).S(1)
	tr, err := Translate(c, nil, Options{Mode: MaterializedChain, PruneEps: 1e-12})
	if err != nil {
		t.Fatal(err)
	}

	for _, stmt := range tr.Statements() {
		if _, err := db.Exec(stmt); err != nil {
			t.Fatalf("%v\nstatement: %s", err, stmt)
		}
	}

	rows, err := db.Query(tr.Query)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()

	type amp struct{ r, i float64 }
	got := map[int64]amp{}
	for rows.Next() {
		var s int64
		var re, im float64
		if err := rows.Scan(&s, &re, &im); err != nil {
			t.Fatal(err)
		}
		got[s] = amp{re, im}
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}

	// Expected state: (|00⟩ + i|11⟩)/√2 — S multiplies |11⟩ by i.
	inv := 1 / math.Sqrt2
	if len(got) != 2 {
		t.Fatalf("rows = %v", got)
	}
	if a := got[0]; math.Abs(a.r-inv) > 1e-12 || math.Abs(a.i) > 1e-12 {
		t.Fatalf("amp[0] = %+v", a)
	}
	if a := got[3]; math.Abs(a.r) > 1e-12 || math.Abs(a.i-inv) > 1e-12 {
		t.Fatalf("amp[3] = %+v", a)
	}

	// Classical post-processing joins quantum results with ordinary
	// relational data — the "integration with classical workflows" the
	// paper demonstrates.
	if _, err := db.Exec("CREATE TABLE labels (s INTEGER, name TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO labels VALUES (0, 'ground'), (3, 'excited')"); err != nil {
		t.Fatal(err)
	}
	var name string
	var p float64
	err = db.QueryRow(`SELECT l.name, (t.r * t.r) + (t.i * t.i) AS p
		FROM `+tr.FinalTable+` t JOIN labels l ON l.s = t.s
		ORDER BY p DESC, l.name LIMIT 1`).Scan(&name, &p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.5) > 1e-12 || (name != "excited" && name != "ground") {
		t.Fatalf("name=%s p=%v", name, p)
	}
}
