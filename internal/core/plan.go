package core

import (
	"errors"
	"hash/fnv"
	"io"
	"math"
	"strings"

	"qymera/internal/quantum"
)

// Plan fingerprints and rebinding, the translation-side half of the
// simulation service's plan cache.
//
// Two circuits can share translated SQL at two levels:
//
//   - Exactly equal inputs (same gates with the same parameters, same
//     initial state, same options) produce byte-identical Translations;
//     the whole cached *Translation is reusable as-is. ExactFingerprint
//     identifies this level with a full canonical encoding — not a
//     hash — so an exact "hit" can never alias two different circuits
//     (a cached plan is returned without further verification).
//
//   - Structurally equal circuits — same gate names and qubit tuples,
//     same pattern of parameter repetition, different parameter values
//     (a parameter sweep) — produce the same SQL *text* (stage bodies,
//     table names, the final WITH query): only the numeric gate-table
//     and initial-state rows differ. StructuralKey hashes this level;
//     a hash is safe here because every structural hit is verified by
//     Rebind, which re-derives the fused structure and returns
//     ErrPlanStructureMismatch on any divergence (hash collisions
//     degrade to cache misses, never to wrong SQL).

// ErrPlanStructureMismatch is returned by Rebind when the circuit's
// fused structure does not line up with the cached translation. A
// correct structural-key lookup never hits it; callers treat it as a
// cache miss and fall back to Translate.
var ErrPlanStructureMismatch = errors.New("core: cached plan structure does not match circuit")

// planEncoder writes the self-delimiting canonical encoding of
// translation inputs (lengths prefix every variable-size field, so no
// two distinct inputs share an encoding).
type planEncoder struct{ w io.Writer }

func (p planEncoder) u64(v uint64) {
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(v >> (8 * i))
	}
	p.w.Write(buf[:])
}

func (p planEncoder) int(v int)       { p.u64(uint64(int64(v))) }
func (p planEncoder) str(s string)    { p.int(len(s)); io.WriteString(p.w, s) }
func (p planEncoder) float(f float64) { p.u64(math.Float64bits(f)) }
func (p planEncoder) opts(o Options) {
	p.int(int(o.Mode))
	p.int(int(o.Fusion))
	p.int(int(o.Encoding))
	p.float(o.PruneEps)
	p.str(o.StatePrefix)
}

// ExactFingerprint canonically encodes the full translation input:
// every gate with its exact parameter bits, the initial state (nil
// meaning |0…0⟩), and the options. The encoding is injective — equal
// fingerprints mean byte-identical translations — so it is safe to
// return a cached plan on fingerprint equality without re-verifying.
func ExactFingerprint(c *quantum.Circuit, initial *quantum.State, opts Options) string {
	var b strings.Builder
	p := planEncoder{w: &b}
	p.int(c.NumQubits())
	p.opts(opts)
	for _, g := range c.Gates() {
		p.str(g.Name)
		p.int(len(g.Qubits))
		for _, q := range g.Qubits {
			p.int(q)
		}
		p.int(len(g.Params))
		for _, v := range g.Params {
			p.float(v)
		}
	}
	if initial == nil {
		p.int(-1)
	} else {
		idx := initial.Indices() // ascending order (Indices' contract)
		p.int(len(idx))
		for _, s := range idx {
			a := initial.Amplitude(s)
			p.u64(s)
			p.float(real(a))
			p.float(imag(a))
		}
	}
	return b.String()
}

// StructuralKey fingerprints the SQL text shape of a translation:
// gate names and qubit tuples, the partition of gates into
// equal-parameter classes (which decides gate-table sharing and
// naming), and every option that appears in the generated SQL. The
// parameter values themselves are excluded — circuits of one parameter
// sweep share a key. The initial state is excluded too (it is pure
// data), so callers must pair a structural hit with Rebind, which
// regenerates the data section (and catches hash collisions).
func StructuralKey(c *quantum.Circuit, opts Options) uint64 {
	h := fnv.New64a()
	p := planEncoder{w: h}
	p.int(c.NumQubits())
	p.opts(opts)
	classes := map[string]int{}
	for _, g := range c.Gates() {
		label := g.Label()
		class, ok := classes[label]
		if !ok {
			class = len(classes)
			classes[label] = class
		}
		p.str(g.Name)
		p.int(len(g.Params)) // parameterized labels are named differently
		p.int(class)
		p.int(len(g.Qubits))
		for _, q := range g.Qubits {
			p.int(q)
		}
	}
	return h.Sum64()
}

// Rebind builds the translation of a circuit that is structurally equal
// to the one behind tr (same StructuralKey): the cached SQL text —
// stage bodies, gate-table names, the final query — is reused verbatim
// and only the data rows (gate amplitudes, the initial state) are
// recomputed from the circuit. A nil initial state means |0…0⟩.
//
// The fused gate structure is re-derived and verified against the
// cached plan; any divergence returns ErrPlanStructureMismatch instead
// of producing wrong SQL.
func (tr *Translation) Rebind(c *quantum.Circuit, initial *quantum.State, opts Options) (*Translation, error) {
	if opts.StatePrefix == "" {
		opts.StatePrefix = "T"
	}
	if initial == nil {
		initial = quantum.ZeroState(c.NumQubits())
	}
	if initial.NumQubits() != c.NumQubits() {
		return nil, errors.New("core: initial state width does not match circuit")
	}
	if c.NumQubits() != tr.NumQubits || opts != tr.Options {
		return nil, ErrPlanStructureMismatch
	}

	gates, err := resolveGates(c)
	if err != nil {
		return nil, err
	}
	fused, err := fuseGates(gates, opts.Fusion)
	if err != nil {
		return nil, err
	}
	if len(fused) != len(tr.Steps) {
		return nil, ErrPlanStructureMismatch
	}

	cachedIdx := make(map[string]int, len(tr.GateTables))
	for i, gt := range tr.GateTables {
		cachedIdx[gt.Name] = i
	}
	tables := make([]GateTable, len(tr.GateTables))
	newClass := map[string]int{} // new fused label -> cached table index
	for i, g := range fused {
		st := tr.Steps[i]
		if !sameTuple(g.qubits, st.Qubits) {
			return nil, ErrPlanStructureMismatch
		}
		ci, ok := cachedIdx[st.GateTable]
		if !ok {
			return nil, ErrPlanStructureMismatch
		}
		if prev, ok := newClass[g.label]; ok {
			// A repeated label must keep mapping to the same table.
			if prev != ci {
				return nil, ErrPlanStructureMismatch
			}
			continue
		}
		// A fresh label must claim a table no other label has taken.
		if tables[ci].Name != "" {
			return nil, ErrPlanStructureMismatch
		}
		cached := tr.GateTables[ci]
		if cached.Arity != len(g.qubits) {
			return nil, ErrPlanStructureMismatch
		}
		newClass[g.label] = ci
		tables[ci] = GateTable{
			Name: cached.Name, Label: g.label, Arity: cached.Arity,
			Rows: gateTableRows(g.matrix),
		}
	}
	for i := range tables {
		if tables[i].Name == "" {
			return nil, ErrPlanStructureMismatch
		}
	}

	out := &Translation{
		NumQubits:         tr.NumQubits,
		Setup:             buildSetup(opts.StatePrefix, initial, tables),
		Steps:             append([]Step(nil), tr.Steps...),
		FinalTable:        tr.FinalTable,
		Query:             tr.Query,
		GateTables:        tables,
		StageCount:        tr.StageCount,
		OriginalGateCount: c.Len(),
		Options:           opts,
	}
	return out, nil
}
