package core

import (
	"fmt"

	"qymera/internal/linalg"
	"qymera/internal/quantum"
)

// FusionLevel controls the gate-fusion query optimization of §3.2: fusing
// consecutive gates reduces the number of join+group-by stages and the
// intermediate tables the RDBMS materializes.
type FusionLevel int

const (
	// FusionOff translates every gate into its own query stage.
	FusionOff FusionLevel = iota
	// FusionSameQubits fuses runs of consecutive gates acting on the
	// identical qubit tuple (e.g. chains of single-qubit rotations).
	FusionSameQubits
	// FusionSubset additionally absorbs a gate into an adjacent gate
	// whose qubit set contains it (e.g. an H preceding a CX on a shared
	// qubit), lifting the smaller matrix into the larger qubit space.
	FusionSubset
)

func (f FusionLevel) String() string {
	switch f {
	case FusionOff:
		return "off"
	case FusionSameQubits:
		return "same-qubits"
	case FusionSubset:
		return "subset"
	}
	return fmt.Sprintf("FusionLevel(%d)", int(f))
}

// resolvedGate is a gate with its matrix materialized, the unit the
// translator and the fusion pass operate on.
type resolvedGate struct {
	label  string // stable identity for gate-table sharing
	qubits []int
	matrix *linalg.Matrix
	fused  bool
}

// resolveGates materializes the matrix of every gate in the circuit.
func resolveGates(c *quantum.Circuit) ([]resolvedGate, error) {
	out := make([]resolvedGate, 0, c.Len())
	for _, g := range c.Gates() {
		m, err := g.Matrix()
		if err != nil {
			return nil, err
		}
		qs := make([]int, len(g.Qubits))
		copy(qs, g.Qubits)
		out = append(out, resolvedGate{label: g.Label(), qubits: qs, matrix: m})
	}
	return out, nil
}

// subsetOf reports whether every element of inner appears in outer.
func subsetOf(inner, outer []int) bool {
	for _, q := range inner {
		found := false
		for _, o := range outer {
			if o == q {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func sameTuple(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// liftMatrix embeds a gate matrix defined on tuple `from` into the local
// index space of tuple `to` (from ⊆ to as sets). Local bit j of the
// source corresponds to global qubit from[j], which sits at some position
// p(j) within `to`; bits of `to` outside the source act as identity.
func liftMatrix(m *linalg.Matrix, from, to []int) (*linalg.Matrix, error) {
	pos := make([]int, len(from))
	for j, q := range from {
		p := -1
		for i, t := range to {
			if t == q {
				p = i
				break
			}
		}
		if p < 0 {
			return nil, fmt.Errorf("core: lift: qubit %d not in target tuple %v", q, to)
		}
		pos[j] = p
	}
	var srcMask int
	for _, p := range pos {
		srcMask |= 1 << uint(p)
	}
	gather := func(x int) int {
		g := 0
		for j, p := range pos {
			g |= ((x >> uint(p)) & 1) << uint(j)
		}
		return g
	}
	dim := 1 << uint(len(to))
	out := linalg.NewMatrix(dim, dim)
	for in := 0; in < dim; in++ {
		for o := 0; o < dim; o++ {
			if in&^srcMask != o&^srcMask {
				continue
			}
			out.Set(o, in, m.At(gather(o), gather(in)))
		}
	}
	return out, nil
}

// fuseGates applies the requested fusion level to the resolved gate
// sequence. Fusion multiplies matrices in application order: if g1 runs
// before g2, the fused matrix is M2 · M1.
func fuseGates(gates []resolvedGate, level FusionLevel) ([]resolvedGate, error) {
	if level == FusionOff || len(gates) == 0 {
		return gates, nil
	}
	fusedCount := 0
	out := make([]resolvedGate, 0, len(gates))
	for _, g := range gates {
		if len(out) > 0 {
			last := &out[len(out)-1]
			if sameTuple(last.qubits, g.qubits) {
				last.matrix = g.matrix.Mul(last.matrix)
				fusedCount++
				last.label = fmt.Sprintf("FUSED_%d", fusedCount)
				last.fused = true
				continue
			}
			if level >= FusionSubset {
				if subsetOf(g.qubits, last.qubits) {
					lifted, err := liftMatrix(g.matrix, g.qubits, last.qubits)
					if err != nil {
						return nil, err
					}
					last.matrix = lifted.Mul(last.matrix)
					fusedCount++
					last.label = fmt.Sprintf("FUSED_%d", fusedCount)
					last.fused = true
					continue
				}
				if subsetOf(last.qubits, g.qubits) {
					lifted, err := liftMatrix(last.matrix, last.qubits, g.qubits)
					if err != nil {
						return nil, err
					}
					fusedCount++
					out[len(out)-1] = resolvedGate{
						label:  fmt.Sprintf("FUSED_%d", fusedCount),
						qubits: g.qubits,
						matrix: g.matrix.Mul(lifted),
						fused:  true,
					}
					continue
				}
			}
		}
		out = append(out, g)
	}
	return out, nil
}
