package core

import (
	"math"
	"strings"
	"testing"

	"qymera/internal/quantum"
	"qymera/internal/sqlengine"
)

// ghz3 is the running-example circuit of Fig. 2a: H(0), CX(0,1), CX(1,2).
func ghz3() *quantum.Circuit {
	return quantum.NewCircuit(3).H(0).CX(0, 1).CX(1, 2)
}

// TestFig2GateTables checks the relational gate encodings of Fig. 2b.
func TestFig2GateTables(t *testing.T) {
	tr, err := Translate(ghz3(), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.GateTables) != 2 {
		t.Fatalf("gate tables = %d, want 2 (H shared, CX shared)", len(tr.GateTables))
	}
	byName := map[string]GateTable{}
	for _, g := range tr.GateTables {
		byName[g.Name] = g
	}

	h := byName["H"]
	if len(h.Rows) != 4 {
		t.Fatalf("H rows = %v", h.Rows)
	}
	inv := 1 / math.Sqrt2
	for _, r := range h.Rows {
		want := inv
		if r.InS == 1 && r.OutS == 1 {
			want = -inv
		}
		if math.Abs(r.R-want) > 1e-15 || r.I != 0 {
			t.Fatalf("H row %+v, want r=%v", r, want)
		}
	}

	// CX table exactly as printed in Fig. 2b: (0,0), (1,3), (2,2), (3,1).
	cx := byName["CX"]
	got := map[[2]uint64]float64{}
	for _, r := range cx.Rows {
		got[[2]uint64{r.InS, r.OutS}] = r.R
	}
	want := map[[2]uint64]float64{
		{0, 0}: 1, {1, 3}: 1, {2, 2}: 1, {3, 1}: 1,
	}
	if len(got) != len(want) {
		t.Fatalf("CX rows = %v", cx.Rows)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("CX missing row %v=%v in %v", k, v, got)
		}
	}
}

// TestFig2QueryText pins the generated SQL to the text of Fig. 2c.
func TestFig2QueryText(t *testing.T) {
	tr, err := Translate(ghz3(), nil, Options{Mode: SingleQuery})
	if err != nil {
		t.Fatal(err)
	}
	q := tr.Query
	fragments := []string{
		"WITH T1 AS (",
		"((T0.s & ~1) | H.out_s) AS s",
		"SUM((T0.r * H.r) - (T0.i * H.i)) AS r",
		"SUM((T0.r * H.i) + (T0.i * H.r)) AS i",
		"FROM T0 JOIN H ON H.in_s = (T0.s & 1)",
		"GROUP BY ((T0.s & ~1) | H.out_s)",
		"T2 AS (",
		"((T1.s & ~3) | CX.out_s) AS s",
		"FROM T1 JOIN CX ON CX.in_s = (T1.s & 3)",
		"GROUP BY ((T1.s & ~3) | CX.out_s)",
		"T3 AS (",
		"((T2.s & ~6) | (CX.out_s << 1)) AS s",
		"FROM T2 JOIN CX ON CX.in_s = ((T2.s >> 1) & 3)",
		"GROUP BY ((T2.s & ~6) | (CX.out_s << 1))",
		"SELECT s, r, i FROM T3 ORDER BY s",
	}
	for _, f := range fragments {
		if !strings.Contains(q, f) {
			t.Errorf("query missing fragment %q\nfull query:\n%s", f, q)
		}
	}
}

// TestFig2EndToEnd executes the translation and checks the exact
// intermediate states (Fig. 2c: T1 = {0,1}, T2 = {0,3}) and the final
// GHZ output T3 = {0,7} with amplitude 1/√2 each.
func TestFig2EndToEnd(t *testing.T) {
	tr, err := Translate(ghz3(), nil, Options{Mode: MaterializedChain})
	if err != nil {
		t.Fatal(err)
	}
	db, err := sqlengine.Open(sqlengine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, stmt := range tr.Statements() {
		if _, err := db.Exec(stmt); err != nil {
			t.Fatalf("%v\nstatement:\n%s", err, stmt)
		}
	}

	expect := map[string][]uint64{
		"T1": {0, 1},
		"T2": {0, 3},
		"T3": {0, 7},
	}
	inv := 1 / math.Sqrt2
	for table, states := range expect {
		rs, err := db.Query("SELECT s, r, i FROM " + table + " ORDER BY s")
		if err != nil {
			t.Fatal(err)
		}
		rows, err := rs.All()
		rs.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != len(states) {
			t.Fatalf("%s has %d rows, want %d", table, len(rows), len(states))
		}
		for i, want := range states {
			s, _ := rows[i][0].AsInt()
			r, _ := rows[i][1].AsFloat()
			im, _ := rows[i][2].AsFloat()
			if uint64(s) != want {
				t.Fatalf("%s row %d: s=%d, want %d", table, i, s, want)
			}
			if math.Abs(r-inv) > 1e-12 || math.Abs(im) > 1e-12 {
				t.Fatalf("%s row %d: amp=(%v,%v), want (%v,0)", table, i, r, im, inv)
			}
		}
	}

	// The final query returns the same rows.
	rs, err := db.Query(tr.Query)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	rows, err := rs.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("final rows = %v", rows)
	}
}
