package core

import (
	"fmt"
	"strings"
)

// Whole-circuit statement fusion for the MaterializedChain mode. The
// plain Statements() sequence materializes every intermediate quantum
// state as its own table — one CREATE TABLE ... AS SELECT per stage.
// FusedStatements collapses each maximal run of consecutive chained
// stages (stage k reading exactly the table stage k-1 produced) into a
// single CTAS whose interior stages are WITH CTEs:
//
//	CREATE TABLE T3 AS WITH
//	  T1 AS (<stage 1 over T0>),
//	  T2 AS (<stage 2 over T1>)
//	<stage 3 over T2>
//
// Only the run's final state becomes a table; the interior state
// tables are never created. An engine with whole-circuit kernel fusion
// (sqlengine Config.Fusion) executes the CTE chain as one multi-stage
// fused pass with the intermediate amplitudes double-buffered in
// memory; any other engine still runs the statement correctly, CTE by
// CTE. The per-stage SQL text is unchanged, so amplitudes are bitwise
// identical to the unfused statement sequence either way.

// chainRuns splits the translation's steps into maximal runs of
// consecutive chained stages: within a run, each step's Source is the
// previous step's Table. Steps without statement text (SingleQuery
// mode) are never grouped.
func chainRuns(steps []Step) [][]Step {
	var runs [][]Step
	for i := 0; i < len(steps); {
		j := i
		for j+1 < len(steps) &&
			steps[j].SQL != "" && steps[j+1].SQL != "" &&
			steps[j+1].Source == steps[j].Table {
			j++
		}
		runs = append(runs, steps[i:j+1])
		i = j + 1
	}
	return runs
}

// fusedRunSQL renders one run of chained stages as a single CTAS.
func fusedRunSQL(run []Step) string {
	last := run[len(run)-1]
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE TABLE %s AS WITH ", last.Table)
	for k, st := range run[:len(run)-1] {
		if k > 0 {
			b.WriteString(",\n")
		}
		fmt.Fprintf(&b, "%s AS (\n%s)", st.Table, indent(st.Body, "  "))
	}
	b.WriteString("\n")
	b.WriteString(last.Body)
	return b.String()
}

// FusedStatements returns the statement sequence of Statements() with
// every maximal run of two or more consecutive chained gate stages
// collapsed into one fused CTAS. In SingleQuery mode (no per-stage
// statements) it is identical to Statements().
func (tr *Translation) FusedStatements() []string {
	out := append([]string{}, tr.Setup...)
	for _, run := range chainRuns(tr.Steps) {
		if len(run) == 1 || run[0].SQL == "" {
			for _, st := range run {
				if st.SQL != "" {
					out = append(out, st.SQL)
				}
			}
			continue
		}
		out = append(out, fusedRunSQL(run))
	}
	return out
}

// FusedStageRuns reports the sizes of the chained-stage runs
// FusedStatements would fuse (runs of length one are stage-at-a-time
// either way). Useful for benchmarks and diagnostics.
func (tr *Translation) FusedStageRuns() []int {
	var out []int
	for _, run := range chainRuns(tr.Steps) {
		if len(run) > 1 && run[0].SQL != "" {
			out = append(out, len(run))
		}
	}
	return out
}
