package core

import (
	"strings"
	"testing"

	"qymera/internal/quantum"
)

func TestTranslateEmptyCircuit(t *testing.T) {
	c := quantum.NewCircuit(2)
	tr, err := Translate(c, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.StageCount != 0 || len(tr.GateTables) != 0 {
		t.Fatalf("tr = %+v", tr)
	}
	if tr.Query != "SELECT s, r, i FROM T0 ORDER BY s" {
		t.Fatalf("query = %q", tr.Query)
	}
}

func TestTranslateCustomInitialState(t *testing.T) {
	c := quantum.NewCircuit(2).H(0)
	st := quantum.BasisState(2, 3)
	tr, err := Translate(c, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range tr.Setup {
		if strings.Contains(s, "INSERT INTO T0 VALUES (3, 1.0, 0.0)") {
			found = true
		}
	}
	if !found {
		t.Fatalf("setup = %v", tr.Setup)
	}
	// Mismatched width must fail.
	if _, err := Translate(c, quantum.ZeroState(3), Options{}); err == nil {
		t.Fatal("expected width mismatch error")
	}
}

func TestGateTableSharing(t *testing.T) {
	// Four CX gates share one table; two distinct RZ angles get two.
	c := quantum.NewCircuit(3)
	c.CX(0, 1).CX(1, 2).CX(0, 1).CX(1, 2)
	c.RZ(0, 0.5).RZ(1, 0.5).RZ(2, 0.7)
	tr, err := Translate(c, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, g := range tr.GateTables {
		names = append(names, g.Name)
	}
	if len(tr.GateTables) != 3 {
		t.Fatalf("gate tables = %v", names)
	}
	if tr.StageCount != 7 {
		t.Fatalf("stages = %d", tr.StageCount)
	}
}

func TestParameterizedTableNames(t *testing.T) {
	c := quantum.NewCircuit(1).RZ(0, 0.25).RZ(0, 0.5)
	tr, err := Translate(c, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.GateTables) != 2 {
		t.Fatalf("tables = %+v", tr.GateTables)
	}
	seen := map[string]bool{}
	for _, g := range tr.GateTables {
		if seen[g.Name] {
			t.Fatalf("duplicate table name %s", g.Name)
		}
		seen[g.Name] = true
		if !strings.HasPrefix(g.Name, "RZ_") {
			t.Fatalf("unexpected name %s", g.Name)
		}
	}
}

func TestPruneEpsAddsHaving(t *testing.T) {
	c := quantum.NewCircuit(1).H(0)
	tr, err := Translate(c, nil, Options{PruneEps: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tr.Query, "HAVING") {
		t.Fatalf("query missing HAVING:\n%s", tr.Query)
	}
	if !strings.Contains(tr.Query, "1e-12") {
		t.Fatalf("HAVING should compare against eps² = 1e-12:\n%s", tr.Query)
	}
	tr2, err := Translate(c, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(tr2.Query, "HAVING") {
		t.Fatal("pruning off should not emit HAVING")
	}
}

func TestMaterializedChainStatements(t *testing.T) {
	tr, err := Translate(ghz3(), nil, Options{Mode: MaterializedChain})
	if err != nil {
		t.Fatal(err)
	}
	stmts := tr.Statements()
	// 2 (T0) + 2*2 (gate tables) + 3 stages.
	var ctas int
	for _, s := range stmts {
		if strings.HasPrefix(s, "CREATE TABLE T") && strings.Contains(s, " AS ") {
			ctas++
		}
	}
	if ctas != 3 {
		t.Fatalf("CTAS statements = %d, want 3\n%v", ctas, stmts)
	}
	if tr.FinalTable != "T3" {
		t.Fatalf("final table = %s", tr.FinalTable)
	}
}

func TestStatePrefixOption(t *testing.T) {
	tr, err := Translate(ghz3(), nil, Options{StatePrefix: "STATE"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tr.Query, "FROM STATE3") {
		t.Fatalf("query = %q", tr.Query)
	}
}

func TestScriptRendersEverything(t *testing.T) {
	tr, err := Translate(ghz3(), nil, Options{Mode: MaterializedChain})
	if err != nil {
		t.Fatal(err)
	}
	script := tr.Script()
	for _, frag := range []string{"CREATE TABLE T0", "INSERT INTO H", "CREATE TABLE T3 AS", "ORDER BY s;"} {
		if !strings.Contains(script, frag) {
			t.Fatalf("script missing %q:\n%s", frag, script)
		}
	}
}

func TestSanitizeTableName(t *testing.T) {
	used := map[string]bool{}
	if got := sanitizeTableName("CX", used); got != "CX" {
		t.Fatalf("CX -> %s", got)
	}
	if got := sanitizeTableName("RZ(0.25)", used); got != "RZ_1" {
		t.Fatalf("RZ(0.25) -> %s", got)
	}
	if got := sanitizeTableName("RZ(0.5)", used); got != "RZ_2" {
		t.Fatalf("RZ(0.5) -> %s", got)
	}
	// A second plain CX would collide; it must get a suffix.
	if got := sanitizeTableName("CX", used); got != "CX_1" {
		t.Fatalf("CX again -> %s", got)
	}
}

func TestTranslationGateCounts(t *testing.T) {
	tr, err := Translate(ghz3(), nil, Options{Fusion: FusionSubset})
	if err != nil {
		t.Fatal(err)
	}
	if tr.OriginalGateCount != 3 {
		t.Fatalf("original = %d", tr.OriginalGateCount)
	}
	if tr.StageCount >= 3 {
		t.Fatalf("fusion did not reduce stages: %d", tr.StageCount)
	}
}
