package core

import (
	"strings"
	"testing"

	"qymera/internal/circuits"
)

// TestFusedStatementsShape: a MaterializedChain translation's fused
// statement list keeps the setup prologue, collapses the whole stage
// run into one CTAS over a WITH chain, and names only the final state
// table.
func TestFusedStatementsShape(t *testing.T) {
	c := circuits.GHZ(4) // 4 stages: H + 3 CX
	tr, err := Translate(c, nil, Options{Mode: MaterializedChain})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Steps) < 3 {
		t.Fatalf("want >= 3 stages, got %d", len(tr.Steps))
	}
	plain := tr.Statements()
	fused := tr.FusedStatements()
	if want := len(plain) - len(tr.Steps) + 1; len(fused) != want {
		t.Fatalf("fused statement count = %d, want %d (setup + one CTAS)", len(fused), want)
	}
	last := fused[len(fused)-1]
	if !strings.HasPrefix(last, "CREATE TABLE "+tr.FinalTable+" AS WITH ") {
		t.Fatalf("fused CTAS does not target the final table:\n%s", last)
	}
	// Interior state tables appear only as CTEs, never as CTAS targets.
	for _, st := range tr.Steps[:len(tr.Steps)-1] {
		if strings.Contains(last, "CREATE TABLE "+st.Table) {
			t.Fatalf("intermediate table %s is created by the fused statement", st.Table)
		}
		if !strings.Contains(last, st.Table+" AS (") {
			t.Fatalf("stage %s missing from the WITH chain:\n%s", st.Table, last)
		}
	}
	if runs := tr.FusedStageRuns(); len(runs) != 1 || runs[0] != len(tr.Steps) {
		t.Fatalf("FusedStageRuns = %v, want [%d]", runs, len(tr.Steps))
	}
}

// TestFusedStatementsSingleQueryUnchanged: SingleQuery mode has no
// per-stage statements to fuse.
func TestFusedStatementsSingleQueryUnchanged(t *testing.T) {
	tr, err := Translate(circuits.GHZ(3), nil, Options{Mode: SingleQuery})
	if err != nil {
		t.Fatal(err)
	}
	plain, fused := tr.Statements(), tr.FusedStatements()
	if len(plain) != len(fused) {
		t.Fatalf("statement counts differ: %d vs %d", len(plain), len(fused))
	}
	for i := range plain {
		if plain[i] != fused[i] {
			t.Fatalf("statement %d differs:\n%s\nvs\n%s", i, plain[i], fused[i])
		}
	}
	if runs := tr.FusedStageRuns(); len(runs) != 0 {
		t.Fatalf("FusedStageRuns = %v, want none in SingleQuery mode", runs)
	}
}

// TestFusedStatementsSingleStage: a one-gate circuit keeps its plain
// CTAS (nothing to chain).
func TestFusedStatementsSingleStage(t *testing.T) {
	c := circuits.GHZ(1) // single H
	tr, err := Translate(c, nil, Options{Mode: MaterializedChain})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Steps) != 1 {
		t.Fatalf("want 1 stage, got %d", len(tr.Steps))
	}
	plain, fused := tr.Statements(), tr.FusedStatements()
	if len(plain) != len(fused) {
		t.Fatalf("statement counts differ: %d vs %d", len(plain), len(fused))
	}
	for i := range plain {
		if plain[i] != fused[i] {
			t.Fatalf("statement %d differs", i)
		}
	}
}
