package sqlengine

import (
	"math"
	"strings"
	"testing"
)

func newTestDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func mustExec(t *testing.T, db *DB, sql string, params ...Value) int64 {
	t.Helper()
	n, err := db.Exec(sql, params...)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return n
}

func queryAll(t *testing.T, db *DB, sql string, params ...Value) []Row {
	t.Helper()
	rs, err := db.Query(sql, params...)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	defer rs.Close()
	rows, err := rs.All()
	if err != nil {
		t.Fatalf("drain %q: %v", sql, err)
	}
	return rows
}

func TestCreateInsertSelect(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b REAL, c TEXT)")
	n := mustExec(t, db, "INSERT INTO t VALUES (1, 2.5, 'x'), (2, -1.0, 'y')")
	if n != 2 {
		t.Fatalf("inserted %d", n)
	}
	rows := queryAll(t, db, "SELECT a, b, c FROM t ORDER BY a")
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0].I != 1 || rows[0][1].F != 2.5 || rows[0][2].S != "x" {
		t.Fatalf("row0 = %v", rows[0])
	}
}

func TestInsertColumnSubsetAndAffinity(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b REAL, c TEXT)")
	mustExec(t, db, "INSERT INTO t (b, a) VALUES (7, 3.0)")
	rows := queryAll(t, db, "SELECT a, b, c FROM t")
	// a gets integer affinity from 3.0; b gets real from 7; c is NULL.
	if rows[0][0].T != TypeInt || rows[0][0].I != 3 {
		t.Fatalf("a = %+v", rows[0][0])
	}
	if rows[0][1].T != TypeFloat || rows[0][1].F != 7 {
		t.Fatalf("b = %+v", rows[0][1])
	}
	if !rows[0][2].IsNull() {
		t.Fatalf("c = %+v", rows[0][2])
	}
}

func TestSelectExpressionsNoFrom(t *testing.T) {
	db := newTestDB(t)
	rows := queryAll(t, db, "SELECT 1 + 2 * 3, 7 / 2, 7.0 / 2, 7 % 3")
	r := rows[0]
	if r[0].I != 7 || r[1].I != 3 || r[2].F != 3.5 || r[3].I != 1 {
		t.Fatalf("row = %v", r)
	}
}

func TestWhereFilterAndParams(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (x INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2), (3), (4), (5)")
	rows := queryAll(t, db, "SELECT x FROM t WHERE x > ? AND x < ? ORDER BY x", NewInt(1), NewInt(5))
	if len(rows) != 3 || rows[0][0].I != 2 || rows[2][0].I != 4 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestJoinHash(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE a (id INTEGER, v TEXT)")
	mustExec(t, db, "CREATE TABLE b (id INTEGER, w TEXT)")
	mustExec(t, db, "INSERT INTO a VALUES (1,'a1'), (2,'a2'), (3,'a3')")
	mustExec(t, db, "INSERT INTO b VALUES (2,'b2'), (3,'b3'), (3,'b3x'), (4,'b4')")
	rows := queryAll(t, db, "SELECT a.id, a.v, b.w FROM a JOIN b ON a.id = b.id ORDER BY a.id, b.w")
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0].I != 2 || rows[1][2].S != "b3" || rows[2][2].S != "b3x" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestLeftJoin(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE a (id INTEGER)")
	mustExec(t, db, "CREATE TABLE b (id INTEGER, w TEXT)")
	mustExec(t, db, "INSERT INTO a VALUES (1), (2)")
	mustExec(t, db, "INSERT INTO b VALUES (2, 'two')")
	rows := queryAll(t, db, "SELECT a.id, b.w FROM a LEFT JOIN b ON a.id = b.id ORDER BY a.id")
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if !rows[0][1].IsNull() || rows[1][1].S != "two" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestJoinOnNullNeverMatches(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE a (id INTEGER)")
	mustExec(t, db, "CREATE TABLE b (id INTEGER)")
	mustExec(t, db, "INSERT INTO a VALUES (NULL), (1)")
	mustExec(t, db, "INSERT INTO b VALUES (NULL), (1)")
	rows := queryAll(t, db, "SELECT a.id FROM a JOIN b ON a.id = b.id")
	if len(rows) != 1 || rows[0][0].I != 1 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestCrossJoinAndNestedLoop(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE a (x INTEGER)")
	mustExec(t, db, "CREATE TABLE b (y INTEGER)")
	mustExec(t, db, "INSERT INTO a VALUES (1), (2)")
	mustExec(t, db, "INSERT INTO b VALUES (10), (20)")
	rows := queryAll(t, db, "SELECT x, y FROM a CROSS JOIN b ORDER BY x, y")
	if len(rows) != 4 {
		t.Fatalf("rows = %v", rows)
	}
	// Non-equi join falls back to nested loop.
	rows = queryAll(t, db, "SELECT x, y FROM a JOIN b ON y > x * 10 ORDER BY x, y")
	if len(rows) != 3 { // (1,20),(2,? no: 20 <= 20 false... y>x*10: (1,20) yes, (1,10)? 10>10 no, (2,10) no, (2,20) no
		// recompute: (1,10): 10>10 false; (1,20): 20>10 true; (2,10): 10>20 false; (2,20): 20>20 false
		if len(rows) != 1 {
			t.Fatalf("rows = %v", rows)
		}
	}
}

func TestGroupByAggregates(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (k INTEGER, v REAL)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 1.0), (1, 2.0), (2, 5.0), (2, NULL)")
	rows := queryAll(t, db, "SELECT k, COUNT(*), COUNT(v), SUM(v), AVG(v), MIN(v), MAX(v) FROM t GROUP BY k ORDER BY k")
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	r1 := rows[0]
	if r1[1].I != 2 || r1[2].I != 2 || r1[3].F != 3.0 || r1[4].F != 1.5 {
		t.Fatalf("group1 = %v", r1)
	}
	r2 := rows[1]
	if r2[1].I != 2 || r2[2].I != 1 || r2[3].F != 5.0 {
		t.Fatalf("group2 = %v", r2)
	}
}

func TestGroupByExpressionMatching(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (s INTEGER, r REAL)")
	mustExec(t, db, "INSERT INTO t VALUES (0, 0.5), (1, 0.5), (2, 0.25), (3, 0.25)")
	// The grouped expression appears verbatim in SELECT — the paper's
	// translation relies on this.
	rows := queryAll(t, db, "SELECT (s & ~1) AS b, SUM(r) FROM t GROUP BY (s & ~1) ORDER BY b")
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0].I != 0 || rows[0][1].F != 1.0 {
		t.Fatalf("row0 = %v", rows[0])
	}
	if rows[1][0].I != 2 || rows[1][1].F != 0.5 {
		t.Fatalf("row1 = %v", rows[1])
	}
	// Qualified vs unqualified references must still match.
	rows = queryAll(t, db, "SELECT (t.s & ~1) AS b FROM t GROUP BY (s & ~1) ORDER BY b")
	if len(rows) != 2 {
		t.Fatalf("qualified match rows = %v", rows)
	}
}

func TestHaving(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (k INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (1), (2)")
	rows := queryAll(t, db, "SELECT k FROM t GROUP BY k HAVING COUNT(*) > 1")
	if len(rows) != 1 || rows[0][0].I != 1 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestGlobalAggregateEmptyInput(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (x INTEGER)")
	rows := queryAll(t, db, "SELECT COUNT(*), SUM(x), MIN(x) FROM t")
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0].I != 0 || !rows[0][1].IsNull() || !rows[0][2].IsNull() {
		t.Fatalf("row = %v", rows[0])
	}
	// With GROUP BY there must be zero rows.
	rows = queryAll(t, db, "SELECT x, COUNT(*) FROM t GROUP BY x")
	if len(rows) != 0 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestDistinct(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (x INTEGER, y INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1,1), (1,1), (1,2), (2,1)")
	rows := queryAll(t, db, "SELECT DISTINCT x, y FROM t ORDER BY x, y")
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	rows = queryAll(t, db, "SELECT COUNT(DISTINCT x) FROM t")
	if rows[0][0].I != 2 {
		t.Fatalf("count distinct = %v", rows[0])
	}
}

func TestOrderByVariants(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES (3,'c'), (1,'a'), (2,'b')")
	// By alias.
	rows := queryAll(t, db, "SELECT a AS n FROM t ORDER BY n DESC")
	if rows[0][0].I != 3 || rows[2][0].I != 1 {
		t.Fatalf("rows = %v", rows)
	}
	// By position.
	rows = queryAll(t, db, "SELECT a, b FROM t ORDER BY 2")
	if rows[0][1].S != "a" {
		t.Fatalf("rows = %v", rows)
	}
	// By expression not in the projection (hidden key).
	rows = queryAll(t, db, "SELECT b FROM t ORDER BY a * -1")
	if rows[0][0].S != "c" || rows[2][0].S != "a" {
		t.Fatalf("rows = %v", rows)
	}
	if len(rows[0]) != 1 {
		t.Fatalf("hidden key leaked: %v", rows[0])
	}
}

func TestLimitOffset(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (x INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1),(2),(3),(4),(5)")
	rows := queryAll(t, db, "SELECT x FROM t ORDER BY x LIMIT 2 OFFSET 1")
	if len(rows) != 2 || rows[0][0].I != 2 || rows[1][0].I != 3 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestCTEsChained(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (x INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1),(2),(3)")
	rows := queryAll(t, db, `WITH a AS (SELECT x * 2 AS y FROM t),
		b AS (SELECT y + 1 AS z FROM a)
		SELECT z FROM b ORDER BY z`)
	if len(rows) != 3 || rows[0][0].I != 3 || rows[2][0].I != 7 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestSubqueryInFrom(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (x INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1),(2),(3),(4)")
	rows := queryAll(t, db, "SELECT q.big FROM (SELECT x AS big FROM t WHERE x > 2) q ORDER BY q.big")
	if len(rows) != 2 || rows[0][0].I != 3 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestCreateTableAsSelect(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (x INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1),(2),(3)")
	n := mustExec(t, db, "CREATE TABLE u AS SELECT x * 10 AS y FROM t WHERE x > 1")
	if n != 2 {
		t.Fatalf("CTAS rows = %d", n)
	}
	rows := queryAll(t, db, "SELECT y FROM u ORDER BY y")
	if len(rows) != 2 || rows[0][0].I != 20 {
		t.Fatalf("rows = %v", rows)
	}
	// CTAS table stays writable.
	mustExec(t, db, "INSERT INTO u VALUES (99)")
	rows = queryAll(t, db, "SELECT COUNT(*) FROM u")
	if rows[0][0].I != 3 {
		t.Fatalf("count = %v", rows[0])
	}
}

func TestDeleteUpdate(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (x INTEGER, y INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 0), (2, 0), (3, 0)")
	if n := mustExec(t, db, "UPDATE t SET y = x * x WHERE x >= 2"); n != 2 {
		t.Fatalf("updated %d", n)
	}
	rows := queryAll(t, db, "SELECT y FROM t ORDER BY x")
	if rows[0][0].I != 0 || rows[1][0].I != 4 || rows[2][0].I != 9 {
		t.Fatalf("rows = %v", rows)
	}
	if n := mustExec(t, db, "DELETE FROM t WHERE y = 0"); n != 1 {
		t.Fatalf("deleted %d", n)
	}
	rows = queryAll(t, db, "SELECT COUNT(*) FROM t")
	if rows[0][0].I != 2 {
		t.Fatalf("count = %v", rows[0])
	}
}

func TestDropTable(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (x INTEGER)")
	mustExec(t, db, "DROP TABLE t")
	if _, err := db.Query("SELECT * FROM t"); err == nil {
		t.Fatal("expected error after drop")
	}
	mustExec(t, db, "DROP TABLE IF EXISTS t")
	if _, err := db.Exec("DROP TABLE t"); err == nil {
		t.Fatal("expected error on double drop")
	}
}

func TestNullSemantics(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (x INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (NULL), (3)")
	// NULL comparisons are unknown, filtered out.
	rows := queryAll(t, db, "SELECT x FROM t WHERE x > 0")
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	rows = queryAll(t, db, "SELECT x FROM t WHERE x IS NULL")
	if len(rows) != 1 || !rows[0][0].IsNull() {
		t.Fatalf("rows = %v", rows)
	}
	// Arithmetic propagates NULL; division by zero is NULL.
	rows = queryAll(t, db, "SELECT NULL + 1, 1 / 0, 1.0 / 0.0")
	for i, v := range rows[0] {
		if !v.IsNull() {
			t.Fatalf("col %d = %v, want NULL", i, v)
		}
	}
}

func TestCaseExpression(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (x INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (-5), (0), (7)")
	rows := queryAll(t, db, "SELECT CASE WHEN x > 0 THEN 'pos' WHEN x < 0 THEN 'neg' ELSE 'zero' END FROM t ORDER BY x")
	if rows[0][0].S != "neg" || rows[1][0].S != "zero" || rows[2][0].S != "pos" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestScalarFunctions(t *testing.T) {
	db := newTestDB(t)
	rows := queryAll(t, db, "SELECT ABS(-4), ROUND(2.567, 2), SQRT(9.0), POWER(2, 10), MOD(7, 3), SIGN(-2), LENGTH('abc'), UPPER('ab'), COALESCE(NULL, 5)")
	r := rows[0]
	if r[0].I != 4 || math.Abs(r[1].F-2.57) > 1e-9 || r[2].F != 3 || r[3].F != 1024 || r[4].I != 1 || r[5].I != -1 || r[6].I != 3 || r[7].S != "AB" || r[8].I != 5 {
		t.Fatalf("row = %v", r)
	}
}

func TestLikeAndIn(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (s TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES ('hello'), ('help'), ('world')")
	rows := queryAll(t, db, "SELECT s FROM t WHERE s LIKE 'hel%' ORDER BY s")
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	rows = queryAll(t, db, "SELECT s FROM t WHERE s IN ('world', 'nothing')")
	if len(rows) != 1 || rows[0][0].S != "world" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestAmbiguousColumnError(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE a (x INTEGER)")
	mustExec(t, db, "CREATE TABLE b (x INTEGER)")
	mustExec(t, db, "INSERT INTO a VALUES (1)")
	mustExec(t, db, "INSERT INTO b VALUES (1)")
	_, err := db.Query("SELECT x FROM a JOIN b ON a.x = b.x")
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("err = %v", err)
	}
}

func TestAggregateInWhereRejected(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (x INTEGER)")
	if _, err := db.Query("SELECT x FROM t WHERE SUM(x) > 1"); err == nil {
		t.Fatal("expected error")
	}
}

func TestColumnNotInGroupByRejected(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 2)")
	if _, err := db.Query("SELECT b, COUNT(*) FROM t GROUP BY a"); err == nil {
		t.Fatal("expected error for b not in GROUP BY")
	}
}

func TestStarExpansion(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE a (x INTEGER, y INTEGER)")
	mustExec(t, db, "CREATE TABLE b (z INTEGER)")
	mustExec(t, db, "INSERT INTO a VALUES (1, 2)")
	mustExec(t, db, "INSERT INTO b VALUES (3)")
	rs, err := db.Query("SELECT * FROM a JOIN b ON 1 = 1")
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if len(rs.Columns) != 3 {
		t.Fatalf("cols = %v", rs.Columns)
	}
	rs2, err := db.Query("SELECT b.* FROM a JOIN b ON 1 = 1")
	if err != nil {
		t.Fatal(err)
	}
	defer rs2.Close()
	if len(rs2.Columns) != 1 || rs2.Columns[0] != "z" {
		t.Fatalf("cols = %v", rs2.Columns)
	}
}

func TestResultColumnNames(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (s INTEGER, r REAL)")
	rs, err := db.Query("SELECT s, r AS amp, s + 1 FROM t")
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if rs.Columns[0] != "s" || rs.Columns[1] != "amp" || rs.Columns[2] != "(s + 1)" {
		t.Fatalf("cols = %v", rs.Columns)
	}
}

func TestQueryRejectsNonSelect(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Query("CREATE TABLE t (x INTEGER)"); err == nil {
		t.Fatal("expected error")
	}
}

func TestExecScript(t *testing.T) {
	db := newTestDB(t)
	err := db.ExecScript(`
		CREATE TABLE t (x INTEGER);
		INSERT INTO t VALUES (1), (2);
		UPDATE t SET x = x + 10;
	`)
	if err != nil {
		t.Fatal(err)
	}
	rows := queryAll(t, db, "SELECT SUM(x) FROM t")
	if rows[0][0].I != 23 {
		t.Fatalf("sum = %v", rows[0])
	}
}

func TestBoolsAndIIF(t *testing.T) {
	db := newTestDB(t)
	rows := queryAll(t, db, "SELECT TRUE, FALSE, IIF(TRUE, 1, 2), NOT TRUE")
	r := rows[0]
	if r[0].T != TypeBool || r[0].I != 1 || r[2].I != 1 {
		t.Fatalf("row = %v", r)
	}
	if b, _ := r[3].Bool(); b {
		t.Fatalf("NOT TRUE = %v", r[3])
	}
}

func TestCast(t *testing.T) {
	db := newTestDB(t)
	rows := queryAll(t, db, "SELECT CAST(3.7 AS INTEGER), CAST(5 AS REAL), CAST(42 AS TEXT)")
	r := rows[0]
	if r[0].I != 3 || r[1].F != 5.0 || r[2].S != "42" {
		t.Fatalf("row = %v", r)
	}
}
