package sqlengine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// cancelTestDB builds a nonzero-amplitude table of the given size plus a
// Hadamard-style gate table — the shape of one translated gate stage.
func cancelTestDB(t *testing.T, rows, workers int, budget *MemBudget) *DB {
	t.Helper()
	db, err := Open(Config{Parallelism: workers, Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE t (s INTEGER, r REAL, i REAL)"); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for k := 0; k < rows; k++ {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "(%d, %g, 0.0)", k, 1.0/float64(rows))
		if b.Len() > 1<<15 || k == rows-1 {
			if _, err := db.Exec("INSERT INTO t VALUES " + b.String()); err != nil {
				t.Fatal(err)
			}
			b.Reset()
		}
	}
	if _, err := db.Exec("CREATE TABLE h (in_s INTEGER, out_s INTEGER, r REAL, i REAL)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO h VALUES (0,0,0.70710678,0),(0,1,0.70710678,0),(1,0,0.70710678,0),(1,1,-0.70710678,0)"); err != nil {
		t.Fatal(err)
	}
	return db
}

const cancelGateSQL = `SELECT ((t.s & ~1) | h.out_s) AS s,
       SUM((t.r * h.r) - (t.i * h.i)) AS r,
       SUM((t.r * h.i) + (t.i * h.r)) AS i
FROM t JOIN h ON h.in_s = (t.s & 1)
GROUP BY ((t.s & ~1) | h.out_s)`

// TestQueryContextPreCancelled asserts that an already-cancelled context
// aborts the statement before (or during) its first batch and leaves no
// budget reservation behind.
func TestQueryContextPreCancelled(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			budget := NewMemBudget(0)
			db := cancelTestDB(t, 4096, workers, budget)
			defer db.Close()
			freezeTables(t, db, "t", "h")
			base := budget.Used() // table storage stays reserved

			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if _, err := db.QueryContext(ctx, cancelGateSQL); !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled, got %v", err)
			}
			if got := budget.Used(); got != base {
				t.Fatalf("budget leaked after cancel: used %d, want %d", got, base)
			}
		})
	}
}

// TestQueryContextCancelMidQuery cancels a long gate-stage query while
// it runs: the statement must return an error wrapping context.Canceled
// well before the query would finish, release every reservation, and
// leave no worker goroutines behind.
func TestQueryContextCancelMidQuery(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			budget := NewMemBudget(0)
			db := cancelTestDB(t, 1<<17, workers, budget)
			defer db.Close()
			freezeTables(t, db, "t", "h")
			base := budget.Used()
			before := runtime.NumGoroutine()

			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() {
				_, err := db.QueryContext(ctx, cancelGateSQL)
				done <- err
			}()
			time.Sleep(2 * time.Millisecond)
			cancel()
			var err error
			select {
			case err = <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("cancelled query did not return within 10s")
			}
			// The query may legitimately have finished before the cancel
			// landed; only a cancelled run must report it.
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled (or success), got %v", err)
			}
			if err == nil {
				t.Skip("query finished before cancellation landed")
			}
			if got := budget.Used(); got != base {
				t.Fatalf("budget leaked after cancel: used %d, want %d", got, base)
			}
			waitForGoroutines(t, before)
		})
	}
}

// TestExecScriptContextCancel asserts scripts stop between statements.
func TestExecScriptContextCancel(t *testing.T) {
	db, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = db.ExecScriptContext(ctx, "CREATE TABLE a (x INTEGER); CREATE TABLE b (x INTEGER)")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if len(db.Tables()) != 0 {
		t.Fatalf("cancelled script created tables: %v", db.Tables())
	}
}

// waitForGoroutines retries until the goroutine count returns to (or
// below) the baseline, tolerating runtime background goroutines.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d before", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
