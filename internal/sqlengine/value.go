// Package sqlengine is an embedded relational database engine with a SQL
// front end. It exists so that the Qymera circuit→SQL translation can run
// against a real relational execution pipeline — parser, a three-tier
// planner (logical plan IR, rule-driven rewriter, cost-based physical
// chooser fed by incrementally-maintained table statistics), vectorized
// batch executor with streaming hash joins and hash aggregation, and
// buffer-managed storage that spills to disk — using only the Go
// standard library.
//
// Execution is batch-at-a-time and morsel-parallel over natively
// columnar table storage: operators exchange column-major batches of
// ~1024 rows with selection vectors (see batch.go), expressions are
// compiled to loops over batches with integer/float fast paths (see
// evalvec.go), and tables are stored as typed column vectors — int64 /
// float64 / string / bool with null bitmaps — that CREATE TABLE AS and
// INSERT … SELECT append batch-at-a-time and scans serve as column
// slices (see colstore.go; the legacy row layout survives behind
// Config.Layout for differential testing). A thin cursor at the row
// edges keeps row-oriented surfaces (database/sql driver, ResultSet)
// composing with the columnar tree. Pipelines over in-memory tables
// split their base scan into fixed row-range morsels claimed by
// Config.Parallelism worker goroutines (see parallel.go): filters and
// projections run embarrassingly parallel, hash joins probe a shared
// build table concurrently, and hash aggregation merges per-morsel
// partial tables in morsel order (see parallel_agg.go), so results —
// including floating-point rounding — are bitwise independent of the
// worker count and the storage layout. Workers reserve from the shared
// memory budget; under pressure a parallel operator falls back to the
// serial spilling path, which writes columnar chunk runs to disk.
//
// The engine implements the SQL subset that RDBMS-based quantum circuit
// simulation requires (and a bit more): CREATE/DROP TABLE, INSERT,
// DELETE, CREATE TABLE AS SELECT, and SELECT with WITH (CTEs), INNER/LEFT
// joins, WHERE, GROUP BY/HAVING, ORDER BY, LIMIT/OFFSET, DISTINCT, scalar
// and aggregate functions, and the full set of bitwise operators from
// Table 1 of the paper (&, |, ~, <<, >>).
//
// Typing follows the SQLite model: values are dynamically typed with
// column affinity applied on insert. Concurrency control is a simple
// database-level reader/writer lock; statements are atomic but there are
// no multi-statement transactions.
package sqlengine

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Type enumerates runtime value types.
type Type int

const (
	TypeNull Type = iota
	TypeInt
	TypeFloat
	TypeText
	TypeBool
)

func (t Type) String() string {
	switch t {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return "INTEGER"
	case TypeFloat:
		return "REAL"
	case TypeText:
		return "TEXT"
	case TypeBool:
		return "BOOLEAN"
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// Value is a dynamically typed SQL value. The zero value is NULL.
type Value struct {
	T Type
	I int64
	F float64
	S string
}

// Null is the SQL NULL value.
var Null = Value{T: TypeNull}

// NewInt wraps an int64.
func NewInt(i int64) Value { return Value{T: TypeInt, I: i} }

// NewFloat wraps a float64.
func NewFloat(f float64) Value { return Value{T: TypeFloat, F: f} }

// NewText wraps a string.
func NewText(s string) Value { return Value{T: TypeText, S: s} }

// NewBool wraps a bool (stored in I as 0/1).
func NewBool(b bool) Value {
	if b {
		return Value{T: TypeBool, I: 1}
	}
	return Value{T: TypeBool}
}

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.T == TypeNull }

// Bool returns the truth value and whether it is known (non-NULL).
// Numbers are truthy when nonzero, texts when parseable as nonzero
// (SQLite-style loose truthiness is not needed; texts are an error).
func (v Value) Bool() (val, known bool) {
	switch v.T {
	case TypeNull:
		return false, false
	case TypeBool, TypeInt:
		return v.I != 0, true
	case TypeFloat:
		return v.F != 0, true
	default:
		return false, true // non-empty text treated as false per strictness
	}
}

// AsInt coerces to int64. Floats truncate toward zero.
func (v Value) AsInt() (int64, error) {
	switch v.T {
	case TypeInt, TypeBool:
		return v.I, nil
	case TypeFloat:
		return int64(v.F), nil
	case TypeText:
		i, err := strconv.ParseInt(strings.TrimSpace(v.S), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("sqlengine: cannot convert %q to integer", v.S)
		}
		return i, nil
	}
	return 0, fmt.Errorf("sqlengine: cannot convert NULL to integer")
}

// AsFloat coerces to float64.
func (v Value) AsFloat() (float64, error) {
	switch v.T {
	case TypeInt, TypeBool:
		return float64(v.I), nil
	case TypeFloat:
		return v.F, nil
	case TypeText:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64)
		if err != nil {
			return 0, fmt.Errorf("sqlengine: cannot convert %q to real", v.S)
		}
		return f, nil
	}
	return 0, fmt.Errorf("sqlengine: cannot convert NULL to real")
}

// IsNumeric reports whether the value is INT, FLOAT, or BOOL.
func (v Value) IsNumeric() bool {
	return v.T == TypeInt || v.T == TypeFloat || v.T == TypeBool
}

// String renders the value for display.
func (v Value) String() string {
	switch v.T {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return strconv.FormatInt(v.I, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TypeText:
		return v.S
	case TypeBool:
		if v.I != 0 {
			return "TRUE"
		}
		return "FALSE"
	}
	return "?"
}

// typeRank orders types for cross-type sorting, following SQLite:
// NULL < numeric < TEXT.
func typeRank(t Type) int {
	switch t {
	case TypeNull:
		return 0
	case TypeInt, TypeFloat, TypeBool:
		return 1
	case TypeText:
		return 2
	}
	return 3
}

// CompareTotal imposes a total order usable by ORDER BY and DISTINCT:
// NULLs first, then numerics by value, then text lexicographically.
func CompareTotal(a, b Value) int {
	ra, rb := typeRank(a.T), typeRank(b.T)
	if ra != rb {
		return ra - rb
	}
	switch ra {
	case 0:
		return 0
	case 1:
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		// Exact comparison when both are ints avoids float rounding.
		if a.T == TypeInt && b.T == TypeInt {
			switch {
			case a.I < b.I:
				return -1
			case a.I > b.I:
				return 1
			}
			return 0
		}
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		return 0
	default:
		return strings.Compare(a.S, b.S)
	}
}

// CompareSQL implements SQL comparison semantics: if either side is NULL
// the result is unknown (ok=false); otherwise cmp is -1/0/1.
func CompareSQL(a, b Value) (cmp int, ok bool) {
	if a.IsNull() || b.IsNull() {
		return 0, false
	}
	return CompareTotal(a, b), true
}

// Arithmetic implements +, -, *, /, % with SQL NULL propagation. Integer
// division truncates; division (or modulo) by zero yields NULL, matching
// SQLite.
func Arithmetic(op string, a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if !a.IsNumeric() || !b.IsNumeric() {
		return Null, fmt.Errorf("sqlengine: operator %s requires numeric operands, got %s and %s", op, a.T, b.T)
	}
	if a.T == TypeFloat || b.T == TypeFloat {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch op {
		case "+":
			return NewFloat(af + bf), nil
		case "-":
			return NewFloat(af - bf), nil
		case "*":
			return NewFloat(af * bf), nil
		case "/":
			if bf == 0 {
				return Null, nil
			}
			return NewFloat(af / bf), nil
		case "%":
			if bf == 0 {
				return Null, nil
			}
			return NewFloat(math.Mod(af, bf)), nil
		}
		return Null, fmt.Errorf("sqlengine: unknown arithmetic operator %q", op)
	}
	ai, bi := a.I, b.I
	if a.T == TypeBool {
		ai = a.I
	}
	switch op {
	case "+":
		return NewInt(ai + bi), nil
	case "-":
		return NewInt(ai - bi), nil
	case "*":
		return NewInt(ai * bi), nil
	case "/":
		if bi == 0 {
			return Null, nil
		}
		return NewInt(ai / bi), nil
	case "%":
		if bi == 0 {
			return Null, nil
		}
		return NewInt(ai % bi), nil
	}
	return Null, fmt.Errorf("sqlengine: unknown arithmetic operator %q", op)
}

// Bitwise implements &, |, <<, >> on integer-coerced operands with NULL
// propagation. These are the operations of Table 1 in the paper.
func Bitwise(op string, a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	ai, err := a.AsInt()
	if err != nil {
		return Null, err
	}
	bi, err := b.AsInt()
	if err != nil {
		return Null, err
	}
	switch op {
	case "&":
		return NewInt(ai & bi), nil
	case "|":
		return NewInt(ai | bi), nil
	case "<<":
		if bi < 0 || bi > 63 {
			return NewInt(0), nil
		}
		return NewInt(ai << uint(bi)), nil
	case ">>":
		if bi < 0 || bi > 63 {
			return NewInt(0), nil
		}
		return NewInt(ai >> uint(bi)), nil
	}
	return Null, fmt.Errorf("sqlengine: unknown bitwise operator %q", op)
}

// BitwiseNot implements the unary ~ operator.
func BitwiseNot(a Value) (Value, error) {
	if a.IsNull() {
		return Null, nil
	}
	ai, err := a.AsInt()
	if err != nil {
		return Null, err
	}
	return NewInt(^ai), nil
}

// Negate implements unary minus.
func Negate(a Value) (Value, error) {
	switch a.T {
	case TypeNull:
		return Null, nil
	case TypeInt, TypeBool:
		return NewInt(-a.I), nil
	case TypeFloat:
		return NewFloat(-a.F), nil
	}
	return Null, fmt.Errorf("sqlengine: cannot negate %s", a.T)
}

// applyAffinity coerces a value toward a column's declared type, SQLite
// style: lossless conversions happen, lossy ones keep the original value.
func applyAffinity(v Value, t Type) Value {
	if v.IsNull() {
		return v
	}
	switch t {
	case TypeInt:
		if v.T == TypeFloat && v.F == math.Trunc(v.F) && math.Abs(v.F) < 1<<62 {
			return NewInt(int64(v.F))
		}
		if v.T == TypeBool {
			return NewInt(v.I)
		}
	case TypeFloat:
		if v.T == TypeInt || v.T == TypeBool {
			return NewFloat(float64(v.I))
		}
	case TypeBool:
		if v.T == TypeInt && (v.I == 0 || v.I == 1) {
			return NewBool(v.I == 1)
		}
	case TypeText:
		// Keep numerics as-is (dynamic typing).
	}
	return v
}

// Row is one tuple of values.
type Row []Value

// cloneRow copies a row (Values are value types, so shallow copy is deep
// enough).
func cloneRow(r Row) Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// rowBytes estimates the in-memory footprint of a row, used by the memory
// budget accounting that decides when operators spill to disk.
func rowBytes(r Row) int64 {
	n := int64(24) // slice header
	for _, v := range r {
		n += 40 // Value struct
		n += int64(len(v.S))
	}
	return n
}
