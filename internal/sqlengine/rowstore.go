package sqlengine

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sync/atomic"
)

// memBudget is the engine-wide memory accountant. Operators and row
// stores reserve estimated bytes before buffering rows in memory; when a
// reservation would exceed the budget the caller must spill (or fail if
// spilling is disabled). A zero or negative limit means unlimited.
type memBudget struct {
	limit int64
	used  atomic.Int64
	peak  atomic.Int64
}

func newMemBudget(limit int64) *memBudget { return &memBudget{limit: limit} }

// tryReserve attempts to reserve n bytes, reporting false when the budget
// would be exceeded.
func (b *memBudget) tryReserve(n int64) bool {
	for {
		cur := b.used.Load()
		next := cur + n
		if b.limit > 0 && next > b.limit {
			return false
		}
		if b.used.CompareAndSwap(cur, next) {
			b.updatePeak(next)
			return true
		}
	}
}

// reserveForce reserves unconditionally (used for small bookkeeping).
func (b *memBudget) reserveForce(n int64) {
	v := b.used.Add(n)
	b.updatePeak(v)
}

func (b *memBudget) release(n int64) { b.used.Add(-n) }

func (b *memBudget) updatePeak(v int64) {
	for {
		p := b.peak.Load()
		if v <= p || b.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

// storageEnv bundles what row stores need: the shared budget, spill
// configuration, and counters.
type storageEnv struct {
	budget       *memBudget
	spillDir     string
	spillEnabled bool
	// workers is the engine's morsel-parallel worker count (>= 1).
	workers int
	// workingFloor is the number of bytes a blocking operator (hash
	// join build, hash aggregation, sort buffer) may force-reserve even
	// when the budget is exhausted by table storage. Without it, grace
	// partitioning could not make progress once tables fill the budget.
	// The budget is therefore a soft cap: peak usage can briefly exceed
	// it by up to one working floor per active operator.
	workingFloor int64
	spilledRows  atomic.Int64
	spilledBytes atomic.Int64
	spillFiles   atomic.Int64
}

// errBudget is returned when memory is exhausted and spilling is off.
var errBudget = fmt.Errorf("sqlengine: memory budget exceeded and spilling is disabled")

// RowStore is an append-then-read sequence of rows that keeps a bounded
// in-memory tail and spills its prefix to a temporary file when the
// engine-wide budget is exceeded. It is the storage unit for base tables,
// materialized CTEs, sort runs, and join/aggregation partitions.
type RowStore struct {
	env      *storageEnv
	mem      []Row
	memBytes int64
	file     *os.File
	w        *bufio.Writer
	fileRows int64
	frozen   bool
}

func newRowStore(env *storageEnv) *RowStore { return &RowStore{env: env} }

// Append adds a row. The store takes ownership of the slice.
func (rs *RowStore) Append(row Row) error {
	if rs.frozen {
		return fmt.Errorf("sqlengine: internal: append to frozen row store")
	}
	n := rowBytes(row)
	if rs.env.budget.tryReserve(n) {
		rs.mem = append(rs.mem, row)
		rs.memBytes += n
		return nil
	}
	if !rs.env.spillEnabled {
		return errBudget
	}
	// Spill everything buffered so far, then the new row, keeping memory
	// near zero for this store.
	if err := rs.spillBuffered(); err != nil {
		return err
	}
	return rs.writeSpilled(row)
}

// spillBuffered flushes the in-memory rows to the spill file and releases
// their reservation.
func (rs *RowStore) spillBuffered() error {
	if rs.file == nil {
		f, err := os.CreateTemp(rs.env.spillDir, "qymera-spill-*.rows")
		if err != nil {
			return fmt.Errorf("sqlengine: creating spill file: %w", err)
		}
		rs.file = f
		rs.w = bufio.NewWriterSize(f, 1<<16)
		rs.env.spillFiles.Add(1)
	}
	for _, row := range rs.mem {
		if err := rs.writeSpilled(row); err != nil {
			return err
		}
	}
	rs.env.budget.release(rs.memBytes)
	rs.mem = rs.mem[:0]
	rs.memBytes = 0
	return nil
}

func (rs *RowStore) writeSpilled(row Row) error {
	if rs.file == nil {
		if err := rs.spillBuffered(); err != nil {
			return err
		}
	}
	n, err := encodeRow(rs.w, row)
	if err != nil {
		return err
	}
	rs.fileRows++
	rs.env.spilledRows.Add(1)
	rs.env.spilledBytes.Add(int64(n))
	return nil
}

// AppendBatch appends every selected row of a batch, materializing each
// into a fresh Row the store takes ownership of.
func (rs *RowStore) AppendBatch(b *rowBatch) error {
	for _, pos := range b.selection() {
		if err := rs.Append(b.materializeRow(pos)); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the total number of rows.
func (rs *RowStore) Len() int64 { return rs.fileRows + int64(len(rs.mem)) }

// Spilled reports whether any rows live on disk.
func (rs *RowStore) Spilled() bool { return rs.fileRows > 0 }

// Freeze transitions the store from writing to reading. Idempotent.
func (rs *RowStore) Freeze() error {
	if rs.frozen {
		return nil
	}
	rs.frozen = true
	if rs.w != nil {
		if err := rs.w.Flush(); err != nil {
			return fmt.Errorf("sqlengine: flushing spill file: %w", err)
		}
		rs.w = nil
	}
	return nil
}

// Thaw reopens a frozen store for appending. Callers must serialize
// writes (the database write lock does); spill readers use independent
// offsets, so iterators created before thawing keep their snapshot of the
// on-disk prefix.
func (rs *RowStore) Thaw() {
	if !rs.frozen {
		return
	}
	rs.frozen = false
	if rs.file != nil {
		rs.w = bufio.NewWriterSize(rs.file, 1<<16)
	}
}

// morselCount is the number of fixed-size morsels the in-memory rows
// split into for parallel scans. Boundaries depend only on the data, so
// the morsel schedule is identical for every worker count.
func (rs *RowStore) morselCount() int {
	return (len(rs.mem) + morselRows - 1) / morselRows
}

// morsel returns the rows of morsel i. The store must be frozen and
// fully in memory.
func (rs *RowStore) morsel(i int) []Row {
	lo := i * morselRows
	hi := lo + morselRows
	if hi > len(rs.mem) {
		hi = len(rs.mem)
	}
	return rs.mem[lo:hi]
}

// Iterator returns a fresh iterator over all rows (disk prefix first,
// then the in-memory tail). Multiple concurrent iterators are allowed
// once the store is frozen.
func (rs *RowStore) Iterator() (*RowIterator, error) {
	if err := rs.Freeze(); err != nil {
		return nil, err
	}
	it := &RowIterator{store: rs}
	if rs.file != nil && rs.fileRows > 0 {
		info, err := rs.file.Stat()
		if err != nil {
			return nil, err
		}
		it.r = bufio.NewReaderSize(io.NewSectionReader(rs.file, 0, info.Size()), 1<<16)
		it.fileLeft = rs.fileRows
	}
	return it, nil
}

// Release frees memory reservations and deletes any spill file. The
// store must not be used afterwards.
func (rs *RowStore) Release() {
	rs.env.budget.release(rs.memBytes)
	rs.mem = nil
	rs.memBytes = 0
	if rs.file != nil {
		name := rs.file.Name()
		rs.file.Close()
		os.Remove(name)
		rs.file = nil
	}
}

// RowIterator walks a frozen RowStore.
type RowIterator struct {
	store    *RowStore
	r        *bufio.Reader
	fileLeft int64
	memIdx   int
}

// Next returns the next row, or ok=false at the end.
func (it *RowIterator) Next() (Row, bool, error) {
	if it.fileLeft > 0 {
		row, err := decodeRow(it.r)
		if err != nil {
			return nil, false, fmt.Errorf("sqlengine: reading spill file: %w", err)
		}
		it.fileLeft--
		return row, true, nil
	}
	if it.memIdx < len(it.store.mem) {
		row := it.store.mem[it.memIdx]
		it.memIdx++
		return row, true, nil
	}
	return nil, false, nil
}

// ReadBatch appends up to max rows into b (the spilled prefix first,
// then the in-memory tail) and returns the number of rows read; fewer
// than max means the iterator is exhausted. The batch's width must match
// the stored rows.
func (it *RowIterator) ReadBatch(b *rowBatch, max int) (int, error) {
	read := 0
	for read < max && it.fileLeft > 0 {
		row, err := decodeRow(it.r)
		if err != nil {
			return read, fmt.Errorf("sqlengine: reading spill file: %w", err)
		}
		it.fileLeft--
		b.appendRow(row)
		read++
	}
	mem := it.store.mem
	for read < max && it.memIdx < len(mem) {
		b.appendRow(mem[it.memIdx])
		it.memIdx++
		read++
	}
	return read, nil
}

// Row/value binary encoding for spill files.

const (
	encNull  byte = 0
	encInt   byte = 1
	encFloat byte = 2
	encText  byte = 3
	encBool  byte = 4
)

func encodeRow(w *bufio.Writer, row Row) (int, error) {
	var scratch [binary.MaxVarintLen64]byte
	total := 0
	n := binary.PutUvarint(scratch[:], uint64(len(row)))
	if _, err := w.Write(scratch[:n]); err != nil {
		return total, err
	}
	total += n
	for _, v := range row {
		if err := w.WriteByte(byte(encTag(v))); err != nil {
			return total, err
		}
		total++
		switch v.T {
		case TypeNull:
		case TypeInt:
			n := binary.PutVarint(scratch[:], v.I)
			if _, err := w.Write(scratch[:n]); err != nil {
				return total, err
			}
			total += n
		case TypeFloat:
			binary.LittleEndian.PutUint64(scratch[:8], math.Float64bits(v.F))
			if _, err := w.Write(scratch[:8]); err != nil {
				return total, err
			}
			total += 8
		case TypeText:
			n := binary.PutUvarint(scratch[:], uint64(len(v.S)))
			if _, err := w.Write(scratch[:n]); err != nil {
				return total, err
			}
			total += n
			if _, err := w.WriteString(v.S); err != nil {
				return total, err
			}
			total += len(v.S)
		case TypeBool:
			b := byte(0)
			if v.I != 0 {
				b = 1
			}
			if err := w.WriteByte(b); err != nil {
				return total, err
			}
			total++
		}
	}
	return total, nil
}

func encTag(v Value) byte {
	switch v.T {
	case TypeInt:
		return encInt
	case TypeFloat:
		return encFloat
	case TypeText:
		return encText
	case TypeBool:
		return encBool
	}
	return encNull
}

func decodeRow(r *bufio.Reader) (Row, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	row := make(Row, n)
	for i := range row {
		tag, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		switch tag {
		case encNull:
			row[i] = Null
		case encInt:
			x, err := binary.ReadVarint(r)
			if err != nil {
				return nil, err
			}
			row[i] = NewInt(x)
		case encFloat:
			var buf [8]byte
			if _, err := io.ReadFull(r, buf[:]); err != nil {
				return nil, err
			}
			row[i] = NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(buf[:])))
		case encText:
			ln, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, err
			}
			buf := make([]byte, ln)
			if _, err := io.ReadFull(r, buf); err != nil {
				return nil, err
			}
			row[i] = NewText(string(buf))
		case encBool:
			b, err := r.ReadByte()
			if err != nil {
				return nil, err
			}
			row[i] = NewBool(b != 0)
		default:
			return nil, fmt.Errorf("sqlengine: corrupt spill file: tag %d", tag)
		}
	}
	return row, nil
}

// encodeValueKey produces a canonical byte-string key for grouping and
// DISTINCT. Numerically equal INTEGER/REAL/BOOLEAN values map to the same
// key (SQL equality), while remaining distinct from texts.
func encodeValueKey(v Value) string {
	switch v.T {
	case TypeNull:
		return "\x00"
	case TypeInt, TypeBool:
		var buf [1 + binary.MaxVarintLen64]byte
		buf[0] = 1
		n := binary.PutVarint(buf[1:], v.I)
		return string(buf[:1+n])
	case TypeFloat:
		// Integral floats share keys with equal ints.
		if v.F == math.Trunc(v.F) && math.Abs(v.F) < 1<<62 {
			var buf [1 + binary.MaxVarintLen64]byte
			buf[0] = 1
			n := binary.PutVarint(buf[1:], int64(v.F))
			return string(buf[:1+n])
		}
		var buf [9]byte
		buf[0] = 2
		binary.LittleEndian.PutUint64(buf[1:], math.Float64bits(v.F))
		return string(buf[:])
	case TypeText:
		return "\x03" + v.S
	}
	return "\x7f"
}

// encodeRowKey concatenates value keys with length prefixes so composite
// keys cannot collide.
func encodeRowKey(vals []Value) string {
	total := 0
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = encodeValueKey(v)
		total += len(parts[i]) + binary.MaxVarintLen64
	}
	buf := make([]byte, 0, total)
	var scratch [binary.MaxVarintLen64]byte
	for _, p := range parts {
		n := binary.PutUvarint(scratch[:], uint64(len(p)))
		buf = append(buf, scratch[:n]...)
		buf = append(buf, p...)
	}
	return string(buf)
}
