package sqlengine

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// RowStore is the legacy row-major table store: an append-then-read
// sequence of []Row that keeps a bounded in-memory tail and spills its
// prefix to a temporary file when the engine-wide budget is exceeded.
// The columnar ColStore (colstore.go) replaced it as the default
// layout; RowStore survives behind Config.Layout = "row" as the
// reference implementation for differential testing — every query must
// produce bitwise-identical results on both layouts.
type RowStore struct {
	env      *storageEnv
	width    int // -1 until the first append
	mem      []Row
	memBytes int64
	file     *os.File
	w        *bufio.Writer
	fileRows int64
	frozen   bool
	// stats, when non-nil, is updated incrementally on every append
	// (base tables; see stats.go).
	stats *tableStats
}

func newRowStore(env *storageEnv) *RowStore { return &RowStore{env: env, width: -1} }

// setStatsCollector / statsSnapshot implement statsCollecting.
func (rs *RowStore) setStatsCollector(ts *tableStats) { rs.stats = ts }
func (rs *RowStore) statsSnapshot() *tableStats       { return rs.stats }

// frozenState reports whether the store is currently frozen.
func (rs *RowStore) frozenState() bool { return rs.frozen }

// Append adds a row. The store takes ownership of the slice.
func (rs *RowStore) Append(row Row) error {
	if rs.frozen {
		return fmt.Errorf("sqlengine: internal: append to frozen row store")
	}
	if rs.width < 0 {
		rs.width = len(row)
	}
	n := rowBytes(row)
	if rs.env.budget.tryReserve(n) {
		rs.mem = append(rs.mem, row)
		rs.memBytes += n
		if rs.stats != nil {
			rs.stats.observeRow(row)
		}
		return nil
	}
	if !rs.env.spillEnabled {
		return errBudget
	}
	// Spill everything buffered so far, then the new row, keeping memory
	// near zero for this store.
	if err := rs.spillBuffered(); err != nil {
		return err
	}
	if err := rs.writeSpilled(row); err != nil {
		return err
	}
	if rs.stats != nil {
		rs.stats.observeRow(row)
	}
	return nil
}

// spillBuffered flushes the in-memory rows to the spill file and releases
// their reservation.
func (rs *RowStore) spillBuffered() error {
	if rs.file == nil {
		f, err := os.CreateTemp(rs.env.spillDir, "qymera-spill-*.rows")
		if err != nil {
			return fmt.Errorf("sqlengine: creating spill file: %w", err)
		}
		rs.file = f
		rs.w = bufio.NewWriterSize(f, 1<<16)
		rs.env.spillFiles.Add(1)
	}
	for _, row := range rs.mem {
		if err := rs.writeSpilled(row); err != nil {
			return err
		}
	}
	rs.env.budget.release(rs.memBytes)
	rs.mem = rs.mem[:0]
	rs.memBytes = 0
	return nil
}

func (rs *RowStore) writeSpilled(row Row) error {
	if rs.file == nil {
		if err := rs.spillBuffered(); err != nil {
			return err
		}
	}
	n, err := encodeRow(rs.w, row)
	if err != nil {
		return err
	}
	rs.fileRows++
	rs.env.spilledRows.Add(1)
	rs.env.spilledBytes.Add(int64(n))
	return nil
}

// AppendBatch appends every selected row of a batch, materializing each
// into a fresh Row. The per-row gather is inherent to the row layout —
// the columnar store appends batches without it — and exists only so
// the legacy layout satisfies the tableStore contract for differential
// testing.
func (rs *RowStore) AppendBatch(b *rowBatch) error {
	for _, pos := range b.selection() {
		if err := rs.Append(b.materializeRow(pos)); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the total number of rows.
func (rs *RowStore) Len() int64 { return rs.fileRows + int64(len(rs.mem)) }

// Spilled reports whether any rows live on disk.
func (rs *RowStore) Spilled() bool { return rs.fileRows > 0 }

// Freeze transitions the store from writing to reading. Idempotent.
func (rs *RowStore) Freeze() error {
	if rs.frozen {
		return nil
	}
	rs.frozen = true
	if rs.w != nil {
		if err := rs.w.Flush(); err != nil {
			return fmt.Errorf("sqlengine: flushing spill file: %w", err)
		}
		rs.w = nil
	}
	return nil
}

// Thaw reopens a frozen store for appending. Callers must serialize
// writes (the database write lock does); spill readers use independent
// offsets, so iterators created before thawing keep their snapshot of the
// on-disk prefix.
func (rs *RowStore) Thaw() {
	if !rs.frozen {
		return
	}
	rs.frozen = false
	if rs.file != nil {
		rs.w = bufio.NewWriterSize(rs.file, 1<<16)
	}
}

func (rs *RowStore) layout() string { return LayoutRow }

// vectorKinds is nil: the row layout has no typed column vectors.
func (rs *RowStore) vectorKinds() []string { return nil }

// morselCount is the number of fixed-size morsels the in-memory rows
// split into for parallel scans, or 0 for a spilled store. Boundaries
// depend only on the data, so the morsel schedule is identical for
// every worker count.
func (rs *RowStore) morselCount() int {
	if rs.Spilled() {
		return 0
	}
	return (len(rs.mem) + morselRows - 1) / morselRows
}

// morsel returns the rows of morsel i. The store must be frozen and
// fully in memory.
func (rs *RowStore) morsel(i int) []Row {
	lo := i * morselRows
	hi := min(lo+morselRows, len(rs.mem))
	return rs.mem[lo:hi]
}

func (rs *RowStore) morselScanner() (morselScanner, error) {
	if err := rs.Freeze(); err != nil {
		return nil, err
	}
	return &rowMorselScan{rs: rs}, nil
}

// rowMorselScan transposes one claimed morsel's rows into reusable
// column-major batches.
type rowMorselScan struct {
	rs   *RowStore
	rows []Row // remainder of the current morsel
	buf  *rowBatch
}

func (s *rowMorselScan) setMorsel(i int) { s.rows = s.rs.morsel(i) }

func (s *rowMorselScan) NextBatch() (*rowBatch, error) {
	if len(s.rows) == 0 {
		return nil, nil
	}
	if s.buf == nil {
		s.buf = newRowBatch(s.rs.width)
	}
	s.buf.reset()
	n := min(len(s.rows), batchSize)
	for _, r := range s.rows[:n] {
		s.buf.appendRow(r)
	}
	s.rows = s.rows[n:]
	return s.buf, nil
}

// Cursor returns a fresh row iterator over all rows (disk prefix first,
// then the in-memory tail). Multiple concurrent cursors are allowed
// once the store is frozen.
func (rs *RowStore) Cursor() (rowCursor, error) {
	if err := rs.Freeze(); err != nil {
		return nil, err
	}
	it := &RowIterator{store: rs}
	if rs.file != nil && rs.fileRows > 0 {
		info, err := rs.file.Stat()
		if err != nil {
			return nil, err
		}
		it.r = bufio.NewReaderSize(io.NewSectionReader(rs.file, 0, info.Size()), 1<<16)
		it.fileLeft = rs.fileRows
	}
	return it, nil
}

// batchScan reads the store in batches, transposing stored rows into a
// reusable column-major batch (the row layout's scan cost; the columnar
// store serves column slices instead).
func (rs *RowStore) batchScan() (storeScan, error) {
	cur, err := rs.Cursor()
	if err != nil {
		return nil, err
	}
	return &rowStoreScan{it: cur.(*RowIterator), width: max(rs.width, 0)}, nil
}

type rowStoreScan struct {
	it    *RowIterator
	width int
	buf   *rowBatch
	done  bool
}

func (s *rowStoreScan) NextBatch() (*rowBatch, error) {
	if s.done {
		return nil, nil
	}
	if s.buf == nil {
		s.buf = newRowBatch(s.width)
	}
	s.buf.reset()
	for !s.buf.full() {
		row, ok, err := s.it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			s.done = true
			break
		}
		s.buf.appendRow(row)
	}
	if s.buf.n == 0 {
		return nil, nil
	}
	return s.buf, nil
}

// Release frees memory reservations and deletes any spill file. The
// store must not be used afterwards.
func (rs *RowStore) Release() {
	rs.env.budget.release(rs.memBytes)
	rs.mem = nil
	rs.memBytes = 0
	if rs.file != nil {
		name := rs.file.Name()
		rs.file.Close()
		os.Remove(name)
		rs.file = nil
	}
}

// RowIterator walks a frozen RowStore.
type RowIterator struct {
	store    *RowStore
	r        *bufio.Reader
	fileLeft int64
	memIdx   int
}

// Next returns the next row, or ok=false at the end.
func (it *RowIterator) Next() (Row, bool, error) {
	if it.fileLeft > 0 {
		row, err := decodeRow(it.r)
		if err != nil {
			return nil, false, fmt.Errorf("sqlengine: reading spill file: %w", err)
		}
		it.fileLeft--
		return row, true, nil
	}
	if it.memIdx < len(it.store.mem) {
		row := it.store.mem[it.memIdx]
		it.memIdx++
		return row, true, nil
	}
	return nil, false, nil
}

// Row/value binary encoding for row-layout spill files; the columnar
// spill format reuses the per-value codec for generic (mixed-type)
// column runs.

const (
	encNull  byte = 0
	encInt   byte = 1
	encFloat byte = 2
	encText  byte = 3
	encBool  byte = 4
)

// encodeValue writes one tagged value, returning the bytes written.
func encodeValue(w *bufio.Writer, v Value) (int, error) {
	var scratch [binary.MaxVarintLen64]byte
	total := 0
	if err := w.WriteByte(encTag(v)); err != nil {
		return total, err
	}
	total++
	switch v.T {
	case TypeNull:
	case TypeInt:
		n := binary.PutVarint(scratch[:], v.I)
		if _, err := w.Write(scratch[:n]); err != nil {
			return total, err
		}
		total += n
	case TypeFloat:
		binary.LittleEndian.PutUint64(scratch[:8], math.Float64bits(v.F))
		if _, err := w.Write(scratch[:8]); err != nil {
			return total, err
		}
		total += 8
	case TypeText:
		n := binary.PutUvarint(scratch[:], uint64(len(v.S)))
		if _, err := w.Write(scratch[:n]); err != nil {
			return total, err
		}
		total += n
		if _, err := w.WriteString(v.S); err != nil {
			return total, err
		}
		total += len(v.S)
	case TypeBool:
		b := byte(0)
		if v.I != 0 {
			b = 1
		}
		if err := w.WriteByte(b); err != nil {
			return total, err
		}
		total++
	}
	return total, nil
}

func encodeRow(w *bufio.Writer, row Row) (int, error) {
	var scratch [binary.MaxVarintLen64]byte
	total := 0
	n := binary.PutUvarint(scratch[:], uint64(len(row)))
	if _, err := w.Write(scratch[:n]); err != nil {
		return total, err
	}
	total += n
	for _, v := range row {
		vn, err := encodeValue(w, v)
		total += vn
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func encTag(v Value) byte {
	switch v.T {
	case TypeInt:
		return encInt
	case TypeFloat:
		return encFloat
	case TypeText:
		return encText
	case TypeBool:
		return encBool
	}
	return encNull
}

// decodeValue reads one tagged value.
func decodeValue(r *bufio.Reader) (Value, error) {
	tag, err := r.ReadByte()
	if err != nil {
		return Null, err
	}
	switch tag {
	case encNull:
		return Null, nil
	case encInt:
		x, err := binary.ReadVarint(r)
		if err != nil {
			return Null, err
		}
		return NewInt(x), nil
	case encFloat:
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return Null, err
		}
		return NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))), nil
	case encText:
		ln, err := binary.ReadUvarint(r)
		if err != nil {
			return Null, err
		}
		buf := make([]byte, ln)
		if _, err := io.ReadFull(r, buf); err != nil {
			return Null, err
		}
		return NewText(string(buf)), nil
	case encBool:
		b, err := r.ReadByte()
		if err != nil {
			return Null, err
		}
		return NewBool(b != 0), nil
	}
	return Null, fmt.Errorf("sqlengine: corrupt spill file: tag %d", tag)
}

func decodeRow(r *bufio.Reader) (Row, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	row := make(Row, n)
	for i := range row {
		v, err := decodeValue(r)
		if err != nil {
			return nil, err
		}
		row[i] = v
	}
	return row, nil
}

// encodeValueKey produces a canonical byte-string key for grouping and
// DISTINCT. Numerically equal INTEGER/REAL/BOOLEAN values map to the same
// key (SQL equality), while remaining distinct from texts.
func encodeValueKey(v Value) string {
	switch v.T {
	case TypeNull:
		return "\x00"
	case TypeInt, TypeBool:
		var buf [1 + binary.MaxVarintLen64]byte
		buf[0] = 1
		n := binary.PutVarint(buf[1:], v.I)
		return string(buf[:1+n])
	case TypeFloat:
		// Integral floats share keys with equal ints.
		if v.F == math.Trunc(v.F) && math.Abs(v.F) < 1<<62 {
			var buf [1 + binary.MaxVarintLen64]byte
			buf[0] = 1
			n := binary.PutVarint(buf[1:], int64(v.F))
			return string(buf[:1+n])
		}
		var buf [9]byte
		buf[0] = 2
		binary.LittleEndian.PutUint64(buf[1:], math.Float64bits(v.F))
		return string(buf[:])
	case TypeText:
		return "\x03" + v.S
	}
	return "\x7f"
}

// encodeRowKey concatenates value keys with length prefixes so composite
// keys cannot collide.
func encodeRowKey(vals []Value) string {
	total := 0
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = encodeValueKey(v)
		total += len(parts[i]) + binary.MaxVarintLen64
	}
	buf := make([]byte, 0, total)
	var scratch [binary.MaxVarintLen64]byte
	for _, p := range parts {
		n := binary.PutUvarint(scratch[:], uint64(len(p)))
		buf = append(buf, scratch[:n]...)
		buf = append(buf, p...)
	}
	return string(buf)
}
