package sqlengine

import (
	"math"
	"sync/atomic"
)

// Rule-driven logical rewriting and cost-based physical planning.
//
// The optimizer transforms the logical IR in phases:
//
//  1. dead-CTE elimination and single-use CTE inlining
//  2. constant folding over every expression
//  3. conjunct splitting (AND trees become individual filter conjuncts)
//  4. predicate pushdown (through projections, aliases, strips, group
//     keys, and join sides, down into scans)
//  5. projection pruning (dead-column elimination into scans — with the
//     columnar store, pruned columns are never decoded)
//  6. cost estimation (table statistics from stats.go) and the physical
//     choices: hash-join build side, streaming vs grace strategy,
//     join-chain reordering, and hash-table pre-sizing hints
//
// Bit-neutrality contract. Simulated amplitudes must be bitwise
// identical with the optimizer on and off, so every rewrite is
// classified by whether it can perturb floating-point accumulation
// order. The engine's aggregation runs the morsel-parallel schedule at
// every worker count, merging per-morsel partial sums in morsel order;
// morsel boundaries are a pure function of the aggregation input's
// *base store*. Therefore:
//
//   - Always safe: constant folding (same evaluation code), conjunct
//     splitting, predicate pushdown and projection pruning (the set and
//     order of surviving rows per morsel is unchanged — filters commute
//     with the probe pipeline), pre-sizing hints, and the serial-vs-
//     parallel gather gate (per-morsel gather order equals serial
//     order).
//   - Order-sensitive: CTE inlining (changes the base store the
//     consumer's aggregation morselizes over), build-side flips and
//     join reordering (change row order). These apply only when no
//     ancestor aggregation uses an accumulation-order-sensitive
//     aggregate (SUM/TOTAL/AVG); COUNT/MIN/MAX and DISTINCT are
//     insensitive. The translated gate queries aggregate amplitudes
//     with SUM, so their per-stage plans keep the exact unoptimized
//     execution schedule by construction.
//   - Grace pre-choice applies only when the estimated build side
//     exceeds the whole memory budget, where the unoptimized plan would
//     overflow into the same grace join anyway.

// optimizer counters, exposed through OptimizerCounters() and the
// service /metrics endpoint. Package-level because a simulation service
// runs many short-lived engine instances.
var optCounters struct {
	plansOptimized atomic.Int64
	plansWithStats atomic.Int64
	cteInlined     atomic.Int64
	cteDead        atomic.Int64
	constFolded    atomic.Int64
	conjunctsSplit atomic.Int64
	pushdowns      atomic.Int64
	scansPruned    atomic.Int64
	buildFlips     atomic.Int64
	joinReorders   atomic.Int64
	gracePrechosen atomic.Int64
}

// OptimizerCounters snapshots the cumulative optimizer rule counters
// (monotonic across all engine instances in the process).
func OptimizerCounters() map[string]int64 {
	return map[string]int64{
		"plans_optimized":  optCounters.plansOptimized.Load(),
		"plans_with_stats": optCounters.plansWithStats.Load(),
		"cte_inlined":      optCounters.cteInlined.Load(),
		"cte_dead":         optCounters.cteDead.Load(),
		"const_folded":     optCounters.constFolded.Load(),
		"conjuncts_split":  optCounters.conjunctsSplit.Load(),
		"pushdowns":        optCounters.pushdowns.Load(),
		"scans_pruned":     optCounters.scansPruned.Load(),
		"build_flips":      optCounters.buildFlips.Load(),
		"join_reorders":    optCounters.joinReorders.Load(),
		"grace_prechosen":  optCounters.gracePrechosen.Load(),
	}
}

const (
	// defaultFilterSel is the selectivity of a predicate the model cannot
	// analyze.
	defaultFilterSel = 1.0 / 3
	// defaultEqSel is the selectivity of an equality with no distinct
	// statistics.
	defaultEqSel = 0.1
	// pruneHavingSel is the survival fraction assumed for the translated
	// zero-amplitude pruning HAVING clause ((r*r + i*i) > eps²): most
	// nonzero amplitudes survive.
	pruneHavingSel = 0.95
	// flipFloor is the minimum estimated build-side size before a
	// build-side flip or join reorder is worth the plan perturbation.
	flipFloor = 4096
	// hintCap bounds hash-table pre-sizing hints: a badly wrong
	// overestimate may waste at most a ~12 MB map allocation.
	hintCap = 1 << 18
)

// optimizer carries the per-statement rewrite context.
type optimizer struct {
	env      *storageEnv
	sawStats bool
}

// optimizeLogical applies the rewrite rules and cost-based annotations
// to a statement's logical plan. defs are the statement's CTE
// definitions (for dead-CTE accounting).
func optimizeLogical(root logicalNode, defs []*cteDef, env *storageEnv) logicalNode {
	o := &optimizer{env: env}
	root = o.inlineCTEs(root, false)
	// Propagate consumption sensitivity transitively: a CTE referenced
	// inside another CTE's plan inherits that plan's sensitive uses
	// (row-order changes propagate through every operator, so any path
	// from a sensitive consumer taints the whole upstream chain).
	// References always point at earlier definitions, so walking the
	// defs in reverse order visits every consumer before its producers.
	// (Inlining inside a materialized CTE starts from sensitive=false:
	// it cannot change the CTE's own output rows or order, only its
	// internal pipeline, which the local walk guards.)
	for i := len(defs) - 1; i >= 0; i-- {
		d := defs[i]
		if d.uses == 0 || d.inline {
			continue
		}
		d.plan = o.inlineCTEs(d.plan, false)
		if d.sensitiveUse {
			markCTERefsSensitive(d.plan)
		}
	}
	for _, d := range defs {
		if d.uses == 0 {
			optCounters.cteDead.Add(1)
		}
	}
	// Rewrite the plans of CTEs that stay materialized too.
	for _, d := range defs {
		if d.uses > 0 && !d.inline {
			d.plan = o.rewrite(d.plan)
		}
	}
	root = o.rewrite(root)
	// Cost + physical choices, innermost (materialized CTE) plans first
	// so references see their estimates. A CTE consumed by a float
	// aggregation keeps its materialized row order: order-changing
	// rewrites inside it are disabled via sensitiveUse.
	for _, d := range defs {
		if d.uses > 0 && !d.inline {
			o.estimateNode(d.plan)
			d.plan = o.reorderJoins(d.plan, d.sensitiveUse)
			d.plan = o.choose(d.plan, d.sensitiveUse)
		}
	}
	o.estimateNode(root)
	root = o.reorderJoins(root, false)
	root = o.choose(root, false)
	optCounters.plansOptimized.Add(1)
	if o.sawStats {
		optCounters.plansWithStats.Add(1)
	}
	return root
}

// rewrite runs the expression- and placement-level rules (phases 2-5).
func (o *optimizer) rewrite(root logicalNode) logicalNode {
	o.foldNode(root)
	root = o.splitFilters(root)
	for i := 0; i < 8; i++ {
		var changed bool
		root, changed = o.pushdown(root)
		if !changed {
			break
		}
	}
	o.prune(root, nil)
	return root
}

// --- Phase 1: CTE inlining -------------------------------------------

// sensitiveAggs reports whether an aggregation's accumulation depends on
// input order or morsel boundaries: SUM/TOTAL/AVG accumulate floats in
// order; COUNT/MIN/MAX are associative-commutative and DISTINCT
// (aggs == nil) preserves first-seen order regardless of boundaries.
func sensitiveAggs(aggs []aggCall) bool {
	for _, a := range aggs {
		switch a.Name {
		case "COUNT", "MIN", "MAX":
		default:
			return true
		}
	}
	return false
}

// inlineCTEs replaces single-use CTE references with their subplans.
// sensitive tracks whether an order-sensitive aggregation sits above the
// current position (see the bit-neutrality contract above).
func (o *optimizer) inlineCTEs(n logicalNode, sensitive bool) logicalNode {
	switch t := n.(type) {
	case *lCTERef:
		if t.cte.uses == 1 && !sensitive {
			t.cte.inline = true
			optCounters.cteInlined.Add(1)
			inlined := &lAlias{child: o.inlineCTEs(t.cte.plan, sensitive), table: t.qual, names: t.cte.cols, est: newNodeEst()}
			return inlined
		}
		// The reference stays a scan over the materialized store: record
		// whether an order-sensitive aggregate consumes it, so the CTE's
		// own plan rejects order-changing rewrites.
		t.cte.sensitiveUse = t.cte.sensitiveUse || sensitive
		return t
	case *lAgg:
		t.child = o.inlineCTEs(t.child, sensitive || sensitiveAggs(t.aggs))
		return t
	case *lFilter:
		t.child = o.inlineCTEs(t.child, sensitive)
		return t
	case *lProject:
		t.child = o.inlineCTEs(t.child, sensitive)
		return t
	case *lStrip:
		t.child = o.inlineCTEs(t.child, sensitive)
		return t
	case *lPick:
		t.child = o.inlineCTEs(t.child, sensitive)
		return t
	case *lJoin:
		t.left = o.inlineCTEs(t.left, sensitive)
		t.right = o.inlineCTEs(t.right, sensitive)
		return t
	case *lSort:
		t.child = o.inlineCTEs(t.child, sensitive)
		return t
	case *lLimit:
		t.child = o.inlineCTEs(t.child, sensitive)
		return t
	case *lAlias:
		t.child = o.inlineCTEs(t.child, sensitive)
		return t
	}
	return n
}

// markCTERefsSensitive taints every CTE referenced (at any depth) from
// a plan whose output order a sensitive aggregate depends on.
func markCTERefsSensitive(n logicalNode) {
	if ref, ok := n.(*lCTERef); ok {
		ref.cte.sensitiveUse = true
		return
	}
	for _, c := range lchildren(n) {
		markCTERefsSensitive(c)
	}
}

// --- Phase 2: constant folding ---------------------------------------

// foldable reports whether e is a pure literal expression: no column or
// parameter references and no aggregate calls. All scalar functions in
// the engine are deterministic.
func foldable(e Expr) bool {
	ok := true
	walkExpr(e, func(x Expr) {
		switch f := x.(type) {
		case *ColumnRef, *ParamRef:
			ok = false
		case *FuncCall:
			if isAggregateName(f.Name) {
				ok = false
			}
		}
	})
	return ok
}

// foldExpr replaces pure-literal subexpressions with their value,
// evaluated through the same compiled-expression code the executor
// uses, so folding cannot change semantics. Expressions that error at
// fold time (division by zero) are left for the executor to report.
func foldExpr(e Expr) Expr {
	if e == nil {
		return nil
	}
	if _, isLit := e.(*Literal); isLit {
		return e
	}
	folded := rebuildExpr(e, foldExpr)
	if !foldable(folded) {
		return folded
	}
	c, err := compileExpr(folded, &compileCtx{resolver: planSchema(nil)})
	if err != nil {
		return folded
	}
	v, err := c(nil)
	if err != nil {
		return folded
	}
	optCounters.constFolded.Add(1)
	return &Literal{Val: v}
}

// foldExprs folds a slice in place.
func foldExprs(es []Expr) {
	for i, e := range es {
		es[i] = foldExpr(e)
	}
}

// foldNode folds every expression the node evaluates.
func (o *optimizer) foldNode(n logicalNode) {
	switch t := n.(type) {
	case *lScan:
		foldExprs(t.filters)
	case *lFilter:
		foldExprs(t.conjuncts)
	case *lProject:
		foldExprs(t.exprs)
	case *lJoin:
		foldExprs(t.leftKeys)
		foldExprs(t.rightKeys)
		t.residual = foldExpr(t.residual)
	case *lAgg:
		foldExprs(t.groupBy)
		for i := range t.aggs {
			if t.aggs[i].Arg != nil {
				t.aggs[i].Arg = foldExpr(t.aggs[i].Arg)
			}
		}
	case *lSort:
		for i := range t.keys {
			t.keys[i].expr = foldExpr(t.keys[i].expr)
		}
	}
	for _, c := range lchildren(n) {
		o.foldNode(c)
	}
}

// --- Phase 3: conjunct splitting -------------------------------------

func (o *optimizer) splitFilters(n logicalNode) logicalNode {
	switch t := n.(type) {
	case *lFilter:
		t.child = o.splitFilters(t.child)
		var out []Expr
		for _, c := range t.conjuncts {
			parts := splitConjuncts(c)
			if len(parts) > 1 {
				optCounters.conjunctsSplit.Add(int64(len(parts) - 1))
			}
			out = append(out, parts...)
		}
		t.conjuncts = out
		// Merge stacked filters.
		if cf, ok := t.child.(*lFilter); ok {
			cf.conjuncts = append(cf.conjuncts, t.conjuncts...)
			return cf
		}
		return t
	case *lJoin:
		t.left = o.splitFilters(t.left)
		t.right = o.splitFilters(t.right)
		return t
	default:
		cs := lchildren(n)
		if len(cs) == 1 {
			setChild(n, o.splitFilters(cs[0]))
		}
		return n
	}
}

// setChild replaces a single-child node's child.
func setChild(n logicalNode, child logicalNode) {
	switch t := n.(type) {
	case *lFilter:
		t.child = child
	case *lProject:
		t.child = child
	case *lStrip:
		t.child = child
	case *lPick:
		t.child = child
	case *lAgg:
		t.child = child
	case *lSort:
		t.child = child
	case *lLimit:
		t.child = child
	case *lAlias:
		t.child = child
	}
}

// --- Phase 4: predicate pushdown -------------------------------------

// exprMapColumns deep-copies e, replacing every column reference via fn;
// ok=false aborts the mapping.
func exprMapColumns(e Expr, fn func(*ColumnRef) (Expr, bool)) (Expr, bool) {
	ok := true
	var rec func(Expr) Expr
	rec = func(x Expr) Expr {
		if !ok {
			return x
		}
		if cr, isCol := x.(*ColumnRef); isCol {
			repl, mok := fn(cr)
			if !mok {
				ok = false
				return x
			}
			return repl
		}
		return rebuildExpr(x, rec)
	}
	out := rec(e)
	return out, ok
}

// exprColumnCount counts column references in e.
func exprColumnCount(e Expr) int {
	n := 0
	walkExpr(e, func(x Expr) {
		if _, isCol := x.(*ColumnRef); isCol {
			n++
		}
	})
	return n
}

// exprTotal reports whether e can never raise an evaluation error on
// any input row: comparisons (total ordering over all value types),
// boolean connectives, NULL tests, IN, and BETWEEN over columns,
// literals, and parameters. Arithmetic, functions, and casts can error
// on mixed-type data (the engine is dynamically typed), so a conjunct
// containing them must not be moved below a row-eliminating operator —
// it would then be evaluated on rows the join or aggregation would
// have filtered out, turning a succeeding query into an error.
func exprTotal(e Expr) bool {
	switch t := e.(type) {
	case *ColumnRef, *Literal, *ParamRef:
		return true
	case *BinaryExpr:
		switch t.Op {
		case "=", "==", "!=", "<>", "<", "<=", ">", ">=", "AND", "OR", "LIKE":
			return exprTotal(t.L) && exprTotal(t.R)
		}
		return false
	case *UnaryExpr:
		return t.Op == "NOT" && exprTotal(t.X)
	case *IsNullExpr:
		return exprTotal(t.X)
	case *InExpr:
		if !exprTotal(t.X) {
			return false
		}
		for _, x := range t.List {
			if !exprTotal(x) {
				return false
			}
		}
		return true
	case *BetweenExpr:
		return exprTotal(t.X) && exprTotal(t.Lo) && exprTotal(t.Hi)
	}
	return false
}

// pushdown runs one pass of predicate pushdown over the tree, returning
// the (possibly replaced) node and whether anything moved.
func (o *optimizer) pushdown(n logicalNode) (logicalNode, bool) {
	changed := false
	switch t := n.(type) {
	case *lFilter:
		var child logicalNode = t.child
		var kept []Expr
		for _, c := range t.conjuncts {
			if nc, ok := o.tryPush(c, child); ok {
				child = nc
				changed = true
				optCounters.pushdowns.Add(1)
			} else {
				kept = append(kept, c)
			}
		}
		child, sub := o.pushdown(child)
		changed = changed || sub
		if len(kept) == 0 {
			return child, true
		}
		t.child = child
		t.conjuncts = kept
		return t, changed
	case *lJoin:
		var sub bool
		t.left, sub = o.pushdown(t.left)
		changed = changed || sub
		t.right, sub = o.pushdown(t.right)
		return t, changed || sub
	default:
		cs := lchildren(n)
		if len(cs) == 1 {
			nc, sub := o.pushdown(cs[0])
			setChild(n, nc)
			return n, sub
		}
		return n, false
	}
}

// tryPush attempts to move one conjunct below child, returning the new
// child and whether the push happened. The conjunct's rows-surviving set
// is unchanged by construction, which keeps the rewrite bit-neutral.
func (o *optimizer) tryPush(c Expr, child logicalNode) (logicalNode, bool) {
	if exprColumnCount(c) == 0 {
		// Constant predicates stay put: pushing them below a LEFT join
		// side would change null-extension semantics, and there is no
		// performance to gain.
		return child, false
	}
	switch t := child.(type) {
	case *lScan:
		if !exprResolvesAgainst(c, t.lschema()) {
			return child, false
		}
		t.filters = append(t.filters, c)
		return t, true
	case *lFilter:
		if !exprResolvesAgainst(c, t.lschema()) {
			return child, false
		}
		t.conjuncts = append(t.conjuncts, c)
		return t, true
	case *lAlias:
		cs := t.child.lschema()
		as := t.lschema()
		mapped, ok := exprMapColumns(c, func(cr *ColumnRef) (Expr, bool) {
			idx, err := as.resolveColumn(cr.Table, cr.Name)
			if err != nil {
				return nil, false
			}
			cc := cs[idx]
			// The mapped reference must resolve back to the same slot.
			if ri, rerr := cs.resolveColumn(cc.table, cc.name); rerr != nil || ri != idx {
				return nil, false
			}
			return &ColumnRef{Table: cc.table, Name: cc.name}, true
		})
		if !ok {
			return child, false
		}
		if nc, pushed := o.tryPush(mapped, t.child); pushed {
			t.child = nc
			return t, true
		}
		t.child = &lFilter{child: t.child, conjuncts: []Expr{mapped}, est: newNodeEst()}
		return t, true
	case *lStrip:
		if !exprResolvesAgainst(c, t.child.lschema()) {
			return child, false
		}
		if nc, pushed := o.tryPush(c, t.child); pushed {
			t.child = nc
			return t, true
		}
		t.child = &lFilter{child: t.child, conjuncts: []Expr{c}, est: newNodeEst()}
		return t, true
	case *lProject:
		cs := t.child.lschema()
		ps := t.cols
		mapped, ok := exprMapColumns(c, func(cr *ColumnRef) (Expr, bool) {
			idx, err := ps.resolveColumn(cr.Table, cr.Name)
			if err != nil {
				return nil, false
			}
			// Only substitute cheap projections: bare columns and
			// literals. Substituting computed expressions would evaluate
			// them twice.
			switch pe := t.exprs[idx].(type) {
			case *ColumnRef:
				if !exprResolvesAgainst(pe, cs) {
					return nil, false
				}
				return &ColumnRef{Table: pe.Table, Name: pe.Name}, true
			case *Literal:
				return pe, true
			}
			return nil, false
		})
		if !ok {
			return child, false
		}
		if nc, pushed := o.tryPush(mapped, t.child); pushed {
			t.child = nc
			return t, true
		}
		t.child = &lFilter{child: t.child, conjuncts: []Expr{mapped}, est: newNodeEst()}
		return t, true
	case *lAgg:
		// A conjunct over group-key outputs filters groups; it can
		// equivalently filter input rows before grouping — but it will
		// then be evaluated on every input row, so it must be total.
		if !exprTotal(c) {
			return child, false
		}
		gs := t.lschema()
		cs := t.child.lschema()
		mapped, ok := exprMapColumns(c, func(cr *ColumnRef) (Expr, bool) {
			idx, err := gs.resolveColumn(cr.Table, cr.Name)
			if err != nil || idx >= len(t.groupBy) {
				return nil, false
			}
			g := t.groupBy[idx]
			if !exprResolvesAgainst(g, cs) {
				return nil, false
			}
			return g, true
		})
		if !ok {
			return child, false
		}
		if nc, pushed := o.tryPush(mapped, t.child); pushed {
			t.child = nc
			return t, true
		}
		t.child = &lFilter{child: t.child, conjuncts: []Expr{mapped}, est: newNodeEst()}
		return t, true
	case *lJoin:
		// Below the join the conjunct sees rows the join would have
		// eliminated; only error-free predicate shapes may move.
		if !exprTotal(c) {
			return child, false
		}
		ls, rs := t.left.lschema(), t.right.lschema()
		onLeft := exprResolvesAgainst(c, ls)
		onRight := exprResolvesAgainst(c, rs)
		if onLeft && onRight {
			return child, false // ambiguous; leave above
		}
		if onLeft {
			if nc, pushed := o.tryPush(c, t.left); pushed {
				t.left = nc
			} else {
				t.left = &lFilter{child: t.left, conjuncts: []Expr{c}, est: newNodeEst()}
			}
			return t, true
		}
		// Pushing to the right side of a LEFT join would change
		// null-extension semantics.
		if onRight && t.joinType != "LEFT" {
			if nc, pushed := o.tryPush(c, t.right); pushed {
				t.right = nc
			} else {
				t.right = &lFilter{child: t.right, conjuncts: []Expr{c}, est: newNodeEst()}
			}
			return t, true
		}
		return child, false
	}
	return child, false
}

// --- Phase 5: projection pruning -------------------------------------

// markNeeds sets need[i] for every column of schema that e references;
// unresolvable references conservatively mark everything.
func markNeeds(e Expr, schema planSchema, need []bool) {
	if e == nil {
		return
	}
	walkExpr(e, func(x Expr) {
		cr, isCol := x.(*ColumnRef)
		if !isCol {
			return
		}
		idx, err := schema.resolveColumn(cr.Table, cr.Name)
		if err != nil {
			for i := range need {
				need[i] = true
			}
			return
		}
		need[idx] = true
	})
}

func allNeeded(w int) []bool {
	need := make([]bool, w)
	for i := range need {
		need[i] = true
	}
	return need
}

// prune walks top-down with the set of output columns the parent needs
// (nil = all) and records the required column subset on every scan.
func (o *optimizer) prune(n logicalNode, need []bool) {
	if need == nil {
		need = allNeeded(len(n.lschema()))
	}
	switch t := n.(type) {
	case *lScan:
		// Scan filters run against the full-width schema before pruning
		// is applied at lowering, so their columns must stay.
		cn := append([]bool(nil), need...)
		for _, f := range t.filters {
			markNeeds(f, t.cols, cn)
		}
		var keep []int
		for i, nd := range cn {
			if nd {
				keep = append(keep, i)
			}
		}
		if len(keep) == 0 {
			keep = []int{0} // COUNT(*)-style: retain one column
		}
		if len(keep) < len(t.cols) {
			t.keep = keep
			optCounters.scansPruned.Add(1)
		}
	case *lFilter:
		cs := t.child.lschema()
		cn := append([]bool(nil), need...)
		for _, c := range t.conjuncts {
			markNeeds(c, cs, cn)
		}
		o.prune(t.child, cn)
	case *lProject:
		cs := t.child.lschema()
		cn := make([]bool, len(cs))
		// The projection evaluates every expression regardless of which
		// outputs the parent needs, so all referenced columns stay.
		for _, e := range t.exprs {
			markNeeds(e, cs, cn)
		}
		o.prune(t.child, cn)
	case *lStrip:
		cs := t.child.lschema()
		cn := make([]bool, len(cs))
		copy(cn, need)
		for i := t.keep; i < len(cn); i++ {
			cn[i] = true // hidden sort keys
		}
		o.prune(t.child, cn)
	case *lPick:
		cn := make([]bool, len(t.child.lschema()))
		for i, k := range t.idxs {
			if need[i] {
				cn[k] = true
			}
		}
		o.prune(t.child, cn)
	case *lJoin:
		ls, rs := t.left.lschema(), t.right.lschema()
		lneed := make([]bool, len(ls))
		rneed := make([]bool, len(rs))
		copy(lneed, need[:min(len(ls), len(need))])
		if len(need) > len(ls) {
			copy(rneed, need[len(ls):])
		}
		for _, k := range t.leftKeys {
			markNeeds(k, ls, lneed)
		}
		for _, k := range t.rightKeys {
			markNeeds(k, rs, rneed)
		}
		if t.residual != nil {
			comb := append(append([]bool(nil), lneed...), rneed...)
			markNeeds(t.residual, t.lschema(), comb)
			copy(lneed, comb[:len(ls)])
			copy(rneed, comb[len(ls):])
		}
		o.prune(t.left, lneed)
		o.prune(t.right, rneed)
	case *lAgg:
		cs := t.child.lschema()
		cn := make([]bool, len(cs))
		for _, g := range t.groupBy {
			markNeeds(g, cs, cn)
		}
		for _, a := range t.aggs {
			markNeeds(a.Arg, cs, cn)
		}
		o.prune(t.child, cn)
	case *lSort:
		cs := t.child.lschema()
		cn := append([]bool(nil), need...)
		for _, k := range t.keys {
			markNeeds(k.expr, cs, cn)
		}
		o.prune(t.child, cn)
	case *lLimit:
		o.prune(t.child, append([]bool(nil), need...))
	case *lAlias:
		o.prune(t.child, append([]bool(nil), need...))
	case *lCTERef:
		// The CTE plan is shared; prune it with full width (its own
		// rewrite pass prunes inside).
	}
}

// --- Phase 6: cost estimation ----------------------------------------

// colStatsFor resolves the statistics of a (table, column) reference by
// walking down to the base scan that produces it.
func (o *optimizer) colStatsFor(n logicalNode, table, name string) (*colStats, int64) {
	switch t := n.(type) {
	case *lScan:
		idx, err := t.lschema().resolveColumn(table, name)
		if err != nil {
			return nil, 0
		}
		if t.keep != nil {
			idx = t.keep[idx]
		}
		ts := storeStats(t.meta.store)
		if ts == nil {
			return nil, 0
		}
		o.sawStats = true
		return ts.col(idx), ts.rows
	case *lFilter:
		return o.colStatsFor(t.child, table, name)
	case *lStrip:
		return o.colStatsFor(t.child, table, name)
	case *lSort:
		return o.colStatsFor(t.child, table, name)
	case *lLimit:
		return o.colStatsFor(t.child, table, name)
	case *lAlias:
		as := t.lschema()
		idx, err := as.resolveColumn(table, name)
		if err != nil {
			return nil, 0
		}
		cc := t.child.lschema()[idx]
		if cc.table == "" && cc.name == "" {
			return nil, 0
		}
		return o.colStatsFor(t.child, cc.table, cc.name)
	case *lPick:
		ps := t.lschema()
		idx, err := ps.resolveColumn(table, name)
		if err != nil {
			return nil, 0
		}
		cc := t.child.lschema()[t.idxs[idx]]
		return o.colStatsFor(t.child, cc.table, cc.name)
	case *lProject:
		idx, err := t.cols.resolveColumn(table, name)
		if err != nil {
			return nil, 0
		}
		if cr, ok := t.exprs[idx].(*ColumnRef); ok {
			return o.colStatsFor(t.child, cr.Table, cr.Name)
		}
		return nil, 0
	case *lJoin:
		if cs, rows := o.colStatsFor(t.left, table, name); cs != nil {
			return cs, rows
		}
		return o.colStatsFor(t.right, table, name)
	case *lCTERef:
		idx, err := t.cols.resolveColumn(table, name)
		if err != nil {
			return nil, 0
		}
		ps := t.cte.plan.lschema()
		if idx >= len(ps) {
			return nil, 0
		}
		cc := ps[idx]
		return o.colStatsFor(t.cte.plan, cc.table, cc.name)
	}
	return nil, 0
}

// exprDistinct estimates the number of distinct values e takes over n's
// output, or 0 when unknown.
func (o *optimizer) exprDistinct(n logicalNode, e Expr) float64 {
	cr, ok := e.(*ColumnRef)
	if !ok {
		return 0
	}
	cs, _ := o.colStatsFor(n, cr.Table, cr.Name)
	if cs == nil {
		return 0
	}
	return cs.distinct()
}

// litValue unwraps a literal operand.
func litValue(e Expr) (Value, bool) {
	if l, ok := e.(*Literal); ok {
		return l.Val, true
	}
	return Value{}, false
}

// isNormPrunePredicate recognizes the translated zero-amplitude pruning
// shape ((x*x) + (y*y)) > eps² emitted by core.Translate's HAVING.
func isNormPrunePredicate(e Expr) bool {
	b, ok := e.(*BinaryExpr)
	if !ok || (b.Op != ">" && b.Op != ">=") {
		return false
	}
	if _, isLit := litValue(b.R); !isLit {
		return false
	}
	sum, ok := b.L.(*BinaryExpr)
	if !ok || sum.Op != "+" {
		return false
	}
	isSquare := func(x Expr) bool {
		m, ok := x.(*BinaryExpr)
		return ok && m.Op == "*" && m.L.Deparse() == m.R.Deparse()
	}
	return isSquare(sum.L) && isSquare(sum.R)
}

// selectivity estimates the fraction of n's rows that satisfy conjunct c.
func (o *optimizer) selectivity(n logicalNode, c Expr) float64 {
	clamp := func(s float64) float64 {
		return math.Min(1, math.Max(0.0001, s))
	}
	switch t := c.(type) {
	case *Literal:
		if b, known := t.Val.Bool(); known {
			if b {
				return 1
			}
			return 0.0001
		}
		return defaultFilterSel
	case *UnaryExpr:
		if t.Op == "NOT" {
			return clamp(1 - o.selectivity(n, t.X))
		}
	case *IsNullExpr:
		if cr, ok := t.X.(*ColumnRef); ok {
			if cs, rows := o.colStatsFor(n, cr.Table, cr.Name); cs != nil && rows > 0 {
				f := cs.nullFraction(rows)
				if t.Not {
					f = 1 - f
				}
				return clamp(f)
			}
		}
		if t.Not {
			return clamp(0.9)
		}
		return clamp(0.1)
	case *InExpr:
		if d := o.exprDistinct(n, t.X); d > 0 {
			s := float64(len(t.List)) / d
			if t.Not {
				s = 1 - s
			}
			return clamp(s)
		}
		s := float64(len(t.List)) * defaultEqSel
		if t.Not {
			s = 1 - s
		}
		return clamp(s)
	case *BetweenExpr:
		if cr, ok := t.X.(*ColumnRef); ok {
			cs, _ := o.colStatsFor(n, cr.Table, cr.Name)
			lo, lok := litValue(t.Lo)
			hi, hok := litValue(t.Hi)
			if cs != nil && cs.intSeen && lok && hok && lo.T == TypeInt && hi.T == TypeInt {
				s := intRangeFraction(cs, lo.I, hi.I)
				if t.Not {
					s = 1 - s
				}
				return clamp(s)
			}
		}
		if t.Not {
			return clamp(0.75)
		}
		return clamp(0.25)
	case *BinaryExpr:
		switch t.Op {
		case "AND":
			return clamp(o.selectivity(n, t.L) * o.selectivity(n, t.R))
		case "OR":
			a, b := o.selectivity(n, t.L), o.selectivity(n, t.R)
			return clamp(a + b - a*b)
		case "=", "==":
			if d := o.exprDistinct(n, t.L); d > 0 {
				return clamp(1 / d)
			}
			if d := o.exprDistinct(n, t.R); d > 0 {
				return clamp(1 / d)
			}
			return defaultEqSel
		case "!=", "<>":
			if d := o.exprDistinct(n, t.L); d > 0 {
				return clamp(1 - 1/d)
			}
			return clamp(1 - defaultEqSel)
		case "<", "<=", ">", ">=":
			if isNormPrunePredicate(t) {
				return pruneHavingSel
			}
			cr, crOK := t.L.(*ColumnRef)
			lit, litOK := litValue(t.R)
			op := t.Op
			if !crOK {
				// literal <op> column: mirror.
				if cr2, ok2 := t.R.(*ColumnRef); ok2 {
					if lit2, lok2 := litValue(t.L); lok2 {
						cr, lit, crOK, litOK = cr2, lit2, true, true
						switch op {
						case "<":
							op = ">"
						case "<=":
							op = ">="
						case ">":
							op = "<"
						case ">=":
							op = "<="
						}
					}
				}
			}
			if crOK && litOK && lit.T == TypeInt {
				if cs, _ := o.colStatsFor(n, cr.Table, cr.Name); cs != nil && cs.intSeen {
					var s float64
					switch op {
					case "<":
						s = intRangeFraction(cs, cs.intMin, lit.I-1)
					case "<=":
						s = intRangeFraction(cs, cs.intMin, lit.I)
					case ">":
						s = intRangeFraction(cs, lit.I+1, cs.intMax)
					case ">=":
						s = intRangeFraction(cs, lit.I, cs.intMax)
					}
					return clamp(s)
				}
			}
			return defaultFilterSel
		}
	}
	return defaultFilterSel
}

// intRangeFraction interpolates how much of [min..max] the query range
// [lo..hi] covers, assuming a uniform distribution.
func intRangeFraction(cs *colStats, lo, hi int64) float64 {
	if hi < lo {
		return 0
	}
	if lo < cs.intMin {
		lo = cs.intMin
	}
	if hi > cs.intMax {
		hi = cs.intMax
	}
	if hi < lo {
		return 0
	}
	width := float64(cs.intMax-cs.intMin) + 1
	return (float64(hi-lo) + 1) / width
}

// estimateNode fills the est annotation of n's subtree and returns the
// estimated output rows.
func (o *optimizer) estimateNode(n logicalNode) float64 {
	est := n.estimate()
	if est.rows >= 0 {
		return est.rows
	}
	rows, cost := 0.0, 0.0
	switch t := n.(type) {
	case *lOneRow:
		rows, cost = 1, 1
	case *lScan:
		base := float64(t.meta.store.Len())
		if storeStats(t.meta.store) != nil {
			o.sawStats = true
		}
		rows = base
		for _, f := range t.filters {
			rows *= o.selectivity(t, f)
		}
		cost = base * (1 + 0.1*float64(len(t.filters)))
	case *lCTERef:
		rows = o.estimateNode(t.cte.plan)
		cost = rows
	case *lFilter:
		rows = o.estimateNode(t.child)
		for _, c := range t.conjuncts {
			rows *= o.selectivity(t.child, c)
		}
		cost = t.child.estimate().cost + o.estimateNode(t.child)*0.1*float64(len(t.conjuncts))
	case *lProject:
		rows = o.estimateNode(t.child)
		cost = t.child.estimate().cost + rows*0.1*float64(len(t.exprs))
	case *lStrip:
		rows = o.estimateNode(t.child)
		cost = t.child.estimate().cost
	case *lPick:
		rows = o.estimateNode(t.child)
		cost = t.child.estimate().cost
	case *lAlias:
		rows = o.estimateNode(t.child)
		cost = t.child.estimate().cost
	case *lJoin:
		lr := o.estimateNode(t.left)
		rr := o.estimateNode(t.right)
		if len(t.leftKeys) > 0 {
			rows = lr * rr
			for i := range t.leftKeys {
				d := math.Max(o.exprDistinct(t.left, t.leftKeys[i]), o.exprDistinct(t.right, t.rightKeys[i]))
				if d <= 0 {
					d = math.Max(1, math.Max(lr, rr))
				}
				rows /= d
			}
		} else {
			rows = lr * rr // cross / nested loop
		}
		if t.residual != nil {
			rows *= defaultFilterSel
		}
		if t.joinType == "LEFT" && rows < lr {
			rows = lr
		}
		cost = t.left.estimate().cost + t.right.estimate().cost + rr + lr + rows
	case *lAgg:
		in := o.estimateNode(t.child)
		if len(t.groupBy) == 0 {
			rows = 1
		} else {
			groups := 1.0
			known := true
			for _, g := range t.groupBy {
				d := o.exprDistinct(t.child, g)
				if d <= 0 {
					known = false
					break
				}
				groups *= d
			}
			if !known {
				groups = in / 2
			}
			rows = math.Max(1, math.Min(in, groups))
		}
		cost = t.child.estimate().cost + 2*in + rows
	case *lSort:
		rows = o.estimateNode(t.child)
		cost = t.child.estimate().cost + rows*math.Log2(rows+2)
	case *lLimit:
		rows = o.estimateNode(t.child)
		if lim, ok := litValue(t.limit); ok && lim.T == TypeInt && float64(lim.I) < rows {
			rows = float64(lim.I)
		}
		cost = t.child.estimate().cost
	}
	est.rows = rows
	est.cost = cost
	return rows
}

// estRowBytes approximates the in-memory bytes of one row of a schema.
func estRowBytes(width int) float64 { return float64(48*width + 24) }

// --- Phase 6b: physical choices --------------------------------------

// hintForBudget clamps a cardinality estimate into a hash-table
// pre-sizing hint, bounded by the memory budget so a bad estimate
// cannot over-allocate.
func hintForBudget(rows float64, budget *MemBudget) int64 {
	if rows <= 0 || math.IsInf(rows, 0) || math.IsNaN(rows) {
		return 0
	}
	h := int64(rows)
	if h > hintCap {
		h = hintCap
	}
	if limit := budget.Limit(); limit > 0 && h > limit/64 {
		h = limit / 64
	}
	return h
}

func (o *optimizer) hintFor(rows float64) int64 { return hintForBudget(rows, o.env.budget) }

// exprIntLike reports whether a single-column hash key is expected to
// take the int64-keyed fast path. The hash tables split single-column
// keys into an int64 map (integer-like values) and a string map;
// pre-sizing always lands on the int64 map, so a key the statistics
// prove to be TEXT must not carry a hint (it would allocate a large map
// that never holds an entry). Unknown columns and computed expressions
// default to integer-like: the translated gate queries key on bitwise
// index math.
func (o *optimizer) exprIntLike(n logicalNode, e Expr) bool {
	switch t := e.(type) {
	case *ColumnRef:
		if cs, rows := o.colStatsFor(n, t.Table, t.Name); cs != nil && rows > 0 {
			return cs.intSeen || cs.nulls == rows
		}
		return true
	case *Literal:
		return t.Val.T != TypeText
	}
	return true
}

// choose walks the estimated tree making the cost-based physical
// decisions. sensitive tracks order-sensitive aggregation ancestors
// (see the bit-neutrality contract).
func (o *optimizer) choose(n logicalNode, sensitive bool) logicalNode {
	switch t := n.(type) {
	case *lAgg:
		t.hintable = len(t.groupBy) != 1 || o.exprIntLike(t.child, t.groupBy[0])
		if t.hintable {
			t.groupHint = o.hintFor(t.est.rows)
		}
		t.child = o.choose(t.child, sensitive || sensitiveAggs(t.aggs))
		return t
	case *lJoin:
		t.left = o.choose(t.left, sensitive)
		t.right = o.choose(t.right, sensitive)
		return o.chooseJoin(t, sensitive)
	default:
		cs := lchildren(n)
		if len(cs) == 1 {
			setChild(n, o.choose(cs[0], sensitive))
		}
		return n
	}
}

// reorderJoins rewrites left-deep chains of INNER equi-joins into the
// greedy minimum-intermediate-cardinality order. Runs after estimation
// and before the per-join choices; the same order-sensitivity guard as
// build-side flips applies (reordering changes output row order).
func (o *optimizer) reorderJoins(n logicalNode, sensitive bool) logicalNode {
	switch t := n.(type) {
	case *lAgg:
		t.child = o.reorderJoins(t.child, sensitive || sensitiveAggs(t.aggs))
		return t
	case *lJoin:
		return o.reorderChain(t, sensitive)
	default:
		cs := lchildren(n)
		if len(cs) == 1 {
			setChild(n, o.reorderJoins(cs[0], sensitive))
		}
		return n
	}
}

// chainLink is one join of a left-deep INNER chain.
type chainLink struct {
	right    logicalNode
	lks, rks []Expr
	residual Expr
}

// reorderChain collects the left-deep INNER equi-join chain rooted at t,
// recurses into its inputs, and greedily reorders the join sequence to
// minimize estimated intermediate cardinality, wrapping the result in a
// zero-copy column reorder that restores the original output layout.
func (o *optimizer) reorderChain(t *lJoin, sensitive bool) logicalNode {
	var links []chainLink
	cur := t
	var base logicalNode
	for {
		if cur.joinType != "INNER" || len(cur.leftKeys) == 0 {
			base = cur
			break
		}
		links = append([]chainLink{{right: cur.right, lks: cur.leftKeys, rks: cur.rightKeys, residual: cur.residual}}, links...)
		lj, ok := cur.left.(*lJoin)
		if !ok {
			base = cur.left
			break
		}
		cur = lj
	}
	if bj, ok := base.(*lJoin); ok && bj == cur && len(links) > 0 {
		// The chain bottomed out at a non-INNER join: recurse into it as
		// an opaque base.
		base = o.reorderChain(bj, sensitive)
	} else if len(links) == 0 {
		// t itself does not qualify; recurse into both sides and keep.
		t.left = o.reorderJoins(t.left, sensitive)
		t.right = o.reorderJoins(t.right, sensitive)
		return t
	} else {
		base = o.reorderJoins(base, sensitive)
	}
	for i := range links {
		links[i].right = o.reorderJoins(links[i].right, sensitive)
	}

	rebuildOriginal := func() logicalNode {
		node := base
		for _, l := range links {
			node = &lJoin{left: node, right: l.right, joinType: "INNER",
				leftKeys: l.lks, rightKeys: l.rks, residual: l.residual, est: newNodeEst()}
			o.estimateNode(node)
		}
		return node
	}

	big := false
	for _, l := range links {
		if l.right.estimate().rows > flipFloor {
			big = true
		}
	}
	if len(links) < 2 || sensitive || !big {
		return rebuildOriginal()
	}

	// Greedy order: repeatedly join the remaining input whose join with
	// the accumulated left side has the smallest estimated output.
	acc := base
	used := make([]bool, len(links))
	var order []int
	var newInter, oldInter float64
	for step := 0; step < len(links); step++ {
		bestIdx, bestRows := -1, math.Inf(1)
		var bestNode *lJoin
		for i, l := range links {
			if used[i] {
				continue
			}
			accSchema := acc.lschema()
			ok := true
			for _, k := range l.lks {
				if !exprResolvesAgainst(k, accSchema) {
					ok = false
					break
				}
			}
			if ok && l.residual != nil {
				comb := append(append(planSchema{}, accSchema...), l.right.lschema()...)
				ok = exprResolvesAgainst(l.residual, comb)
			}
			if !ok {
				continue
			}
			cand := &lJoin{left: acc, right: l.right, joinType: "INNER",
				leftKeys: l.lks, rightKeys: l.rks, residual: l.residual, est: newNodeEst()}
			rows := o.estimateNode(cand)
			if rows < bestRows {
				bestIdx, bestRows, bestNode = i, rows, cand
			}
		}
		if bestIdx < 0 {
			return rebuildOriginal() // no valid order; keep as written
		}
		used[bestIdx] = true
		order = append(order, bestIdx)
		acc = bestNode
		if step < len(links)-1 {
			newInter += bestRows
		}
	}
	identity := true
	for i, idx := range order {
		if idx != i {
			identity = false
		}
	}
	if identity {
		return rebuildOriginal()
	}
	// Estimate the original chain's intermediates for comparison.
	origAcc := base
	for i, l := range links {
		cand := &lJoin{left: origAcc, right: l.right, joinType: "INNER",
			leftKeys: l.lks, rightKeys: l.rks, residual: l.residual, est: newNodeEst()}
		rows := o.estimateNode(cand)
		origAcc = cand
		if i < len(links)-1 {
			oldInter += rows
		}
	}
	if newInter >= oldInter*0.9 {
		return rebuildOriginal() // not clearly better; keep the written order
	}

	// Restore the original column layout: base columns first, then each
	// join input's columns in written order.
	widths := make([]int, len(links))
	for i, l := range links {
		widths[i] = len(l.right.lschema())
	}
	baseWidth := len(base.lschema())
	newOffset := make([]int, len(links))
	off := baseWidth
	for _, idx := range order {
		newOffset[idx] = off
		off += widths[idx]
	}
	idxs := make([]int, 0, off)
	for i := 0; i < baseWidth; i++ {
		idxs = append(idxs, i)
	}
	for i := range links {
		for j := 0; j < widths[i]; j++ {
			idxs = append(idxs, newOffset[i]+j)
		}
	}
	optCounters.joinReorders.Add(1)
	pick := &lPick{child: acc, idxs: idxs, est: &nodeEst{rows: acc.estimate().rows, cost: acc.estimate().cost}}
	return pick
}

// chooseJoin applies build-side flipping and the streaming-vs-grace
// strategy choice to one join.
func (o *optimizer) chooseJoin(t *lJoin, sensitive bool) logicalNode {
	lr, rr := t.left.estimate().rows, t.right.estimate().rows
	var result logicalNode = t

	// Build-side flip: the executor builds the hash table from the RIGHT
	// input. When the left side is estimated much smaller, swap so the
	// small side builds. Only for INNER equi-joins, only above the size
	// floor, and never under an order-sensitive aggregate (the probe
	// order — and thus output order — changes).
	if t.joinType == "INNER" && len(t.leftKeys) > 0 && !t.flipped && !sensitive &&
		lr >= 0 && rr > flipFloor && lr*2 < rr {
		lw, rw := len(t.left.lschema()), len(t.right.lschema())
		flipped := &lJoin{
			left: t.right, right: t.left, joinType: t.joinType,
			leftKeys: t.rightKeys, rightKeys: t.leftKeys,
			residual: t.residual, flipped: true,
			est: &nodeEst{rows: t.est.rows, cost: t.est.cost},
		}
		idxs := make([]int, 0, lw+rw)
		for i := 0; i < lw; i++ {
			idxs = append(idxs, rw+i)
		}
		for i := 0; i < rw; i++ {
			idxs = append(idxs, i)
		}
		optCounters.buildFlips.Add(1)
		t = flipped
		result = &lPick{child: flipped, idxs: idxs, est: &nodeEst{rows: flipped.est.rows, cost: flipped.est.cost}}
	}

	// Streaming vs grace: when the estimated build side cannot fit the
	// whole budget, skip the doomed in-memory build. (The unoptimized
	// plan would overflow into the same grace join after wasted work.)
	if limit := o.env.budget.Limit(); limit > 0 && o.env.spillEnabled && len(t.leftKeys) > 0 {
		buildBytes := t.right.estimate().rows * estRowBytes(len(t.right.lschema())+len(t.rightKeys))
		if buildBytes > float64(limit) {
			t.strategy = joinGrace
			optCounters.gracePrechosen.Add(1)
		}
	}
	t.hintable = len(t.rightKeys) != 1 || o.exprIntLike(t.right, t.rightKeys[0])
	if t.hintable {
		t.buildHint = o.hintFor(t.right.estimate().rows)
	}
	return result
}
