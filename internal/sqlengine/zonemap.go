package sqlengine

// Zone-map skip-scan: pushed-down scan filters are compiled into zone
// checks that decide, from per-morsel (or per-spill-chunk) zone
// entries alone, whether a whole morsel can be skipped without
// decoding a single row.
//
// Soundness contract: a check returns true only when the zone PROVES
// that no row of the morsel satisfies the conjunct under the engine's
// own comparison semantics (CompareSQL / the vectorized comparators).
// Because the pushed filter above the scan is the AND of the same
// conjuncts, a skipped morsel produces exactly the rows the filter
// would have produced — none — and the morsel-order merge contract
// makes that bit-neutral across worker counts and layouts.
//
// Two shapes are recognized:
//
//  1. col <op> literal (either operand order) for the comparison
//     operators. Int zones use exact int64 bounds; int-vs-float
//     comparisons go through float64 conversion on BOTH the zone
//     bounds and the literal — the same conversion CompareSQL applies
//     per row, and float64(int64) is monotone, so converted bounds
//     still bound every converted row value.
//  2. the translated norm-prune shape ((x*x) + (y*y)) > eps² on REAL
//     columns. Per row the engine computes fl(fl(x·x)+fl(y·y)) with
//     round-to-nearest, which is monotone in |x|, |y|: with
//     bx = max|x| and by = max|y| over the zone,
//     fl(fl(bx·bx)+fl(by·by)) is an upper bound for every row's value,
//     so if that bound fails the threshold no row can pass. The
//     float64(...) conversions in the bound computation forbid FMA
//     contraction, matching the kernel and the interpreted evaluator.
//
// Zones that contain NaN refuse to prove anything (the engine's
// comparator treats NaN as numerically equal to everything), as do
// zones holding text/bool/mixed values. All-NULL zones prove every
// comparison empty: NULL comparisons are unknown and filters drop
// unknown rows.

type zoneCheckKind uint8

const (
	zcCmp  zoneCheckKind = iota // col <op> literal
	zcNorm                      // ((x*x)+(y*y)) >/>= eps2
)

// zoneCheck is one compiled conjunct. Column indices are PHYSICAL
// store columns (the scan's keep mapping is already applied).
type zoneCheck struct {
	kind zoneCheckKind
	// zcCmp:
	col int
	op  string // canonical: literal on the right
	lit Value  // TypeInt or TypeFloat only
	// zcNorm:
	xcol, ycol int
	eps2       float64
	strict     bool // ">" (true) vs ">=" (false)
}

// zonePred is the set of zone checks compiled from a scan's pushed
// filter conjuncts. Proving ANY single conjunct empty proves the AND
// empty, so unsupported conjuncts are simply dropped at compile time.
type zonePred struct {
	checks []zoneCheck
}

// mirrorOp rewrites lit <op> col as col <op'> lit.
func mirrorOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op // =, ==, !=, <> are symmetric
}

// compileZonePred compiles a scan's pushed-down conjuncts against the
// scan schema, mapping schema slots through keep onto physical store
// columns. Returns nil when no conjunct is zone-checkable.
func compileZonePred(filters []Expr, schema planSchema, keep []int) *zonePred {
	phys := func(e Expr) (int, bool) {
		cr, ok := e.(*ColumnRef)
		if !ok {
			return 0, false
		}
		idx, err := schema.resolveColumn(cr.Table, cr.Name)
		if err != nil {
			return 0, false
		}
		if keep != nil {
			if idx >= len(keep) {
				return 0, false
			}
			idx = keep[idx]
		}
		return idx, true
	}
	var checks []zoneCheck
	for _, f := range filters {
		b, ok := f.(*BinaryExpr)
		if !ok {
			continue
		}
		if c, ok := compileNormCheck(b, phys); ok {
			checks = append(checks, c)
			continue
		}
		if c, ok := compileCmpCheck(b, phys); ok {
			checks = append(checks, c)
		}
	}
	if len(checks) == 0 {
		return nil
	}
	return &zonePred{checks: checks}
}

// compileCmpCheck recognizes col <op> literal (either order).
func compileCmpCheck(b *BinaryExpr, phys func(Expr) (int, bool)) (zoneCheck, bool) {
	switch b.Op {
	case "=", "==", "!=", "<>", "<", "<=", ">", ">=":
	default:
		return zoneCheck{}, false
	}
	op := b.Op
	colE, litE := b.L, b.R
	if _, isLit := litValue(b.R); !isLit {
		if _, isLit := litValue(b.L); !isLit {
			return zoneCheck{}, false
		}
		colE, litE = b.R, b.L
		op = mirrorOp(op)
	}
	lit, _ := litValue(litE)
	if lit.T != TypeInt && lit.T != TypeFloat {
		return zoneCheck{}, false
	}
	if lit.T == TypeFloat && lit.F != lit.F {
		return zoneCheck{}, false // NaN literal
	}
	col, ok := phys(colE)
	if !ok {
		return zoneCheck{}, false
	}
	return zoneCheck{kind: zcCmp, col: col, op: op, lit: lit}, true
}

// compileNormCheck recognizes ((x*x) + (y*y)) >/>= eps2 where x and y
// are column references and eps2 a REAL literal — the translated
// zero-amplitude pruning shape.
func compileNormCheck(b *BinaryExpr, phys func(Expr) (int, bool)) (zoneCheck, bool) {
	if b.Op != ">" && b.Op != ">=" {
		return zoneCheck{}, false
	}
	lit, isLit := litValue(b.R)
	if !isLit || lit.T != TypeFloat || lit.F != lit.F || lit.F < 0 {
		return zoneCheck{}, false
	}
	sum, ok := b.L.(*BinaryExpr)
	if !ok || sum.Op != "+" {
		return zoneCheck{}, false
	}
	squareCol := func(e Expr) (int, bool) {
		m, ok := e.(*BinaryExpr)
		if !ok || m.Op != "*" {
			return 0, false
		}
		lc, lok := m.L.(*ColumnRef)
		rc, rok := m.R.(*ColumnRef)
		if !lok || !rok || lc.Name != rc.Name || lc.Table != rc.Table {
			return 0, false
		}
		return phys(m.L)
	}
	x, okx := squareCol(sum.L)
	y, oky := squareCol(sum.R)
	if !okx || !oky {
		return zoneCheck{}, false
	}
	return zoneCheck{kind: zcNorm, xcol: x, ycol: y, eps2: lit.F, strict: b.Op == ">"}, true
}

// skip reports whether the zones prove the whole unit (morsel or
// chunk) empty under the pushed filter. zone returns the unit's zone
// entry for a physical column, or nil when unavailable — a nil zone
// makes that check unprovable, never a wrong skip.
func (zp *zonePred) skip(zone func(col int) *zoneEntry) bool {
	for i := range zp.checks {
		if zp.checks[i].provesEmpty(zone) {
			return true
		}
	}
	return false
}

func (zc *zoneCheck) provesEmpty(zone func(col int) *zoneEntry) bool {
	switch zc.kind {
	case zcNorm:
		zx, zy := zone(zc.xcol), zone(zc.ycol)
		if zx == nil || zy == nil || zx.rows == 0 {
			return false
		}
		// A NULL operand makes the whole predicate unknown → dropped.
		if zx.nulls == zx.rows || zy.nulls == zy.rows {
			return true
		}
		if zx.hasNaN || zy.hasNaN || zx.hasOther || zy.hasOther || zx.hasInt || zy.hasInt {
			return false
		}
		bx, by := zx.absMax(), zy.absMax()
		// fl(fl(bx²)+fl(by²)) ≥ every row's fl(fl(x²)+fl(y²)): squaring
		// and addition are monotone and round-to-nearest preserves
		// monotonicity. Explicit float64() conversions forbid FMA.
		bound := float64(float64(bx*bx) + float64(by*by))
		if zc.strict {
			return !(bound > zc.eps2)
		}
		return !(bound >= zc.eps2)
	case zcCmp:
		z := zone(zc.col)
		if z == nil || z.rows == 0 {
			return false
		}
		if z.nulls == z.rows {
			return true
		}
		if z.hasOther || z.hasNaN {
			return false
		}
		if z.hasInt && !cmpIntEmpty(zc.op, z.intMin, z.intMax, zc.lit) {
			return false
		}
		if z.hasFloat && !cmpFloatEmpty(zc.op, z.fMin, z.fMax, zc.lit) {
			return false
		}
		// Only NULL, int, and float rows remain, and each numeric kind
		// was proved empty.
		return z.hasInt || z.hasFloat || z.nulls == z.rows
	}
	return false
}

// cmpIntEmpty proves v <op> lit false for every INTEGER v in
// [min, max]. Int-vs-int comparisons are exact; int-vs-float goes
// through the same float64 conversion CompareSQL applies, which is
// monotone, so the converted bounds bound every converted row.
func cmpIntEmpty(op string, min, max int64, lit Value) bool {
	if lit.T == TypeInt {
		switch op {
		case ">":
			return max <= lit.I
		case ">=":
			return max < lit.I
		case "<":
			return min >= lit.I
		case "<=":
			return min > lit.I
		case "=", "==":
			return lit.I < min || lit.I > max
		case "!=", "<>":
			return min == max && min == lit.I
		}
		return false
	}
	return cmpRangeEmptyFloat(op, float64(min), float64(max), lit.F)
}

// cmpFloatEmpty proves v <op> lit false for every REAL v in
// [fMin, fMax]. An INTEGER literal is converted exactly the way the
// engine's comparator converts it.
func cmpFloatEmpty(op string, fMin, fMax float64, lit Value) bool {
	litF := lit.F
	if lit.T == TypeInt {
		litF = float64(lit.I)
	}
	return cmpRangeEmptyFloat(op, fMin, fMax, litF)
}

func cmpRangeEmptyFloat(op string, lo, hi, lit float64) bool {
	switch op {
	case ">":
		return hi <= lit
	case ">=":
		return hi < lit
	case "<":
		return lo >= lit
	case "<=":
		return lo > lit
	case "=", "==":
		return lit < lo || lit > hi
	case "!=", "<>":
		return lo == hi && lo == lit
	}
	return false
}

// zoneSkipper builds the per-morsel skip decision for a fully
// in-memory store with exact statistics, or nil when zone skipping is
// unavailable (encodings off, spilled store, stale or missing stats).
// The returned function is safe for concurrent use: zones are
// read-only once the store is frozen.
func (cs *ColStore) zoneSkipper(zp *zonePred) func(m int) bool {
	if zp == nil || cs == nil || !cs.env.encodings || cs.Spilled() {
		return nil
	}
	ts := cs.stats
	if ts == nil || ts.rows != int64(cs.rows) {
		return nil
	}
	rows := cs.rows
	return func(m int) bool {
		lo := m * morselRows
		want := min(morselRows, rows-lo)
		if want <= 0 {
			return false
		}
		return zp.skip(func(col int) *zoneEntry {
			z := ts.zone(col, m)
			if z == nil || int(z.rows) != want {
				return nil
			}
			return z
		})
	}
}
