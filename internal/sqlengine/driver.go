package sqlengine

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"fmt"
	"io"
	"net/url"
	"strconv"
	"strings"
	"sync"
)

// This file adapts the engine to database/sql under the driver name
// "qymera". DSNs name shared in-process databases:
//
//	db, err := sql.Open("qymera", "mem://sim?budget=2000000")
//
// Every sql.Conn opened from the same DSN shares one engine instance, so
// the pooled connections database/sql hands out all see the same tables.
// Supported DSN parameters: budget (bytes), spilldir (path), nospill
// (1/true disables out-of-core execution), parallelism (morsel-parallel
// worker count; 0 derives it from GOMAXPROCS), layout ("columnar" —
// the default typed column-vector store — or "row" for the legacy
// row-major store kept for differential testing), optimizer ("on"/"off"
// for the cost-based optimizer), kernels ("on"/"off" for the compiled
// gate-stage kernel tier, see kernel.go), fusion ("on"/"off" for
// whole-circuit chain fusion on top of the kernel tier, see
// kernel_chain.go), and encodings ("on"/"off" for the sparsity-first
// storage tier: compressed column encodings and zone-map skip-scan,
// see encoding.go).

func init() {
	sql.Register("qymera", &Driver{})
}

// Driver implements driver.Driver for the embedded engine.
type Driver struct {
	mu  sync.Mutex
	dbs map[string]*DB
}

// Open returns a connection to the (possibly shared) database named by
// the DSN.
func (d *Driver) Open(dsn string) (driver.Conn, error) {
	db, err := d.dbForDSN(dsn)
	if err != nil {
		return nil, err
	}
	return &conn{db: db}, nil
}

// DBForDSN exposes the underlying engine instance behind a DSN so that
// callers can read Stats() while using database/sql for queries.
func (d *Driver) DBForDSN(dsn string) (*DB, error) { return d.dbForDSN(dsn) }

func (d *Driver) dbForDSN(dsn string) (*DB, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dbs == nil {
		d.dbs = map[string]*DB{}
	}
	if db, ok := d.dbs[dsn]; ok {
		return db, nil
	}
	cfg, err := parseDSN(dsn)
	if err != nil {
		return nil, err
	}
	db, err := Open(cfg)
	if err != nil {
		return nil, err
	}
	d.dbs[dsn] = db
	return db, nil
}

func parseDSN(dsn string) (Config, error) {
	var cfg Config
	if dsn == "" || dsn == "mem" {
		return cfg, nil
	}
	u, err := url.Parse(dsn)
	if err != nil {
		return cfg, fmt.Errorf("sqlengine: invalid DSN %q: %w", dsn, err)
	}
	q := u.Query()
	if b := q.Get("budget"); b != "" {
		n, err := strconv.ParseInt(b, 10, 64)
		if err != nil {
			return cfg, fmt.Errorf("sqlengine: invalid budget %q", b)
		}
		cfg.MemoryBudget = n
	}
	cfg.SpillDir = q.Get("spilldir")
	if v := q.Get("nospill"); v == "1" || strings.EqualFold(v, "true") {
		cfg.DisableSpill = true
	}
	if p := q.Get("parallelism"); p != "" {
		n, err := strconv.Atoi(p)
		if err != nil {
			return cfg, fmt.Errorf("sqlengine: invalid parallelism %q", p)
		}
		cfg.Parallelism = n
	}
	cfg.Layout = q.Get("layout")
	cfg.Optimizer = q.Get("optimizer")
	cfg.Kernels = q.Get("kernels")
	cfg.Fusion = q.Get("fusion")
	cfg.Encodings = q.Get("encodings")
	return cfg, nil
}

// conn is a database/sql connection. The engine has its own internal
// locking, so conns are thin.
type conn struct {
	db *DB
}

func (c *conn) Prepare(query string) (driver.Stmt, error) {
	_, nparams, err := ParseStatement(query)
	if err != nil {
		return nil, err
	}
	return &stmt{db: c.db, query: query, numInput: nparams}, nil
}

func (c *conn) Close() error { return nil } // engine is shared across conns

// Begin is accepted for compatibility; statements are individually
// atomic and there is no rollback.
func (c *conn) Begin() (driver.Tx, error) { return noopTx{}, nil }

type noopTx struct{}

func (noopTx) Commit() error   { return nil }
func (noopTx) Rollback() error { return nil }

// ExecContext lets the sql package skip Prepare for one-shot statements.
// The context cancels the engine statement at batch boundaries.
func (c *conn) ExecContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Result, error) {
	params, err := namedToValues(args)
	if err != nil {
		return nil, err
	}
	n, err := c.db.ExecContext(ctx, query, params...)
	if err != nil {
		return nil, err
	}
	return result{rowsAffected: n}, nil
}

// QueryContext implements direct querying. The context cancels the
// engine statement at batch boundaries.
func (c *conn) QueryContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	params, err := namedToValues(args)
	if err != nil {
		return nil, err
	}
	rs, err := c.db.QueryContext(ctx, query, params...)
	if err != nil {
		return nil, err
	}
	return &rows{rs: rs}, nil
}

type stmt struct {
	db       *DB
	query    string
	numInput int
}

func (s *stmt) Close() error  { return nil }
func (s *stmt) NumInput() int { return s.numInput }

func (s *stmt) Exec(args []driver.Value) (driver.Result, error) {
	params, err := driverToValues(args)
	if err != nil {
		return nil, err
	}
	n, err := s.db.Exec(s.query, params...)
	if err != nil {
		return nil, err
	}
	return result{rowsAffected: n}, nil
}

func (s *stmt) Query(args []driver.Value) (driver.Rows, error) {
	params, err := driverToValues(args)
	if err != nil {
		return nil, err
	}
	rs, err := s.db.Query(s.query, params...)
	if err != nil {
		return nil, err
	}
	return &rows{rs: rs}, nil
}

type result struct{ rowsAffected int64 }

func (r result) LastInsertId() (int64, error) {
	return 0, fmt.Errorf("sqlengine: LastInsertId is not supported")
}
func (r result) RowsAffected() (int64, error) { return r.rowsAffected, nil }

type rows struct {
	rs *ResultSet
}

func (r *rows) Columns() []string { return r.rs.Columns }

func (r *rows) Close() error {
	r.rs.Close()
	return nil
}

func (r *rows) Next(dest []driver.Value) error {
	row, ok, err := r.rs.Next()
	if err != nil {
		return err
	}
	if !ok {
		return io.EOF
	}
	for i, v := range row {
		switch v.T {
		case TypeNull:
			dest[i] = nil
		case TypeInt:
			dest[i] = v.I
		case TypeFloat:
			dest[i] = v.F
		case TypeText:
			dest[i] = v.S
		case TypeBool:
			dest[i] = v.I != 0
		}
	}
	return nil
}

func namedToValues(args []driver.NamedValue) ([]Value, error) {
	out := make([]Value, len(args))
	for _, a := range args {
		if a.Name != "" {
			return nil, fmt.Errorf("sqlengine: named parameters are not supported")
		}
		v, err := goToValue(a.Value)
		if err != nil {
			return nil, err
		}
		out[a.Ordinal-1] = v
	}
	return out, nil
}

func driverToValues(args []driver.Value) ([]Value, error) {
	out := make([]Value, len(args))
	for i, a := range args {
		v, err := goToValue(a)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func goToValue(v any) (Value, error) {
	switch x := v.(type) {
	case nil:
		return Null, nil
	case int64:
		return NewInt(x), nil
	case float64:
		return NewFloat(x), nil
	case bool:
		return NewBool(x), nil
	case string:
		return NewText(x), nil
	case []byte:
		return NewText(string(x)), nil
	}
	return Null, fmt.Errorf("sqlengine: unsupported parameter type %T", v)
}
