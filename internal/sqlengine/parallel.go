package sqlengine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Morsel-driven parallel execution. A parallel-capable pipeline splits
// its base scan into fixed-size morsels (contiguous row ranges — with
// the columnar layout, column-slice ranges — of the backing table
// store); worker goroutines claim morsels from a shared
// atomic dispenser and run the whole pipeline — scan, filters,
// projections, hash-join probes — over each claimed morsel with
// worker-private compiled expressions and scratch batches. Blocking
// consumers (hash aggregation, the top-level result gather) fork the
// workers and join them before returning, so no goroutine outlives its
// operator and Close semantics are unchanged.
//
// Determinism: morsel boundaries depend only on the data (morselRows
// and the store length), never on the worker count, and every merge
// step consumes per-morsel results in morsel-index order. Floating
// point aggregation is therefore bitwise independent of how many
// workers ran — workers=1 executes the same morsel schedule serially —
// which keeps simulated amplitudes reproducible across machines with
// different core counts.
//
// Memory: workers reserve from the shared memBudget exactly like the
// serial operators. The parallel paths never spill themselves; when a
// reservation fails (beyond the operator's working-floor share) the
// whole operator aborts with errParallelFallback, releases everything
// it reserved, and the caller re-runs the serial out-of-core path, so
// the global budget and spilling behaviour are preserved.

const (
	// morselRows is the number of rows per morsel. A multiple of
	// batchSize large enough to amortize claim overhead while leaving
	// enough morsels to balance load across workers.
	morselRows = 8 * batchSize

	// MorselRows is the morsel size, exported for benchmark reporting.
	MorselRows = morselRows

	// minParallelMorsels gates morsel execution: below two morsels
	// there is nothing to balance and the serial path is faster.
	minParallelMorsels = 2
)

// errParallelFallback signals that a morsel-parallel operator gave up
// (memory pressure) and the caller should re-run the serial path, which
// knows how to spill.
var errParallelFallback = fmt.Errorf("sqlengine: internal: parallel operator fell back")

// morselStream is one worker's view of a parallelized pipeline.
// NextMorsel claims the next unprocessed morsel from the shared
// dispenser; NextBatch then drains the claimed morsel batch by batch
// (nil at morsel end). Streams of the same pipeline may be driven from
// different goroutines, but each individual stream is single-threaded.
type morselStream interface {
	// NextMorsel claims the next morsel, returning its index and
	// ok=false when the input is exhausted.
	NextMorsel() (int, bool, error)
	// NextBatch returns the next batch of the current morsel, or nil at
	// the end of the morsel. The batch is owned by the stream and valid
	// only until the next NextBatch or NextMorsel call.
	NextBatch() (*rowBatch, error)
	// Close releases the stream's resources. Idempotent.
	Close()
}

// parallelNode is implemented by plan operators that can split their
// execution into morsel streams. openParallel returns one stream per
// worker, or ok=false when this subtree cannot be morselized (spilled
// input, too few rows, unsupported operator) and the caller must use
// the serial open path.
type parallelNode interface {
	openParallel(ctx *execCtx, workers int) ([]morselStream, bool, error)
}

// aggWorkers is the worker count for parallel aggregation; the morsel
// path runs even at one worker so results never depend on Parallelism.
func aggWorkers(ctx *execCtx) int {
	if ctx.workers < 1 {
		return 1
	}
	return ctx.workers
}

// openMorselStreams attempts to open a plan subtree as morsel streams.
func openMorselStreams(n planNode, ctx *execCtx, workers int) ([]morselStream, bool, error) {
	pn, ok := n.(parallelNode)
	if !ok {
		return nil, false, nil
	}
	return pn.openParallel(ctx, workers)
}

func closeStreams(streams []morselStream) {
	for _, s := range streams {
		if s != nil {
			s.Close()
		}
	}
}

// morselDispenser hands out morsel indices of one table store to a set
// of scan streams. Claiming is a single atomic increment.
type morselDispenser struct {
	count int
	next  atomic.Int64
}

func (d *morselDispenser) claim() (int, bool) {
	i := int(d.next.Add(1)) - 1
	if i >= d.count {
		return 0, false
	}
	return i, true
}

// openParallel splits the scan into morsels. Only fully in-memory
// frozen stores are morselized (morselCount reports 0 for spilled
// stores, whose chunks are a sequential stream that cannot be
// range-partitioned). With the columnar layout a morsel claim is a
// column-slice range — no row gathering.
func (n *storeScanNode) openParallel(ctx *execCtx, workers int) ([]morselStream, bool, error) {
	if n.ownStore {
		return nil, false, nil
	}
	if err := n.store.Freeze(); err != nil {
		return nil, false, err
	}
	count := n.store.morselCount()
	if count < minParallelMorsels {
		return nil, false, nil
	}
	d := &morselDispenser{count: count}
	// Zone-map skip: each worker consults the shared skip decision on
	// every claim and drops proven-empty morsels without decoding them.
	// Skipping a morsel is bit-neutral: the pushed filter above the scan
	// would drop every one of its rows, and the morsel-order merge
	// contract does not depend on which worker claimed it.
	var skip func(m int) bool
	var ctrs *storageCounterSet
	if cs, ok := n.store.(*ColStore); ok {
		skip = cs.zoneSkipper(n.zp)
		if cs.env != nil {
			ctrs = cs.env.storageCtrs
		}
	}
	streams := make([]morselStream, workers)
	for i := range streams {
		var sc morselScanner
		var err error
		if n.keep != nil {
			if ps, ok := n.store.(prunableStore); ok {
				sc, err = ps.morselScannerCols(n.keep)
			} else {
				sc, err = n.store.morselScanner()
				if err == nil {
					sc = &pickMorselScan{src: sc, keep: n.keep, out: &rowBatch{cols: make([]colVec, len(n.keep))}}
				}
			}
		} else {
			sc, err = n.store.morselScanner()
		}
		if err != nil {
			return nil, false, err
		}
		streams[i] = &scanMorselStream{disp: d, scan: sc, skip: skip, skipped: &n.skipped, ctrs: ctrs}
	}
	return streams, true, nil
}

// pickMorselScan serves a column subset of an underlying morsel scanner
// (zero copy; the generic fallback for non-columnar stores).
type pickMorselScan struct {
	src  morselScanner
	keep []int
	out  *rowBatch
}

func (s *pickMorselScan) setMorsel(i int) { s.src.setMorsel(i) }

func (s *pickMorselScan) NextBatch() (*rowBatch, error) {
	b, err := s.src.NextBatch()
	return pickBatch(s.out, b, s.keep, err)
}

// scanMorselStream drives one worker's store scanner over the morsels
// it claims from the shared dispenser. skip, when non-nil, is the
// zone-map decision: claimed morsels it proves empty are dropped
// without decoding (counted into skipped and the storage counters).
type scanMorselStream struct {
	disp    *morselDispenser
	scan    morselScanner
	claimed bool
	skip    func(m int) bool
	skipped *atomic.Int64
	ctrs    *storageCounterSet
}

func (s *scanMorselStream) NextMorsel() (int, bool, error) {
	for {
		i, ok := s.disp.claim()
		if !ok {
			s.claimed = false
			return 0, false, nil
		}
		if s.skip != nil && s.skip(i) {
			if s.skipped != nil {
				s.skipped.Add(1)
			}
			s.ctrs.bumpMorselSkipped()
			continue
		}
		s.scan.setMorsel(i)
		s.claimed = true
		return i, true, nil
	}
}

func (s *scanMorselStream) NextBatch() (*rowBatch, error) {
	if !s.claimed {
		return nil, nil
	}
	return s.scan.NextBatch()
}

func (s *scanMorselStream) Close() {}

// openParallel wraps each child stream with a worker-private compiled
// predicate (vecExpr scratch buffers are not shared across goroutines).
func (n *filterNode) openParallel(ctx *execCtx, workers int) ([]morselStream, bool, error) {
	children, ok, err := openMorselStreams(n.child, ctx, workers)
	if err != nil || !ok {
		return nil, ok, err
	}
	out := make([]morselStream, len(children))
	for i, c := range children {
		pred, err := ctx.compileVec(n.pred, n.child.schema())
		if err != nil {
			closeStreams(children)
			return nil, false, err
		}
		out[i] = &filterMorselStream{child: c, pred: pred}
	}
	return out, true, nil
}

// filterMorselStream narrows the child's selection vectors in place,
// exactly like the serial filterIter.
type filterMorselStream struct {
	child morselStream
	pred  vecExpr
	sel   []int
}

func (s *filterMorselStream) NextMorsel() (int, bool, error) { return s.child.NextMorsel() }

func (s *filterMorselStream) NextBatch() (*rowBatch, error) {
	for {
		b, err := s.child.NextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		sel := b.selection()
		vals, err := s.pred(b, sel)
		if err != nil {
			return nil, err
		}
		s.sel = s.sel[:0]
		for _, i := range sel {
			if ok, known := vals[i].Bool(); known && ok {
				s.sel = append(s.sel, i)
			}
		}
		if len(s.sel) == 0 {
			continue
		}
		b.sel = s.sel
		return b, nil
	}
}

func (s *filterMorselStream) Close() { s.child.Close() }

// openParallel gives each stream its own compiled output expressions
// and result batch.
func (n *projectNode) openParallel(ctx *execCtx, workers int) ([]morselStream, bool, error) {
	children, ok, err := openMorselStreams(n.child, ctx, workers)
	if err != nil || !ok {
		return nil, ok, err
	}
	out := make([]morselStream, len(children))
	for i, c := range children {
		compiled, err := ctx.compileVecAll(n.exprs, n.child.schema())
		if err != nil {
			closeStreams(children)
			return nil, false, err
		}
		out[i] = &projectMorselStream{child: c, exprs: compiled, out: &rowBatch{cols: make([]colVec, len(compiled))}}
	}
	return out, true, nil
}

type projectMorselStream struct {
	child morselStream
	exprs []vecExpr
	out   *rowBatch
}

func (s *projectMorselStream) NextMorsel() (int, bool, error) { return s.child.NextMorsel() }

func (s *projectMorselStream) NextBatch() (*rowBatch, error) {
	b, err := s.child.NextBatch()
	if err != nil || b == nil {
		return nil, err
	}
	sel := b.selection()
	for i, e := range s.exprs {
		col, err := e(b, sel)
		if err != nil {
			return nil, err
		}
		s.out.cols[i] = col[:b.n]
	}
	s.out.n = b.n
	s.out.sel = sel
	return s.out, nil
}

func (s *projectMorselStream) Close() { s.child.Close() }

// openParallel on an alias is schema-only: streams pass through.
func (n *aliasNode) openParallel(ctx *execCtx, workers int) ([]morselStream, bool, error) {
	return openMorselStreams(n.child, ctx, workers)
}

// openParallel wraps each child stream with the zero-copy column pick.
func (n *pickNode) openParallel(ctx *execCtx, workers int) ([]morselStream, bool, error) {
	children, ok, err := openMorselStreams(n.child, ctx, workers)
	if err != nil || !ok {
		return nil, ok, err
	}
	out := make([]morselStream, len(children))
	for i, c := range children {
		out[i] = &pickMorselStream{child: c, idxs: n.idxs, out: &rowBatch{cols: make([]colVec, len(n.idxs))}}
	}
	return out, true, nil
}

type pickMorselStream struct {
	child morselStream
	idxs  []int
	out   *rowBatch
}

func (s *pickMorselStream) NextMorsel() (int, bool, error) { return s.child.NextMorsel() }

func (s *pickMorselStream) NextBatch() (*rowBatch, error) {
	b, err := s.child.NextBatch()
	return pickBatch(s.out, b, s.idxs, err)
}

func (s *pickMorselStream) Close() { s.child.Close() }

// materializePlan executes a plan and materializes its output into a
// table store. When the plan is morsel-capable and more than one worker
// is configured, morsels are drained concurrently and their buffered
// batches appended in morsel order — the output row sequence is
// identical to the serial scan order. On memory pressure the parallel
// gather aborts and the serial (spilling) path re-runs the plan.
func materializePlan(ctx *execCtx, node planNode) (tableStore, error) {
	return materializePlanCollect(ctx, node, false)
}

// materializePlanCollect is materializePlan with two extensions: the
// kernel-tier hook (a plan matching the gate-stage shape runs as a
// compiled kernel, either entirely or as a swapped-in subtree; see
// kernel.go) and optional statistics collection on the result store
// (CTAS materialization).
func materializePlanCollect(ctx *execCtx, node planNode, collect bool) (tableStore, error) {
	var kstore tableStore
	if ctx.env.kernels {
		result, swapped, err := kernelAttempt(ctx, node, collect)
		if err != nil {
			return nil, err
		}
		if result != nil {
			return result, nil
		}
		kstore = swapped
	}
	store, err := materializePlanExec(ctx, node, collect)
	if err != nil && kstore != nil {
		// The swapped-in kernel store is normally released by its scan
		// iterator; an error before that scan opened would strand it.
		// Release is idempotent, so releasing again here is safe.
		kstore.Release()
	}
	return store, err
}

func materializePlanExec(ctx *execCtx, node planNode, collect bool) (tableStore, error) {
	var hint int64
	if est := planEstimateOf(node); est != nil && est.rows > 0 {
		// Budget-clamped like the hash-table hints: a misestimate must
		// not pre-allocate column capacity beyond a small budget.
		hint = hintForBudget(est.rows, ctx.env.budget)
	}
	if ctx.workers > 1 && !gatherWouldOverflow(ctx, node) {
		streams, ok, err := openMorselStreams(node, ctx, ctx.workers)
		if err != nil {
			return nil, err
		}
		if ok {
			store, err := gatherMorsels(ctx, streams, hint, collect)
			if err == nil {
				return store, nil
			}
			if err != errParallelFallback {
				return nil, err
			}
			// The serial path re-runs the plan from scratch; drop the
			// partial EXPLAIN ANALYZE counts of the aborted gather.
			resetPlanStats(node)
		}
	}
	it, err := node.open(ctx)
	if err != nil {
		return nil, err
	}
	store, err := materializeCollect(ctx, it, hint, collect)
	it.Close()
	return store, err
}

// planEstimateOf reads the cost model's annotation off a physical node
// (nil when the optimizer is off).
func planEstimateOf(node planNode) *nodeEst {
	switch n := node.(type) {
	case *storeScanNode:
		return n.est
	case *filterNode:
		return n.est
	case *projectNode:
		return n.est
	case *sliceProjectNode:
		return n.est
	case *pickNode:
		return n.est
	case *joinNode:
		return n.est
	case *aggNode:
		return n.est
	case *sortNode:
		return n.est
	case *limitNode:
		return n.est
	case *aliasNode:
		return n.est
	case *statNode:
		return planEstimateOf(n.child)
	}
	return nil
}

// gatherWouldOverflow is the cost model's serial-vs-parallel gate: when
// the estimated result cannot fit in half the remaining budget, the
// parallel gather is doomed to abort into the serial spilling path
// after wasted work, so skip it up front. Bit-neutral: the gather
// appends morsels in morsel-index order, which is exactly the serial
// row order.
func gatherWouldOverflow(ctx *execCtx, node planNode) bool {
	limit := ctx.env.budget.Limit()
	if limit <= 0 {
		return false
	}
	est := planEstimateOf(node)
	if est == nil || est.rows < 0 {
		return false
	}
	estBytes := est.rows * estRowBytes(len(node.schema()))
	return estBytes > 0.5*float64(ctx.env.budget.Available())
}

// morselBuf is one drained morsel: its index, compacted column-major
// batches, and the budget bytes reserved for them.
type morselBuf struct {
	idx     int
	batches []*rowBatch
	bytes   int64
}

// batchBytes estimates the buffered footprint of a compacted batch
// (Value-slice columns), mirroring rowBytes for the same rows.
func batchBytes(b *rowBatch) int64 {
	n := int64(24 * b.rows())
	for i := range b.cols {
		col := b.cols[i]
		if b.sel == nil {
			for _, v := range col[:b.n] {
				n += 40 + int64(len(v.S))
			}
		} else {
			for _, p := range b.sel {
				n += 40 + int64(len(col[p].S))
			}
		}
	}
	return n
}

// compactBatch copies a batch into a dense (selection-free) column-major
// buffer that outlives the producing stream.
func compactBatch(b *rowBatch) *rowBatch {
	out := &rowBatch{cols: make([]colVec, len(b.cols)), n: b.rows()}
	for i, col := range b.cols {
		if b.sel == nil {
			out.cols[i] = append(colVec(nil), col[:b.n]...)
		} else {
			dst := make(colVec, 0, len(b.sel))
			for _, p := range b.sel {
				dst = append(dst, col[p])
			}
			out.cols[i] = dst
		}
	}
	return out
}

// gatherMorsels drains morsel streams concurrently, buffering each
// morsel's output as compacted column batches under the budget, then
// appends the buffers to a fresh store in morsel-index order (batch
// appends — no per-row materialization). The first failed reservation
// aborts the gather (errParallelFallback) — large results belong to the
// serial spilling path.
func gatherMorsels(ctx *execCtx, streams []morselStream, hint int64, collect bool) (tableStore, error) {
	budget := ctx.env.budget
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		bufs     []morselBuf
		firstErr error
		abort    atomic.Bool
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		abort.Store(true)
	}
	for _, s := range streams {
		wg.Add(1)
		go func(s morselStream) {
			defer wg.Done()
			defer s.Close()
			var local []morselBuf
			defer func() {
				mu.Lock()
				bufs = append(bufs, local...)
				mu.Unlock()
			}()
			for !abort.Load() {
				if err := ctx.cancelled(); err != nil {
					fail(err)
					return
				}
				idx, ok, err := s.NextMorsel()
				if err != nil {
					fail(err)
					return
				}
				if !ok {
					return
				}
				mb := morselBuf{idx: idx}
				for {
					b, err := s.NextBatch()
					if err != nil {
						local = append(local, mb)
						fail(err)
						return
					}
					if b == nil {
						break
					}
					if b.rows() == 0 {
						continue
					}
					n := batchBytes(b)
					if !budget.tryReserve(n) {
						local = append(local, mb)
						fail(errParallelFallback)
						return
					}
					mb.bytes += n
					mb.batches = append(mb.batches, compactBatch(b))
				}
				local = append(local, mb)
			}
		}(s)
	}
	wg.Wait()
	if firstErr != nil {
		for _, mb := range bufs {
			budget.release(mb.bytes)
		}
		return nil, firstErr
	}
	sort.Slice(bufs, func(i, j int) bool { return bufs[i].idx < bufs[j].idx })
	store := ctx.env.newStore()
	if collect {
		attachStats(store)
	}
	if hint > 0 {
		if h, ok := store.(rowCapacityHinter); ok {
			h.hintRows(hint)
		}
	}
	for k, mb := range bufs {
		// Hand the accounting to the store: release the gather
		// reservation, then AppendBatch re-reserves (or spills).
		budget.release(mb.bytes)
		for _, b := range mb.batches {
			if err := store.AppendBatch(b); err != nil {
				for _, rest := range bufs[k+1:] {
					budget.release(rest.bytes)
				}
				store.Release()
				return nil, err
			}
		}
	}
	if err := store.Freeze(); err != nil {
		store.Release()
		return nil, err
	}
	return store, nil
}
