package sqlengine

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"
)

func newOptDB(t *testing.T, cfg Config) *DB {
	t.Helper()
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// TestSingleUseCTEInlined is the regression test for the eager-CTE bug:
// a CTE referenced once must be inlined into its consumer instead of
// being materialized into a temporary store.
func TestSingleUseCTEInlined(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b INTEGER)")
	fillSequence(t, db, "t", 100)
	before := OptimizerCounters()["cte_inlined"]
	rows := queryAll(t, db, "WITH u AS (SELECT a, b FROM t WHERE a < 10) SELECT b FROM u WHERE b > 3 ORDER BY b")
	if after := OptimizerCounters()["cte_inlined"]; after <= before {
		t.Fatalf("single-use CTE was not inlined (counter %d -> %d)", before, after)
	}
	if len(rows) != 6 { // b = a%97 = a for a in 4..9
		t.Fatalf("rows = %v", rows)
	}
	// The plan must show the base scan directly (no MaterializeCTE).
	plan, err := db.Explain("WITH u AS (SELECT a, b FROM t WHERE a < 10) SELECT b FROM u WHERE b > 3 ORDER BY b")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan, "MaterializeCTE") {
		t.Fatalf("single-use CTE still materialized:\n%s", plan)
	}
	if !strings.Contains(plan, "BatchScan t") {
		t.Fatalf("inlined plan missing base scan:\n%s", plan)
	}
}

// TestMultiUseCTEStaysMaterialized: a CTE referenced twice must be
// computed once and shared, never inlined twice.
func TestMultiUseCTEStaysMaterialized(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b INTEGER)")
	fillSequence(t, db, "t", 50)
	plan, err := db.Explain("WITH u AS (SELECT a FROM t WHERE a < 10) SELECT x.a FROM u x JOIN u y ON x.a = y.a ORDER BY x.a")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "MaterializeCTE u (refs=2)") {
		t.Fatalf("multi-use CTE not marked materialized:\n%s", plan)
	}
	rows := queryAll(t, db, "WITH u AS (SELECT a FROM t WHERE a < 10) SELECT x.a FROM u x JOIN u y ON x.a = y.a ORDER BY x.a")
	if len(rows) != 10 {
		t.Fatalf("rows = %v", rows)
	}
}

// TestCTEUnderSumNotInlined: inlining would change the base store the
// consumer's aggregation morselizes over, perturbing float summation
// grouping — the optimizer must keep SUM consumers on the materialized
// path.
func TestCTEUnderSumNotInlined(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b REAL)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 0.25), (2, 0.5), (1, 0.125)")
	plan, err := db.Explain("WITH u AS (SELECT a, b FROM t WHERE a > 0) SELECT a, SUM(b) FROM u GROUP BY a")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "MaterializeCTE u") {
		t.Fatalf("CTE under SUM was inlined:\n%s", plan)
	}
	// COUNT/MIN/MAX are accumulation-order-insensitive: inlining is fine.
	plan, err = db.Explain("WITH u AS (SELECT a, b FROM t WHERE a > 0) SELECT a, COUNT(*) FROM u GROUP BY a")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan, "MaterializeCTE u") {
		t.Fatalf("CTE under COUNT not inlined:\n%s", plan)
	}
}

// TestDeadCTEEliminated: an unreferenced CTE must never execute with the
// optimizer on (the legacy planner materialized it eagerly).
func TestDeadCTEEliminated(t *testing.T) {
	script := []string{
		"CREATE TABLE t (a INTEGER)",
		"INSERT INTO t VALUES (1), (0)",
	}
	q := "WITH dead AS (SELECT SUM(c) AS x FROM u) SELECT a FROM t ORDER BY a"
	script = append(script, "CREATE TABLE u (c TEXT)", "INSERT INTO u VALUES ('not a number')")

	on := newOptDB(t, Config{})
	for _, s := range script {
		mustExec(t, on, s)
	}
	if _, err := on.Query(q); err != nil {
		t.Fatalf("optimizer on: dead CTE executed: %v", err)
	}

	off := newOptDB(t, Config{Optimizer: "off"})
	for _, s := range script {
		mustExec(t, off, s)
	}
	if _, err := off.Query(q); err == nil {
		t.Fatal("optimizer off: expected the legacy planner to eagerly run the dead CTE and fail on SUM over text")
	}
}

func TestConstantFolding(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	plan, err := db.Explain("SELECT a FROM t WHERE a > 1 + 1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "(a > 2)") {
		t.Fatalf("constant not folded:\n%s", plan)
	}
	// Folding must preserve semantics exactly: 1/0 is NULL in this
	// engine (SQLite semantics) and a folding-time error keeps the
	// original expression so execution reports it.
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	rows := queryAll(t, db, "SELECT 1/0 FROM t")
	if len(rows) != 1 || !rows[0][0].IsNull() {
		t.Fatalf("1/0 = %v, want NULL", rows)
	}
	if _, err := db.Query("SELECT ABS('x') FROM t"); err == nil {
		t.Fatal("expected ABS('x') to keep erroring after folding")
	}
}

func TestPredicatePushdownThroughJoin(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE a (x INTEGER, y INTEGER)")
	mustExec(t, db, "CREATE TABLE b (x INTEGER, z INTEGER)")
	plan, err := db.Explain("SELECT a.y FROM a JOIN b ON a.x = b.x WHERE a.y > 5 AND b.z < 3")
	if err != nil {
		t.Fatal(err)
	}
	joinIdx := strings.Index(plan, "HashJoin")
	yIdx := strings.Index(plan, "BatchFilter (a.y > 5)")
	zIdx := strings.Index(plan, "BatchFilter (b.z < 3)")
	if joinIdx < 0 || yIdx < 0 || zIdx < 0 {
		t.Fatalf("plan:\n%s", plan)
	}
	if yIdx < joinIdx || zIdx < joinIdx {
		t.Fatalf("filters not pushed below the join:\n%s", plan)
	}
	// Correctness.
	mustExec(t, db, "INSERT INTO a VALUES (1, 6), (2, 9), (3, 9)")
	mustExec(t, db, "INSERT INTO b VALUES (1, 1), (2, 5), (3, 2)")
	rows := queryAll(t, db, "SELECT a.y FROM a JOIN b ON a.x = b.x WHERE a.y > 5 AND b.z < 3 ORDER BY a.y")
	if len(rows) != 2 || rows[0][0].I != 6 || rows[1][0].I != 9 {
		t.Fatalf("rows = %v", rows)
	}
}

// TestPushdownIntoSubquery: the alias boundary of a FROM subquery must
// not stop pushdown.
func TestPushdownIntoSubquery(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b INTEGER)")
	fillSequence(t, db, "t", 20)
	plan, err := db.Explain("SELECT v FROM (SELECT a AS v, b FROM t) s WHERE v > 10")
	if err != nil {
		t.Fatal(err)
	}
	// The filter lands on the base scan (below the subquery projection),
	// rewritten to the base column.
	scanIdx := strings.Index(plan, "BatchScan t")
	filtIdx := strings.Index(plan, "BatchFilter (a > 10)")
	if filtIdx < 0 || scanIdx < 0 || filtIdx > scanIdx {
		t.Fatalf("filter not pushed through subquery projection:\n%s", plan)
	}
	rows := queryAll(t, db, "SELECT v FROM (SELECT a AS v, b FROM t) s WHERE v > 10 ORDER BY v")
	if len(rows) != 9 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestProjectionPruning(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE wide (a INTEGER, b REAL, c TEXT, d INTEGER)")
	mustExec(t, db, "INSERT INTO wide VALUES (1, 2.0, 'x', 4), (5, 6.0, 'y', 8)")
	plan, err := db.Explain("SELECT a FROM wide")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "pruned=4->1 cols [a]") {
		t.Fatalf("scan not pruned:\n%s", plan)
	}
	rows := queryAll(t, db, "SELECT a FROM wide ORDER BY a")
	if len(rows) != 2 || rows[0][0].I != 1 || rows[1][0].I != 5 {
		t.Fatalf("rows = %v", rows)
	}
	// COUNT(*) keeps one column.
	rows = queryAll(t, db, "SELECT COUNT(*) FROM wide")
	if rows[0][0].I != 2 {
		t.Fatalf("count = %v", rows)
	}
}

// TestBuildSideFlip: an INNER join written with the large table on the
// build (right) side gets its build side flipped, with identical
// results.
func TestBuildSideFlip(t *testing.T) {
	run := func(cfg Config) (*DB, string) {
		db := newOptDB(t, cfg)
		mustExec(t, db, "CREATE TABLE small (id INTEGER, name TEXT)")
		mustExec(t, db, "CREATE TABLE big (id INTEGER, v INTEGER)")
		mustExec(t, db, "INSERT INTO small VALUES (1, 'a'), (2, 'b'), (3, 'c')")
		fillSequence(t, db, "big", 6000)
		return db, "SELECT small.name, big.v FROM small JOIN big ON big.id = small.id ORDER BY small.name"
	}
	db, q := run(Config{})
	plan, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "[build side flipped]") {
		t.Fatalf("build side not flipped:\n%s", plan)
	}
	got := queryAll(t, db, q)

	off, _ := run(Config{Optimizer: "off"})
	want := queryAll(t, off, q)
	if len(got) != len(want) {
		t.Fatalf("flip changed row count: %d vs %d", len(got), len(want))
	}
	for i := range got {
		for j := range got[i] {
			if CompareTotal(got[i][j], want[i][j]) != 0 {
				t.Fatalf("row %d differs: %v vs %v", i, got[i], want[i])
			}
		}
	}
}

// TestBuildSideFlipGuardUnderSum: flips change probe order, so they are
// forbidden under order-sensitive aggregates.
func TestBuildSideFlipGuardUnderSum(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE small (id INTEGER)")
	mustExec(t, db, "CREATE TABLE big (id INTEGER, v INTEGER)")
	mustExec(t, db, "INSERT INTO small VALUES (1)")
	fillSequence(t, db, "big", 6000)
	plan, err := db.Explain("SELECT SUM(big.v) FROM small JOIN big ON big.id = small.id")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan, "[build side flipped]") {
		t.Fatalf("flip applied under SUM:\n%s", plan)
	}
	// COUNT is order-insensitive: the flip is allowed.
	plan, err = db.Explain("SELECT COUNT(*) FROM small JOIN big ON big.id = small.id")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "[build side flipped]") {
		t.Fatalf("flip not applied under COUNT:\n%s", plan)
	}
}

// TestFlipGuardInsideMaterializedCTE: a CTE consumed by a float SUM
// keeps its materialized row order — order-changing rewrites inside its
// plan (build-side flips) must be suppressed even though the CTE's own
// plan has no aggregate, including transitively through CTE-in-CTE
// references.
func TestFlipGuardInsideMaterializedCTE(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE small (id INTEGER)")
	mustExec(t, db, "CREATE TABLE big (id INTEGER, v INTEGER)")
	mustExec(t, db, "INSERT INTO small VALUES (1), (2)")
	fillSequence(t, db, "big", 6000)
	// u is referenced twice (stays materialized) and feeds a SUM.
	q := `WITH u AS (SELECT small.id AS id, big.v AS v FROM small JOIN big ON big.id = small.id)
	      SELECT x.id, SUM(x.v + y.v) FROM u x JOIN u y ON x.id = y.id GROUP BY x.id`
	plan, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan, "[build side flipped]") {
		t.Fatalf("flip applied inside a SUM-consumed CTE:\n%s", plan)
	}
	// Transitive: w references u; the SUM consumes w.
	q2 := `WITH u AS (SELECT small.id AS id, big.v AS v FROM small JOIN big ON big.id = small.id),
	       w AS (SELECT id, v FROM u WHERE v >= 0)
	       SELECT a.id, SUM(a.v) FROM w a JOIN w b ON a.id = b.id GROUP BY a.id`
	plan, err = db.Explain(q2)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan, "[build side flipped]") {
		t.Fatalf("flip applied transitively inside a SUM-consumed CTE chain:\n%s", plan)
	}
	// Without the SUM the same CTE plan is free to flip.
	q3 := `WITH u AS (SELECT small.id AS id, big.v AS v FROM small JOIN big ON big.id = small.id)
	       SELECT x.id FROM u x JOIN u y ON x.id = y.id ORDER BY x.id`
	plan, err = db.Explain(q3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "[build side flipped]") {
		t.Fatalf("flip suppressed without a sensitive consumer:\n%s", plan)
	}
}

// TestJoinReorder: a chain written big-first gets reordered so the
// selective join applies first, with identical results.
func TestJoinReorder(t *testing.T) {
	setup := func(cfg Config) (*DB, string) {
		db := newOptDB(t, cfg)
		mustExec(t, db, "CREATE TABLE a (id INTEGER, tag INTEGER)")
		mustExec(t, db, "CREATE TABLE big (id INTEGER, v INTEGER)")
		mustExec(t, db, "CREATE TABLE b (id INTEGER)")
		for i := 0; i < 100; i++ {
			mustExec(t, db, fmt.Sprintf("INSERT INTO a VALUES (%d, %d)", i, i%7))
		}
		fillSequence(t, db, "big", 8000)
		mustExec(t, db, "INSERT INTO b VALUES (3), (4)")
		return db, "SELECT a.id, big.v, b.id FROM a JOIN big ON big.id = a.id JOIN b ON b.id = a.id ORDER BY a.id"
	}
	db, q := setup(Config{})
	before := OptimizerCounters()["join_reorders"]
	plan, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if after := OptimizerCounters()["join_reorders"]; after <= before {
		t.Fatalf("join chain not reordered:\n%s", plan)
	}
	// The selective b join now applies first (deepest); the reorder is
	// wrapped in a column restore, and the big join probes its output
	// (the build-side flip then also kicks in: a⋈b is far smaller than
	// big).
	if !strings.Contains(plan, "ReorderColumns") || !strings.Contains(plan, "on a.id = b.id") {
		t.Fatalf("selective join not applied first:\n%s", plan)
	}
	got := queryAll(t, db, q)
	off, _ := setup(Config{Optimizer: "off"})
	want := queryAll(t, off, q)
	if len(got) != len(want) {
		t.Fatalf("reorder changed row count: %d vs %d", len(got), len(want))
	}
	for i := range got {
		for j := range got[i] {
			if CompareTotal(got[i][j], want[i][j]) != 0 {
				t.Fatalf("row %d differs: %v vs %v", i, got[i], want[i])
			}
		}
	}
}

// TestGracePrechoice: when the estimated build side exceeds the whole
// budget, the plan goes straight to the grace join.
func TestGracePrechoice(t *testing.T) {
	db := newOptDB(t, Config{MemoryBudget: 64 * 1024, SpillDir: t.TempDir()})
	mustExec(t, db, "CREATE TABLE l (x INTEGER, y INTEGER)")
	mustExec(t, db, "CREATE TABLE r (x INTEGER, y INTEGER)")
	fillSequence(t, db, "l", 4000)
	fillSequence(t, db, "r", 4000)
	plan, err := db.Explain("SELECT l.y FROM l JOIN r ON l.x = r.x")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "[grace partitioned: build exceeds budget]") {
		t.Fatalf("grace not pre-chosen:\n%s", plan)
	}
	rows := queryAll(t, db, "SELECT COUNT(*) FROM l JOIN r ON l.x = r.x")
	if rows[0][0].I != 4000 {
		t.Fatalf("grace join wrong result: %v", rows)
	}
}

// TestOptimizerOnOffBitIdentical runs a battery of queries — the
// translated gate-stage chain, CTEs, joins, aggregation, sorting — with
// the optimizer on and off, on both storage layouts at workers 1 and 4,
// and requires bitwise-identical results: same types, same int64
// values, same float64 bit patterns, same row order.
func TestOptimizerOnOffBitIdentical(t *testing.T) {
	setup := []string{
		"CREATE TABLE t0 (s INTEGER, r REAL, i REAL)",
		"CREATE TABLE h (in_s INTEGER, out_s INTEGER, r REAL, i REAL)",
		"INSERT INTO h VALUES (0,0,0.7071067811865476,0),(0,1,0.7071067811865476,0),(1,0,0.7071067811865476,0),(1,1,-0.7071067811865476,0)",
	}
	var seed []string
	for k := 0; k < 3000; k++ {
		seed = append(seed, fmt.Sprintf("(%d, %g, %g)", k, 1.0/3000.0, float64(k)*1e-7))
	}
	queries := []string{
		// One translated gate stage (join + float SUM + HAVING prune).
		`WITH t1 AS (
			SELECT ((t0.s & ~1) | h.out_s) AS s,
			       SUM((t0.r * h.r) - (t0.i * h.i)) AS r,
			       SUM((t0.r * h.i) + (t0.i * h.r)) AS i
			FROM t0 JOIN h ON h.in_s = (t0.s & 1)
			GROUP BY ((t0.s & ~1) | h.out_s)
			HAVING ((SUM((t0.r * h.r) - (t0.i * h.i)) * SUM((t0.r * h.r) - (t0.i * h.i))) + (SUM((t0.r * h.i) + (t0.i * h.r)) * SUM((t0.r * h.i) + (t0.i * h.r)))) > 1e-20
		) SELECT s, r, i FROM t1 ORDER BY s`,
		// Chained single-use CTEs with filters and projections.
		`WITH u AS (SELECT s, r FROM t0 WHERE s < 1000),
		      v AS (SELECT s * 2 AS d, r FROM u WHERE s > 10)
		 SELECT d, r FROM v WHERE d < 500 ORDER BY d`,
		// Aggregation over expressions, DISTINCT, float sums.
		"SELECT (s & 7) AS g, SUM(r), COUNT(*), MIN(i), AVG(r) FROM t0 GROUP BY (s & 7) ORDER BY g",
		"SELECT DISTINCT (s & 3) FROM t0 ORDER BY 1",
		// Join + WHERE mixture (pushdown, pruning).
		"SELECT t0.s, h.out_s FROM t0 JOIN h ON h.in_s = (t0.s & 1) WHERE t0.s < 20 AND h.out_s = 1 ORDER BY t0.s, h.out_s",
		// Subquery with hidden sort keys and limit.
		"SELECT v FROM (SELECT s AS v, r FROM t0) q WHERE v > 100 ORDER BY r DESC, v LIMIT 37",
	}

	type key struct {
		optimizer, layout string
		workers           int
	}
	results := map[key]map[int][]Row{}
	for _, opt := range []string{"on", "off"} {
		for _, layout := range []string{LayoutColumnar, LayoutRow} {
			for _, workers := range []int{1, 4} {
				db := newOptDB(t, Config{Optimizer: opt, Layout: layout, Parallelism: workers})
				for _, s := range setup {
					mustExec(t, db, s)
				}
				for i := 0; i < len(seed); i += 500 {
					end := min(i+500, len(seed))
					mustExec(t, db, "INSERT INTO t0 VALUES "+strings.Join(seed[i:end], ","))
				}
				byQuery := map[int][]Row{}
				for qi, q := range queries {
					byQuery[qi] = queryAll(t, db, q)
				}
				results[key{opt, layout, workers}] = byQuery
			}
		}
	}
	ref := results[key{"off", LayoutColumnar, 1}]
	for k, byQuery := range results {
		for qi := range queries {
			got, want := byQuery[qi], ref[qi]
			if len(got) != len(want) {
				t.Fatalf("%v query %d: %d rows vs %d", k, qi, len(got), len(want))
			}
			for i := range got {
				for j := range got[i] {
					a, b := want[i][j], got[i][j]
					if a.T != b.T || a.I != b.I || math.Float64bits(a.F) != math.Float64bits(b.F) || a.S != b.S {
						t.Fatalf("%v query %d row %d col %d: %v vs %v (bits %x vs %x)",
							k, qi, i, j, a, b, math.Float64bits(a.F), math.Float64bits(b.F))
					}
				}
			}
		}
	}
}

// TestOptimizerRandomizedFilterEquivalence cross-checks pushdown and
// pruning against the unoptimized engine over a grid of generated
// predicates (property-style).
func TestOptimizerRandomizedFilterEquivalence(t *testing.T) {
	on := newOptDB(t, Config{})
	off := newOptDB(t, Config{Optimizer: "off"})
	for _, db := range []*DB{on, off} {
		mustExec(t, db, "CREATE TABLE t (a INTEGER, b INTEGER)")
		fillSequence(t, db, "t", 500)
		mustExec(t, db, "INSERT INTO t VALUES (NULL, 1), (1, NULL)")
	}
	ops := []string{"<", "<=", ">", ">=", "=", "!="}
	for _, op := range ops {
		for _, c := range []int{-1, 0, 48, 96, 499, 1000} {
			for _, shape := range []string{
				"SELECT a FROM (SELECT a, b FROM t WHERE b %s %d) s ORDER BY a",
				"WITH u AS (SELECT a, b FROM t) SELECT b FROM u WHERE a %s %d ORDER BY b",
				"SELECT t1.a FROM t t1 JOIN t t2 ON t1.a = t2.a WHERE t1.b %s %d ORDER BY t1.a",
			} {
				q := fmt.Sprintf(shape, op, c)
				got := queryAll(t, on, q)
				want := queryAll(t, off, q)
				if len(got) != len(want) {
					t.Fatalf("%s: %d rows vs %d", q, len(got), len(want))
				}
				sortRows := func(rows []Row) {
					sort.Slice(rows, func(i, j int) bool {
						for c := range rows[i] {
							if d := CompareTotal(rows[i][c], rows[j][c]); d != 0 {
								return d < 0
							}
						}
						return false
					})
				}
				sortRows(got)
				sortRows(want)
				for i := range got {
					for j := range got[i] {
						if CompareTotal(got[i][j], want[i][j]) != 0 {
							t.Fatalf("%s: row %d: %v vs %v", q, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

func TestExplainAnalyze(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b INTEGER)")
	fillSequence(t, db, "t", 100)
	out, err := db.ExplainAnalyze(context.Background(), "SELECT a FROM t WHERE a < 10 ORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"actual:", "actual_rows=100", "actual_rows=10"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("EXPLAIN ANALYZE missing %q:\n%s", frag, out)
		}
	}
}

// TestExplainStatementSQL: EXPLAIN [ANALYZE] works as a SQL statement
// through the Query surface.
func TestExplainStatementSQL(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2)")
	rs, err := db.Query("EXPLAIN SELECT a FROM t WHERE a > 1")
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if len(rs.Columns) != 1 || rs.Columns[0] != "plan" {
		t.Fatalf("columns = %v", rs.Columns)
	}
	rows, err := rs.All()
	if err != nil {
		t.Fatal(err)
	}
	text := ""
	for _, r := range rows {
		text += r[0].S + "\n"
	}
	if !strings.Contains(text, "BatchScan t") || !strings.Contains(text, "est_rows=") {
		t.Fatalf("plan:\n%s", text)
	}
	rs2, err := db.Query("EXPLAIN ANALYZE SELECT a FROM t WHERE a > 1")
	if err != nil {
		t.Fatal(err)
	}
	defer rs2.Close()
	rows2, _ := rs2.All()
	text = ""
	for _, r := range rows2 {
		text += r[0].S + "\n"
	}
	if !strings.Contains(text, "actual_rows=1") {
		t.Fatalf("analyze plan:\n%s", text)
	}
}

// TestEstimatesInExplain: cardinality estimates derive from statistics.
func TestEstimatesInExplain(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b INTEGER)")
	fillSequence(t, db, "t", 1000)
	plan, err := db.Explain("SELECT a FROM t WHERE a < 100")
	if err != nil {
		t.Fatal(err)
	}
	// a is uniform over [0,999]: the range estimate must land near 100.
	if !strings.Contains(plan, "est_rows=100 ") && !strings.Contains(plan, "est_rows=100)") {
		t.Fatalf("range selectivity not derived from min/max stats:\n%s", plan)
	}
}
