package sqlengine

import (
	"time"

	"qymera/internal/obs"
)

// Tracing integration for statement execution. A statement whose
// context carries an obs span (and whose engine has Config.Tracing on)
// is instrumented with statNode wrappers — the same wrappers EXPLAIN
// ANALYZE uses, with a sampling stride taken from the trace so timing
// stays off the parallel hot path — and after execution the counters
// are attached to the span tree as one child span per operator. The
// span tree is therefore structural (shaped by the plan), never
// per-morsel: worker counts change timings but not the tree.

// spillMark snapshots the engine's cumulative spill counters so a
// traced statement can attribute the delta to its own span. The
// engine runs one statement at a time per instance, so the delta is
// the statement's own spill traffic.
type spillMark struct {
	rows, bytes, files int64
}

func (ctx *execCtx) markSpill() spillMark {
	if ctx.span == nil {
		return spillMark{}
	}
	return spillMark{
		rows:  ctx.env.spilledRows.Load(),
		bytes: ctx.env.spilledBytes.Load(),
		files: ctx.env.spillFiles.Load(),
	}
}

// finishStatementSpan attaches the executed plan's operator spans,
// kernel stats, and spill deltas to the statement span. No-op when
// the statement is untraced.
func (ctx *execCtx) finishStatementSpan(node planNode, rows int64, base spillMark) {
	sp := ctx.span
	if sp == nil {
		return
	}
	sp.Add("rows", rows)
	if k := ctx.kexec; k != nil {
		ks := sp.Child("kernel")
		ks.SetDuration(k.wall)
		ks.Add("rows_in", k.rowsIn)
		ks.Add("rows_out", k.rowsOut)
		ks.Add("morsels", k.morsels)
		if k.runsSkipped > 0 {
			ks.Add("runs_skipped", k.runsSkipped)
		}
		if k.cacheHit {
			ks.Add("cache_hit", 1)
		} else {
			ks.Add("compiled", 1)
		}
	}
	attachPlanSpans(sp, node)
	if d := ctx.env.spilledRows.Load() - base.rows; d > 0 {
		sp.Add("spilled_rows", d)
	}
	if d := ctx.env.spilledBytes.Load() - base.bytes; d > 0 {
		sp.Add("spilled_bytes", d)
	}
	if d := ctx.env.spillFiles.Load() - base.files; d > 0 {
		sp.Add("spill_files", d)
	}
}

// attachPlanSpans converts an executed instrumented plan into operator
// child spans. Each statNode becomes one span named after the operator
// it wraps; the span "duration" is the sampled NextBatch time scaled
// to the full batch count (an estimate, which is why the raw sampled
// figures ride along as counters).
func attachPlanSpans(parent *obs.Span, node planNode) {
	sn, ok := node.(*statNode)
	if !ok {
		// Uninstrumented subtree (e.g. the scan the kernel swapped in
		// over its result store) — keep descending; nested statNodes
		// attach to the same parent.
		for _, c := range planChildren(node) {
			attachPlanSpans(parent, c)
		}
		return
	}
	child := sn.child
	sp := parent.Child(operatorSpanName(child))
	batches := sn.batches.Load()
	sampled := sn.sampled.Load()
	nanos := sn.nanos.Load()
	est := nanos
	if sampled > 0 && batches > sampled {
		est = nanos * batches / sampled
	}
	sp.SetDuration(time.Duration(est))
	sp.Add("rows", sn.actual.Load())
	sp.Add("batches", batches)
	sp.Add("sampled_batches", sampled)
	sp.Add("sampled_ns", nanos)
	if ss, ok := child.(*storeScanNode); ok {
		if sk := ss.skipped.Load(); sk > 0 {
			sp.Add("morsels_skipped", sk)
		}
		if ss.fromKernel {
			sp.Add("kernel_output", 1)
		}
	}
	for _, c := range planChildren(child) {
		attachPlanSpans(sp, c)
	}
}

// operatorSpanName names one operator's span. Names depend only on the
// plan shape (never on workers or data), keeping the span tree
// deterministic for a fixed job.
func operatorSpanName(node planNode) string {
	switch n := node.(type) {
	case *oneRowNode:
		return "onerow"
	case *storeScanNode:
		qual := ""
		if len(n.cols) > 0 && n.cols[0].table != "" {
			qual = ":" + n.cols[0].table
		}
		return "scan" + qual
	case *filterNode:
		return "filter"
	case *projectNode:
		return "project"
	case *sliceProjectNode:
		return "strip"
	case *pickNode:
		return "reorder"
	case *joinNode:
		return "join"
	case *aggNode:
		return "aggregate"
	case *sortNode:
		return "sort"
	case *limitNode:
		return "limit"
	case *aliasNode:
		return "alias:" + n.table
	case *cteShowNode:
		return "cte:" + n.name
	default:
		return "operator"
	}
}
