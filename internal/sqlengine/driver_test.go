package sqlengine

import (
	"database/sql"
	"fmt"
	"testing"
)

func TestDriverBasics(t *testing.T) {
	db, err := sql.Open("qymera", fmt.Sprintf("mem://driver-basics-%s", t.Name()))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	if _, err := db.Exec("CREATE TABLE t (s INTEGER, r REAL, name TEXT)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("INSERT INTO t VALUES (?, ?, ?), (?, ?, ?)",
		int64(1), 0.5, "one", int64(2), 0.25, "two")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.RowsAffected(); n != 2 {
		t.Fatalf("affected = %d", n)
	}

	rows, err := db.Query("SELECT s, r, name FROM t WHERE s >= ? ORDER BY s", int64(1))
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var got []string
	for rows.Next() {
		var s int64
		var r float64
		var name string
		if err := rows.Scan(&s, &r, &name); err != nil {
			t.Fatal(err)
		}
		got = append(got, fmt.Sprintf("%d|%g|%s", s, r, name))
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "1|0.5|one" || got[1] != "2|0.25|two" {
		t.Fatalf("rows = %v", got)
	}
}

func TestDriverSharedDSN(t *testing.T) {
	dsn := fmt.Sprintf("mem://driver-shared-%s", t.Name())
	a, err := sql.Open("qymera", dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := sql.Open("qymera", dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if _, err := a.Exec("CREATE TABLE shared (x INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Exec("INSERT INTO shared VALUES (42)"); err != nil {
		t.Fatal(err)
	}
	var x int64
	if err := b.QueryRow("SELECT x FROM shared").Scan(&x); err != nil {
		t.Fatal(err)
	}
	if x != 42 {
		t.Fatalf("x = %d", x)
	}
}

func TestDriverNullScan(t *testing.T) {
	db, err := sql.Open("qymera", fmt.Sprintf("mem://driver-null-%s", t.Name()))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE t (x INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t VALUES (NULL)"); err != nil {
		t.Fatal(err)
	}
	var x sql.NullInt64
	if err := db.QueryRow("SELECT x FROM t").Scan(&x); err != nil {
		t.Fatal(err)
	}
	if x.Valid {
		t.Fatalf("x = %+v, want NULL", x)
	}
}

func TestDriverPrepared(t *testing.T) {
	db, err := sql.Open("qymera", fmt.Sprintf("mem://driver-prep-%s", t.Name()))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE t (x INTEGER)"); err != nil {
		t.Fatal(err)
	}
	stmt, err := db.Prepare("INSERT INTO t VALUES (?)")
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	for i := 0; i < 10; i++ {
		if _, err := stmt.Exec(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	var sum int64
	if err := db.QueryRow("SELECT SUM(x) FROM t").Scan(&sum); err != nil {
		t.Fatal(err)
	}
	if sum != 45 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestDriverDSNOptions(t *testing.T) {
	cfg, err := parseDSN("mem://x?budget=12345&nospill=1")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MemoryBudget != 12345 || !cfg.DisableSpill {
		t.Fatalf("cfg = %+v", cfg)
	}
	if _, err := parseDSN("mem://x?budget=abc"); err == nil {
		t.Fatal("expected error for bad budget")
	}
}
