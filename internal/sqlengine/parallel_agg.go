package sqlengine

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Parallel hash aggregation. Phase 1: workers claim morsels from the
// child pipeline and aggregate each morsel into its own partial hash
// table, partitioned by group-key hash so phase 2 can parallelize.
// Phase 2: workers claim hash partitions and, for each, merge the
// per-morsel partials in morsel-index order through the mergeAcc
// machinery that also backs the streaming spill path; the merged
// partitions are emitted in partition order.
//
// Because partials are kept per morsel (not per worker) and merged in
// a fixed order, the result — including the rounding of floating-point
// SUM/AVG and the output row order — depends only on the data and the
// morsel size, never on the worker count or the morsel→worker
// schedule. That is what makes simulated amplitudes bit-identical
// across Parallelism settings.

// aggPartitions is the number of group-key hash partitions used by the
// parallel aggregation. Fixed (independent of the worker count) so the
// partition assignment of a group is deterministic.
const aggPartitions = 32

// morselPartials is one morsel's partitioned partial aggregation.
type morselPartials struct {
	idx   int
	parts [aggPartitions]*groupTable[*aggGroup]
	rows  bool // morsel contributed at least one input row
}

// morselAggregate runs the two-phase parallel aggregation over the
// child morsel streams, appending result rows to out. It returns
// errParallelFallback (with all reservations released and all streams
// closed) when the budget does not fit the partial tables; the caller
// then re-runs the serial streaming path, which knows how to spill.
func (x *aggExec) morselAggregate(n *aggNode, streams []morselStream, out tableStore) (bool, error) {
	ctx := x.ctx
	childSchema := n.child.schema()
	budget := ctx.env.budget
	floor := ctx.env.workingFloor

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		all      []*morselPartials
		firstErr error
		abort    atomic.Bool
		reserved atomic.Int64
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		abort.Store(true)
	}
	// A budget overflow aborts with no firstErr; the caller sees
	// errParallelFallback and re-runs the serial spilling path.
	overflow := func() { abort.Store(true) }
	// reserve claims need bytes for the current phase, sharing one
	// working-floor allowance across all workers. The cumulative total a
	// phase reserves is a function of the data alone, so whether the
	// floor check trips — and therefore whether the engine falls back to
	// the serial path — is identical for every worker count, keeping
	// results bitwise independent of Parallelism even at the budget
	// boundary. phaseReserved is the phase's live total.
	reserve := func(phaseReserved *atomic.Int64, need int64) bool {
		if budget.tryReserve(need) {
			phaseReserved.Add(need)
			reserved.Add(need)
			return true
		}
		if phaseReserved.Add(need) > floor {
			phaseReserved.Add(-need)
			overflow()
			return false
		}
		budget.reserveForce(need)
		reserved.Add(need)
		return true
	}
	var phase1Reserved, phase2Reserved atomic.Int64

	// Phase 1: per-morsel partial tables.
	for _, s := range streams {
		wg.Add(1)
		go func(s morselStream) {
			defer wg.Done()
			defer s.Close()
			cctx := &compileCtx{resolver: childSchema, params: ctx.params}
			groupC, err := compileVecAll(n.groupBy, cctx)
			if err != nil {
				fail(err)
				return
			}
			argC := make([]vecExpr, len(n.aggs))
			for i, a := range n.aggs {
				if a.Arg == nil {
					continue
				}
				if argC[i], err = compileVec(a.Arg, cctx); err != nil {
					fail(err)
					return
				}
			}
			groupCols := make([]colVec, len(groupC))
			argCols := make([]colVec, len(argC))
			keyBuf := make(Row, x.nGroup)
			alloc := newAggAlloc(x.aggs) // worker-private slabs
			for !abort.Load() {
				if err := ctx.cancelled(); err != nil {
					fail(err)
					return
				}
				idx, ok, err := s.NextMorsel()
				if err != nil {
					fail(err)
					return
				}
				if !ok {
					return
				}
				mp := &morselPartials{idx: idx}
				for {
					b, err := s.NextBatch()
					if err != nil {
						fail(err)
						return
					}
					if b == nil {
						break
					}
					sel, err := evalGroupArgs(b, groupC, argC, groupCols, argCols)
					if err != nil {
						fail(err)
						return
					}
					mp.rows = mp.rows || len(sel) > 0
					for _, pos := range sel {
						for i := 0; i < x.nGroup; i++ {
							keyBuf[i] = groupCols[i][pos]
						}
						p := x.partitionIndex(keyBuf, 0, aggPartitions)
						t := mp.parts[p]
						if t == nil {
							t = newGroupTable[*aggGroup](x.nGroup, min(x.groupHint, morselRows)/aggPartitions)
							mp.parts[p] = t
						}
						g, found := t.get(keyBuf)
						if !found {
							need := rowBytes(keyBuf) + mapEntryBytes + int64(len(x.aggs))*48
							if !reserve(&phase1Reserved, need) {
								return
							}
							g, err = alloc.group(keyBuf)
							if err != nil {
								fail(err)
								return
							}
							t.put(g.keyVals, g)
						}
						for i := range x.aggs {
							var v Value
							if argC[i] == nil {
								v = NewBool(true) // COUNT(*): presence marker
							} else {
								v = argCols[i][pos]
							}
							if err := g.states[i].add(v, true); err != nil {
								fail(err)
								return
							}
						}
					}
				}
				mu.Lock()
				all = append(all, mp)
				mu.Unlock()
			}
		}(s)
	}
	wg.Wait()

	releaseAll := func() { budget.release(reserved.Load()) }
	if firstErr != nil {
		releaseAll()
		return false, firstErr
	}
	if abort.Load() {
		releaseAll()
		return false, errParallelFallback
	}

	// Phase 2: merge partials per partition, morsels in index order.
	sort.Slice(all, func(i, j int) bool { return all[i].idx < all[j].idx })
	rowsSeen := false
	for _, mp := range all {
		rowsSeen = rowsSeen || mp.rows
	}
	var outParts [aggPartitions][]Row
	var pnext atomic.Int64
	for w := 0; w < len(streams); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := make(Row, 0, x.partTotal)
			alloc := newMergeAlloc(x.aggs) // worker-private slabs
			for !abort.Load() {
				if err := ctx.cancelled(); err != nil {
					fail(err)
					return
				}
				p := int(pnext.Add(1)) - 1
				if p >= aggPartitions {
					return
				}
				table := newGroupTable[*mergeGroup](x.nGroup, x.groupHint/aggPartitions)
				for _, mp := range all {
					t := mp.parts[p]
					if t == nil {
						continue
					}
					for _, g := range t.order {
						mg, found := table.get(g.keyVals)
						if !found {
							need := rowBytes(g.keyVals) + mapEntryBytes + int64(len(x.aggs))*48
							if !reserve(&phase2Reserved, need) {
								return
							}
							var aerr error
							if mg, aerr = alloc.group(g.keyVals); aerr != nil {
								fail(aerr)
								return
							}
							table.put(mg.keyVals, mg)
						}
						scratch = scratch[:0]
						for _, st := range g.states {
							scratch = st.(partialDumper).partial(scratch)
						}
						for i := range x.aggs {
							off := x.partOffs[i]
							if err := mg.accs[i].merge(scratch[off : off+partialWidth(x.aggs[i].Name)]); err != nil {
								fail(err)
								return
							}
						}
					}
				}
				rows := make([]Row, 0, len(table.order))
				for _, mg := range table.order {
					row := alloc.row(x.nGroup + len(x.aggs))
					copy(row, mg.keyVals)
					for i, acc := range mg.accs {
						row[x.nGroup+i] = acc.result()
					}
					rows = append(rows, row)
				}
				outParts[p] = rows
			}
		}()
	}
	wg.Wait()

	if firstErr != nil {
		releaseAll()
		return false, firstErr
	}
	if abort.Load() {
		releaseAll()
		return false, errParallelFallback
	}
	defer releaseAll()
	app := newBatchAppender(out, x.nGroup+len(x.aggs))
	for p := range outParts {
		for _, row := range outParts[p] {
			if err := app.appendRow(row); err != nil {
				return rowsSeen, err
			}
		}
	}
	return rowsSeen, app.flush()
}
