package sqlengine

import (
	"fmt"
	"strconv"
	"strings"
)

// parser is a recursive-descent SQL parser over the token stream.
type parser struct {
	toks    []token
	pos     int
	src     string
	nparams int
}

// ParseStatement parses a single SQL statement (a trailing semicolon is
// allowed). It returns the statement and the number of ? placeholders.
func ParseStatement(src string) (Statement, int, error) {
	toks, err := lexSQL(src)
	if err != nil {
		return nil, 0, err
	}
	p := &parser{toks: toks, src: src}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, 0, err
	}
	p.accept(tokOp, ";")
	if !p.at(tokEOF, "") {
		return nil, 0, p.errHere("unexpected trailing input")
	}
	return stmt, p.nparams, nil
}

// ParseScript parses a semicolon-separated sequence of statements.
func ParseScript(src string) ([]Statement, error) {
	toks, err := lexSQL(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	var out []Statement
	for {
		for p.accept(tokOp, ";") {
		}
		if p.at(tokEOF, "") {
			return out, nil
		}
		stmt, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, stmt)
		if !p.accept(tokOp, ";") && !p.at(tokEOF, "") {
			return nil, p.errHere("expected ';' between statements")
		}
	}
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) peek() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		t := p.cur()
		p.pos++
		return t, nil
	}
	want := text
	if want == "" {
		switch kind {
		case tokIdent:
			want = "identifier"
		case tokNumber:
			want = "number"
		default:
			want = "token"
		}
	}
	return token{}, p.errHere("expected %s, found %q", want, p.cur().text)
}

func (p *parser) errHere(format string, args ...any) error {
	t := p.cur()
	line, col := 1, 1
	for i := 0; i < t.pos && i < len(p.src); i++ {
		if p.src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Errorf("sql:%d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.at(tokKeyword, "CREATE"):
		return p.parseCreate()
	case p.at(tokKeyword, "DROP"):
		return p.parseDrop()
	case p.at(tokKeyword, "INSERT"):
		return p.parseInsert()
	case p.at(tokKeyword, "DELETE"):
		return p.parseDelete()
	case p.at(tokKeyword, "UPDATE"):
		return p.parseUpdate()
	case p.at(tokKeyword, "SELECT"), p.at(tokKeyword, "WITH"):
		return p.parseSelect()
	case p.at(tokKeyword, "ANALYZE"):
		p.pos++
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		return &AnalyzeStmt{Table: name.text}, nil
	case p.at(tokKeyword, "EXPLAIN"):
		p.pos++
		analyze := p.accept(tokKeyword, "ANALYZE")
		stmt, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		sel, ok := stmt.(*SelectStmt)
		if !ok {
			return nil, p.errHere("EXPLAIN requires a SELECT statement")
		}
		return &ExplainStmt{Analyze: analyze, Select: sel}, nil
	}
	return nil, p.errHere("expected statement, found %q", p.cur().text)
}

func (p *parser) parseCreate() (Statement, error) {
	p.pos++ // CREATE
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	stmt := &CreateTableStmt{}
	if p.accept(tokKeyword, "IF") {
		if _, err := p.expect(tokKeyword, "NOT"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "EXISTS"); err != nil {
			return nil, err
		}
		stmt.IfNotExists = true
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	stmt.Name = name.text

	if p.accept(tokKeyword, "AS") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		stmt.AsSelect = sel.(*SelectStmt)
		return stmt, nil
	}

	if _, err := p.expect(tokOp, "("); err != nil {
		return nil, err
	}
	for {
		col, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		typ, err := p.parseColumnType()
		if err != nil {
			return nil, err
		}
		// Accept and ignore common constraints; the engine is
		// dynamically typed and constraint-free.
		for {
			switch {
			case p.accept(tokKeyword, "PRIMARY"):
				if _, err := p.expect(tokKeyword, "KEY"); err != nil {
					return nil, err
				}
			case p.accept(tokKeyword, "NOT"):
				if _, err := p.expect(tokKeyword, "NULL"); err != nil {
					return nil, err
				}
			default:
				goto constraintsDone
			}
		}
	constraintsDone:
		stmt.Cols = append(stmt.Cols, ColumnDef{Name: col.text, Type: typ})
		if p.accept(tokOp, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokOp, ")"); err != nil {
		return nil, err
	}
	return stmt, nil
}

// parseColumnType maps a declared type name to an affinity.
func (p *parser) parseColumnType() (Type, error) {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return TypeNull, p.errHere("expected column type")
	}
	// Swallow optional length/precision, e.g. VARCHAR(20), DECIMAL(10,2).
	if p.accept(tokOp, "(") {
		for !p.accept(tokOp, ")") {
			if p.at(tokEOF, "") {
				return TypeNull, p.errHere("unterminated type parameters")
			}
			p.pos++
		}
	}
	switch strings.ToUpper(t.text) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT", "TINYINT":
		return TypeInt, nil
	case "REAL", "DOUBLE", "FLOAT", "NUMERIC", "DECIMAL":
		return TypeFloat, nil
	case "TEXT", "VARCHAR", "CHAR", "STRING", "CLOB":
		return TypeText, nil
	case "BOOLEAN", "BOOL":
		return TypeBool, nil
	}
	return TypeNull, p.errHere("unknown column type %q", t.text)
}

func (p *parser) parseDrop() (Statement, error) {
	p.pos++ // DROP
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	stmt := &DropTableStmt{}
	if p.accept(tokKeyword, "IF") {
		if _, err := p.expect(tokKeyword, "EXISTS"); err != nil {
			return nil, err
		}
		stmt.IfExists = true
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	stmt.Name = name.text
	return stmt, nil
}

func (p *parser) parseInsert() (Statement, error) {
	p.pos++ // INSERT
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: name.text}
	if p.accept(tokOp, "(") {
		for {
			col, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			stmt.Cols = append(stmt.Cols, col.text)
			if p.accept(tokOp, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
	}
	if p.at(tokKeyword, "SELECT") || p.at(tokKeyword, "WITH") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		stmt.Select = sel.(*SelectStmt)
		return stmt, nil
	}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tokOp, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.accept(tokOp, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if p.accept(tokOp, ",") {
			continue
		}
		break
	}
	return stmt, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.pos++ // DELETE
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Table: name.text}
	if p.accept(tokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	return stmt, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	p.pos++ // UPDATE
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{Table: name.text}
	if _, err := p.expect(tokKeyword, "SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Cols = append(stmt.Cols, col.text)
		stmt.Exprs = append(stmt.Exprs, e)
		if p.accept(tokOp, ",") {
			continue
		}
		break
	}
	if p.accept(tokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	return stmt, nil
}

func (p *parser) parseSelect() (Statement, error) {
	sel := &SelectStmt{}
	if p.accept(tokKeyword, "WITH") {
		if p.at(tokKeyword, "RECURSIVE") {
			return nil, p.errHere("recursive CTEs are not supported")
		}
		for {
			name, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			cte := CTE{Name: name.text}
			if p.accept(tokOp, "(") {
				for {
					col, err := p.expect(tokIdent, "")
					if err != nil {
						return nil, err
					}
					cte.Cols = append(cte.Cols, col.text)
					if p.accept(tokOp, ",") {
						continue
					}
					break
				}
				if _, err := p.expect(tokOp, ")"); err != nil {
					return nil, err
				}
			}
			if _, err := p.expect(tokKeyword, "AS"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokOp, "("); err != nil {
				return nil, err
			}
			inner, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			cte.Select = inner.(*SelectStmt)
			sel.With = append(sel.With, cte)
			if p.accept(tokOp, ",") {
				continue
			}
			break
		}
	}

	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	if p.accept(tokKeyword, "DISTINCT") {
		sel.Distinct = true
	} else {
		p.accept(tokKeyword, "ALL")
	}

	// Projection list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if p.accept(tokOp, ",") {
			continue
		}
		break
	}

	if p.accept(tokKeyword, "FROM") {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		sel.From = ref
		for {
			join, ok, err := p.parseJoinClause()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			sel.Joins = append(sel.Joins, join)
		}
	}

	if p.accept(tokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if p.accept(tokOp, ",") {
				continue
			}
			break
		}
	}
	if p.accept(tokKeyword, "HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	if p.at(tokKeyword, "UNION") || p.at(tokKeyword, "EXCEPT") || p.at(tokKeyword, "INTERSECT") {
		return nil, p.errHere("set operations (UNION/EXCEPT/INTERSECT) are not supported")
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if p.accept(tokOp, ",") {
				continue
			}
			break
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Limit = e
		if p.accept(tokKeyword, "OFFSET") {
			o, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.Offset = o
		}
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept(tokOp, "*") {
		return SelectItem{Star: true}, nil
	}
	// Qualified star: ident.*
	if p.at(tokIdent, "") && p.peek().kind == tokOp && p.peek().text == "." {
		save := p.pos
		tbl := p.cur().text
		p.pos += 2
		if p.accept(tokOp, "*") {
			return SelectItem{Star: true, StarTable: tbl}, nil
		}
		p.pos = save
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(tokKeyword, "AS") {
		a, err := p.expect(tokIdent, "")
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a.text
	} else if p.at(tokIdent, "") {
		item.Alias = p.cur().text
		p.pos++
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	if p.accept(tokOp, "(") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		ref := &SubqueryRef{Select: sel.(*SelectStmt)}
		p.accept(tokKeyword, "AS")
		if p.at(tokIdent, "") {
			ref.Alias = p.cur().text
			p.pos++
		} else {
			return nil, p.errHere("subquery in FROM requires an alias")
		}
		return ref, nil
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	ref := &TableName{Name: name.text}
	if p.accept(tokKeyword, "AS") {
		a, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		ref.Alias = a.text
	} else if p.at(tokIdent, "") {
		ref.Alias = p.cur().text
		p.pos++
	}
	return ref, nil
}

// parseJoinClause parses one JOIN (or comma cross-join); ok=false when the
// next token does not begin a join.
func (p *parser) parseJoinClause() (JoinClause, bool, error) {
	jtype := ""
	switch {
	case p.accept(tokOp, ","):
		ref, err := p.parseTableRef()
		if err != nil {
			return JoinClause{}, false, err
		}
		return JoinClause{Type: "CROSS", Table: ref}, true, nil
	case p.accept(tokKeyword, "JOIN"):
		jtype = "INNER"
	case p.at(tokKeyword, "INNER"):
		p.pos++
		if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
			return JoinClause{}, false, err
		}
		jtype = "INNER"
	case p.at(tokKeyword, "LEFT"):
		p.pos++
		p.accept(tokKeyword, "OUTER")
		if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
			return JoinClause{}, false, err
		}
		jtype = "LEFT"
	case p.at(tokKeyword, "CROSS"):
		p.pos++
		if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
			return JoinClause{}, false, err
		}
		jtype = "CROSS"
	default:
		return JoinClause{}, false, nil
	}
	ref, err := p.parseTableRef()
	if err != nil {
		return JoinClause{}, false, err
	}
	j := JoinClause{Type: jtype, Table: ref}
	if jtype != "CROSS" {
		if _, err := p.expect(tokKeyword, "ON"); err != nil {
			return JoinClause{}, false, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return JoinClause{}, false, err
		}
		j.On = on
	}
	return j, true, nil
}

// Operator precedence (higher binds tighter), modeled on SQLite.
var binaryPrec = map[string]int{
	"OR":  1,
	"AND": 2,
	// NOT prefix is 3.
	"=": 4, "==": 4, "!=": 4, "<>": 4, "LIKE": 4,
	"<": 5, "<=": 5, ">": 5, ">=": 5,
	"&": 6, "|": 6, "<<": 6, ">>": 6,
	"+": 7, "-": 7,
	"*": 8, "/": 8, "%": 8,
	"||": 9,
}

func (p *parser) parseExpr() (Expr, error) { return p.parseExprPrec(1) }

func (p *parser) parseExprPrec(minPrec int) (Expr, error) {
	var lhs Expr
	var err error
	// Prefix NOT sits between AND and the comparison operators.
	if minPrec <= 3 && p.accept(tokKeyword, "NOT") {
		x, err := p.parseExprPrec(3)
		if err != nil {
			return nil, err
		}
		lhs = &UnaryExpr{Op: "NOT", X: x}
	} else {
		lhs, err = p.parseUnary()
		if err != nil {
			return nil, err
		}
	}

	for {
		// Postfix forms at comparison precedence.
		if minPrec <= 4 {
			if p.at(tokKeyword, "IS") {
				p.pos++
				not := p.accept(tokKeyword, "NOT")
				if _, err := p.expect(tokKeyword, "NULL"); err != nil {
					return nil, err
				}
				lhs = &IsNullExpr{X: lhs, Not: not}
				continue
			}
			notNext := false
			save := p.pos
			if p.at(tokKeyword, "NOT") && (p.peek().text == "IN" || p.peek().text == "BETWEEN" || p.peek().text == "LIKE") {
				p.pos++
				notNext = true
			}
			if p.accept(tokKeyword, "IN") {
				if _, err := p.expect(tokOp, "("); err != nil {
					return nil, err
				}
				var list []Expr
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					list = append(list, e)
					if p.accept(tokOp, ",") {
						continue
					}
					break
				}
				if _, err := p.expect(tokOp, ")"); err != nil {
					return nil, err
				}
				lhs = &InExpr{X: lhs, List: list, Not: notNext}
				continue
			}
			if p.accept(tokKeyword, "BETWEEN") {
				lo, err := p.parseExprPrec(5)
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tokKeyword, "AND"); err != nil {
					return nil, err
				}
				hi, err := p.parseExprPrec(5)
				if err != nil {
					return nil, err
				}
				lhs = &BetweenExpr{X: lhs, Lo: lo, Hi: hi, Not: notNext}
				continue
			}
			if p.accept(tokKeyword, "LIKE") {
				r, err := p.parseExprPrec(5)
				if err != nil {
					return nil, err
				}
				var e Expr = &BinaryExpr{Op: "LIKE", L: lhs, R: r}
				if notNext {
					e = &UnaryExpr{Op: "NOT", X: e}
				}
				lhs = e
				continue
			}
			if notNext {
				p.pos = save
			}
		}

		t := p.cur()
		var op string
		switch t.kind {
		case tokOp:
			op = t.text
		case tokKeyword:
			if t.text == "AND" || t.text == "OR" {
				op = t.text
			}
		}
		prec, ok := binaryPrec[op]
		if op == "" || !ok || prec < minPrec {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.parseExprPrec(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: op, L: lhs, R: rhs}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	switch {
	case p.accept(tokOp, "-"):
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negative numeric literals for prettier deparsing.
		if lit, ok := x.(*Literal); ok && lit.Val.IsNumeric() {
			v, err := Negate(lit.Val)
			if err == nil {
				return &Literal{Val: v}, nil
			}
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	case p.accept(tokOp, "+"):
		return p.parseUnary()
	case p.accept(tokOp, "~"):
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "~", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.pos++
		if !strings.ContainsAny(t.text, ".eE") {
			i, err := strconv.ParseInt(t.text, 10, 64)
			if err == nil {
				return &Literal{Val: NewInt(i)}, nil
			}
		}
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errHere("invalid number %q", t.text)
		}
		return &Literal{Val: NewFloat(f)}, nil

	case tokString:
		p.pos++
		return &Literal{Val: NewText(t.text)}, nil

	case tokParam:
		p.pos++
		e := &ParamRef{Index: p.nparams}
		p.nparams++
		return e, nil

	case tokKeyword:
		switch t.text {
		case "NULL":
			p.pos++
			return &Literal{Val: Null}, nil
		case "TRUE":
			p.pos++
			return &Literal{Val: NewBool(true)}, nil
		case "FALSE":
			p.pos++
			return &Literal{Val: NewBool(false)}, nil
		case "CASE":
			return p.parseCase()
		case "CAST":
			p.pos++
			if _, err := p.expect(tokOp, "("); err != nil {
				return nil, err
			}
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokKeyword, "AS"); err != nil {
				return nil, err
			}
			to, err := p.parseColumnType()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			return &CastExpr{X: x, To: to}, nil
		}
		return nil, p.errHere("unexpected keyword %q in expression", t.text)

	case tokIdent:
		// Function call?
		if p.peek().kind == tokOp && p.peek().text == "(" {
			name := strings.ToUpper(t.text)
			p.pos += 2
			fc := &FuncCall{Name: name}
			if p.accept(tokOp, "*") {
				fc.Star = true
				if _, err := p.expect(tokOp, ")"); err != nil {
					return nil, err
				}
				return fc, nil
			}
			if p.accept(tokKeyword, "DISTINCT") {
				fc.Distinct = true
			}
			if !p.accept(tokOp, ")") {
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, e)
					if p.accept(tokOp, ",") {
						continue
					}
					break
				}
				if _, err := p.expect(tokOp, ")"); err != nil {
					return nil, err
				}
			}
			return fc, nil
		}
		// Qualified or bare column.
		p.pos++
		if p.accept(tokOp, ".") {
			col, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: t.text, Name: col.text}, nil
		}
		return &ColumnRef{Name: t.text}, nil

	case tokOp:
		if t.text == "(" {
			p.pos++
			if p.at(tokKeyword, "SELECT") || p.at(tokKeyword, "WITH") {
				return nil, p.errHere("scalar subqueries are not supported")
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errHere("unexpected token %q in expression", t.text)
}

func (p *parser) parseCase() (Expr, error) {
	p.pos++ // CASE
	ce := &CaseExpr{}
	if !p.at(tokKeyword, "WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Operand = op
	}
	for p.accept(tokKeyword, "WHEN") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "THEN"); err != nil {
			return nil, err
		}
		th, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, CaseWhen{When: w, Then: th})
	}
	if len(ce.Whens) == 0 {
		return nil, p.errHere("CASE requires at least one WHEN arm")
	}
	if p.accept(tokKeyword, "ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	if _, err := p.expect(tokKeyword, "END"); err != nil {
		return nil, err
	}
	return ce, nil
}
