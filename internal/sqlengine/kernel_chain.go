package sqlengine

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// Whole-circuit chain fusion: multi-stage fused execution without
// intermediate materialization.
//
// A translated circuit is a chain of gate stages, each reading exactly
// the previous stage's state table — as chained CTEs in single-query
// mode, or (after core.FusedStatements regroups them) inside one
// synthesized CREATE TABLE … AS WITH. With the optimizer on, every
// interior stage CTE stays unmaterialized until its single reference
// demands it (the reference sits under the next stage's float SUM, so
// inlining is blocked by the bit-neutrality contract). That demand —
// planner.materializeCTE — is this tier's hook: instead of
// materializing the referenced CTE and recursing stage by stage,
// fuseCTEChain walks the reference chain to the bottom, compiles every
// stage with the single-stage kernel machinery (kernel_lower.go), and
// runs all of them in one pass. The amplitudes flow between stages
// through double-buffered in-memory (key, re, im) triples; only the
// topmost chain stage's output is materialized into a ColStore. The
// intermediate stage tables never exist: no storage, no budget
// reservations, no spill eligibility.
//
// Determinism contract (extends kernel.go's): a chainBuf holds exactly
// the rows, in exactly the order, that the stage's materialized store
// would hold — the kernel's emission order with the pruning HAVING
// applied at emission (kEmitter.add's schedule verbatim). Each stage
// then runs the same serial-or-morsel accumulation schedule the
// single-stage kernel would have chosen for a store of that row count
// (the fused path never spills — fusion declines under any bounded
// budget — so ColStore.morselCount reduces to the same ceil(rows /
// morselRows) geometry). Amplitudes are therefore bit-identical to
// stage-at-a-time execution at every worker count, layout, encoding,
// and optimizer setting; the differential matrix in
// kernel_chain_test.go asserts it.

// cteStubNode stands in for an unmaterialized CTE reference while a
// chain stage's plan is lowered for compilation only (planner.stubCTE):
// it carries the reference's schema and is never opened.
type cteStubNode struct {
	name string
	cols planSchema
}

func (n *cteStubNode) schema() planSchema { return n.cols }

func (n *cteStubNode) open(*execCtx) (batchIter, error) {
	return nil, fmt.Errorf("sqlengine: internal: cteStubNode is compile-only")
}

// chainStage is one compiled-and-gate-bound stage of a fused chain.
type chainStage struct {
	kern *gateKernel
	// Interior binding (stages after the first): the gate side's bucket
	// table and output-index vector, bound from the real gate table.
	buckets  map[int64][]kGateRow
	gOut     []int64
	gateRows int
}

// chainPlan is a compiled chain, bottom stage first. stages[0] binds
// its state side to a real store (base table or an already-materialized
// CTE); every later stage consumes the previous stage's in-memory
// buffer.
type chainPlan struct {
	stages []*chainStage
}

// chainBuf is the in-memory intermediate between fused stages: the
// exact post-HAVING rows, in the exact order, the stage's materialized
// store would have held. It doubles as the kernel's emission sink
// (kSink) and the next stage's input binding.
type chainBuf struct {
	having         bool
	eps2           float64
	keys           []int64
	re, im         []float64
	minKey, maxKey int64
	any            bool
}

// emitAll implements kSink, replicating kEmitter.add's pruning HAVING
// exactly: one rounding per square, one for the sum, then the
// comparison (NaN fails it, dropping the row).
func (b *chainBuf) emitAll(keys []int64, r, i []float64) error {
	for idx, key := range keys {
		rv, iv := r[idx], i[idx]
		if b.having {
			rr := float64(rv * rv)
			ii := float64(iv * iv)
			if !(rr+ii > b.eps2) {
				continue
			}
		}
		b.keys = append(b.keys, key)
		b.re = append(b.re, rv)
		b.im = append(b.im, iv)
		if !b.any || key < b.minKey {
			b.minKey = key
		}
		if !b.any || key > b.maxKey {
			b.maxKey = key
		}
		b.any = true
	}
	return nil
}

// fuseCTEChain is the materializeCTE hook: when d tops a fusable run of
// unmaterialized single-use gate-stage CTEs, execute the whole run as
// one fused pass and install the result as d's store. Returns true when
// it did (or failed trying — a real execution error propagates); false
// declines back to stage-at-a-time materialization, counting the
// decline reason once per statement under "fallback_chain-*".
func (p *planner) fuseCTEChain(d *cteDef) (bool, error) {
	env := p.ctx.env
	if p.explain || p.stubCTE || !env.fusion || !env.kernels || !env.optimizer {
		return false, nil
	}
	chain := collectCTEChain(d)
	if len(chain) < 2 {
		return false, nil
	}
	// A bounded budget can spill and reorder anywhere; the fused pass
	// only replicates the unlimited in-memory schedule, so it declines
	// the whole chain (stage-at-a-time kernels decline individually for
	// the same reason).
	if env.budget.Limit() > 0 {
		p.chainFallback(kfChainBudgetLimited)
		return false, nil
	}
	plan, reason := p.compileChain(chain)
	if plan == nil {
		p.chainFallback(reason)
		return false, nil
	}
	bound0, reason := bindChain(env, plan)
	if bound0 == nil {
		p.chainFallback(reason)
		return false, nil
	}
	start := time.Now()
	store, err := runChainKernel(p.ctx, plan, bound0)
	if err != nil {
		return true, err
	}
	stages := int64(len(plan.stages))
	kernelBump(env, func(k *kernelCounterSet) *atomic.Int64 { return &k.executions }, stages)
	kernelBump(env, func(k *kernelCounterSet) *atomic.Int64 { return &k.chainExecutions }, 1)
	kernelBump(env, func(k *kernelCounterSet) *atomic.Int64 { return &k.chainStages }, stages)
	kernelBump(env, func(k *kernelCounterSet) *atomic.Int64 { return &k.chainElided }, stages-1)
	wall := time.Since(start)
	p.ctx.chainExec = &chainExecStat{
		wall:    wall,
		stages:  stages,
		rowsIn:  int64(bound0.rows),
		rowsOut: store.Len(),
	}
	sp := p.ctx.span.CompleteChild("kernel-chain", start, wall)
	sp.Add("stages", stages)
	sp.Add("rows_in", int64(bound0.rows))
	sp.Add("rows_out", store.Len())
	p.cleanup = append(p.cleanup, store)
	d.store = store
	return true, nil
}

// chainFallback records one chain decline, at most once per statement
// (the demand-driven materialization recursion would otherwise count
// every suffix of the same chain).
func (p *planner) chainFallback(reason string) {
	if p.chainCounted {
		return
	}
	p.chainCounted = true
	if !strings.HasPrefix(reason, "chain-") {
		reason = "chain-" + reason
	}
	kernelFallback(p.ctx.env, reason)
}

// collectCTEChain walks the stage chain downward from d: each link is a
// CTE plan containing exactly one CTE reference, to an unmaterialized,
// non-inline, single-use definition. Returns the chain bottom-first
// (the last entry is d).
func collectCTEChain(d *cteDef) []*cteDef {
	seen := map[*cteDef]bool{d: true}
	chain := []*cteDef{d}
	cur := d
	for {
		refs := cteRefsIn(cur.plan)
		if len(refs) != 1 {
			break
		}
		prev := refs[0].cte
		if prev == nil || prev.inline || prev.store != nil || prev.uses != 1 || seen[prev] {
			break
		}
		seen[prev] = true
		chain = append(chain, prev)
		cur = prev
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}

// cteRefsIn collects every CTE reference in a logical subtree.
func cteRefsIn(n logicalNode) []*lCTERef {
	var out []*lCTERef
	var walk func(logicalNode)
	walk = func(n logicalNode) {
		switch t := n.(type) {
		case *lCTERef:
			out = append(out, t)
		case *lFilter:
			walk(t.child)
		case *lProject:
			walk(t.child)
		case *lStrip:
			walk(t.child)
		case *lPick:
			walk(t.child)
		case *lJoin:
			walk(t.left)
			walk(t.right)
		case *lAgg:
			walk(t.child)
		case *lSort:
			walk(t.child)
		case *lLimit:
			walk(t.child)
		case *lAlias:
			walk(t.child)
		}
	}
	walk(n)
	return out
}

// chainFindCore walks a lowered stage plan through the order-neutral
// wrappers (the same set findGateStage tolerates) to the gate-stage
// core projection.
func chainFindCore(root planNode) (*projectNode, string) {
	cur := root
	for {
		switch n := cur.(type) {
		case *statNode:
			cur = n.child
		case *projectNode:
			if agg, _ := coreAggOf(n); agg != nil {
				return n, ""
			}
			cur = n.child
		case *sortNode:
			cur = n.child
		case *aliasNode:
			cur = n.child
		case *filterNode:
			cur = n.child
		case *limitNode:
			cur = n.child
		case *sliceProjectNode:
			cur = n.child
		case *pickNode:
			cur = n.child
		default:
			return nil, kfChainStageShape
		}
	}
}

// coreStateSide returns the state-side join input of a matched
// gate-stage core projection.
func coreStateSide(core *projectNode) planNode {
	agg, _ := coreAggOf(core)
	if agg == nil {
		return nil
	}
	join, ok := unwrapStat(agg.child).(*joinNode)
	if !ok {
		return nil
	}
	return join.left
}

// cteShowOf descends the order-neutral wrappers to a CTE display node,
// or nil when the subtree bottoms out elsewhere (a real table scan).
func cteShowOf(n planNode) *cteShowNode {
	for {
		switch x := n.(type) {
		case *statNode:
			n = x.child
		case *aliasNode:
			n = x.child
		case *cteShowNode:
			return x
		default:
			return nil
		}
	}
}

// explainChainStages mirrors the fusion chain walk on EXPLAIN's
// physical tree (where CTE references appear as cteShowNode subplans):
// starting from a matched top-level core, it counts the consecutive
// single-use gate-stage CTE links down to the real state table. The
// count is the number of stages a fused execution would cover; it is 0
// when any link breaks the chain (fusion is all-or-nothing).
func explainChainStages(env *storageEnv, core *projectNode) int {
	stages := 0
	cur := coreStateSide(core)
	for {
		if cur == nil {
			return 0
		}
		show := cteShowOf(cur)
		if show == nil {
			return stages // clean bottom: a real state table
		}
		if stages > 0 && show.uses != 1 {
			return 0 // shared interior CTE: the chain cannot claim it
		}
		inner, _ := chainFindCore(show.child)
		if inner == nil {
			return 0
		}
		kern, _ := compileGateStage(inner, env, false)
		if kern == nil {
			return 0
		}
		next := coreStateSide(inner)
		if cteShowOf(next) != nil && !chainStateSlots(kern.prog) {
			return 0 // interior stage breaks the (s, r, i) slot contract
		}
		stages++
		cur = next
	}
}

// compileChain lowers and compiles every stage, bottom first. Each
// stage's plan is lowered by a throwaway sub-planner in stubCTE mode,
// which replaces unmaterialized CTE references with schema stubs
// instead of recursing — lowering one stage therefore costs one stage,
// not the whole chain below it. The bottom stage compiles through the
// full single-stage path (its state side is a real store); interior
// stages compile in chain mode (state side pinned to the (s, r, i)
// intermediate layout, gate side bound physically).
func (p *planner) compileChain(chain []*cteDef) (*chainPlan, string) {
	stages := make([]*chainStage, len(chain))
	for i, d := range chain {
		sub := &planner{ctx: p.ctx, db: p.db, stubCTE: true}
		node, err := sub.lower(d.plan)
		if err != nil {
			// Let stage-at-a-time execution rediscover (and report) the
			// lowering error on the normal path.
			return nil, kfChainStageShape
		}
		core, reason := chainFindCore(node)
		if core == nil {
			return nil, reason
		}
		var kern *gateKernel
		if i == 0 {
			kern, reason = compileGateStage(core, p.ctx.env, true)
		} else {
			kern, reason = compileChainStage(core, p.ctx.env)
		}
		if kern == nil {
			return nil, reason
		}
		stages[i] = &chainStage{kern: kern}
	}
	return &chainPlan{stages: stages}, ""
}

// bindChain binds every stage to the current data — the bottom stage
// fully (state store + gate buckets, via bindGateStage), later stages
// on their gate side only — before anything executes, so a bind decline
// falls back with no work done.
func bindChain(env *storageEnv, plan *chainPlan) (*boundGate, string) {
	bound0, reason := bindGateStage(env, plan.stages[0].kern)
	if bound0 == nil {
		return nil, reason
	}
	for _, st := range plan.stages[1:] {
		if reason := bindChainGate(env, st); reason != "" {
			return nil, reason
		}
	}
	return bound0, ""
}

// bindChainGate binds an interior stage's gate side: the build-key
// buckets in gate-row order (the streaming join's insertion order) and
// the output-index vector for dense bounding.
func bindChainGate(env *storageEnv, st *chainStage) string {
	prog := st.kern.prog
	gate, ok := st.kern.gate.store.(*ColStore)
	if !ok {
		return kfRowLayout
	}
	if err := gate.Freeze(); err != nil {
		return kfSpilled
	}
	if gate.Spilled() {
		return kfSpilled
	}
	st.gateRows = gate.rows
	if gate.rows == 0 {
		return ""
	}
	gIn := kernelIntVec(env, gate, prog.gIn)
	g0a := kernelFloatVec(env, gate, prog.g0a)
	g0b := kernelFloatVec(env, gate, prog.g0b)
	g1a := kernelFloatVec(env, gate, prog.g1a)
	g1b := kernelFloatVec(env, gate, prog.g1b)
	var gOut []int64
	if prog.gOut >= 0 {
		gOut = kernelIntVec(env, gate, prog.gOut)
		if gOut == nil {
			return kfColumnTypes
		}
	}
	if gIn == nil || g0a == nil || g0b == nil || g1a == nil || g1b == nil {
		return kfColumnTypes
	}
	st.buckets = buildGateBuckets(gIn, gOut, g0a, g0b, g1a, g1b, gate.rows)
	st.gOut = gOut
	return ""
}

// bindChainInput binds a stage's state side to the previous stage's
// in-memory buffer. The program's state slots address the fixed
// (s, r, i) layout (chainStateSlots proved it at compile time).
func bindChainInput(st *chainStage, in *chainBuf) *boundGate {
	prog := st.kern.prog
	bk := &boundGate{prog: prog, rows: len(in.keys), groupHint: int64(len(in.keys)), denseHi: -1}
	if len(in.keys) == 0 || st.gateRows == 0 {
		bk.empty = true
		return bk
	}
	pick := func(slot int) []float64 {
		if slot == 1 {
			return in.re
		}
		return in.im
	}
	bk.sKey = in.keys
	bk.s0a, bk.s0b = pick(prog.s0a), pick(prog.s0b)
	bk.s1a, bk.s1b = pick(prog.s1a), pick(prog.s1b)
	bk.buckets = st.buckets
	// The same mode the single-stage kernel would choose for a
	// materialized store of this row count (the fused path never
	// spills, so morselCount reduces to the plain geometry).
	bk.morsel = (bk.rows+morselRows-1)/morselRows >= minParallelMorsels
	if !bk.morsel && prog.gOutFn != nil {
		bk.denseHi = chainDenseBound(in, prog, st.gOut)
	}
	return bk
}

// chainDenseBound is denseBound over an in-memory intermediate: the
// buffer tracks its own exact key min/max, standing in for the table
// statistics a materialized store would carry.
func chainDenseBound(in *chainBuf, prog *kernelProg, gOut []int64) int64 {
	if !in.any || in.minKey < 0 {
		return -1
	}
	hi := pow2mask(in.maxKey)
	if hi < 0 {
		return -1
	}
	if gOut == nil {
		v := prog.gOutFn(0, 0)
		if v < 0 {
			return -1
		}
		hi |= v
	} else {
		for _, out := range gOut {
			v := prog.gOutFn(0, out)
			if v < 0 {
				return -1
			}
			hi |= v
		}
	}
	if hi >= denseCap {
		return -1
	}
	return hi
}

// runChainKernel executes a bound chain: every stage but the last emits
// into the next stage's chainBuf; the last materializes through the
// standard kernel emitter into a fresh store (exactly the store
// stage-at-a-time execution would have produced for the top CTE).
func runChainKernel(ctx *execCtx, plan *chainPlan, bound0 *boundGate) (tableStore, error) {
	last := len(plan.stages) - 1
	var cur *chainBuf
	for i, st := range plan.stages {
		bk := bound0
		if i > 0 {
			bk = bindChainInput(st, cur)
		}
		if i == last {
			return runGateKernel(ctx, st.kern, bk, false)
		}
		prog := st.kern.prog
		nxt := &chainBuf{having: prog.having, eps2: prog.eps2}
		if !bk.empty {
			var err error
			if bk.morsel {
				err = bk.runMorsel(ctx, nxt)
			} else {
				err = bk.runSerial(ctx, nxt)
			}
			if err != nil {
				return nil, err
			}
		}
		cur = nxt
	}
	// Unreachable: the loop always returns at i == last.
	return nil, fmt.Errorf("sqlengine: internal: empty chain plan")
}

// kernelIntVec decodes a frozen store's int column into a plain vector
// (bindGateStage's intVec as a package helper; encoded columns decode
// into fresh scratch, counted as a kernel encoding bind).
func kernelIntVec(env *storageEnv, cs *ColStore, idx int) []int64 {
	if idx < 0 || idx >= len(cs.cols) {
		return nil
	}
	c := &cs.cols[idx]
	if len(c.nulls) != 0 {
		return nil
	}
	switch c.kind {
	case colInt:
		return c.ints
	case colIntRLE:
		out := make([]int64, cs.rows)
		pos := 0
		for _, r := range c.runs {
			for ; pos < int(r.end); pos++ {
				out[pos] = r.v
			}
		}
		env.storageCtrs.bumpKernelEncBind()
		return out
	case colIntDict:
		out := make([]int64, cs.rows)
		for i, code := range c.codes {
			out[i] = c.dict[code]
		}
		env.storageCtrs.bumpKernelEncBind()
		return out
	}
	return nil
}

// kernelFloatVec decodes a frozen store's float column into a plain
// vector (bindGateStage's floatVec as a package helper).
func kernelFloatVec(env *storageEnv, cs *ColStore, idx int) []float64 {
	if idx < 0 || idx >= len(cs.cols) {
		return nil
	}
	c := &cs.cols[idx]
	if len(c.nulls) != 0 {
		return nil
	}
	switch c.kind {
	case colFloat:
		return c.floats
	case colFloatSparse:
		out := make([]float64, cs.rows)
		for i, p := range c.spos {
			out[p] = c.svals[i]
		}
		env.storageCtrs.bumpKernelEncBind()
		return out
	}
	return nil
}

// buildGateBuckets builds the gate-side bucket table in gate-row order
// (the streaming join's insertion order).
func buildGateBuckets(gIn, gOut []int64, g0a, g0b, g1a, g1b []float64, rows int) map[int64][]kGateRow {
	buckets := make(map[int64][]kGateRow, rows)
	for r := 0; r < rows; r++ {
		row := kGateRow{g0a: g0a[r], g0b: g0b[r], g1a: g1a[r], g1b: g1b[r]}
		if gOut != nil {
			row.out = gOut[r]
		}
		buckets[gIn[r]] = append(buckets[gIn[r]], row)
	}
	return buckets
}
