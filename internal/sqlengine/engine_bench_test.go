package sqlengine

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"
)

// Engine micro-benchmarks: the operator costs underlying the SQL
// backend's per-gate time. Set QYMERA_BENCH_JSON=<path> and run
// TestWriteEngineBenchJSON to emit a machine-readable rows/sec report
// (cmd/qybench -benchjson writes the circuit-level counterpart).

func benchDB(b *testing.B, rows int) *DB {
	b.Helper()
	db, err := Open(Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	if _, err := db.Exec("CREATE TABLE t (s INTEGER, r REAL, i REAL)"); err != nil {
		b.Fatal(err)
	}
	batch := make([]string, 0, 500)
	for k := 0; k < rows; k++ {
		batch = append(batch, fmt.Sprintf("(%d, %g, 0.0)", k, 1.0/float64(rows)))
		if len(batch) == 500 || k == rows-1 {
			if _, err := db.Exec("INSERT INTO t VALUES " + strings.Join(batch, ",")); err != nil {
				b.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	return db
}

func BenchmarkParse(b *testing.B) {
	src := `WITH T1 AS (
	  SELECT ((T0.s & ~1) | H.out_s) AS s,
	         SUM((T0.r * H.r) - (T0.i * H.i)) AS r,
	         SUM((T0.r * H.i) + (T0.i * H.r)) AS i
	  FROM T0 JOIN H ON H.in_s = (T0.s & 1)
	  GROUP BY ((T0.s & ~1) | H.out_s)
	) SELECT s, r, i FROM T1 ORDER BY s`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := ParseStatement(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanFilter(b *testing.B) {
	db := benchDB(b, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Query("SELECT s FROM t WHERE (s & 7) = 3")
		if err != nil {
			b.Fatal(err)
		}
		if rs.Len() != 512 {
			b.Fatalf("rows = %d", rs.Len())
		}
		rs.Close()
	}
}

func BenchmarkHashJoin(b *testing.B) {
	db := benchDB(b, 4096)
	if _, err := db.Exec("CREATE TABLE g (in_s INTEGER, out_s INTEGER, r REAL, i REAL)"); err != nil {
		b.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO g VALUES (0,0,0.70710678,0),(0,1,0.70710678,0),(1,0,0.70710678,0),(1,1,-0.70710678,0)"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Query("SELECT COUNT(*) FROM t JOIN g ON g.in_s = (t.s & 1)")
		if err != nil {
			b.Fatal(err)
		}
		rs.Close()
	}
}

func BenchmarkGroupByAggregate(b *testing.B) {
	db := benchDB(b, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Query("SELECT (s & 255) AS k, SUM(r), COUNT(*) FROM t GROUP BY (s & 255)")
		if err != nil {
			b.Fatal(err)
		}
		if rs.Len() != 256 {
			b.Fatalf("groups = %d", rs.Len())
		}
		rs.Close()
	}
}

func BenchmarkOrderBy(b *testing.B) {
	db := benchDB(b, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Query("SELECT s FROM t ORDER BY r DESC, s")
		if err != nil {
			b.Fatal(err)
		}
		rs.Close()
	}
}

func BenchmarkGateStageQuery(b *testing.B) {
	// The exact shape of one translated gate application.
	db := benchDB(b, 4096)
	if _, err := db.Exec("CREATE TABLE h (in_s INTEGER, out_s INTEGER, r REAL, i REAL)"); err != nil {
		b.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO h VALUES (0,0,0.70710678,0),(0,1,0.70710678,0),(1,0,0.70710678,0),(1,1,-0.70710678,0)"); err != nil {
		b.Fatal(err)
	}
	q := `SELECT ((t.s & ~1) | h.out_s) AS s,
	       SUM((t.r * h.r) - (t.i * h.i)) AS r,
	       SUM((t.r * h.i) + (t.i * h.r)) AS i
	FROM t JOIN h ON h.in_s = (t.s & 1)
	GROUP BY ((t.s & ~1) | h.out_s)`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Query(q)
		if err != nil {
			b.Fatal(err)
		}
		if rs.Len() != 4096 {
			b.Fatalf("rows = %d", rs.Len())
		}
		rs.Close()
	}
}

// engineMicroWorkloads are the operator shapes measured by both the Go
// benchmarks above and the JSON report: predicate scan, hash join,
// hash aggregation, and the full translated gate stage.
var engineMicroWorkloads = []struct {
	name string
	rows int // input rows per execution, for rows/sec
	sql  string
}{
	{"scan_filter", 4096, "SELECT s FROM t WHERE (s & 7) = 3"},
	{"hash_join", 4096, "SELECT COUNT(*) FROM t JOIN h ON h.in_s = (t.s & 1)"},
	{"group_by", 4096, "SELECT (s & 255) AS k, SUM(r), COUNT(*) FROM t GROUP BY (s & 255)"},
	{"gate_stage", 4096, `SELECT ((t.s & ~1) | h.out_s) AS s,
	       SUM((t.r * h.r) - (t.i * h.i)) AS r,
	       SUM((t.r * h.i) + (t.i * h.r)) AS i
	FROM t JOIN h ON h.in_s = (t.s & 1)
	GROUP BY ((t.s & ~1) | h.out_s)`},
}

// TestWriteEngineBenchJSON measures rows/sec for each micro workload
// and, when QYMERA_BENCH_JSON names a path, writes the report there
// (e.g. BENCH_sqlengine.json). Without the variable it only sanity
// checks that every workload executes.
func TestWriteEngineBenchJSON(t *testing.T) {
	path := os.Getenv("QYMERA_BENCH_JSON")
	db, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE t (s INTEGER, r REAL, i REAL)"); err != nil {
		t.Fatal(err)
	}
	batch := make([]string, 0, 500)
	for k := 0; k < 4096; k++ {
		batch = append(batch, fmt.Sprintf("(%d, %g, 0.0)", k, 1.0/4096.0))
		if len(batch) == 500 || k == 4095 {
			if _, err := db.Exec("INSERT INTO t VALUES " + strings.Join(batch, ",")); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if _, err := db.Exec("CREATE TABLE h (in_s INTEGER, out_s INTEGER, r REAL, i REAL)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO h VALUES (0,0,0.70710678,0),(0,1,0.70710678,0),(1,0,0.70710678,0),(1,1,-0.70710678,0)"); err != nil {
		t.Fatal(err)
	}

	type entry struct {
		Workload   string  `json:"workload"`
		InputRows  int     `json:"input_rows"`
		Iterations int     `json:"iterations"`
		NsPerOp    float64 `json:"ns_per_op"`
		RowsPerSec float64 `json:"rows_per_sec"`
	}
	report := struct {
		Engine    string  `json:"engine"`
		BatchSize int     `json:"batch_size"`
		Entries   []entry `json:"entries"`
	}{Engine: "vectorized-batch", BatchSize: BatchSize}

	iters := 20
	if path == "" {
		iters = 1 // plain test runs just verify the workloads
	}
	for _, w := range engineMicroWorkloads {
		start := time.Now()
		for i := 0; i < iters; i++ {
			rs, err := db.Query(w.sql)
			if err != nil {
				t.Fatalf("%s: %v", w.name, err)
			}
			rs.Close()
		}
		elapsed := time.Since(start)
		nsPerOp := float64(elapsed.Nanoseconds()) / float64(iters)
		report.Entries = append(report.Entries, entry{
			Workload:   w.name,
			InputRows:  w.rows,
			Iterations: iters,
			NsPerOp:    nsPerOp,
			RowsPerSec: float64(w.rows) / (nsPerOp / 1e9),
		})
	}
	if path == "" {
		t.Skip("QYMERA_BENCH_JSON not set; workloads verified, no report written")
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}

func BenchmarkSpillingAggregate(b *testing.B) {
	db, err := Open(Config{MemoryBudget: 64 << 10, SpillDir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE t (s INTEGER, r REAL, i REAL)"); err != nil {
		b.Fatal(err)
	}
	batch := make([]string, 0, 500)
	for k := 0; k < 8192; k++ {
		batch = append(batch, fmt.Sprintf("(%d, 0.5, 0.0)", k))
		if len(batch) == 500 || k == 8191 {
			if _, err := db.Exec("INSERT INTO t VALUES " + strings.Join(batch, ",")); err != nil {
				b.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Query("SELECT s, SUM(r) FROM t GROUP BY s")
		if err != nil {
			b.Fatal(err)
		}
		rs.Close()
	}
}
