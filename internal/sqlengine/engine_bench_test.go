package sqlengine

import (
	"fmt"
	"strings"
	"testing"
)

// Engine micro-benchmarks: the operator costs underlying the SQL
// backend's per-gate time.

func benchDB(b *testing.B, rows int) *DB {
	b.Helper()
	db, err := Open(Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	if _, err := db.Exec("CREATE TABLE t (s INTEGER, r REAL, i REAL)"); err != nil {
		b.Fatal(err)
	}
	batch := make([]string, 0, 500)
	for k := 0; k < rows; k++ {
		batch = append(batch, fmt.Sprintf("(%d, %g, 0.0)", k, 1.0/float64(rows)))
		if len(batch) == 500 || k == rows-1 {
			if _, err := db.Exec("INSERT INTO t VALUES " + strings.Join(batch, ",")); err != nil {
				b.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	return db
}

func BenchmarkParse(b *testing.B) {
	src := `WITH T1 AS (
	  SELECT ((T0.s & ~1) | H.out_s) AS s,
	         SUM((T0.r * H.r) - (T0.i * H.i)) AS r,
	         SUM((T0.r * H.i) + (T0.i * H.r)) AS i
	  FROM T0 JOIN H ON H.in_s = (T0.s & 1)
	  GROUP BY ((T0.s & ~1) | H.out_s)
	) SELECT s, r, i FROM T1 ORDER BY s`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := ParseStatement(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanFilter(b *testing.B) {
	db := benchDB(b, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Query("SELECT s FROM t WHERE (s & 7) = 3")
		if err != nil {
			b.Fatal(err)
		}
		if rs.Len() != 512 {
			b.Fatalf("rows = %d", rs.Len())
		}
		rs.Close()
	}
}

func BenchmarkHashJoin(b *testing.B) {
	db := benchDB(b, 4096)
	if _, err := db.Exec("CREATE TABLE g (in_s INTEGER, out_s INTEGER, r REAL, i REAL)"); err != nil {
		b.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO g VALUES (0,0,0.70710678,0),(0,1,0.70710678,0),(1,0,0.70710678,0),(1,1,-0.70710678,0)"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Query("SELECT COUNT(*) FROM t JOIN g ON g.in_s = (t.s & 1)")
		if err != nil {
			b.Fatal(err)
		}
		rs.Close()
	}
}

func BenchmarkGroupByAggregate(b *testing.B) {
	db := benchDB(b, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Query("SELECT (s & 255) AS k, SUM(r), COUNT(*) FROM t GROUP BY (s & 255)")
		if err != nil {
			b.Fatal(err)
		}
		if rs.Len() != 256 {
			b.Fatalf("groups = %d", rs.Len())
		}
		rs.Close()
	}
}

func BenchmarkOrderBy(b *testing.B) {
	db := benchDB(b, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Query("SELECT s FROM t ORDER BY r DESC, s")
		if err != nil {
			b.Fatal(err)
		}
		rs.Close()
	}
}

func BenchmarkGateStageQuery(b *testing.B) {
	// The exact shape of one translated gate application.
	db := benchDB(b, 4096)
	if _, err := db.Exec("CREATE TABLE h (in_s INTEGER, out_s INTEGER, r REAL, i REAL)"); err != nil {
		b.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO h VALUES (0,0,0.70710678,0),(0,1,0.70710678,0),(1,0,0.70710678,0),(1,1,-0.70710678,0)"); err != nil {
		b.Fatal(err)
	}
	q := `SELECT ((t.s & ~1) | h.out_s) AS s,
	       SUM((t.r * h.r) - (t.i * h.i)) AS r,
	       SUM((t.r * h.i) + (t.i * h.r)) AS i
	FROM t JOIN h ON h.in_s = (t.s & 1)
	GROUP BY ((t.s & ~1) | h.out_s)`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Query(q)
		if err != nil {
			b.Fatal(err)
		}
		if rs.Len() != 4096 {
			b.Fatalf("rows = %d", rs.Len())
		}
		rs.Close()
	}
}

func BenchmarkSpillingAggregate(b *testing.B) {
	db, err := Open(Config{MemoryBudget: 64 << 10, SpillDir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE t (s INTEGER, r REAL, i REAL)"); err != nil {
		b.Fatal(err)
	}
	batch := make([]string, 0, 500)
	for k := 0; k < 8192; k++ {
		batch = append(batch, fmt.Sprintf("(%d, 0.5, 0.0)", k))
		if len(batch) == 500 || k == 8191 {
			if _, err := db.Exec("INSERT INTO t VALUES " + strings.Join(batch, ",")); err != nil {
				b.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Query("SELECT s, SUM(r) FROM t GROUP BY s")
		if err != nil {
			b.Fatal(err)
		}
		rs.Close()
	}
}
