package sqlengine

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
)

// Lowering: pattern-match the gate-stage plan shape and compile it into
// a store-independent kernel program (see the contract in kernel.go).

// Matcher decline reasons. Every reason is observable through
// KernelCounters() ("fallback_<reason>") and the EXPLAIN header.
const (
	kfDisabled      = "disabled"
	kfBudgetLimited = "budget-limited"
	kfNoGateStage   = "no-gate-stage"
	kfProjectShape  = "project-shape"
	kfAggShape      = "agg-shape"
	kfDistinctAgg   = "distinct-agg"
	kfHavingShape   = "having-shape"
	kfJoinShape     = "join-shape"
	kfScanShape     = "scan-shape"
	kfRowLayout     = "row-layout"
	kfSpilled       = "spilled"
	kfColumnTypes   = "column-types"
	kfUnsupported   = "unsupported-expr"

	// Whole-circuit chain fusion decline reasons (kernel_chain.go). A
	// chain decline is not a statement-level fallback — the statement
	// still runs stage-at-a-time, each stage through the single-stage
	// kernel — but it is counted distinctly so a sweep that silently
	// lost fusion is visible in /metrics.
	kfChainBudgetLimited = "chain-budget-limited"
	kfChainStageShape    = "chain-stage-shape"
	kfChainSlots         = "chain-slots"
	kfChainBind          = "chain-bind"
)

const kernelAnnotation = "gate-stage(fused: scan⋈join⋈agg⋈project)"

// chainAnnotation renders the EXPLAIN marker for a fused K-stage chain.
func chainAnnotation(stages int) string {
	return fmt.Sprintf("gate-chain(stages=%d)", stages)
}

// kIntFn is a compiled integer scalar closure over the state amplitude
// index s and (optionally) one gate-table integer column g.
type kIntFn func(s, g int64) int64

// kernelProg is a compiled, store-independent gate-stage program: the
// bit-arithmetic closures plus resolved physical column slots. Cached
// in KernelCache; execution re-binds it to the current table vectors.
type kernelProg struct {
	// inFn computes the probe key (the join's left key) from the state
	// index; outFn computes the group key (the target amplitude index)
	// from the state index and the gate's output-index column.
	inFn, outFn kIntFn
	// sCol is the physical state column holding the amplitude index.
	sCol int
	// s0a,s0b / s1a,s1b are the physical state float columns of the two
	// SUM arguments' products; g0a,g0b / g1a,g1b their gate-side
	// counterparts. sub0/sub1 select (a·b − c·d) vs (a·b + c·d).
	s0a, s0b, s1a, s1b int
	g0a, g0b, g1a, g1b int
	sub0, sub1         bool
	// gIn is the physical gate probe (build-key) column; gOut the
	// physical gate column consumed by outFn (-1 when outFn ignores the
	// gate side).
	gIn, gOut int
	// having/eps2 replicate the pruning HAVING clause
	// ((r²+i²) > eps²) at emission time.
	having bool
	eps2   float64
	// gOutFn, when non-nil, evaluates the gate-side contribution of a
	// group key of the form (s & mask) | gOutFn(out): the signature a
	// dense (array-indexed) accumulator can bound, see bindGateStage.
	gOutFn kIntFn
}

// gateKernel is one matched site: the core plan nodes plus the compiled
// program.
type gateKernel struct {
	core  *projectNode
	agg   *aggNode
	state *storeScanNode
	gate  *storeScanNode
	prog  *kernelProg
	// cached reports that prog came from the kernel cache rather than
	// a fresh compile (kernelExecStat, trace counters).
	cached bool
}

// gateStageSite locates the matched core inside the plan: set replaces
// the core subtree in its parent (nil when the core is the plan root).
type gateStageSite struct {
	kern *gateKernel
	set  func(planNode)
}

// findGateStage walks the plan root through order-neutral wrapper
// operators (sort, projection, alias, filter, limit — none of them
// change what the core computes, only how its output is presented)
// looking for the gate-stage core. It never descends into join or
// aggregate children: a core below those is not a materialization
// boundary the kernel may claim.
func findGateStage(ctx *execCtx, root planNode) (*gateStageSite, string) {
	cur := root
	var set func(planNode)
	for {
		switch n := cur.(type) {
		case *statNode:
			// Instrumented plans (EXPLAIN ANALYZE, traced execution)
			// interleave counter wrappers; the kernel matches through
			// them and reports its own stats instead (kernelExecStat).
			set = func(c planNode) { n.child = c }
			cur = n.child
		case *projectNode:
			if agg, _ := coreAggOf(n); agg != nil {
				kern, reason := compileGateStage(n, ctx.env, true)
				if kern == nil {
					return nil, reason
				}
				return &gateStageSite{kern: kern, set: set}, ""
			}
			set = func(c planNode) { n.child = c }
			cur = n.child
		case *sortNode:
			set = func(c planNode) { n.child = c }
			cur = n.child
		case *aliasNode:
			set = func(c planNode) { n.child = c }
			cur = n.child
		case *filterNode:
			set = func(c planNode) { n.child = c }
			cur = n.child
		case *limitNode:
			set = func(c planNode) { n.child = c }
			cur = n.child
		case *sliceProjectNode:
			set = func(c planNode) { n.child = c }
			cur = n.child
		case *pickNode:
			set = func(c planNode) { n.child = c }
			cur = n.child
		default:
			return nil, kfNoGateStage
		}
	}
}

// unwrapStat strips statNode instrumentation wrappers. The kernel
// matcher's structural checks look at the operators themselves; the
// wrappers are transparent (same schema, same rows).
func unwrapStat(n planNode) planNode {
	for {
		sn, ok := n.(*statNode)
		if !ok {
			return n
		}
		n = sn.child
	}
}

// coreAggOf returns the aggregate (and the pruning HAVING filter, when
// present) directly under a candidate core projection.
func coreAggOf(core *projectNode) (*aggNode, *filterNode) {
	switch c := unwrapStat(core.child).(type) {
	case *aggNode:
		return c, nil
	case *filterNode:
		if a, ok := unwrapStat(c.child).(*aggNode); ok {
			return a, c
		}
	}
	return nil, nil
}

// compileGateStage matches the core rooted at a projection known to sit
// on an aggregate and compiles (or fetches from the kernel cache) its
// program. With bindPhys=false (EXPLAIN's structural dry run) it stops
// at the structural match: store layout checks, physical column
// resolution, the cache, and the counters are all skipped, and the
// state side may be an unmaterialized CTE reference.
func compileGateStage(core *projectNode, env *storageEnv, bindPhys bool) (*gateKernel, string) {
	agg, having := coreAggOf(core)
	if agg == nil {
		return nil, kfNoGateStage
	}
	// Projection: a pure pass-through of the aggregate's three outputs
	// (group key, SUM real, SUM imaginary) in order.
	aggSchema := agg.schema()
	if len(core.exprs) != 3 || len(aggSchema) != 3 {
		return nil, kfProjectShape
	}
	for i, e := range core.exprs {
		ref, ok := e.(*ColumnRef)
		if !ok {
			return nil, kfProjectShape
		}
		idx, err := aggSchema.resolveColumn(ref.Table, ref.Name)
		if err != nil || idx != i {
			return nil, kfProjectShape
		}
	}
	// Aggregate: one group key, two plain SUMs.
	if len(agg.groupBy) != 1 || len(agg.aggs) != 2 {
		return nil, kfAggShape
	}
	for _, a := range agg.aggs {
		if a.Distinct {
			return nil, kfDistinctAgg
		}
		if a.Name != "SUM" || a.Arg == nil {
			return nil, kfAggShape
		}
	}
	// HAVING: the translated zero-amplitude pruning predicate
	// (a0² + a1²) > eps², nothing else.
	eps2 := 0.0
	if having != nil {
		var ok bool
		eps2, ok = parseKernelHaving(having.pred, aggSchema)
		if !ok {
			return nil, kfHavingShape
		}
	}
	// Join: streaming INNER hash join on a single equi-key with no
	// residual, build side as planned (a flip or grace partitioning
	// changes the probe schedule the kernel replicates).
	join, ok := unwrapStat(agg.child).(*joinNode)
	if !ok {
		return nil, kfJoinShape
	}
	if join.joinType != "INNER" || len(join.leftKeys) != 1 || len(join.rightKeys) != 1 ||
		join.residual != nil || join.flipped || join.strategy == joinGrace {
		return nil, kfJoinShape
	}
	stateScan, stateOK := unwrapStat(join.left).(*storeScanNode)
	gateScan, gateOK := unwrapStat(join.right).(*storeScanNode)
	if !gateOK || (!stateOK && (bindPhys || !isCTERefChain(join.left))) {
		return nil, kfScanShape
	}
	leftSchema := join.left.schema()
	rightSchema := gateScan.schema()
	joinSchema := append(append(planSchema{}, leftSchema...), rightSchema...)
	nLeft := len(leftSchema)

	if bindPhys {
		if _, ok := stateScan.store.(*ColStore); !ok {
			return nil, kfRowLayout
		}
		if _, ok := gateScan.store.(*ColStore); !ok {
			return nil, kfRowLayout
		}
		key := gateStageCacheKey(core, agg, having, join, stateScan.keep, gateScan, nLeft, len(rightSchema))
		if cache := env.kernelCache; cache != nil {
			if prog, hit := cache.lookup(key); hit {
				kernelBump(env, func(k *kernelCounterSet) *atomic.Int64 { return &k.cacheHits }, 1)
				return &gateKernel{core: core, agg: agg, state: stateScan, gate: gateScan, prog: prog, cached: true}, ""
			}
		}
		prog, reason := compileGateProgram(agg, having, join, stateScan, gateScan, joinSchema, nLeft, eps2)
		if prog == nil {
			return nil, reason
		}
		kernelBump(env, func(k *kernelCounterSet) *atomic.Int64 { return &k.compiles }, 1)
		if cache := env.kernelCache; cache != nil {
			cache.store(key, prog)
		}
		return &gateKernel{core: core, agg: agg, state: stateScan, gate: gateScan, prog: prog}, ""
	}
	// Structural dry run: compile against schema slots only (physical
	// column maps need the scans, which an EXPLAIN-mode CTE reference
	// does not have).
	prog, reason := compileGateProgram(agg, having, join, nil, nil, joinSchema, nLeft, eps2)
	if prog == nil {
		return nil, reason
	}
	return &gateKernel{core: core, agg: agg, state: stateScan, gate: gateScan, prog: prog}, ""
}

// isCTERefChain reports whether a node is a reference to a CTE that is
// not (yet) materialized: alias wrappers over a cteShowNode (EXPLAIN's
// display lowering) or over a cteStubNode (chain fusion's
// stop-at-the-reference lowering, see kernel_chain.go).
func isCTERefChain(n planNode) bool {
	for {
		switch x := n.(type) {
		case *statNode:
			n = x.child
		case *aliasNode:
			n = x.child
		case *cteShowNode:
			return true
		case *cteStubNode:
			return true
		default:
			return false
		}
	}
}

// chainStateSlots validates the intermediate-layout contract of a chain
// stage's schema-slot program: the producing stage emits (index, real,
// imaginary) as columns (0, 1, 2), so the consuming stage's state-side
// slots must address exactly that layout — the integer index at slot 0
// and every float factor at slot 1 or 2.
func chainStateSlots(prog *kernelProg) bool {
	f := func(s int) bool { return s == 1 || s == 2 }
	return prog.sCol == 0 && f(prog.s0a) && f(prog.s0b) && f(prog.s1a) && f(prog.s1b)
}

// compileChainStage compiles one interior stage of a fused chain (or
// fetches it from the kernel cache): the full structural gate-stage
// match, with the state side left as logical slots into the fixed
// (s, r, i) in-memory intermediate and only the gate side — a real
// base table — bound to physical store columns. Chain programs share
// the kernel cache under a "chain|"-prefixed key, so a sweep compiles
// each stage shape once and rebinds thereafter.
func compileChainStage(core *projectNode, env *storageEnv) (*gateKernel, string) {
	agg, having := coreAggOf(core)
	if agg == nil {
		return nil, kfChainStageShape
	}
	join, ok := unwrapStat(agg.child).(*joinNode)
	if !ok {
		return nil, kfChainStageShape
	}
	gateScan, ok := unwrapStat(join.right).(*storeScanNode)
	if !ok {
		return nil, kfChainStageShape
	}
	key := "chain|" + gateStageCacheKey(core, agg, having, join, nil, gateScan, len(join.left.schema()), len(gateScan.cols))
	if cache := env.kernelCache; cache != nil {
		if prog, hit := cache.lookup(key); hit {
			kernelBump(env, func(k *kernelCounterSet) *atomic.Int64 { return &k.cacheHits }, 1)
			return &gateKernel{core: core, agg: agg, gate: gateScan, prog: prog, cached: true}, ""
		}
	}
	// Structural dry run: the matcher tolerates the unmaterialized CTE
	// reference on the state side and compiles against schema slots.
	kern, reason := compileGateStage(core, env, false)
	if kern == nil {
		return nil, reason
	}
	if !chainStateSlots(kern.prog) {
		return nil, kfChainSlots
	}
	// Map the gate side to physical store columns; the state side stays
	// on the (0,1,2) intermediate layout.
	prog := *kern.prog
	gp := func(i int) int { return scanPhys(gateScan, i) }
	prog.gIn = gp(prog.gIn)
	if prog.gOut >= 0 {
		prog.gOut = gp(prog.gOut)
	}
	prog.g0a, prog.g0b, prog.g1a, prog.g1b = gp(prog.g0a), gp(prog.g0b), gp(prog.g1a), gp(prog.g1b)
	kernelBump(env, func(k *kernelCounterSet) *atomic.Int64 { return &k.compiles }, 1)
	if cache := env.kernelCache; cache != nil {
		cache.store(key, &prog)
	}
	kern.prog = &prog
	kern.gate = gateScan
	return kern, ""
}

// compileGateProgram compiles the matched core's expressions. scans may
// be nil (EXPLAIN dry run): physical slots then stay schema slots.
func compileGateProgram(agg *aggNode, having *filterNode, join *joinNode, stateScan, gateScan *storeScanNode, joinSchema planSchema, nLeft int, eps2 float64) (*kernelProg, string) {
	// The probe key: integer bit arithmetic over exactly one state
	// column (the amplitude index).
	inBind := &kColBinder{schema: joinSchema, nLeft: nLeft, sCol: -1, gCol: -1, leftOnly: true}
	inFn, err := compileKernelInt(join.leftKeys[0], inBind)
	if err != nil || inBind.sCol < 0 {
		return nil, kfUnsupported
	}
	// The build key: a bare gate column.
	rref, ok := join.rightKeys[0].(*ColumnRef)
	if !ok {
		return nil, kfUnsupported
	}
	gIn, rerr := gateScan.schemaOrNil(joinSchema, nLeft).resolveColumn(rref.Table, rref.Name)
	if rerr != nil {
		return nil, kfUnsupported
	}
	// The group key: bit arithmetic over the same state column plus at
	// most one gate column (the gate's output index).
	outBind := &kColBinder{schema: joinSchema, nLeft: nLeft, sCol: inBind.sCol, gCol: -1}
	outFn, err := compileKernelInt(agg.groupBy[0], outBind)
	if err != nil {
		return nil, kfUnsupported
	}
	// The SUM arguments: (state·gate) ± (state·gate) complex products.
	s0, reason := parseKernelSum(agg.aggs[0].Arg, joinSchema, nLeft)
	if reason != "" {
		return nil, reason
	}
	s1, reason := parseKernelSum(agg.aggs[1].Arg, joinSchema, nLeft)
	if reason != "" {
		return nil, reason
	}
	prog := &kernelProg{
		inFn: inFn, outFn: outFn,
		sCol: inBind.sCol,
		s0a:  s0.aS, s0b: s0.bS, s1a: s1.aS, s1b: s1.bS,
		g0a: s0.aG, g0b: s0.bG, g1a: s1.aG, g1b: s1.bG,
		sub0: s0.sub, sub1: s1.sub,
		gIn:    gIn,
		gOut:   outBind.gCol,
		having: having != nil,
		eps2:   eps2,
	}
	prog.gOutFn = denseGateSpec(agg.groupBy[0], joinSchema, nLeft, prog.sCol)
	if stateScan != nil {
		// Map schema slots to physical store columns through the scans'
		// column-pruning maps.
		sp := func(i int) int { return scanPhys(stateScan, i) }
		gp := func(i int) int { return scanPhys(gateScan, i) }
		prog.sCol = sp(prog.sCol)
		prog.s0a, prog.s0b, prog.s1a, prog.s1b = sp(prog.s0a), sp(prog.s0b), sp(prog.s1a), sp(prog.s1b)
		prog.gIn = gp(prog.gIn)
		if prog.gOut >= 0 {
			prog.gOut = gp(prog.gOut)
		}
		prog.g0a, prog.g0b, prog.g1a, prog.g1b = gp(prog.g0a), gp(prog.g0b), gp(prog.g1a), gp(prog.g1b)
	}
	return prog, ""
}

// schemaOrNil returns the gate scan's schema; when the scan is nil
// (EXPLAIN dry run) the right half of the join schema stands in.
func (n *storeScanNode) schemaOrNil(joinSchema planSchema, nLeft int) planSchema {
	if n != nil {
		return n.cols
	}
	return joinSchema[nLeft:]
}

// scanPhys maps a scan-schema slot to the physical store column.
func scanPhys(sc *storeScanNode, idx int) int {
	if sc.keep != nil {
		return sc.keep[idx]
	}
	return idx
}

// kColBinder resolves column references while compiling kernel integer
// expressions, pinning the expression to at most one state column and
// one gate column.
type kColBinder struct {
	schema   planSchema
	nLeft    int
	sCol     int // join-schema slot of the state index column (-1 unseen)
	gCol     int // gate-schema slot of the gate column (-1 unseen)
	leftOnly bool
}

func (b *kColBinder) resolve(c *ColumnRef) (byte, error) {
	idx, err := b.schema.resolveColumn(c.Table, c.Name)
	if err != nil {
		return 0, err
	}
	if idx < b.nLeft {
		if b.sCol >= 0 && b.sCol != idx {
			return 0, fmt.Errorf("kernel: two state columns")
		}
		b.sCol = idx
		return 's', nil
	}
	if b.leftOnly {
		return 0, fmt.Errorf("kernel: gate column in probe key")
	}
	g := idx - b.nLeft
	if b.gCol >= 0 && b.gCol != g {
		return 0, fmt.Errorf("kernel: two gate columns")
	}
	b.gCol = g
	return 'g', nil
}

// compileKernelInt compiles an integer scalar expression into a
// closure. The supported operators mirror value.go's INTEGER semantics
// exactly: +, -, * wrap; & and | are plain; << and >> yield 0 outside
// [0,63] (>> is arithmetic); unary - negates and ~ complements.
// Division and modulo are admitted only with a nonzero integer literal
// divisor — a zero divisor yields SQL NULL in the engine, which the
// closure cannot represent.
func compileKernelInt(e Expr, bind *kColBinder) (kIntFn, error) {
	switch n := e.(type) {
	case *Literal:
		if n.Val.T != TypeInt && n.Val.T != TypeBool {
			return nil, fmt.Errorf("kernel: non-integer literal")
		}
		v := n.Val.I
		return func(_, _ int64) int64 { return v }, nil
	case *ColumnRef:
		which, err := bind.resolve(n)
		if err != nil {
			return nil, err
		}
		if which == 's' {
			return func(s, _ int64) int64 { return s }, nil
		}
		return func(_, g int64) int64 { return g }, nil
	case *UnaryExpr:
		x, err := compileKernelInt(n.X, bind)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case "-":
			return func(s, g int64) int64 { return -x(s, g) }, nil
		case "~":
			return func(s, g int64) int64 { return ^x(s, g) }, nil
		}
		return nil, fmt.Errorf("kernel: unary %s", n.Op)
	case *BinaryExpr:
		if n.Op == "/" || n.Op == "%" {
			lit, ok := n.R.(*Literal)
			if !ok || lit.Val.T != TypeInt || lit.Val.I == 0 {
				return nil, fmt.Errorf("kernel: non-literal divisor")
			}
		}
		l, err := compileKernelInt(n.L, bind)
		if err != nil {
			return nil, err
		}
		r, err := compileKernelInt(n.R, bind)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case "&":
			return func(s, g int64) int64 { return l(s, g) & r(s, g) }, nil
		case "|":
			return func(s, g int64) int64 { return l(s, g) | r(s, g) }, nil
		case "+":
			return func(s, g int64) int64 { return l(s, g) + r(s, g) }, nil
		case "-":
			return func(s, g int64) int64 { return l(s, g) - r(s, g) }, nil
		case "*":
			return func(s, g int64) int64 { return l(s, g) * r(s, g) }, nil
		case "/":
			return func(s, g int64) int64 { return l(s, g) / r(s, g) }, nil
		case "%":
			return func(s, g int64) int64 { return l(s, g) % r(s, g) }, nil
		case "<<":
			return func(s, g int64) int64 {
				b := r(s, g)
				if b < 0 || b > 63 {
					return 0
				}
				return l(s, g) << uint(b)
			}, nil
		case ">>":
			return func(s, g int64) int64 {
				b := r(s, g)
				if b < 0 || b > 63 {
					return 0
				}
				return l(s, g) >> uint(b)
			}, nil
		}
		return nil, fmt.Errorf("kernel: binary %s", n.Op)
	}
	return nil, fmt.Errorf("kernel: unsupported expression %T", e)
}

// kSumSpec is one parsed SUM argument (lA·gA) ± (lB·gB): join-schema
// slots of the state (aS,bS) and gate (aG,bG) factors.
type kSumSpec struct {
	aS, aG, bS, bG int
	sub            bool
}

// parseKernelSum matches the complex multiply-accumulate shape of a
// translated SUM argument: a sum or difference of two products, each
// product one state float column times one gate float column.
func parseKernelSum(e Expr, joinSchema planSchema, nLeft int) (kSumSpec, string) {
	var spec kSumSpec
	top, ok := e.(*BinaryExpr)
	if !ok || (top.Op != "+" && top.Op != "-") {
		return spec, kfUnsupported
	}
	spec.sub = top.Op == "-"
	var reason string
	spec.aS, spec.aG, reason = parseKernelProduct(top.L, joinSchema, nLeft)
	if reason != "" {
		return spec, reason
	}
	spec.bS, spec.bG, reason = parseKernelProduct(top.R, joinSchema, nLeft)
	if reason != "" {
		return spec, reason
	}
	return spec, ""
}

// parseKernelProduct matches one state·gate product, returning the
// state slot (join schema) and gate slot (gate schema). Factor order is
// irrelevant: float multiplication commutes bit-exactly.
func parseKernelProduct(e Expr, joinSchema planSchema, nLeft int) (int, int, string) {
	mul, ok := e.(*BinaryExpr)
	if !ok || mul.Op != "*" {
		return 0, 0, kfUnsupported
	}
	li, ok1 := resolveRef(mul.L, joinSchema)
	ri, ok2 := resolveRef(mul.R, joinSchema)
	if !ok1 || !ok2 {
		return 0, 0, kfUnsupported
	}
	switch {
	case li < nLeft && ri >= nLeft:
		return li, ri - nLeft, ""
	case ri < nLeft && li >= nLeft:
		return ri, li - nLeft, ""
	}
	return 0, 0, kfUnsupported
}

func resolveRef(e Expr, schema planSchema) (int, bool) {
	ref, ok := e.(*ColumnRef)
	if !ok {
		return 0, false
	}
	idx, err := schema.resolveColumn(ref.Table, ref.Name)
	if err != nil {
		return 0, false
	}
	return idx, true
}

// parseKernelHaving matches the translated pruning predicate
// (a0·a0 + a1·a1) > eps² over the aggregate schema (slots 1 and 2 are
// the two SUMs, in either order), returning the threshold.
func parseKernelHaving(pred Expr, aggSchema planSchema) (float64, bool) {
	cmp, ok := pred.(*BinaryExpr)
	if !ok || cmp.Op != ">" {
		return 0, false
	}
	lit, ok := cmp.R.(*Literal)
	if !ok || lit.Val.T != TypeFloat {
		return 0, false
	}
	add, ok := cmp.L.(*BinaryExpr)
	if !ok || add.Op != "+" {
		return 0, false
	}
	sq := func(e Expr) (int, bool) {
		mul, ok := e.(*BinaryExpr)
		if !ok || mul.Op != "*" {
			return 0, false
		}
		li, ok1 := resolveRef(mul.L, aggSchema)
		ri, ok2 := resolveRef(mul.R, aggSchema)
		if !ok1 || !ok2 || li != ri {
			return 0, false
		}
		return li, true
	}
	a, ok1 := sq(add.L)
	b, ok2 := sq(add.R)
	if !ok1 || !ok2 {
		return 0, false
	}
	if !(a == 1 && b == 2) && !(a == 2 && b == 1) {
		return 0, false
	}
	return lit.Val.F, true
}

// denseGateSpec recognizes the canonical mask-merge group key
// (s & mask) | f(out) — in either operand order — and compiles the
// gate-side half f. With it, bindGateStage can bound every group key by
// pow2mask(max s) | OR(f(out)) and use a dense array accumulator: for
// s ≥ 0, (s & mask) ⊆ the bits of s regardless of the mask's sign
// (the golden plans carry negative mask literals like s & -2).
func denseGateSpec(e Expr, joinSchema planSchema, nLeft, sCol int) kIntFn {
	or, ok := e.(*BinaryExpr)
	if !ok || or.Op != "|" {
		return nil
	}
	isMasked := func(x Expr) bool {
		and, ok := x.(*BinaryExpr)
		if !ok || and.Op != "&" {
			return false
		}
		l, lok := resolveRef(and.L, joinSchema)
		r, rok := resolveRef(and.R, joinSchema)
		_, llit := and.L.(*Literal)
		_, rlit := and.R.(*Literal)
		return (lok && l == sCol && rlit) || (rok && r == sCol && llit)
	}
	var gateSide Expr
	switch {
	case isMasked(or.L):
		gateSide = or.R
	case isMasked(or.R):
		gateSide = or.L
	default:
		return nil
	}
	bind := &kColBinder{schema: joinSchema, nLeft: nLeft, sCol: -1, gCol: -1}
	fn, err := compileKernelInt(gateSide, bind)
	if err != nil || bind.sCol >= 0 {
		return nil // the gate side must not touch the state index
	}
	return fn
}

// gateStageCacheKey canonicalizes everything a compiled program depends
// on: the expressions (with resolved slots and literal values), the
// scans' physical column maps (keepL is the state scan's pruning map,
// nil for a chain stage whose state side is the fixed in-memory
// intermediate), and the schema widths.
func gateStageCacheKey(core *projectNode, agg *aggNode, having *filterNode, join *joinNode, keepL []int, gateScan *storeScanNode, nLeft, nRight int) string {
	leftSchema := join.left.schema()
	joinSchema := append(append(planSchema{}, leftSchema...), gateScan.cols...)
	var b strings.Builder
	b.WriteString("v1|nl=")
	b.WriteString(strconv.Itoa(nLeft))
	b.WriteString("|nr=")
	b.WriteString(strconv.Itoa(nRight))
	b.WriteString("|kl=")
	writeKeep(&b, keepL)
	b.WriteString("|kr=")
	writeKeep(&b, gateScan.keep)
	b.WriteString("|in=")
	b.WriteString(canonicalExprString(join.leftKeys[0], leftSchema))
	b.WriteString("|rk=")
	b.WriteString(canonicalExprString(join.rightKeys[0], gateScan.cols))
	b.WriteString("|out=")
	b.WriteString(canonicalExprString(agg.groupBy[0], joinSchema))
	b.WriteString("|s0=")
	b.WriteString(canonicalExprString(agg.aggs[0].Arg, joinSchema))
	b.WriteString("|s1=")
	b.WriteString(canonicalExprString(agg.aggs[1].Arg, joinSchema))
	b.WriteString("|hv=")
	if having != nil {
		b.WriteString(canonicalExprString(having.pred, agg.schema()))
	} else {
		b.WriteString("-")
	}
	return b.String()
}

func writeKeep(b *strings.Builder, keep []int) {
	if keep == nil {
		b.WriteString("*")
		return
	}
	for i, k := range keep {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(k))
	}
}
