package sqlengine

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	stmt, _, err := ParseStatement(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return stmt
}

func TestParseCreateTable(t *testing.T) {
	stmt := mustParse(t, "CREATE TABLE T0 (s INTEGER, r REAL, i REAL)").(*CreateTableStmt)
	if stmt.Name != "T0" || len(stmt.Cols) != 3 {
		t.Fatalf("stmt = %+v", stmt)
	}
	if stmt.Cols[0].Type != TypeInt || stmt.Cols[1].Type != TypeFloat {
		t.Fatalf("types = %+v", stmt.Cols)
	}
	ifne := mustParse(t, "CREATE TABLE IF NOT EXISTS x (a INT PRIMARY KEY, b TEXT NOT NULL)").(*CreateTableStmt)
	if !ifne.IfNotExists || len(ifne.Cols) != 2 {
		t.Fatalf("stmt = %+v", ifne)
	}
}

func TestParseCreateTableAsSelect(t *testing.T) {
	stmt := mustParse(t, "CREATE TABLE T1 AS SELECT s, r FROM T0").(*CreateTableStmt)
	if stmt.AsSelect == nil || len(stmt.AsSelect.Items) != 2 {
		t.Fatalf("stmt = %+v", stmt)
	}
}

func TestParseInsert(t *testing.T) {
	stmt := mustParse(t, "INSERT INTO H (in_s, out_s, r, i) VALUES (0, 0, 0.7071, 0.0), (0, 1, 0.7071, 0.0)").(*InsertStmt)
	if stmt.Table != "H" || len(stmt.Cols) != 4 || len(stmt.Rows) != 2 {
		t.Fatalf("stmt = %+v", stmt)
	}
	sel := mustParse(t, "INSERT INTO t SELECT a FROM u").(*InsertStmt)
	if sel.Select == nil {
		t.Fatal("expected INSERT..SELECT")
	}
}

func TestParseSelectWithCTEChain(t *testing.T) {
	// The exact shape of the paper's Fig. 2c query.
	src := `WITH T1 AS (
	  SELECT ((T0.s & ~1) | H.out_s) AS s,
	         SUM((T0.r * H.r) - (T0.i * H.i)) AS r,
	         SUM((T0.r * H.i) + (T0.i * H.r)) AS i
	  FROM T0 JOIN H ON H.in_s = (T0.s & 1)
	  GROUP BY ((T0.s & ~1) | H.out_s)
	)
	SELECT s, r, i FROM T1 ORDER BY s`
	stmt := mustParse(t, src).(*SelectStmt)
	if len(stmt.With) != 1 || stmt.With[0].Name != "T1" {
		t.Fatalf("with = %+v", stmt.With)
	}
	inner := stmt.With[0].Select
	if len(inner.Items) != 3 || len(inner.Joins) != 1 || len(inner.GroupBy) != 1 {
		t.Fatalf("inner = %+v", inner)
	}
	if inner.Joins[0].Type != "INNER" {
		t.Fatalf("join type = %s", inner.Joins[0].Type)
	}
	if len(stmt.OrderBy) != 1 || stmt.OrderBy[0].Desc {
		t.Fatalf("order by = %+v", stmt.OrderBy)
	}
}

func TestParsePrecedenceBitwiseVsComparison(t *testing.T) {
	// & binds tighter than =, so this parses as (a & 1) = 1.
	stmt := mustParse(t, "SELECT a & 1 = 1 FROM t").(*SelectStmt)
	e := stmt.Items[0].Expr.(*BinaryExpr)
	if e.Op != "=" {
		t.Fatalf("top op = %s, want =", e.Op)
	}
	if l, ok := e.L.(*BinaryExpr); !ok || l.Op != "&" {
		t.Fatalf("lhs = %s", e.L.Deparse())
	}
}

func TestParsePrecedenceArithVsBitwise(t *testing.T) {
	// * binds tighter than <<: a << b*c  =>  a << (b*c)
	stmt := mustParse(t, "SELECT a << b * c FROM t").(*SelectStmt)
	e := stmt.Items[0].Expr.(*BinaryExpr)
	if e.Op != "<<" {
		t.Fatalf("top = %s", e.Op)
	}
	if r, ok := e.R.(*BinaryExpr); !ok || r.Op != "*" {
		t.Fatalf("rhs = %s", e.R.Deparse())
	}
}

func TestParseUnaryBitwiseNot(t *testing.T) {
	stmt := mustParse(t, "SELECT s & ~6 FROM t").(*SelectStmt)
	e := stmt.Items[0].Expr.(*BinaryExpr)
	u, ok := e.R.(*UnaryExpr)
	if !ok || u.Op != "~" {
		t.Fatalf("expr = %s", e.Deparse())
	}
}

func TestParseAliases(t *testing.T) {
	stmt := mustParse(t, "SELECT t.a AS x, b y FROM tbl t").(*SelectStmt)
	if stmt.Items[0].Alias != "x" || stmt.Items[1].Alias != "y" {
		t.Fatalf("aliases = %+v", stmt.Items)
	}
	from := stmt.From.(*TableName)
	if from.Name != "tbl" || from.Alias != "t" {
		t.Fatalf("from = %+v", from)
	}
}

func TestParseJoinVariants(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y CROSS JOIN d").(*SelectStmt)
	if len(stmt.Joins) != 3 {
		t.Fatalf("joins = %d", len(stmt.Joins))
	}
	if stmt.Joins[0].Type != "INNER" || stmt.Joins[1].Type != "LEFT" || stmt.Joins[2].Type != "CROSS" {
		t.Fatalf("types = %v %v %v", stmt.Joins[0].Type, stmt.Joins[1].Type, stmt.Joins[2].Type)
	}
	comma := mustParse(t, "SELECT * FROM a, b").(*SelectStmt)
	if len(comma.Joins) != 1 || comma.Joins[0].Type != "CROSS" {
		t.Fatalf("comma join = %+v", comma.Joins)
	}
}

func TestParseSubqueryInFrom(t *testing.T) {
	stmt := mustParse(t, "SELECT q.s FROM (SELECT s FROM t) AS q").(*SelectStmt)
	sub, ok := stmt.From.(*SubqueryRef)
	if !ok || sub.Alias != "q" {
		t.Fatalf("from = %+v", stmt.From)
	}
	if _, _, err := ParseStatement("SELECT 1 FROM (SELECT 1)"); err == nil {
		t.Fatal("subquery without alias should fail")
	}
}

func TestParseCaseInBody(t *testing.T) {
	stmt := mustParse(t, "SELECT CASE WHEN x > 0 THEN 'pos' WHEN x < 0 THEN 'neg' ELSE 'zero' END FROM t").(*SelectStmt)
	ce := stmt.Items[0].Expr.(*CaseExpr)
	if len(ce.Whens) != 2 || ce.Else == nil || ce.Operand != nil {
		t.Fatalf("case = %+v", ce)
	}
	st2 := mustParse(t, "SELECT CASE x WHEN 1 THEN 'one' END FROM t").(*SelectStmt)
	ce2 := st2.Items[0].Expr.(*CaseExpr)
	if ce2.Operand == nil {
		t.Fatal("operand case lost operand")
	}
}

func TestParseInBetweenIsNull(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM t WHERE a IN (1,2,3) AND b NOT BETWEEN 1 AND 5 AND c IS NOT NULL").(*SelectStmt)
	conjs := splitConjuncts(stmt.Where)
	if len(conjs) != 3 {
		t.Fatalf("conjuncts = %d", len(conjs))
	}
	if _, ok := conjs[0].(*InExpr); !ok {
		t.Fatalf("conj0 = %T", conjs[0])
	}
	if be, ok := conjs[1].(*BetweenExpr); !ok || !be.Not {
		t.Fatalf("conj1 = %T", conjs[1])
	}
	if in, ok := conjs[2].(*IsNullExpr); !ok || !in.Not {
		t.Fatalf("conj2 = %T", conjs[2])
	}
}

func TestParseGroupByHavingOrderLimit(t *testing.T) {
	stmt := mustParse(t, "SELECT s, COUNT(*) c FROM t GROUP BY s HAVING COUNT(*) > 1 ORDER BY c DESC, s ASC LIMIT 10 OFFSET 5").(*SelectStmt)
	if len(stmt.GroupBy) != 1 || stmt.Having == nil {
		t.Fatalf("stmt = %+v", stmt)
	}
	if len(stmt.OrderBy) != 2 || !stmt.OrderBy[0].Desc || stmt.OrderBy[1].Desc {
		t.Fatalf("order = %+v", stmt.OrderBy)
	}
	if stmt.Limit == nil || stmt.Offset == nil {
		t.Fatal("limit/offset missing")
	}
}

func TestParseDistinctAndFunctions(t *testing.T) {
	stmt := mustParse(t, "SELECT DISTINCT COUNT(DISTINCT x), ABS(-3) FROM t").(*SelectStmt)
	if !stmt.Distinct {
		t.Fatal("distinct lost")
	}
	fc := stmt.Items[0].Expr.(*FuncCall)
	if fc.Name != "COUNT" || !fc.Distinct {
		t.Fatalf("fc = %+v", fc)
	}
}

func TestParseDeleteUpdate(t *testing.T) {
	del := mustParse(t, "DELETE FROM t WHERE x < 0").(*DeleteStmt)
	if del.Table != "t" || del.Where == nil {
		t.Fatalf("del = %+v", del)
	}
	up := mustParse(t, "UPDATE t SET a = a + 1, b = 2 WHERE c = 3").(*UpdateStmt)
	if len(up.Cols) != 2 || up.Where == nil {
		t.Fatalf("up = %+v", up)
	}
}

func TestParseScript(t *testing.T) {
	stmts, err := ParseScript("CREATE TABLE a (x INT); INSERT INTO a VALUES (1);; SELECT * FROM a;")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("stmts = %d", len(stmts))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"SELECT FROM t",
		"CREATE TABLE t (a BLOBBY)",
		"SELECT * FROM t WHERE",
		"WITH RECURSIVE r AS (SELECT 1) SELECT * FROM r",
		"SELECT (SELECT 1)",
		"SELECT 1 UNION SELECT 2",
		"INSERT INTO t VALUES 1",
		"SELECT 1 2 3",
	}
	for _, src := range cases {
		if _, _, err := ParseStatement(src); err == nil {
			t.Fatalf("%q: expected parse error", src)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, _, err := ParseStatement("SELECT *\nFROM")
	if err == nil || !strings.Contains(err.Error(), "sql:2:") {
		t.Fatalf("err = %v", err)
	}
}

func TestParamCounting(t *testing.T) {
	_, n, err := ParseStatement("SELECT ? + ?, ? FROM t WHERE x = ?")
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("params = %d", n)
	}
}

func TestDeparseRoundTrip(t *testing.T) {
	stmt := mustParse(t, "SELECT ((T0.s & ~1) | H.out_s) FROM T0 JOIN H ON H.in_s = (T0.s & 1)").(*SelectStmt)
	d := stmt.Items[0].Expr.Deparse()
	// Reparse the deparsed text; it must produce the same deparse.
	stmt2 := mustParse(t, "SELECT "+d+" FROM T0 JOIN H ON H.in_s = (T0.s & 1)").(*SelectStmt)
	if stmt2.Items[0].Expr.Deparse() != d {
		t.Fatalf("deparse unstable: %q vs %q", d, stmt2.Items[0].Expr.Deparse())
	}
}
