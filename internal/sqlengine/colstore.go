package sqlengine

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sync/atomic"
)

// ColStore is the native columnar table store: each column is a typed
// vector (int64 / float64 / string / bool) with a null bitmap, falling
// back to a generic []Value vector for columns that mix types (the
// engine is dynamically typed). CREATE TABLE AS and INSERT … SELECT
// append batch-at-a-time straight into the column vectors — no per-row
// Row materialization and one budget reservation per batch — and scans,
// including the fixed-size morsel claims of the parallel executor, are
// column-slice ranges: generic columns are exposed to rowBatch views
// zero-copy, typed columns through tight per-kind decode loops into
// per-scanner scratch vectors.
//
// Spilling writes column runs: when a reservation overflows the budget
// the buffered columns are flushed to the spill file as one columnar
// chunk (per-column kind tag, null bitmap, packed data) and subsequent
// appends accumulate into bounded pending chunks, so out-of-core stores
// keep the columnar format end-to-end. Values round-trip exactly —
// types, int64 values, and float64 bit patterns — which keeps simulated
// amplitudes bitwise identical to the row layout.
type ColStore struct {
	env   *storageEnv
	width int // -1 until the first append fixes the column count
	cols  []column
	// rows is the in-memory buffered row count (the pending chunk once
	// the store has spilled).
	rows     int
	memBytes int64

	file     *os.File
	w        *bufio.Writer
	fileRows int64
	frozen   bool
	// spillErr is sticky: once a chunk write fails partway the on-disk
	// stream is unusable, so every later append, freeze, and scan must
	// fail rather than write or decode past the partial chunk.
	spillErr error
	// stats, when non-nil, is updated incrementally on every append
	// (base tables; see stats.go).
	stats *tableStats
	// capHint is the expected total row count (cost-model estimate);
	// typed column vectors allocate this capacity up front instead of
	// growing through append doubling.
	capHint int
}

// setStatsCollector / statsSnapshot implement statsCollecting.
func (cs *ColStore) setStatsCollector(ts *tableStats) { cs.stats = ts }
func (cs *ColStore) statsSnapshot() *tableStats       { return cs.stats }

// frozenState reports whether the store is currently frozen (ANALYZE
// restores the previous state after its scan).
func (cs *ColStore) frozenState() bool { return cs.frozen }

// hintRows pre-sizes future typed column allocations for an expected
// row count (capped; a wrong estimate can waste at most the cap).
func (cs *ColStore) hintRows(n int64) {
	const maxHint = 1 << 20
	if n > maxHint {
		n = maxHint
	}
	if int(n) > cs.capHint {
		cs.capHint = int(n)
	}
}

func newColStore(env *storageEnv) *ColStore { return &ColStore{env: env, width: -1} }

// colKind identifies the physical representation of one column vector.
type colKind uint8

const (
	colUnset   colKind = iota // only NULLs seen so far; nulls bitmap only
	colInt                    // []int64 (INTEGER)
	colFloat                  // []float64 (REAL)
	colStr                    // []string (TEXT)
	colBool                   // []bool (BOOLEAN)
	colGeneric                // []Value fallback for mixed-type columns

	// Encoded kinds (encoding.go): exact compressed forms of colInt /
	// colFloat, selected at Freeze time from the table statistics.
	colIntRLE      // []intRun run-length runs
	colIntDict     // dictionary []int64 + per-row uint32 codes
	colFloatSparse // sorted nonzero positions + values, zeros elided
)

func (k colKind) String() string {
	switch k {
	case colUnset:
		return "null"
	case colInt:
		return "int64"
	case colFloat:
		return "float64"
	case colStr:
		return "string"
	case colBool:
		return "bool"
	case colGeneric:
		return "values"
	case colIntRLE:
		return "int64/rle"
	case colIntDict:
		return "int64/dict"
	case colFloatSparse:
		return "float64/sparse"
	}
	return fmt.Sprintf("colKind(%d)", uint8(k))
}

// column is one typed column vector. Exactly one data slice is active,
// selected by kind; nulls is the null bitmap (bit i set = row i NULL),
// nil while the column has no NULLs, and unused for colGeneric.
type column struct {
	kind   colKind
	nulls  []uint64
	ints   []int64
	floats []float64
	strs   []string
	bools  []bool
	vals   colVec
	// hint pre-sizes the typed vector allocation (ColStore.hintRows).
	hint int

	// Encoded representations (encoding.go). encLen is the encoded row
	// count; encSaved the resident bytes the encoding released back to
	// the budget (re-reserved on a lazy decode). The null bitmap stays
	// verbatim — encodings cover the raw value slots only.
	runs     []intRun  // colIntRLE
	dict     []int64   // colIntDict values
	codes    []uint32  // colIntDict per-row codes
	spos     []int32   // colFloatSparse nonzero positions (ascending)
	svals    []float64 // colFloatSparse nonzero values
	encLen   int
	encSaved int64
}

func (c *column) setNull(row int) {
	need := row>>6 + 1
	for len(c.nulls) < need {
		c.nulls = append(c.nulls, 0)
	}
	c.nulls[row>>6] |= 1 << (uint(row) & 63)
}

func (c *column) isNull(row int) bool {
	w := row >> 6
	return w < len(c.nulls) && c.nulls[w]&(1<<(uint(row)&63)) != 0
}

// valueAt reconstructs the Value stored at row i (exact round-trip).
func (c *column) valueAt(i int) Value {
	switch c.kind {
	case colGeneric:
		return c.vals[i]
	case colUnset:
		return Null
	}
	if c.isNull(i) {
		return Null
	}
	switch c.kind {
	case colInt:
		return Value{T: TypeInt, I: c.ints[i]}
	case colFloat:
		return Value{T: TypeFloat, F: c.floats[i]}
	case colStr:
		return Value{T: TypeText, S: c.strs[i]}
	case colBool:
		if c.bools[i] {
			return Value{T: TypeBool, I: 1}
		}
		return Value{T: TypeBool}
	case colIntRLE:
		return Value{T: TypeInt, I: c.runs[runSearch(c.runs, i)].v}
	case colIntDict:
		return Value{T: TypeInt, I: c.dict[c.codes[i]]}
	case colFloatSparse:
		if si := sparseSearch(c.spos, i); si < len(c.spos) && int(c.spos[si]) == i {
			return Value{T: TypeFloat, F: c.svals[si]}
		}
		return Value{T: TypeFloat}
	}
	return Null
}

// setKind fixes an unset column's kind at row (the current length),
// backfilling the rows seen so far — all NULL by definition — with
// zero slots.
func (c *column) setKind(t Type, row int) {
	capacity := max(2*row, batchSize, c.hint)
	switch t {
	case TypeInt:
		c.kind, c.ints = colInt, make([]int64, row, capacity)
	case TypeFloat:
		c.kind, c.floats = colFloat, make([]float64, row, capacity)
	case TypeText:
		c.kind, c.strs = colStr, make([]string, row, capacity)
	case TypeBool:
		c.kind, c.bools = colBool, make([]bool, row, capacity)
	}
}

// degrade converts a typed column of length row to the generic layout
// after a type mismatch. Rare: it only happens for genuinely mixed-type
// columns.
func (c *column) degrade(row int) {
	vals := make(colVec, row, max(2*row, batchSize))
	for i := 0; i < row; i++ {
		vals[i] = c.valueAt(i)
	}
	*c = column{kind: colGeneric, vals: vals}
}

// appendValue appends v at row (the current column length).
func (c *column) appendValue(v Value, row int) {
	for {
		switch c.kind {
		case colGeneric:
			c.vals = append(c.vals, v)
			return
		case colUnset:
			if v.T == TypeNull {
				c.setNull(row)
				return
			}
			c.setKind(v.T, row)
			continue
		case colInt:
			switch v.T {
			case TypeInt:
				c.ints = append(c.ints, v.I)
			case TypeNull:
				c.ints = append(c.ints, 0)
				c.setNull(row)
			default:
				c.degrade(row)
				continue
			}
			return
		case colFloat:
			switch v.T {
			case TypeFloat:
				c.floats = append(c.floats, v.F)
			case TypeNull:
				c.floats = append(c.floats, 0)
				c.setNull(row)
			default:
				c.degrade(row)
				continue
			}
			return
		case colStr:
			switch v.T {
			case TypeText:
				c.strs = append(c.strs, v.S)
			case TypeNull:
				c.strs = append(c.strs, "")
				c.setNull(row)
			default:
				c.degrade(row)
				continue
			}
			return
		case colBool:
			switch v.T {
			case TypeBool:
				c.bools = append(c.bools, v.I != 0)
			case TypeNull:
				c.bools = append(c.bools, false)
				c.setNull(row)
			default:
				c.degrade(row)
				continue
			}
			return
		case colIntRLE, colIntDict, colFloatSparse:
			// Defensive: ColStore.decodeForAppend runs before appends;
			// a direct append to an encoded column decodes in place.
			c.decodeEncoded()
			continue
		}
	}
}

// appendCol appends the selected values of one batch column starting at
// row. sel == nil means the dense prefix [0, n).
func (c *column) appendCol(src colVec, sel []int, n, row int) {
	if sel == nil {
		for _, v := range src[:n] {
			c.appendValue(v, row)
			row++
		}
		return
	}
	for _, p := range sel {
		c.appendValue(src[p], row)
		row++
	}
}

// decodeRange materializes rows [lo, hi) as a column slice for a batch
// view. Generic columns return the stored vector zero-copy; typed
// columns decode into scratch (grown as needed). Returns the view and
// the (possibly grown) scratch for reuse.
func (c *column) decodeRange(lo, hi int, scratch colVec) (colVec, colVec) {
	if c.kind == colGeneric {
		return c.vals[lo:hi], scratch
	}
	n := hi - lo
	if cap(scratch) < n {
		scratch = make(colVec, n, max(n, batchSize))
	}
	out := scratch[:n]
	switch c.kind {
	case colUnset:
		for j := range out {
			out[j] = Null
		}
	case colInt:
		if c.nulls == nil {
			for j, x := range c.ints[lo:hi] {
				out[j] = Value{T: TypeInt, I: x}
			}
		} else {
			for j := 0; j < n; j++ {
				if c.isNull(lo + j) {
					out[j] = Null
				} else {
					out[j] = Value{T: TypeInt, I: c.ints[lo+j]}
				}
			}
		}
	case colFloat:
		if c.nulls == nil {
			for j, x := range c.floats[lo:hi] {
				out[j] = Value{T: TypeFloat, F: x}
			}
		} else {
			for j := 0; j < n; j++ {
				if c.isNull(lo + j) {
					out[j] = Null
				} else {
					out[j] = Value{T: TypeFloat, F: c.floats[lo+j]}
				}
			}
		}
	case colStr:
		for j := 0; j < n; j++ {
			if c.isNull(lo + j) {
				out[j] = Null
			} else {
				out[j] = Value{T: TypeText, S: c.strs[lo+j]}
			}
		}
	case colBool:
		for j := 0; j < n; j++ {
			switch {
			case c.isNull(lo + j):
				out[j] = Null
			case c.bools[lo+j]:
				out[j] = Value{T: TypeBool, I: 1}
			default:
				out[j] = Value{T: TypeBool}
			}
		}
	case colIntRLE:
		// Run walk: binary-search the first run, then advance run ends.
		ri := runSearch(c.runs, lo)
		for j := 0; j < n; j++ {
			row := lo + j
			for int(c.runs[ri].end) <= row {
				ri++
			}
			if c.nulls != nil && c.isNull(row) {
				out[j] = Null
			} else {
				out[j] = Value{T: TypeInt, I: c.runs[ri].v}
			}
		}
	case colIntDict:
		if c.nulls == nil {
			for j, code := range c.codes[lo:hi] {
				out[j] = Value{T: TypeInt, I: c.dict[code]}
			}
		} else {
			for j := 0; j < n; j++ {
				if c.isNull(lo + j) {
					out[j] = Null
				} else {
					out[j] = Value{T: TypeInt, I: c.dict[c.codes[lo+j]]}
				}
			}
		}
	case colFloatSparse:
		// Zero-fill (+0.0, matching the elided slots bit-for-bit), then
		// scatter the nonzeros of the range, then the null overlay.
		for j := range out {
			out[j] = Value{T: TypeFloat}
		}
		for si := sparseSearch(c.spos, lo); si < len(c.spos) && int(c.spos[si]) < hi; si++ {
			out[int(c.spos[si])-lo] = Value{T: TypeFloat, F: c.svals[si]}
		}
		if c.nulls != nil {
			for j := 0; j < n; j++ {
				if c.isNull(lo + j) {
					out[j] = Null
				}
			}
		}
	}
	return out, scratch
}

// reset clears the column for the next spill chunk, keeping the kind
// (columns rarely change type mid-stream) and slice capacity.
func (c *column) reset() {
	c.nulls = c.nulls[:0]
	c.ints = c.ints[:0]
	c.floats = c.floats[:0]
	c.strs = c.strs[:0]
	c.bools = c.bools[:0]
	c.vals = c.vals[:0]
	c.runs = c.runs[:0]
	c.dict = c.dict[:0]
	c.codes = c.codes[:0]
	c.spos = c.spos[:0]
	c.svals = c.svals[:0]
	c.encLen = 0
}

// colValueBytes estimates the columnar in-memory footprint of one value:
// the typed slot plus the amortized null-bitmap bit.
func colValueBytes(v Value) int64 {
	switch v.T {
	case TypeInt, TypeFloat:
		return 9
	case TypeText:
		return 17 + int64(len(v.S))
	case TypeBool:
		return 2
	}
	return 1 // NULL
}

func (cs *ColStore) ensureWidth(w int) error {
	if cs.width < 0 {
		cs.width = w
		cs.cols = make([]column, w)
		for i := range cs.cols {
			cs.cols[i].hint = cs.capHint
		}
		return nil
	}
	if cs.width != w {
		return fmt.Errorf("sqlengine: internal: appending %d columns to a %d-column store", w, cs.width)
	}
	return nil
}

// chunkThreshold bounds how many pending bytes a spilled store buffers
// before flushing the next columnar chunk. Tied to the working floor so
// the transient over-reservation matches the blocking operators' soft
// cap; 256 KiB with an unlimited budget.
func (cs *ColStore) chunkThreshold() int64 {
	if t := cs.env.workingFloor; t > 0 {
		return t
	}
	return 256 << 10
}

// reserve accounts need bytes for an append. Before the first overflow
// it reserves against the budget; on overflow it flushes the buffer as
// the first spill chunk and from then on pending-chunk bytes are
// force-reserved (bounded by chunkThreshold via maybeFlushChunk).
func (cs *ColStore) reserve(need int64) error {
	if cs.file == nil {
		if cs.env.budget.tryReserve(need) {
			return nil
		}
		if !cs.env.spillEnabled {
			return errBudget
		}
		if err := cs.startSpill(); err != nil {
			return err
		}
	}
	cs.env.budget.reserveForce(need)
	return nil
}

func (cs *ColStore) startSpill() error {
	f, err := os.CreateTemp(cs.env.spillDir, "qymera-spill-*.cols")
	if err != nil {
		return fmt.Errorf("sqlengine: creating spill file: %w", err)
	}
	cs.file = f
	cs.w = bufio.NewWriterSize(f, 1<<16)
	cs.env.spillFiles.Add(1)
	if _, err := cs.w.WriteString(colSpillMagic); err != nil {
		cs.spillErr = fmt.Errorf("sqlengine: writing spill header: %w", err)
		return cs.spillErr
	}
	return cs.flushChunk()
}

func (cs *ColStore) maybeFlushChunk() error {
	if cs.file != nil && cs.memBytes >= cs.chunkThreshold() {
		return cs.flushChunk()
	}
	return nil
}

// flushChunk writes the buffered columns to the spill file as one
// columnar chunk and releases their reservation.
func (cs *ColStore) flushChunk() error {
	if cs.spillErr != nil {
		return cs.spillErr
	}
	if cs.rows == 0 {
		return nil
	}
	n, err := writeChunk(cs.w, cs.cols, cs.rows, cs.env.storageCtrs)
	if err != nil {
		cs.spillErr = fmt.Errorf("sqlengine: writing spill chunk: %w", err)
		return cs.spillErr
	}
	cs.fileRows += int64(cs.rows)
	cs.env.spilledRows.Add(int64(cs.rows))
	cs.env.spilledBytes.Add(int64(n))
	cs.env.budget.release(cs.memBytes)
	cs.memBytes = 0
	cs.rows = 0
	for i := range cs.cols {
		cs.cols[i].reset()
	}
	return nil
}

// Append adds one row. The store takes ownership of the slice's values.
func (cs *ColStore) Append(row Row) error {
	if cs.frozen {
		return fmt.Errorf("sqlengine: internal: append to frozen column store")
	}
	if cs.spillErr != nil {
		return cs.spillErr
	}
	cs.decodeForAppend()
	if err := cs.ensureWidth(len(row)); err != nil {
		return err
	}
	var need int64
	for _, v := range row {
		need += colValueBytes(v)
	}
	if err := cs.reserve(need); err != nil {
		return err
	}
	for i := range cs.cols {
		cs.cols[i].appendValue(row[i], cs.rows)
	}
	cs.rows++
	cs.memBytes += need
	if cs.stats != nil {
		cs.stats.observeRow(row)
	}
	return cs.maybeFlushChunk()
}

// AppendBatch appends every selected row of a batch column-at-a-time:
// one budget reservation and per-column vector appends, no per-row Row
// materialization.
func (cs *ColStore) AppendBatch(b *rowBatch) error {
	if cs.frozen {
		return fmt.Errorf("sqlengine: internal: append to frozen column store")
	}
	if cs.spillErr != nil {
		return cs.spillErr
	}
	cs.decodeForAppend()
	if err := cs.ensureWidth(b.width()); err != nil {
		return err
	}
	n := b.rows()
	if n == 0 {
		return nil
	}
	var need int64
	for i := range b.cols {
		col := b.cols[i]
		if b.sel == nil {
			for _, v := range col[:b.n] {
				need += colValueBytes(v)
			}
		} else {
			for _, p := range b.sel {
				need += colValueBytes(col[p])
			}
		}
	}
	if err := cs.reserve(need); err != nil {
		return err
	}
	for i := range cs.cols {
		cs.cols[i].appendCol(b.cols[i], b.sel, b.n, cs.rows)
	}
	cs.rows += n
	cs.memBytes += need
	if cs.stats != nil {
		cs.stats.observeBatch(b)
	}
	return cs.maybeFlushChunk()
}

// Len returns the total number of rows.
func (cs *ColStore) Len() int64 { return cs.fileRows + int64(cs.rows) }

// Spilled reports whether any rows live on disk.
func (cs *ColStore) Spilled() bool { return cs.fileRows > 0 }

// Freeze transitions the store from writing to reading. A spilled store
// flushes its pending chunk, so after Freeze all rows of a spilled
// store are on disk. Idempotent; the store is marked frozen only after
// a successful flush (a failed flush poisons the store via spillErr
// instead of leaving a silently truncated stream).
func (cs *ColStore) Freeze() error {
	if cs.frozen {
		return nil
	}
	if cs.w != nil {
		if err := cs.flushChunk(); err != nil {
			return err
		}
		if err := cs.w.Flush(); err != nil {
			cs.spillErr = fmt.Errorf("sqlengine: flushing spill file: %w", err)
			return cs.spillErr
		}
	}
	cs.frozen = true
	cs.encodeColumns()
	return nil
}

// Thaw reopens a frozen store for appending. Callers must serialize
// writes (the database write lock does); scans opened before thawing
// keep their snapshot of the on-disk prefix via independent section
// readers.
func (cs *ColStore) Thaw() { cs.frozen = false }

// Release frees memory reservations and deletes any spill file. The
// store must not be used afterwards.
func (cs *ColStore) Release() {
	cs.env.budget.release(cs.memBytes)
	cs.memBytes = 0
	cs.rows = 0
	cs.cols = nil
	if cs.file != nil {
		name := cs.file.Name()
		cs.file.Close()
		os.Remove(name)
		cs.file = nil
		cs.w = nil
	}
}

func (cs *ColStore) layout() string { return LayoutColumnar }

// vectorKinds reports the per-column vector type for EXPLAIN.
func (cs *ColStore) vectorKinds() []string {
	if cs.width <= 0 {
		return nil
	}
	out := make([]string, cs.width)
	for i := range cs.cols {
		out[i] = cs.cols[i].kind.String()
	}
	return out
}

// morselCount splits a fully in-memory frozen store into fixed-size
// morsels; a spilled store reports 0 (its chunks are a sequential
// stream that cannot be range-partitioned).
func (cs *ColStore) morselCount() int {
	if cs.Spilled() {
		return 0
	}
	return (cs.rows + morselRows - 1) / morselRows
}

func (cs *ColStore) morselScanner() (morselScanner, error) {
	return cs.morselScannerCols(nil)
}

// morselScannerCols is the pruned variant: only the keep columns are
// decoded and served (nil = all).
func (cs *ColStore) morselScannerCols(keep []int) (morselScanner, error) {
	if err := cs.Freeze(); err != nil {
		return nil, err
	}
	w := len(cs.cols)
	if keep != nil {
		w = len(keep)
	}
	return &colMorselScan{cs: cs, keep: keep, scratch: make([]colVec, w), buf: &rowBatch{cols: make([]colVec, w)}}, nil
}

// colMorselScan serves one morsel at a time as column-slice batches.
type colMorselScan struct {
	cs       *ColStore
	keep     []int
	pos, end int
	buf      *rowBatch
	scratch  []colVec
}

func (s *colMorselScan) setMorsel(i int) {
	s.pos = i * morselRows
	s.end = min(s.pos+morselRows, s.cs.rows)
}

func (s *colMorselScan) NextBatch() (*rowBatch, error) {
	if s.pos >= s.end {
		return nil, nil
	}
	hi := min(s.pos+batchSize, s.end)
	serveColumns(s.cs.cols, s.keep, s.pos, hi, s.buf, s.scratch)
	s.pos = hi
	return s.buf, nil
}

// serveColumns exposes rows [lo, hi) of a column set as a batch view.
// keep, when non-nil, selects (and orders) the served column subset —
// unkept columns are never decoded.
func serveColumns(cols []column, keep []int, lo, hi int, buf *rowBatch, scratch []colVec) {
	if keep == nil {
		for i := range cols {
			buf.cols[i], scratch[i] = cols[i].decodeRange(lo, hi, scratch[i])
		}
	} else {
		for i, k := range keep {
			buf.cols[i], scratch[i] = cols[k].decodeRange(lo, hi, scratch[i])
		}
	}
	buf.n = hi - lo
	buf.sel = nil
}

// batchScan returns a batch reader over all rows: spilled chunks first
// (decoded chunk by chunk), then the in-memory tail.
func (cs *ColStore) batchScan() (storeScan, error) {
	return cs.batchScanCols(nil)
}

// batchScanCols is the pruned variant: only the keep columns are
// decoded and served (nil = all). Spilled chunks are still parsed in
// full — the on-disk format is sequential — but only kept columns are
// materialized as Values.
func (cs *ColStore) batchScanCols(keep []int) (storeScan, error) {
	if err := cs.Freeze(); err != nil {
		return nil, err
	}
	if cs.spillErr != nil {
		return nil, cs.spillErr
	}
	sc := &colScan{cs: cs, keep: keep}
	if cs.file != nil && cs.fileRows > 0 {
		info, err := cs.file.Stat()
		if err != nil {
			return nil, err
		}
		sc.r = bufio.NewReaderSize(io.NewSectionReader(cs.file, 0, info.Size()), 1<<16)
		sc.fileLeft = cs.fileRows
		// The stream is self-describing: a QYC2 magic announces the v2
		// chunk frame (zone records + length-prefixed data); its absence
		// means the legacy implicit frame.
		if hdr, err := sc.r.Peek(len(colSpillMagic)); err == nil && string(hdr) == colSpillMagic {
			sc.r.Discard(len(colSpillMagic))
			sc.v2 = true
		}
	}
	return sc, nil
}

// batchScanZone is batchScanCols plus zone-map skip-scan: morsels (in
// memory) and chunks (spilled, via the chunk zone records) that zp
// proves empty are skipped without decoding, counted into skipped and
// the process-wide storage counters.
func (cs *ColStore) batchScanZone(keep []int, zp *zonePred, skipped *atomic.Int64) (storeScan, error) {
	sc, err := cs.batchScanCols(keep)
	if err != nil {
		return nil, err
	}
	s := sc.(*colScan)
	s.zp, s.skipped = zp, skipped
	s.mskip = cs.zoneSkipper(zp)
	return s, nil
}

// colScan reads a frozen ColStore batch-at-a-time.
type colScan struct {
	cs       *ColStore
	keep     []int
	r        *bufio.Reader
	v2       bool
	fileLeft int64
	chunk    []column
	chunkLen int
	chunkPos int
	memPos   int
	buf      *rowBatch
	scratch  []colVec

	// Zone-map skip-scan (batchScanZone): zp drives spilled-chunk skips
	// against the chunk zone records; mskip is the per-morsel decision
	// for the in-memory rows (nil when unavailable); skipped counts
	// skipped units for EXPLAIN ANALYZE.
	zp      *zonePred
	mskip   func(m int) bool
	skipped *atomic.Int64
}

func (s *colScan) NextBatch() (*rowBatch, error) {
	if s.buf == nil {
		w := len(s.cs.cols)
		if s.keep != nil {
			w = len(s.keep)
		}
		s.buf = &rowBatch{cols: make([]colVec, w)}
		s.scratch = make([]colVec, w)
	}
	for {
		if s.chunkPos < s.chunkLen {
			hi := min(s.chunkPos+batchSize, s.chunkLen)
			serveColumns(s.chunk, s.keep, s.chunkPos, hi, s.buf, s.scratch)
			s.chunkPos = hi
			return s.buf, nil
		}
		if s.fileLeft > 0 {
			if s.chunk == nil {
				s.chunk = make([]column, s.cs.width)
			}
			if s.v2 {
				n, skip, err := readChunkV2(s.r, s.chunk, s.zp)
				if err != nil {
					return nil, fmt.Errorf("sqlengine: reading spill file: %w", err)
				}
				s.fileLeft -= int64(n)
				if skip {
					if s.skipped != nil {
						s.skipped.Add(1)
					}
					s.cs.env.storageCtrs.bumpChunkSkipped()
					continue
				}
				s.chunkLen, s.chunkPos = n, 0
				continue
			}
			n, err := readChunk(s.r, s.chunk)
			if err != nil {
				return nil, fmt.Errorf("sqlengine: reading spill file: %w", err)
			}
			s.chunkLen, s.chunkPos = n, 0
			s.fileLeft -= int64(n)
			continue
		}
		if s.memPos < s.cs.rows {
			// Morsel-aligned zone skip of the in-memory rows: valid only
			// when they start at table row 0 (never-spilled store —
			// zoneSkipper enforces that).
			if s.mskip != nil {
				for s.memPos < s.cs.rows && s.memPos%morselRows == 0 && s.mskip(s.memPos/morselRows) {
					s.memPos = min(s.memPos+morselRows, s.cs.rows)
					if s.skipped != nil {
						s.skipped.Add(1)
					}
					s.cs.env.storageCtrs.bumpMorselSkipped()
				}
				if s.memPos >= s.cs.rows {
					return nil, nil
				}
			}
			hi := min(s.memPos+batchSize, s.cs.rows)
			serveColumns(s.cs.cols, s.keep, s.memPos, hi, s.buf, s.scratch)
			s.memPos = hi
			return s.buf, nil
		}
		return nil, nil
	}
}

// Cursor returns the row-at-a-time gather adapter over the columnar
// data: each Next gathers one fresh Row from the current batch view.
// This is the engine's single row edge for columnar stores (ResultSet,
// driver, sort-run merging, grace-partition iteration).
func (cs *ColStore) Cursor() (rowCursor, error) {
	sc, err := cs.batchScan()
	if err != nil {
		return nil, err
	}
	return &colCursor{scan: sc, width: max(cs.width, 0)}, nil
}

type colCursor struct {
	scan  storeScan
	width int
	b     *rowBatch
	pos   int
}

func (c *colCursor) Next() (Row, bool, error) {
	for c.b == nil || c.pos >= c.b.n {
		b, err := c.scan.NextBatch()
		if err != nil {
			return nil, false, err
		}
		if b == nil {
			return nil, false, nil
		}
		c.b, c.pos = b, 0
	}
	row := make(Row, c.width)
	for i := range row {
		row[i] = c.b.cols[i][c.pos]
	}
	c.pos++
	return row, true, nil
}

// Columnar chunk encoding for spill files. The stream opens with the
// colSpillMagic version header ("QYC2"); each v2 chunk is
//
//	uvarint rows
//	uvarint zoneBytes, then per column one zone record:
//	  flags byte (1 = int bounds, 2 = float bounds, 4 = NaN seen,
//	  8 = other/mixed), uvarint nulls,
//	  [varint intMin, varint intMax], [8B fMin bits, 8B fMax bits]
//	uvarint dataBytes, then per column one column run: kind byte, then
//	  typed kinds: hasNulls byte (+ null bitmap), packed data
//	  encoded kinds: hasNulls byte (+ bitmap), the encoded payload
//	  generic: per-row tagged values (the row codec's value encoding)
//
// The zone records let a scan prove a chunk empty under its pushed
// filter and Discard dataBytes without decoding a row; the explicit
// kind tags make encoded and plain chunks self-describing. Streams
// without the magic are the legacy implicit frame (uvarint rows +
// plain column runs) and still decode. Integers and floats are packed
// as raw 8-byte little-endian words so float64 bit patterns round-trip
// exactly.

// colSpillMagic is the spill stream version header for the v2 chunk
// frame.
const colSpillMagic = "QYC2"

// zoneOfColumn computes one chunk column's zone record from its values.
func zoneOfColumn(c *column, rows int) zoneEntry {
	var z zoneEntry
	for i := 0; i < rows; i++ {
		z.observe(c.valueAt(i))
	}
	return z
}

func writeZoneRec(buf *bytes.Buffer, z zoneEntry) {
	var scratch [binary.MaxVarintLen64]byte
	var flags byte
	if z.hasInt {
		flags |= 1
	}
	if z.hasFloat {
		flags |= 2
	}
	if z.hasNaN {
		flags |= 4
	}
	if z.hasOther {
		flags |= 8
	}
	buf.WriteByte(flags)
	buf.Write(scratch[:binary.PutUvarint(scratch[:], uint64(z.nulls))])
	if z.hasInt {
		buf.Write(scratch[:binary.PutVarint(scratch[:], z.intMin)])
		buf.Write(scratch[:binary.PutVarint(scratch[:], z.intMax)])
	}
	if z.hasFloat {
		var fb [8]byte
		binary.LittleEndian.PutUint64(fb[:], math.Float64bits(z.fMin))
		buf.Write(fb[:])
		binary.LittleEndian.PutUint64(fb[:], math.Float64bits(z.fMax))
		buf.Write(fb[:])
	}
}

func readZoneRec(r *bufio.Reader, rows int) (zoneEntry, error) {
	z := zoneEntry{rows: int32(rows)}
	flags, err := r.ReadByte()
	if err != nil {
		return z, err
	}
	z.hasInt, z.hasFloat = flags&1 != 0, flags&2 != 0
	z.hasNaN, z.hasOther = flags&4 != 0, flags&8 != 0
	nulls, err := binary.ReadUvarint(r)
	if err != nil {
		return z, err
	}
	z.nulls = int32(nulls)
	if z.hasInt {
		if z.intMin, err = binary.ReadVarint(r); err != nil {
			return z, err
		}
		if z.intMax, err = binary.ReadVarint(r); err != nil {
			return z, err
		}
	}
	if z.hasFloat {
		var fb [8]byte
		if _, err := io.ReadFull(r, fb[:]); err != nil {
			return z, err
		}
		z.fMin = math.Float64frombits(binary.LittleEndian.Uint64(fb[:]))
		if _, err := io.ReadFull(r, fb[:]); err != nil {
			return z, err
		}
		z.fMax = math.Float64frombits(binary.LittleEndian.Uint64(fb[:]))
	}
	return z, nil
}

// writeChunk writes one v2 chunk: zone records, then the
// length-prefixed data block of column runs (encoded per column when
// the chunk-local decision pays off).
func writeChunk(w *bufio.Writer, cols []column, rows int, ctrs *storageCounterSet) (int, error) {
	var scratch [binary.MaxVarintLen64]byte
	total := 0
	n := binary.PutUvarint(scratch[:], uint64(rows))
	if _, err := w.Write(scratch[:n]); err != nil {
		return total, err
	}
	total += n

	var zb bytes.Buffer
	for i := range cols {
		writeZoneRec(&zb, zoneOfColumn(&cols[i], rows))
	}
	n = binary.PutUvarint(scratch[:], uint64(zb.Len()))
	if _, err := w.Write(scratch[:n]); err != nil {
		return total, err
	}
	total += n
	if _, err := w.Write(zb.Bytes()); err != nil {
		return total, err
	}
	total += zb.Len()

	var db bytes.Buffer
	dw := bufio.NewWriter(&db)
	for i := range cols {
		if _, err := writeColumnRunV2(dw, &cols[i], rows, ctrs); err != nil {
			return total, err
		}
	}
	if err := dw.Flush(); err != nil {
		return total, err
	}
	n = binary.PutUvarint(scratch[:], uint64(db.Len()))
	if _, err := w.Write(scratch[:n]); err != nil {
		return total, err
	}
	total += n
	if _, err := w.Write(db.Bytes()); err != nil {
		return total, err
	}
	total += db.Len()
	return total, nil
}

func writeColumnRun(w *bufio.Writer, c *column, rows int) (int, error) {
	total := 0
	if err := w.WriteByte(byte(c.kind)); err != nil {
		return total, err
	}
	total++
	if c.kind == colGeneric {
		for i := 0; i < rows; i++ {
			n, err := encodeValue(w, c.vals[i])
			total += n
			if err != nil {
				return total, err
			}
		}
		return total, nil
	}
	// Null bitmap.
	hasNulls := byte(0)
	if len(c.nulls) > 0 {
		hasNulls = 1
	}
	if err := w.WriteByte(hasNulls); err != nil {
		return total, err
	}
	total++
	if hasNulls == 1 {
		n, err := writeBitmap(w, rows, c.isNull)
		total += n
		if err != nil {
			return total, err
		}
	}
	var buf [8]byte
	switch c.kind {
	case colUnset:
	case colInt:
		for _, x := range c.ints[:rows] {
			binary.LittleEndian.PutUint64(buf[:], uint64(x))
			if _, err := w.Write(buf[:]); err != nil {
				return total, err
			}
			total += 8
		}
	case colFloat:
		for _, f := range c.floats[:rows] {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
			if _, err := w.Write(buf[:]); err != nil {
				return total, err
			}
			total += 8
		}
	case colStr:
		var scratch [binary.MaxVarintLen64]byte
		for _, s := range c.strs[:rows] {
			n := binary.PutUvarint(scratch[:], uint64(len(s)))
			if _, err := w.Write(scratch[:n]); err != nil {
				return total, err
			}
			total += n
			if _, err := w.WriteString(s); err != nil {
				return total, err
			}
			total += len(s)
		}
	case colBool:
		n, err := writeBitmap(w, rows, func(i int) bool { return c.bools[i] })
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func writeBitmap(w *bufio.Writer, rows int, bit func(int) bool) (int, error) {
	total := 0
	for i := 0; i < rows; i += 8 {
		var b byte
		for j := 0; j < 8 && i+j < rows; j++ {
			if bit(i + j) {
				b |= 1 << uint(j)
			}
		}
		if err := w.WriteByte(b); err != nil {
			return total, err
		}
		total++
	}
	return total, nil
}

func readBitmap(r *bufio.Reader, rows int, set func(int)) error {
	for i := 0; i < rows; i += 8 {
		b, err := r.ReadByte()
		if err != nil {
			return err
		}
		for j := 0; j < 8 && i+j < rows; j++ {
			if b&(1<<uint(j)) != 0 {
				set(i + j)
			}
		}
	}
	return nil
}

// writeColumnRunV2 writes one column run of a v2 chunk. Plain int and
// float columns get a chunk-local cheap encode decision (RLE / sparse);
// columns already encoded in memory are written in their encoded form
// directly; everything else uses the plain run format.
func writeColumnRunV2(w *bufio.Writer, c *column, rows int, ctrs *storageCounterSet) (int, error) {
	switch c.kind {
	case colInt:
		if runs := countIntRuns(c.ints[:rows]); runs*4 <= rows {
			ctrs.bumpEncodedChunkCol()
			return writeRLERun(w, c, rows, nil)
		}
	case colFloat:
		nnz := 0
		for _, f := range c.floats[:rows] {
			if math.Float64bits(f) != 0 {
				nnz++
			}
		}
		if 2*nnz <= rows && 12*nnz < 8*rows {
			ctrs.bumpEncodedChunkCol()
			return writeSparseRun(w, c, rows, nnz)
		}
	case colIntRLE:
		ctrs.bumpEncodedChunkCol()
		return writeRLERun(w, c, rows, c.runs)
	case colIntDict:
		ctrs.bumpEncodedChunkCol()
		return writeDictRun(w, c, rows)
	case colFloatSparse:
		ctrs.bumpEncodedChunkCol()
		return writeSparseRun(w, c, rows, len(c.spos))
	}
	return writeColumnRun(w, c, rows)
}

// writeRunHeader writes the shared kind + null-bitmap prefix of a
// column run.
func writeRunHeader(w *bufio.Writer, c *column, rows int, kind colKind) (int, error) {
	total := 0
	if err := w.WriteByte(byte(kind)); err != nil {
		return total, err
	}
	total++
	hasNulls := byte(0)
	if len(c.nulls) > 0 {
		hasNulls = 1
	}
	if err := w.WriteByte(hasNulls); err != nil {
		return total, err
	}
	total++
	if hasNulls == 1 {
		n, err := writeBitmap(w, rows, c.isNull)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// writeRLERun writes an RLE column run: uvarint run count, then per run
// varint value + uvarint length. runs == nil derives the runs from the
// plain int vector on the fly.
func writeRLERun(w *bufio.Writer, c *column, rows int, runs []intRun) (int, error) {
	total, err := writeRunHeader(w, c, rows, colIntRLE)
	if err != nil {
		return total, err
	}
	var scratch [binary.MaxVarintLen64]byte
	put := func(v int64, length int) error {
		n := binary.PutVarint(scratch[:], v)
		if _, err := w.Write(scratch[:n]); err != nil {
			return err
		}
		total += n
		n = binary.PutUvarint(scratch[:], uint64(length))
		_, err := w.Write(scratch[:n])
		total += n
		return err
	}
	if runs != nil {
		n := binary.PutUvarint(scratch[:], uint64(len(runs)))
		if _, err := w.Write(scratch[:n]); err != nil {
			return total, err
		}
		total += n
		prev := 0
		for _, r := range runs {
			if err := put(r.v, int(r.end)-prev); err != nil {
				return total, err
			}
			prev = int(r.end)
		}
		return total, nil
	}
	xs := c.ints[:rows]
	nruns := countIntRuns(xs)
	n := binary.PutUvarint(scratch[:], uint64(nruns))
	if _, err := w.Write(scratch[:n]); err != nil {
		return total, err
	}
	total += n
	for i := 0; i < rows; {
		j := i + 1
		for j < rows && xs[j] == xs[i] {
			j++
		}
		if err := put(xs[i], j-i); err != nil {
			return total, err
		}
		i = j
	}
	return total, nil
}

// writeDictRun writes a dictionary column run: uvarint dictionary
// length, the varint dictionary values, then one uvarint code per row.
func writeDictRun(w *bufio.Writer, c *column, rows int) (int, error) {
	total, err := writeRunHeader(w, c, rows, colIntDict)
	if err != nil {
		return total, err
	}
	var scratch [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(scratch[:], uint64(len(c.dict)))
	if _, err := w.Write(scratch[:n]); err != nil {
		return total, err
	}
	total += n
	for _, v := range c.dict {
		n := binary.PutVarint(scratch[:], v)
		if _, err := w.Write(scratch[:n]); err != nil {
			return total, err
		}
		total += n
	}
	for _, code := range c.codes[:rows] {
		n := binary.PutUvarint(scratch[:], uint64(code))
		if _, err := w.Write(scratch[:n]); err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// writeSparseRun writes a sparse float run: uvarint nonzero count, the
// ascending position deltas (prev starts at -1), then the raw float
// bit patterns.
func writeSparseRun(w *bufio.Writer, c *column, rows, nnz int) (int, error) {
	total, err := writeRunHeader(w, c, rows, colFloatSparse)
	if err != nil {
		return total, err
	}
	var scratch [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(scratch[:], uint64(nnz))
	if _, err := w.Write(scratch[:n]); err != nil {
		return total, err
	}
	total += n
	var fb [8]byte
	writeEntry := func(pos int, prev *int, f float64) error {
		n := binary.PutUvarint(scratch[:], uint64(pos-*prev))
		if _, err := w.Write(scratch[:n]); err != nil {
			return err
		}
		total += n
		*prev = pos
		binary.LittleEndian.PutUint64(fb[:], math.Float64bits(f))
		_, err := w.Write(fb[:])
		total += 8
		return err
	}
	prev := -1
	if c.kind == colFloatSparse {
		for i, p := range c.spos {
			if err := writeEntry(int(p), &prev, c.svals[i]); err != nil {
				return total, err
			}
		}
		return total, nil
	}
	for i, f := range c.floats[:rows] {
		if math.Float64bits(f) != 0 {
			if err := writeEntry(i, &prev, f); err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

// readChunkV2 decodes the next v2 chunk into cols. When zp proves the
// chunk empty from its zone records, the data block is Discarded
// undecoded and skip is returned true (rows still reports the chunk's
// row count for stream accounting).
func readChunkV2(r *bufio.Reader, cols []column, zp *zonePred) (rows int, skip bool, err error) {
	rows64, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, false, err
	}
	rows = int(rows64)
	zoneBytes, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, false, err
	}
	if zp != nil {
		zones := make([]zoneEntry, len(cols))
		for i := range cols {
			if zones[i], err = readZoneRec(r, rows); err != nil {
				return 0, false, err
			}
		}
		skip = zp.skip(func(col int) *zoneEntry {
			if col < 0 || col >= len(zones) {
				return nil
			}
			return &zones[col]
		})
	} else if _, err := r.Discard(int(zoneBytes)); err != nil {
		return 0, false, err
	}
	dataBytes, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, false, err
	}
	if skip {
		if _, err := r.Discard(int(dataBytes)); err != nil {
			return 0, false, err
		}
		return rows, true, nil
	}
	for i := range cols {
		if err := readColumnRunV2(r, &cols[i], rows); err != nil {
			return 0, false, err
		}
	}
	return rows, false, nil
}

// readColumnRunV2 decodes one v2 column run. Encoded kinds are decoded
// INTO the encoded column representation (not materialized), so the
// batch views serve spilled data operate-on-encoded too.
func readColumnRunV2(r *bufio.Reader, c *column, rows int) error {
	kb, err := r.ReadByte()
	if err != nil {
		return err
	}
	kind := colKind(kb)
	if kind > colFloatSparse {
		return fmt.Errorf("sqlengine: corrupt spill file: column kind %d", kb)
	}
	c.reset()
	c.kind = kind
	if kind == colGeneric {
		for i := 0; i < rows; i++ {
			v, err := decodeValue(r)
			if err != nil {
				return err
			}
			c.vals = append(c.vals, v)
		}
		return nil
	}
	hasNulls, err := r.ReadByte()
	if err != nil {
		return err
	}
	c.nulls = c.nulls[:0]
	if hasNulls == 1 {
		if err := readBitmap(r, rows, c.setNull); err != nil {
			return err
		}
	}
	var buf [8]byte
	switch kind {
	case colUnset:
	case colInt:
		for i := 0; i < rows; i++ {
			if _, err := io.ReadFull(r, buf[:]); err != nil {
				return err
			}
			c.ints = append(c.ints, int64(binary.LittleEndian.Uint64(buf[:])))
		}
	case colFloat:
		for i := 0; i < rows; i++ {
			if _, err := io.ReadFull(r, buf[:]); err != nil {
				return err
			}
			c.floats = append(c.floats, math.Float64frombits(binary.LittleEndian.Uint64(buf[:])))
		}
	case colStr:
		for i := 0; i < rows; i++ {
			ln, err := binary.ReadUvarint(r)
			if err != nil {
				return err
			}
			sb := make([]byte, ln)
			if _, err := io.ReadFull(r, sb); err != nil {
				return err
			}
			c.strs = append(c.strs, string(sb))
		}
	case colBool:
		c.bools = append(c.bools, make([]bool, rows)...)
		bools := c.bools[len(c.bools)-rows:]
		if err := readBitmap(r, rows, func(i int) { bools[i] = true }); err != nil {
			return err
		}
	case colIntRLE:
		nruns, err := binary.ReadUvarint(r)
		if err != nil {
			return err
		}
		if int(nruns) > rows {
			return fmt.Errorf("sqlengine: corrupt spill file: %d RLE runs for %d rows", nruns, rows)
		}
		end := 0
		for i := 0; i < int(nruns); i++ {
			v, err := binary.ReadVarint(r)
			if err != nil {
				return err
			}
			length, err := binary.ReadUvarint(r)
			if err != nil {
				return err
			}
			end += int(length)
			if end > rows {
				return fmt.Errorf("sqlengine: corrupt spill file: RLE runs exceed %d rows", rows)
			}
			c.runs = append(c.runs, intRun{v: v, end: int32(end)})
		}
		if end != rows {
			return fmt.Errorf("sqlengine: corrupt spill file: RLE runs cover %d of %d rows", end, rows)
		}
		c.encLen = rows
	case colIntDict:
		dictLen, err := binary.ReadUvarint(r)
		if err != nil {
			return err
		}
		if int(dictLen) > rows {
			return fmt.Errorf("sqlengine: corrupt spill file: dictionary of %d for %d rows", dictLen, rows)
		}
		for i := 0; i < int(dictLen); i++ {
			v, err := binary.ReadVarint(r)
			if err != nil {
				return err
			}
			c.dict = append(c.dict, v)
		}
		for i := 0; i < rows; i++ {
			code, err := binary.ReadUvarint(r)
			if err != nil {
				return err
			}
			if code >= dictLen {
				return fmt.Errorf("sqlengine: corrupt spill file: dictionary code %d of %d", code, dictLen)
			}
			c.codes = append(c.codes, uint32(code))
		}
		c.encLen = rows
	case colFloatSparse:
		nnz, err := binary.ReadUvarint(r)
		if err != nil {
			return err
		}
		if int(nnz) > rows {
			return fmt.Errorf("sqlengine: corrupt spill file: %d sparse entries for %d rows", nnz, rows)
		}
		prev := -1
		for i := 0; i < int(nnz); i++ {
			delta, err := binary.ReadUvarint(r)
			if err != nil {
				return err
			}
			pos := prev + int(delta)
			if delta == 0 || pos >= rows {
				return fmt.Errorf("sqlengine: corrupt spill file: sparse position %d of %d rows", pos, rows)
			}
			prev = pos
			c.spos = append(c.spos, int32(pos))
			if _, err := io.ReadFull(r, buf[:]); err != nil {
				return err
			}
			c.svals = append(c.svals, math.Float64frombits(binary.LittleEndian.Uint64(buf[:])))
		}
		c.encLen = rows
	}
	return nil
}

// readChunk decodes the next legacy (pre-QYC2) chunk into cols (reusing
// their slices) and returns its row count.
func readChunk(r *bufio.Reader, cols []column) (int, error) {
	rows64, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, err
	}
	rows := int(rows64)
	for i := range cols {
		if err := readColumnRun(r, &cols[i], rows); err != nil {
			return 0, err
		}
	}
	return rows, nil
}

func readColumnRun(r *bufio.Reader, c *column, rows int) error {
	kb, err := r.ReadByte()
	if err != nil {
		return err
	}
	kind := colKind(kb)
	c.reset()
	c.kind = kind
	if kind == colGeneric {
		c.vals = c.vals[:0]
		for i := 0; i < rows; i++ {
			v, err := decodeValue(r)
			if err != nil {
				return err
			}
			c.vals = append(c.vals, v)
		}
		return nil
	}
	if kind > colGeneric {
		return fmt.Errorf("sqlengine: corrupt spill file: column kind %d", kb)
	}
	hasNulls, err := r.ReadByte()
	if err != nil {
		return err
	}
	c.nulls = c.nulls[:0]
	if hasNulls == 1 {
		if err := readBitmap(r, rows, c.setNull); err != nil {
			return err
		}
	}
	var buf [8]byte
	switch kind {
	case colUnset:
	case colInt:
		for i := 0; i < rows; i++ {
			if _, err := io.ReadFull(r, buf[:]); err != nil {
				return err
			}
			c.ints = append(c.ints, int64(binary.LittleEndian.Uint64(buf[:])))
		}
	case colFloat:
		for i := 0; i < rows; i++ {
			if _, err := io.ReadFull(r, buf[:]); err != nil {
				return err
			}
			c.floats = append(c.floats, math.Float64frombits(binary.LittleEndian.Uint64(buf[:])))
		}
	case colStr:
		for i := 0; i < rows; i++ {
			ln, err := binary.ReadUvarint(r)
			if err != nil {
				return err
			}
			sb := make([]byte, ln)
			if _, err := io.ReadFull(r, sb); err != nil {
				return err
			}
			c.strs = append(c.strs, string(sb))
		}
	case colBool:
		c.bools = append(c.bools, make([]bool, rows)...)
		bools := c.bools[len(c.bools)-rows:]
		if err := readBitmap(r, rows, func(i int) { bools[i] = true }); err != nil {
			return err
		}
	}
	return nil
}
