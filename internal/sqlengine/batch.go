package sqlengine

// Vectorized batch execution. Operators exchange rowBatch values —
// column-major slices of Value plus a selection vector — instead of one
// Row per Next call. A batch is owned by the iterator that produced it
// and is valid only until the next NextBatch call; consumers that need
// data beyond that must copy (materializeRow). Filters narrow the
// selection vector in place (zero-copy), projections alias expression
// result columns, and only the blocking operators (join, aggregate,
// sort) and the final result surface gather batches back into rows.

// batchSize is the target number of rows per batch. 1024 keeps a batch
// of a few columns inside the L2 cache while amortizing per-batch
// dispatch to a negligible cost per row.
const batchSize = 1024

// BatchSize is the engine's rows-per-batch target, exported for
// benchmark reporting.
const BatchSize = batchSize

// rowBatch is a column-major block of rows.
//
// cols holds one []Value per output column; all columns share the same
// physical length n. sel, when non-nil, lists the physical row positions
// that are logically present, in order; nil means all of [0, n).
// Expression evaluation and row gathering index columns by physical
// position, so filtering is a selection-vector rewrite with no data
// movement.
type rowBatch struct {
	cols []colVec
	n    int
	sel  []int

	idsel []int // cached identity selection, grown lazily
}

// colVec is one column of a batch.
type colVec []Value

// newRowBatch allocates a batch with the given column count and capacity
// for batchSize rows.
func newRowBatch(width int) *rowBatch {
	b := &rowBatch{cols: make([]colVec, width)}
	for i := range b.cols {
		b.cols[i] = make(colVec, 0, batchSize)
	}
	return b
}

// reset clears the batch for refilling while keeping column capacity.
func (b *rowBatch) reset() {
	for i := range b.cols {
		b.cols[i] = b.cols[i][:0]
	}
	b.n = 0
	b.sel = nil
}

// width returns the number of columns.
func (b *rowBatch) width() int { return len(b.cols) }

// rows returns the logical (selected) row count.
func (b *rowBatch) rows() int {
	if b.sel != nil {
		return len(b.sel)
	}
	return b.n
}

// full reports whether the batch reached the target size.
func (b *rowBatch) full() bool { return b.n >= batchSize }

// appendRow copies one row into the batch. The row width must match the
// batch width.
func (b *rowBatch) appendRow(r Row) {
	for i := range b.cols {
		b.cols[i] = append(b.cols[i], r[i])
	}
	b.n++
}

// selection returns the active selection vector, materializing the
// identity selection when all rows are selected.
func (b *rowBatch) selection() []int {
	if b.sel != nil {
		return b.sel
	}
	if cap(b.idsel) < b.n {
		b.idsel = make([]int, 0, batchSize)
		for i := 0; i < cap(b.idsel); i++ {
			b.idsel = append(b.idsel, i)
		}
	}
	for len(b.idsel) < b.n {
		b.idsel = append(b.idsel, len(b.idsel))
	}
	return b.idsel[:b.n]
}

// gather copies the values at physical position pos into buf, which must
// have the batch's width.
func (b *rowBatch) gather(pos int, buf Row) {
	for i := range b.cols {
		buf[i] = b.cols[i][pos]
	}
}

// materializeRow allocates a fresh Row holding the values at physical
// position pos. Use it when a row must outlive the batch.
func (b *rowBatch) materializeRow(pos int) Row {
	out := make(Row, len(b.cols))
	b.gather(pos, out)
	return out
}

// batchIter is the vectorized iterator contract. NextBatch returns the
// next batch, or (nil, nil) at the end of the stream; the returned batch
// is only valid until the following NextBatch call. Close must be
// idempotent and release all resources (spill files, budget
// reservations) even when the stream has not been drained.
type batchIter interface {
	NextBatch() (*rowBatch, error)
	Close()
}

// batchAppender accumulates rows into a reusable column-major scratch
// batch and flushes it to a table store in batchSize chunks, so
// blocking operators that produce output row-at-a-time (hash
// aggregation emit loops) still cross the materialize boundary as
// column vectors with no per-row allocation. Callers may reuse the same
// Row buffer across appendRow calls: values are copied immediately.
type batchAppender struct {
	store tableStore
	buf   *rowBatch
}

func newBatchAppender(store tableStore, width int) *batchAppender {
	return &batchAppender{store: store, buf: newRowBatch(width)}
}

func (a *batchAppender) appendRow(r Row) error {
	a.buf.appendRow(r)
	if a.buf.full() {
		return a.flush()
	}
	return nil
}

// flush pushes buffered rows to the store; call once more at the end.
func (a *batchAppender) flush() error {
	if a.buf.n == 0 {
		return nil
	}
	err := a.store.AppendBatch(a.buf)
	a.buf.reset()
	return err
}

// rowAdapter adapts a row-at-a-time iterator to the batch contract. It
// is the engine's one remaining row-oriented internal adapter, kept for
// the external sort's output (sorted buffers and run merges produce
// rows; see sort.go) — every other operator boundary exchanges batches
// or appends them straight into column vectors.
type rowAdapter struct {
	src   rowIter
	buf   *rowBatch
	width int
	done  bool
}

func newRowAdapter(src rowIter, width int) *rowAdapter {
	return &rowAdapter{src: src, width: width}
}

func (a *rowAdapter) NextBatch() (*rowBatch, error) {
	if a.done {
		return nil, nil
	}
	if a.buf == nil {
		a.buf = newRowBatch(a.width)
	}
	a.buf.reset()
	for !a.buf.full() {
		row, ok, err := a.src.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			a.done = true
			break
		}
		a.buf.appendRow(row)
	}
	if a.buf.n == 0 {
		return nil, nil
	}
	return a.buf, nil
}

func (a *rowAdapter) Close() { a.src.Close() }
