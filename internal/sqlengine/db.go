package sqlengine

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"

	"qymera/internal/obs"
)

// Config controls an engine instance.
type Config struct {
	// MemoryBudget caps the estimated bytes of row data the engine holds
	// in memory at once (tables, hash tables, sort buffers). Zero or
	// negative means unlimited.
	MemoryBudget int64
	// SpillDir is where temporary spill files are created. Empty uses
	// the OS temp directory.
	SpillDir string
	// DisableSpill turns off out-of-core execution; statements that
	// exceed the budget fail with a budget error instead of spilling.
	DisableSpill bool
	// Parallelism is the number of worker goroutines for morsel-driven
	// parallel execution (scans, filters, projections, hash-join probe,
	// hash aggregation). Zero or negative derives the count from
	// GOMAXPROCS; 1 pins execution to a single worker. Results are
	// bitwise independent of the setting: morsel boundaries and merge
	// order are fixed by the data, not by the scheduling.
	Parallelism int
	// Layout selects the table storage format: "columnar" (the default;
	// typed column vectors with null bitmaps, see colstore.go) or "row"
	// (the legacy row-major store, kept for differential testing).
	// Results are bitwise independent of the layout.
	Layout string
	// Budget, when non-nil, is a pre-built (possibly shared) memory
	// accountant that overrides MemoryBudget. A simulation service hands
	// every per-request engine instance the same *MemBudget so that
	// concurrent queries compete for one global pool; Close does not
	// reset a shared budget (each store releases its own reservations).
	Budget *MemBudget
	// Optimizer controls the cost-based query optimizer: "" or "on"
	// (the default) enables the logical rewrite rules and cost-based
	// physical planning (optimize.go); "off" lowers the AST directly,
	// reproducing the legacy planner. Simulated amplitudes are bitwise
	// independent of the setting (see the bit-neutrality contract in
	// optimize.go).
	Optimizer string
	// Kernels controls the compiled kernel tier: "" or "on" (the
	// default) lowers plans matching the translated gate-stage shape
	// into fused, monomorphized loops over the typed column vectors;
	// "off" always runs the batch interpreter. Simulated amplitudes are
	// bitwise independent of the setting (see the determinism contract
	// in kernel.go).
	Kernels string
	// KernelCache, when non-nil, is a pre-built (possibly shared)
	// compiled-program cache for the kernel tier. A simulation plan
	// cache hands every rebound engine instance the same *KernelCache
	// so a parameter sweep compiles each stage shape once.
	KernelCache *KernelCache
	// Fusion controls whole-circuit chain fusion on top of the kernel
	// tier: "" or "on" (the default) detects runs of consecutive
	// translated gate-stage CTEs and executes them as one multi-stage
	// fused pass, double-buffering the intermediate amplitudes in
	// memory and materializing only the final stage's store; "off"
	// keeps stage-at-a-time execution. Requires Kernels and the
	// optimizer; it declines (with a distinct fallback counter) under a
	// bounded memory budget. Simulated amplitudes are bitwise
	// independent of the setting (see the determinism contract in
	// kernel_chain.go).
	Fusion string
	// Encodings controls the sparsity-first storage tier: "" or "on"
	// (the default) enables compressed column encodings (RLE /
	// dictionary / sparse, selected per column from the table statistics
	// at materialization) and zone-map skip-scan over pushed-down scan
	// filters; "off" keeps every column a plain typed vector and decodes
	// every morsel. Simulated amplitudes are bitwise independent of the
	// setting (see the exactness contract in encoding.go and the
	// soundness contract in zonemap.go).
	Encodings string
	// Tracing controls per-operator span instrumentation: "" or "on"
	// (the default) instruments statements whose context carries an
	// obs span (untraced statements pay one nil check), "off" ignores
	// spans entirely — the bench baseline with zero obs code active.
	// Amplitudes are bitwise independent of the setting: instrumentation
	// only reads batches as they stream by (see trace_exec.go).
	Tracing string
}

// TableMeta describes one base table.
type TableMeta struct {
	Name  string
	Cols  []ColumnDef
	store tableStore
}

// Stats is a snapshot of engine counters, used by the benchmarking
// harness to report memory and spill behaviour.
type Stats struct {
	LiveBytes    int64 // current estimated bytes under budget
	PeakBytes    int64 // high-water mark of budgeted bytes
	SpilledRows  int64 // rows written to spill files
	SpilledBytes int64 // bytes written to spill files
	SpillFiles   int64 // spill files created
}

// DB is an embedded database instance. It is safe for concurrent use;
// writes take an exclusive lock.
type DB struct {
	mu     sync.RWMutex
	env    *storageEnv
	tables map[string]*TableMeta
	closed bool
}

// Open creates a new empty database.
func Open(cfg Config) (*DB, error) {
	if cfg.SpillDir != "" {
		if err := os.MkdirAll(cfg.SpillDir, 0o755); err != nil {
			return nil, fmt.Errorf("sqlengine: creating spill dir: %w", err)
		}
	}
	budget := cfg.Budget
	if budget == nil {
		budget = newMemBudget(cfg.MemoryBudget)
	}
	var floor int64
	if budget.limit > 0 {
		floor = budget.limit / 4
		if floor < 8*1024 {
			floor = 8 * 1024
		}
	}
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rowLayout := false
	switch cfg.Layout {
	case "", LayoutColumnar:
	case LayoutRow:
		rowLayout = true
	default:
		return nil, fmt.Errorf("sqlengine: unknown storage layout %q (want %q or %q)", cfg.Layout, LayoutColumnar, LayoutRow)
	}
	optimizer := true
	switch cfg.Optimizer {
	case "", "on":
	case "off":
		optimizer = false
	default:
		return nil, fmt.Errorf("sqlengine: unknown optimizer setting %q (want \"on\" or \"off\")", cfg.Optimizer)
	}
	kernels := true
	switch cfg.Kernels {
	case "", "on":
	case "off":
		kernels = false
	default:
		return nil, fmt.Errorf("sqlengine: unknown kernels setting %q (want \"on\" or \"off\")", cfg.Kernels)
	}
	kernelCache := cfg.KernelCache
	if kernelCache == nil {
		kernelCache = NewKernelCache(0)
	}
	fusion := true
	switch cfg.Fusion {
	case "", "on":
	case "off":
		fusion = false
	default:
		return nil, fmt.Errorf("sqlengine: unknown fusion setting %q (want \"on\" or \"off\")", cfg.Fusion)
	}
	encodings := true
	switch cfg.Encodings {
	case "", "on":
	case "off":
		encodings = false
	default:
		return nil, fmt.Errorf("sqlengine: unknown encodings setting %q (want \"on\" or \"off\")", cfg.Encodings)
	}
	tracing := true
	switch cfg.Tracing {
	case "", "on":
	case "off":
		tracing = false
	default:
		return nil, fmt.Errorf("sqlengine: unknown tracing setting %q (want \"on\" or \"off\")", cfg.Tracing)
	}
	env := &storageEnv{
		budget:       budget,
		spillDir:     cfg.SpillDir,
		spillEnabled: !cfg.DisableSpill,
		workingFloor: floor,
		workers:      workers,
		rowLayout:    rowLayout,
		optimizer:    optimizer,
		kernels:      kernels,
		kernelCache:  kernelCache,
		fusion:       fusion,
		encodings:    encodings,
		tracing:      tracing,
		kernelCtrs:   &kernelCounterSet{},
		storageCtrs:  &storageCounterSet{},
	}
	return &DB{env: env, tables: map[string]*TableMeta{}}, nil
}

// KernelCounters snapshots this engine instance's own kernel-tier
// counters — the same keys as the package-level KernelCounters(), but
// scoped to this DB so concurrent engines (interleaved benchmark
// samples, parallel tests) cannot contaminate the reading.
func (db *DB) KernelCounters() map[string]int64 {
	return db.env.kernelCtrs.snapshot()
}

// StorageCounters snapshots this engine instance's own sparsity-storage
// counters — the same keys as the package-level StorageCounters(), but
// scoped to this DB.
func (db *DB) StorageCounters() map[string]int64 {
	return db.env.storageCtrs.snapshot()
}

// Close releases all tables and spill files.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	for _, t := range db.tables {
		t.store.Release()
	}
	db.tables = nil
	return nil
}

// Stats returns a snapshot of engine counters.
func (db *DB) Stats() Stats {
	return Stats{
		LiveBytes:    db.env.budget.used.Load(),
		PeakBytes:    db.env.budget.peak.Load(),
		SpilledRows:  db.env.spilledRows.Load(),
		SpilledBytes: db.env.spilledBytes.Load(),
		SpillFiles:   db.env.spillFiles.Load(),
	}
}

// ResetPeak zeroes the peak-memory high-water mark (between benchmark
// phases).
func (db *DB) ResetPeak() { db.env.budget.peak.Store(db.env.budget.used.Load()) }

func (db *DB) lookupTable(name string) *TableMeta {
	return db.tables[strings.ToLower(name)]
}

// Tables lists the table names in the catalog.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		out = append(out, t.Name)
	}
	return out
}

// ResultSet holds a fully materialized query result. Always Close it:
// large results may be backed by spill files. Row access goes through
// the store's cursor — the thin gather adapter at the engine's
// row-oriented edge.
type ResultSet struct {
	Columns []string
	store   tableStore
	it      rowCursor
}

// Next returns the next row, or ok=false at the end.
func (rs *ResultSet) Next() (Row, bool, error) {
	if rs.it == nil {
		var err error
		rs.it, err = rs.store.Cursor()
		if err != nil {
			return nil, false, err
		}
	}
	return rs.it.Next()
}

// Len returns the number of rows in the result.
func (rs *ResultSet) Len() int64 { return rs.store.Len() }

// All drains the result into a slice (convenience for tests and small
// results).
func (rs *ResultSet) All() ([]Row, error) {
	var out []Row
	for {
		row, ok, err := rs.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, row)
	}
}

// Close releases the backing store.
func (rs *ResultSet) Close() {
	if rs.store != nil {
		rs.store.Release()
		rs.store = nil
	}
}

// Query parses and executes a SELECT, returning a materialized result.
func (db *DB) Query(sqlText string, params ...Value) (*ResultSet, error) {
	return db.QueryContext(context.Background(), sqlText, params...)
}

// QueryContext is Query with cancellation: when ctx is cancelled the
// statement aborts at the next batch/morsel boundary, releases every
// budget reservation and spill file, and returns an error wrapping
// ctx.Err().
func (db *DB) QueryContext(ctx context.Context, sqlText string, params ...Value) (*ResultSet, error) {
	stmt, nparams, err := ParseStatement(sqlText)
	if err != nil {
		return nil, err
	}
	if nparams > len(params) {
		return nil, fmt.Errorf("sqlengine: statement needs %d parameters, got %d", nparams, len(params))
	}
	if ex, isExplain := stmt.(*ExplainStmt); isExplain {
		return db.runExplainStmt(ctx, ex, params)
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqlengine: Query requires a SELECT statement")
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, fmt.Errorf("sqlengine: database is closed")
	}
	return db.runSelect(ctx, sel, params)
}

// newExecCtx builds the per-statement execution context. A tracing
// span riding the context (obs.WithSpan) turns on per-operator
// instrumentation for the statement; an untraced context costs one
// nil check here and nothing downstream.
func (db *DB) newExecCtx(ctx context.Context, params []Value) *execCtx {
	ec := &execCtx{env: db.env, params: params, workers: db.env.workers, ctx: ctx}
	if db.env.tracing {
		if sp := obs.SpanFromContext(ctx); sp != nil {
			ec.span = sp
			ec.sampleEvery = sp.SampleEvery()
		}
	}
	return ec
}

func (db *DB) runSelect(stmtCtx context.Context, sel *SelectStmt, params []Value) (*ResultSet, error) {
	return db.runSelectCollect(stmtCtx, sel, params, false)
}

// runSelectCollect is runSelect with optional statistics collection on
// the result store: CTAS materialization passes collect=true so the
// created table starts with exact incremental statistics (see
// stats.go) — no per-stage ANALYZE rescan needed. Only the final
// result store collects; intermediate stores (CTE materialization
// inside buildPlan, join internals) do not.
func (db *DB) runSelectCollect(stmtCtx context.Context, sel *SelectStmt, params []Value, collect bool) (*ResultSet, error) {
	ctx := db.newExecCtx(stmtCtx, params)
	// All span calls below are nil no-ops when the statement is
	// untraced (ctx.span == nil).
	stmt := ctx.span.Child("select")
	ctx.span = stmt
	defer stmt.End()
	plan := stmt.Child("plan")
	node, names, p, err := db.buildPlan(ctx, sel, false)
	plan.End()
	if err != nil {
		return nil, err
	}
	defer p.release()
	if stmt != nil {
		node = instrumentPlan(node, ctx.sampleEvery)
	}
	base := ctx.markSpill()
	store, err := materializePlanCollect(ctx, node, collect)
	if err != nil {
		return nil, err
	}
	ctx.finishStatementSpan(node, store.Len(), base)
	return &ResultSet{Columns: names, store: store}, nil
}

// Exec parses and executes any statement. For DML it returns the number
// of affected rows; for SELECT it returns the row count.
func (db *DB) Exec(sqlText string, params ...Value) (int64, error) {
	return db.ExecContext(context.Background(), sqlText, params...)
}

// ExecContext is Exec with cancellation (see QueryContext).
func (db *DB) ExecContext(ctx context.Context, sqlText string, params ...Value) (int64, error) {
	stmt, nparams, err := ParseStatement(sqlText)
	if err != nil {
		return 0, err
	}
	if nparams > len(params) {
		return 0, fmt.Errorf("sqlengine: statement needs %d parameters, got %d", nparams, len(params))
	}
	return db.execStmt(ctx, stmt, params)
}

// ExecScript runs a semicolon-separated script, stopping at the first
// error.
func (db *DB) ExecScript(script string) error {
	return db.ExecScriptContext(context.Background(), script)
}

// ExecScriptContext is ExecScript with cancellation: the script stops
// before the next statement (and mid-statement at the next batch
// boundary) once ctx is cancelled.
func (db *DB) ExecScriptContext(ctx context.Context, script string) error {
	stmts, err := ParseScript(script)
	if err != nil {
		return err
	}
	for _, stmt := range stmts {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("sqlengine: script cancelled: %w", err)
		}
		if _, err := db.execStmt(ctx, stmt, nil); err != nil {
			return err
		}
	}
	return nil
}

func (db *DB) execStmt(ctx context.Context, stmt Statement, params []Value) (int64, error) {
	switch s := stmt.(type) {
	case *SelectStmt:
		rs, err := func() (*ResultSet, error) {
			db.mu.RLock()
			defer db.mu.RUnlock()
			if db.closed {
				return nil, fmt.Errorf("sqlengine: database is closed")
			}
			return db.runSelect(ctx, s, params)
		}()
		if err != nil {
			return 0, err
		}
		n := rs.Len()
		rs.Close()
		return n, nil
	case *CreateTableStmt:
		db.mu.Lock()
		defer db.mu.Unlock()
		return db.execCreate(ctx, s, params)
	case *DropTableStmt:
		db.mu.Lock()
		defer db.mu.Unlock()
		return db.execDrop(s)
	case *InsertStmt:
		db.mu.Lock()
		defer db.mu.Unlock()
		return db.execInsert(ctx, s, params)
	case *DeleteStmt:
		db.mu.Lock()
		defer db.mu.Unlock()
		return db.execDelete(ctx, s, params)
	case *UpdateStmt:
		db.mu.Lock()
		defer db.mu.Unlock()
		return db.execUpdate(ctx, s, params)
	case *AnalyzeStmt:
		db.mu.Lock()
		defer db.mu.Unlock()
		return db.execAnalyze(s)
	case *ExplainStmt:
		rs, err := db.runExplainStmt(ctx, s, params)
		if err != nil {
			return 0, err
		}
		n := rs.Len()
		rs.Close()
		return n, nil
	}
	return 0, fmt.Errorf("sqlengine: unsupported statement %T", stmt)
}

func (db *DB) execCreate(ctx context.Context, s *CreateTableStmt, params []Value) (int64, error) {
	if db.closed {
		return 0, fmt.Errorf("sqlengine: database is closed")
	}
	key := strings.ToLower(s.Name)
	if _, exists := db.tables[key]; exists {
		if s.IfNotExists {
			return 0, nil
		}
		return 0, fmt.Errorf("sqlengine: table %s already exists", s.Name)
	}
	if s.AsSelect != nil {
		// The materialization collects statistics incrementally into the
		// result store, so the created table's statistics are exact from
		// the start and the translator's ANALYZE hits the fast no-rescan
		// path (chained stage tables get stats without a round-trip).
		rs, err := db.runSelectCollect(ctx, s.AsSelect, params, true)
		if err != nil {
			return 0, err
		}
		cols := make([]ColumnDef, len(rs.Columns))
		for i, c := range rs.Columns {
			cols[i] = ColumnDef{Name: c, Type: TypeNull} // dynamic typing
		}
		db.tables[key] = &TableMeta{Name: s.Name, Cols: cols, store: rs.store}
		rs.store.Thaw()
		return rs.store.Len(), nil
	}
	seen := map[string]bool{}
	for _, c := range s.Cols {
		lc := strings.ToLower(c.Name)
		if seen[lc] {
			return 0, fmt.Errorf("sqlengine: duplicate column %s", c.Name)
		}
		seen[lc] = true
	}
	store := db.env.newStore()
	// Base tables collect statistics incrementally from the first append
	// (see stats.go); CTAS results arrive with statistics already
	// collected during materialization (above).
	attachStats(store)
	db.tables[key] = &TableMeta{Name: s.Name, Cols: s.Cols, store: store}
	return 0, nil
}

func (db *DB) execDrop(s *DropTableStmt) (int64, error) {
	key := strings.ToLower(s.Name)
	t, ok := db.tables[key]
	if !ok {
		if s.IfExists {
			return 0, nil
		}
		return 0, fmt.Errorf("sqlengine: no such table: %s", s.Name)
	}
	t.store.Release()
	delete(db.tables, key)
	return 0, nil
}

// resolveInsertColumns maps the INSERT column list to table slots.
func resolveInsertColumns(meta *TableMeta, cols []string) ([]int, error) {
	if len(cols) == 0 {
		idx := make([]int, len(meta.Cols))
		for i := range idx {
			idx[i] = i
		}
		return idx, nil
	}
	idx := make([]int, len(cols))
	for i, c := range cols {
		found := -1
		for j, mc := range meta.Cols {
			if strings.EqualFold(mc.Name, c) {
				found = j
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("sqlengine: table %s has no column %s", meta.Name, c)
		}
		idx[i] = found
	}
	return idx, nil
}

func (db *DB) execInsert(ctx context.Context, s *InsertStmt, params []Value) (int64, error) {
	meta := db.lookupTable(s.Table)
	if meta == nil {
		return 0, fmt.Errorf("sqlengine: no such table: %s", s.Table)
	}
	slots, err := resolveInsertColumns(meta, s.Cols)
	if err != nil {
		return 0, err
	}

	buildRow := func(vals []Value) (Row, error) {
		if len(vals) != len(slots) {
			return nil, fmt.Errorf("sqlengine: INSERT has %d values for %d columns", len(vals), len(slots))
		}
		row := make(Row, len(meta.Cols))
		for i := range row {
			row[i] = Null
		}
		for i, v := range vals {
			slot := slots[i]
			row[slot] = applyAffinity(v, meta.Cols[slot].Type)
		}
		return row, nil
	}

	var count int64
	if s.Select != nil {
		return db.insertSelect(ctx, meta, s.Select, slots, params)
	}

	cctx := &compileCtx{resolver: planSchema(nil), params: params}
	meta.store.Thaw()
	for _, exprRow := range s.Rows {
		vals := make([]Value, len(exprRow))
		for i, e := range exprRow {
			c, err := compileExpr(e, cctx)
			if err != nil {
				return count, err
			}
			v, err := c(nil)
			if err != nil {
				return count, err
			}
			vals[i] = v
		}
		out, err := buildRow(vals)
		if err != nil {
			return count, err
		}
		if err := meta.store.Append(out); err != nil {
			return count, err
		}
		count++
	}
	return count, nil
}

// insertSelect appends a materialized SELECT result batch-at-a-time:
// source columns are permuted into table slots (with column affinity
// applied vectorized) and handed to the store as whole column vectors —
// no per-row materialization.
func (db *DB) insertSelect(ctx context.Context, meta *TableMeta, sel *SelectStmt, slots []int, params []Value) (int64, error) {
	rs, err := db.runSelect(ctx, sel, params)
	if err != nil {
		return 0, err
	}
	defer rs.Close()
	if len(rs.Columns) != len(slots) {
		return 0, fmt.Errorf("sqlengine: INSERT has %d values for %d columns", len(rs.Columns), len(slots))
	}
	scan, err := rs.store.batchScan()
	if err != nil {
		return 0, err
	}
	meta.store.Thaw()
	out := &rowBatch{cols: make([]colVec, len(meta.Cols))}
	affBuf := make([]colVec, len(slots))
	var nullCol colVec
	var count int64
	for {
		if err := ctx.Err(); err != nil {
			return count, fmt.Errorf("sqlengine: statement cancelled: %w", err)
		}
		b, err := scan.NextBatch()
		if err != nil {
			return count, err
		}
		if b == nil {
			return count, nil
		}
		n := b.n // store scans are dense (no selection vector)
		nullCol = growCol(nullCol, n)
		for k := range nullCol[:n] {
			nullCol[k] = Null
		}
		for j := range out.cols {
			out.cols[j] = nullCol[:n]
		}
		for i, slot := range slots {
			src := b.cols[i][:n]
			if t := meta.Cols[slot].Type; t != TypeNull {
				buf := growCol(affBuf[i], n)
				for k, v := range src {
					buf[k] = applyAffinity(v, t)
				}
				affBuf[i], src = buf, buf
			}
			out.cols[slot] = src
		}
		out.n, out.sel = n, nil
		if err := meta.store.AppendBatch(out); err != nil {
			return count, err
		}
		count += int64(n)
	}
}

// rewriteTable filters/transforms every row of a table into a fresh
// store, swapping on success. Used by DELETE and UPDATE. Cancellation
// is checked once per batchSize rows.
func (db *DB) rewriteTable(ctx context.Context, meta *TableMeta, transform func(Row) (Row, bool, error)) (int64, error) {
	newStore := db.env.newStore()
	// The rewrite re-feeds every surviving row through a fresh
	// collector, so statistics stay exact across DELETE/UPDATE.
	attachStats(newStore)
	it, err := meta.store.Cursor()
	if err != nil {
		newStore.Release()
		return 0, err
	}
	var changed, seen int64
	for {
		if seen%batchSize == 0 {
			if err := ctx.Err(); err != nil {
				newStore.Release()
				return 0, fmt.Errorf("sqlengine: statement cancelled: %w", err)
			}
		}
		seen++
		row, ok, err := it.Next()
		if err != nil {
			newStore.Release()
			return 0, err
		}
		if !ok {
			break
		}
		out, didChange, err := transform(row)
		if err != nil {
			newStore.Release()
			return 0, err
		}
		if didChange {
			changed++
		}
		if out != nil {
			if err := newStore.Append(out); err != nil {
				newStore.Release()
				return 0, err
			}
		}
	}
	meta.store.Release()
	meta.store = newStore
	return changed, nil
}

func (db *DB) execDelete(ctx context.Context, s *DeleteStmt, params []Value) (int64, error) {
	meta := db.lookupTable(s.Table)
	if meta == nil {
		return 0, fmt.Errorf("sqlengine: no such table: %s", s.Table)
	}
	schema := make(planSchema, len(meta.Cols))
	for i, c := range meta.Cols {
		schema[i] = planCol{table: strings.ToLower(meta.Name), name: strings.ToLower(c.Name)}
	}
	var pred compiledExpr
	if s.Where != nil {
		var err error
		pred, err = compileExpr(s.Where, &compileCtx{resolver: schema, params: params})
		if err != nil {
			return 0, err
		}
	}
	return db.rewriteTable(ctx, meta, func(row Row) (Row, bool, error) {
		if pred == nil {
			return nil, true, nil // delete all
		}
		v, err := pred(row)
		if err != nil {
			return nil, false, err
		}
		if b, known := v.Bool(); known && b {
			return nil, true, nil
		}
		return row, false, nil
	})
}

func (db *DB) execUpdate(ctx context.Context, s *UpdateStmt, params []Value) (int64, error) {
	meta := db.lookupTable(s.Table)
	if meta == nil {
		return 0, fmt.Errorf("sqlengine: no such table: %s", s.Table)
	}
	schema := make(planSchema, len(meta.Cols))
	for i, c := range meta.Cols {
		schema[i] = planCol{table: strings.ToLower(meta.Name), name: strings.ToLower(c.Name)}
	}
	cctx := &compileCtx{resolver: schema, params: params}
	slots := make([]int, len(s.Cols))
	exprs := make([]compiledExpr, len(s.Cols))
	for i, c := range s.Cols {
		idx, err := schema.resolveColumn("", c)
		if err != nil {
			return 0, err
		}
		slots[i] = idx
		ce, err := compileExpr(s.Exprs[i], cctx)
		if err != nil {
			return 0, err
		}
		exprs[i] = ce
	}
	var pred compiledExpr
	if s.Where != nil {
		var err error
		pred, err = compileExpr(s.Where, cctx)
		if err != nil {
			return 0, err
		}
	}
	return db.rewriteTable(ctx, meta, func(row Row) (Row, bool, error) {
		if pred != nil {
			v, err := pred(row)
			if err != nil {
				return nil, false, err
			}
			if b, known := v.Bool(); !known || !b {
				return row, false, nil
			}
		}
		out := cloneRow(row)
		for i, slot := range slots {
			v, err := exprs[i](row)
			if err != nil {
				return nil, false, err
			}
			out[slot] = applyAffinity(v, meta.Cols[slot].Type)
		}
		return out, true, nil
	})
}
