package sqlengine

import (
	"sync"
	"sync/atomic"
	"time"
)

// Kernel tier: compiled execution of the translated gate-stage shape.
//
// A translated gate stage is always the same plan:
//
//	Project  #grp.g0, #agg.a0, #agg.a1
//	  [Filter ((#agg.a0*#agg.a0) + (#agg.a1*#agg.a1)) > eps²]   (pruning)
//	    HashAggregate keys=[outExpr] aggs=[SUM(±prod), SUM(±prod)]
//	      HashJoin (INNER) on inExpr = h.in_s
//	        BatchScan state          BatchScan gate
//
// where inExpr/outExpr are pure bit-mask arithmetic over the amplitude
// index (core/mask.go semantics) and the SUM arguments are the complex
// multiply-accumulate products. Interpreting that plan pays per-batch
// operator dispatch, Value boxing, and generic hash-table probes on
// every one of the thousands of identical stages a parameter sweep
// executes. The kernel tier pattern-matches the shape once
// (kernel_lower.go), compiles it into closures over the typed ColStore
// vectors, and runs a single fused loop (kernel_gate.go): direct int64
// index arithmetic replaces the join (the gate side becomes a tiny
// bucket table in gate-row order, exactly the hash join's build order),
// and a pre-sized dense or hashed accumulator replaces the aggregation
// hash table.
//
// Determinism contract: the kernel reproduces the interpreted engine
// bit for bit. Group emission order, floating-point evaluation order
// (one rounding per multiply, subtract/add, and accumulate — explicit
// float64 conversions forbid FMA contraction), the morsel partition
// and merge schedule of parallel_agg.go, and the HAVING comparison are
// all replicated exactly. Anything the matcher cannot prove falls back
// to the batch executor untouched; kernelCounters records why.

// aggPartitionsKernel mirrors parallel_agg.go's partition fanout: the
// kernel's parallel mode must merge per-morsel partials through the
// same partition-major schedule to emit groups in the same order.
const aggPartitionsKernel = aggPartitions

// kernelCounterSet is one scope of kernel-tier counters. Two scopes
// exist: the process-wide aggregate (kernelCounters, what /metrics and
// the package-level KernelCounters() report) and one per engine
// instance (storageEnv.kernelCtrs, read through DB.KernelCounters) so
// interleaved benchmark samples and parallel tests no longer
// cross-contaminate each other's readings. Every increment goes to
// both.
type kernelCounterSet struct {
	compiles   atomic.Int64
	cacheHits  atomic.Int64
	executions atomic.Int64
	fallbacks  atomic.Int64
	// chain counters: whole-circuit fused executions, the stages they
	// covered, and the intermediate stage tables they elided (see
	// kernel_chain.go).
	chainExecutions atomic.Int64
	chainStages     atomic.Int64
	chainElided     atomic.Int64
	// outputExecutions counts compiled output-layer aggregations
	// (kernel_output.go); each also counts under executions.
	outputExecutions atomic.Int64
	mu               sync.Mutex
	reasons          map[string]int64
}

func (k *kernelCounterSet) fallback(reason string) {
	k.fallbacks.Add(1)
	k.mu.Lock()
	if k.reasons == nil {
		k.reasons = map[string]int64{}
	}
	k.reasons[reason]++
	k.mu.Unlock()
}

func (k *kernelCounterSet) snapshot() map[string]int64 {
	out := map[string]int64{
		"compiles":          k.compiles.Load(),
		"cache_hits":        k.cacheHits.Load(),
		"executions":        k.executions.Load(),
		"fallbacks":         k.fallbacks.Load(),
		"chain_executions":  k.chainExecutions.Load(),
		"chain_stages":      k.chainStages.Load(),
		"chain_elided":      k.chainElided.Load(),
		"output_executions": k.outputExecutions.Load(),
	}
	k.mu.Lock()
	for r, n := range k.reasons {
		out["fallback_"+r] = n
	}
	k.mu.Unlock()
	return out
}

func (k *kernelCounterSet) reset() {
	k.compiles.Store(0)
	k.cacheHits.Store(0)
	k.executions.Store(0)
	k.fallbacks.Store(0)
	k.chainExecutions.Store(0)
	k.chainStages.Store(0)
	k.chainElided.Store(0)
	k.outputExecutions.Store(0)
	k.mu.Lock()
	k.reasons = nil
	k.mu.Unlock()
}

// kernelCounters is the process-wide aggregate scope.
var kernelCounters kernelCounterSet

// kernelFallback records one matcher decline with its reason, in both
// the process aggregate and the engine's own scope.
func kernelFallback(env *storageEnv, reason string) {
	kernelCounters.fallback(reason)
	if env != nil && env.kernelCtrs != nil {
		env.kernelCtrs.fallback(reason)
	}
}

// kernelBump increments one counter field in both scopes.
func kernelBump(env *storageEnv, pick func(*kernelCounterSet) *atomic.Int64, n int64) {
	pick(&kernelCounters).Add(n)
	if env != nil && env.kernelCtrs != nil {
		pick(env.kernelCtrs).Add(n)
	}
}

// KernelCounters snapshots the cumulative kernel-tier counters
// (monotonic across all engine instances in the process): compiles,
// cache_hits, executions, fallbacks, the chain_* whole-circuit fusion
// counters, and one "fallback_<reason>" entry per observed decline
// reason. For a single engine's uncontaminated view, use
// DB.KernelCounters.
func KernelCounters() map[string]int64 {
	return kernelCounters.snapshot()
}

// ResetKernelCounters zeroes the process-wide aggregate counters
// (benchmark phases and tests). Per-DB scopes are unaffected.
func ResetKernelCounters() {
	kernelCounters.reset()
}

// KernelCache caches compiled kernel programs keyed by the canonical
// plan structure (expressions with resolved column slots, scan column
// maps, HAVING threshold). Programs are store-independent — execution
// re-binds them to the current table vectors — so a sweep that re-plans
// the same structural query with different gate numerics compiles once
// and rebinds thereafter. Shareable across engine instances (the
// simulation plan cache hands every rebound engine the same
// *KernelCache, see sim.PlanCache).
type KernelCache struct {
	mu  sync.Mutex
	cap int
	m   map[string]*kernelProg
}

// NewKernelCache creates a kernel program cache holding up to capacity
// compiled programs (<=0 uses a default of 256). Eviction is
// whole-cache reset on overflow: programs are tiny and a working set
// larger than the capacity does not occur in practice.
func NewKernelCache(capacity int) *KernelCache {
	if capacity <= 0 {
		capacity = 256
	}
	return &KernelCache{cap: capacity, m: map[string]*kernelProg{}}
}

// Len reports the number of cached programs.
func (c *KernelCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

func (c *KernelCache) lookup(key string) (*kernelProg, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.m[key]
	return p, ok
}

func (c *KernelCache) store(key string, p *kernelProg) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.m) >= c.cap {
		c.m = map[string]*kernelProg{}
	}
	c.m[key] = p
}

// kernelAttempt is the materialization hook (called from
// materializePlan when Config.Kernels is on): it pattern-matches the
// plan for the gate-stage core, possibly under order-neutral wrapper
// operators, and executes the matched core as a compiled kernel.
//
// Returns (result, nil, nil) when the core was the plan root and result
// is the final store; (nil, swapped, nil) when the core sat under
// wrappers — the core subtree has been replaced in the tree by a scan
// over the kernel's output store (swapped; the caller releases it if a
// downstream error strands it); (nil, nil, nil) when the matcher
// declined and the plan is untouched.
func kernelAttempt(ctx *execCtx, root planNode, collect bool) (tableStore, tableStore, error) {
	// A bounded budget can reorder execution anywhere (spills, grace
	// joins, serial fallbacks); the kernel only replicates the unlimited
	// in-memory schedule, so it steps aside entirely.
	if ctx.env.budget.Limit() > 0 {
		kernelFallback(ctx.env, kfBudgetLimited)
		return nil, nil, nil
	}
	site, reason := findGateStage(ctx, root)
	if site == nil {
		if out, handled, err := outputKernelAttempt(ctx, root, collect, reason); handled {
			return out, nil, err
		}
		kernelFallback(ctx.env, reason)
		return nil, nil, nil
	}
	bound, reason := bindGateStage(ctx.env, site.kern)
	if bound == nil {
		kernelFallback(ctx.env, reason)
		return nil, nil, nil
	}
	kernelBump(ctx.env, func(k *kernelCounterSet) *atomic.Int64 { return &k.executions }, 1)
	start := time.Now()
	store, err := runGateKernel(ctx, site.kern, bound, collect && site.set == nil)
	if err != nil {
		return nil, nil, err
	}
	ctx.kexec = &kernelExecStat{
		wall:        time.Since(start),
		rowsIn:      int64(bound.rows),
		rowsOut:     store.Len(),
		morsels:     int64((bound.rows + morselRows - 1) / morselRows),
		runsSkipped: bound.runsSkipped.Load(),
		cacheHit:    site.kern.cached,
	}
	if site.set == nil {
		return store, nil, nil
	}
	core := site.kern.core
	site.set(&storeScanNode{
		store:      store,
		cols:       core.schema(),
		fullCols:   len(core.schema()),
		ownStore:   true,
		est:        core.est,
		fromKernel: true,
	})
	return nil, store, nil
}

// kernelExecStat records one fused-loop kernel execution's stats on
// the execCtx: wall time, state rows in, result rows out, the morsel
// count of the fused loop's schedule, RLE run segments skipped by the
// bucket probe, and whether the program came from the kernel cache.
// EXPLAIN ANALYZE and operator-span attachment (trace_exec.go) read
// it.
type kernelExecStat struct {
	wall        time.Duration
	rowsIn      int64
	rowsOut     int64
	morsels     int64
	runsSkipped int64
	cacheHit    bool
}

// chainExecStat records one whole-circuit fused chain execution's
// stats on the execCtx (kernel_chain.go): how many consecutive gate
// stages ran in one pass, the rows into the first stage and out of the
// last, and the wall time of the whole pass. EXPLAIN ANALYZE and span
// attachment read it alongside kexec.
type chainExecStat struct {
	wall    time.Duration
	stages  int64
	rowsIn  int64
	rowsOut int64
}
