package sqlengine

import (
	"fmt"
	"strconv"
	"strings"
)

// Logical plan IR. The planner lowers the AST into this tree first; the
// rule-driven rewriter (optimize.go) transforms it; and the physical
// lowering (planner.go) turns it into the executable planNode tree,
// making the cost-based physical choices on the way. Logical nodes carry
// no execution state — in particular CTEs are *not* materialized while
// the logical plan is being built or rewritten, which is what allows
// single-use CTE inlining and dead-CTE elimination.
//
// Every logical node exposes its output schema (identical to the schema
// of the physical operator it lowers to) plus a cardinality estimate
// filled in by the cost model: estRows < 0 means "not estimated"
// (optimizer off).
type logicalNode interface {
	lschema() planSchema
	// estimate returns the node's cost annotations (shared *nodeEst so
	// the rewriter can fill them in place).
	estimate() *nodeEst
}

// nodeEst is the cost model's per-node annotation, embedded in both
// logical and physical nodes. rows < 0 means not estimated.
type nodeEst struct {
	rows float64
	cost float64
}

func newNodeEst() *nodeEst { return &nodeEst{rows: -1} }

func (e *nodeEst) estimate() *nodeEst { return e }

// cteDef is one WITH entry shared by all references to it. uses counts
// lCTERef nodes; the optimizer marks single-use CTEs inline (when safe)
// and never materializes CTEs with zero uses. store caches the
// materialized result during lowering so multiple references share it.
type cteDef struct {
	name string
	cols []string
	plan logicalNode
	uses int
	// inline is set by the optimizer: references lower to the subplan
	// itself instead of a scan over a materialized store.
	inline bool
	// sensitiveUse records that at least one reference sits under an
	// accumulation-order-sensitive aggregate, so order-changing rewrites
	// (build-side flips, join reordering) inside this CTE's plan would
	// change the materialized row order a float SUM consumes — the
	// optimizer must not apply them (see the bit-neutrality contract in
	// optimize.go).
	sensitiveUse bool
	// store is the materialized result, filled in at most once during
	// physical lowering.
	store tableStore
}

// lOneRow emits a single empty row (FROM-less SELECT).
type lOneRow struct{ est *nodeEst }

func (n *lOneRow) lschema() planSchema { return nil }
func (n *lOneRow) estimate() *nodeEst  { return n.est }

// lScan scans a base table. filters holds conjuncts pushed into the
// scan; keep, when non-nil, lists the column subset the scan must
// produce (projection pruning — with the columnar store, dropped columns
// are never decoded).
type lScan struct {
	name    string // catalog name
	qual    string // alias qualifier (lowercase)
	meta    *TableMeta
	cols    planSchema // full-width schema
	filters []Expr
	keep    []int
	est     *nodeEst
}

func (n *lScan) lschema() planSchema {
	if n.keep == nil {
		return n.cols
	}
	out := make(planSchema, len(n.keep))
	for i, k := range n.keep {
		out[i] = n.cols[k]
	}
	return out
}
func (n *lScan) estimate() *nodeEst { return n.est }

// lCTERef references a CTE. Lowering either inlines the subplan (alias
// over cte.plan) or scans the shared materialized store.
type lCTERef struct {
	cte  *cteDef
	qual string
	cols planSchema
	est  *nodeEst
}

func (n *lCTERef) lschema() planSchema { return n.cols }
func (n *lCTERef) estimate() *nodeEst  { return n.est }

// lFilter drops rows failing any conjunct (the conjuncts are implicitly
// AND-combined; the rewriter moves them around individually).
type lFilter struct {
	child     logicalNode
	conjuncts []Expr
	est       *nodeEst
}

func (n *lFilter) lschema() planSchema { return n.child.lschema() }
func (n *lFilter) estimate() *nodeEst  { return n.est }

// lProject computes output expressions.
type lProject struct {
	child logicalNode
	exprs []Expr
	cols  planSchema
	est   *nodeEst
}

func (n *lProject) lschema() planSchema { return n.cols }
func (n *lProject) estimate() *nodeEst  { return n.est }

// lStrip keeps the first keep output columns (drops hidden sort keys).
type lStrip struct {
	child logicalNode
	keep  int
	est   *nodeEst
}

func (n *lStrip) lschema() planSchema { return n.child.lschema()[:n.keep] }
func (n *lStrip) estimate() *nodeEst  { return n.est }

// lPick projects by column index with zero copying — introduced by the
// optimizer to restore column order after a build-side flip or join
// reorder.
type lPick struct {
	child logicalNode
	idxs  []int
	est   *nodeEst
}

func (n *lPick) lschema() planSchema {
	cs := n.child.lschema()
	out := make(planSchema, len(n.idxs))
	for i, k := range n.idxs {
		out[i] = cs[k]
	}
	return out
}
func (n *lPick) estimate() *nodeEst { return n.est }

// joinStrategy is the physical join execution choice.
type joinStrategy int

const (
	// joinAuto: try the in-memory streaming build, degrade dynamically.
	joinAuto joinStrategy = iota
	// joinGrace: the cost model determined the build side cannot fit the
	// memory budget; skip the doomed in-memory attempt and go straight
	// to the grace-partitioned out-of-core join.
	joinGrace
)

// lJoin joins two inputs (INNER/LEFT/CROSS), with equi-key pairs
// extracted from the ON clause and an optional residual predicate.
type lJoin struct {
	left, right logicalNode
	joinType    string
	leftKeys    []Expr
	rightKeys   []Expr
	residual    Expr
	strategy    joinStrategy
	// buildHint pre-sizes the build-side hash table (0 = no hint);
	// hintable records the chooser's approval (single-column TEXT keys
	// would waste the pre-sized int64 map — see exprIntLike).
	buildHint int64
	hintable  bool
	// flipped marks a build-side swap applied by the optimizer (for
	// EXPLAIN).
	flipped bool
	est     *nodeEst
}

func (n *lJoin) lschema() planSchema {
	ls, rs := n.left.lschema(), n.right.lschema()
	out := make(planSchema, 0, len(ls)+len(rs))
	out = append(out, ls...)
	out = append(out, rs...)
	return out
}
func (n *lJoin) estimate() *nodeEst { return n.est }

// lAgg groups and aggregates; aggs == nil is DISTINCT.
type lAgg struct {
	child   logicalNode
	groupBy []Expr
	aggs    []aggCall
	// groupHint pre-sizes the aggregation hash table (0 = no hint);
	// hintable records the chooser's approval (see lJoin.hintable).
	groupHint int64
	hintable  bool
	est       *nodeEst
}

func (n *lAgg) lschema() planSchema {
	out := make(planSchema, 0, len(n.groupBy)+len(n.aggs))
	for i := range n.groupBy {
		out = append(out, planCol{table: "#grp", name: "g" + strconv.Itoa(i)})
	}
	for i := range n.aggs {
		out = append(out, planCol{table: "#agg", name: "a" + strconv.Itoa(i)})
	}
	return out
}
func (n *lAgg) estimate() *nodeEst { return n.est }

// lSort orders rows.
type lSort struct {
	child logicalNode
	keys  []sortSpec
	est   *nodeEst
}

func (n *lSort) lschema() planSchema { return n.child.lschema() }
func (n *lSort) estimate() *nodeEst  { return n.est }

// lLimit applies LIMIT/OFFSET.
type lLimit struct {
	child         logicalNode
	limit, offset Expr
	est           *nodeEst
}

func (n *lLimit) lschema() planSchema { return n.child.lschema() }
func (n *lLimit) estimate() *nodeEst  { return n.est }

// lAlias re-qualifies (and optionally renames) its child's columns.
type lAlias struct {
	child logicalNode
	table string
	names []string
	est   *nodeEst
}

func (n *lAlias) lschema() planSchema {
	cs := n.child.lschema()
	out := make(planSchema, len(cs))
	for i, c := range cs {
		name := c.name
		if n.names != nil {
			name = strings.ToLower(n.names[i])
		}
		out[i] = planCol{table: strings.ToLower(n.table), name: name}
	}
	return out
}
func (n *lAlias) estimate() *nodeEst { return n.est }

// lchildren returns a node's logical children (for generic walks).
func lchildren(n logicalNode) []logicalNode {
	switch t := n.(type) {
	case *lFilter:
		return []logicalNode{t.child}
	case *lProject:
		return []logicalNode{t.child}
	case *lStrip:
		return []logicalNode{t.child}
	case *lPick:
		return []logicalNode{t.child}
	case *lJoin:
		return []logicalNode{t.left, t.right}
	case *lAgg:
		return []logicalNode{t.child}
	case *lSort:
		return []logicalNode{t.child}
	case *lLimit:
		return []logicalNode{t.child}
	case *lAlias:
		return []logicalNode{t.child}
	}
	return nil
}

// lcteScope resolves CTE names during logical building, innermost WITH
// first.
type lcteScope struct {
	parent *lcteScope
	defs   map[string]*cteDef
}

func (s *lcteScope) lookup(name string) *cteDef {
	for sc := s; sc != nil; sc = sc.parent {
		if d, ok := sc.defs[strings.ToLower(name)]; ok {
			return d
		}
	}
	return nil
}

// logicalBuilder lowers the AST into the logical IR. It performs name
// resolution and the SELECT-shape normalization (star expansion,
// aggregate rewriting, ORDER BY key planning) but executes nothing.
type logicalBuilder struct {
	db *DB
	// defs collects every CTE definition in the statement, in definition
	// order (outermost first), for eager materialization when the
	// optimizer is off.
	defs []*cteDef
}

// buildSelect returns the logical plan root and the user-visible output
// column names.
func (b *logicalBuilder) buildSelect(sel *SelectStmt, scope *lcteScope) (logicalNode, []string, error) {
	// Declare WITH entries; later CTEs may reference earlier ones.
	if len(sel.With) > 0 {
		scope = &lcteScope{parent: scope, defs: map[string]*cteDef{}}
		for _, cte := range sel.With {
			plan, names, err := b.buildSelect(cte.Select, scope)
			if err != nil {
				return nil, nil, err
			}
			cols := names
			if len(cte.Cols) > 0 {
				if len(cte.Cols) != len(names) {
					return nil, nil, fmt.Errorf("sqlengine: CTE %s declares %d columns but query produces %d", cte.Name, len(cte.Cols), len(names))
				}
				cols = cte.Cols
			}
			def := &cteDef{name: cte.Name, cols: cols, plan: plan}
			scope.defs[strings.ToLower(cte.Name)] = def
			b.defs = append(b.defs, def)
		}
	}

	// FROM and JOINs.
	var base logicalNode
	if sel.From == nil {
		base = &lOneRow{est: newNodeEst()}
	} else {
		var err error
		base, err = b.buildTableRef(sel.From, scope)
		if err != nil {
			return nil, nil, err
		}
	}
	for _, join := range sel.Joins {
		right, err := b.buildTableRef(join.Table, scope)
		if err != nil {
			return nil, nil, err
		}
		jn := &lJoin{left: base, right: right, joinType: join.Type, est: newNodeEst()}
		if join.On != nil {
			lks, rks, residual := extractEquiKeys(join.On, base.lschema(), right.lschema())
			jn.leftKeys, jn.rightKeys, jn.residual = lks, rks, residual
		}
		base = jn
	}

	if sel.Where != nil {
		if exprReferencesAggregate(sel.Where) {
			return nil, nil, fmt.Errorf("sqlengine: aggregates are not allowed in WHERE")
		}
		base = &lFilter{child: base, conjuncts: []Expr{sel.Where}, est: newNodeEst()}
	}

	// Decide whether the query aggregates.
	needsAgg := len(sel.GroupBy) > 0
	for _, item := range sel.Items {
		if !item.Star && exprReferencesAggregate(item.Expr) {
			needsAgg = true
		}
	}
	if sel.Having != nil {
		needsAgg = true
	}

	items := sel.Items
	orderExprs := make([]Expr, len(sel.OrderBy))
	for i, o := range sel.OrderBy {
		orderExprs[i] = o.Expr
	}
	having := sel.Having

	if needsAgg {
		for _, item := range items {
			if item.Star {
				return nil, nil, fmt.Errorf("sqlengine: SELECT * cannot be combined with aggregation")
			}
		}
		rw, err := newAggRewriter(sel.GroupBy, base.lschema())
		if err != nil {
			return nil, nil, err
		}
		newItems := make([]SelectItem, len(items))
		for i, item := range items {
			newItems[i] = SelectItem{Expr: rw.rewrite(item.Expr), Alias: item.Alias}
		}
		items = newItems
		if having != nil {
			having = rw.rewrite(having)
		}
		for i, e := range orderExprs {
			if e != nil {
				orderExprs[i] = rw.rewrite(e)
			}
		}
		base = &lAgg{child: base, groupBy: sel.GroupBy, aggs: rw.aggs, est: newNodeEst()}
		if having != nil {
			base = &lFilter{child: base, conjuncts: []Expr{having}, est: newNodeEst()}
		}
	}

	// Expand stars and determine output names.
	var projExprs []Expr
	var outNames []string
	baseSchema := base.lschema()
	for _, item := range items {
		if item.Star {
			matched := false
			for _, c := range baseSchema {
				if item.StarTable != "" && c.table != strings.ToLower(item.StarTable) {
					continue
				}
				matched = true
				projExprs = append(projExprs, &ColumnRef{Table: c.table, Name: c.name})
				outNames = append(outNames, c.name)
			}
			if !matched {
				return nil, nil, fmt.Errorf("sqlengine: no table %q in FROM for %s.*", item.StarTable, item.StarTable)
			}
			continue
		}
		projExprs = append(projExprs, item.Expr)
		outNames = append(outNames, outputName(item))
	}

	outSchema := make(planSchema, len(outNames))
	for i, n := range outNames {
		outSchema[i] = planCol{table: "", name: strings.ToLower(n)}
	}

	// ORDER BY keys: positional, output alias, or hidden input expression.
	type plannedKey struct {
		outIdx int  // >= 0: references an output column
		hidden Expr // non-nil: extra hidden projection
		desc   bool
	}
	var keys []plannedKey
	var hiddenExprs []Expr
	for i, e := range orderExprs {
		desc := sel.OrderBy[i].Desc
		if lit, ok := e.(*Literal); ok && lit.Val.T == TypeInt {
			idx := int(lit.Val.I)
			if idx < 1 || idx > len(projExprs) {
				return nil, nil, fmt.Errorf("sqlengine: ORDER BY position %d out of range", idx)
			}
			keys = append(keys, plannedKey{outIdx: idx - 1, desc: desc})
			continue
		}
		// A bare column matching exactly one output alias refers to it.
		if cr, ok := e.(*ColumnRef); ok && cr.Table == "" {
			if idx, err := outSchema.resolveColumn("", cr.Name); err == nil {
				keys = append(keys, plannedKey{outIdx: idx, desc: desc})
				continue
			}
		}
		if sel.Distinct {
			return nil, nil, fmt.Errorf("sqlengine: ORDER BY expression %s must appear in the SELECT DISTINCT list", e.Deparse())
		}
		keys = append(keys, plannedKey{outIdx: -1, hidden: e, desc: desc})
		hiddenExprs = append(hiddenExprs, e)
	}

	// Projection (with hidden sort keys appended).
	allExprs := append(append([]Expr{}, projExprs...), hiddenExprs...)
	projSchema := make(planSchema, 0, len(allExprs))
	projSchema = append(projSchema, outSchema...)
	for i := range hiddenExprs {
		projSchema = append(projSchema, planCol{table: "#hidden", name: "k" + strconv.Itoa(i)})
	}
	var node logicalNode = &lProject{child: base, exprs: allExprs, cols: projSchema, est: newNodeEst()}

	// DISTINCT: group by every output column (hidden keys are forbidden
	// above, so the projection width equals the output width).
	if sel.Distinct {
		gb := make([]Expr, len(outNames))
		for i, c := range projSchema[:len(outNames)] {
			gb[i] = &ColumnRef{Table: c.table, Name: c.name}
		}
		node = &lAgg{child: node, groupBy: gb, aggs: nil, est: newNodeEst()}
		node = &lAlias{child: node, table: "", names: outNames, est: newNodeEst()}
	}

	// Sort.
	if len(keys) > 0 {
		specs := make([]sortSpec, len(keys))
		schema := node.lschema()
		hiddenBase := len(outNames)
		hi := 0
		for i, k := range keys {
			if k.outIdx >= 0 {
				c := schema[k.outIdx]
				specs[i] = sortSpec{expr: &ColumnRef{Table: c.table, Name: c.name}, desc: k.desc}
			} else {
				c := schema[hiddenBase+hi]
				hi++
				specs[i] = sortSpec{expr: &ColumnRef{Table: c.table, Name: c.name}, desc: k.desc}
			}
		}
		node = &lSort{child: node, keys: specs, est: newNodeEst()}
	}

	if sel.Limit != nil || sel.Offset != nil {
		node = &lLimit{child: node, limit: sel.Limit, offset: sel.Offset, est: newNodeEst()}
	}

	if len(hiddenExprs) > 0 {
		node = &lStrip{child: node, keep: len(outNames), est: newNodeEst()}
	}
	return node, outNames, nil
}

func (b *logicalBuilder) buildTableRef(ref TableRef, scope *lcteScope) (logicalNode, error) {
	switch r := ref.(type) {
	case *TableName:
		qual := r.Name
		if r.Alias != "" {
			qual = r.Alias
		}
		if def := scope.lookup(r.Name); def != nil {
			def.uses++
			cols := make(planSchema, len(def.cols))
			for i, c := range def.cols {
				cols[i] = planCol{table: strings.ToLower(qual), name: strings.ToLower(c)}
			}
			return &lCTERef{cte: def, qual: strings.ToLower(qual), cols: cols, est: newNodeEst()}, nil
		}
		meta := b.db.lookupTable(r.Name)
		if meta == nil {
			return nil, fmt.Errorf("sqlengine: no such table: %s", r.Name)
		}
		cols := make(planSchema, len(meta.Cols))
		for i, c := range meta.Cols {
			cols[i] = planCol{table: strings.ToLower(qual), name: strings.ToLower(c.Name)}
		}
		return &lScan{name: r.Name, qual: strings.ToLower(qual), meta: meta, cols: cols, est: newNodeEst()}, nil

	case *SubqueryRef:
		node, names, err := b.buildSelect(r.Select, scope)
		if err != nil {
			return nil, err
		}
		return &lAlias{child: node, table: r.Alias, names: names, est: newNodeEst()}, nil
	}
	return nil, fmt.Errorf("sqlengine: unsupported table reference %T", ref)
}
