package sqlengine

import (
	"fmt"
	"strconv"
)

// aggCall describes one aggregate computation extracted from the query.
type aggCall struct {
	Name     string // uppercase aggregate name
	Distinct bool
	Arg      Expr // nil for COUNT(*)
}

// aggNode evaluates GROUP BY aggregation. Its output schema is the group
// expressions (qualified "#grp") followed by aggregate results
// (qualified "#agg"); the planner rewrites the surrounding SELECT to
// reference those synthetic columns. DISTINCT is lowered onto this node
// with all output columns as group keys and no aggregates.
//
// Execution is streaming: input batches are aggregated directly into a
// hash table (group keys and aggregate arguments evaluated vectorized),
// with no materialization of the input. When the hash table outgrows the
// memory budget, accumulated groups are dumped as partial-aggregate
// tuples — every built-in non-DISTINCT aggregate decomposes into 1–2
// mergeable values — and the rest of the input is converted to the same
// partial form; the partial store is then merge-aggregated with
// recursive grace partitioning, so grouping works beyond the budget.
// DISTINCT aggregates are not decomposable and take the legacy path:
// materialize evaluated tuples first, then aggregate recursively.
type aggNode struct {
	child   planNode
	groupBy []Expr
	aggs    []aggCall
	// groupHint is the cost model's estimated group count, used to
	// pre-size the aggregation hash tables (0 = no hint). Pre-sizing
	// never changes results: output order is the first-seen order list,
	// which is independent of map capacity.
	groupHint int64
	est       *nodeEst
}

func (n *aggNode) schema() planSchema {
	out := make(planSchema, 0, len(n.groupBy)+len(n.aggs))
	for i := range n.groupBy {
		out = append(out, planCol{table: "#grp", name: "g" + strconv.Itoa(i)})
	}
	for i := range n.aggs {
		out = append(out, planCol{table: "#agg", name: "a" + strconv.Itoa(i)})
	}
	return out
}

func (n *aggNode) open(ctx *execCtx) (batchIter, error) {
	childSchema := n.child.schema()
	// compile builds the group-key and aggregate-argument evaluators.
	// Deferred to the path that runs: the morsel path compiles
	// worker-private copies instead (and surfaces the same errors).
	compile := func() (groupC, argC []vecExpr, err error) {
		if groupC, err = ctx.compileVecAll(n.groupBy, childSchema); err != nil {
			return nil, nil, err
		}
		argC = make([]vecExpr, len(n.aggs))
		for i, a := range n.aggs {
			if a.Arg == nil {
				continue
			}
			if argC[i], err = ctx.compileVec(a.Arg, childSchema); err != nil {
				return nil, nil, err
			}
		}
		return groupC, argC, nil
	}

	exec := newAggExec(ctx, len(n.groupBy), n.aggs)
	exec.groupHint = n.groupHint
	out := ctx.env.newStore()
	if n.groupHint > 0 {
		if h, ok := out.(rowCapacityHinter); ok {
			h.hintRows(n.groupHint)
		}
	}
	fail := func(err error) (batchIter, error) {
		out.Release()
		return nil, err
	}

	var rowsSeen bool
	done := false
	if exec.streamable() {
		// The morsel path engages whenever the child pipeline can be
		// morselized — for any worker count, including 1 — so the
		// floating-point merge order and output order depend only on the
		// data, never on the Parallelism setting (see parallel_agg.go).
		streams, ok, perr := openMorselStreams(n.child, ctx, aggWorkers(ctx))
		if perr != nil {
			return fail(perr)
		}
		if ok {
			rowsSeen, perr = exec.morselAggregate(n, streams, out)
			if perr == nil {
				done = true
			} else if perr != errParallelFallback {
				return fail(perr)
			}
			// errParallelFallback: reservations are released and streams
			// closed; re-run below on a fresh serial child, which spills.
		}
	}
	if !done {
		groupC, argC, err := compile()
		if err != nil {
			return fail(err)
		}
		child, err := n.child.open(ctx)
		if err != nil {
			return fail(err)
		}
		if exec.streamable() {
			rowsSeen, err = exec.streamAggregate(child, groupC, argC, out)
			child.Close()
			if err != nil {
				return fail(err)
			}
		} else {
			input, merr := n.materializeTuples(ctx, child, groupC, argC)
			child.Close()
			if merr != nil {
				return fail(merr)
			}
			rowsSeen = input.Len() > 0
			err = exec.aggregateStore(input, 0, out)
			input.Release()
			if err != nil {
				return fail(err)
			}
		}
	}

	// Global aggregation over empty input yields one default row.
	if len(n.groupBy) == 0 && out.Len() == 0 && !rowsSeen {
		row := make(Row, len(n.aggs))
		for i, a := range n.aggs {
			st, err := newAggState(a.Name, a.Distinct)
			if err != nil {
				return fail(err)
			}
			row[i] = st.result()
		}
		if err := out.Append(row); err != nil {
			return fail(err)
		}
	}
	if err := out.Freeze(); err != nil {
		return fail(err)
	}
	return newOwnedStoreIter(out)
}

// materializeTuples drains the child, evaluating group keys and
// aggregate arguments vectorized, and stores one tuple per input row
// (the legacy path, required for DISTINCT aggregates).
func (n *aggNode) materializeTuples(ctx *execCtx, child batchIter, groupC []vecExpr, argC []vecExpr) (tableStore, error) {
	input := ctx.env.newStore()
	nGroup := len(groupC)
	tupleWidth := nGroup + len(argC)
	groupCols := make([]colVec, nGroup)
	argCols := make([]colVec, len(argC))
	for {
		if err := ctx.cancelled(); err != nil {
			input.Release()
			return nil, err
		}
		b, err := child.NextBatch()
		if err != nil {
			input.Release()
			return nil, err
		}
		if b == nil {
			break
		}
		sel, err := evalGroupArgs(b, groupC, argC, groupCols, argCols)
		if err != nil {
			input.Release()
			return nil, err
		}
		for _, pos := range sel {
			tuple := make(Row, tupleWidth)
			for i := 0; i < nGroup; i++ {
				tuple[i] = groupCols[i][pos]
			}
			for i := range argC {
				if argC[i] == nil { // COUNT(*): presence marker
					tuple[nGroup+i] = NewBool(true)
					continue
				}
				tuple[nGroup+i] = argCols[i][pos]
			}
			if err := input.Append(tuple); err != nil {
				input.Release()
				return nil, err
			}
		}
	}
	if err := input.Freeze(); err != nil {
		input.Release()
		return nil, err
	}
	return input, nil
}

// evalGroupArgs evaluates group-key and aggregate-argument expressions
// over one batch, filling the provided column slices.
func evalGroupArgs(b *rowBatch, groupC, argC []vecExpr, groupCols, argCols []colVec) ([]int, error) {
	sel := b.selection()
	for i, g := range groupC {
		col, err := g(b, sel)
		if err != nil {
			return nil, err
		}
		groupCols[i] = col
	}
	for i, a := range argC {
		if a == nil {
			continue
		}
		col, err := a(b, sel)
		if err != nil {
			return nil, err
		}
		argCols[i] = col
	}
	return sel, nil
}

type aggExec struct {
	ctx    *execCtx
	nGroup int
	aggs   []aggCall
	// Partial-tuple layout for the streaming spill path: per-aggregate
	// slot offsets within the partial section of a tuple.
	partOffs  []int
	partTotal int
	// groupHint pre-sizes the hash tables (0 = no hint).
	groupHint int64
}

func newAggExec(ctx *execCtx, nGroup int, aggs []aggCall) *aggExec {
	x := &aggExec{ctx: ctx, nGroup: nGroup, aggs: aggs, partOffs: make([]int, len(aggs))}
	for i, a := range aggs {
		x.partOffs[i] = x.partTotal
		x.partTotal += partialWidth(a.Name)
	}
	return x
}

// streamable reports whether the streaming partial-spill path applies:
// DISTINCT aggregates need the full input and use the legacy path.
func (x *aggExec) streamable() bool {
	for _, a := range x.aggs {
		if a.Distinct {
			return false
		}
	}
	return true
}

// partialWidth is the number of Values an aggregate's mergeable partial
// state occupies in a spilled tuple.
func partialWidth(name string) int {
	if name == "AVG" {
		return 2 // (sum, count)
	}
	return 1
}

type aggGroup struct {
	keyVals Row
	states  []aggState
}

// aggChunkGroups is the slab size of the aggregation allocators: one
// chunk allocation amortizes over this many groups.
const aggChunkGroups = 256

// slabPut appends v to a chunked slab and returns a stable pointer to
// it. A full chunk is replaced, never regrown, so previously returned
// pointers stay valid (the old chunk remains referenced by them).
func slabPut[T any](chunk *[]T, v T) *T {
	if len(*chunk) == cap(*chunk) {
		*chunk = make([]T, 0, aggChunkGroups)
	}
	*chunk = append(*chunk, v)
	return &(*chunk)[len(*chunk)-1]
}

// slabCarve carves an n-element slice from a chunked arena,
// capacity-clipped so appends cannot cross into the next carve.
func slabCarve[T any](chunk *[]T, n int) []T {
	if n == 0 {
		return nil
	}
	if cap(*chunk)-len(*chunk) < n {
		*chunk = make([]T, 0, max(aggChunkGroups*n, n))
	}
	i := len(*chunk)
	*chunk = (*chunk)[:i+n]
	return (*chunk)[i : i+n : i+n]
}

// aggAlloc slab-allocates the aggregation hash table's per-group state
// — group structs, key clones, states slices, and the concrete
// accumulators — cutting the half-dozen allocations per group of the
// naive path to amortized chunk allocations. One amplitude is one group
// in the translated gate query, so this is directly on the per-gate
// hot path. Not safe for concurrent use; parallel aggregation gives
// each worker its own allocator.
type aggAlloc struct {
	aggs       []aggCall
	groupChunk []aggGroup
	stateChunk []aggState
	valChunk   []Value
	countChunk []countAgg
	sumChunk   []sumAgg
	avgChunk   []avgAgg
	mmChunk    []minMaxAgg
}

func newAggAlloc(aggs []aggCall) *aggAlloc { return &aggAlloc{aggs: aggs} }

// row carves an n-Value slice from the arena.
func (a *aggAlloc) row(n int) Row { return slabCarve(&a.valChunk, n) }

func (a *aggAlloc) cloneKey(key Row) Row {
	out := a.row(len(key))
	copy(out, key)
	return out
}

func (a *aggAlloc) state(call aggCall) (aggState, error) {
	if call.Distinct {
		return newAggState(call.Name, true)
	}
	switch call.Name {
	case "COUNT":
		return slabPut(&a.countChunk, countAgg{}), nil
	case "SUM", "TOTAL":
		return slabPut(&a.sumChunk, sumAgg{total: call.Name == "TOTAL"}), nil
	case "AVG":
		return slabPut(&a.avgChunk, avgAgg{}), nil
	case "MIN", "MAX":
		return slabPut(&a.mmChunk, minMaxAgg{min: call.Name == "MIN"}), nil
	}
	return newAggState(call.Name, false)
}

// group builds a fresh group for key, slab-backed.
func (a *aggAlloc) group(key Row) (*aggGroup, error) {
	g := slabPut(&a.groupChunk, aggGroup{keyVals: a.cloneKey(key)})
	g.states = slabCarve(&a.stateChunk, len(a.aggs))
	for j, call := range a.aggs {
		st, err := a.state(call)
		if err != nil {
			return nil, err
		}
		g.states[j] = st
	}
	return g, nil
}

// groupTable is the aggregation hash table: single-column integer-like
// group keys use an int64-keyed map (no key encoding or string
// allocation per row — see intKey for why the split preserves grouping
// semantics), everything else the encoded string key. order preserves
// first-seen order for deterministic output.
type groupTable[G any] struct {
	useInt bool
	ints   map[int64]G
	strs   map[string]G
	order  []G
}

// newGroupTable allocates the aggregation hash table. hint, when
// positive, pre-sizes the map (and the first-seen order list) so large
// aggregations skip incremental rehash growth.
func newGroupTable[G any](nGroup int, hint int64) *groupTable[G] {
	t := &groupTable[G]{useInt: nGroup == 1}
	if hint > 0 {
		if t.useInt {
			t.ints = make(map[int64]G, hint)
			t.strs = make(map[string]G)
		} else {
			t.ints = make(map[int64]G)
			t.strs = make(map[string]G, hint)
		}
		t.order = make([]G, 0, hint)
		return t
	}
	t.ints = make(map[int64]G)
	t.strs = make(map[string]G)
	return t
}

// get looks up the group for a key (the first nGroup values of key).
func (t *groupTable[G]) get(key Row) (G, bool) {
	if t.useInt {
		if ik, ok := intKey(key[0]); ok {
			g, found := t.ints[ik]
			return g, found
		}
	}
	g, found := t.strs[encodeRowKey(key)]
	return g, found
}

// put files g under key and appends it to the first-seen order.
func (t *groupTable[G]) put(key Row, g G) {
	if t.useInt {
		if ik, ok := intKey(key[0]); ok {
			t.ints[ik] = g
			t.order = append(t.order, g)
			return
		}
	}
	t.strs[encodeRowKey(key)] = g
	t.order = append(t.order, g)
}

// streamAggregate drains child batches into the hash table; on budget
// overflow it switches to the partial-spill path. rowsSeen reports
// whether any input row was consumed.
func (x *aggExec) streamAggregate(child batchIter, groupC, argC []vecExpr, out tableStore) (bool, error) {
	budget := x.ctx.env.budget
	table := newGroupTable[*aggGroup](x.nGroup, x.groupHint)
	var reserved int64
	releaseAll := func() {
		budget.release(reserved)
		reserved = 0
		table = nil
	}

	groupCols := make([]colVec, len(groupC))
	argCols := make([]colVec, len(argC))
	keyBuf := make(Row, x.nGroup)
	alloc := newAggAlloc(x.aggs)
	rowsSeen := false

	for {
		if err := x.ctx.cancelled(); err != nil {
			releaseAll()
			return rowsSeen, err
		}
		b, err := child.NextBatch()
		if err != nil {
			releaseAll()
			return rowsSeen, err
		}
		if b == nil {
			break
		}
		sel, err := evalGroupArgs(b, groupC, argC, groupCols, argCols)
		if err != nil {
			releaseAll()
			return rowsSeen, err
		}
		rowsSeen = rowsSeen || len(sel) > 0
		for si, pos := range sel {
			for i := 0; i < x.nGroup; i++ {
				keyBuf[i] = groupCols[i][pos]
			}
			var g *aggGroup
			ik, isInt := int64(0), false
			if table.useInt {
				ik, isInt = intKey(keyBuf[0])
			}
			if isInt {
				g = table.ints[ik]
			} else {
				g = table.strs[encodeRowKey(keyBuf)]
			}
			if g == nil {
				need := rowBytes(keyBuf) + mapEntryBytes + int64(len(x.aggs))*48
				if !budget.tryReserve(need) {
					// See joinStores: blocking operators may claim a
					// small working floor before giving up.
					if reserved+need > x.ctx.env.workingFloor {
						// Overflow: dump groups and the rest of the
						// stream as mergeable partial tuples.
						order := table.order
						releaseAll()
						if !x.ctx.env.spillEnabled {
							return rowsSeen, errBudget
						}
						return true, x.spillAndMerge(child, groupC, argC, order, sel[si:], groupCols, argCols, out)
					}
					budget.reserveForce(need)
				}
				reserved += need
				var aerr error
				if g, aerr = alloc.group(keyBuf); aerr != nil {
					releaseAll()
					return rowsSeen, aerr
				}
				if isInt {
					table.ints[ik] = g
				} else {
					table.strs[encodeRowKey(keyBuf)] = g
				}
				table.order = append(table.order, g)
			}
			for i := range x.aggs {
				var v Value
				if argC[i] == nil {
					v = NewBool(true) // COUNT(*): presence marker
				} else {
					v = argCols[i][pos]
				}
				if err := g.states[i].add(v, true); err != nil {
					releaseAll()
					return rowsSeen, err
				}
			}
		}
	}

	defer releaseAll()
	app := newBatchAppender(out, x.nGroup+len(x.aggs))
	rowBuf := make(Row, x.nGroup+len(x.aggs))
	for _, g := range table.order {
		copy(rowBuf, g.keyVals)
		for i, st := range g.states {
			rowBuf[x.nGroup+i] = st.result()
		}
		if err := app.appendRow(rowBuf); err != nil {
			return true, err
		}
	}
	return rowsSeen, app.flush()
}

// spillAndMerge handles streaming overflow: accumulated groups are
// dumped as partial tuples (in first-seen order, keeping output
// deterministic), the rest of the input is converted row-by-row to the
// same partial form, and the combined store is merge-aggregated.
func (x *aggExec) spillAndMerge(child batchIter, groupC, argC []vecExpr, dumped []*aggGroup, curSel []int, groupCols, argCols []colVec, out tableStore) error {
	partials := x.ctx.env.newStore()
	fail := func(err error) error {
		partials.Release()
		return err
	}
	for _, g := range dumped {
		row := make(Row, x.nGroup+x.partTotal)
		copy(row, g.keyVals)
		dst := row[x.nGroup:x.nGroup]
		for _, st := range g.states {
			dst = st.(partialDumper).partial(dst)
		}
		if err := partials.Append(row); err != nil {
			return fail(err)
		}
	}
	appendRaw := func(sel []int, groupCols, argCols []colVec) error {
		for _, pos := range sel {
			row := make(Row, x.nGroup+x.partTotal)
			for i := 0; i < x.nGroup; i++ {
				row[i] = groupCols[i][pos]
			}
			for i, a := range x.aggs {
				var v Value
				if argC[i] != nil {
					v = argCols[i][pos]
				}
				if err := rawPartial(a.Name, argC[i] == nil, v, row[x.nGroup+x.partOffs[i]:]); err != nil {
					return err
				}
			}
			if err := partials.Append(row); err != nil {
				return err
			}
		}
		return nil
	}
	// The unconsumed tail of the current batch, then the rest of the
	// stream.
	if err := appendRaw(curSel, groupCols, argCols); err != nil {
		return fail(err)
	}
	for {
		if err := x.ctx.cancelled(); err != nil {
			return fail(err)
		}
		b, err := child.NextBatch()
		if err != nil {
			return fail(err)
		}
		if b == nil {
			break
		}
		sel, err := evalGroupArgs(b, groupC, argC, groupCols, argCols)
		if err != nil {
			return fail(err)
		}
		if err := appendRaw(sel, groupCols, argCols); err != nil {
			return fail(err)
		}
	}
	if err := partials.Freeze(); err != nil {
		return fail(err)
	}
	defer partials.Release()
	return x.mergeStore(partials, 0, out)
}

// rawPartial writes the single-row partial representation of an
// aggregate input value into dst.
func rawPartial(name string, star bool, v Value, dst Row) error {
	switch name {
	case "COUNT":
		if star || !v.IsNull() {
			dst[0] = NewInt(1)
		} else {
			dst[0] = NewInt(0)
		}
	case "SUM", "TOTAL", "MIN", "MAX":
		dst[0] = v
	case "AVG":
		if v.IsNull() {
			dst[0], dst[1] = NewFloat(0), NewInt(0)
			return nil
		}
		f, err := v.AsFloat()
		if err != nil {
			return err
		}
		dst[0], dst[1] = NewFloat(f), NewInt(1)
	default:
		return fmt.Errorf("sqlengine: aggregate %s cannot be spilled as a partial", name)
	}
	return nil
}

// mergeAcc accumulates mergeable partial states for one aggregate.
// (Merge levels re-read their input store on overflow, so unlike the
// streaming level they never need to dump partials again.)
type mergeAcc interface {
	merge(slots []Value) error
	result() Value
}

// scalarMergeAcc merges single-slot partials through an underlying
// aggState whose add() is associative over partials (SUM/TOTAL merge via
// summation, MIN/MAX via comparison, COUNT via summation of counts).
type scalarMergeAcc struct {
	st aggState
}

func (m *scalarMergeAcc) merge(slots []Value) error { return m.st.add(slots[0], true) }
func (m *scalarMergeAcc) result() Value             { return m.st.result() }

// avgMergeAcc merges (sum, count) pairs.
type avgMergeAcc struct {
	f float64
	n int64
}

func (m *avgMergeAcc) merge(slots []Value) error {
	n, err := slots[1].AsInt()
	if err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	f, err := slots[0].AsFloat()
	if err != nil {
		return err
	}
	m.f += f
	m.n += n
	return nil
}

func (m *avgMergeAcc) result() Value {
	if m.n == 0 {
		return Null
	}
	return NewFloat(m.f / float64(m.n))
}

func newMergeAcc(name string) (mergeAcc, error) {
	switch name {
	case "COUNT", "SUM":
		return &scalarMergeAcc{st: &sumAgg{}}, nil
	case "TOTAL":
		return &scalarMergeAcc{st: &sumAgg{total: true}}, nil
	case "AVG":
		return &avgMergeAcc{}, nil
	case "MIN":
		return &scalarMergeAcc{st: &minMaxAgg{min: true}}, nil
	case "MAX":
		return &scalarMergeAcc{st: &minMaxAgg{}}, nil
	}
	return nil, fmt.Errorf("sqlengine: aggregate %s cannot be merged", name)
}

type mergeGroup struct {
	keyVals Row
	accs    []mergeAcc
}

// mergeAlloc slab-allocates merge-phase state — mergeGroup structs, acc
// slices, and the concrete accumulators — mirroring aggAlloc for the
// spill merge and for phase 2 of the parallel aggregation. Not safe for
// concurrent use.
type mergeAlloc struct {
	aggs        []aggCall
	groupChunk  []mergeGroup
	accChunk    []mergeAcc
	scalarChunk []scalarMergeAcc
	avgChunk    []avgMergeAcc
	sumChunk    []sumAgg
	mmChunk     []minMaxAgg
	valChunk    []Value
}

func newMergeAlloc(aggs []aggCall) *mergeAlloc { return &mergeAlloc{aggs: aggs} }

// row carves an n-Value slice from the arena.
func (a *mergeAlloc) row(n int) Row { return slabCarve(&a.valChunk, n) }

func (a *mergeAlloc) acc(name string) (mergeAcc, error) {
	scalar := func(st aggState) mergeAcc { return slabPut(&a.scalarChunk, scalarMergeAcc{st: st}) }
	switch name {
	case "COUNT", "SUM":
		return scalar(slabPut(&a.sumChunk, sumAgg{})), nil
	case "TOTAL":
		return scalar(slabPut(&a.sumChunk, sumAgg{total: true})), nil
	case "AVG":
		return slabPut(&a.avgChunk, avgMergeAcc{}), nil
	case "MIN", "MAX":
		return scalar(slabPut(&a.mmChunk, minMaxAgg{min: name == "MIN"})), nil
	}
	return newMergeAcc(name)
}

// group builds a fresh merge group. keyVals is referenced, not cloned:
// callers pass keys that outlive the table (phase-1 group keys or
// arena-cloned tuples).
func (a *mergeAlloc) group(keyVals Row) (*mergeGroup, error) {
	g := slabPut(&a.groupChunk, mergeGroup{keyVals: keyVals})
	g.accs = slabCarve(&a.accChunk, len(a.aggs))
	for j, call := range a.aggs {
		acc, err := a.acc(call.Name)
		if err != nil {
			return nil, err
		}
		g.accs[j] = acc
	}
	return g, nil
}

// mergeStore merge-aggregates a store of partial tuples; under memory
// pressure it partitions the store by group-key hash and recurses.
func (x *aggExec) mergeStore(input tableStore, depth int, out tableStore) error {
	budget := x.ctx.env.budget
	table := newGroupTable[*mergeGroup](x.nGroup, x.groupHint)
	var reserved int64
	releaseAll := func() {
		budget.release(reserved)
		reserved = 0
		table = nil
	}

	it, err := input.Cursor()
	if err != nil {
		return err
	}
	alloc := newMergeAlloc(x.aggs)
	overflow := false
	var seen int64
	for {
		if seen%batchSize == 0 {
			if err := x.ctx.cancelled(); err != nil {
				releaseAll()
				return err
			}
		}
		seen++
		tuple, ok, err := it.Next()
		if err != nil {
			releaseAll()
			return err
		}
		if !ok {
			break
		}
		var g *mergeGroup
		ik, isInt := int64(0), false
		if table.useInt {
			ik, isInt = intKey(tuple[0])
		}
		if isInt {
			g = table.ints[ik]
		} else {
			g = table.strs[encodeRowKey(tuple[:x.nGroup])]
		}
		if g == nil {
			need := rowBytes(tuple) + mapEntryBytes + int64(len(x.aggs))*48
			if !budget.tryReserve(need) {
				if reserved+need > x.ctx.env.workingFloor {
					overflow = true
					break
				}
				budget.reserveForce(need)
			}
			reserved += need
			key := alloc.row(x.nGroup)
			copy(key, tuple[:x.nGroup])
			if g, err = alloc.group(key); err != nil {
				releaseAll()
				return err
			}
			if isInt {
				table.ints[ik] = g
			} else {
				table.strs[encodeRowKey(tuple[:x.nGroup])] = g
			}
			table.order = append(table.order, g)
		}
		for i := range x.aggs {
			off := x.nGroup + x.partOffs[i]
			if err := g.accs[i].merge(tuple[off : off+partialWidth(x.aggs[i].Name)]); err != nil {
				releaseAll()
				return err
			}
		}
	}

	if overflow {
		releaseAll()
		if !x.ctx.env.spillEnabled {
			return errBudget
		}
		if depth >= maxGraceDepth {
			return fmt.Errorf("sqlengine: aggregation exceeded maximum partitioning depth %d", maxGraceDepth)
		}
		return x.partitionStore(input, depth, out, x.mergeStore)
	}
	defer releaseAll()

	app := newBatchAppender(out, x.nGroup+len(x.aggs))
	rowBuf := make(Row, x.nGroup+len(x.aggs))
	for _, g := range table.order {
		copy(rowBuf, g.keyVals)
		for i, acc := range g.accs {
			rowBuf[x.nGroup+i] = acc.result()
		}
		if err := app.appendRow(rowBuf); err != nil {
			return err
		}
	}
	return app.flush()
}

// aggregateStore hash-aggregates one store of raw tuples (the legacy
// DISTINCT-capable path); under memory pressure it splits the store into
// partitions by group-key hash and recurses.
func (x *aggExec) aggregateStore(input tableStore, depth int, out tableStore) error {
	budget := x.ctx.env.budget
	table := newGroupTable[*aggGroup](x.nGroup, x.groupHint)
	var reserved int64
	releaseAll := func() {
		budget.release(reserved)
		reserved = 0
		table = nil
	}

	it, err := input.Cursor()
	if err != nil {
		return err
	}
	alloc := newAggAlloc(x.aggs)
	overflow := false
	var seen int64
	for {
		if seen%batchSize == 0 {
			if err := x.ctx.cancelled(); err != nil {
				releaseAll()
				return err
			}
		}
		seen++
		tuple, ok, err := it.Next()
		if err != nil {
			releaseAll()
			return err
		}
		if !ok {
			break
		}
		var g *aggGroup
		ik, isInt := int64(0), false
		if table.useInt {
			ik, isInt = intKey(tuple[0])
		}
		if isInt {
			g = table.ints[ik]
		} else {
			g = table.strs[encodeRowKey(tuple[:x.nGroup])]
		}
		if g == nil {
			need := rowBytes(tuple) + mapEntryBytes + int64(len(x.aggs))*48
			if !budget.tryReserve(need) {
				// See joinStores: allow a working floor so recursive
				// partitioning always shrinks the per-level state.
				if reserved+need > x.ctx.env.workingFloor {
					overflow = true
					break
				}
				budget.reserveForce(need)
			}
			reserved += need
			if g, err = alloc.group(tuple[:x.nGroup]); err != nil {
				releaseAll()
				return err
			}
			if isInt {
				table.ints[ik] = g
			} else {
				table.strs[encodeRowKey(tuple[:x.nGroup])] = g
			}
			table.order = append(table.order, g)
		}
		for i := range x.aggs {
			v := tuple[x.nGroup+i]
			if err := g.states[i].add(v, true); err != nil {
				releaseAll()
				return err
			}
		}
	}

	if overflow {
		releaseAll()
		if !x.ctx.env.spillEnabled {
			return errBudget
		}
		if depth >= maxGraceDepth {
			return fmt.Errorf("sqlengine: aggregation exceeded maximum partitioning depth %d", maxGraceDepth)
		}
		return x.partitionStore(input, depth, out, x.aggregateStore)
	}
	defer releaseAll()

	app := newBatchAppender(out, x.nGroup+len(x.aggs))
	rowBuf := make(Row, x.nGroup+len(x.aggs))
	for _, g := range table.order {
		copy(rowBuf, g.keyVals)
		for i, st := range g.states {
			rowBuf[x.nGroup+i] = st.result()
		}
		if err := app.appendRow(rowBuf); err != nil {
			return err
		}
	}
	return app.flush()
}

// partitionIndex buckets a tuple by its group key, using the integer
// mix for normalizable single-column keys (consistent across recursion
// levels because normalization is deterministic).
func (x *aggExec) partitionIndex(tuple Row, depth, fanout int) int {
	if x.nGroup == 1 {
		if ik, ok := intKey(tuple[0]); ok {
			return hashPartitionInt(ik, depth, fanout)
		}
	}
	return hashPartition(encodeRowKey(tuple[:x.nGroup]), depth, fanout)
}

// partitionStore splits a tuple store into fanout hash partitions and
// applies recurse to each non-empty one at depth+1. Each partition
// holds ~1/fanout of the groups, so the pre-sizing hint is scaled down
// accordingly for the recursive levels (memory has already overflowed
// here; full-size budget-unaccounted maps per partition would make the
// pressure worse).
func (x *aggExec) partitionStore(input tableStore, depth int, out tableStore, recurse func(tableStore, int, tableStore) error) error {
	savedHint := x.groupHint
	x.groupHint = savedHint / defaultFanout
	defer func() { x.groupHint = savedHint }()
	fanout := defaultFanout
	parts := make([]tableStore, fanout)
	for i := range parts {
		parts[i] = x.ctx.env.newStore()
	}
	it, err := input.Cursor()
	if err != nil {
		releaseStores(parts)
		return err
	}
	var seen int64
	for {
		if seen%batchSize == 0 {
			if err := x.ctx.cancelled(); err != nil {
				releaseStores(parts)
				return err
			}
		}
		seen++
		tuple, ok, err := it.Next()
		if err != nil {
			releaseStores(parts)
			return err
		}
		if !ok {
			break
		}
		idx := x.partitionIndex(tuple, depth, fanout)
		if err := parts[idx].Append(tuple); err != nil {
			releaseStores(parts)
			return err
		}
	}
	for _, p := range parts {
		if err := p.Freeze(); err != nil {
			releaseStores(parts)
			return err
		}
	}
	defer releaseStores(parts)
	for _, p := range parts {
		if p.Len() == 0 {
			continue
		}
		if err := recurse(p, depth+1, out); err != nil {
			return err
		}
	}
	return nil
}
