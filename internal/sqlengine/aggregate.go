package sqlengine

import (
	"fmt"
	"strconv"
)

// aggCall describes one aggregate computation extracted from the query.
type aggCall struct {
	Name     string // uppercase aggregate name
	Distinct bool
	Arg      Expr // nil for COUNT(*)
}

// aggNode evaluates GROUP BY aggregation. Its output schema is the group
// expressions (qualified "#grp") followed by aggregate results
// (qualified "#agg"); the planner rewrites the surrounding SELECT to
// reference those synthetic columns. DISTINCT is lowered onto this node
// with all output columns as group keys and no aggregates.
//
// Execution is streaming: input batches are aggregated directly into a
// hash table (group keys and aggregate arguments evaluated vectorized),
// with no materialization of the input. When the hash table outgrows the
// memory budget, accumulated groups are dumped as partial-aggregate
// tuples — every built-in non-DISTINCT aggregate decomposes into 1–2
// mergeable values — and the rest of the input is converted to the same
// partial form; the partial store is then merge-aggregated with
// recursive grace partitioning, so grouping works beyond the budget.
// DISTINCT aggregates are not decomposable and take the legacy path:
// materialize evaluated tuples first, then aggregate recursively.
type aggNode struct {
	child   planNode
	groupBy []Expr
	aggs    []aggCall
}

func (n *aggNode) schema() planSchema {
	out := make(planSchema, 0, len(n.groupBy)+len(n.aggs))
	for i := range n.groupBy {
		out = append(out, planCol{table: "#grp", name: "g" + strconv.Itoa(i)})
	}
	for i := range n.aggs {
		out = append(out, planCol{table: "#agg", name: "a" + strconv.Itoa(i)})
	}
	return out
}

func (n *aggNode) open(ctx *execCtx) (batchIter, error) {
	childSchema := n.child.schema()
	// compile builds the group-key and aggregate-argument evaluators.
	// Deferred to the path that runs: the morsel path compiles
	// worker-private copies instead (and surfaces the same errors).
	compile := func() (groupC, argC []vecExpr, err error) {
		if groupC, err = ctx.compileVecAll(n.groupBy, childSchema); err != nil {
			return nil, nil, err
		}
		argC = make([]vecExpr, len(n.aggs))
		for i, a := range n.aggs {
			if a.Arg == nil {
				continue
			}
			if argC[i], err = ctx.compileVec(a.Arg, childSchema); err != nil {
				return nil, nil, err
			}
		}
		return groupC, argC, nil
	}

	exec := newAggExec(ctx, len(n.groupBy), n.aggs)
	out := newRowStore(ctx.env)
	width := len(n.groupBy) + len(n.aggs)
	fail := func(err error) (batchIter, error) {
		out.Release()
		return nil, err
	}

	var rowsSeen bool
	done := false
	if exec.streamable() {
		// The morsel path engages whenever the child pipeline can be
		// morselized — for any worker count, including 1 — so the
		// floating-point merge order and output order depend only on the
		// data, never on the Parallelism setting (see parallel_agg.go).
		streams, ok, perr := openMorselStreams(n.child, ctx, aggWorkers(ctx))
		if perr != nil {
			return fail(perr)
		}
		if ok {
			rowsSeen, perr = exec.morselAggregate(n, streams, out)
			if perr == nil {
				done = true
			} else if perr != errParallelFallback {
				return fail(perr)
			}
			// errParallelFallback: reservations are released and streams
			// closed; re-run below on a fresh serial child, which spills.
		}
	}
	if !done {
		groupC, argC, err := compile()
		if err != nil {
			return fail(err)
		}
		child, err := n.child.open(ctx)
		if err != nil {
			return fail(err)
		}
		if exec.streamable() {
			rowsSeen, err = exec.streamAggregate(child, groupC, argC, out)
			child.Close()
			if err != nil {
				return fail(err)
			}
		} else {
			input, merr := n.materializeTuples(ctx, child, groupC, argC)
			child.Close()
			if merr != nil {
				return fail(merr)
			}
			rowsSeen = input.Len() > 0
			err = exec.aggregateStore(input, 0, out)
			input.Release()
			if err != nil {
				return fail(err)
			}
		}
	}

	// Global aggregation over empty input yields one default row.
	if len(n.groupBy) == 0 && out.Len() == 0 && !rowsSeen {
		row := make(Row, len(n.aggs))
		for i, a := range n.aggs {
			st, err := newAggState(a.Name, a.Distinct)
			if err != nil {
				return fail(err)
			}
			row[i] = st.result()
		}
		if err := out.Append(row); err != nil {
			return fail(err)
		}
	}
	if err := out.Freeze(); err != nil {
		return fail(err)
	}
	return newOwnedStoreIter(out, width)
}

// materializeTuples drains the child, evaluating group keys and
// aggregate arguments vectorized, and stores one tuple per input row
// (the legacy path, required for DISTINCT aggregates).
func (n *aggNode) materializeTuples(ctx *execCtx, child batchIter, groupC []vecExpr, argC []vecExpr) (*RowStore, error) {
	input := newRowStore(ctx.env)
	nGroup := len(groupC)
	tupleWidth := nGroup + len(argC)
	groupCols := make([]colVec, nGroup)
	argCols := make([]colVec, len(argC))
	for {
		b, err := child.NextBatch()
		if err != nil {
			input.Release()
			return nil, err
		}
		if b == nil {
			break
		}
		sel, err := evalGroupArgs(b, groupC, argC, groupCols, argCols)
		if err != nil {
			input.Release()
			return nil, err
		}
		for _, pos := range sel {
			tuple := make(Row, tupleWidth)
			for i := 0; i < nGroup; i++ {
				tuple[i] = groupCols[i][pos]
			}
			for i := range argC {
				if argC[i] == nil { // COUNT(*): presence marker
					tuple[nGroup+i] = NewBool(true)
					continue
				}
				tuple[nGroup+i] = argCols[i][pos]
			}
			if err := input.Append(tuple); err != nil {
				input.Release()
				return nil, err
			}
		}
	}
	if err := input.Freeze(); err != nil {
		input.Release()
		return nil, err
	}
	return input, nil
}

// evalGroupArgs evaluates group-key and aggregate-argument expressions
// over one batch, filling the provided column slices.
func evalGroupArgs(b *rowBatch, groupC, argC []vecExpr, groupCols, argCols []colVec) ([]int, error) {
	sel := b.selection()
	for i, g := range groupC {
		col, err := g(b, sel)
		if err != nil {
			return nil, err
		}
		groupCols[i] = col
	}
	for i, a := range argC {
		if a == nil {
			continue
		}
		col, err := a(b, sel)
		if err != nil {
			return nil, err
		}
		argCols[i] = col
	}
	return sel, nil
}

type aggExec struct {
	ctx    *execCtx
	nGroup int
	aggs   []aggCall
	// Partial-tuple layout for the streaming spill path: per-aggregate
	// slot offsets within the partial section of a tuple.
	partOffs  []int
	partTotal int
}

func newAggExec(ctx *execCtx, nGroup int, aggs []aggCall) *aggExec {
	x := &aggExec{ctx: ctx, nGroup: nGroup, aggs: aggs, partOffs: make([]int, len(aggs))}
	for i, a := range aggs {
		x.partOffs[i] = x.partTotal
		x.partTotal += partialWidth(a.Name)
	}
	return x
}

// streamable reports whether the streaming partial-spill path applies:
// DISTINCT aggregates need the full input and use the legacy path.
func (x *aggExec) streamable() bool {
	for _, a := range x.aggs {
		if a.Distinct {
			return false
		}
	}
	return true
}

// partialWidth is the number of Values an aggregate's mergeable partial
// state occupies in a spilled tuple.
func partialWidth(name string) int {
	if name == "AVG" {
		return 2 // (sum, count)
	}
	return 1
}

type aggGroup struct {
	keyVals Row
	states  []aggState
}

// groupTable is the aggregation hash table: single-column integer-like
// group keys use an int64-keyed map (no key encoding or string
// allocation per row — see intKey for why the split preserves grouping
// semantics), everything else the encoded string key. order preserves
// first-seen order for deterministic output.
type groupTable[G any] struct {
	useInt bool
	ints   map[int64]G
	strs   map[string]G
	order  []G
}

func newGroupTable[G any](nGroup int) *groupTable[G] {
	return &groupTable[G]{useInt: nGroup == 1, ints: make(map[int64]G), strs: make(map[string]G)}
}

// get looks up the group for a key (the first nGroup values of key).
func (t *groupTable[G]) get(key Row) (G, bool) {
	if t.useInt {
		if ik, ok := intKey(key[0]); ok {
			g, found := t.ints[ik]
			return g, found
		}
	}
	g, found := t.strs[encodeRowKey(key)]
	return g, found
}

// put files g under key and appends it to the first-seen order.
func (t *groupTable[G]) put(key Row, g G) {
	if t.useInt {
		if ik, ok := intKey(key[0]); ok {
			t.ints[ik] = g
			t.order = append(t.order, g)
			return
		}
	}
	t.strs[encodeRowKey(key)] = g
	t.order = append(t.order, g)
}

// streamAggregate drains child batches into the hash table; on budget
// overflow it switches to the partial-spill path. rowsSeen reports
// whether any input row was consumed.
func (x *aggExec) streamAggregate(child batchIter, groupC, argC []vecExpr, out *RowStore) (bool, error) {
	budget := x.ctx.env.budget
	table := newGroupTable[*aggGroup](x.nGroup)
	var reserved int64
	releaseAll := func() {
		budget.release(reserved)
		reserved = 0
		table = nil
	}

	groupCols := make([]colVec, len(groupC))
	argCols := make([]colVec, len(argC))
	keyBuf := make(Row, x.nGroup)
	rowsSeen := false

	for {
		b, err := child.NextBatch()
		if err != nil {
			releaseAll()
			return rowsSeen, err
		}
		if b == nil {
			break
		}
		sel, err := evalGroupArgs(b, groupC, argC, groupCols, argCols)
		if err != nil {
			releaseAll()
			return rowsSeen, err
		}
		rowsSeen = rowsSeen || len(sel) > 0
		for si, pos := range sel {
			for i := 0; i < x.nGroup; i++ {
				keyBuf[i] = groupCols[i][pos]
			}
			var g *aggGroup
			ik, isInt := int64(0), false
			if table.useInt {
				ik, isInt = intKey(keyBuf[0])
			}
			if isInt {
				g = table.ints[ik]
			} else {
				g = table.strs[encodeRowKey(keyBuf)]
			}
			if g == nil {
				need := rowBytes(keyBuf) + mapEntryBytes + int64(len(x.aggs))*48
				if !budget.tryReserve(need) {
					// See joinStores: blocking operators may claim a
					// small working floor before giving up.
					if reserved+need > x.ctx.env.workingFloor {
						// Overflow: dump groups and the rest of the
						// stream as mergeable partial tuples.
						order := table.order
						releaseAll()
						if !x.ctx.env.spillEnabled {
							return rowsSeen, errBudget
						}
						return true, x.spillAndMerge(child, groupC, argC, order, sel[si:], groupCols, argCols, out)
					}
					budget.reserveForce(need)
				}
				reserved += need
				g = &aggGroup{keyVals: cloneRow(keyBuf), states: make([]aggState, len(x.aggs))}
				for i, a := range x.aggs {
					st, err := newAggState(a.Name, a.Distinct)
					if err != nil {
						releaseAll()
						return rowsSeen, err
					}
					g.states[i] = st
				}
				if isInt {
					table.ints[ik] = g
				} else {
					table.strs[encodeRowKey(keyBuf)] = g
				}
				table.order = append(table.order, g)
			}
			for i := range x.aggs {
				var v Value
				if argC[i] == nil {
					v = NewBool(true) // COUNT(*): presence marker
				} else {
					v = argCols[i][pos]
				}
				if err := g.states[i].add(v, true); err != nil {
					releaseAll()
					return rowsSeen, err
				}
			}
		}
	}

	defer releaseAll()
	for _, g := range table.order {
		row := make(Row, x.nGroup+len(x.aggs))
		copy(row, g.keyVals)
		for i, st := range g.states {
			row[x.nGroup+i] = st.result()
		}
		if err := out.Append(row); err != nil {
			return true, err
		}
	}
	return rowsSeen, nil
}

// spillAndMerge handles streaming overflow: accumulated groups are
// dumped as partial tuples (in first-seen order, keeping output
// deterministic), the rest of the input is converted row-by-row to the
// same partial form, and the combined store is merge-aggregated.
func (x *aggExec) spillAndMerge(child batchIter, groupC, argC []vecExpr, dumped []*aggGroup, curSel []int, groupCols, argCols []colVec, out *RowStore) error {
	partials := newRowStore(x.ctx.env)
	fail := func(err error) error {
		partials.Release()
		return err
	}
	for _, g := range dumped {
		row := make(Row, x.nGroup+x.partTotal)
		copy(row, g.keyVals)
		dst := row[x.nGroup:x.nGroup]
		for _, st := range g.states {
			dst = st.(partialDumper).partial(dst)
		}
		if err := partials.Append(row); err != nil {
			return fail(err)
		}
	}
	appendRaw := func(sel []int, groupCols, argCols []colVec) error {
		for _, pos := range sel {
			row := make(Row, x.nGroup+x.partTotal)
			for i := 0; i < x.nGroup; i++ {
				row[i] = groupCols[i][pos]
			}
			for i, a := range x.aggs {
				var v Value
				if argC[i] != nil {
					v = argCols[i][pos]
				}
				if err := rawPartial(a.Name, argC[i] == nil, v, row[x.nGroup+x.partOffs[i]:]); err != nil {
					return err
				}
			}
			if err := partials.Append(row); err != nil {
				return err
			}
		}
		return nil
	}
	// The unconsumed tail of the current batch, then the rest of the
	// stream.
	if err := appendRaw(curSel, groupCols, argCols); err != nil {
		return fail(err)
	}
	for {
		b, err := child.NextBatch()
		if err != nil {
			return fail(err)
		}
		if b == nil {
			break
		}
		sel, err := evalGroupArgs(b, groupC, argC, groupCols, argCols)
		if err != nil {
			return fail(err)
		}
		if err := appendRaw(sel, groupCols, argCols); err != nil {
			return fail(err)
		}
	}
	if err := partials.Freeze(); err != nil {
		return fail(err)
	}
	defer partials.Release()
	return x.mergeStore(partials, 0, out)
}

// rawPartial writes the single-row partial representation of an
// aggregate input value into dst.
func rawPartial(name string, star bool, v Value, dst Row) error {
	switch name {
	case "COUNT":
		if star || !v.IsNull() {
			dst[0] = NewInt(1)
		} else {
			dst[0] = NewInt(0)
		}
	case "SUM", "TOTAL", "MIN", "MAX":
		dst[0] = v
	case "AVG":
		if v.IsNull() {
			dst[0], dst[1] = NewFloat(0), NewInt(0)
			return nil
		}
		f, err := v.AsFloat()
		if err != nil {
			return err
		}
		dst[0], dst[1] = NewFloat(f), NewInt(1)
	default:
		return fmt.Errorf("sqlengine: aggregate %s cannot be spilled as a partial", name)
	}
	return nil
}

// mergeAcc accumulates mergeable partial states for one aggregate.
// (Merge levels re-read their input store on overflow, so unlike the
// streaming level they never need to dump partials again.)
type mergeAcc interface {
	merge(slots []Value) error
	result() Value
}

// scalarMergeAcc merges single-slot partials through an underlying
// aggState whose add() is associative over partials (SUM/TOTAL merge via
// summation, MIN/MAX via comparison, COUNT via summation of counts).
type scalarMergeAcc struct {
	st aggState
}

func (m *scalarMergeAcc) merge(slots []Value) error { return m.st.add(slots[0], true) }
func (m *scalarMergeAcc) result() Value             { return m.st.result() }

// avgMergeAcc merges (sum, count) pairs.
type avgMergeAcc struct {
	f float64
	n int64
}

func (m *avgMergeAcc) merge(slots []Value) error {
	n, err := slots[1].AsInt()
	if err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	f, err := slots[0].AsFloat()
	if err != nil {
		return err
	}
	m.f += f
	m.n += n
	return nil
}

func (m *avgMergeAcc) result() Value {
	if m.n == 0 {
		return Null
	}
	return NewFloat(m.f / float64(m.n))
}

func newMergeAcc(name string) (mergeAcc, error) {
	switch name {
	case "COUNT", "SUM":
		return &scalarMergeAcc{st: &sumAgg{}}, nil
	case "TOTAL":
		return &scalarMergeAcc{st: &sumAgg{total: true}}, nil
	case "AVG":
		return &avgMergeAcc{}, nil
	case "MIN":
		return &scalarMergeAcc{st: &minMaxAgg{min: true}}, nil
	case "MAX":
		return &scalarMergeAcc{st: &minMaxAgg{}}, nil
	}
	return nil, fmt.Errorf("sqlengine: aggregate %s cannot be merged", name)
}

type mergeGroup struct {
	keyVals Row
	accs    []mergeAcc
}

// mergeStore merge-aggregates a store of partial tuples; under memory
// pressure it partitions the store by group-key hash and recurses.
func (x *aggExec) mergeStore(input *RowStore, depth int, out *RowStore) error {
	budget := x.ctx.env.budget
	table := newGroupTable[*mergeGroup](x.nGroup)
	var reserved int64
	releaseAll := func() {
		budget.release(reserved)
		reserved = 0
		table = nil
	}

	it, err := input.Iterator()
	if err != nil {
		return err
	}
	overflow := false
	for {
		tuple, ok, err := it.Next()
		if err != nil {
			releaseAll()
			return err
		}
		if !ok {
			break
		}
		var g *mergeGroup
		ik, isInt := int64(0), false
		if table.useInt {
			ik, isInt = intKey(tuple[0])
		}
		if isInt {
			g = table.ints[ik]
		} else {
			g = table.strs[encodeRowKey(tuple[:x.nGroup])]
		}
		if g == nil {
			need := rowBytes(tuple) + mapEntryBytes + int64(len(x.aggs))*48
			if !budget.tryReserve(need) {
				if reserved+need > x.ctx.env.workingFloor {
					overflow = true
					break
				}
				budget.reserveForce(need)
			}
			reserved += need
			g = &mergeGroup{keyVals: cloneRow(tuple[:x.nGroup]), accs: make([]mergeAcc, len(x.aggs))}
			for i, a := range x.aggs {
				acc, err := newMergeAcc(a.Name)
				if err != nil {
					releaseAll()
					return err
				}
				g.accs[i] = acc
			}
			if isInt {
				table.ints[ik] = g
			} else {
				table.strs[encodeRowKey(tuple[:x.nGroup])] = g
			}
			table.order = append(table.order, g)
		}
		for i := range x.aggs {
			off := x.nGroup + x.partOffs[i]
			if err := g.accs[i].merge(tuple[off : off+partialWidth(x.aggs[i].Name)]); err != nil {
				releaseAll()
				return err
			}
		}
	}

	if overflow {
		releaseAll()
		if !x.ctx.env.spillEnabled {
			return errBudget
		}
		if depth >= maxGraceDepth {
			return fmt.Errorf("sqlengine: aggregation exceeded maximum partitioning depth %d", maxGraceDepth)
		}
		return x.partitionStore(input, depth, out, x.mergeStore)
	}
	defer releaseAll()

	for _, g := range table.order {
		row := make(Row, x.nGroup+len(x.aggs))
		copy(row, g.keyVals)
		for i, acc := range g.accs {
			row[x.nGroup+i] = acc.result()
		}
		if err := out.Append(row); err != nil {
			return err
		}
	}
	return nil
}

// aggregateStore hash-aggregates one store of raw tuples (the legacy
// DISTINCT-capable path); under memory pressure it splits the store into
// partitions by group-key hash and recurses.
func (x *aggExec) aggregateStore(input *RowStore, depth int, out *RowStore) error {
	budget := x.ctx.env.budget
	table := newGroupTable[*aggGroup](x.nGroup)
	var reserved int64
	releaseAll := func() {
		budget.release(reserved)
		reserved = 0
		table = nil
	}

	it, err := input.Iterator()
	if err != nil {
		return err
	}
	overflow := false
	for {
		tuple, ok, err := it.Next()
		if err != nil {
			releaseAll()
			return err
		}
		if !ok {
			break
		}
		var g *aggGroup
		ik, isInt := int64(0), false
		if table.useInt {
			ik, isInt = intKey(tuple[0])
		}
		if isInt {
			g = table.ints[ik]
		} else {
			g = table.strs[encodeRowKey(tuple[:x.nGroup])]
		}
		if g == nil {
			need := rowBytes(tuple) + mapEntryBytes + int64(len(x.aggs))*48
			if !budget.tryReserve(need) {
				// See joinStores: allow a working floor so recursive
				// partitioning always shrinks the per-level state.
				if reserved+need > x.ctx.env.workingFloor {
					overflow = true
					break
				}
				budget.reserveForce(need)
			}
			reserved += need
			g = &aggGroup{keyVals: cloneRow(tuple[:x.nGroup]), states: make([]aggState, len(x.aggs))}
			for i, a := range x.aggs {
				st, err := newAggState(a.Name, a.Distinct)
				if err != nil {
					releaseAll()
					return err
				}
				g.states[i] = st
			}
			if isInt {
				table.ints[ik] = g
			} else {
				table.strs[encodeRowKey(tuple[:x.nGroup])] = g
			}
			table.order = append(table.order, g)
		}
		for i := range x.aggs {
			v := tuple[x.nGroup+i]
			if err := g.states[i].add(v, true); err != nil {
				releaseAll()
				return err
			}
		}
	}

	if overflow {
		releaseAll()
		if !x.ctx.env.spillEnabled {
			return errBudget
		}
		if depth >= maxGraceDepth {
			return fmt.Errorf("sqlengine: aggregation exceeded maximum partitioning depth %d", maxGraceDepth)
		}
		return x.partitionStore(input, depth, out, x.aggregateStore)
	}
	defer releaseAll()

	for _, g := range table.order {
		row := make(Row, x.nGroup+len(x.aggs))
		copy(row, g.keyVals)
		for i, st := range g.states {
			row[x.nGroup+i] = st.result()
		}
		if err := out.Append(row); err != nil {
			return err
		}
	}
	return nil
}

// partitionIndex buckets a tuple by its group key, using the integer
// mix for normalizable single-column keys (consistent across recursion
// levels because normalization is deterministic).
func (x *aggExec) partitionIndex(tuple Row, depth, fanout int) int {
	if x.nGroup == 1 {
		if ik, ok := intKey(tuple[0]); ok {
			return hashPartitionInt(ik, depth, fanout)
		}
	}
	return hashPartition(encodeRowKey(tuple[:x.nGroup]), depth, fanout)
}

// partitionStore splits a tuple store into fanout hash partitions and
// applies recurse to each non-empty one at depth+1.
func (x *aggExec) partitionStore(input *RowStore, depth int, out *RowStore, recurse func(*RowStore, int, *RowStore) error) error {
	fanout := defaultFanout
	parts := make([]*RowStore, fanout)
	for i := range parts {
		parts[i] = newRowStore(x.ctx.env)
	}
	it, err := input.Iterator()
	if err != nil {
		releaseStores(parts)
		return err
	}
	for {
		tuple, ok, err := it.Next()
		if err != nil {
			releaseStores(parts)
			return err
		}
		if !ok {
			break
		}
		idx := x.partitionIndex(tuple, depth, fanout)
		if err := parts[idx].Append(tuple); err != nil {
			releaseStores(parts)
			return err
		}
	}
	for _, p := range parts {
		if err := p.Freeze(); err != nil {
			releaseStores(parts)
			return err
		}
	}
	defer releaseStores(parts)
	for _, p := range parts {
		if p.Len() == 0 {
			continue
		}
		if err := recurse(p, depth+1, out); err != nil {
			return err
		}
	}
	return nil
}
