package sqlengine

import (
	"fmt"
	"strconv"
)

// aggCall describes one aggregate computation extracted from the query.
type aggCall struct {
	Name     string // uppercase aggregate name
	Distinct bool
	Arg      Expr // nil for COUNT(*)
}

// aggNode evaluates GROUP BY aggregation. Its output schema is the group
// expressions (qualified "#grp") followed by aggregate results
// (qualified "#agg"); the planner rewrites the surrounding SELECT to
// reference those synthetic columns. DISTINCT is lowered onto this node
// with all output columns as group keys and no aggregates.
//
// The node first materializes evaluated (group key, aggregate argument)
// tuples into a spillable store, then aggregates hash-partitions of that
// store recursively, so grouping works beyond the memory budget.
type aggNode struct {
	child   planNode
	groupBy []Expr
	aggs    []aggCall
}

func (n *aggNode) schema() planSchema {
	out := make(planSchema, 0, len(n.groupBy)+len(n.aggs))
	for i := range n.groupBy {
		out = append(out, planCol{table: "#grp", name: "g" + strconv.Itoa(i)})
	}
	for i := range n.aggs {
		out = append(out, planCol{table: "#agg", name: "a" + strconv.Itoa(i)})
	}
	return out
}

func (n *aggNode) open(ctx *execCtx) (rowIter, error) {
	childSchema := n.child.schema()
	groupC, err := compileAll(ctx, n.groupBy, childSchema)
	if err != nil {
		return nil, err
	}
	argC := make([]compiledExpr, len(n.aggs))
	for i, a := range n.aggs {
		if a.Arg == nil {
			continue
		}
		c, err := ctx.compile(a.Arg, childSchema)
		if err != nil {
			return nil, err
		}
		argC[i] = c
	}

	child, err := n.child.open(ctx)
	if err != nil {
		return nil, err
	}
	// Materialize [group values..., agg arguments...] rows.
	input := newRowStore(ctx.env)
	for {
		row, ok, err := child.Next()
		if err != nil {
			child.Close()
			input.Release()
			return nil, err
		}
		if !ok {
			break
		}
		tuple := make(Row, len(groupC)+len(argC))
		for i, g := range groupC {
			v, err := g(row)
			if err != nil {
				child.Close()
				input.Release()
				return nil, err
			}
			tuple[i] = v
		}
		for i, a := range argC {
			if a == nil { // COUNT(*): presence marker
				tuple[len(groupC)+i] = NewBool(true)
				continue
			}
			v, err := a(row)
			if err != nil {
				child.Close()
				input.Release()
				return nil, err
			}
			tuple[len(groupC)+i] = v
		}
		if err := input.Append(tuple); err != nil {
			child.Close()
			input.Release()
			return nil, err
		}
	}
	child.Close()
	if err := input.Freeze(); err != nil {
		input.Release()
		return nil, err
	}
	defer input.Release()

	out := newRowStore(ctx.env)
	exec := &aggExec{ctx: ctx, nGroup: len(n.groupBy), aggs: n.aggs}
	if err := exec.aggregateStore(input, 0, out); err != nil {
		out.Release()
		return nil, err
	}
	// Global aggregation over empty input yields one default row.
	if len(n.groupBy) == 0 && out.Len() == 0 && input.Len() == 0 {
		row := make(Row, len(n.aggs))
		for i, a := range n.aggs {
			st, err := newAggState(a.Name, a.Distinct)
			if err != nil {
				out.Release()
				return nil, err
			}
			row[i] = st.result()
		}
		if err := out.Append(row); err != nil {
			out.Release()
			return nil, err
		}
	}
	if err := out.Freeze(); err != nil {
		out.Release()
		return nil, err
	}
	return newOwnedStoreIter(out)
}

type aggExec struct {
	ctx    *execCtx
	nGroup int
	aggs   []aggCall
}

type aggGroup struct {
	keyVals Row
	states  []aggState
}

// aggregateStore hash-aggregates one store; under memory pressure it
// splits the store into partitions by group-key hash and recurses.
func (x *aggExec) aggregateStore(input *RowStore, depth int, out *RowStore) error {
	budget := x.ctx.env.budget
	groups := make(map[string]*aggGroup)
	var order []string // first-seen order for deterministic output
	var reserved int64
	releaseAll := func() {
		budget.release(reserved)
		reserved = 0
		groups = nil
		order = nil
	}

	it, err := input.Iterator()
	if err != nil {
		return err
	}
	overflow := false
	for {
		tuple, ok, err := it.Next()
		if err != nil {
			releaseAll()
			return err
		}
		if !ok {
			break
		}
		key := encodeRowKey(tuple[:x.nGroup])
		g := groups[key]
		if g == nil {
			need := rowBytes(tuple) + mapEntryBytes + int64(len(x.aggs))*48
			if !budget.tryReserve(need) {
				// See joinStores: allow a working floor so recursive
				// partitioning always shrinks the per-level state.
				if reserved+need > x.ctx.env.workingFloor {
					overflow = true
					break
				}
				budget.reserveForce(need)
			}
			reserved += need
			g = &aggGroup{keyVals: cloneRow(tuple[:x.nGroup]), states: make([]aggState, len(x.aggs))}
			for i, a := range x.aggs {
				st, err := newAggState(a.Name, a.Distinct)
				if err != nil {
					releaseAll()
					return err
				}
				g.states[i] = st
			}
			groups[key] = g
			order = append(order, key)
		}
		for i := range x.aggs {
			v := tuple[x.nGroup+i]
			if err := g.states[i].add(v, true); err != nil {
				releaseAll()
				return err
			}
		}
	}

	if overflow {
		releaseAll()
		if !x.ctx.env.spillEnabled {
			return errBudget
		}
		if depth >= maxGraceDepth {
			return fmt.Errorf("sqlengine: aggregation exceeded maximum partitioning depth %d", maxGraceDepth)
		}
		return x.partitionAndRecurse(input, depth, out)
	}
	defer releaseAll()

	for _, key := range order {
		g := groups[key]
		row := make(Row, x.nGroup+len(x.aggs))
		copy(row, g.keyVals)
		for i, st := range g.states {
			row[x.nGroup+i] = st.result()
		}
		if err := out.Append(row); err != nil {
			return err
		}
	}
	return nil
}

func (x *aggExec) partitionAndRecurse(input *RowStore, depth int, out *RowStore) error {
	fanout := defaultFanout
	parts := make([]*RowStore, fanout)
	for i := range parts {
		parts[i] = newRowStore(x.ctx.env)
	}
	it, err := input.Iterator()
	if err != nil {
		releaseStores(parts)
		return err
	}
	for {
		tuple, ok, err := it.Next()
		if err != nil {
			releaseStores(parts)
			return err
		}
		if !ok {
			break
		}
		key := encodeRowKey(tuple[:x.nGroup])
		idx := hashPartition(key, depth, fanout)
		if err := parts[idx].Append(tuple); err != nil {
			releaseStores(parts)
			return err
		}
	}
	for _, p := range parts {
		if err := p.Freeze(); err != nil {
			releaseStores(parts)
			return err
		}
	}
	defer releaseStores(parts)
	for _, p := range parts {
		if p.Len() == 0 {
			continue
		}
		if err := x.aggregateStore(p, depth+1, out); err != nil {
			return err
		}
	}
	return nil
}
