package sqlengine

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden plan snapshots")

// TestGoldenPlans is the plan-regression gate: EXPLAIN output for a
// fixed schema and query set is pinned under testdata/plans/. An
// accidental plan change — a rule firing differently, an estimate
// shifting, a physical choice flipping — fails CI with a readable
// diff. Regenerate intentionally with:
//
//	go test ./internal/sqlengine -run TestGoldenPlans -update
func TestGoldenPlans(t *testing.T) {
	db := newOptDB(t, Config{Parallelism: 1}) // pin the header's worker count
	setup := []string{
		"CREATE TABLE t0 (s INTEGER, r REAL, i REAL)",
		"CREATE TABLE h (in_s INTEGER, out_s INTEGER, r REAL, i REAL)",
		"INSERT INTO h VALUES (0,0,0.7071067811865476,0.0),(0,1,0.7071067811865476,0.0),(1,0,0.7071067811865476,0.0),(1,1,-0.7071067811865476,0.0)",
		"CREATE TABLE wide (a INTEGER, b REAL, c TEXT, d INTEGER)",
		"CREATE TABLE small (id INTEGER, name TEXT)",
		"CREATE TABLE big (id INTEGER, v INTEGER)",
		"INSERT INTO small VALUES (1, 'a'), (2, 'b'), (3, 'c')",
		"INSERT INTO wide VALUES (1, 2.0, 'x', 4)",
	}
	for _, s := range setup {
		mustExec(t, db, s)
	}
	var t0 []string
	for k := 0; k < 4096; k++ {
		t0 = append(t0, fmt.Sprintf("(%d, 0.015625, 0.0)", k))
		if len(t0) == 512 {
			mustExec(t, db, "INSERT INTO t0 VALUES "+strings.Join(t0, ","))
			t0 = t0[:0]
		}
	}
	fillSequence(t, db, "big", 6000)

	cases := []struct {
		name  string
		query string
	}{
		{"gate_stage", `WITH t1 AS (
			SELECT ((t0.s & ~1) | h.out_s) AS s,
			       SUM((t0.r * h.r) - (t0.i * h.i)) AS r,
			       SUM((t0.r * h.i) + (t0.i * h.r)) AS i
			FROM t0 JOIN h ON h.in_s = (t0.s & 1)
			GROUP BY ((t0.s & ~1) | h.out_s)
		) SELECT s, r, i FROM t1 ORDER BY s`},
		{"gate_chain", `WITH c1 AS (
			SELECT ((t0.s & ~1) | h.out_s) AS s,
			       SUM((t0.r * h.r) - (t0.i * h.i)) AS r,
			       SUM((t0.r * h.i) + (t0.i * h.r)) AS i
			FROM t0 JOIN h ON h.in_s = (t0.s & 1)
			GROUP BY ((t0.s & ~1) | h.out_s)
		), c2 AS (
			SELECT ((c1.s & ~1) | h.out_s) AS s,
			       SUM((c1.r * h.r) - (c1.i * h.i)) AS r,
			       SUM((c1.r * h.i) + (c1.i * h.r)) AS i
			FROM c1 JOIN h ON h.in_s = (c1.s & 1)
			GROUP BY ((c1.s & ~1) | h.out_s)
		), c3 AS (
			SELECT ((c2.s & ~1) | h.out_s) AS s,
			       SUM((c2.r * h.r) - (c2.i * h.i)) AS r,
			       SUM((c2.r * h.i) + (c2.i * h.r)) AS i
			FROM c2 JOIN h ON h.in_s = (c2.s & 1)
			GROUP BY ((c2.s & ~1) | h.out_s)
		), c4 AS (
			SELECT ((c3.s & ~1) | h.out_s) AS s,
			       SUM((c3.r * h.r) - (c3.i * h.i)) AS r,
			       SUM((c3.r * h.i) + (c3.i * h.r)) AS i
			FROM c3 JOIN h ON h.in_s = (c3.s & 1)
			GROUP BY ((c3.s & ~1) | h.out_s)
		) SELECT s, r, i FROM c4 ORDER BY s`},
		{"pushdown_join", "SELECT small.name FROM small JOIN big ON big.id = small.id WHERE big.v > 10 AND small.name = 'a'"},
		{"pruned_scan", "SELECT a FROM wide WHERE a > 1 + 1"},
		{"cte_inlined", "WITH u AS (SELECT a, b FROM wide WHERE a < 10) SELECT b FROM u WHERE b > 0.5"},
		{"cte_shared", "WITH u AS (SELECT id FROM small) SELECT x.id FROM u x JOIN u y ON x.id = y.id"},
		{"build_side_flip", "SELECT small.name, big.v FROM small JOIN big ON big.id = small.id"},
		{"join_reorder", "SELECT t0.s, big.v, small.id FROM t0 JOIN big ON big.id = t0.s JOIN small ON small.id = t0.s"},
	}
	dir := filepath.Join("testdata", "plans")
	if *updateGolden {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan, err := db.Explain(tc.query)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, tc.name+".golden")
			if *updateGolden {
				if err := os.WriteFile(path, []byte(plan), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden snapshot (run with -update): %v", err)
			}
			if plan != string(want) {
				t.Errorf("plan changed for %s.\n--- want\n%s\n--- got\n%s", tc.name, want, plan)
			}
		})
	}
}
