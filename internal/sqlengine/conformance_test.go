package sqlengine

import (
	"testing"
)

// SQL semantics conformance: three-valued logic, aggregate edge cases,
// and clause interactions that the translator and Output Layer queries
// rely on.

func TestThreeValuedLogicTruthTable(t *testing.T) {
	db := newTestDB(t)
	// Render each combination of TRUE/FALSE/NULL through AND and OR.
	cases := []struct {
		sql  string
		want string // "TRUE", "FALSE", or "NULL"
	}{
		{"SELECT TRUE AND TRUE", "TRUE"},
		{"SELECT TRUE AND FALSE", "FALSE"},
		{"SELECT TRUE AND NULL", "NULL"},
		{"SELECT FALSE AND NULL", "FALSE"}, // short-circuit: false wins
		{"SELECT NULL AND NULL", "NULL"},
		{"SELECT TRUE OR NULL", "TRUE"}, // short-circuit: true wins
		{"SELECT FALSE OR NULL", "NULL"},
		{"SELECT FALSE OR FALSE", "FALSE"},
		{"SELECT NOT NULL", "NULL"},
		{"SELECT NOT FALSE", "TRUE"},
		{"SELECT NULL = NULL", "NULL"},
		{"SELECT NULL != NULL", "NULL"},
		{"SELECT 1 = NULL", "NULL"},
		{"SELECT NULL IS NULL", "TRUE"},
		{"SELECT 1 IS NOT NULL", "TRUE"},
	}
	for _, tc := range cases {
		rows := queryAll(t, db, tc.sql)
		got := rows[0][0].String()
		if got != tc.want {
			t.Errorf("%s = %s, want %s", tc.sql, got, tc.want)
		}
	}
}

func TestAggregateEdgeCases(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (x INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (NULL), (NULL)")
	// COUNT(*) counts rows; COUNT(x) skips NULLs; SUM of all-NULL is
	// NULL but TOTAL is 0.0.
	rows := queryAll(t, db, "SELECT COUNT(*), COUNT(x), SUM(x), TOTAL(x), AVG(x) FROM t")
	r := rows[0]
	if r[0].I != 2 || r[1].I != 0 || !r[2].IsNull() || r[3].F != 0 || !r[4].IsNull() {
		t.Fatalf("row = %v", r)
	}
	// Mixed int/float SUM promotes to float.
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	mustExec(t, db, "CREATE TABLE f (x REAL)")
	mustExec(t, db, "INSERT INTO f VALUES (1.5), (2)")
	rows = queryAll(t, db, "SELECT SUM(x) FROM f")
	if rows[0][0].T != TypeFloat || rows[0][0].F != 3.5 {
		t.Fatalf("sum = %v", rows[0][0])
	}
}

func TestHavingWithoutGroupBy(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (x INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2), (3)")
	// Global aggregate with HAVING filters the single result row.
	rows := queryAll(t, db, "SELECT SUM(x) FROM t HAVING SUM(x) > 5")
	if len(rows) != 1 || rows[0][0].I != 6 {
		t.Fatalf("rows = %v", rows)
	}
	rows = queryAll(t, db, "SELECT SUM(x) FROM t HAVING SUM(x) > 10")
	if len(rows) != 0 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestGroupByNullsFormOneGroup(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (k INTEGER, v INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (NULL, 1), (NULL, 2), (1, 3)")
	rows := queryAll(t, db, "SELECT k, SUM(v) FROM t GROUP BY k ORDER BY k")
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	// NULLs sort first and group together.
	if !rows[0][0].IsNull() || rows[0][1].I != 3 {
		t.Fatalf("null group = %v", rows[0])
	}
}

func TestNumericEqualityAcrossTypesInGroupBy(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (k REAL)")
	// 1 and 1.0 group together (SQL numeric equality).
	mustExec(t, db, "INSERT INTO t VALUES (1), (1.0), (2.5)")
	rows := queryAll(t, db, "SELECT k, COUNT(*) FROM t GROUP BY k ORDER BY k")
	if len(rows) != 2 || rows[0][1].I != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestDeepCTEChain(t *testing.T) {
	// 40 chained CTEs, the shape of a 40-gate circuit translation.
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t0 (x INTEGER)")
	mustExec(t, db, "INSERT INTO t0 VALUES (1)")
	sql := "WITH "
	for i := 1; i <= 40; i++ {
		if i > 1 {
			sql += ", "
		}
		sql += tName(i) + " AS (SELECT x + 1 AS x FROM " + tName(i-1) + ")"
	}
	sql += " SELECT x FROM " + tName(40)
	rows := queryAll(t, db, sql)
	if rows[0][0].I != 41 {
		t.Fatalf("x = %v", rows[0][0])
	}
}

func tName(i int) string {
	if i == 0 {
		return "t0"
	}
	return "c" + itoa(i)
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return itoa(i/10) + itoa(i%10)
}

func TestSelfJoinAliases(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (x INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2), (3)")
	// Self-join needs distinct aliases; count ordered pairs x < y.
	rows := queryAll(t, db, "SELECT COUNT(*) FROM t a JOIN t b ON a.x = a.x WHERE a.x < b.x")
	if rows[0][0].I != 3 {
		t.Fatalf("pairs = %v", rows[0][0])
	}
}

func TestOrderByNullsFirst(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (x INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (2), (NULL), (1)")
	rows := queryAll(t, db, "SELECT x FROM t ORDER BY x")
	if !rows[0][0].IsNull() || rows[1][0].I != 1 || rows[2][0].I != 2 {
		t.Fatalf("rows = %v", rows)
	}
	// DESC puts NULLs last.
	rows = queryAll(t, db, "SELECT x FROM t ORDER BY x DESC")
	if !rows[2][0].IsNull() {
		t.Fatalf("rows = %v", rows)
	}
}

func TestCaseInsensitiveIdentifiers(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE MyTable (SomeCol INTEGER)")
	mustExec(t, db, "INSERT INTO mytable VALUES (7)")
	rows := queryAll(t, db, "SELECT SOMECOL FROM MYTABLE")
	if rows[0][0].I != 7 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestInsertSelectSelfReference(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (x INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2)")
	// INSERT ... SELECT from the same table must read a snapshot, not
	// loop forever.
	n := mustExec(t, db, "INSERT INTO t SELECT x + 10 FROM t")
	if n != 2 {
		t.Fatalf("inserted %d", n)
	}
	rows := queryAll(t, db, "SELECT COUNT(*) FROM t")
	if rows[0][0].I != 4 {
		t.Fatalf("count = %v", rows[0][0])
	}
}

func TestTextComparisonAndConcat(t *testing.T) {
	db := newTestDB(t)
	rows := queryAll(t, db, "SELECT 'abc' < 'abd', 'a' || 'b' || 'c', LENGTH('' || 42)")
	r := rows[0]
	if b, _ := r[0].Bool(); !b {
		t.Fatalf("compare = %v", r[0])
	}
	if r[1].S != "abc" || r[2].I != 2 {
		t.Fatalf("row = %v", r)
	}
}
