package sqlengine

import (
	"fmt"
	"testing"
	"testing/quick"
)

// TestTable1BitwiseOperators is the conformance check for Table 1 of the
// paper: every bitwise operator the translation relies on must evaluate
// correctly inside SQL.
func TestTable1BitwiseOperators(t *testing.T) {
	db := newTestDB(t)
	cases := []struct {
		sql  string
		want int64
	}{
		// AND
		{"SELECT 6 & 3", 2},
		{"SELECT 5 & 1", 1},
		// OR
		{"SELECT 4 | 1", 5},
		{"SELECT 2 | 2", 2},
		// NOT (two's complement)
		{"SELECT ~0", -1},
		{"SELECT ~1", -2},
		{"SELECT 7 & ~1", 6},
		{"SELECT 7 & ~6", 1},
		// Left shift
		{"SELECT 1 << 3", 8},
		{"SELECT 3 << 1", 6},
		// Right shift
		{"SELECT 8 >> 2", 2},
		{"SELECT 7 >> 1", 3},
		// Combinations from the paper's queries.
		{"SELECT (5 & ~1) | 1", 5},
		{"SELECT ((6 >> 1) & 3)", 3},
		{"SELECT (0 & ~6) | (3 << 1)", 6},
	}
	for _, tc := range cases {
		rows := queryAll(t, db, tc.sql)
		if rows[0][0].T != TypeInt || rows[0][0].I != tc.want {
			t.Errorf("%s = %v, want %d", tc.sql, rows[0][0], tc.want)
		}
	}
}

func TestBitwiseOnColumns(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (s INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (0),(1),(2),(3),(4),(5),(6),(7)")
	rows := queryAll(t, db, "SELECT s, s & 1, (s >> 1) & 3, (s & ~1) | 1 FROM t ORDER BY s")
	for i, r := range rows {
		s := int64(i)
		if r[1].I != s&1 || r[2].I != (s>>1)&3 || r[3].I != (s&^1)|1 {
			t.Fatalf("s=%d row = %v", s, r)
		}
	}
}

// TestBitwiseMatchesGoSemantics property-checks SQL evaluation against
// Go's operators on the full int64 range.
func TestBitwiseMatchesGoSemantics(t *testing.T) {
	db := newTestDB(t)
	f := func(a, b int64, shift uint8) bool {
		sh := int64(shift % 64)
		sql := fmt.Sprintf("SELECT (%d) & (%d), (%d) | (%d), ~(%d), (%d) << %d, (%d) >> %d",
			a, b, a, b, a, a, sh, a, sh)
		rows := queryAll(t, db, sql)
		r := rows[0]
		return r[0].I == a&b && r[1].I == a|b && r[2].I == ^a &&
			r[3].I == a<<uint(sh) && r[4].I == a>>uint(sh)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBitwiseNullPropagation(t *testing.T) {
	db := newTestDB(t)
	rows := queryAll(t, db, "SELECT NULL & 1, 1 | NULL, ~NULL, NULL << 1, 1 >> NULL")
	for i, v := range rows[0] {
		if !v.IsNull() {
			t.Fatalf("col %d = %v, want NULL", i, v)
		}
	}
}

func TestBitwisePrecedenceInEngine(t *testing.T) {
	db := newTestDB(t)
	// & binds tighter than comparison: 3 & 1 = 1 is (3&1)=1 → TRUE.
	rows := queryAll(t, db, "SELECT 3 & 1 = 1")
	if b, known := rows[0][0].Bool(); !known || !b {
		t.Fatalf("3 & 1 = 1 evaluated to %v", rows[0][0])
	}
	// Arithmetic binds tighter than shifts: 1 << 2 + 1 is 1 << 3 = 8.
	rows = queryAll(t, db, "SELECT 1 << 2 + 1")
	if rows[0][0].I != 8 {
		t.Fatalf("1 << 2 + 1 = %v, want 8", rows[0][0])
	}
}

// TestFig2GHZQuery executes the paper's running example end to end at the
// SQL level: 3-qubit GHZ preparation via H and two CX gates, with the
// exact CTE chain of Fig. 2c.
func TestFig2GHZQuery(t *testing.T) {
	db := newTestDB(t)
	err := db.ExecScript(`
		CREATE TABLE T0 (s INTEGER, r REAL, i REAL);
		INSERT INTO T0 VALUES (0, 1.0, 0.0);
		CREATE TABLE H (in_s INTEGER, out_s INTEGER, r REAL, i REAL);
		INSERT INTO H VALUES
			(0, 0, 0.7071067811865476, 0.0),
			(0, 1, 0.7071067811865476, 0.0),
			(1, 0, 0.7071067811865476, 0.0),
			(1, 1, -0.7071067811865476, 0.0);
		CREATE TABLE CX (in_s INTEGER, out_s INTEGER, r REAL, i REAL);
		INSERT INTO CX VALUES
			(0, 0, 1.0, 0.0),
			(1, 3, 1.0, 0.0),
			(2, 2, 1.0, 0.0),
			(3, 1, 1.0, 0.0);
	`)
	if err != nil {
		t.Fatal(err)
	}

	query := `WITH T1 AS (
  SELECT ((T0.s & ~1) | H.out_s) AS s,
         SUM((T0.r * H.r) - (T0.i * H.i)) AS r,
         SUM((T0.r * H.i) + (T0.i * H.r)) AS i
  FROM T0 JOIN H ON H.in_s = (T0.s & 1)
  GROUP BY ((T0.s & ~1) | H.out_s)
),
T2 AS (
  SELECT ((T1.s & ~3) | CX.out_s) AS s,
         SUM((T1.r * CX.r) - (T1.i * CX.i)) AS r,
         SUM((T1.r * CX.i) + (T1.i * CX.r)) AS i
  FROM T1 JOIN CX ON CX.in_s = (T1.s & 3)
  GROUP BY ((T1.s & ~3) | CX.out_s)
),
T3 AS (
  SELECT ((T2.s & ~6) | (CX.out_s << 1)) AS s,
         SUM((T2.r * CX.r) - (T2.i * CX.i)) AS r,
         SUM((T2.r * CX.i) + (T2.i * CX.r)) AS i
  FROM T2 JOIN CX ON CX.in_s = ((T2.s >> 1) & 3)
  GROUP BY ((T2.s & ~6) | (CX.out_s << 1))
)
SELECT s, r, i FROM T3 ORDER BY s`

	rows := queryAll(t, db, query)
	if len(rows) != 2 {
		t.Fatalf("GHZ state should have 2 basis states, got %v", rows)
	}
	const inv = 0.7071067811865476
	if rows[0][0].I != 0 || rows[1][0].I != 7 {
		t.Fatalf("basis states = %v, %v, want 0 and 7", rows[0][0], rows[1][0])
	}
	for _, r := range rows {
		if diff := r[1].F - inv; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("amplitude = %v, want %v", r[1].F, inv)
		}
		if r[2].F != 0 {
			t.Fatalf("imaginary = %v, want 0", r[2].F)
		}
	}
}
