package sqlengine

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokOp
	tokParam // ? positional placeholder
)

type token struct {
	kind tokenKind
	text string // uppercase for keywords, raw otherwise
	pos  int    // byte offset in input, for error messages
}

// keywords recognized by the parser. Identifiers matching these
// (case-insensitively) lex as tokKeyword.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "OFFSET": true,
	"AS": true, "ON": true, "JOIN": true, "INNER": true, "LEFT": true,
	"OUTER": true, "CROSS": true, "AND": true, "OR": true, "NOT": true,
	"NULL": true, "IS": true, "IN": true, "BETWEEN": true, "LIKE": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"CREATE": true, "TABLE": true, "DROP": true, "INSERT": true,
	"INTO": true, "VALUES": true, "DELETE": true, "UPDATE": true,
	"SET": true, "WITH": true, "DISTINCT": true, "ALL": true,
	"ASC": true, "DESC": true, "IF": true, "EXISTS": true,
	"TRUE": true, "FALSE": true, "CAST": true, "INDEX": true,
	"PRIMARY": true, "KEY": true, "UNION": true, "EXCEPT": true,
	"INTERSECT": true, "RECURSIVE": true, "EXPLAIN": true, "ANALYZE": true,
}

// lexer converts SQL text into tokens.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lexSQL tokenizes the input; it returns an error with byte position on
// any unrecognized character or unterminated literal.
func lexSQL(src string) ([]token, error) {
	lx := &lexer{src: src}
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		lx.toks = append(lx.toks, tok)
		if tok.kind == tokEOF {
			return lx.toks, nil
		}
	}
}

func (lx *lexer) errorf(pos int, format string, args ...any) error {
	line, col := 1, 1
	for i := 0; i < pos && i < len(lx.src); i++ {
		if lx.src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Errorf("sql:%d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func (lx *lexer) next() (token, error) {
	lx.skipSpaceAndComments()
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, pos: lx.pos}, nil
	}
	start := lx.pos
	c := lx.src[lx.pos]

	switch {
	case c == '?':
		lx.pos++
		return token{kind: tokParam, text: "?", pos: start}, nil

	case isIdentStart(rune(c)):
		for lx.pos < len(lx.src) && isIdentPart(rune(lx.src[lx.pos])) {
			lx.pos++
		}
		word := lx.src[start:lx.pos]
		upper := strings.ToUpper(word)
		if keywords[upper] {
			return token{kind: tokKeyword, text: upper, pos: start}, nil
		}
		return token{kind: tokIdent, text: word, pos: start}, nil

	case c == '"': // quoted identifier
		lx.pos++
		var b strings.Builder
		for {
			if lx.pos >= len(lx.src) {
				return token{}, lx.errorf(start, "unterminated quoted identifier")
			}
			ch := lx.src[lx.pos]
			if ch == '"' {
				if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '"' {
					b.WriteByte('"')
					lx.pos += 2
					continue
				}
				lx.pos++
				break
			}
			b.WriteByte(ch)
			lx.pos++
		}
		return token{kind: tokIdent, text: b.String(), pos: start}, nil

	case c == '\'': // string literal
		lx.pos++
		var b strings.Builder
		for {
			if lx.pos >= len(lx.src) {
				return token{}, lx.errorf(start, "unterminated string literal")
			}
			ch := lx.src[lx.pos]
			if ch == '\'' {
				if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '\'' {
					b.WriteByte('\'')
					lx.pos += 2
					continue
				}
				lx.pos++
				break
			}
			b.WriteByte(ch)
			lx.pos++
		}
		return token{kind: tokString, text: b.String(), pos: start}, nil

	case c >= '0' && c <= '9' || c == '.' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] >= '0' && lx.src[lx.pos+1] <= '9':
		seenDot, seenExp := false, false
		for lx.pos < len(lx.src) {
			ch := lx.src[lx.pos]
			switch {
			case ch >= '0' && ch <= '9':
				lx.pos++
			case ch == '.' && !seenDot && !seenExp:
				seenDot = true
				lx.pos++
			case (ch == 'e' || ch == 'E') && !seenExp && lx.pos > start:
				seenExp = true
				lx.pos++
				if lx.pos < len(lx.src) && (lx.src[lx.pos] == '+' || lx.src[lx.pos] == '-') {
					lx.pos++
				}
			default:
				goto doneNumber
			}
		}
	doneNumber:
		return token{kind: tokNumber, text: lx.src[start:lx.pos], pos: start}, nil

	default:
		// Multi-char operators first.
		two := ""
		if lx.pos+1 < len(lx.src) {
			two = lx.src[lx.pos : lx.pos+2]
		}
		switch two {
		case "<<", ">>", "<=", ">=", "<>", "!=", "==", "||":
			lx.pos += 2
			return token{kind: tokOp, text: two, pos: start}, nil
		}
		switch c {
		case '+', '-', '*', '/', '%', '&', '|', '~', '<', '>', '=', '(', ')', ',', ';', '.':
			lx.pos++
			return token{kind: tokOp, text: string(c), pos: start}, nil
		}
		return token{}, lx.errorf(start, "unexpected character %q", string(c))
	}
}

func (lx *lexer) skipSpaceAndComments() {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			lx.pos++
		case c == '-' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '-':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
			lx.pos += 2
			for lx.pos+1 < len(lx.src) && !(lx.src[lx.pos] == '*' && lx.src[lx.pos+1] == '/') {
				lx.pos++
			}
			lx.pos += 2
			if lx.pos > len(lx.src) {
				lx.pos = len(lx.src)
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
