package sqlengine

import (
	"math"
	"sort"
	"sync/atomic"
)

// Compressed column encodings. At Freeze time (table materialization:
// base-table first read, CTAS, INSERT … SELECT, gather) a fully
// in-memory ColStore with exact statistics re-encodes eligible
// columns:
//
//   - int64 columns with long runs → run-length encoding (colIntRLE)
//   - int64 columns with few distinct values → dictionary (colIntDict)
//   - float64 columns that are mostly zero → sparse positions+values
//     (colFloatSparse) — the amplitude-column case
//
// Encodings are exact: they encode the raw value slots (NULL rows hold
// zero slots, exactly as the plain vectors do; the null bitmap is kept
// verbatim), floats are selected by BIT pattern (so -0.0 and NaN
// payloads survive), and every decode reproduces the plain vector
// bit-for-bit. Scans operate on the encoded form directly
// (column.decodeRange / valueAt); appends to a thawed store decode
// lazily first (the transparent fallback, counted in
// decode_fallbacks). Spill chunks make the same per-column decision
// chunk-locally (see the QYC2 chunk format in colstore.go).
//
// The selection thresholds are deliberately conservative: an encoding
// is committed only when it strictly shrinks the resident footprint,
// and the freed bytes are released back to the memory budget
// (re-reserved on a lazy decode).

// encodeMinRows is the smallest column worth encoding: tiny tables
// (gate matrices, lookup tables) stay plain.
const encodeMinRows = batchSize

// dictMaxDistinct caps the dictionary size (and with it the cost of
// the build probe).
const dictMaxDistinct = 1 << 15

// intRun is one RLE run: value v repeats up to exclusive cumulative
// row index end. Runs partition [0, rows); binary search on end gives
// point access.
type intRun struct {
	v   int64
	end int32
}

// storageCounterSet is one scope of sparsity-storage counters,
// mirroring kernelCounterSet (kernel.go). The process-wide aggregate
// (storageCounters) backs the package-level StorageCounters() and the
// qymerad /metrics endpoint; each engine instance additionally owns a
// set (storageEnv.storageCtrs, read through DB.StorageCounters) so
// interleaved benchmark samples and parallel tests stop
// cross-contaminating each other's readings. The bump* methods record
// into the receiver's scope AND the process aggregate; a nil receiver
// (stores created without an engine in unit tests) records into the
// aggregate only.
type storageCounterSet struct {
	morselsSkipped   atomic.Int64 // zone map proved a morsel empty
	chunksSkipped    atomic.Int64 // chunk zone header proved a spill chunk empty
	encodedRLE       atomic.Int64 // columns committed as RLE at Freeze
	encodedDict      atomic.Int64 // columns committed as dictionary at Freeze
	encodedSparse    atomic.Int64 // columns committed as sparse at Freeze
	encodedChunkCols atomic.Int64 // spill-chunk columns written encoded
	decodeFallbacks  atomic.Int64 // encoded columns decoded for appends
	kernelEncBinds   atomic.Int64 // encoded columns bound by the gate kernel
}

// storageCounters is the process-wide aggregate scope.
var storageCounters storageCounterSet

func (s *storageCounterSet) bump(pick func(*storageCounterSet) *atomic.Int64) {
	pick(&storageCounters).Add(1)
	if s != nil && s != &storageCounters {
		pick(s).Add(1)
	}
}

func (s *storageCounterSet) bumpMorselSkipped() {
	s.bump(func(c *storageCounterSet) *atomic.Int64 { return &c.morselsSkipped })
}
func (s *storageCounterSet) bumpChunkSkipped() {
	s.bump(func(c *storageCounterSet) *atomic.Int64 { return &c.chunksSkipped })
}
func (s *storageCounterSet) bumpEncodedRLE() {
	s.bump(func(c *storageCounterSet) *atomic.Int64 { return &c.encodedRLE })
}
func (s *storageCounterSet) bumpEncodedDict() {
	s.bump(func(c *storageCounterSet) *atomic.Int64 { return &c.encodedDict })
}
func (s *storageCounterSet) bumpEncodedSparse() {
	s.bump(func(c *storageCounterSet) *atomic.Int64 { return &c.encodedSparse })
}
func (s *storageCounterSet) bumpEncodedChunkCol() {
	s.bump(func(c *storageCounterSet) *atomic.Int64 { return &c.encodedChunkCols })
}
func (s *storageCounterSet) bumpDecodeFallback() {
	s.bump(func(c *storageCounterSet) *atomic.Int64 { return &c.decodeFallbacks })
}
func (s *storageCounterSet) bumpKernelEncBind() {
	s.bump(func(c *storageCounterSet) *atomic.Int64 { return &c.kernelEncBinds })
}

func (s *storageCounterSet) snapshot() map[string]int64 {
	return map[string]int64{
		"morsels_skipped":      s.morselsSkipped.Load(),
		"chunks_skipped":       s.chunksSkipped.Load(),
		"encoded_rle":          s.encodedRLE.Load(),
		"encoded_dict":         s.encodedDict.Load(),
		"encoded_sparse":       s.encodedSparse.Load(),
		"encoded_chunk_cols":   s.encodedChunkCols.Load(),
		"decode_fallbacks":     s.decodeFallbacks.Load(),
		"kernel_encoded_binds": s.kernelEncBinds.Load(),
	}
}

// StorageCounters snapshots the process-wide sparsity-storage counters:
// morsels_skipped / chunks_skipped (zone-map skip-scan), encoded_rle /
// encoded_dict / encoded_sparse / encoded_chunk_cols (encoding
// decisions), decode_fallbacks (transparent decodes), and
// kernel_encoded_binds (gate-kernel operate-on-encoded bindings). For a
// single engine's uncontaminated view, use DB.StorageCounters.
func StorageCounters() map[string]int64 {
	return storageCounters.snapshot()
}

// ResetStorageCounters zeroes the process-wide aggregate counters
// (benchmarks and tests). Per-DB scopes are unaffected.
func ResetStorageCounters() {
	storageCounters.morselsSkipped.Store(0)
	storageCounters.chunksSkipped.Store(0)
	storageCounters.encodedRLE.Store(0)
	storageCounters.encodedDict.Store(0)
	storageCounters.encodedSparse.Store(0)
	storageCounters.encodedChunkCols.Store(0)
	storageCounters.decodeFallbacks.Store(0)
	storageCounters.kernelEncBinds.Store(0)
}

// encoded reports whether the column currently holds an encoded vector.
func (c *column) encoded() bool { return c.kind >= colIntRLE }

// countIntRuns counts the RLE runs of xs in one pass.
func countIntRuns(xs []int64) int {
	if len(xs) == 0 {
		return 0
	}
	runs := 1
	for i := 1; i < len(xs); i++ {
		if xs[i] != xs[i-1] {
			runs++
		}
	}
	return runs
}

// encodeColumn re-encodes one frozen column in place when a strictly
// smaller representation exists, returning the resident bytes saved
// (0 means the column stays plain). st pre-filters the candidates from
// the table statistics; the exact build pass decides.
func encodeColumn(c *column, st *colStats, rows int, ctrs *storageCounterSet) int64 {
	switch c.kind {
	case colInt:
		xs := c.ints[:rows]
		if runs := countIntRuns(xs); runs > 0 && runs*4 <= rows {
			if saved := int64(8*rows) - int64(16*runs); saved > 0 {
				rl := make([]intRun, 0, runs)
				for i := 0; i < rows; {
					j := i + 1
					for j < rows && xs[j] == xs[i] {
						j++
					}
					rl = append(rl, intRun{v: xs[i], end: int32(j)})
					i = j
				}
				c.kind, c.runs, c.encLen, c.ints = colIntRLE, rl, rows, nil
				ctrs.bumpEncodedRLE()
				return saved
			}
		}
		// Dictionary: worth probing only when the sketch says the
		// domain is small. The build aborts as soon as the dictionary
		// outgrows profitability.
		if st == nil || st.distinct() > dictMaxDistinct {
			return 0
		}
		maxDict := rows / 4
		if maxDict > dictMaxDistinct {
			maxDict = dictMaxDistinct
		}
		if maxDict < 1 {
			return 0
		}
		idx := make(map[int64]uint32, maxDict)
		codes := make([]uint32, rows)
		dict := make([]int64, 0, maxDict)
		for i, x := range xs {
			code, ok := idx[x]
			if !ok {
				if len(dict) >= maxDict {
					return 0
				}
				code = uint32(len(dict))
				dict = append(dict, x)
				idx[x] = code
			}
			codes[i] = code
		}
		saved := int64(8*rows) - int64(4*rows+8*len(dict))
		if saved <= 0 {
			return 0
		}
		c.kind, c.dict, c.codes, c.encLen, c.ints = colIntDict, dict, codes, rows, nil
		ctrs.bumpEncodedDict()
		return saved
	case colFloat:
		if st == nil || 2*st.zeros < int64(rows) {
			return 0
		}
		xs := c.floats[:rows]
		nnz := 0
		for _, f := range xs {
			// Bit-pattern test: only +0.0 may be omitted; -0.0 and NaN
			// payloads must survive the encoding exactly.
			if math.Float64bits(f) != 0 {
				nnz++
			}
		}
		saved := int64(8*rows) - int64(12*nnz)
		if saved <= 0 || 2*nnz > rows {
			return 0
		}
		spos := make([]int32, 0, nnz)
		svals := make([]float64, 0, nnz)
		for i, f := range xs {
			if math.Float64bits(f) != 0 {
				spos = append(spos, int32(i))
				svals = append(svals, f)
			}
		}
		c.kind, c.spos, c.svals, c.encLen, c.floats = colFloatSparse, spos, svals, rows, nil
		ctrs.bumpEncodedSparse()
		return saved
	}
	return 0
}

// decodeEncoded materializes an encoded column back into its plain
// typed vector (exact). The caller is responsible for budget
// accounting (ColStore.decodeForAppend re-reserves encSaved).
func (c *column) decodeEncoded() {
	switch c.kind {
	case colIntRLE:
		ints := make([]int64, c.encLen)
		pos := 0
		for _, r := range c.runs {
			for ; pos < int(r.end); pos++ {
				ints[pos] = r.v
			}
		}
		c.kind, c.ints, c.runs, c.encLen = colInt, ints, nil, 0
	case colIntDict:
		ints := make([]int64, c.encLen)
		for i, code := range c.codes {
			ints[i] = c.dict[code]
		}
		c.kind, c.ints, c.dict, c.codes, c.encLen = colInt, ints, nil, nil, 0
	case colFloatSparse:
		fl := make([]float64, c.encLen)
		for i, p := range c.spos {
			fl[p] = c.svals[i]
		}
		c.kind, c.floats, c.spos, c.svals, c.encLen = colFloat, fl, nil, nil, 0
	}
}

// runSearch returns the index of the run containing row i.
func runSearch(runs []intRun, i int) int {
	return sort.Search(len(runs), func(k int) bool { return int(runs[k].end) > i })
}

// sparseSearch returns the first sparse slot with position >= lo.
func sparseSearch(spos []int32, lo int) int {
	return sort.Search(len(spos), func(k int) bool { return int(spos[k]) >= lo })
}

// encodeColumns is the Freeze hook: re-encode eligible columns of a
// fully in-memory store whose statistics are exact, releasing the
// saved bytes back to the budget. Idempotent — already-encoded columns
// are left alone, and re-freezing after thaw+append retries cleanly.
func (cs *ColStore) encodeColumns() {
	if !cs.env.encodings || cs.Spilled() || cs.rows < encodeMinRows {
		return
	}
	ts := cs.stats
	if ts == nil || ts.rows != int64(cs.rows) || len(ts.cols) < len(cs.cols) {
		return
	}
	for i := range cs.cols {
		c := &cs.cols[i]
		if c.encoded() {
			continue
		}
		if saved := encodeColumn(c, ts.col(i), cs.rows, cs.env.storageCtrs); saved > 0 {
			cs.env.budget.release(saved)
			cs.memBytes -= saved
			c.encSaved = saved
		}
	}
}

// decodeForAppend decodes any encoded columns back to plain vectors
// before new rows are appended (the transparent fallback for
// thaw-then-append: INSERT into a previously scanned table,
// INSERT … SELECT onto a CTAS result). Re-reserves the bytes the
// encoding had released.
func (cs *ColStore) decodeForAppend() {
	for i := range cs.cols {
		c := &cs.cols[i]
		if !c.encoded() {
			continue
		}
		c.decodeEncoded()
		cs.env.storageCtrs.bumpDecodeFallback()
		if c.encSaved > 0 {
			cs.env.budget.reserveForce(c.encSaved)
			cs.memBytes += c.encSaved
			c.encSaved = 0
		}
	}
}
