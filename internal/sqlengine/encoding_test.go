package sqlengine

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"strings"
	"sync/atomic"
	"testing"
)

// Tests for the sparsity-first storage tier: compressed column
// encodings (RLE / dictionary / sparse floats), zone-map skip-scan, and
// the QYC2 spill chunk format. The differential tests assert the core
// guarantee — results are bitwise independent of the encodings setting,
// across worker counts and the kernel tier.

// encTestEnv is testEnv with the encodings tier enabled (testEnv leaves
// it off so unrelated storage tests see plain vectors).
func encTestEnv(t *testing.T, budget int64) *storageEnv {
	t.Helper()
	env := testEnv(t, budget)
	env.encodings = true
	return env
}

// collectRows drains a store through its cursor into cloned rows.
func collectRows(t *testing.T, cs *ColStore) []Row {
	t.Helper()
	it, err := cs.Cursor()
	if err != nil {
		t.Fatal(err)
	}
	var out []Row
	for {
		row, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, cloneRow(row))
	}
}

func TestEncodeRLEColumn(t *testing.T) {
	env := encTestEnv(t, 0)
	cs := newColStore(env)
	attachStats(cs)
	rows := make([]Row, 0, 2048)
	for k := 0; k < 2048; k++ {
		row := Row{NewInt(int64(k / 256))}
		if k%100 == 99 {
			row = Row{Null}
		}
		rows = append(rows, row)
		if err := cs.Append(cloneRow(row)); err != nil {
			t.Fatal(err)
		}
	}
	fallbacksBefore := StorageCounters()["decode_fallbacks"]
	if err := cs.Freeze(); err != nil {
		t.Fatal(err)
	}
	if kinds := cs.vectorKinds(); kinds[0] != "int64/rle" {
		t.Fatalf("kinds = %v, want int64/rle", kinds)
	}
	got := collectRows(t, cs)
	if len(got) != len(rows) {
		t.Fatalf("got %d rows, want %d", len(got), len(rows))
	}
	for i := range rows {
		if got[i][0].T != rows[i][0].T || got[i][0].I != rows[i][0].I {
			t.Fatalf("row %d = %v, want %v", i, got[i], rows[i])
		}
	}
	// Appending to the thawed store decodes back to the plain vector
	// (the transparent fallback) and the data survives intact.
	cs.Thaw()
	if err := cs.Append(Row{NewInt(42)}); err != nil {
		t.Fatal(err)
	}
	if kinds := cs.vectorKinds(); kinds[0] != "int64" {
		t.Fatalf("kinds after thaw+append = %v, want int64", kinds)
	}
	if d := StorageCounters()["decode_fallbacks"] - fallbacksBefore; d < 1 {
		t.Fatalf("decode_fallbacks delta = %d, want >= 1", d)
	}
	if err := cs.Freeze(); err != nil {
		t.Fatal(err)
	}
	got = collectRows(t, cs)
	if len(got) != len(rows)+1 || got[len(rows)][0].I != 42 {
		t.Fatalf("rows after thaw+append = %d, tail = %v", len(got), got[len(got)-1])
	}
	cs.Release()
	if env.budget.used.Load() != 0 {
		t.Fatalf("leaked %d bytes", env.budget.used.Load())
	}
}

func TestEncodeDictColumn(t *testing.T) {
	env := encTestEnv(t, 0)
	cs := newColStore(env)
	attachStats(cs)
	// Values alternate every row (no runs) over a 7-value domain.
	for k := 0; k < 2048; k++ {
		if err := cs.Append(Row{NewInt(int64(k % 7))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cs.Freeze(); err != nil {
		t.Fatal(err)
	}
	if kinds := cs.vectorKinds(); kinds[0] != "int64/dict" {
		t.Fatalf("kinds = %v, want int64/dict", kinds)
	}
	got := collectRows(t, cs)
	for i := range got {
		if got[i][0].I != int64(i%7) {
			t.Fatalf("row %d = %v, want %d", i, got[i], i%7)
		}
	}
	cs.Release()
	if env.budget.used.Load() != 0 {
		t.Fatalf("leaked %d bytes", env.budget.used.Load())
	}
}

func TestEncodeSparseFloatColumn(t *testing.T) {
	env := encTestEnv(t, 0)
	cs := newColStore(env)
	attachStats(cs)
	const n = 2048
	want := make([]float64, n) // bit patterns; row 99 is NULL
	for k := 0; k < n; k++ {
		var v float64
		switch {
		case k == 13:
			v = math.Copysign(0, -1) // -0.0 must survive by bit pattern
		case k == 27:
			v = math.NaN()
		case k%50 == 0:
			v = 1.0 / float64(k+1)
		}
		want[k] = v
		row := Row{NewFloat(v)}
		if k == 99 {
			row = Row{Null}
			want[k] = 0
		}
		if err := cs.Append(cloneRow(row)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cs.Freeze(); err != nil {
		t.Fatal(err)
	}
	if kinds := cs.vectorKinds(); kinds[0] != "float64/sparse" {
		t.Fatalf("kinds = %v, want float64/sparse", kinds)
	}
	got := collectRows(t, cs)
	for i := range got {
		if i == 99 {
			if got[i][0].T != TypeNull {
				t.Fatalf("row 99 = %v, want NULL", got[i])
			}
			continue
		}
		if got[i][0].T != TypeFloat || math.Float64bits(got[i][0].F) != math.Float64bits(want[i]) {
			t.Fatalf("row %d = %v (bits %x), want bits %x", i, got[i], math.Float64bits(got[i][0].F), math.Float64bits(want[i]))
		}
	}
	if !math.Signbit(got[13][0].F) {
		t.Fatal("-0.0 lost its sign bit through the sparse encoding")
	}
	if !math.IsNaN(got[27][0].F) {
		t.Fatal("NaN lost through the sparse encoding")
	}
	cs.Release()
	if env.budget.used.Load() != 0 {
		t.Fatalf("leaked %d bytes", env.budget.used.Load())
	}
}

// TestEncodedStoreMatchesPlain is the store-level differential: the
// same appends into an encodings-on and an encodings-off store must
// read back bitwise identically, across value shapes that trigger each
// encoding (and shapes that trigger none).
func TestEncodedStoreMatchesPlain(t *testing.T) {
	shapes := []struct {
		name string
		val  func(k int) Row
	}{
		{"runs", func(k int) Row { return Row{NewInt(int64(k / 300)), NewFloat(float64(k))} }},
		{"dict", func(k int) Row { return Row{NewInt(int64(k % 13)), NewFloat(0)} }},
		{"sparse", func(k int) Row {
			v := 0.0
			if k%40 == 0 {
				v = -1.5 / float64(k+2)
			}
			return Row{NewInt(int64(k)), NewFloat(v)}
		}},
		{"incompressible", func(k int) Row { return Row{NewInt(int64(k * 2654435761)), NewFloat(1 / float64(k+1))} }},
		{"nulls", func(k int) Row {
			if k%17 == 0 {
				return Row{Null, Null}
			}
			return Row{NewInt(int64(k / 100)), NewFloat(0)}
		}},
	}
	for _, shape := range shapes {
		t.Run(shape.name, func(t *testing.T) {
			plainEnv, encEnv := testEnv(t, 0), encTestEnv(t, 0)
			plain, enc := newColStore(plainEnv), newColStore(encEnv)
			attachStats(plain)
			attachStats(enc)
			for k := 0; k < 3000; k++ {
				row := shape.val(k)
				if err := plain.Append(cloneRow(row)); err != nil {
					t.Fatal(err)
				}
				if err := enc.Append(cloneRow(row)); err != nil {
					t.Fatal(err)
				}
			}
			if err := plain.Freeze(); err != nil {
				t.Fatal(err)
			}
			if err := enc.Freeze(); err != nil {
				t.Fatal(err)
			}
			requireBitIdentical(t, shape.name, collectRows(t, plain), collectRows(t, enc))
			plain.Release()
			enc.Release()
		})
	}
}

// TestZoneSkipScanSQL: a pushed range filter over a multi-morsel
// sequence skips the morsels the zone map proves empty — at one worker
// (serial memory-tail skip) and four (parallel claim-loop skip) — with
// bit-identical results.
func TestZoneSkipScanSQL(t *testing.T) {
	const n = 3 * morselRows
	q := fmt.Sprintf("SELECT x FROM t WHERE x >= %d ORDER BY x", n-576)
	var ref []Row
	for _, workers := range []int{1, 4} {
		db := newParallelDB(t, workers, Config{})
		mustExec(t, db, "CREATE TABLE t (x INTEGER, y INTEGER)")
		fillSequence(t, db, "t", n)
		before := StorageCounters()["morsels_skipped"]
		rows := queryAll(t, db, q)
		if len(rows) != 576 {
			t.Fatalf("workers=%d: got %d rows, want 576", workers, len(rows))
		}
		if rows[0][0].I != int64(n-576) || rows[575][0].I != int64(n-1) {
			t.Fatalf("workers=%d: range [%v, %v]", workers, rows[0][0], rows[575][0])
		}
		// Morsels 0 and 1 (max x 8191 and 16383) are provably empty.
		if d := StorageCounters()["morsels_skipped"] - before; d < 2 {
			t.Fatalf("workers=%d: morsels_skipped delta = %d, want >= 2", workers, d)
		}
		if ref == nil {
			ref = rows
			continue
		}
		requireBitIdentical(t, fmt.Sprintf("workers=%d", workers), ref, rows)
	}
}

// TestNormPruneZoneSkip: the paper's amplitude-norm prune shape
// ((r*r)+(i*i)) > eps skips morsels whose amplitude zone bounds prove
// the norm below threshold — the sparsity-first fast path for nearly
// sparse state tables. The amplitude columns sparse-encode too.
func TestNormPruneZoneSkip(t *testing.T) {
	const n = 3 * morselRows
	db := newParallelDB(t, 4, Config{})
	mustExec(t, db, "CREATE TABLE t (s INTEGER, r REAL, i REAL)")
	batch := make([]string, 0, 500)
	for k := 0; k < n; k++ {
		r, im := 0.0, 0.0
		if k >= 2*morselRows {
			r, im = 0.5, 0.25
		}
		batch = append(batch, fmt.Sprintf("(%d, %g, %g)", k, r, im))
		if len(batch) == 500 || k == n-1 {
			mustExec(t, db, "INSERT INTO t VALUES "+strings.Join(batch, ","))
			batch = batch[:0]
		}
	}
	skippedBefore := StorageCounters()["morsels_skipped"]
	sparseBefore := StorageCounters()["encoded_sparse"]
	rows := queryAll(t, db, "SELECT s FROM t WHERE ((r * r) + (i * i)) > 0.000001 ORDER BY s")
	if len(rows) != morselRows {
		t.Fatalf("got %d rows, want %d", len(rows), morselRows)
	}
	if rows[0][0].I != int64(2*morselRows) {
		t.Fatalf("first surviving row = %v, want %d", rows[0][0], 2*morselRows)
	}
	if d := StorageCounters()["morsels_skipped"] - skippedBefore; d < 2 {
		t.Fatalf("morsels_skipped delta = %d, want >= 2", d)
	}
	// Both amplitude columns are two-thirds zero → sparse-encoded.
	if d := StorageCounters()["encoded_sparse"] - sparseBefore; d < 2 {
		t.Fatalf("encoded_sparse delta = %d, want >= 2", d)
	}
}

// TestEncodedQueriesMatchPlain is the SQL-level differential: scans,
// filters, and aggregates over encodable columns return bit-identical
// results with encodings on and off, at one and four workers.
func TestEncodedQueriesMatchPlain(t *testing.T) {
	const n = 3 * morselRows
	queries := []string{
		"SELECT x, y FROM t ORDER BY x",
		"SELECT y, COUNT(*), SUM(x) FROM t GROUP BY y ORDER BY y",
		"SELECT x FROM t WHERE x >= 12000 AND y = 3 ORDER BY x",
	}
	type cfg struct {
		encodings string
		workers   int
	}
	var dbs []*DB
	var names []string
	for _, c := range []cfg{{"off", 1}, {"on", 1}, {"off", 4}, {"on", 4}} {
		db := newParallelDB(t, c.workers, Config{Encodings: c.encodings})
		mustExec(t, db, "CREATE TABLE t (x INTEGER, y INTEGER)")
		fillSequence(t, db, "t", n)
		dbs = append(dbs, db)
		names = append(names, fmt.Sprintf("encodings=%s workers=%d", c.encodings, c.workers))
	}
	for _, q := range queries {
		ref := queryAll(t, dbs[0], q)
		for i := 1; i < len(dbs); i++ {
			requireBitIdentical(t, names[i]+" "+q, ref, queryAll(t, dbs[i], q))
		}
	}
}

// fillSparseAmplitudeTable builds an amplitude table whose state column
// RLE-encodes (runs of 8) and whose amplitude columns sparse-encode
// (real part nonzero every 64th row, imaginary part all zero), plus the
// Hadamard gate table — the shape that drives the kernel's
// operate-on-encoded paths.
func fillSparseAmplitudeTable(t *testing.T, db *DB, rows int) {
	t.Helper()
	mustExec(t, db, "CREATE TABLE t (s INTEGER, r REAL, i REAL)")
	batch := make([]string, 0, 500)
	for k := 0; k < rows; k++ {
		r := 0.0
		if k%64 == 0 {
			r = 0.5 / float64(k+1)
		}
		batch = append(batch, fmt.Sprintf("(%d, %g, 0)", k&^7, r))
		if len(batch) == 500 || k == rows-1 {
			mustExec(t, db, "INSERT INTO t VALUES "+strings.Join(batch, ","))
			batch = batch[:0]
		}
	}
	mustExec(t, db, "CREATE TABLE h (in_s INTEGER, out_s INTEGER, r REAL, i REAL)")
	mustExec(t, db, "INSERT INTO h VALUES (0,0,0.70710678,0),(0,1,0.70710678,0),(1,0,0.70710678,0),(1,1,-0.70710678,0)")
}

// TestGateStageEncodedBitIdentical: the gate-stage join+aggregate over
// an encoded amplitude table is bit-identical across encodings on/off ×
// kernels on/off × workers 1/4, and the kernel actually binds encoded
// columns (RLE state-index run iteration, sparse amplitude decode).
func TestGateStageEncodedBitIdentical(t *testing.T) {
	q := `SELECT ((t.s & ~1) | h.out_s) AS s,
	       SUM((t.r * h.r) - (t.i * h.i)) AS r,
	       SUM((t.r * h.i) + (t.i * h.r)) AS i
	FROM t JOIN h ON h.in_s = (t.s & 1)
	GROUP BY ((t.s & ~1) | h.out_s)
	ORDER BY s`
	bindsBefore := StorageCounters()["kernel_encoded_binds"]
	var ref []Row
	for _, encodings := range []string{"off", "on"} {
		for _, kernels := range []string{"on", "off"} {
			for _, workers := range []int{1, 4} {
				db := newParallelDB(t, workers, Config{Encodings: encodings, Kernels: kernels})
				fillSparseAmplitudeTable(t, db, testRows)
				rows := queryAll(t, db, q)
				name := fmt.Sprintf("encodings=%s kernels=%s workers=%d", encodings, kernels, workers)
				if ref == nil {
					ref = rows
					continue
				}
				requireBitIdentical(t, name, ref, rows)
			}
		}
	}
	if d := StorageCounters()["kernel_encoded_binds"] - bindsBefore; d < 1 {
		t.Fatalf("kernel_encoded_binds delta = %d, want >= 1", d)
	}
}

// TestSpillChunkV2EncodedAndSkipped: a spilled store writes the QYC2
// self-describing stream, encodes compressible chunk columns, and a
// zone-predicated scan skips provably empty chunks without decoding.
func TestSpillChunkV2EncodedAndSkipped(t *testing.T) {
	env := encTestEnv(t, 1) // everything spills
	cs := newColStore(env)
	attachStats(cs)
	const n = 3000
	for k := 0; k < n; k++ {
		v := 0.0
		if k%64 == 0 {
			v = float64(k)
		}
		if err := cs.Append(Row{NewInt(int64(k / 500)), NewFloat(v)}); err != nil {
			t.Fatal(err)
		}
	}
	encBefore := StorageCounters()["encoded_chunk_cols"]
	if err := cs.Freeze(); err != nil {
		t.Fatal(err)
	}
	if !cs.Spilled() {
		t.Fatal("store did not spill under a 1-byte budget")
	}
	// The stream leads with the version magic.
	var hdr [len(colSpillMagic)]byte
	if _, err := cs.file.ReadAt(hdr[:], 0); err != nil {
		t.Fatal(err)
	}
	if string(hdr[:]) != colSpillMagic {
		t.Fatalf("spill header = %q, want %q", hdr, colSpillMagic)
	}
	// Compressible chunk columns (int runs, sparse floats) were written
	// encoded. Freeze wrote the final chunk, so the counter moved.
	if d := StorageCounters()["encoded_chunk_cols"] - encBefore; d < 1 {
		t.Fatalf("encoded_chunk_cols delta = %d, want >= 1", d)
	}

	// A zone predicate no chunk can satisfy (x is 0..5) skips every
	// chunk without decoding.
	skippedBefore := StorageCounters()["chunks_skipped"]
	zp := &zonePred{checks: []zoneCheck{{kind: zcCmp, col: 0, op: ">", lit: NewInt(100)}}}
	var skipped atomic.Int64
	sc, err := cs.batchScanZone(nil, zp, &skipped)
	if err != nil {
		t.Fatal(err)
	}
	for {
		b, err := sc.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		for range b.selection() {
			t.Fatal("zone-skipped scan served rows the predicate excludes")
		}
	}
	if skipped.Load() < 1 {
		t.Fatal("no chunks skipped")
	}
	if d := StorageCounters()["chunks_skipped"] - skippedBefore; d < 1 {
		t.Fatalf("chunks_skipped delta = %d, want >= 1", d)
	}

	// An unpredicated scan still round-trips every row exactly.
	sc, err = cs.batchScan()
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for {
		b, err := sc.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		for _, pos := range b.selection() {
			k := seen
			if b.cols[0][pos].I != int64(k/500) {
				t.Fatalf("row %d int = %v", k, b.cols[0][pos])
			}
			want := 0.0
			if k%64 == 0 {
				want = float64(k)
			}
			if math.Float64bits(b.cols[1][pos].F) != math.Float64bits(want) {
				t.Fatalf("row %d float = %v, want %g", k, b.cols[1][pos], want)
			}
			seen++
		}
	}
	if seen != n {
		t.Fatalf("scan returned %d rows, want %d", seen, n)
	}
	cs.Release()
}

// TestSpillLegacyStreamReadable: a spill stream without the QYC2 magic
// is read through the legacy chunk frame, so spill files written by
// earlier versions stay readable.
func TestSpillLegacyStreamReadable(t *testing.T) {
	env := encTestEnv(t, 0)
	cs := newColStore(env)
	for k := 0; k < 2000; k++ {
		if err := cs.Append(Row{NewInt(int64(k)), NewFloat(1.0 / float64(k+1))}); err != nil {
			t.Fatal(err)
		}
	}
	// Hand-write the in-memory columns as one legacy chunk (uvarint row
	// count + bare column runs, no magic, no zone records) and swap the
	// store onto it as if it had spilled under the old format.
	f, err := os.CreateTemp(env.spillDir, "legacy-*.cols")
	if err != nil {
		t.Fatal(err)
	}
	w := bufio.NewWriter(f)
	var tmp [binary.MaxVarintLen64]byte
	if _, err := w.Write(tmp[:binary.PutUvarint(tmp[:], uint64(cs.rows))]); err != nil {
		t.Fatal(err)
	}
	for i := range cs.cols {
		if _, err := writeColumnRun(w, &cs.cols[i], cs.rows); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	cs.file = f
	cs.fileRows = int64(cs.rows)
	cs.rows = 0
	for i := range cs.cols {
		cs.cols[i].reset()
	}
	cs.frozen = true

	sc, err := cs.batchScan()
	if err != nil {
		t.Fatal(err)
	}
	if sc.(*colScan).v2 {
		t.Fatal("legacy stream misdetected as v2")
	}
	seen := 0
	for {
		b, err := sc.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		for _, pos := range b.selection() {
			if b.cols[0][pos].I != int64(seen) {
				t.Fatalf("row %d = %v", seen, b.cols[0][pos])
			}
			seen++
		}
	}
	if seen != 2000 {
		t.Fatalf("legacy scan returned %d rows, want 2000", seen)
	}
	cs.Release()
}

// TestSpillV2CorruptColumnRuns: the v2 column-run decoder rejects
// unknown kind tags and inconsistent encoded payloads instead of
// mis-decoding them.
func TestSpillV2CorruptColumnRuns(t *testing.T) {
	enc := func(parts ...[]byte) []byte { return bytes.Join(parts, nil) }
	uv := func(v uint64) []byte { return binary.AppendUvarint(nil, v) }
	sv := func(v int64) []byte { return binary.AppendVarint(nil, v) }
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"unknown kind tag", []byte{99}, "column kind"},
		{
			// One run of 10 rows in a 4-row chunk.
			"rle overflow",
			enc([]byte{byte(colIntRLE), 0}, uv(1), sv(7), uv(10)),
			"RLE runs exceed",
		},
		{
			// One run of 2 rows leaves rows 2..3 uncovered.
			"rle undercoverage",
			enc([]byte{byte(colIntRLE), 0}, uv(1), sv(7), uv(2)),
			"RLE runs cover",
		},
		{
			// Code 3 points past the 1-entry dictionary.
			"dict code out of range",
			enc([]byte{byte(colIntDict), 0}, uv(1), sv(5), uv(3)),
			"dictionary code",
		},
		{
			// A zero position delta would repeat or precede the previous
			// sparse position.
			"sparse zero delta",
			enc([]byte{byte(colFloatSparse), 0}, uv(2), uv(1), make([]byte, 8), uv(0), make([]byte, 8)),
			"sparse position",
		},
		{"truncated payload", []byte{byte(colInt), 0, 1, 2}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var c column
			err := readColumnRunV2(bufio.NewReader(bytes.NewReader(tc.data)), &c, 4)
			if err == nil {
				t.Fatal("corrupt run decoded without error")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}
