package sqlengine

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestColStoreInMemoryRoundTrip(t *testing.T) {
	env := testEnv(t, 0)
	cs := newColStore(env)
	for i := 0; i < 100; i++ {
		if err := cs.Append(Row{NewInt(int64(i)), NewText(fmt.Sprint(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if cs.Len() != 100 || cs.Spilled() {
		t.Fatalf("len=%d spilled=%v", cs.Len(), cs.Spilled())
	}
	if kinds := cs.vectorKinds(); len(kinds) != 2 || kinds[0] != "int64" || kinds[1] != "string" {
		t.Fatalf("kinds = %v", kinds)
	}
	it, err := cs.Cursor()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		row, ok, err := it.Next()
		if err != nil || !ok {
			t.Fatalf("row %d: ok=%v err=%v", i, ok, err)
		}
		if row[0].T != TypeInt || row[0].I != int64(i) || row[1].S != fmt.Sprint(i) {
			t.Fatalf("row %d = %v", i, row)
		}
	}
	if _, ok, _ := it.Next(); ok {
		t.Fatal("cursor should be exhausted")
	}
	cs.Release()
	if env.budget.used.Load() != 0 {
		t.Fatalf("leaked %d bytes", env.budget.used.Load())
	}
}

func TestColStoreAppendBatchRoundTrip(t *testing.T) {
	env := testEnv(t, 0)
	cs := newColStore(env)
	// Three batches with a selection vector on the second.
	for bi := 0; bi < 3; bi++ {
		b := newRowBatch(2)
		for k := 0; k < 10; k++ {
			b.appendRow(Row{NewInt(int64(bi*10 + k)), NewFloat(float64(k) / 2)})
		}
		if bi == 1 {
			b.sel = []int{1, 3, 5}
		}
		if err := cs.AppendBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if cs.Len() != 23 {
		t.Fatalf("len = %d", cs.Len())
	}
	sc, err := cs.batchScan()
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for {
		b, err := sc.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		for _, pos := range b.selection() {
			got = append(got, b.cols[0][pos].I)
		}
	}
	want := []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 13, 15, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d = %d, want %d", i, got[i], want[i])
		}
	}
	cs.Release()
}

func TestColStoreSpillRoundTrip(t *testing.T) {
	env := testEnv(t, 1024) // tiny budget forces columnar chunk spilling
	cs := newColStore(env)
	const n = 2000
	for i := 0; i < n; i++ {
		row := Row{NewInt(int64(i)), NewFloat(float64(i) / 3), NewText("x"), Null, NewBool(i%2 == 0)}
		if err := cs.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	if !cs.Spilled() {
		t.Fatal("expected spill under 1KB budget")
	}
	// Two concurrent cursors must both see everything, with exact types.
	it1, err := cs.Cursor()
	if err != nil {
		t.Fatal(err)
	}
	it2, err := cs.Cursor()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		r1, ok1, err1 := it1.Next()
		r2, ok2, err2 := it2.Next()
		if !ok1 || !ok2 || err1 != nil || err2 != nil {
			t.Fatalf("row %d: %v %v %v %v", i, ok1, ok2, err1, err2)
		}
		if r1[0].I != int64(i) || r2[0].I != int64(i) {
			t.Fatalf("row %d: %v / %v", i, r1, r2)
		}
		if r1[1].F != float64(i)/3 || r1[2].S != "x" {
			t.Fatalf("row %d values lost in spill: %v", i, r1)
		}
		if r1[3].T != TypeNull || r1[4].T != TypeBool || (r1[4].I != 0) != (i%2 == 0) {
			t.Fatalf("types lost in columnar spill: %v", r1)
		}
	}
	cs.Release()
	if env.budget.used.Load() != 0 {
		t.Fatalf("leaked %d bytes", env.budget.used.Load())
	}
}

func TestColStoreThawAppends(t *testing.T) {
	env := testEnv(t, 0)
	cs := newColStore(env)
	for i := 0; i < 50; i++ {
		if err := cs.Append(Row{NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cs.Freeze(); err != nil {
		t.Fatal(err)
	}
	cs.Thaw()
	for i := 50; i < 80; i++ {
		if err := cs.Append(Row{NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	it, err := cs.Cursor()
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		count++
	}
	if count != 80 {
		t.Fatalf("count = %d", count)
	}
	cs.Release()
}

// TestColStoreMixedTypeColumnDegrades drives the generic-vector
// fallback: a column that mixes types must round-trip every value
// exactly, in memory and through the spill format.
func TestColStoreMixedTypeColumnDegrades(t *testing.T) {
	for _, budget := range []int64{0, 1} { // in-memory and all-spilled
		env := testEnv(t, budget)
		cs := newColStore(env)
		rows := []Row{
			{NewInt(7)},
			{NewText("seven")},
			{Null},
			{NewFloat(2.5)},
			{NewBool(true)},
		}
		for _, r := range rows {
			if err := cs.Append(cloneRow(r)); err != nil {
				t.Fatal(err)
			}
		}
		if budget == 0 {
			if kinds := cs.vectorKinds(); kinds[0] != "values" {
				t.Fatalf("kinds = %v, want generic fallback", kinds)
			}
		}
		it, err := cs.Cursor()
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range rows {
			got, ok, err := it.Next()
			if err != nil || !ok {
				t.Fatalf("row %d: ok=%v err=%v", i, ok, err)
			}
			if got[0].T != want[0].T || got[0].String() != want[0].String() {
				t.Fatalf("row %d = %v, want %v (budget=%d)", i, got[0], want[0], budget)
			}
		}
		cs.Release()
	}
}

// TestColStoreMorselScan checks that morsel claims are column-slice
// ranges covering every row exactly once, in order.
func TestColStoreMorselScan(t *testing.T) {
	env := testEnv(t, 0)
	cs := newColStore(env)
	const n = morselRows*2 + 123
	b := newRowBatch(1)
	for i := 0; i < n; i++ {
		b.appendRow(Row{NewInt(int64(i))})
		if b.full() {
			if err := cs.AppendBatch(b); err != nil {
				t.Fatal(err)
			}
			b.reset()
		}
	}
	if err := cs.AppendBatch(b); err != nil {
		t.Fatal(err)
	}
	if got := cs.morselCount(); got != 3 {
		t.Fatalf("morselCount = %d", got)
	}
	sc, err := cs.morselScanner()
	if err != nil {
		t.Fatal(err)
	}
	next := int64(0)
	for m := 0; m < 3; m++ {
		sc.setMorsel(m)
		for {
			batch, err := sc.NextBatch()
			if err != nil {
				t.Fatal(err)
			}
			if batch == nil {
				break
			}
			for _, pos := range batch.selection() {
				if batch.cols[0][pos].I != next {
					t.Fatalf("morsel %d: got %d want %d", m, batch.cols[0][pos].I, next)
				}
				next++
			}
		}
	}
	if next != n {
		t.Fatalf("scanned %d rows, want %d", next, n)
	}
	cs.Release()
}

// TestColStorePropertyRoundTrip pushes random values through the
// all-spilled columnar chunk codec and demands exact round-trips (type
// tags and float bit patterns included).
func TestColStorePropertyRoundTrip(t *testing.T) {
	env := testEnv(t, 1) // everything spills → full chunk encode/decode
	f := func(i int64, fl float64, s string, b bool, hasNull bool) bool {
		cs := newColStore(env)
		defer cs.Release()
		row := Row{NewInt(i), NewFloat(fl), NewText(s), NewBool(b)}
		if hasNull {
			row = append(row, Null)
		}
		if err := cs.Append(cloneRow(row)); err != nil {
			return false
		}
		it, err := cs.Cursor()
		if err != nil {
			return false
		}
		got, ok, err := it.Next()
		if err != nil || !ok || len(got) != len(row) {
			return false
		}
		for j := range row {
			if got[j].T != row[j].T {
				return false
			}
			// NaN != NaN: compare rendered bit patterns via String.
			if got[j].String() != row[j].String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestColStoreNullRunsPromote covers kind inference across NULL runs: a
// column that starts with NULLs adopts the first real type and keeps
// the earlier rows NULL.
func TestColStoreNullRunsPromote(t *testing.T) {
	env := testEnv(t, 0)
	cs := newColStore(env)
	for i := 0; i < 70; i++ { // span a bitmap word boundary
		if err := cs.Append(Row{Null}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cs.Append(Row{NewFloat(1.25)}); err != nil {
		t.Fatal(err)
	}
	if kinds := cs.vectorKinds(); kinds[0] != "float64" {
		t.Fatalf("kinds = %v", kinds)
	}
	it, err := cs.Cursor()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 70; i++ {
		row, ok, _ := it.Next()
		if !ok || row[0].T != TypeNull {
			t.Fatalf("row %d = %v, want NULL", i, row)
		}
	}
	row, ok, _ := it.Next()
	if !ok || row[0].T != TypeFloat || row[0].F != 1.25 {
		t.Fatalf("promoted row = %v", row)
	}
	cs.Release()
}
