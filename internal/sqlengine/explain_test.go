package sqlengine

import (
	"strings"
	"testing"
)

func TestExplainSimpleScan(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b REAL)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 2.0), (3, 4.0)")
	plan, err := db.Explain("SELECT a FROM t WHERE a > 1 ORDER BY a LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"output: a", "Limit", "Sort", "Project a", "Filter (a > 1)", "Scan t (rows=2"} {
		if !strings.Contains(plan, frag) {
			t.Fatalf("plan missing %q:\n%s", frag, plan)
		}
	}
}

func TestExplainHashJoinAndAggregate(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE a (x INTEGER)")
	mustExec(t, db, "CREATE TABLE b (x INTEGER, y INTEGER)")
	plan, err := db.Explain("SELECT a.x, COUNT(*) FROM a JOIN b ON a.x = b.x GROUP BY a.x")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "HashJoin (INNER) on a.x = b.x") {
		t.Fatalf("plan:\n%s", plan)
	}
	if !strings.Contains(plan, "HashAggregate keys=[a.x] aggs=[COUNT(*)]") {
		t.Fatalf("plan:\n%s", plan)
	}
}

func TestExplainCTEInlined(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (s INTEGER, r REAL)")
	plan, err := db.Explain(`WITH u AS (SELECT s * 2 AS d FROM t) SELECT d FROM u WHERE d > 0`)
	if err != nil {
		t.Fatal(err)
	}
	// The CTE is inlined: its Project over the base scan appears in the
	// plan and no data was touched.
	if !strings.Contains(plan, "As u") || !strings.Contains(plan, "Scan t") {
		t.Fatalf("plan:\n%s", plan)
	}
}

// TestExplainDoesNotExecute verifies EXPLAIN leaves tables and engine
// stats untouched even for queries over large tables.
func TestExplainDoesNotExecute(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (x INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2), (3)")
	before := db.Stats()
	if _, err := db.Explain("WITH big AS (SELECT a.x FROM t a, t b, t c) SELECT COUNT(*) FROM big"); err != nil {
		t.Fatal(err)
	}
	after := db.Stats()
	if after.SpilledRows != before.SpilledRows {
		t.Fatal("EXPLAIN caused spilling")
	}
}

func TestExplainFig2Query(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE T0 (s INTEGER, r REAL, i REAL)")
	mustExec(t, db, "CREATE TABLE H (in_s INTEGER, out_s INTEGER, r REAL, i REAL)")
	plan, err := db.Explain(`WITH T1 AS (
		SELECT ((T0.s & ~1) | H.out_s) AS s,
		       SUM((T0.r * H.r) - (T0.i * H.i)) AS r,
		       SUM((T0.r * H.i) + (T0.i * H.r)) AS i
		FROM T0 JOIN H ON H.in_s = (T0.s & 1)
		GROUP BY ((T0.s & ~1) | H.out_s)
	) SELECT s, r, i FROM T1 ORDER BY s`)
	if err != nil {
		t.Fatal(err)
	}
	// The gate application shows up as HashJoin + HashAggregate — the
	// relational machinery the paper delegates to the RDBMS.
	if !strings.Contains(plan, "HashJoin (INNER) on (T0.s & 1) = H.in_s") {
		t.Fatalf("plan:\n%s", plan)
	}
	if !strings.Contains(plan, "HashAggregate") || !strings.Contains(plan, "SUM(") {
		t.Fatalf("plan:\n%s", plan)
	}
}

func TestExplainErrors(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Explain("CREATE TABLE t (x INTEGER)"); err == nil {
		t.Fatal("expected error for non-SELECT")
	}
	if _, err := db.Explain("SELECT * FROM missing"); err == nil {
		t.Fatal("expected error for missing table")
	}
}

// TestExplainBatchOperators pins the vectorized executor's operator
// names and per-operator row counts: plans must advertise the batched
// physical operators (BatchScan/BatchFilter/BatchProject), the batch
// size, and the scanned row count.
func TestExplainBatchOperators(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b REAL)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 2.0), (3, 4.0), (5, 6.0)")
	plan, err := db.Explain("SELECT a * 2 FROM t WHERE a > 1 ORDER BY a LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"executor: vectorized (batch=1024, selection vectors)",
		// Column b is dead: the optimizer prunes the scan to column a and
		// pushes the filter into it.
		"BatchScan t (rows=3, cols=1, batch=1024, layout=columnar[int64 float64], pruned=2->1 cols [a], zonemap=1 checks)",
		"BatchFilter (a > 1) [selection vector] [pushed to scan]",
		"BatchProject (a * 2)",
	} {
		if !strings.Contains(plan, frag) {
			t.Fatalf("plan missing %q:\n%s", frag, plan)
		}
	}
}

// TestExplainStorageLayout pins the storage annotations: the header
// names the configured layout and every base-table scan reports its
// physical format — for the columnar store, the vector type of each
// column.
func TestExplainStorageLayout(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (s INTEGER, r REAL, name TEXT, ok BOOLEAN)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 0.5, 'x', TRUE), (2, 0.25, NULL, FALSE)")
	plan, err := db.Explain("SELECT s FROM t")
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"storage: columnar (typed column vectors + null bitmaps, spill=column chunks, encodings=on)",
		"layout=columnar[int64 float64 string bool]",
	} {
		if !strings.Contains(plan, frag) {
			t.Fatalf("plan missing %q:\n%s", frag, plan)
		}
	}

	// A column that mixes types degrades to the generic vector and says
	// so.
	mustExec(t, db, "CREATE TABLE m (v INTEGER)")
	mustExec(t, db, "INSERT INTO m VALUES (1), ('text')")
	plan, err = db.Explain("SELECT v FROM m")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "layout=columnar[values]") {
		t.Fatalf("plan missing generic-vector annotation:\n%s", plan)
	}

	// The legacy row layout is reported as such, with no vector kinds.
	rowDB, err := Open(Config{Layout: LayoutRow})
	if err != nil {
		t.Fatal(err)
	}
	defer rowDB.Close()
	mustExec(t, rowDB, "CREATE TABLE t (s INTEGER)")
	plan, err = rowDB.Explain("SELECT s FROM t")
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"storage: row (legacy []Row layout)", "layout=row)"} {
		if !strings.Contains(plan, frag) {
			t.Fatalf("plan missing %q:\n%s", frag, plan)
		}
	}
}

// TestExplainBatchJoinAggregateModes verifies the blocking operators
// report their batch execution strategy: streaming probe for hash
// joins, streaming vs materialized hash aggregation (DISTINCT
// aggregates cannot stream).
func TestExplainBatchJoinAggregateModes(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE a (x INTEGER)")
	mustExec(t, db, "CREATE TABLE b (x INTEGER, y INTEGER)")
	plan, err := db.Explain("SELECT a.x, COUNT(*) FROM a JOIN b ON a.x = b.x GROUP BY a.x")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "HashJoin (INNER) on a.x = b.x [streaming batch probe]") {
		t.Fatalf("plan:\n%s", plan)
	}
	if !strings.Contains(plan, "HashAggregate keys=[a.x] aggs=[COUNT(*)] [streaming]") {
		t.Fatalf("plan:\n%s", plan)
	}
	plan, err = db.Explain("SELECT COUNT(DISTINCT y) FROM b")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "aggs=[COUNT(DISTINCT y)] [materialized]") {
		t.Fatalf("plan:\n%s", plan)
	}
}

func TestExplainWithUnboundParams(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (x INTEGER)")
	plan, err := db.Explain("SELECT x FROM t WHERE x > ?")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "Filter") {
		t.Fatalf("plan:\n%s", plan)
	}
}
