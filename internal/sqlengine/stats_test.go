package sqlengine

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// TestStatsIncrementalAtAppend: base tables collect row counts, null
// counts, int min/max, zero counts, and distinct estimates as rows are
// appended — no ANALYZE needed.
func TestStatsIncrementalAtAppend(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (s INTEGER, r REAL, name TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES (5, 0.0, 'a'), (7, 1.5, 'b'), (-3, 0.0, NULL), (7, 2.5, 'a')")
	ts := storeStats(db.lookupTable("t").store)
	if ts == nil {
		t.Fatal("no statistics collected")
	}
	if ts.rows != 4 {
		t.Fatalf("rows = %d", ts.rows)
	}
	s := ts.col(0)
	if !s.intSeen || s.intMin != -3 || s.intMax != 7 {
		t.Fatalf("int min/max = %+v", s)
	}
	if d := s.distinct(); d < 2.5 || d > 3.5 {
		t.Fatalf("distinct(s) = %g, want ~3", d)
	}
	r := ts.col(1)
	if r.zeros != 2 {
		t.Fatalf("zeros(r) = %d", r.zeros)
	}
	name := ts.col(2)
	if name.nulls != 1 {
		t.Fatalf("nulls(name) = %d", name.nulls)
	}
	if d := name.distinct(); d < 1.5 || d > 2.5 {
		t.Fatalf("distinct(name) = %g, want ~2", d)
	}
}

// TestStatsSurviveDeleteUpdate: DELETE/UPDATE rewrite the table through
// a fresh collector, so statistics stay exact.
func TestStatsSurviveDeleteUpdate(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b INTEGER)")
	fillSequence(t, db, "t", 100)
	mustExec(t, db, "DELETE FROM t WHERE a >= 50")
	ts := storeStats(db.lookupTable("t").store)
	if ts == nil || ts.rows != 50 {
		t.Fatalf("stats after DELETE: %+v", ts)
	}
	if c := ts.col(0); c.intMax != 49 {
		t.Fatalf("intMax after DELETE = %d, want 49", c.intMax)
	}
	mustExec(t, db, "UPDATE t SET a = a + 1000 WHERE a < 10")
	ts = storeStats(db.lookupTable("t").store)
	if c := ts.col(0); c.intMax != 1009 || c.intMin != 10 {
		t.Fatalf("min/max after UPDATE = [%d, %d], want [10, 1009]", c.intMin, c.intMax)
	}
}

// TestAnalyzeStatement: CTAS results collect column statistics during
// materialization, so ANALYZE finds them fresh and just reports the
// row count instead of rescanning.
func TestAnalyzeStatement(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE src (a INTEGER, b REAL)")
	fillSequence(t, db, "src", 200)
	mustExec(t, db, "CREATE TABLE derived AS SELECT a * 2 AS a2, b FROM src")
	ts := storeStats(db.lookupTable("derived").store)
	if ts == nil || ts.rows != 200 {
		t.Fatalf("stats after CTAS: %+v", ts)
	}
	if c := ts.col(0); c.intMin != 0 || c.intMax != 398 {
		t.Fatalf("min/max after CTAS = [%d, %d]", c.intMin, c.intMax)
	}
	n := mustExec(t, db, "ANALYZE derived")
	if n != 200 {
		t.Fatalf("ANALYZE returned %d rows", n)
	}
	// The analyzed table keeps collecting on later appends.
	mustExec(t, db, "INSERT INTO derived VALUES (1000, 0.0)")
	ts = storeStats(db.lookupTable("derived").store)
	if ts.rows != 201 || ts.col(0).intMax != 1000 {
		t.Fatalf("stats not incremental after ANALYZE: %+v", ts)
	}
	// Errors.
	if _, err := db.Exec("ANALYZE missing"); err == nil {
		t.Fatal("expected error for ANALYZE of missing table")
	}
}

// TestAnalyzeKeepsThawedState: ANALYZE freezes the store for its scan
// but must restore writability for subsequent inserts.
func TestAnalyzeKeepsThawedState(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	mustExec(t, db, "ANALYZE t")
	mustExec(t, db, "INSERT INTO t VALUES (2)")
	rows := queryAll(t, db, "SELECT a FROM t ORDER BY a")
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

// TestDistinctSketchAccuracy: the linear-counting sketch stays within a
// usable error band in its design range and saturates gracefully.
func TestDistinctSketchAccuracy(t *testing.T) {
	for _, n := range []int{10, 100, 1000, 5000} {
		var s distinctSketch
		for i := 0; i < n; i++ {
			s.add(mix64(uint64(i), 7))
		}
		est := s.estimate()
		relErr := math.Abs(est-float64(n)) / float64(n)
		if n <= 1000 && relErr > 0.15 {
			t.Fatalf("n=%d: estimate %.0f (err %.2f)", n, est, relErr)
		}
		if est < float64(n)/3 {
			t.Fatalf("n=%d: estimate %.0f collapsed", n, est)
		}
	}
}

// TestStatsDriveJoinEstimate: the gate-query join estimate uses the
// gate table's key distinct count (fanout), mirroring the paper's
// T ⋈ G cardinality |T| * |G| / distinct(in_s).
func TestStatsDriveJoinEstimate(t *testing.T) {
	db := newOptDB(t, Config{Parallelism: 1})
	mustExec(t, db, "CREATE TABLE t0 (s INTEGER, r REAL, i REAL)")
	mustExec(t, db, "CREATE TABLE h (in_s INTEGER, out_s INTEGER, r REAL, i REAL)")
	mustExec(t, db, "INSERT INTO h VALUES (0,0,0.7,0),(0,1,0.7,0),(1,0,0.7,0),(1,1,-0.7,0)")
	var vals []string
	for k := 0; k < 1024; k++ {
		vals = append(vals, fmt.Sprintf("(%d, 1.0, 0.0)", k))
	}
	mustExec(t, db, "INSERT INTO t0 VALUES "+strings.Join(vals, ","))
	plan, err := db.Explain("SELECT t0.s, h.out_s FROM t0 JOIN h ON h.in_s = (t0.s & 1)")
	if err != nil {
		t.Fatal(err)
	}
	// |t0|=1024, |h|=4, distinct(in_s)~2 -> est ~2048 (the probabilistic
	// sketch lands within a fraction of a percent).
	if !strings.Contains(plan, "HashJoin (INNER) on (t0.s & 1) = h.in_s [streaming batch probe] (est_rows=204") {
		t.Fatalf("join estimate missing or wrong:\n%s", plan)
	}
}
