package sqlengine

import (
	"fmt"
	"strconv"
	"strings"
)

// planner lowers an optimized logical plan into the physical planNode
// tree, materializing CTEs on the way:
//
//   - optimizer on: a CTE is materialized on first reference (dead CTEs
//     are never executed) unless the optimizer marked it inline, in
//     which case the reference lowers to the subplan itself.
//   - optimizer off (eager): every defined CTE is materialized in
//     definition order before lowering, reproducing the legacy planner.
//   - EXPLAIN mode: nothing executes; materialized CTEs lower to a
//     display wrapper around their subplan.
type planner struct {
	ctx     *execCtx
	db      *DB
	cleanup []tableStore // temp stores to release when the statement ends
	explain bool
	// stubCTE lowers unmaterialized CTE references to schema-only stubs
	// instead of materializing them — compile-only mode used by chain
	// fusion to lower one stage without recursing into the chain below
	// it (kernel_chain.go).
	stubCTE bool
	// chainCounted caps chain-fusion fallback accounting at one decline
	// per statement (the materialization recursion would otherwise
	// re-count every suffix of the same chain).
	chainCounted bool
}

func (p *planner) release() {
	for _, s := range p.cleanup {
		s.Release()
	}
	p.cleanup = nil
}

// buildPlan parses nothing: it lowers sel through the logical IR,
// optionally the optimizer, and the physical planner. The returned
// planner owns temporary CTE stores and must be released after
// execution.
func (db *DB) buildPlan(ctx *execCtx, sel *SelectStmt, explain bool) (planNode, []string, *planner, error) {
	b := &logicalBuilder{db: db}
	root, names, err := b.buildSelect(sel, nil)
	if err != nil {
		return nil, nil, nil, err
	}
	if db.env.optimizer {
		root = optimizeLogical(root, b.defs, db.env)
	}
	p := &planner{ctx: ctx, db: db, explain: explain}
	if !db.env.optimizer && !explain {
		// Legacy eager behavior: materialize every WITH entry in
		// definition order, referenced or not.
		for _, d := range b.defs {
			if err := p.materializeCTE(d); err != nil {
				p.release()
				return nil, nil, nil, err
			}
		}
	}
	node, err := p.lower(root)
	if err != nil {
		p.release()
		return nil, nil, nil, err
	}
	return node, names, p, nil
}

// materializeCTE executes a CTE's plan into a shared store (once).
// When d tops a fusable run of gate-stage CTEs, the whole run executes
// as one fused kernel pass instead (kernel_chain.go).
func (p *planner) materializeCTE(d *cteDef) error {
	if d.store != nil {
		return nil
	}
	if done, err := p.fuseCTEChain(d); done || err != nil {
		return err
	}
	node, err := p.lower(d.plan)
	if err != nil {
		return err
	}
	store, err := materializePlan(p.ctx, node)
	if err != nil {
		return err
	}
	p.cleanup = append(p.cleanup, store)
	d.store = store
	return nil
}

// andJoin folds conjuncts back into one AND tree.
func andJoin(conjuncts []Expr) Expr {
	var out Expr
	for _, c := range conjuncts {
		if out == nil {
			out = c
		} else {
			out = &BinaryExpr{Op: "AND", L: out, R: c}
		}
	}
	return out
}

// lower converts one logical subtree to physical operators.
func (p *planner) lower(n logicalNode) (planNode, error) {
	node, _, err := p.lowerEst(n)
	return node, err
}

// scaleEst refreshes a node's planning-time estimate with the
// actual-informed row count of its input: planned output / planned
// input gives the node's selectivity (or fan-out) ratio, which is then
// applied to the refreshed input cardinality. Returns -1 when either
// side is unknown (optimizer off).
func scaleEst(est *nodeEst, plannedIn, actualIn float64) float64 {
	if est == nil || est.rows < 0 || actualIn < 0 {
		return -1
	}
	if plannedIn <= 0 {
		return est.rows
	}
	return est.rows / plannedIn * actualIn
}

// lowerEst lowers one logical subtree and returns its actual-informed
// row estimate (-1 unknown). CTE materialization happens during
// lowering, so by the time a consumer of a materialized CTE is lowered
// its input cardinality is known *exactly* — the hints bound here
// (hash-table pre-sizing, store capacities, grace choice) therefore use
// real sizes instead of the chain-compounded planning estimates, which
// decay badly across long translated gate pipelines.
func (p *planner) lowerEst(n logicalNode) (planNode, float64, error) {
	switch t := n.(type) {
	case *lOneRow:
		return &oneRowNode{}, 1, nil

	case *lScan:
		rows := float64(-1)
		if t.est.rows >= 0 {
			rows = t.est.rows
		}
		scan := &storeScanNode{store: t.meta.store, cols: t.lschema(), keep: t.keep, fullCols: len(t.cols), est: t.est}
		if p.db.env.encodings {
			scan.zp = compileZonePred(t.filters, t.lschema(), t.keep)
		}
		var node planNode = scan
		if pred := andJoin(t.filters); pred != nil {
			node = &filterNode{child: node, pred: pred, pushed: true, est: t.est}
		}
		return node, rows, nil

	case *lCTERef:
		if t.cte.inline {
			child, rows, err := p.lowerEst(t.cte.plan)
			if err != nil {
				return nil, -1, err
			}
			return &aliasNode{child: child, table: t.qual, names: t.cte.cols, est: t.est}, rows, nil
		}
		if p.explain {
			// Display-only: show the subplan under a materialization
			// marker instead of executing it.
			child, rows, err := p.lowerEst(t.cte.plan)
			if err != nil {
				return nil, -1, err
			}
			show := &cteShowNode{name: t.cte.name, uses: t.cte.uses, child: child}
			return &aliasNode{child: show, table: t.qual, names: t.cte.cols, est: t.est}, rows, nil
		}
		if p.stubCTE && t.cte.store == nil {
			// Compile-only: stand in for the unmaterialized reference
			// (chain fusion lowers each stage against its predecessor's
			// schema, never its data). Materialized CTEs fall through to
			// the normal store scan so a chain bottom binds real data.
			stub := &cteStubNode{name: t.cte.name, cols: t.cols}
			rows := float64(-1)
			if t.est.rows >= 0 {
				rows = t.est.rows
			}
			return &aliasNode{child: stub, table: t.qual, names: t.cte.cols, est: t.est}, rows, nil
		}
		if err := p.materializeCTE(t.cte); err != nil {
			return nil, -1, err
		}
		rows := float64(-1)
		if t.est.rows >= 0 {
			rows = float64(t.cte.store.Len()) // exact
			t.est.rows = rows
		}
		return &storeScanNode{store: t.cte.store, cols: t.cols, est: t.est}, rows, nil

	case *lFilter:
		plannedIn := t.child.estimate().rows // before lowering refreshes it
		child, inRows, err := p.lowerEst(t.child)
		if err != nil {
			return nil, -1, err
		}
		rows := scaleEst(t.est, plannedIn, inRows)
		if rows >= 0 {
			t.est.rows = rows
		}
		return &filterNode{child: child, pred: andJoin(t.conjuncts), est: t.est}, rows, nil

	case *lProject:
		child, rows, err := p.lowerEst(t.child)
		if err != nil {
			return nil, -1, err
		}
		if rows >= 0 {
			t.est.rows = rows
		}
		return &projectNode{child: child, exprs: t.exprs, cols: t.cols, est: t.est}, rows, nil

	case *lStrip:
		child, rows, err := p.lowerEst(t.child)
		if err != nil {
			return nil, -1, err
		}
		if rows >= 0 {
			t.est.rows = rows
		}
		return &sliceProjectNode{child: child, keep: t.keep, est: t.est}, rows, nil

	case *lPick:
		child, rows, err := p.lowerEst(t.child)
		if err != nil {
			return nil, -1, err
		}
		if rows >= 0 {
			t.est.rows = rows
		}
		return &pickNode{child: child, idxs: t.idxs, cols: t.lschema(), est: t.est}, rows, nil

	case *lJoin:
		plannedL, plannedR := t.left.estimate().rows, t.right.estimate().rows
		left, lr, err := p.lowerEst(t.left)
		if err != nil {
			return nil, -1, err
		}
		right, rr, err := p.lowerEst(t.right)
		if err != nil {
			return nil, -1, err
		}
		rows := float64(-1)
		if t.est.rows >= 0 && lr >= 0 && rr >= 0 {
			rows = t.est.rows
			if plannedL > 0 {
				rows = rows / plannedL * lr
			}
			if plannedR > 0 {
				rows = rows / plannedR * rr
			}
			t.est.rows = rows
		}
		jn := &joinNode{
			left: left, right: right, joinType: t.joinType,
			leftKeys: t.leftKeys, rightKeys: t.rightKeys, residual: t.residual,
			strategy: t.strategy, buildHint: t.buildHint, flipped: t.flipped,
			est: t.est,
		}
		if rr >= 0 {
			// Re-bind the build-side decisions to the refreshed size.
			if t.hintable {
				jn.buildHint = hintForBudget(rr, p.db.env.budget)
			}
			if len(t.leftKeys) > 0 && p.db.env.spillEnabled {
				if limit := p.db.env.budget.Limit(); limit > 0 {
					if rr*estRowBytes(len(t.right.lschema())+len(t.rightKeys)) > float64(limit) {
						jn.strategy = joinGrace
					} else if t.strategy == joinGrace {
						jn.strategy = joinAuto
					}
				}
			}
		}
		return jn, rows, nil

	case *lAgg:
		plannedIn := t.child.estimate().rows
		child, inRows, err := p.lowerEst(t.child)
		if err != nil {
			return nil, -1, err
		}
		rows := scaleEst(t.est, plannedIn, inRows)
		hint := t.groupHint
		if rows >= 0 {
			if inRows >= 0 && rows > inRows {
				rows = inRows
			}
			if rows < 1 {
				rows = 1
			}
			t.est.rows = rows
			if t.hintable {
				hint = hintForBudget(rows, p.db.env.budget)
			}
		}
		return &aggNode{child: child, groupBy: t.groupBy, aggs: t.aggs, groupHint: hint, est: t.est}, rows, nil

	case *lSort:
		child, rows, err := p.lowerEst(t.child)
		if err != nil {
			return nil, -1, err
		}
		if rows >= 0 {
			t.est.rows = rows
		}
		return &sortNode{child: child, keys: t.keys, est: t.est}, rows, nil

	case *lLimit:
		child, rows, err := p.lowerEst(t.child)
		if err != nil {
			return nil, -1, err
		}
		if rows >= 0 {
			if lim, ok := litValue(t.limit); ok && lim.T == TypeInt && float64(lim.I) < rows {
				rows = float64(lim.I)
			}
			t.est.rows = rows
		}
		return &limitNode{child: child, limit: t.limit, offset: t.offset, est: t.est}, rows, nil

	case *lAlias:
		child, rows, err := p.lowerEst(t.child)
		if err != nil {
			return nil, -1, err
		}
		if rows >= 0 {
			t.est.rows = rows
		}
		return &aliasNode{child: child, table: t.table, names: t.names, est: t.est}, rows, nil
	}
	return nil, -1, fmt.Errorf("sqlengine: internal: cannot lower %T", n)
}

// aliasNode re-qualifies (and optionally renames) its child's columns.
type aliasNode struct {
	child planNode
	table string
	names []string // optional; must match child width when set
	est   *nodeEst
}

func (n *aliasNode) schema() planSchema {
	cs := n.child.schema()
	out := make(planSchema, len(cs))
	for i, c := range cs {
		name := c.name
		if n.names != nil {
			name = strings.ToLower(n.names[i])
		}
		out[i] = planCol{table: strings.ToLower(n.table), name: name}
	}
	return out
}

func (n *aliasNode) open(ctx *execCtx) (batchIter, error) { return n.child.open(ctx) }

// cteShowNode is an EXPLAIN-only marker for a CTE that execution would
// materialize (it is never opened).
type cteShowNode struct {
	name  string
	uses  int
	child planNode
}

func (n *cteShowNode) schema() planSchema { return n.child.schema() }

func (n *cteShowNode) open(*execCtx) (batchIter, error) {
	return nil, fmt.Errorf("sqlengine: internal: cteShowNode is explain-only")
}

// outputName picks the user-visible column name for a select item.
func outputName(item SelectItem) string {
	if item.Alias != "" {
		return item.Alias
	}
	if cr, ok := item.Expr.(*ColumnRef); ok {
		return cr.Name
	}
	return item.Expr.Deparse()
}

// splitConjuncts flattens an AND tree.
func splitConjuncts(e Expr) []Expr {
	if b, ok := e.(*BinaryExpr); ok && b.Op == "AND" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []Expr{e}
}

// exprResolvesAgainst reports whether every column in e resolves within
// the schema.
func exprResolvesAgainst(e Expr, schema planSchema) bool {
	ok := true
	walkExpr(e, func(x Expr) {
		if cr, isCol := x.(*ColumnRef); isCol {
			if _, err := schema.resolveColumn(cr.Table, cr.Name); err != nil {
				ok = false
			}
		}
	})
	return ok
}

// extractEquiKeys splits an ON clause into hash-join key pairs and a
// residual predicate.
func extractEquiKeys(on Expr, left, right planSchema) (lks, rks []Expr, residual Expr) {
	var rest []Expr
	for _, c := range splitConjuncts(on) {
		if b, ok := c.(*BinaryExpr); ok && (b.Op == "=" || b.Op == "==") {
			switch {
			case exprResolvesAgainst(b.L, left) && exprResolvesAgainst(b.R, right):
				lks = append(lks, b.L)
				rks = append(rks, b.R)
				continue
			case exprResolvesAgainst(b.L, right) && exprResolvesAgainst(b.R, left):
				lks = append(lks, b.R)
				rks = append(rks, b.L)
				continue
			}
		}
		rest = append(rest, c)
	}
	for _, c := range rest {
		if residual == nil {
			residual = c
		} else {
			residual = &BinaryExpr{Op: "AND", L: residual, R: c}
		}
	}
	return lks, rks, residual
}

// aggRewriter replaces group-by expressions and aggregate calls in a
// SELECT/HAVING/ORDER BY expression with references to the aggNode's
// synthetic output columns.
type aggRewriter struct {
	groupKeys []string // canonical strings of group expressions
	schema    planSchema
	aggs      []aggCall
	aggKeys   []string
}

func newAggRewriter(groupBy []Expr, schema planSchema) (*aggRewriter, error) {
	rw := &aggRewriter{schema: schema}
	for _, g := range groupBy {
		if exprReferencesAggregate(g) {
			return nil, fmt.Errorf("sqlengine: aggregates are not allowed in GROUP BY")
		}
		rw.groupKeys = append(rw.groupKeys, canonicalExprString(g, schema))
	}
	return rw, nil
}

// rewrite returns a copy of e with grouped expressions and aggregates
// replaced by #grp/#agg references.
func (rw *aggRewriter) rewrite(e Expr) Expr {
	canon := canonicalExprString(e, rw.schema)
	for i, k := range rw.groupKeys {
		if canon == k {
			return &ColumnRef{Table: "#grp", Name: "g" + strconv.Itoa(i)}
		}
	}
	if fc, ok := e.(*FuncCall); ok && isAggregateName(fc.Name) {
		var arg Expr
		if !fc.Star {
			if len(fc.Args) != 1 {
				// Compiled later with a clear error; keep as-is.
				return e
			}
			arg = fc.Args[0]
		}
		key := canon
		for i, k := range rw.aggKeys {
			if k == key {
				return &ColumnRef{Table: "#agg", Name: "a" + strconv.Itoa(i)}
			}
		}
		rw.aggs = append(rw.aggs, aggCall{Name: fc.Name, Distinct: fc.Distinct, Arg: arg})
		rw.aggKeys = append(rw.aggKeys, key)
		return &ColumnRef{Table: "#agg", Name: "a" + strconv.Itoa(len(rw.aggs)-1)}
	}
	return rebuildExpr(e, rw.rewrite)
}

// rebuildExpr maps fn over e's direct children, returning a shallow copy.
func rebuildExpr(e Expr, fn func(Expr) Expr) Expr {
	switch n := e.(type) {
	case *BinaryExpr:
		return &BinaryExpr{Op: n.Op, L: fn(n.L), R: fn(n.R)}
	case *UnaryExpr:
		return &UnaryExpr{Op: n.Op, X: fn(n.X)}
	case *FuncCall:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = fn(a)
		}
		return &FuncCall{Name: n.Name, Args: args, Star: n.Star, Distinct: n.Distinct}
	case *CaseExpr:
		out := &CaseExpr{}
		if n.Operand != nil {
			out.Operand = fn(n.Operand)
		}
		for _, w := range n.Whens {
			out.Whens = append(out.Whens, CaseWhen{When: fn(w.When), Then: fn(w.Then)})
		}
		if n.Else != nil {
			out.Else = fn(n.Else)
		}
		return out
	case *IsNullExpr:
		return &IsNullExpr{X: fn(n.X), Not: n.Not}
	case *InExpr:
		list := make([]Expr, len(n.List))
		for i, x := range n.List {
			list[i] = fn(x)
		}
		return &InExpr{X: fn(n.X), List: list, Not: n.Not}
	case *BetweenExpr:
		return &BetweenExpr{X: fn(n.X), Lo: fn(n.Lo), Hi: fn(n.Hi), Not: n.Not}
	case *CastExpr:
		return &CastExpr{X: fn(n.X), To: n.To}
	}
	return e
}

// canonicalExprString renders an expression with column references
// replaced by their resolved slot index, so that "T0.s" and "s" (when
// unambiguous) compare equal for GROUP BY matching.
func canonicalExprString(e Expr, schema planSchema) string {
	switch n := e.(type) {
	case *ColumnRef:
		if idx, err := schema.resolveColumn(n.Table, n.Name); err == nil {
			return "#c" + strconv.Itoa(idx)
		}
		return "?unresolved:" + strings.ToLower(n.Deparse())
	case *BinaryExpr:
		return "(" + canonicalExprString(n.L, schema) + " " + n.Op + " " + canonicalExprString(n.R, schema) + ")"
	case *UnaryExpr:
		return "(" + n.Op + " " + canonicalExprString(n.X, schema) + ")"
	case *FuncCall:
		parts := make([]string, len(n.Args))
		for i, a := range n.Args {
			parts[i] = canonicalExprString(a, schema)
		}
		d := ""
		if n.Distinct {
			d = "DISTINCT "
		}
		if n.Star {
			return n.Name + "(*)"
		}
		return n.Name + "(" + d + strings.Join(parts, ",") + ")"
	case *CaseExpr:
		var b strings.Builder
		b.WriteString("CASE")
		if n.Operand != nil {
			b.WriteString(" " + canonicalExprString(n.Operand, schema))
		}
		for _, w := range n.Whens {
			b.WriteString(" WHEN " + canonicalExprString(w.When, schema))
			b.WriteString(" THEN " + canonicalExprString(w.Then, schema))
		}
		if n.Else != nil {
			b.WriteString(" ELSE " + canonicalExprString(n.Else, schema))
		}
		b.WriteString(" END")
		return b.String()
	case *IsNullExpr:
		s := canonicalExprString(n.X, schema) + " IS "
		if n.Not {
			s += "NOT "
		}
		return s + "NULL"
	case *InExpr:
		parts := make([]string, len(n.List))
		for i, x := range n.List {
			parts[i] = canonicalExprString(x, schema)
		}
		s := canonicalExprString(n.X, schema)
		if n.Not {
			s += " NOT"
		}
		return s + " IN (" + strings.Join(parts, ",") + ")"
	case *BetweenExpr:
		s := canonicalExprString(n.X, schema)
		if n.Not {
			s += " NOT"
		}
		return s + " BETWEEN " + canonicalExprString(n.Lo, schema) + " AND " + canonicalExprString(n.Hi, schema)
	case *CastExpr:
		return "CAST(" + canonicalExprString(n.X, schema) + " AS " + n.To.String() + ")"
	case *Literal:
		return e.Deparse()
	case *ParamRef:
		return "?" + strconv.Itoa(n.Index)
	}
	return e.Deparse()
}
