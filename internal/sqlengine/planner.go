package sqlengine

import (
	"fmt"
	"strconv"
	"strings"
)

// cteScope resolves CTE names, innermost WITH first.
type cteScope struct {
	parent *cteScope
	tables map[string]*cteTable
}

type cteTable struct {
	store tableStore
	cols  []string
	// node is set instead of store in EXPLAIN mode, where CTEs are
	// inlined as subplans rather than materialized.
	node planNode
}

func (s *cteScope) lookup(name string) *cteTable {
	for sc := s; sc != nil; sc = sc.parent {
		if t, ok := sc.tables[strings.ToLower(name)]; ok {
			return t
		}
	}
	return nil
}

// planner builds (and partially executes — CTEs are materialized eagerly)
// the physical plan for one statement.
type planner struct {
	ctx     *execCtx
	db      *DB
	cleanup []tableStore // temp stores to release when the statement ends
	// explain plans without executing: CTEs become inline subplans.
	explain bool
}

func (p *planner) release() {
	for _, s := range p.cleanup {
		s.Release()
	}
	p.cleanup = nil
}

// aliasNode re-qualifies (and optionally renames) its child's columns.
type aliasNode struct {
	child planNode
	table string
	names []string // optional; must match child width when set
}

func (n *aliasNode) schema() planSchema {
	cs := n.child.schema()
	out := make(planSchema, len(cs))
	for i, c := range cs {
		name := c.name
		if n.names != nil {
			name = strings.ToLower(n.names[i])
		}
		out[i] = planCol{table: strings.ToLower(n.table), name: name}
	}
	return out
}

func (n *aliasNode) open(ctx *execCtx) (batchIter, error) { return n.child.open(ctx) }

// planSelect returns the plan root and the user-visible output column
// names.
func (p *planner) planSelect(sel *SelectStmt, scope *cteScope) (planNode, []string, error) {
	// Materialize WITH entries; later CTEs may reference earlier ones.
	if len(sel.With) > 0 {
		scope = &cteScope{parent: scope, tables: map[string]*cteTable{}}
		for _, cte := range sel.With {
			node, names, err := p.planSelect(cte.Select, scope)
			if err != nil {
				return nil, nil, err
			}
			cols := names
			if len(cte.Cols) > 0 {
				if len(cte.Cols) != len(names) {
					return nil, nil, fmt.Errorf("sqlengine: CTE %s declares %d columns but query produces %d", cte.Name, len(cte.Cols), len(names))
				}
				cols = cte.Cols
			}
			if p.explain {
				scope.tables[strings.ToLower(cte.Name)] = &cteTable{node: node, cols: cols}
				continue
			}
			store, err := materializePlan(p.ctx, node)
			if err != nil {
				return nil, nil, err
			}
			p.cleanup = append(p.cleanup, store)
			scope.tables[strings.ToLower(cte.Name)] = &cteTable{store: store, cols: cols}
		}
	}

	// FROM and JOINs.
	var base planNode
	if sel.From == nil {
		base = &oneRowNode{}
	} else {
		var err error
		base, err = p.planTableRef(sel.From, scope)
		if err != nil {
			return nil, nil, err
		}
	}
	for _, join := range sel.Joins {
		right, err := p.planTableRef(join.Table, scope)
		if err != nil {
			return nil, nil, err
		}
		jn := &joinNode{left: base, right: right, joinType: join.Type}
		if join.On != nil {
			lks, rks, residual := extractEquiKeys(join.On, base.schema(), right.schema())
			jn.leftKeys, jn.rightKeys, jn.residual = lks, rks, residual
		}
		base = jn
	}

	if sel.Where != nil {
		if exprReferencesAggregate(sel.Where) {
			return nil, nil, fmt.Errorf("sqlengine: aggregates are not allowed in WHERE")
		}
		base = &filterNode{child: base, pred: sel.Where}
	}

	// Decide whether the query aggregates.
	needsAgg := len(sel.GroupBy) > 0
	for _, item := range sel.Items {
		if !item.Star && exprReferencesAggregate(item.Expr) {
			needsAgg = true
		}
	}
	if sel.Having != nil {
		needsAgg = true
	}

	items := sel.Items
	orderExprs := make([]Expr, len(sel.OrderBy))
	for i, o := range sel.OrderBy {
		orderExprs[i] = o.Expr
	}
	having := sel.Having

	if needsAgg {
		for _, item := range items {
			if item.Star {
				return nil, nil, fmt.Errorf("sqlengine: SELECT * cannot be combined with aggregation")
			}
		}
		rw, err := newAggRewriter(sel.GroupBy, base.schema())
		if err != nil {
			return nil, nil, err
		}
		newItems := make([]SelectItem, len(items))
		for i, item := range items {
			newItems[i] = SelectItem{Expr: rw.rewrite(item.Expr), Alias: item.Alias}
		}
		items = newItems
		if having != nil {
			having = rw.rewrite(having)
		}
		for i, e := range orderExprs {
			if e != nil {
				orderExprs[i] = rw.rewrite(e)
			}
		}
		base = &aggNode{child: base, groupBy: sel.GroupBy, aggs: rw.aggs}
		if having != nil {
			base = &filterNode{child: base, pred: having}
		}
	}

	// Expand stars and determine output names.
	var projExprs []Expr
	var outNames []string
	baseSchema := base.schema()
	for _, item := range items {
		if item.Star {
			matched := false
			for _, c := range baseSchema {
				if item.StarTable != "" && c.table != strings.ToLower(item.StarTable) {
					continue
				}
				matched = true
				projExprs = append(projExprs, &ColumnRef{Table: c.table, Name: c.name})
				outNames = append(outNames, c.name)
			}
			if !matched {
				return nil, nil, fmt.Errorf("sqlengine: no table %q in FROM for %s.*", item.StarTable, item.StarTable)
			}
			continue
		}
		projExprs = append(projExprs, item.Expr)
		outNames = append(outNames, outputName(item))
	}

	outSchema := make(planSchema, len(outNames))
	for i, n := range outNames {
		outSchema[i] = planCol{table: "", name: strings.ToLower(n)}
	}

	// ORDER BY keys: positional, output alias, or hidden input expression.
	type plannedKey struct {
		outIdx int  // >= 0: references an output column
		hidden Expr // non-nil: extra hidden projection
		desc   bool
	}
	var keys []plannedKey
	var hiddenExprs []Expr
	for i, e := range orderExprs {
		desc := sel.OrderBy[i].Desc
		if lit, ok := e.(*Literal); ok && lit.Val.T == TypeInt {
			idx := int(lit.Val.I)
			if idx < 1 || idx > len(projExprs) {
				return nil, nil, fmt.Errorf("sqlengine: ORDER BY position %d out of range", idx)
			}
			keys = append(keys, plannedKey{outIdx: idx - 1, desc: desc})
			continue
		}
		// A bare column matching exactly one output alias refers to it.
		if cr, ok := e.(*ColumnRef); ok && cr.Table == "" {
			if idx, err := outSchema.resolveColumn("", cr.Name); err == nil {
				keys = append(keys, plannedKey{outIdx: idx, desc: desc})
				continue
			}
		}
		if sel.Distinct {
			return nil, nil, fmt.Errorf("sqlengine: ORDER BY expression %s must appear in the SELECT DISTINCT list", e.Deparse())
		}
		keys = append(keys, plannedKey{outIdx: -1, hidden: e, desc: desc})
		hiddenExprs = append(hiddenExprs, e)
	}

	// Projection (with hidden sort keys appended).
	allExprs := append(append([]Expr{}, projExprs...), hiddenExprs...)
	projSchema := make(planSchema, 0, len(allExprs))
	projSchema = append(projSchema, outSchema...)
	for i := range hiddenExprs {
		projSchema = append(projSchema, planCol{table: "#hidden", name: "k" + strconv.Itoa(i)})
	}
	var node planNode = &projectNode{child: base, exprs: allExprs, cols: projSchema}

	// DISTINCT: group by every output column (hidden keys are forbidden
	// above, so the projection width equals the output width).
	if sel.Distinct {
		gb := make([]Expr, len(outNames))
		for i, c := range projSchema[:len(outNames)] {
			gb[i] = &ColumnRef{Table: c.table, Name: c.name}
		}
		node = &aggNode{child: node, groupBy: gb, aggs: nil}
		node = &aliasNode{child: node, table: "", names: outNames}
	}

	// Sort.
	if len(keys) > 0 {
		specs := make([]sortSpec, len(keys))
		schema := node.schema()
		hiddenBase := len(outNames)
		hi := 0
		for i, k := range keys {
			if k.outIdx >= 0 {
				c := schema[k.outIdx]
				specs[i] = sortSpec{expr: &ColumnRef{Table: c.table, Name: c.name}, desc: k.desc}
			} else {
				c := schema[hiddenBase+hi]
				hi++
				specs[i] = sortSpec{expr: &ColumnRef{Table: c.table, Name: c.name}, desc: k.desc}
			}
		}
		node = &sortNode{child: node, keys: specs}
	}

	if sel.Limit != nil || sel.Offset != nil {
		node = &limitNode{child: node, limit: sel.Limit, offset: sel.Offset}
	}

	if len(hiddenExprs) > 0 {
		node = &sliceProjectNode{child: node, keep: len(outNames)}
	}
	return node, outNames, nil
}

// outputName picks the user-visible column name for a select item.
func outputName(item SelectItem) string {
	if item.Alias != "" {
		return item.Alias
	}
	if cr, ok := item.Expr.(*ColumnRef); ok {
		return cr.Name
	}
	return item.Expr.Deparse()
}

func (p *planner) planTableRef(ref TableRef, scope *cteScope) (planNode, error) {
	switch r := ref.(type) {
	case *TableName:
		qual := r.Name
		if r.Alias != "" {
			qual = r.Alias
		}
		if cte := scope.lookup(r.Name); cte != nil {
			if cte.node != nil { // EXPLAIN mode: inline the subplan
				return &aliasNode{child: cte.node, table: qual, names: cte.cols}, nil
			}
			cols := make(planSchema, len(cte.cols))
			for i, c := range cte.cols {
				cols[i] = planCol{table: strings.ToLower(qual), name: strings.ToLower(c)}
			}
			return &storeScanNode{store: cte.store, cols: cols}, nil
		}
		meta := p.db.lookupTable(r.Name)
		if meta == nil {
			return nil, fmt.Errorf("sqlengine: no such table: %s", r.Name)
		}
		cols := make(planSchema, len(meta.Cols))
		for i, c := range meta.Cols {
			cols[i] = planCol{table: strings.ToLower(qual), name: strings.ToLower(c.Name)}
		}
		return &storeScanNode{store: meta.store, cols: cols}, nil

	case *SubqueryRef:
		node, names, err := p.planSelect(r.Select, scope)
		if err != nil {
			return nil, err
		}
		return &aliasNode{child: node, table: r.Alias, names: names}, nil
	}
	return nil, fmt.Errorf("sqlengine: unsupported table reference %T", ref)
}

// splitConjuncts flattens an AND tree.
func splitConjuncts(e Expr) []Expr {
	if b, ok := e.(*BinaryExpr); ok && b.Op == "AND" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []Expr{e}
}

// exprResolvesAgainst reports whether every column in e resolves within
// the schema.
func exprResolvesAgainst(e Expr, schema planSchema) bool {
	ok := true
	walkExpr(e, func(x Expr) {
		if cr, isCol := x.(*ColumnRef); isCol {
			if _, err := schema.resolveColumn(cr.Table, cr.Name); err != nil {
				ok = false
			}
		}
	})
	return ok
}

// extractEquiKeys splits an ON clause into hash-join key pairs and a
// residual predicate.
func extractEquiKeys(on Expr, left, right planSchema) (lks, rks []Expr, residual Expr) {
	var rest []Expr
	for _, c := range splitConjuncts(on) {
		if b, ok := c.(*BinaryExpr); ok && (b.Op == "=" || b.Op == "==") {
			switch {
			case exprResolvesAgainst(b.L, left) && exprResolvesAgainst(b.R, right):
				lks = append(lks, b.L)
				rks = append(rks, b.R)
				continue
			case exprResolvesAgainst(b.L, right) && exprResolvesAgainst(b.R, left):
				lks = append(lks, b.R)
				rks = append(rks, b.L)
				continue
			}
		}
		rest = append(rest, c)
	}
	for _, c := range rest {
		if residual == nil {
			residual = c
		} else {
			residual = &BinaryExpr{Op: "AND", L: residual, R: c}
		}
	}
	return lks, rks, residual
}

// aggRewriter replaces group-by expressions and aggregate calls in a
// SELECT/HAVING/ORDER BY expression with references to the aggNode's
// synthetic output columns.
type aggRewriter struct {
	groupKeys []string // canonical strings of group expressions
	schema    planSchema
	aggs      []aggCall
	aggKeys   []string
}

func newAggRewriter(groupBy []Expr, schema planSchema) (*aggRewriter, error) {
	rw := &aggRewriter{schema: schema}
	for _, g := range groupBy {
		if exprReferencesAggregate(g) {
			return nil, fmt.Errorf("sqlengine: aggregates are not allowed in GROUP BY")
		}
		rw.groupKeys = append(rw.groupKeys, canonicalExprString(g, schema))
	}
	return rw, nil
}

// rewrite returns a copy of e with grouped expressions and aggregates
// replaced by #grp/#agg references.
func (rw *aggRewriter) rewrite(e Expr) Expr {
	canon := canonicalExprString(e, rw.schema)
	for i, k := range rw.groupKeys {
		if canon == k {
			return &ColumnRef{Table: "#grp", Name: "g" + strconv.Itoa(i)}
		}
	}
	if fc, ok := e.(*FuncCall); ok && isAggregateName(fc.Name) {
		var arg Expr
		if !fc.Star {
			if len(fc.Args) != 1 {
				// Compiled later with a clear error; keep as-is.
				return e
			}
			arg = fc.Args[0]
		}
		key := canon
		for i, k := range rw.aggKeys {
			if k == key {
				return &ColumnRef{Table: "#agg", Name: "a" + strconv.Itoa(i)}
			}
		}
		rw.aggs = append(rw.aggs, aggCall{Name: fc.Name, Distinct: fc.Distinct, Arg: arg})
		rw.aggKeys = append(rw.aggKeys, key)
		return &ColumnRef{Table: "#agg", Name: "a" + strconv.Itoa(len(rw.aggs)-1)}
	}
	return rebuildExpr(e, rw.rewrite)
}

// rebuildExpr maps fn over e's direct children, returning a shallow copy.
func rebuildExpr(e Expr, fn func(Expr) Expr) Expr {
	switch n := e.(type) {
	case *BinaryExpr:
		return &BinaryExpr{Op: n.Op, L: fn(n.L), R: fn(n.R)}
	case *UnaryExpr:
		return &UnaryExpr{Op: n.Op, X: fn(n.X)}
	case *FuncCall:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = fn(a)
		}
		return &FuncCall{Name: n.Name, Args: args, Star: n.Star, Distinct: n.Distinct}
	case *CaseExpr:
		out := &CaseExpr{}
		if n.Operand != nil {
			out.Operand = fn(n.Operand)
		}
		for _, w := range n.Whens {
			out.Whens = append(out.Whens, CaseWhen{When: fn(w.When), Then: fn(w.Then)})
		}
		if n.Else != nil {
			out.Else = fn(n.Else)
		}
		return out
	case *IsNullExpr:
		return &IsNullExpr{X: fn(n.X), Not: n.Not}
	case *InExpr:
		list := make([]Expr, len(n.List))
		for i, x := range n.List {
			list[i] = fn(x)
		}
		return &InExpr{X: fn(n.X), List: list, Not: n.Not}
	case *BetweenExpr:
		return &BetweenExpr{X: fn(n.X), Lo: fn(n.Lo), Hi: fn(n.Hi), Not: n.Not}
	case *CastExpr:
		return &CastExpr{X: fn(n.X), To: n.To}
	}
	return e
}

// canonicalExprString renders an expression with column references
// replaced by their resolved slot index, so that "T0.s" and "s" (when
// unambiguous) compare equal for GROUP BY matching.
func canonicalExprString(e Expr, schema planSchema) string {
	switch n := e.(type) {
	case *ColumnRef:
		if idx, err := schema.resolveColumn(n.Table, n.Name); err == nil {
			return "#c" + strconv.Itoa(idx)
		}
		return "?unresolved:" + strings.ToLower(n.Deparse())
	case *BinaryExpr:
		return "(" + canonicalExprString(n.L, schema) + " " + n.Op + " " + canonicalExprString(n.R, schema) + ")"
	case *UnaryExpr:
		return "(" + n.Op + " " + canonicalExprString(n.X, schema) + ")"
	case *FuncCall:
		parts := make([]string, len(n.Args))
		for i, a := range n.Args {
			parts[i] = canonicalExprString(a, schema)
		}
		d := ""
		if n.Distinct {
			d = "DISTINCT "
		}
		if n.Star {
			return n.Name + "(*)"
		}
		return n.Name + "(" + d + strings.Join(parts, ",") + ")"
	case *CaseExpr:
		var b strings.Builder
		b.WriteString("CASE")
		if n.Operand != nil {
			b.WriteString(" " + canonicalExprString(n.Operand, schema))
		}
		for _, w := range n.Whens {
			b.WriteString(" WHEN " + canonicalExprString(w.When, schema))
			b.WriteString(" THEN " + canonicalExprString(w.Then, schema))
		}
		if n.Else != nil {
			b.WriteString(" ELSE " + canonicalExprString(n.Else, schema))
		}
		b.WriteString(" END")
		return b.String()
	case *IsNullExpr:
		s := canonicalExprString(n.X, schema) + " IS "
		if n.Not {
			s += "NOT "
		}
		return s + "NULL"
	case *InExpr:
		parts := make([]string, len(n.List))
		for i, x := range n.List {
			parts[i] = canonicalExprString(x, schema)
		}
		s := canonicalExprString(n.X, schema)
		if n.Not {
			s += " NOT"
		}
		return s + " IN (" + strings.Join(parts, ",") + ")"
	case *BetweenExpr:
		s := canonicalExprString(n.X, schema)
		if n.Not {
			s += " NOT"
		}
		return s + " BETWEEN " + canonicalExprString(n.Lo, schema) + " AND " + canonicalExprString(n.Hi, schema)
	case *CastExpr:
		return "CAST(" + canonicalExprString(n.X, schema) + " AS " + n.To.String() + ")"
	case *Literal:
		return e.Deparse()
	case *ParamRef:
		return "?" + strconv.Itoa(n.Index)
	}
	return e.Deparse()
}
