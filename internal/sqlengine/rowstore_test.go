package sqlengine

import (
	"fmt"
	"testing"
	"testing/quick"
)

func testEnv(t *testing.T, budget int64) *storageEnv {
	t.Helper()
	return &storageEnv{
		budget:       newMemBudget(budget),
		spillDir:     t.TempDir(),
		spillEnabled: true,
		workingFloor: 8 << 10,
	}
}

func TestRowStoreInMemoryRoundTrip(t *testing.T) {
	env := testEnv(t, 0)
	rs := newRowStore(env)
	for i := 0; i < 100; i++ {
		if err := rs.Append(Row{NewInt(int64(i)), NewText(fmt.Sprint(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if rs.Len() != 100 || rs.Spilled() {
		t.Fatalf("len=%d spilled=%v", rs.Len(), rs.Spilled())
	}
	it, err := rs.Cursor()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		row, ok, err := it.Next()
		if err != nil || !ok {
			t.Fatalf("row %d: ok=%v err=%v", i, ok, err)
		}
		if row[0].I != int64(i) {
			t.Fatalf("row %d = %v", i, row)
		}
	}
	if _, ok, _ := it.Next(); ok {
		t.Fatal("iterator should be exhausted")
	}
	rs.Release()
}

func TestRowStoreSpillRoundTrip(t *testing.T) {
	env := testEnv(t, 1024) // tiny budget forces spilling
	rs := newRowStore(env)
	const n = 2000
	for i := 0; i < n; i++ {
		row := Row{NewInt(int64(i)), NewFloat(float64(i) / 3), NewText("x"), Null, NewBool(i%2 == 0)}
		if err := rs.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	if !rs.Spilled() {
		t.Fatal("expected spill under 1KB budget")
	}
	// Two concurrent iterators must both see everything.
	it1, err := rs.Cursor()
	if err != nil {
		t.Fatal(err)
	}
	it2, err := rs.Cursor()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		r1, ok1, err1 := it1.Next()
		r2, ok2, err2 := it2.Next()
		if !ok1 || !ok2 || err1 != nil || err2 != nil {
			t.Fatalf("row %d: %v %v %v %v", i, ok1, ok2, err1, err2)
		}
		if r1[0].I != int64(i) || r2[0].I != int64(i) {
			t.Fatalf("row %d: %v / %v", i, r1, r2)
		}
		if r1[3].T != TypeNull || r1[4].T != TypeBool {
			t.Fatalf("types lost in spill: %v", r1)
		}
	}
	rs.Release()
}

func TestRowStoreThawAppends(t *testing.T) {
	env := testEnv(t, 512)
	rs := newRowStore(env)
	for i := 0; i < 50; i++ {
		if err := rs.Append(Row{NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := rs.Freeze(); err != nil {
		t.Fatal(err)
	}
	rs.Thaw()
	for i := 50; i < 80; i++ {
		if err := rs.Append(Row{NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	it, err := rs.Cursor()
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		count++
	}
	if count != 80 {
		t.Fatalf("count = %d", count)
	}
	rs.Release()
}

func TestRowEncodingPropertyRoundTrip(t *testing.T) {
	env := testEnv(t, 1) // everything spills → full encode/decode path
	f := func(i int64, fl float64, s string, b bool, hasNull bool) bool {
		rs := newRowStore(env)
		defer rs.Release()
		row := Row{NewInt(i), NewFloat(fl), NewText(s), NewBool(b)}
		if hasNull {
			row = append(row, Null)
		}
		if err := rs.Append(cloneRow(row)); err != nil {
			return false
		}
		it, err := rs.Cursor()
		if err != nil {
			return false
		}
		got, ok, err := it.Next()
		if err != nil || !ok || len(got) != len(row) {
			return false
		}
		for j := range row {
			if got[j].T != row[j].T {
				return false
			}
			// NaN != NaN: compare bit patterns via String.
			if got[j].String() != row[j].String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMemBudgetAccounting(t *testing.T) {
	b := newMemBudget(1000)
	if !b.tryReserve(600) {
		t.Fatal("first reserve should fit")
	}
	if b.tryReserve(600) {
		t.Fatal("second reserve must exceed")
	}
	b.release(600)
	if !b.tryReserve(900) {
		t.Fatal("after release it fits")
	}
	if b.peak.Load() != 900 {
		t.Fatalf("peak = %d", b.peak.Load())
	}
	// Unlimited budget always succeeds.
	u := newMemBudget(0)
	if !u.tryReserve(1 << 40) {
		t.Fatal("unlimited budget refused")
	}
}

func TestRowStoreReleaseFreesBudget(t *testing.T) {
	env := testEnv(t, 0)
	rs := newRowStore(env)
	for i := 0; i < 100; i++ {
		if err := rs.Append(Row{NewText("some content here")}); err != nil {
			t.Fatal(err)
		}
	}
	if env.budget.used.Load() == 0 {
		t.Fatal("expected live reservation")
	}
	rs.Release()
	if env.budget.used.Load() != 0 {
		t.Fatalf("leaked %d bytes", env.budget.used.Load())
	}
}
