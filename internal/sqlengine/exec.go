package sqlengine

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"

	"qymera/internal/obs"
)

// planCol names one output column of an operator: a qualifier (table
// alias, lowercase, possibly empty or synthetic like "#agg") and the
// column name.
type planCol struct {
	table string
	name  string
}

// planSchema is an operator's output schema; it doubles as the column
// resolver for expression compilation.
type planSchema []planCol

func (s planSchema) resolveColumn(table, name string) (int, error) {
	table = strings.ToLower(table)
	name = strings.ToLower(name)
	found := -1
	for i, c := range s {
		if c.name != name {
			continue
		}
		if table != "" && c.table != table {
			continue
		}
		if found >= 0 {
			if table == "" {
				return 0, fmt.Errorf("sqlengine: ambiguous column %q", name)
			}
			return 0, fmt.Errorf("sqlengine: ambiguous column %q.%q", table, name)
		}
		found = i
	}
	if found < 0 {
		if table != "" {
			return 0, fmt.Errorf("sqlengine: no such column %s.%s", table, name)
		}
		return 0, fmt.Errorf("sqlengine: no such column %s", name)
	}
	return found, nil
}

// hasTable reports whether the schema exposes the given qualifier.
func (s planSchema) hasTable(table string) bool {
	table = strings.ToLower(table)
	for _, c := range s {
		if c.table == table {
			return true
		}
	}
	return false
}

// rowIter is the legacy volcano iterator contract, kept for the row
// adapters at the engine's edges. Close must be idempotent and release
// all resources (spill files, budget reservations).
type rowIter interface {
	Next() (Row, bool, error)
	Close()
}

// planNode is a physical operator. open returns a vectorized batch
// iterator; materialize boundaries append batches column-at-a-time into
// the table store (ColStore.AppendBatch), and only the row-oriented
// cursor edges (ResultSet, driver) gather rows.
type planNode interface {
	schema() planSchema
	open(ctx *execCtx) (batchIter, error)
}

// execCtx carries per-statement execution state.
type execCtx struct {
	env    *storageEnv
	params []Value
	// workers is the morsel-parallel worker count for this statement
	// (>= 1; 1 means the morsel schedule runs serially).
	workers int
	// ctx is the statement's cancellation context (nil means
	// non-cancellable). Operators poll cancelled() at batch and morsel
	// boundaries, so a cancelled statement stops within one batch of
	// work and unwinds through the normal error paths, which release
	// every budget reservation and spill file.
	ctx context.Context
	// span is the tracing span carried on ctx (nil when untraced); the
	// statement attaches per-operator child spans to it after execution
	// (see trace_exec.go). sampleEvery is the trace's batch-sampling
	// stride for the operator timers.
	span        *obs.Span
	sampleEvery int
	// kexec records the compiled gate-stage kernel's execution stats
	// for this statement (nil when the kernel did not run). EXPLAIN
	// ANALYZE and operator-span attachment both read it.
	kexec *kernelExecStat
	// chainExec records a whole-circuit fused chain execution's stats
	// for this statement (nil when no chain was fused; see
	// kernel_chain.go).
	chainExec *chainExecStat
}

// cancelled reports the statement's cancellation state. It is polled at
// batch/morsel boundaries (~1k rows of work), never per row.
func (ctx *execCtx) cancelled() error {
	if ctx.ctx == nil {
		return nil
	}
	if err := ctx.ctx.Err(); err != nil {
		return fmt.Errorf("sqlengine: statement cancelled: %w", err)
	}
	return nil
}

func (ctx *execCtx) compile(e Expr, schema planSchema) (compiledExpr, error) {
	return compileExpr(e, &compileCtx{resolver: schema, params: ctx.params})
}

func (ctx *execCtx) compileVec(e Expr, schema planSchema) (vecExpr, error) {
	return compileVec(e, &compileCtx{resolver: schema, params: ctx.params})
}

func (ctx *execCtx) compileVecAll(exprs []Expr, schema planSchema) ([]vecExpr, error) {
	return compileVecAll(exprs, &compileCtx{resolver: schema, params: ctx.params})
}

// oneRowNode emits a single empty row; it backs FROM-less selects.
type oneRowNode struct{}

func (*oneRowNode) schema() planSchema { return nil }

func (*oneRowNode) open(*execCtx) (batchIter, error) { return &oneRowBatchIter{}, nil }

type oneRowBatchIter struct{ done bool }

func (it *oneRowBatchIter) NextBatch() (*rowBatch, error) {
	if it.done {
		return nil, nil
	}
	it.done = true
	return &rowBatch{n: 1}, nil
}

func (it *oneRowBatchIter) Close() {}

// storeScanNode scans a table store with a fixed schema. The store is
// owned elsewhere (a base table or a materialized CTE); ownStore marks
// stores that must be released when the iterator closes. keep, when
// non-nil, is the pruned physical column subset the scan serves (the
// columnar store skips decoding the dropped columns entirely; other
// stores are wrapped with a zero-copy column pick).
type storeScanNode struct {
	store tableStore
	cols  planSchema
	keep  []int
	// fullCols is the store's unpruned column count (EXPLAIN's pruning
	// annotation; the row layout cannot report it itself).
	fullCols int
	ownStore bool
	est      *nodeEst
	// zp, when non-nil, is the zone predicate compiled from the scan's
	// pushed-down filter conjuncts (zonemap.go): morsels and spill
	// chunks it proves empty are skipped without decoding. skipped
	// counts the skipped units for EXPLAIN ANALYZE.
	zp      *zonePred
	skipped atomic.Int64
	// fromKernel marks the scan the kernel tier swaps in over its
	// fused-loop result store (EXPLAIN ANALYZE and operator spans
	// label it as kernel output).
	fromKernel bool
}

func (n *storeScanNode) schema() planSchema { return n.cols }

// prunableStore is the optional storage fast path for column-pruned
// scans (implemented by ColStore: pruned columns are never decoded).
type prunableStore interface {
	batchScanCols(keep []int) (storeScan, error)
	morselScannerCols(keep []int) (morselScanner, error)
}

func (n *storeScanNode) open(*execCtx) (batchIter, error) {
	var sc storeScan
	var err error
	if cs, ok := n.store.(*ColStore); ok && n.zp != nil {
		// Zone-skipping scan (serves the pruned column subset itself).
		sc, err = cs.batchScanZone(n.keep, n.zp, &n.skipped)
		if err != nil {
			return nil, err
		}
		return &storeScanIter{scan: sc, store: n.store, own: n.ownStore}, nil
	}
	if n.keep != nil {
		if ps, ok := n.store.(prunableStore); ok {
			sc, err = ps.batchScanCols(n.keep)
		} else {
			sc, err = n.store.batchScan()
			if err == nil {
				sc = newPickScan(sc, n.keep)
			}
		}
	} else {
		sc, err = n.store.batchScan()
	}
	if err != nil {
		return nil, err
	}
	return &storeScanIter{scan: sc, store: n.store, own: n.ownStore}, nil
}

// pickBatch aliases the idxs-selected columns of b into out (zero copy;
// the shared body of every column-pick adapter). A nil or error input
// passes through.
func pickBatch(out, b *rowBatch, idxs []int, err error) (*rowBatch, error) {
	if err != nil || b == nil {
		return nil, err
	}
	for i, k := range idxs {
		out.cols[i] = b.cols[k]
	}
	out.n = b.n
	out.sel = b.sel
	return out, nil
}

// pickScan serves a column subset of an underlying scan without copying
// data: the output batch aliases the picked column vectors.
type pickScan struct {
	src  storeScan
	keep []int
	out  *rowBatch
}

func newPickScan(src storeScan, keep []int) *pickScan {
	return &pickScan{src: src, keep: keep, out: &rowBatch{cols: make([]colVec, len(keep))}}
}

func (s *pickScan) NextBatch() (*rowBatch, error) {
	b, err := s.src.NextBatch()
	return pickBatch(s.out, b, s.keep, err)
}

// storeScanIter adapts a store's batch scan — column slices for the
// columnar layout, transposed rows for the legacy row layout — to the
// batchIter contract, releasing owned stores on Close.
type storeScanIter struct {
	scan  storeScan
	store tableStore
	own   bool
}

func (s *storeScanIter) NextBatch() (*rowBatch, error) { return s.scan.NextBatch() }

func (s *storeScanIter) Close() {
	if s.own && s.store != nil {
		s.store.Release()
		s.store = nil
	}
}

// newOwnedStoreIter wraps a result store in a batch iterator that
// releases it on Close.
func newOwnedStoreIter(store tableStore) (batchIter, error) {
	sc, err := store.batchScan()
	if err != nil {
		store.Release()
		return nil, err
	}
	return &storeScanIter{scan: sc, store: store, own: true}, nil
}

// filterNode drops rows whose predicate is not true. Filtering is a
// selection-vector rewrite: the child's batch is passed through with a
// narrowed selection and no data movement. pushed marks a filter the
// optimizer pushed into its scan (for EXPLAIN).
type filterNode struct {
	child  planNode
	pred   Expr
	pushed bool
	est    *nodeEst
}

func (n *filterNode) schema() planSchema { return n.child.schema() }

func (n *filterNode) open(ctx *execCtx) (batchIter, error) {
	pred, err := ctx.compileVec(n.pred, n.child.schema())
	if err != nil {
		return nil, err
	}
	child, err := n.child.open(ctx)
	if err != nil {
		return nil, err
	}
	return &filterIter{child: child, pred: pred}, nil
}

type filterIter struct {
	child batchIter
	pred  vecExpr
	sel   []int // reusable output selection
}

func (it *filterIter) NextBatch() (*rowBatch, error) {
	for {
		b, err := it.child.NextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		sel := b.selection()
		vals, err := it.pred(b, sel)
		if err != nil {
			return nil, err
		}
		it.sel = it.sel[:0]
		for _, i := range sel {
			if ok, known := vals[i].Bool(); known && ok {
				it.sel = append(it.sel, i)
			}
		}
		if len(it.sel) == 0 {
			continue
		}
		b.sel = it.sel
		return b, nil
	}
}

func (it *filterIter) Close() { it.child.Close() }

// projectNode computes output expressions. The output batch aliases the
// expression result columns (and, for bare column references, the
// child's columns) — no per-row materialization happens here.
type projectNode struct {
	child planNode
	exprs []Expr
	cols  planSchema
	est   *nodeEst
}

func (n *projectNode) schema() planSchema { return n.cols }

func (n *projectNode) open(ctx *execCtx) (batchIter, error) {
	compiled, err := ctx.compileVecAll(n.exprs, n.child.schema())
	if err != nil {
		return nil, err
	}
	child, err := n.child.open(ctx)
	if err != nil {
		return nil, err
	}
	return &projectIter{child: child, exprs: compiled, out: &rowBatch{cols: make([]colVec, len(compiled))}}, nil
}

type projectIter struct {
	child batchIter
	exprs []vecExpr
	out   *rowBatch
}

func (it *projectIter) NextBatch() (*rowBatch, error) {
	b, err := it.child.NextBatch()
	if err != nil || b == nil {
		return nil, err
	}
	sel := b.selection()
	for i, e := range it.exprs {
		col, err := e(b, sel)
		if err != nil {
			return nil, err
		}
		it.out.cols[i] = col[:b.n]
	}
	it.out.n = b.n
	it.out.sel = sel
	return it.out, nil
}

func (it *projectIter) Close() { it.child.Close() }

// sliceProjectNode projects by column index (used to strip hidden sort
// keys). The output batch shares the child's column storage.
type sliceProjectNode struct {
	child planNode
	keep  int // keep columns [0, keep)
	est   *nodeEst
}

func (n *sliceProjectNode) schema() planSchema { return n.child.schema()[:n.keep] }

func (n *sliceProjectNode) open(ctx *execCtx) (batchIter, error) {
	child, err := n.child.open(ctx)
	if err != nil {
		return nil, err
	}
	return &sliceProjectIter{child: child, keep: n.keep, out: &rowBatch{}}, nil
}

type sliceProjectIter struct {
	child batchIter
	keep  int
	out   *rowBatch
}

func (it *sliceProjectIter) NextBatch() (*rowBatch, error) {
	b, err := it.child.NextBatch()
	if err != nil || b == nil {
		return nil, err
	}
	it.out.cols = b.cols[:it.keep]
	it.out.n = b.n
	it.out.sel = b.sel
	return it.out, nil
}

func (it *sliceProjectIter) Close() { it.child.Close() }

// pickNode projects by column index with zero copying: the output batch
// aliases the child's column vectors. The optimizer inserts it to
// restore column order after a build-side flip or join reorder.
type pickNode struct {
	child planNode
	idxs  []int
	cols  planSchema
	est   *nodeEst
}

func (n *pickNode) schema() planSchema { return n.cols }

func (n *pickNode) open(ctx *execCtx) (batchIter, error) {
	child, err := n.child.open(ctx)
	if err != nil {
		return nil, err
	}
	return &pickIter{child: child, idxs: n.idxs, out: &rowBatch{cols: make([]colVec, len(n.idxs))}}, nil
}

type pickIter struct {
	child batchIter
	idxs  []int
	out   *rowBatch
}

func (it *pickIter) NextBatch() (*rowBatch, error) {
	b, err := it.child.NextBatch()
	return pickBatch(it.out, b, it.idxs, err)
}

func (it *pickIter) Close() { it.child.Close() }

// limitNode implements LIMIT/OFFSET with precomputed counts (-1 = none).
type limitNode struct {
	child         planNode
	limit, offset Expr
	est           *nodeEst
}

func (n *limitNode) schema() planSchema { return n.child.schema() }

func (n *limitNode) open(ctx *execCtx) (batchIter, error) {
	eval := func(e Expr) (int64, error) {
		if e == nil {
			return -1, nil
		}
		c, err := ctx.compile(e, nil)
		if err != nil {
			return 0, err
		}
		v, err := c(nil)
		if err != nil {
			return 0, err
		}
		if v.IsNull() {
			return -1, nil
		}
		return v.AsInt()
	}
	limit, err := eval(n.limit)
	if err != nil {
		return nil, err
	}
	offset, err := eval(n.offset)
	if err != nil {
		return nil, err
	}
	if offset < 0 {
		offset = 0
	}
	child, err := n.child.open(ctx)
	if err != nil {
		return nil, err
	}
	return &limitIter{child: child, limit: limit, offset: offset}, nil
}

// limitIter trims batch selection vectors: it skips the first offset
// selected rows and passes through at most limit rows in total.
type limitIter struct {
	child         batchIter
	limit, offset int64
	emitted       int64
}

func (it *limitIter) NextBatch() (*rowBatch, error) {
	for {
		if it.limit >= 0 && it.emitted >= it.limit {
			return nil, nil
		}
		b, err := it.child.NextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		sel := b.selection()
		if it.offset > 0 {
			if int64(len(sel)) <= it.offset {
				it.offset -= int64(len(sel))
				continue
			}
			sel = sel[it.offset:]
			it.offset = 0
		}
		if it.limit >= 0 {
			remain := it.limit - it.emitted
			if int64(len(sel)) > remain {
				sel = sel[:remain]
			}
		}
		if len(sel) == 0 {
			continue
		}
		it.emitted += int64(len(sel))
		b.sel = sel
		return b, nil
	}
}

func (it *limitIter) Close() { it.child.Close() }

// planChildren returns a physical node's children (the shared walk
// behind EXPLAIN ANALYZE instrumentation and counter resets; mirrors
// lchildren for the logical tree). Nodes not listed are leaves.
func planChildren(node planNode) []planNode {
	switch n := node.(type) {
	case *filterNode:
		return []planNode{n.child}
	case *projectNode:
		return []planNode{n.child}
	case *sliceProjectNode:
		return []planNode{n.child}
	case *pickNode:
		return []planNode{n.child}
	case *joinNode:
		return []planNode{n.left, n.right}
	case *aggNode:
		return []planNode{n.child}
	case *sortNode:
		return []planNode{n.child}
	case *limitNode:
		return []planNode{n.child}
	case *aliasNode:
		return []planNode{n.child}
	case *statNode:
		return []planNode{n.child}
	case *cteShowNode:
		return []planNode{n.child}
	}
	return nil
}

// rowCapacityHinter is the optional storage interface for cost-model
// capacity hints (ColStore pre-sizes its typed vectors).
type rowCapacityHinter interface {
	hintRows(int64)
}

// materialize drains a batch iterator into a fresh store in the
// engine's configured layout. With the columnar layout this is the
// batch-in, column-vectors-out boundary: no per-row materialization.
// hint, when positive, is the cost model's estimated result size and
// pre-sizes the store's column vectors. Cancellation is checked once
// per drained batch.
func materialize(ctx *execCtx, it batchIter, hint int64) (tableStore, error) {
	return materializeCollect(ctx, it, hint, false)
}

// materializeCollect optionally attaches a statistics collector to the
// result store before draining (CTAS materialization: the created
// table then has exact statistics without an ANALYZE rescan).
func materializeCollect(ctx *execCtx, it batchIter, hint int64, collect bool) (tableStore, error) {
	store := ctx.env.newStore()
	if collect {
		attachStats(store)
	}
	if hint > 0 {
		if h, ok := store.(rowCapacityHinter); ok {
			h.hintRows(hint)
		}
	}
	for {
		if err := ctx.cancelled(); err != nil {
			store.Release()
			return nil, err
		}
		b, err := it.NextBatch()
		if err != nil {
			store.Release()
			return nil, err
		}
		if b == nil {
			break
		}
		if err := store.AppendBatch(b); err != nil {
			store.Release()
			return nil, err
		}
	}
	if err := store.Freeze(); err != nil {
		store.Release()
		return nil, err
	}
	return store, nil
}
