package sqlengine

import (
	"fmt"
	"strings"
)

// planCol names one output column of an operator: a qualifier (table
// alias, lowercase, possibly empty or synthetic like "#agg") and the
// column name.
type planCol struct {
	table string
	name  string
}

// planSchema is an operator's output schema; it doubles as the column
// resolver for expression compilation.
type planSchema []planCol

func (s planSchema) resolveColumn(table, name string) (int, error) {
	table = strings.ToLower(table)
	name = strings.ToLower(name)
	found := -1
	for i, c := range s {
		if c.name != name {
			continue
		}
		if table != "" && c.table != table {
			continue
		}
		if found >= 0 {
			if table == "" {
				return 0, fmt.Errorf("sqlengine: ambiguous column %q", name)
			}
			return 0, fmt.Errorf("sqlengine: ambiguous column %q.%q", table, name)
		}
		found = i
	}
	if found < 0 {
		if table != "" {
			return 0, fmt.Errorf("sqlengine: no such column %s.%s", table, name)
		}
		return 0, fmt.Errorf("sqlengine: no such column %s", name)
	}
	return found, nil
}

// hasTable reports whether the schema exposes the given qualifier.
func (s planSchema) hasTable(table string) bool {
	table = strings.ToLower(table)
	for _, c := range s {
		if c.table == table {
			return true
		}
	}
	return false
}

// rowIter is the volcano iterator contract. Close must be idempotent and
// release all resources (spill files, budget reservations).
type rowIter interface {
	Next() (Row, bool, error)
	Close()
}

// planNode is a physical operator.
type planNode interface {
	schema() planSchema
	open(ctx *execCtx) (rowIter, error)
}

// execCtx carries per-statement execution state.
type execCtx struct {
	env    *storageEnv
	params []Value
}

func (ctx *execCtx) compile(e Expr, schema planSchema) (compiledExpr, error) {
	return compileExpr(e, &compileCtx{resolver: schema, params: ctx.params})
}

// oneRowNode emits a single empty row; it backs FROM-less selects.
type oneRowNode struct{}

func (*oneRowNode) schema() planSchema { return nil }

func (*oneRowNode) open(*execCtx) (rowIter, error) { return &sliceIter{rows: []Row{{}}}, nil }

// sliceIter iterates an in-memory row slice.
type sliceIter struct {
	rows []Row
	pos  int
}

func (it *sliceIter) Next() (Row, bool, error) {
	if it.pos >= len(it.rows) {
		return nil, false, nil
	}
	r := it.rows[it.pos]
	it.pos++
	return r, true, nil
}

func (it *sliceIter) Close() {}

// storeScanNode scans a RowStore with a fixed schema. The store is owned
// elsewhere (a base table or a materialized CTE); ownStore marks stores
// that must be released when the iterator closes.
type storeScanNode struct {
	store    *RowStore
	cols     planSchema
	ownStore bool
}

func (n *storeScanNode) schema() planSchema { return n.cols }

func (n *storeScanNode) open(*execCtx) (rowIter, error) {
	it, err := n.store.Iterator()
	if err != nil {
		return nil, err
	}
	return &storeScanIter{it: it, store: n.store, own: n.ownStore}, nil
}

type storeScanIter struct {
	it    *RowIterator
	store *RowStore
	own   bool
}

func (s *storeScanIter) Next() (Row, bool, error) { return s.it.Next() }

func (s *storeScanIter) Close() {
	if s.own && s.store != nil {
		s.store.Release()
		s.store = nil
	}
}

// filterNode drops rows whose predicate is not true.
type filterNode struct {
	child planNode
	pred  Expr
}

func (n *filterNode) schema() planSchema { return n.child.schema() }

func (n *filterNode) open(ctx *execCtx) (rowIter, error) {
	pred, err := ctx.compile(n.pred, n.child.schema())
	if err != nil {
		return nil, err
	}
	child, err := n.child.open(ctx)
	if err != nil {
		return nil, err
	}
	return &filterIter{child: child, pred: pred}, nil
}

type filterIter struct {
	child rowIter
	pred  compiledExpr
}

func (it *filterIter) Next() (Row, bool, error) {
	for {
		row, ok, err := it.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		v, err := it.pred(row)
		if err != nil {
			return nil, false, err
		}
		if b, known := v.Bool(); known && b {
			return row, true, nil
		}
	}
}

func (it *filterIter) Close() { it.child.Close() }

// projectNode computes output expressions.
type projectNode struct {
	child planNode
	exprs []Expr
	cols  planSchema
}

func (n *projectNode) schema() planSchema { return n.cols }

func (n *projectNode) open(ctx *execCtx) (rowIter, error) {
	compiled := make([]compiledExpr, len(n.exprs))
	for i, e := range n.exprs {
		c, err := ctx.compile(e, n.child.schema())
		if err != nil {
			return nil, err
		}
		compiled[i] = c
	}
	child, err := n.child.open(ctx)
	if err != nil {
		return nil, err
	}
	return &projectIter{child: child, exprs: compiled}, nil
}

type projectIter struct {
	child rowIter
	exprs []compiledExpr
}

func (it *projectIter) Next() (Row, bool, error) {
	row, ok, err := it.child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(Row, len(it.exprs))
	for i, e := range it.exprs {
		v, err := e(row)
		if err != nil {
			return nil, false, err
		}
		out[i] = v
	}
	return out, true, nil
}

func (it *projectIter) Close() { it.child.Close() }

// sliceProjectNode projects by column index (used to strip hidden sort
// keys).
type sliceProjectNode struct {
	child planNode
	keep  int // keep columns [0, keep)
}

func (n *sliceProjectNode) schema() planSchema { return n.child.schema()[:n.keep] }

func (n *sliceProjectNode) open(ctx *execCtx) (rowIter, error) {
	child, err := n.child.open(ctx)
	if err != nil {
		return nil, err
	}
	return &sliceProjectIter{child: child, keep: n.keep}, nil
}

type sliceProjectIter struct {
	child rowIter
	keep  int
}

func (it *sliceProjectIter) Next() (Row, bool, error) {
	row, ok, err := it.child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	return row[:it.keep], true, nil
}

func (it *sliceProjectIter) Close() { it.child.Close() }

// limitNode implements LIMIT/OFFSET with precomputed counts (-1 = none).
type limitNode struct {
	child         planNode
	limit, offset Expr
}

func (n *limitNode) schema() planSchema { return n.child.schema() }

func (n *limitNode) open(ctx *execCtx) (rowIter, error) {
	eval := func(e Expr) (int64, error) {
		if e == nil {
			return -1, nil
		}
		c, err := ctx.compile(e, nil)
		if err != nil {
			return 0, err
		}
		v, err := c(nil)
		if err != nil {
			return 0, err
		}
		if v.IsNull() {
			return -1, nil
		}
		return v.AsInt()
	}
	limit, err := eval(n.limit)
	if err != nil {
		return nil, err
	}
	offset, err := eval(n.offset)
	if err != nil {
		return nil, err
	}
	if offset < 0 {
		offset = 0
	}
	child, err := n.child.open(ctx)
	if err != nil {
		return nil, err
	}
	return &limitIter{child: child, limit: limit, offset: offset}, nil
}

type limitIter struct {
	child         rowIter
	limit, offset int64
	emitted       int64
}

func (it *limitIter) Next() (Row, bool, error) {
	for it.offset > 0 {
		_, ok, err := it.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		it.offset--
	}
	if it.limit >= 0 && it.emitted >= it.limit {
		return nil, false, nil
	}
	row, ok, err := it.child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	it.emitted++
	return row, true, nil
}

func (it *limitIter) Close() { it.child.Close() }

// materialize drains an iterator into a fresh RowStore.
func materialize(env *storageEnv, it rowIter) (*RowStore, error) {
	store := newRowStore(env)
	for {
		row, ok, err := it.Next()
		if err != nil {
			store.Release()
			return nil, err
		}
		if !ok {
			break
		}
		if err := store.Append(row); err != nil {
			store.Release()
			return nil, err
		}
	}
	if err := store.Freeze(); err != nil {
		store.Release()
		return nil, err
	}
	return store, nil
}
