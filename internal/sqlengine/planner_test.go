package sqlengine

import (
	"testing"
	"testing/quick"
)

func parseExprForTest(t *testing.T, src string) Expr {
	t.Helper()
	stmt, _, err := ParseStatement("SELECT " + src + " FROM t")
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return stmt.(*SelectStmt).Items[0].Expr
}

func TestCanonicalExprStringMatchesQualifiedUnqualified(t *testing.T) {
	schema := planSchema{
		{table: "t0", name: "s"},
		{table: "t0", name: "r"},
		{table: "h", name: "in_s"},
	}
	a := canonicalExprString(parseExprForTest(t, "(T0.s & ~1)"), schema)
	b := canonicalExprString(parseExprForTest(t, "(s & ~1)"), schema)
	if a != b {
		t.Fatalf("canonical mismatch: %q vs %q", a, b)
	}
	// Different columns stay different.
	c := canonicalExprString(parseExprForTest(t, "(r & ~1)"), schema)
	if a == c {
		t.Fatal("distinct columns collided")
	}
	// Unresolvable references never match resolvable ones.
	d := canonicalExprString(parseExprForTest(t, "(missing & ~1)"), schema)
	if a == d {
		t.Fatal("unresolved column matched")
	}
}

func TestSplitConjuncts(t *testing.T) {
	e := parseExprForTest(t, "a = 1 AND b > 2 AND (c < 3 OR d = 4)")
	parts := splitConjuncts(e)
	if len(parts) != 3 {
		t.Fatalf("parts = %d", len(parts))
	}
	single := splitConjuncts(parseExprForTest(t, "a = 1"))
	if len(single) != 1 {
		t.Fatalf("single = %d", len(single))
	}
}

func TestExtractEquiKeys(t *testing.T) {
	left := planSchema{{table: "a", name: "x"}, {table: "a", name: "y"}}
	right := planSchema{{table: "b", name: "x"}, {table: "b", name: "z"}}

	on := parseExprForTest(t, "a.x = b.x AND a.y > b.z")
	lks, rks, residual := extractEquiKeys(on, left, right)
	if len(lks) != 1 || len(rks) != 1 {
		t.Fatalf("keys = %d/%d", len(lks), len(rks))
	}
	if lks[0].Deparse() != "a.x" || rks[0].Deparse() != "b.x" {
		t.Fatalf("keys = %s, %s", lks[0].Deparse(), rks[0].Deparse())
	}
	if residual == nil {
		t.Fatal("residual lost")
	}

	// Swapped sides are normalized.
	on2 := parseExprForTest(t, "b.z = a.y")
	lks2, rks2, res2 := extractEquiKeys(on2, left, right)
	if len(lks2) != 1 || lks2[0].Deparse() != "a.y" || rks2[0].Deparse() != "b.z" || res2 != nil {
		t.Fatalf("swapped: %v %v %v", lks2, rks2, res2)
	}

	// Expression keys work (the translator's join shape).
	on3 := parseExprForTest(t, "b.x = (a.x & 3)")
	lks3, _, _ := extractEquiKeys(on3, left, right)
	if len(lks3) != 1 || lks3[0].Deparse() != "(a.x & 3)" {
		t.Fatalf("expr key = %v", lks3)
	}

	// Cross-side expressions stay residual.
	on4 := parseExprForTest(t, "a.x + b.x = 3")
	lks4, _, res4 := extractEquiKeys(on4, left, right)
	if len(lks4) != 0 || res4 == nil {
		t.Fatalf("cross-side: %v %v", lks4, res4)
	}
}

func TestResolveColumnRules(t *testing.T) {
	s := planSchema{
		{table: "a", name: "x"},
		{table: "b", name: "x"},
		{table: "b", name: "y"},
	}
	if _, err := s.resolveColumn("", "x"); err == nil {
		t.Fatal("ambiguous x must error")
	}
	if i, err := s.resolveColumn("a", "x"); err != nil || i != 0 {
		t.Fatalf("a.x = %d, %v", i, err)
	}
	if i, err := s.resolveColumn("", "y"); err != nil || i != 2 {
		t.Fatalf("y = %d, %v", i, err)
	}
	if _, err := s.resolveColumn("c", "x"); err == nil {
		t.Fatal("unknown table must error")
	}
	// Case-insensitive matching.
	if i, err := s.resolveColumn("B", "Y"); err != nil || i != 2 {
		t.Fatalf("B.Y = %d, %v", i, err)
	}
}

// TestAggregationMatchesGoProperty cross-checks SQL grouping against a
// direct Go computation on random data.
func TestAggregationMatchesGoProperty(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (k INTEGER, v INTEGER)")

	f := func(data []int16) bool {
		if len(data) == 0 {
			return true
		}
		mustExec(t, db, "DELETE FROM t")
		type agg struct {
			count int64
			sum   int64
			min   int64
			max   int64
		}
		want := map[int64]*agg{}
		for _, d := range data {
			k := int64(d) % 7
			v := int64(d)
			mustExec(t, db, "INSERT INTO t VALUES (?, ?)", NewInt(k), NewInt(v))
			a := want[k]
			if a == nil {
				a = &agg{min: v, max: v}
				want[k] = a
			} else {
				if v < a.min {
					a.min = v
				}
				if v > a.max {
					a.max = v
				}
			}
			a.count++
			a.sum += v
		}
		rows := queryAll(t, db, "SELECT k, COUNT(*), SUM(v), MIN(v), MAX(v) FROM t GROUP BY k")
		if len(rows) != len(want) {
			return false
		}
		for _, r := range rows {
			k, _ := r[0].AsInt()
			a := want[k]
			if a == nil {
				return false
			}
			c, _ := r[1].AsInt()
			s, _ := r[2].AsInt()
			mn, _ := r[3].AsInt()
			mx, _ := r[4].AsInt()
			if c != a.count || s != a.sum || mn != a.min || mx != a.max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
