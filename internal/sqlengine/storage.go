package sqlengine

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Storage layer contract. Tables, materialized results, sort runs, and
// grace partitions are all tableStores: append-then-read sequences of
// rows with a bounded in-memory representation that spills to disk when
// the engine-wide budget is exceeded.
//
// Two layouts implement the contract. The default ColStore
// (colstore.go) keeps typed column vectors — int64 / float64 / string /
// bool with null bitmaps — appends whole batches without per-row
// materialization, and serves scans as column slices. The legacy
// RowStore (rowstore.go) keeps []Row and survives as the alternate
// layout for differential testing (Config.Layout = "row"): every query
// must produce bitwise-identical results on both.

// Layout names accepted by Config.Layout and the DSN "layout" param.
const (
	LayoutColumnar = "columnar"
	LayoutRow      = "row"
)

// MemBudget is the engine-wide memory accountant. Operators and table
// stores reserve estimated bytes before buffering rows in memory; when a
// reservation would exceed the budget the caller must spill (or fail if
// spilling is disabled). A zero or negative limit means unlimited.
//
// A budget may be shared across engine instances (Config.Budget): a
// simulation service hands every per-request DB the same budget, so
// concurrent queries compete for one global memory pool and the service
// can admission-control new work against Available().
type MemBudget struct {
	limit int64
	used  atomic.Int64
	peak  atomic.Int64
}

// NewMemBudget returns a budget capping reservations at limit bytes
// (zero or negative means unlimited). The result may be shared by many
// engine instances via Config.Budget.
func NewMemBudget(limit int64) *MemBudget { return &MemBudget{limit: limit} }

func newMemBudget(limit int64) *MemBudget { return NewMemBudget(limit) }

// Limit returns the configured cap in bytes (<= 0 means unlimited).
func (b *MemBudget) Limit() int64 { return b.limit }

// Used returns the currently reserved bytes.
func (b *MemBudget) Used() int64 { return b.used.Load() }

// Peak returns the reservation high-water mark.
func (b *MemBudget) Peak() int64 { return b.peak.Load() }

// Available returns the bytes still reservable, or math.MaxInt64 when
// the budget is unlimited.
func (b *MemBudget) Available() int64 {
	if b.limit <= 0 {
		return math.MaxInt64
	}
	if free := b.limit - b.used.Load(); free > 0 {
		return free
	}
	return 0
}

// tryReserve attempts to reserve n bytes, reporting false when the budget
// would be exceeded.
func (b *MemBudget) tryReserve(n int64) bool {
	for {
		cur := b.used.Load()
		next := cur + n
		if b.limit > 0 && next > b.limit {
			return false
		}
		if b.used.CompareAndSwap(cur, next) {
			b.updatePeak(next)
			return true
		}
	}
}

// reserveForce reserves unconditionally (used for small bookkeeping).
func (b *MemBudget) reserveForce(n int64) {
	v := b.used.Add(n)
	b.updatePeak(v)
}

func (b *MemBudget) release(n int64) { b.used.Add(-n) }

func (b *MemBudget) updatePeak(v int64) {
	for {
		p := b.peak.Load()
		if v <= p || b.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

// storageEnv bundles what table stores need: the shared budget, spill
// configuration, and counters.
type storageEnv struct {
	budget       *MemBudget
	spillDir     string
	spillEnabled bool
	// rowLayout selects the legacy row-major RowStore for every table
	// store the engine creates (Config.Layout = "row").
	rowLayout bool
	// optimizer enables the cost-based query optimizer (Config.Optimizer).
	optimizer bool
	// kernels enables the compiled gate-stage kernel tier
	// (Config.Kernels; see kernel.go), and kernelCache holds its
	// compiled programs (possibly shared across engine instances by the
	// simulation plan cache).
	kernels     bool
	kernelCache *KernelCache
	// fusion enables whole-circuit chain fusion on top of the kernel
	// tier (Config.Fusion; see kernel_chain.go).
	fusion bool
	// kernelCtrs / storageCtrs are this engine instance's own counter
	// scopes (every increment also feeds the process-wide aggregates;
	// see kernelCounterSet and storageCounterSet).
	kernelCtrs  *kernelCounterSet
	storageCtrs *storageCounterSet
	// encodings enables the sparsity-first storage tier: compressed
	// column encodings at materialization and zone-map skip-scan
	// (Config.Encodings; see encoding.go and zonemap.go).
	encodings bool
	// tracing enables per-operator span instrumentation for statements
	// whose context carries an obs span (Config.Tracing; see
	// trace_exec.go).
	tracing bool
	// workers is the engine's morsel-parallel worker count (>= 1).
	workers int
	// workingFloor is the number of bytes a blocking operator (hash
	// join build, hash aggregation, sort buffer) may force-reserve even
	// when the budget is exhausted by table storage. Without it, grace
	// partitioning could not make progress once tables fill the budget.
	// The budget is therefore a soft cap: peak usage can briefly exceed
	// it by up to one working floor per active operator.
	workingFloor int64
	spilledRows  atomic.Int64
	spilledBytes atomic.Int64
	spillFiles   atomic.Int64
}

// newStore creates a table store in the engine's configured layout.
func (env *storageEnv) newStore() tableStore {
	if env.rowLayout {
		return newRowStore(env)
	}
	return newColStore(env)
}

// layoutName reports the configured layout for EXPLAIN.
func (env *storageEnv) layoutName() string {
	if env.rowLayout {
		return LayoutRow
	}
	return LayoutColumnar
}

// errBudget is returned when memory is exhausted and spilling is off.
var errBudget = fmt.Errorf("sqlengine: memory budget exceeded and spilling is disabled")

// tableStore is the storage contract shared by the columnar ColStore and
// the legacy row-major RowStore. A store is write-only until Freeze and
// read-only afterwards (Thaw reopens it for appending); Release must
// free every budget reservation and spill file even mid-read.
type tableStore interface {
	// Append adds one row; the store takes ownership of the slice.
	Append(Row) error
	// AppendBatch appends every selected row of a batch. The columnar
	// store copies column vectors directly; the row store gathers (its
	// documented layout cost).
	AppendBatch(*rowBatch) error
	Len() int64
	Spilled() bool
	Freeze() error
	Thaw()
	Release()

	// layout and vectorKinds describe the physical format for EXPLAIN:
	// the layout name and, for the columnar store, the per-column vector
	// type (nil for the row layout or an empty store).
	layout() string
	vectorKinds() []string

	// Cursor returns a row-at-a-time reader — the one gather adapter at
	// the engine's row-oriented edges (ResultSet, database/sql driver,
	// external sort-run merging, grace-partition iteration). Freezes the
	// store; multiple concurrent cursors are allowed once frozen.
	Cursor() (rowCursor, error)
	// batchScan returns a batch-at-a-time reader over all rows (spilled
	// prefix first, then the in-memory tail). Freezes the store.
	batchScan() (storeScan, error)

	// morselCount is the number of fixed-size morsels the store splits
	// into for parallel scans, or 0 when the store cannot be morselized
	// (spilled to disk). Boundaries depend only on the data, never on
	// the worker count.
	morselCount() int
	// morselScanner returns a per-worker scanner over individual
	// morsels. Freezes the store; only valid when morselCount() > 0.
	morselScanner() (morselScanner, error)
}

// rowCursor walks a frozen store row by row. Returned rows are owned by
// the caller (the columnar cursor gathers fresh rows; the row store
// returns its stored slices, which callers treat as read-only or clone).
type rowCursor interface {
	Next() (Row, bool, error)
}

// storeScan reads a frozen store batch-at-a-time. The returned batch is
// owned by the scan and valid only until the next NextBatch call; nil
// signals the end.
type storeScan interface {
	NextBatch() (*rowBatch, error)
}

// morselScanner reads one claimed morsel at a time: setMorsel positions
// the scanner, NextBatch drains the morsel in batches (nil at morsel
// end). Each scanner is single-threaded; different scanners of the same
// store may run concurrently.
type morselScanner interface {
	setMorsel(i int)
	NextBatch() (*rowBatch, error)
}

func releaseStores(stores []tableStore) {
	for _, s := range stores {
		if s != nil {
			s.Release()
		}
	}
}
