package sqlengine

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// Whole-circuit chain fusion tests. The contract is the kernel tier's,
// extended across stages: a fused K-stage chain must produce exactly
// the store the interpreted (or single-stage-kernel) engine produces
// by materializing every intermediate — same float64 bits, same row
// order — while provably never materializing the interior stages.

// chainStageBody renders one translated gate-stage SELECT reading
// state from src (a table or an earlier CTE).
func chainStageBody(src string, having bool) string {
	q := fmt.Sprintf(`SELECT ((%[1]s.s & ~1) | h.out_s) AS s,
       SUM((%[1]s.r * h.r) - (%[1]s.i * h.i)) AS r,
       SUM((%[1]s.r * h.i) + (%[1]s.i * h.r)) AS i
FROM %[1]s JOIN h ON h.in_s = (%[1]s.s & 1)
GROUP BY ((%[1]s.s & ~1) | h.out_s)`, src)
	if having {
		q += fmt.Sprintf("\nHAVING ((SUM((%[1]s.r * h.r) - (%[1]s.i * h.i)) * SUM((%[1]s.r * h.r) - (%[1]s.i * h.i))) + (SUM((%[1]s.r * h.i) + (%[1]s.i * h.r)) * SUM((%[1]s.r * h.i) + (%[1]s.i * h.r)))) > 0.0001", src)
	}
	return q
}

// chainQuery builds a K-stage chained gate query as a single WITH
// statement: c1 reads t0, each ck reads c(k-1), and the main query
// reads the last stage — the shape core.Translation.FusedStatements
// emits for a run of consecutive gate stages.
func chainQuery(stages int, having bool) string {
	var b strings.Builder
	b.WriteString("WITH ")
	src := "t0"
	for k := 1; k <= stages; k++ {
		if k > 1 {
			b.WriteString(",\n")
		}
		fmt.Fprintf(&b, "c%d AS (\n%s\n)", k, chainStageBody(src, having))
		src = fmt.Sprintf("c%d", k)
	}
	fmt.Fprintf(&b, "\nSELECT s, r, i FROM %s", src)
	return b.String()
}

// TestChainFusionEngages is the smoke gate: the fused path must
// actually run (chain counters move) and agree bit for bit with the
// stage-at-a-time engine, in both aggregation regimes.
//
// Counter accounting: the optimizer inlines the last CTE into the
// trivial final SELECT (a non-sensitive single-use reference), so a
// K-stage chain normalizes to K-1 fused CTE stages plus one top-level
// single-stage kernel over the chain's output — executions counts all
// K, the chain counters cover K-1.
func TestChainFusionEngages(t *testing.T) {
	const stages = 4
	for _, n := range []int{300, 20000} { // serial vs morsel-parallel interior stages
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			var digests [2]string
			for i, fusion := range []string{"off", "on"} {
				db := newOptDB(t, Config{Parallelism: 4, Fusion: fusion})
				setupGateStage(t, db, n)
				rows := queryAll(t, db, chainQuery(stages, false))
				if len(rows) == 0 {
					t.Fatal("chain produced no rows")
				}
				digests[i] = rowsBits(rows)
				kc := db.KernelCounters()
				if fusion == "on" {
					if kc["chain_executions"] != 1 {
						t.Fatalf("chain_executions = %d, want 1 (counters: %v)", kc["chain_executions"], kc)
					}
					if kc["chain_stages"] != stages-1 {
						t.Fatalf("chain_stages = %d, want %d", kc["chain_stages"], stages-1)
					}
					if kc["chain_elided"] != stages-2 {
						t.Fatalf("chain_elided = %d, want %d", kc["chain_elided"], stages-2)
					}
					if kc["executions"] != stages {
						t.Fatalf("executions = %d, want %d (chain + top-level kernel)", kc["executions"], stages)
					}
				} else if kc["chain_executions"] != 0 {
					t.Fatalf("fusion off but chain_executions = %d", kc["chain_executions"])
				}
			}
			if digests[0] != digests[1] {
				t.Fatal("fused chain is not bit-identical to stage-at-a-time execution")
			}
		})
	}
}

// TestChainFusionDifferentialMatrix is the S3 bit-identity gate:
// fusion on/off crossed with worker count, storage layout, compressed
// encodings, sampled tracing, and HAVING pruning. Every cell must be
// bitwise identical to its fusion-off twin, including row order. The
// row layout and tracing cells also verify a clean decline (fusion
// requires the columnar kernel tier).
func TestChainFusionDifferentialMatrix(t *testing.T) {
	const stages = 3
	for _, n := range []int{300, 20000} {
		for _, layout := range []string{"columnar", "row"} {
			for _, workers := range []int{1, 4} {
				for _, enc := range []string{"on", "off"} {
					for _, having := range []bool{false, true} {
						name := fmt.Sprintf("n=%d/%s/w=%d/enc=%s/having=%v", n, layout, workers, enc, having)
						t.Run(name, func(t *testing.T) {
							var digests [2]string
							for i, fusion := range []string{"off", "on"} {
								db := newOptDB(t, Config{
									Layout:      layout,
									Parallelism: workers,
									Encodings:   enc,
									Tracing:     "on",
									Fusion:      fusion,
								})
								setupGateStage(t, db, n)
								rows := queryAll(t, db, chainQuery(stages, having))
								digests[i] = rowsBits(rows)
								kc := db.KernelCounters()
								ran := kc["chain_executions"]
								if fusion == "on" && layout == "columnar" && ran != 1 {
									t.Fatalf("chain fusion did not engage on the columnar path (counters: %v)", kc)
								}
								if (fusion == "off" || layout == "row") && ran != 0 {
									t.Fatalf("chain fusion engaged unexpectedly (fusion=%s layout=%s)", fusion, layout)
								}
							}
							if digests[0] != digests[1] {
								t.Fatal("fused chain is not bit-identical to stage-at-a-time execution")
							}
						})
					}
				}
			}
		}
	}
}

// TestChainFusionBudgetDecline: under a bounded memory budget the
// chain must decline cleanly to stage-at-a-time spilling execution —
// distinct fallback counter, one count per statement, and results
// bitwise identical to the unconstrained engine.
func TestChainFusionBudgetDecline(t *testing.T) {
	const stages, n = 4, 20000
	var digests [2]string
	var rowCounts [2]int
	for i, fusion := range []string{"off", "on"} {
		db := newOptDB(t, Config{
			Parallelism:  4,
			Fusion:       fusion,
			MemoryBudget: 256 << 10, // forces spilling stage-at-a-time execution
			SpillDir:     t.TempDir(),
		})
		setupGateStage(t, db, n)
		rows := queryAll(t, db, chainQuery(stages, false))
		digests[i], rowCounts[i] = rowsBits(rows), len(rows)
		kc := db.KernelCounters()
		if kc["chain_executions"] != 0 {
			t.Fatalf("chain fused under a bounded budget (fusion=%s, counters: %v)", fusion, kc)
		}
		if fusion == "on" {
			if kc["fallback_chain-budget-limited"] != 1 {
				t.Fatalf("fallback_chain-budget-limited = %d, want 1 (counters: %v)", kc["fallback_chain-budget-limited"], kc)
			}
		} else if kc["fallback_chain-budget-limited"] != 0 {
			t.Fatal("chain fallback counted with fusion off")
		}
	}
	if digests[0] != digests[1] {
		t.Fatal("budget-declined chain is not bit-identical to the fusion-off spilling engine")
	}
	if want := 2 * ((n + 1) / 2); rowCounts[1] != want {
		t.Fatalf("spilling chain produced %d rows, want %d", rowCounts[1], want)
	}
}

// TestChainFusionElidesIntermediates proves the interior stages never
// touch storage: with fusion on, the budget high-water mark of a deep
// chain stays far below the stage-at-a-time run, which must hold every
// intermediate stage store live until the statement ends.
func TestChainFusionElidesIntermediates(t *testing.T) {
	const stages, n = 6, 20000
	peak := func(fusion string) int64 {
		budget := NewMemBudget(0) // unlimited, but still tracks the high-water mark
		db := newOptDB(t, Config{Parallelism: 4, Fusion: fusion, Budget: budget})
		setupGateStage(t, db, n)
		base := budget.Peak() // t0 + gate table
		mustExec(t, db, "CREATE TABLE final AS "+chainQuery(stages, false))
		kc := db.KernelCounters()
		if fusion == "on" && kc["chain_elided"] != stages-2 {
			t.Fatalf("chain_elided = %d, want %d", kc["chain_elided"], stages-2)
		}
		return budget.Peak() - base
	}
	fused, unfused := peak("on"), peak("off")
	if fused >= unfused {
		t.Fatalf("fused peak %d >= stage-at-a-time peak %d: intermediates were materialized", fused, unfused)
	}
	// Six stages hold five intermediate stores; fused holds only the
	// chain output. The gap must be structural, not noise.
	if fused*2 >= unfused {
		t.Fatalf("fused peak %d not structurally below stage-at-a-time peak %d", fused, unfused)
	}
}

// TestChainFusionPartialChain: a WITH list where only a suffix links
// into a chain (the first CTE is referenced twice) must fuse what it
// can — or decline entirely — and stay bit-identical either way.
func TestChainFusionSharedCTEUnfused(t *testing.T) {
	const n = 1000
	q := `WITH c1 AS (
` + chainStageBody("t0", false) + `
), c2 AS (
` + chainStageBody("c1", false) + `
)
SELECT c2.s AS s, c2.r AS r, c2.i AS i FROM c2 JOIN c1 ON c1.s = c2.s`
	var digests [2]string
	for i, fusion := range []string{"off", "on"} {
		db := newOptDB(t, Config{Parallelism: 4, Fusion: fusion})
		setupGateStage(t, db, n)
		digests[i] = rowsBits(queryAll(t, db, q))
	}
	if digests[0] != digests[1] {
		t.Fatal("shared-CTE plan differs between fusion on and off")
	}
}

// TestChainExplainAnnotation: EXPLAIN previews the chain the fusion
// tier would run, and EXPLAIN ANALYZE reports the fused execution's
// actual stage and row counts.
func TestChainExplainAnnotation(t *testing.T) {
	db := newOptDB(t, Config{Parallelism: 2})
	setupGateStage(t, db, 1000)
	q := chainQuery(4, false) // normalizes to a 3-stage chain + top-level kernel

	plan, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "kernel: "+chainAnnotation(3)+" + "+kernelAnnotation) {
		t.Fatalf("EXPLAIN missing chain annotation:\n%s", plan)
	}

	rows := queryAll(t, db, "EXPLAIN ANALYZE "+q)
	var text strings.Builder
	for _, r := range rows {
		text.WriteString(r[0].String())
		text.WriteString("\n")
	}
	if !strings.Contains(text.String(), "kernel chain actual: "+chainAnnotation(3)) {
		t.Fatalf("EXPLAIN ANALYZE missing chain actuals:\n%s", text.String())
	}

	// Fusion off: the same plan previews as a plain gate stage.
	off := newOptDB(t, Config{Parallelism: 2, Fusion: "off"})
	setupGateStage(t, off, 1000)
	plan, err = off.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan, "gate-chain") {
		t.Fatalf("EXPLAIN shows a chain with fusion off:\n%s", plan)
	}
}

// TestOutputKernelBitIdentity drives the three translated output-layer
// query shapes (norm, qubit probability, marginal distribution) with
// kernels on and off; results must match bit for bit and the compiled
// path must actually run.
func TestOutputKernelBitIdentity(t *testing.T) {
	queries := []struct {
		name string
		sql  string
	}{
		{"norm", "SELECT SUM((t0.r * t0.r) + (t0.i * t0.i)) AS norm2 FROM t0"},
		{"qubitprob", "SELECT COALESCE(SUM((t0.r * t0.r) + (t0.i * t0.i)), 0.0) AS p FROM t0 WHERE ((t0.s >> 2) & 1) = 1"},
		{"qubitprob_bit0", "SELECT COALESCE(SUM((t0.r * t0.r) + (t0.i * t0.i)), 0.0) AS p FROM t0 WHERE (t0.s & 1) = 1"},
		{"marginal", "SELECT ((((t0.s >> 1) & 1) << 1) | ((t0.s >> 3) & 1)) AS m, SUM((t0.r * t0.r) + (t0.i * t0.i)) AS p FROM t0 GROUP BY ((((t0.s >> 1) & 1) << 1) | ((t0.s >> 3) & 1)) ORDER BY m"},
		{"marginal_noorder", "SELECT (t0.s & 3) AS m, SUM((t0.r * t0.r) + (t0.i * t0.i)) AS p FROM t0 GROUP BY (t0.s & 3)"},
	}
	for _, n := range []int{0, 300, 20000} { // empty (COALESCE default), serial, morsel
		for _, q := range queries {
			t.Run(fmt.Sprintf("n=%d/%s", n, q.name), func(t *testing.T) {
				var digests [2]string
				for i, kernels := range []string{"off", "on"} {
					db := newOptDB(t, Config{Parallelism: 4, Kernels: kernels})
					setupGateStage(t, db, n)
					rows := queryAll(t, db, q.sql)
					var b strings.Builder
					for _, r := range rows {
						for _, v := range r {
							if v.T == TypeFloat {
								fmt.Fprintf(&b, "f%016x|", math.Float64bits(v.F))
							} else {
								fmt.Fprintf(&b, "%v:%s|", v.T, v.String())
							}
						}
						b.WriteString("\n")
					}
					digests[i] = b.String()
					kc := db.KernelCounters()
					if kernels == "on" && kc["output_executions"] == 0 {
						t.Fatalf("output kernel did not run (counters: %v)", kc)
					}
					if kernels == "off" && kc["output_executions"] != 0 {
						t.Fatal("output kernel ran with kernels off")
					}
				}
				if digests[0] != digests[1] {
					t.Fatalf("output kernel differs from interpreter:\nkernel:\n%s\ninterp:\n%s", digests[1], digests[0])
				}
			})
		}
	}
}

// TestOutputKernelDeclines: shapes the output kernel must leave to the
// interpreter (CASE expectation values, AVG, expressions over the
// aggregate) still produce correct results and never count an output
// execution.
func TestOutputKernelDeclines(t *testing.T) {
	queries := []string{
		"SELECT SUM(((t0.r * t0.r) + (t0.i * t0.i)) * (CASE WHEN ((t0.s >> 1) & 1) = 0 THEN 1.0 ELSE -1.0 END)) AS ez FROM t0",
		"SELECT AVG(t0.r) FROM t0",
		"SELECT SUM(t0.r) + 1.0 FROM t0",
		"SELECT SUM(t0.s) FROM t0", // integer sum: engine keeps an int accumulator
		"SELECT (t0.s & 3) AS m, SUM((t0.r * t0.r) + (t0.i * t0.i)) AS p FROM t0 GROUP BY (t0.s & 3) ORDER BY m DESC",
	}
	db := newOptDB(t, Config{Parallelism: 4})
	setupGateStage(t, db, 1000)
	for _, q := range queries {
		queryAll(t, db, q)
	}
	if kc := db.KernelCounters(); kc["output_executions"] != 0 {
		t.Fatalf("output kernel handled an unsupported shape (counters: %v)", kc)
	}
}

// TestOutputKernelExplainAnnotation: EXPLAIN previews which output
// queries the compiled output-aggregate kernel will take, mirroring
// the runtime gates (shape match, in-memory ColStore, compile).
func TestOutputKernelExplainAnnotation(t *testing.T) {
	db := newOptDB(t, Config{Parallelism: 2})
	setupGateStage(t, db, 1000)

	cases := []struct {
		name string
		sql  string
		want string // "" means no output-kernel annotation
	}{
		{"norm", "SELECT SUM((t0.r * t0.r) + (t0.i * t0.i)) AS norm2 FROM t0", outputAnnotationScalar},
		{"qubitprob", "SELECT COALESCE(SUM((t0.r * t0.r) + (t0.i * t0.i)), 0.0) AS p FROM t0 WHERE ((t0.s >> 2) & 1) = 1", outputAnnotationScalar},
		{"marginal", "SELECT (t0.s & 3) AS m, SUM((t0.r * t0.r) + (t0.i * t0.i)) AS p FROM t0 GROUP BY (t0.s & 3) ORDER BY m", outputAnnotationGroup},
		{"avg_declines", "SELECT AVG(t0.r) FROM t0", ""},
		{"expr_declines", "SELECT SUM(t0.r) + 1.0 FROM t0", ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			plan, err := db.Explain(c.sql)
			if err != nil {
				t.Fatal(err)
			}
			switch {
			case c.want != "" && !strings.Contains(plan, "kernel: "+c.want):
				t.Fatalf("EXPLAIN missing output-kernel annotation %q:\n%s", c.want, plan)
			case c.want == "" && strings.Contains(plan, "output-agg"):
				t.Fatalf("EXPLAIN claims an output kernel for an unsupported shape:\n%s", plan)
			}
		})
	}

	// Kernels off: the annotation must not appear at all.
	off := newOptDB(t, Config{Parallelism: 2, Kernels: "off"})
	setupGateStage(t, off, 1000)
	plan, err := off.Explain(cases[0].sql)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan, "output-agg") {
		t.Fatalf("EXPLAIN shows an output kernel with kernels off:\n%s", plan)
	}
}

// TestCounterScopePerDB is the S1 regression: two engine instances
// must keep independent counter scopes — kernel work on one is
// invisible in the other's per-DB counters while the process-wide
// aggregate still sees everything.
func TestCounterScopePerDB(t *testing.T) {
	active := newOptDB(t, Config{Parallelism: 2})
	idle := newOptDB(t, Config{Parallelism: 2})
	setupGateStage(t, active, 1000)

	globalBefore := KernelCounters()["executions"]
	queryAll(t, active, gateStageQuery(false))

	if got := active.KernelCounters()["executions"]; got == 0 {
		t.Fatal("active DB recorded no kernel executions")
	}
	for k, v := range idle.KernelCounters() {
		if v != 0 {
			t.Fatalf("idle DB counter %s = %d, want 0 (cross-DB contamination)", k, v)
		}
	}
	for k, v := range idle.StorageCounters() {
		if v != 0 {
			t.Fatalf("idle DB storage counter %s = %d, want 0", k, v)
		}
	}
	if got := KernelCounters()["executions"] - globalBefore; got == 0 {
		t.Fatal("process-wide aggregate missed the execution")
	}
}
