package sqlengine

import (
	"fmt"
	"math"
	"os"
	"strings"
	"testing"
)

// newBudgetDB opens a DB with a small memory budget that forces the
// out-of-core paths; spill files go to the test's temp dir.
func newBudgetDB(t *testing.T, budget int64) *DB {
	t.Helper()
	db, err := Open(Config{MemoryBudget: budget, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// freezeTables freezes (and, with encodings on, encodes) base tables up
// front, so budget baselines taken afterwards reflect the tables'
// steady-state resident footprint rather than their pre-encode size.
func freezeTables(t *testing.T, db *DB, names ...string) {
	t.Helper()
	for _, name := range names {
		if err := db.lookupTable(name).store.Freeze(); err != nil {
			t.Fatal(err)
		}
	}
}

// fillSequence inserts rows 0..n-1 in batches.
func fillSequence(t *testing.T, db *DB, table string, n int) {
	t.Helper()
	batch := make([]string, 0, 500)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		mustExec(t, db, fmt.Sprintf("INSERT INTO %s VALUES %s", table, strings.Join(batch, ",")))
		batch = batch[:0]
	}
	for i := 0; i < n; i++ {
		batch = append(batch, fmt.Sprintf("(%d, %d)", i, i%97))
		if len(batch) == 500 {
			flush()
		}
	}
	flush()
}

func TestTableSpillsUnderBudget(t *testing.T) {
	db := newBudgetDB(t, 32*1024)
	mustExec(t, db, "CREATE TABLE t (x INTEGER, y INTEGER)")
	fillSequence(t, db, "t", 5000)
	if st := db.Stats(); st.SpilledRows == 0 {
		t.Fatalf("expected spill, stats = %+v", st)
	}
	rows := queryAll(t, db, "SELECT COUNT(*), SUM(x) FROM t")
	if rows[0][0].I != 5000 {
		t.Fatalf("count = %v", rows[0])
	}
	want := int64(5000) * 4999 / 2
	if rows[0][1].I != want {
		t.Fatalf("sum = %v, want %d", rows[0][1], want)
	}
}

func TestGraceAggregationMatchesInMemory(t *testing.T) {
	big := newBudgetDB(t, 24*1024)
	small, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer small.Close()

	for _, db := range []*DB{big, small} {
		if _, err := db.Exec("CREATE TABLE t (x INTEGER, y INTEGER)"); err != nil {
			t.Fatal(err)
		}
	}
	fillSequence(t, big, "t", 4000)
	fillSequence2 := func(db *DB) {
		batch := make([]string, 0, 500)
		for i := 0; i < 4000; i++ {
			batch = append(batch, fmt.Sprintf("(%d, %d)", i, i%97))
			if len(batch) == 500 {
				if _, err := db.Exec("INSERT INTO t VALUES " + strings.Join(batch, ",")); err != nil {
					t.Fatal(err)
				}
				batch = batch[:0]
			}
		}
	}
	fillSequence2(small)

	q := "SELECT y, COUNT(*), SUM(x) FROM t GROUP BY y ORDER BY y"
	bigRows := queryAll(t, big, q)
	smallRows := queryAll(t, small, q)
	if len(bigRows) != 97 || len(smallRows) != 97 {
		t.Fatalf("groups = %d vs %d", len(bigRows), len(smallRows))
	}
	for i := range bigRows {
		for j := range bigRows[i] {
			if CompareTotal(bigRows[i][j], smallRows[i][j]) != 0 {
				t.Fatalf("row %d col %d: %v vs %v", i, j, bigRows[i][j], smallRows[i][j])
			}
		}
	}
}

func TestGraceHashJoinMatchesInMemory(t *testing.T) {
	budget := newBudgetDB(t, 24*1024)
	mustExec(t, budget, "CREATE TABLE a (x INTEGER, y INTEGER)")
	mustExec(t, budget, "CREATE TABLE b (x INTEGER, y INTEGER)")
	fillSequence(t, budget, "a", 3000)
	fillSequence(t, budget, "b", 3000)

	// Join on y (97 distinct values): 3000 rows per side → ~92k matches
	// per... too many; join on x instead (1:1) plus a selective filter.
	rows := queryAll(t, budget, "SELECT COUNT(*) FROM a JOIN b ON a.x = b.x")
	if rows[0][0].I != 3000 {
		t.Fatalf("join count = %v", rows[0])
	}
	rows = queryAll(t, budget, "SELECT SUM(a.x + b.x) FROM a JOIN b ON a.x = b.x WHERE a.x < 100")
	if rows[0][0].I != 9900 { // 2 * (0+..+99)
		t.Fatalf("sum = %v", rows[0])
	}
}

func TestExternalSort(t *testing.T) {
	db := newBudgetDB(t, 24*1024)
	mustExec(t, db, "CREATE TABLE t (x INTEGER, y INTEGER)")
	fillSequence(t, db, "t", 4000)
	rows := queryAll(t, db, "SELECT x FROM t ORDER BY x DESC")
	if len(rows) != 4000 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i][0].I > rows[i-1][0].I {
			t.Fatalf("not sorted at %d: %v > %v", i, rows[i][0], rows[i-1][0])
		}
	}
	if rows[0][0].I != 3999 || rows[3999][0].I != 0 {
		t.Fatalf("bounds: %v .. %v", rows[0][0], rows[3999][0])
	}
}

func TestBudgetErrorWhenSpillDisabled(t *testing.T) {
	db, err := Open(Config{MemoryBudget: 4 * 1024, DisableSpill: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE t (x INTEGER, y INTEGER)"); err != nil {
		t.Fatal(err)
	}
	var sawErr error
	for i := 0; i < 10000 && sawErr == nil; i++ {
		_, sawErr = db.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, i))
	}
	if sawErr == nil {
		t.Fatal("expected a budget error with spilling disabled")
	}
	if !strings.Contains(sawErr.Error(), "memory budget exceeded") {
		t.Fatalf("err = %v", sawErr)
	}
}

func TestSpillFilesCleanedUp(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Config{MemoryBudget: 16 * 1024, SpillDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (x INTEGER, y INTEGER)")
	fillSequence(t, db, "t", 3000)
	rs, err := db.Query("SELECT x FROM t ORDER BY x")
	if err != nil {
		t.Fatal(err)
	}
	rs.Close()
	db.Close()
	// After close, every spill file must be removed.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("leftover spill files: %v", entries)
	}
}

// tableScanNode builds a storeScanNode over a base table for tests that
// open operator iterators directly.
func tableScanNode(t *testing.T, db *DB, name string) *storeScanNode {
	t.Helper()
	meta := db.lookupTable(name)
	if meta == nil {
		t.Fatalf("no table %s", name)
	}
	cols := make(planSchema, len(meta.Cols))
	for i, c := range meta.Cols {
		cols[i] = planCol{table: strings.ToLower(name), name: strings.ToLower(c.Name)}
	}
	return &storeScanNode{store: meta.store, cols: cols}
}

// TestBatchSortEarlyCloseReleasesBudget verifies that closing a batched
// sort iterator mid-stream releases its full memBudget reservation and
// that Close stays idempotent.
func TestBatchSortEarlyCloseReleasesBudget(t *testing.T) {
	db := newBudgetDB(t, 1<<20)
	mustExec(t, db, "CREATE TABLE t (x INTEGER, y INTEGER)")
	fillSequence(t, db, "t", 4000)
	freezeTables(t, db, "t")
	baseline := db.env.budget.used.Load()

	ctx := &execCtx{env: db.env}
	sn := &sortNode{child: tableScanNode(t, db, "t"), keys: []sortSpec{{expr: &ColumnRef{Name: "x"}, desc: true}}}
	it, err := sn.open(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if db.env.budget.used.Load() <= baseline {
		t.Fatal("sort buffer should hold a budget reservation while open")
	}
	if b, err := it.NextBatch(); err != nil || b == nil || b.rows() == 0 {
		t.Fatalf("first batch: %v rows, err %v", b, err)
	}
	it.Close()
	it.Close() // must be idempotent
	if got := db.env.budget.used.Load(); got != baseline {
		t.Fatalf("budget after early close = %d, want baseline %d", got, baseline)
	}
}

// TestBatchJoinEarlyCloseReleasesBudget does the same for the streaming
// hash-join probe, whose build table holds the reservation.
func TestBatchJoinEarlyCloseReleasesBudget(t *testing.T) {
	db := newBudgetDB(t, 8<<20)
	mustExec(t, db, "CREATE TABLE a (x INTEGER, y INTEGER)")
	mustExec(t, db, "CREATE TABLE b (x INTEGER, y INTEGER)")
	fillSequence(t, db, "a", 3000)
	fillSequence(t, db, "b", 3000)
	freezeTables(t, db, "a", "b")
	baseline := db.env.budget.used.Load()

	ctx := &execCtx{env: db.env}
	jn := &joinNode{
		left:     tableScanNode(t, db, "a"),
		right:    tableScanNode(t, db, "b"),
		joinType: "INNER",
		leftKeys: []Expr{&ColumnRef{Table: "a", Name: "x"}}, rightKeys: []Expr{&ColumnRef{Table: "b", Name: "x"}},
	}
	it, err := jn.open(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if db.env.budget.used.Load() <= baseline {
		t.Fatal("join build table should hold a budget reservation while open")
	}
	if b, err := it.NextBatch(); err != nil || b == nil || b.rows() == 0 {
		t.Fatalf("first batch: %v rows, err %v", b, err)
	}
	it.Close()
	it.Close()
	if got := db.env.budget.used.Load(); got != baseline {
		t.Fatalf("budget after early close = %d, want baseline %d", got, baseline)
	}
}

// TestBatchAggregateEarlyCloseReleasesBudget closes a streaming
// aggregation's output mid-stream; the owned result store must be
// released.
func TestBatchAggregateEarlyCloseReleasesBudget(t *testing.T) {
	db := newBudgetDB(t, 1<<20)
	mustExec(t, db, "CREATE TABLE t (x INTEGER, y INTEGER)")
	fillSequence(t, db, "t", 4000)
	freezeTables(t, db, "t")
	baseline := db.env.budget.used.Load()

	ctx := &execCtx{env: db.env}
	an := &aggNode{
		child:   tableScanNode(t, db, "t"),
		groupBy: []Expr{&ColumnRef{Name: "y"}},
		aggs:    []aggCall{{Name: "SUM", Arg: &ColumnRef{Name: "x"}}},
	}
	it, err := an.open(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if b, err := it.NextBatch(); err != nil || b == nil || b.rows() == 0 {
		t.Fatalf("first batch: %v rows, err %v", b, err)
	}
	it.Close()
	it.Close()
	if got := db.env.budget.used.Load(); got != baseline {
		t.Fatalf("budget after early close = %d, want baseline %d", got, baseline)
	}
}

// TestStreamingAggregateSpillMatchesInMemory drives the partial-spill
// path (streaming aggregation overflowing the budget) and checks the
// merged results against an unconstrained engine.
func TestStreamingAggregateSpillMatchesInMemory(t *testing.T) {
	big := newBudgetDB(t, 24*1024)
	small, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer small.Close()
	for _, db := range []*DB{big, small} {
		if _, err := db.Exec("CREATE TABLE t (x INTEGER, y INTEGER)"); err != nil {
			t.Fatal(err)
		}
	}
	for _, db := range []*DB{big, small} {
		batch := make([]string, 0, 500)
		for i := 0; i < 6000; i++ {
			batch = append(batch, fmt.Sprintf("(%d, %d)", i, i%997))
			if len(batch) == 500 {
				if _, err := db.Exec("INSERT INTO t VALUES " + strings.Join(batch, ",")); err != nil {
					t.Fatal(err)
				}
				batch = batch[:0]
			}
		}
	}
	q := "SELECT y, COUNT(*), SUM(x), AVG(x), MIN(x), MAX(x), TOTAL(x) FROM t GROUP BY y ORDER BY y"
	bigRows := queryAll(t, big, q)
	smallRows := queryAll(t, small, q)
	if len(bigRows) != 997 || len(smallRows) != 997 {
		t.Fatalf("groups = %d vs %d", len(bigRows), len(smallRows))
	}
	for i := range bigRows {
		for j := range bigRows[i] {
			if CompareTotal(bigRows[i][j], smallRows[i][j]) != 0 {
				t.Fatalf("row %d col %d: %v vs %v", i, j, bigRows[i][j], smallRows[i][j])
			}
		}
	}
	if st := big.Stats(); st.SpilledRows == 0 {
		t.Fatalf("expected the partial-aggregate spill path to engage, stats = %+v", st)
	}
}

// TestColumnarCTASSpillsAndRestores drives the tentpole's out-of-core
// path: a CREATE TABLE AS SELECT whose result overflows the memBudget
// must fall back to the columnar chunk spill, and reading the spilled
// table back must restore every row and type exactly.
func TestColumnarCTASSpillsAndRestores(t *testing.T) {
	db := newBudgetDB(t, 24*1024)
	mustExec(t, db, "CREATE TABLE t (x INTEGER, y INTEGER)")
	fillSequence(t, db, "t", 5000)
	before := db.Stats().SpilledRows
	mustExec(t, db, "CREATE TABLE u AS SELECT x, x * 2 AS d, 'v' AS tag FROM t")
	if db.Stats().SpilledRows == before {
		t.Fatalf("expected CTAS to spill, stats = %+v", db.Stats())
	}
	meta := db.lookupTable("u")
	if meta == nil || !meta.store.Spilled() {
		t.Fatal("CTAS result store should be spilled")
	}
	rows := queryAll(t, db, "SELECT COUNT(*), SUM(d), MIN(tag) FROM u")
	if rows[0][0].I != 5000 {
		t.Fatalf("count = %v", rows[0])
	}
	if want := int64(5000) * 4999; rows[0][1].I != want {
		t.Fatalf("sum = %v, want %d", rows[0][1], want)
	}
	if rows[0][2].S != "v" {
		t.Fatalf("tag = %v", rows[0][2])
	}
}

// TestColumnarEarlyCloseReleasesColumnReservations closes a result set
// backed by a columnar store before draining it: Close must release
// every column-vector reservation (and stay idempotent).
func TestColumnarEarlyCloseReleasesColumnReservations(t *testing.T) {
	db := newBudgetDB(t, 1<<20)
	mustExec(t, db, "CREATE TABLE t (x INTEGER, y INTEGER)")
	fillSequence(t, db, "t", 4000)
	freezeTables(t, db, "t")
	baseline := db.env.budget.used.Load()

	rs, err := db.Query("SELECT x, y, x + y FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if db.env.budget.used.Load() <= baseline {
		t.Fatal("materialized columnar result should hold a reservation")
	}
	if _, ok, err := rs.Next(); !ok || err != nil {
		t.Fatalf("first row: ok=%v err=%v", ok, err)
	}
	rs.Close()
	rs.Close() // idempotent
	if got := db.env.budget.used.Load(); got != baseline {
		t.Fatalf("budget after early close = %d, want baseline %d", got, baseline)
	}
}

// layoutDBs opens one engine per storage layout with otherwise
// identical configuration.
func layoutDBs(t *testing.T, cfg Config) map[string]*DB {
	t.Helper()
	out := map[string]*DB{}
	for _, layout := range []string{LayoutColumnar, LayoutRow} {
		c := cfg
		c.Layout = layout
		db, err := Open(c)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		out[layout] = db
	}
	return out
}

// TestLayoutDifferentialBitIdentical runs the translated gate-stage
// workload — inserts, per-gate CTAS chain, joins, aggregation, ORDER BY
// — on the columnar and the row layout at workers=1 and workers=4, and
// requires bitwise-identical results everywhere: same types, same int64
// values, same float64 bit patterns, same row order.
func TestLayoutDifferentialBitIdentical(t *testing.T) {
	script := []string{
		"CREATE TABLE t0 (s INTEGER, r REAL, i REAL)",
		"CREATE TABLE h (in_s INTEGER, out_s INTEGER, r REAL, i REAL)",
		"INSERT INTO h VALUES (0,0,0.7071067811865476,0),(0,1,0.7071067811865476,0),(1,0,0.7071067811865476,0),(1,1,-0.7071067811865476,0)",
	}
	gate := `CREATE TABLE %s AS
		SELECT ((t.s & ~%d) | (h.out_s << %d)) AS s,
		       SUM((t.r * h.r) - (t.i * h.i)) AS r,
		       SUM((t.r * h.i) + (t.i * h.r)) AS i
		FROM %s t JOIN h ON h.in_s = ((t.s >> %d) & 1)
		GROUP BY ((t.s & ~%d) | (h.out_s << %d))`
	final := "SELECT s, r, i FROM t3 ORDER BY s"

	type key struct {
		layout  string
		workers int
	}
	results := map[key][]Row{}
	for _, workers := range []int{1, 4} {
		for layout, db := range layoutDBs(t, Config{Parallelism: workers}) {
			for _, stmt := range script {
				mustExec(t, db, stmt)
			}
			// Seed a 4096-row superposition.
			batch := make([]string, 0, 512)
			for k := 0; k < 4096; k++ {
				batch = append(batch, fmt.Sprintf("(%d, %g, %g)", k, 1.0/4096.0, float64(k)*1e-7))
				if len(batch) == 512 {
					mustExec(t, db, "INSERT INTO t0 VALUES "+strings.Join(batch, ","))
					batch = batch[:0]
				}
			}
			for g := 0; g < 3; g++ {
				bit := 1 << g
				mustExec(t, db, fmt.Sprintf(gate, fmt.Sprintf("t%d", g+1), bit, g, fmt.Sprintf("t%d", g), g, bit, g))
			}
			results[key{layout, workers}] = queryAll(t, db, final)
		}
	}

	ref := results[key{LayoutColumnar, 1}]
	if len(ref) == 0 {
		t.Fatal("no reference rows")
	}
	for k, rows := range results {
		if len(rows) != len(ref) {
			t.Fatalf("%v: %d rows vs %d", k, len(rows), len(ref))
		}
		for i := range rows {
			for j := range rows[i] {
				a, b := ref[i][j], rows[i][j]
				if a.T != b.T || a.I != b.I || math.Float64bits(a.F) != math.Float64bits(b.F) || a.S != b.S {
					t.Fatalf("%v: row %d col %d: %v vs %v (bits %x vs %x)",
						k, i, j, a, b, math.Float64bits(a.F), math.Float64bits(b.F))
				}
			}
		}
	}
}

func TestPeakMemoryStaysNearBudget(t *testing.T) {
	// The budget is a soft cap: each blocking operator may claim one
	// working floor (budget/4) beyond it, so a join+sort pipeline stays
	// within 2x. What matters for the out-of-core claim is that peak
	// memory does not scale with the data size.
	const budget = 64 * 1024
	db := newBudgetDB(t, budget)
	mustExec(t, db, "CREATE TABLE t (x INTEGER, y INTEGER)")
	fillSequence(t, db, "t", 8000)
	queryAll(t, db, "SELECT y, COUNT(*) FROM t GROUP BY y ORDER BY y")
	st := db.Stats()
	if st.PeakBytes > 2*budget {
		t.Fatalf("peak %d exceeded 2x budget %d", st.PeakBytes, budget)
	}
	if st.SpilledRows == 0 {
		t.Fatalf("expected spilling, stats = %+v", st)
	}
}
