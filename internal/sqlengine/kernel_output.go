package sqlengine

import (
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Output-layer kernels: compiled execution of the translated analysis
// queries (core/output.go) that read a materialized state table —
// NormQuery's scalar SUM, QubitProbabilityQuery's filtered scalar SUM,
// and MarginalQuery's single-key grouped SUM. These are the queries a
// sweep runs once per simulation after the gate chain, and they share
// the gate kernel's bottleneck: per-batch operator dispatch and Value
// boxing around what is really a tight loop over two float vectors.
//
// The same determinism contract as kernel.go applies: the kernel
// replicates the interpreted engine's accumulation schedule exactly —
// the serial streaming order when the scan is below the morsel
// threshold, and the two-phase per-morsel partial / ascending-morsel
// merge / partition-major emission schedule of parallel_agg.go when it
// is not (the aggregate's morsel path engages at every worker count).
// Every float operation rounds once; group emission is first-seen
// order within the schedule. Anything the matcher cannot prove
// bit-identical declines to the interpreter untouched.

// Output-kernel EXPLAIN annotations.
const (
	outputAnnotationScalar = "output-agg(scalar-sum)"
	outputAnnotationGroup  = "output-agg(group-sum)"
)

// outputPlan is one matched output-aggregation site.
type outputPlan struct {
	scan   *storeScanNode
	agg    *aggNode
	filter *filterNode // optional pushed row filter below the aggregate
	// grouped selects the single-int-key GROUP BY form; sorted adds the
	// ORDER BY <group key ASC> on top (MarginalQuery's shape).
	grouped bool
	sorted  bool
	// coalesce, when non-nil, is the scalar projection's COALESCE
	// default for the empty-input NULL sum (QubitProbabilityQuery).
	coalesce *Value
}

// outputKernelAttempt pattern-matches root as a translated
// output-layer aggregation and, on a match, executes it as a compiled
// kernel, returning (store, true, nil). handled=false declines with
// the plan untouched; the caller falls back to the interpreter (and
// records the original gate-stage decline reason).
func outputKernelAttempt(ctx *execCtx, root planNode, collect bool, gateReason string) (tableStore, bool, error) {
	_ = gateReason
	plan := matchOutputAgg(root)
	if plan == nil {
		return nil, false, nil
	}
	cs, ok := plan.scan.store.(*ColStore)
	if !ok {
		return nil, false, nil
	}
	if err := cs.Freeze(); err != nil {
		return nil, false, nil
	}
	if cs.Spilled() {
		return nil, false, nil
	}
	run, ok := compileOutputRun(ctx.env, plan, cs)
	if !ok {
		return nil, false, nil
	}
	start := time.Now()
	store, err := run.execute(ctx, collect)
	if err != nil {
		return nil, true, err
	}
	kernelBump(ctx.env, func(k *kernelCounterSet) *atomic.Int64 { return &k.executions }, 1)
	kernelBump(ctx.env, func(k *kernelCounterSet) *atomic.Int64 { return &k.outputExecutions }, 1)
	ctx.kexec = &kernelExecStat{
		wall:    time.Since(start),
		rowsIn:  int64(run.rows),
		rowsOut: store.Len(),
		morsels: int64((run.rows + morselRows - 1) / morselRows),
	}
	return store, true, nil
}

// matchOutputAgg recognizes the output-aggregation plan shape:
//
//	[Sort <group key> ASC]
//	  Project (#grp.g0,) #agg.a0 | COALESCE(#agg.a0, <literal>)
//	    HashAggregate keys=[intExpr]? aggs=[SUM(floatExpr)]
//	      [Filter intExpr cmp intExpr]   (pushed scan filter)
//	        BatchScan state
//
// Any deviation returns nil (the interpreter handles it).
func matchOutputAgg(root planNode) *outputPlan {
	out := &outputPlan{}
	cur := unwrapStat(root)
	for {
		if a, ok := cur.(*aliasNode); ok {
			cur = unwrapStat(a.child)
			continue
		}
		break
	}
	if s, ok := cur.(*sortNode); ok {
		// Only the grouped form sorts, by its single ascending group key
		// (unique keys, so the engine's stable sort has no ties to break).
		if len(s.keys) != 1 || s.keys[0].desc {
			return nil
		}
		ref, ok := s.keys[0].expr.(*ColumnRef)
		if !ok {
			return nil
		}
		child := unwrapStat(s.child)
		proj, ok := child.(*projectNode)
		if !ok {
			return nil
		}
		if idx, err := proj.schema().resolveColumn(ref.Table, ref.Name); err != nil || idx != 0 {
			return nil
		}
		out.sorted = true
		cur = child
	}
	proj, ok := cur.(*projectNode)
	if !ok {
		return nil
	}
	agg, ok := unwrapStat(proj.child).(*aggNode)
	if !ok {
		return nil
	}
	if len(agg.aggs) != 1 || agg.aggs[0].Distinct || agg.aggs[0].Name != "SUM" || agg.aggs[0].Arg == nil {
		return nil
	}
	aggSchema := agg.schema()
	refTo := func(e Expr, want int) bool {
		ref, ok := e.(*ColumnRef)
		if !ok {
			return false
		}
		idx, err := aggSchema.resolveColumn(ref.Table, ref.Name)
		return err == nil && idx == want
	}
	switch len(agg.groupBy) {
	case 0:
		if out.sorted || len(proj.exprs) != 1 {
			return nil
		}
		switch e := proj.exprs[0].(type) {
		case *ColumnRef:
			if !refTo(e, 0) {
				return nil
			}
		case *FuncCall:
			if strings.ToUpper(e.Name) != "COALESCE" || e.Star || len(e.Args) != 2 || !refTo(e.Args[0], 0) {
				return nil
			}
			lit, ok := e.Args[1].(*Literal)
			if !ok || lit.Val.T != TypeFloat {
				return nil
			}
			v := lit.Val
			out.coalesce = &v
		default:
			return nil
		}
	case 1:
		if len(proj.exprs) != 2 || !refTo(proj.exprs[0], 0) || !refTo(proj.exprs[1], 1) {
			return nil
		}
		out.grouped = true
	default:
		return nil
	}
	out.agg = agg
	child := unwrapStat(agg.child)
	if f, ok := child.(*filterNode); ok {
		out.filter = f
		child = unwrapStat(f.child)
	}
	scan, ok := child.(*storeScanNode)
	if !ok {
		return nil
	}
	out.scan = scan
	return out
}

// outputRun is a matched plan bound to the state store's vectors:
// compiled row closures over decoded columns, ready to execute.
type outputRun struct {
	plan   *outputPlan
	rows   int
	morsel bool
	filter func(row int) bool  // nil = keep every row
	key    func(row int) int64 // grouped only
	sum    func(row int) float64
}

// outVecs lazily decodes the scan's referenced columns, deduplicated
// per physical slot.
type outVecs struct {
	env    *storageEnv
	cs     *ColStore
	scan   *storeScanNode
	ints   map[int][]int64
	floats map[int][]float64
}

func (v *outVecs) intCol(slot int) []int64 {
	if v.cs.rows == 0 {
		// An empty store has no typed vectors to bind; the closures are
		// never called (the engine would not evaluate either).
		return []int64{}
	}
	phys := scanPhys(v.scan, slot)
	if vec, ok := v.ints[phys]; ok {
		return vec
	}
	vec := kernelIntVec(v.env, v.cs, phys)
	v.ints[phys] = vec
	return vec
}

func (v *outVecs) floatCol(slot int) []float64 {
	if v.cs.rows == 0 {
		return []float64{}
	}
	phys := scanPhys(v.scan, slot)
	if vec, ok := v.floats[phys]; ok {
		return vec
	}
	vec := kernelFloatVec(v.env, v.cs, phys)
	v.floats[phys] = vec
	return vec
}

// compileOutputRun binds and compiles the matched plan's expressions
// against the frozen state store. Compilation is per execution (output
// queries run once per simulation, not once per stage — no cache
// pressure to amortize).
func compileOutputRun(env *storageEnv, plan *outputPlan, cs *ColStore) (*outputRun, bool) {
	schema := plan.scan.cols
	vecs := &outVecs{env: env, cs: cs, scan: plan.scan, ints: map[int][]int64{}, floats: map[int][]float64{}}
	run := &outputRun{plan: plan, rows: cs.rows}
	var ok bool
	if run.sum, ok = compileOutFloat(plan.agg.aggs[0].Arg, schema, vecs); !ok {
		return nil, false
	}
	if plan.grouped {
		if run.key, ok = compileOutInt(plan.agg.groupBy[0], schema, vecs); !ok {
			return nil, false
		}
	}
	if plan.filter != nil {
		if run.filter, ok = compileOutPred(plan.filter.pred, schema, vecs); !ok {
			return nil, false
		}
	}
	// The aggregate's morsel path engages (at every worker count)
	// whenever the scan splits into two or more morsels.
	run.morsel = cs.morselCount() >= minParallelMorsels
	return run, true
}

// compileOutFloat compiles a float scalar expression into a row
// closure. Every leaf must already be float — a float column or a
// float literal — so the engine's numeric result is float on every row
// and each operation rounds exactly once (the explicit float64
// conversions forbid FMA contraction, matching Value arithmetic).
func compileOutFloat(e Expr, schema planSchema, vecs *outVecs) (func(row int) float64, bool) {
	switch n := e.(type) {
	case *Literal:
		if n.Val.T != TypeFloat {
			return nil, false
		}
		v := n.Val.F
		return func(int) float64 { return v }, true
	case *ColumnRef:
		idx, err := schema.resolveColumn(n.Table, n.Name)
		if err != nil {
			return nil, false
		}
		vec := vecs.floatCol(idx)
		if vec == nil {
			return nil, false
		}
		return func(row int) float64 { return vec[row] }, true
	case *UnaryExpr:
		if n.Op != "-" {
			return nil, false
		}
		x, ok := compileOutFloat(n.X, schema, vecs)
		if !ok {
			return nil, false
		}
		return func(row int) float64 { return -x(row) }, true
	case *BinaryExpr:
		l, ok := compileOutFloat(n.L, schema, vecs)
		if !ok {
			return nil, false
		}
		r, ok := compileOutFloat(n.R, schema, vecs)
		if !ok {
			return nil, false
		}
		switch n.Op {
		case "+":
			return func(row int) float64 { return float64(l(row) + r(row)) }, true
		case "-":
			return func(row int) float64 { return float64(l(row) - r(row)) }, true
		case "*":
			return func(row int) float64 { return float64(l(row) * r(row)) }, true
		}
		return nil, false
	}
	return nil, false
}

// compileOutInt compiles an integer scalar expression into a row
// closure, with compileKernelInt's operator semantics (value.go's
// INTEGER arithmetic). Only INTEGER literals and int columns are
// admitted — bool and float operands have their own comparison and
// promotion rules the closure does not replicate.
func compileOutInt(e Expr, schema planSchema, vecs *outVecs) (func(row int) int64, bool) {
	switch n := e.(type) {
	case *Literal:
		if n.Val.T != TypeInt {
			return nil, false
		}
		v := n.Val.I
		return func(int) int64 { return v }, true
	case *ColumnRef:
		idx, err := schema.resolveColumn(n.Table, n.Name)
		if err != nil {
			return nil, false
		}
		vec := vecs.intCol(idx)
		if vec == nil {
			return nil, false
		}
		return func(row int) int64 { return vec[row] }, true
	case *UnaryExpr:
		x, ok := compileOutInt(n.X, schema, vecs)
		if !ok {
			return nil, false
		}
		switch n.Op {
		case "-":
			return func(row int) int64 { return -x(row) }, true
		case "~":
			return func(row int) int64 { return ^x(row) }, true
		}
		return nil, false
	case *BinaryExpr:
		if n.Op == "/" || n.Op == "%" {
			lit, ok := n.R.(*Literal)
			if !ok || lit.Val.T != TypeInt || lit.Val.I == 0 {
				return nil, false
			}
		}
		l, ok := compileOutInt(n.L, schema, vecs)
		if !ok {
			return nil, false
		}
		r, ok := compileOutInt(n.R, schema, vecs)
		if !ok {
			return nil, false
		}
		switch n.Op {
		case "&":
			return func(row int) int64 { return l(row) & r(row) }, true
		case "|":
			return func(row int) int64 { return l(row) | r(row) }, true
		case "^":
			return func(row int) int64 { return l(row) ^ r(row) }, true
		case "+":
			return func(row int) int64 { return l(row) + r(row) }, true
		case "-":
			return func(row int) int64 { return l(row) - r(row) }, true
		case "*":
			return func(row int) int64 { return l(row) * r(row) }, true
		case "/":
			return func(row int) int64 { return l(row) / r(row) }, true
		case "%":
			return func(row int) int64 { return l(row) % r(row) }, true
		case "<<":
			return func(row int) int64 {
				b := r(row)
				if b < 0 || b > 63 {
					return 0
				}
				return l(row) << uint(b)
			}, true
		case ">>":
			return func(row int) int64 {
				b := r(row)
				if b < 0 || b > 63 {
					return 0
				}
				return l(row) >> uint(b)
			}, true
		}
		return nil, false
	}
	return nil, false
}

// compileOutPred compiles the scan's pushed filter: a conjunction of
// integer comparisons (the translated qubit locator is
// ((s >> q) & 1) = 1). Integer comparison has no type-coercion edge
// cases, and the int closures cannot produce NULL, so row selection is
// exactly the interpreter's.
func compileOutPred(pred Expr, schema planSchema, vecs *outVecs) (func(row int) bool, bool) {
	if b, ok := pred.(*BinaryExpr); ok && b.Op == "AND" {
		l, ok := compileOutPred(b.L, schema, vecs)
		if !ok {
			return nil, false
		}
		r, ok := compileOutPred(b.R, schema, vecs)
		if !ok {
			return nil, false
		}
		return func(row int) bool { return l(row) && r(row) }, true
	}
	cmp, ok := pred.(*BinaryExpr)
	if !ok {
		return nil, false
	}
	l, lok := compileOutInt(cmp.L, schema, vecs)
	r, rok := compileOutInt(cmp.R, schema, vecs)
	if !lok || !rok {
		return nil, false
	}
	switch cmp.Op {
	case "=", "==":
		return func(row int) bool { return l(row) == r(row) }, true
	case "!=", "<>":
		return func(row int) bool { return l(row) != r(row) }, true
	case "<":
		return func(row int) bool { return l(row) < r(row) }, true
	case "<=":
		return func(row int) bool { return l(row) <= r(row) }, true
	case ">":
		return func(row int) bool { return l(row) > r(row) }, true
	case ">=":
		return func(row int) bool { return l(row) >= r(row) }, true
	}
	return nil, false
}

// outGroups is the single-int-key aggregation table in first-seen
// order (groupTable's emission contract).
type outGroups struct {
	pos  map[int64]int
	keys []int64
	sums []float64
}

func newOutGroups() *outGroups { return &outGroups{pos: map[int64]int{}} }

func (g *outGroups) add(key int64, v float64) {
	idx, ok := g.pos[key]
	if !ok {
		idx = len(g.keys)
		g.pos[key] = idx
		g.keys = append(g.keys, key)
		g.sums = append(g.sums, 0)
	}
	g.sums[idx] += v
}

// execute runs the compiled output aggregation through the engine's
// own schedule and materializes the result store.
func (r *outputRun) execute(ctx *execCtx, collect bool) (tableStore, error) {
	var keys []int64
	var sums []float64
	var scalar float64
	anyRow := false

	if !r.morsel {
		// Serial streaming order: one accumulator, rows in scan order.
		g := newOutGroups()
		for row := 0; row < r.rows; row++ {
			if row%morselRows == 0 {
				if err := ctx.cancelled(); err != nil {
					return nil, err
				}
			}
			if r.filter != nil && !r.filter(row) {
				continue
			}
			v := r.sum(row)
			anyRow = true
			if r.plan.grouped {
				g.add(r.key(row), v)
			} else {
				scalar += v
			}
		}
		keys, sums = g.keys, g.sums
	} else {
		// Two-phase morsel schedule (parallel_agg.go): per-morsel partial
		// tables partitioned by group-key hash, merged per partition in
		// ascending morsel order, emitted partition-major. The schedule is
		// a function of the data and the morsel geometry alone, so running
		// it on one goroutine reproduces every worker count bit for bit.
		nm := (r.rows + morselRows - 1) / morselRows
		type morselPart struct {
			parts [aggPartitionsKernel]*outGroups
			sum   float64 // scalar partial
			rows  bool
		}
		partials := make([]*morselPart, nm)
		for m := 0; m < nm; m++ {
			if err := ctx.cancelled(); err != nil {
				return nil, err
			}
			lo, hi := m*morselRows, (m+1)*morselRows
			if hi > r.rows {
				hi = r.rows
			}
			mp := &morselPart{}
			for row := lo; row < hi; row++ {
				if r.filter != nil && !r.filter(row) {
					continue
				}
				v := r.sum(row)
				mp.rows = true
				if !r.plan.grouped {
					mp.sum += v
					continue
				}
				key := r.key(row)
				p := hashPartitionInt(key, 0, aggPartitionsKernel)
				if mp.parts[p] == nil {
					mp.parts[p] = newOutGroups()
				}
				mp.parts[p].add(key, v)
			}
			partials[m] = mp
		}
		if r.plan.grouped {
			g := newOutGroups()
			for p := 0; p < aggPartitionsKernel; p++ {
				base := len(g.keys)
				merged := &outGroups{pos: map[int64]int{}}
				for m := 0; m < nm; m++ {
					t := partials[m].parts[p]
					if t == nil {
						continue
					}
					for i, key := range t.keys {
						merged.add(key, t.sums[i])
					}
				}
				_ = base
				for i, key := range merged.keys {
					g.keys = append(g.keys, key)
					g.sums = append(g.sums, merged.sums[i])
				}
				anyRow = anyRow || len(merged.keys) > 0
			}
			keys, sums = g.keys, g.sums
		} else {
			// Merge scalar partials in ascending morsel order, skipping
			// morsels that contributed no rows (their partial is NULL).
			for m := 0; m < nm; m++ {
				if !partials[m].rows {
					continue
				}
				anyRow = true
				scalar += partials[m].sum
			}
		}
	}

	out := ctx.env.newStore()
	if collect {
		attachStats(out)
	}
	fail := func(err error) (tableStore, error) {
		out.Release()
		return nil, err
	}
	if r.plan.grouped {
		if r.plan.sorted {
			type kv struct {
				k int64
				v float64
			}
			rows := make([]kv, len(keys))
			for i := range keys {
				rows[i] = kv{keys[i], sums[i]}
			}
			sort.Slice(rows, func(i, j int) bool { return rows[i].k < rows[j].k })
			for i := range rows {
				keys[i], sums[i] = rows[i].k, rows[i].v
			}
		}
		var cols [2]colVec
		n := 0
		flush := func() error {
			if n == 0 {
				return nil
			}
			b := &rowBatch{cols: []colVec{cols[0], cols[1]}, n: n}
			err := out.AppendBatch(b)
			cols[0], cols[1] = cols[0][:0], cols[1][:0]
			n = 0
			return err
		}
		for i, key := range keys {
			cols[0] = append(cols[0], NewInt(key))
			cols[1] = append(cols[1], NewFloat(sums[i]))
			n++
			if n >= batchSize {
				if err := flush(); err != nil {
					return fail(err)
				}
			}
		}
		if err := flush(); err != nil {
			return fail(err)
		}
	} else {
		// One result row always: the sum, or — over empty input — the
		// aggregate's default NULL through the projection's COALESCE.
		v := Null
		switch {
		case anyRow:
			v = NewFloat(scalar)
		case r.plan.coalesce != nil:
			v = *r.plan.coalesce
		}
		if err := out.Append(Row{v}); err != nil {
			return fail(err)
		}
	}
	if err := out.Freeze(); err != nil {
		return fail(err)
	}
	return out, nil
}
